(* Shared bits for the command-line tools: IO helpers plus the unified
   error boundary. Every tool wraps its main body in [protect], which
   maps taxonomy errors (Qruntime.Qir_error wrapping Ir_error,
   Runtime_error, Sim_error, ...) to a one-line stderr diagnostic and a
   stable exit code:

     parse = 2, verify = 3, exec = 4, timeout = 5, backend = 6,
     usage = 7, overload = 8 (admission control / quotas / breakers)

   User errors never print a raw OCaml backtrace. *)

let read_file path =
  if String.equal path "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_text path In_channel.input_all

let write_output out text =
  match out with
  | None -> print_string text
  | Some path -> Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc text)

let prog = Filename.remove_extension (Filename.basename Sys.argv.(0))

let die ~code fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "%s: %s\n" prog msg;
      exit code)
    fmt

let fail_error (e : Qruntime.Qir_error.t) =
  die ~code:(Qruntime.Qir_error.exit_code e) "%s"
    (Qruntime.Qir_error.to_string e)

(* The top-level error boundary: classify anything from the execution
   stack; let everything else (genuine bugs) escape with a backtrace. *)
let protect f =
  try f () with
  | Qruntime.Qir_error.Error e -> fail_error e
  | e -> (
    match Qruntime.Qir_error.of_exn e with
    | Some err -> fail_error err
    | None -> raise e)

let parse_qir_file path =
  let src = try read_file path with Sys_error msg ->
    die ~code:Qruntime.Qir_error.exit_usage "%s" msg
  in
  match Llvm_ir.Parser.parse_module_result ~source_name:path src with
  | Ok m -> m
  | Error msg -> die ~code:Qruntime.Qir_error.exit_parse "%s: %s" path msg

let or_die = function
  | Ok v -> v
  | Error msg -> die ~code:Qruntime.Qir_error.exit_parse "%s" msg
