(* qirc — transform, optimize and check QIR programs.

   Examples:
     qirc input.ll --lower                      # flatten towards base profile
     qirc input.ll --pass mem2reg --pass dce    # run individual passes
     qirc input.ll --check base                 # profile conformance report
     qirc input.ll --to-static                  # rewrite qubit addressing
     qirc input.ll --emit qasm2                 # transpile to OpenQASM 2 *)

open Cmdliner

(* Make the analysis layer's passes available to --pass. *)
let () = Qir_analysis.Quantum_dce.register ()
let () = Qir_analysis.Qdf_opt.register ()

let run input passes lower optimize opt_quantum check addressing emit verify
    lint resources werror output =
  Cli_common.protect @@ fun () ->
  let m = Cli_common.parse_qir_file input in
  (* 1. individual passes, in order *)
  let m =
    List.fold_left
      (fun m name ->
        if
          Passes.Pipeline.find_pass name <> None
          || Passes.Pipeline.find_module_pass name <> None
        then Passes.Pipeline.run_pass name m
        else
          Cli_common.die ~code:Qruntime.Qir_error.exit_usage
            "unknown pass %s (available: %s)" name
            (String.concat ", " (Passes.Pipeline.pass_names ())))
      m passes
  in
  (* 2. preset pipelines *)
  let m = if optimize then Passes.Pipeline.optimize m else m in
  let m = if lower then Qir.Lowering.lower_module m else m in
  (* 2b. value-semantics quantum optimizer *)
  let m = if opt_quantum then fst (Qir_analysis.Qdf_opt.optimize m) else m in
  (* 3. addressing conversion *)
  let m =
    match addressing with
    | None -> m
    | Some `Static -> Qir.Addressing.to_static m
    | Some `Dynamic -> Qir.Addressing.to_dynamic m
  in
  (* 4. verification — violations are reported and exit through the
     unified error taxonomy (Verify kind, exit 3) *)
  if verify then begin
    match Llvm_ir.Verifier.check_module m with
    | [] -> ()
    | vs ->
      let errs = List.map Qruntime.Qir_error.of_verifier_violation vs in
      List.iter
        (fun e -> Format.eprintf "%s@\n" (Qruntime.Qir_error.to_string e))
        errs;
      exit (Qruntime.Qir_error.exit_code (List.hd errs))
  end;
  (* 5. lint *)
  if lint then begin
    let ds = Qir_analysis.Lint.run m in
    Format.eprintf "%a" Qir_analysis.Diagnostic.render_text ds;
    let failing =
      List.exists
        (fun (d : Qir_analysis.Diagnostic.t) ->
          match d.Qir_analysis.Diagnostic.severity with
          | Qir_analysis.Diagnostic.Error -> true
          | Qir_analysis.Diagnostic.Warning -> werror
          | Qir_analysis.Diagnostic.Note -> false)
        ds
    in
    if failing then
      exit
        (Qruntime.Qir_error.exit_code
           (Qruntime.Qir_error.of_diagnostic (List.hd ds)))
  end;
  (* 5b. resource certification: the certificate and the QR-series
     findings against the simulator's register cap, on stderr so the
     emitted program on stdout stays clean. Errors (QR001 with a
     proven bound over the cap) fail like --lint. *)
  if resources then begin
    let cert = Qir_analysis.Resource.certify m in
    let opts =
      {
        Qir_analysis.Resource_lint.default_opts with
        Qir_analysis.Resource_lint.qubit_cap = Some Qsim.Statevector.max_qubits;
      }
    in
    let ds = Qir_analysis.Resource_lint.check ~opts cert in
    Format.eprintf "%a" Qir_analysis.Resource.pp_text cert;
    Format.eprintf "%a" Qir_analysis.Diagnostic.render_text ds;
    if
      Qir_analysis.Diagnostic.errors ds > 0
      || (werror && Qir_analysis.Diagnostic.warnings ds > 0)
    then exit Qruntime.Qir_error.exit_verify
  end;
  (* 6. profile check *)
  (match check with
  | None -> ()
  | Some profile -> (
    match Qir.Profile_check.check profile m with
    | [] ->
      Format.eprintf "conforms to %s@." (Qir.Profile.name profile)
    | vs ->
      List.iter
        (fun v -> Format.eprintf "%a@\n" Qir.Profile_check.pp_violation v)
        vs;
      exit Qruntime.Qir_error.exit_verify));
  (* 7. output *)
  let text =
    match emit with
    | `Qir -> Llvm_ir.Printer.module_to_string m
    | `Qasm2 -> Qcircuit.Qasm2.to_string (Qir.Qir_parser.parse m)
    | `Qasm3 -> Qcircuit.Qasm3.to_string (Qir.Qir_parser.parse m)
    | `Circuit -> Qcircuit.Circuit.to_string (Qir.Qir_parser.parse m)
    | `Mlir -> Qir.Mlir_emit.emit_module m
    | `None -> ""
  in
  Cli_common.write_output output text

let input =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"INPUT.ll"
         ~doc:"QIR input file ('-' for stdin).")

let passes =
  Arg.(value & opt_all string [] & info [ "pass"; "p" ] ~docv:"NAME"
         ~doc:"Run an individual pass (repeatable): mem2reg, const-fold, \
               sccp, dce, simplify-cfg, loop-unroll, inline.")

let lower =
  Arg.(value & flag & info [ "lower" ]
         ~doc:"Run the lowering pipeline (inline, mem2reg, constant \
               propagation, loop unrolling, cleanup).")

let optimize =
  Arg.(value & flag & info [ "O"; "optimize" ]
         ~doc:"Run the standard optimization pipeline.")

let opt_quantum =
  Arg.(value & flag & info [ "opt-quantum" ]
         ~doc:"Run the value-semantics quantum dataflow optimizer \
               (cancellation, rotation merging, early release, static \
               promotion).")

let profile_conv =
  Arg.enum
    [ ("base", Qir.Profile.Base); ("adaptive", Qir.Profile.Adaptive);
      ("full", Qir.Profile.Full) ]

let check =
  Arg.(value & opt (some profile_conv) None & info [ "check" ] ~docv:"PROFILE"
         ~doc:"Check conformance against a QIR profile (base, adaptive, full).")

let addressing =
  let enum_conv = Arg.enum [ ("static", `Static); ("dynamic", `Dynamic) ] in
  Arg.(value & opt (some enum_conv) None & info [ "addressing" ] ~docv:"STYLE"
         ~doc:"Convert qubit addressing (static or dynamic).")

let emit =
  let enum_conv =
    Arg.enum
      [ ("qir", `Qir); ("qasm2", `Qasm2); ("qasm3", `Qasm3);
        ("circuit", `Circuit); ("mlir", `Mlir); ("none", `None) ]
  in
  Arg.(value & opt enum_conv `Qir & info [ "emit" ] ~docv:"FORMAT"
         ~doc:"Output format: qir (default), qasm2, qasm3, circuit, mlir, none.")

let verify =
  Arg.(value & flag & info [ "verify" ] ~doc:"Run the IR verifier and fail \
                                              on violations.")

let lint =
  Arg.(value & flag & info [ "lint" ]
         ~doc:"Run the qir-lint analyses and fail on error-severity \
               findings.")

let resources =
  Arg.(value & flag & info [ "resources" ]
         ~doc:"Certify static resource bounds (qubits, gates, T-count, \
               depth, shot-loop trips) for the transformed program and \
               check the QR-series rules against the simulator's \
               register cap; the certificate and findings go to stderr.")

let werror =
  Arg.(value & flag & info [ "Werror" ]
         ~doc:"With --lint or --resources: treat warnings as errors.")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write output to FILE instead of stdout.")

let cmd =
  let doc = "transform, optimize and check QIR programs" in
  Cmd.v
    (Cmd.info "qirc" ~doc)
    Term.(
      const run $ input $ passes $ lower $ optimize $ opt_quantum $ check
      $ addressing $ emit $ verify $ lint $ resources $ werror $ output)

let () = exit (Cmd.eval cmd)
