(* qir2qasm — transpile QIR to OpenQASM 2 or 3, lowering (inlining and
   unrolling classical control flow) first when necessary.

   Example: qir2qasm program.ll --qasm3 *)

open Cmdliner

let run input qasm3 lower output =
  Cli_common.protect @@ fun () ->
  let m = Cli_common.parse_qir_file input in
  let circuit =
    if lower then
      match Qir.Lowering.lower_to_circuit m with
      | Ok c -> c
      | Error e ->
        Cli_common.die ~code:Qruntime.Qir_error.exit_exec "%s"
          (Format.asprintf "%a" Qir.Lowering.pp_error e)
    else
      match Qir.Qir_parser.parse_result m with
      | Ok c -> c
      | Error msg ->
        Cli_common.die ~code:Qruntime.Qir_error.exit_exec
          "%s (hint: try --lower)" msg
  in
  let text =
    if qasm3 then Qcircuit.Qasm3.to_string circuit
    else Qcircuit.Qasm2.to_string circuit
  in
  Cli_common.write_output output text

let input =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"INPUT.ll"
         ~doc:"QIR input file ('-' for stdin).")

let qasm3 =
  Arg.(value & flag & info [ "qasm3"; "3" ]
         ~doc:"Emit OpenQASM 3 (default: OpenQASM 2).")

let lower =
  Arg.(value & flag & info [ "lower" ]
         ~doc:"Run the lowering pipeline before extracting the circuit \
               (needed for programs with loops or helper functions).")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write output to FILE instead of stdout.")

let cmd =
  let doc = "transpile QIR to OpenQASM 2/3" in
  Cmd.v
    (Cmd.info "qir2qasm" ~doc)
    Term.(const run $ input $ qasm3 $ lower $ output)

let () = exit (Cmd.eval cmd)
