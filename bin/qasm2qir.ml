(* qasm2qir — compile OpenQASM (2 or 3) to QIR.

   Example: qasm2qir bell.qasm --addressing dynamic *)

open Cmdliner

let run input qasm3 addressing record_output output =
  Cli_common.protect @@ fun () ->
  let src = Cli_common.read_file input in
  let circuit =
    if qasm3 then
      Cli_common.or_die (Qcircuit.Qasm3.parse_result src)
    else Cli_common.or_die (Qcircuit.Qasm2.parse_result src)
  in
  let m = Qir.Qir_builder.build ~addressing ~record_output circuit in
  Cli_common.write_output output (Llvm_ir.Printer.module_to_string m)

let input =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"INPUT.qasm"
         ~doc:"OpenQASM input file ('-' for stdin).")

let qasm3 =
  Arg.(value & flag & info [ "qasm3"; "3" ]
         ~doc:"Parse the input as OpenQASM 3 (default: OpenQASM 2).")

let addressing =
  let enum_conv = Arg.enum [ ("static", `Static); ("dynamic", `Dynamic) ] in
  Arg.(value & opt enum_conv `Static & info [ "addressing" ] ~docv:"STYLE"
         ~doc:"Qubit addressing style: static (Ex.6, default) or dynamic \
               (Fig.1).")

let record_output =
  Arg.(value & opt bool true & info [ "record-output" ] ~docv:"BOOL"
         ~doc:"Emit output-recording calls (default true).")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write output to FILE instead of stdout.")

let cmd =
  let doc = "compile OpenQASM 2/3 to QIR" in
  Cmd.v
    (Cmd.info "qasm2qir" ~doc)
    Term.(const run $ input $ qasm3 $ addressing $ record_output $ output)

let () = exit (Cmd.eval cmd)
