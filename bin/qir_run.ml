(* qir-run — execute a QIR program on the simulator-backed runtime (the
   lli-plus-quantum-runtime architecture of the paper's Sec. III-C).

   Examples:
     qir-run program.ll --shots 1000 --backend statevector
     qir-run program.ll --shots 1000 --backend faulty:gate=0.05 --retries 5
     qir-run program.ll --timeout 10 --shot-timeout 0.5

   Exit codes: 0 ok, 2 parse, 3 verify, 4 exec, 5 timeout/degraded,
   6 backend, 7 usage, 8 overload (--mem-budget admission rejection). *)

open Cmdliner

let run input shots seed backend no_batch engine stats timeout shot_timeout
    retries domains local_bits mem_budget opt_quantum =
  Cli_common.protect @@ fun () ->
  Option.iter
    (fun n ->
      if n < 1 then
        Cli_common.die ~code:Qruntime.Qir_error.exit_usage
          "--domains: need at least one domain";
      Qsim.Dpool.set_domains n)
    domains;
  Option.iter
    (fun b ->
      if b < 1 || b > Qsim.Statevector.max_qubits then
        Cli_common.die ~code:Qruntime.Qir_error.exit_usage
          "--local-bits: expected 1..%d" Qsim.Statevector.max_qubits;
      Qsim.Statevector.set_max_local_bits b)
    local_bits;
  let t0 = Unix.gettimeofday () in
  let m = Cli_common.parse_qir_file input in
  let parse_s = Unix.gettimeofday () -. t0 in
  (* Value-semantics quantum optimizer, before admission and execution;
     the opt: line under --stats reports what it proved and rewrote.
     Its wall clock is part of analysis_s in the timings line — every
     static pass lands in the same bucket. *)
  let m, opt_stats, opt_s =
    if opt_quantum then begin
      let ot0 = Unix.gettimeofday () in
      let m', st = Qir_analysis.Qdf_opt.optimize m in
      (m', Some st, Unix.gettimeofday () -. ot0)
    end
    else (m, None, 0.)
  in
  let print_opt_stats () =
    Option.iter
      (fun (st : Qir_analysis.Qdf_opt.stats) ->
        Printf.printf
          "opt: {\"gates_before\": %d, \"gates_after\": %d, \
           \"cancelled\": %d, \"merged\": %d, \"releases_hoisted\": %d, \
           \"promoted\": %b}\n"
          st.Qir_analysis.Qdf_opt.s_gates_before
          st.Qir_analysis.Qdf_opt.s_gates_after
          st.Qir_analysis.Qdf_opt.s_cancelled st.Qir_analysis.Qdf_opt.s_merged
          st.Qir_analysis.Qdf_opt.s_hoisted
          (st.Qir_analysis.Qdf_opt.s_promoted > 0))
      opt_stats
  in
  (* The service tier's admission check, exposed standalone: certify
     the module's static resource bounds and reject — before compiling
     anything — when the proven lower bound already breaches the
     budget, or when the charged footprint (proof over declaration)
     exceeds it. Exit 8 (overload), like qir-serve. *)
  let resource_s = ref 0. in
  Option.iter
    (fun budget ->
      let cert, cert_s, _ =
        Qruntime.Executor.Session.cert_of Qruntime.Executor.Session.default m
      in
      resource_s := cert_s;
      match Qservice.Admission.check ~cert ~budget ~backend m with
      | Ok v ->
        Option.iter
          (fun note -> Printf.eprintf "qir-run: %s\n%!" note)
          v.Qservice.Admission.v_qr003
      | Error e -> Cli_common.fail_error e)
    mem_budget;
  (* Wall-clock breakdown under --stats, as one stable-keyed JSON line:
     parse / analysis (every static pass: quantum optimizer plus
     gate-tape eligibility) / resource (certification for admission) /
     compile (bytecode) / execute. Values vary run to run; the keys
     are the contract. *)
  let print_timings ~compile_s ~analysis_s =
    let analysis_s = analysis_s +. opt_s in
    let total_s = Unix.gettimeofday () -. t0 in
    let execute_s =
      Float.max 0.
        (total_s -. parse_s -. analysis_s -. !resource_s -. compile_s)
    in
    Printf.printf
      "timings: {\"parse_s\": %.6f, \"analysis_s\": %.6f, \"resource_s\": \
       %.6f, \"compile_s\": %.6f, \"execute_s\": %.6f, \"total_s\": %.6f}\n"
      parse_s analysis_s !resource_s compile_s execute_s total_s
  in
  let policy =
    {
      Qruntime.Resilience.default with
      Qruntime.Resilience.max_retries = retries;
      total_timeout = timeout;
      shot_timeout;
    }
  in
  if shots = 1 then begin
    match Qruntime.Executor.run_resilient ~policy ~seed ~backend ~engine m with
    | Error e -> Cli_common.fail_error e
    | Ok r ->
      if String.length r.Qruntime.Executor.output > 0 then
        Printf.printf "output: %s\n" r.Qruntime.Executor.output;
      List.iter
        (fun (addr, b) ->
          Printf.printf "result 0x%Lx = %s\n" addr (if b then "1" else "0"))
        r.Qruntime.Executor.results;
      if stats then begin
        let i = r.Qruntime.Executor.interp_stats in
        let q = r.Qruntime.Executor.runtime_stats in
        Printf.printf
          "instructions=%d external-calls=%d gates=%d measurements=%d \
           resets=%d engine=%s\n"
          i.Llvm_ir.Interp.instructions i.Llvm_ir.Interp.external_calls
          q.Qruntime.Runtime.gate_calls q.Qruntime.Runtime.measurements
          q.Qruntime.Runtime.resets r.Qruntime.Executor.engine_used;
        print_opt_stats ();
        print_timings ~compile_s:r.Qruntime.Executor.compile_s ~analysis_s:0.
      end
  end
  else begin
    let r =
      Qruntime.Executor.run_shots_resilient ~policy ~seed ~backend
        ~batch:(not no_batch) ~engine ~shots m
    in
    Format.printf "%a@?" Qruntime.Executor.pp_histogram
      r.Qruntime.Executor.histogram;
    if stats then begin
      Printf.printf
        "completed=%d/%d retries=%d batched=%b batch-fallback=%b \
         pool-fallbacks=%d engine=%s tape=%b\n"
        r.Qruntime.Executor.completed r.Qruntime.Executor.requested
        r.Qruntime.Executor.retries r.Qruntime.Executor.batched
        r.Qruntime.Executor.batch_fallback r.Qruntime.Executor.pool_fallbacks
        r.Qruntime.Executor.engine r.Qruntime.Executor.tape;
      (* Machine-readable mirror of the line above, plus the session
         cache counters — stable keys, like the timings line. *)
      let c =
        Qruntime.Executor.Session.cache_stats Qruntime.Executor.Session.default
      in
      Printf.printf
        "stats: {\"completed\": %d, \"requested\": %d, \"retries\": %d, \
         \"batched\": %b, \"batch_fallback\": %b, \"pool_fallbacks\": %d, \
         \"engine\": \"%s\", \"tape\": %b, \"compile_cache_hits\": %d, \
         \"compile_cache_misses\": %d, \"tape_cache_hits\": %d, \
         \"tape_cache_misses\": %d}\n"
        r.Qruntime.Executor.completed r.Qruntime.Executor.requested
        r.Qruntime.Executor.retries r.Qruntime.Executor.batched
        r.Qruntime.Executor.batch_fallback r.Qruntime.Executor.pool_fallbacks
        r.Qruntime.Executor.engine r.Qruntime.Executor.tape
        c.Qruntime.Executor.Session.compile_hits
        c.Qruntime.Executor.Session.compile_misses
        c.Qruntime.Executor.Session.tape_hits
        c.Qruntime.Executor.Session.tape_misses;
      print_opt_stats ();
      print_timings ~compile_s:r.Qruntime.Executor.compile_s
        ~analysis_s:r.Qruntime.Executor.analysis_s
    end;
    if r.Qruntime.Executor.degraded then begin
      Printf.eprintf
        "qir-run: deadline expired after %d/%d shots (degraded result)\n"
        r.Qruntime.Executor.completed r.Qruntime.Executor.requested;
      exit Qruntime.Qir_error.exit_timeout
    end
  end

let input =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"INPUT.ll"
         ~doc:"QIR input file ('-' for stdin).")

let shots =
  Arg.(value & opt int 1 & info [ "shots"; "n" ] ~docv:"N"
         ~doc:"Number of shots (1 = single run with detailed results).")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let backend_conv : Qruntime.Executor.backend_kind Arg.conv =
  let parse s =
    match s with
    | "statevector" -> Ok `Statevector
    | "stabilizer" -> Ok `Stabilizer
    | _ when s = "faulty" || String.starts_with ~prefix:"faulty:" s -> (
      let spec_text =
        if String.length s > 7 then String.sub s 7 (String.length s - 7)
        else ""
      in
      match Qsim.Faulty.spec_of_string spec_text with
      | Ok spec -> Ok (`Faulty spec)
      | Error msg -> Error (`Msg msg))
    | _ ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown backend %S (expected statevector, stabilizer or \
               faulty:<spec>)"
              s))
  in
  let print ppf (b : Qruntime.Executor.backend_kind) =
    match b with
    | `Statevector -> Format.pp_print_string ppf "statevector"
    | `Stabilizer -> Format.pp_print_string ppf "stabilizer"
    | `Faulty spec ->
      Format.fprintf ppf "faulty:%s" (Qsim.Faulty.spec_to_string spec)
  in
  Arg.conv (parse, print)

let backend =
  Arg.(value & opt backend_conv `Statevector & info [ "backend" ]
         ~docv:"BACKEND"
         ~doc:"Simulator backend: statevector (default), stabilizer \
               (Clifford-only, scales to many qubits), or \
               faulty:<spec> — a fault-injecting wrapper for resilience \
               testing, e.g. \
               faulty:gate=0.05,measure=0.01,crash=0.001,seed=7 (a bare \
               rate faulty:0.05 splits it across gate/measure/crash). \
               Faulty runs execute per shot so faults exercise the \
               retry machinery.")

let engine_conv : Qruntime.Executor.engine Arg.conv =
  let parse = function
    | "ast" -> Ok `Ast
    | "bytecode" -> Ok `Bytecode
    | "auto" -> Ok `Auto
    | s ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown engine %S (expected ast, bytecode or auto)" s))
  in
  let print ppf (e : Qruntime.Executor.engine) =
    Format.pp_print_string ppf
      (match e with `Ast -> "ast" | `Bytecode -> "bytecode" | `Auto -> "auto")
  in
  Arg.conv (parse, print)

let engine =
  Arg.(value & opt engine_conv `Auto & info [ "engine" ] ~docv:"ENGINE"
         ~doc:"Execution engine: ast (tree-walking interpreter), bytecode \
               (compile each function once to a flat instruction array \
               and execute that), or auto (default: bytecode, plus the \
               gate-tape fast path for proved-static multi-shot \
               programs). All engines produce bit-identical results for \
               identical seeds.")

let no_batch =
  Arg.(value & flag & info [ "no-batch" ]
         ~doc:"Disable the batched sampling fast path and interpret the \
               program once per shot. By default, measurement-terminal \
               programs are simulated once and all shots are drawn from \
               the final distribution.")

let stats =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print interpreter/runtime statistics (single shot) or \
               resilience statistics (multi-shot).")

let timeout =
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SEC"
         ~doc:"Total wall-clock budget. On expiry, completed shots are \
               printed and the exit code is 5 (degraded result).")

let shot_timeout =
  Arg.(value & opt (some float) None & info [ "shot-timeout" ] ~docv:"SEC"
         ~doc:"Wall-clock budget per shot, enforced inside the \
               interpreter.")

let retries =
  Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N"
         ~doc:"Retries per shot for transient backend faults (with \
               exponential backoff); 0 fails on the first fault.")

let domains =
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
         ~doc:"Worker-domain count for the statevector kernels \
               (overrides QIR_SIM_DOMAINS; default: the runtime's \
               recommended domain count).")

let local_bits =
  Arg.(value & opt (some int) None & info [ "local-bits" ] ~docv:"BITS"
         ~doc:"Statevector shard granularity: each shard holds 2^BITS \
               amplitudes (overrides QIR_SIM_LOCAL_BITS; default 24). \
               Registers beyond BITS qubits are split across multiple \
               contiguous shards.")

(* Byte sizes with binary suffixes: "256MiB", "16GiB", "64K", "1048576". *)
let bytes_conv : int Arg.conv =
  let parse s =
    let num, unit_ =
      let i = ref 0 in
      while
        !i < String.length s
        && (match s.[!i] with '0' .. '9' -> true | _ -> false)
      do
        incr i
      done;
      (String.sub s 0 !i, String.sub s !i (String.length s - !i))
    in
    match
      ( int_of_string_opt num,
        match String.lowercase_ascii unit_ with
        | "" | "b" -> Some 1
        | "k" | "kib" -> Some 1024
        | "m" | "mib" -> Some (1024 * 1024)
        | "g" | "gib" -> Some (1024 * 1024 * 1024)
        | _ -> None )
    with
    | Some n, Some scale when n >= 0 -> Ok (n * scale)
    | _ ->
      Error
        (`Msg
           (Printf.sprintf
              "bad size %S (expected e.g. 1048576, 64K, 256MiB, 16GiB)" s))
  in
  let print ppf bytes =
    Format.pp_print_string ppf (Qservice.Admission.bytes_to_string bytes)
  in
  Arg.conv (parse, print)

let mem_budget =
  Arg.(value & opt (some bytes_conv) None & info [ "mem-budget" ] ~docv:"SIZE"
         ~doc:"Reject the program (exit 8, overload) before execution if \
               its simulator memory footprint — sized from the static \
               resource certificate's proven qubit bounds, upgraded over \
               the entry point's required_num_qubits attribute, at 16 \
               bytes per statevector amplitude — exceeds SIZE (e.g. \
               256MiB, 16GiB). A proven lower bound over budget rejects \
               before anything is compiled. The same admission check \
               qir-serve applies per job.")

let opt_quantum =
  Arg.(value & flag & info [ "opt-quantum" ]
         ~doc:"Run the value-semantics quantum dataflow optimizer before \
               execution: proof-carrying gate cancellation, rotation \
               merging, early qubit release and static promotion. \
               Histograms are bit-identical to the unoptimized program \
               at a fixed seed.")

let cmd =
  let doc = "execute QIR programs on a simulator-backed runtime" in
  Cmd.v
    (Cmd.info "qir-run" ~doc)
    Term.(
      const run $ input $ shots $ seed $ backend $ no_batch $ engine $ stats
      $ timeout $ shot_timeout $ retries $ domains $ local_bits $ mem_budget
      $ opt_quantum)

let () = exit (Cmd.eval cmd)
