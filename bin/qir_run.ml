(* qir-run — execute a QIR program on the simulator-backed runtime (the
   lli-plus-quantum-runtime architecture of the paper's Sec. III-C).

   Example: qir-run program.ll --shots 1000 --backend statevector *)

open Cmdliner

let run input shots seed backend no_batch stats =
  let m = Cli_common.parse_qir_file input in
  if shots = 1 then begin
    let r = Qruntime.Executor.run ~seed ~backend m in
    if String.length r.Qruntime.Executor.output > 0 then
      Printf.printf "output: %s\n" r.Qruntime.Executor.output;
    List.iter
      (fun (addr, b) ->
        Printf.printf "result 0x%Lx = %s\n" addr (if b then "1" else "0"))
      r.Qruntime.Executor.results;
    if stats then begin
      let i = r.Qruntime.Executor.interp_stats in
      let q = r.Qruntime.Executor.runtime_stats in
      Printf.printf
        "instructions=%d external-calls=%d gates=%d measurements=%d resets=%d\n"
        i.Llvm_ir.Interp.instructions i.Llvm_ir.Interp.external_calls
        q.Qruntime.Runtime.gate_calls q.Qruntime.Runtime.measurements
        q.Qruntime.Runtime.resets
    end
  end
  else begin
    let hist =
      Qruntime.Executor.run_shots ~seed ~backend ~batch:(not no_batch) ~shots m
    in
    Format.printf "%a" Qruntime.Executor.pp_histogram hist
  end

let input =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"INPUT.ll"
         ~doc:"QIR input file ('-' for stdin).")

let shots =
  Arg.(value & opt int 1 & info [ "shots"; "n" ] ~docv:"N"
         ~doc:"Number of shots (1 = single run with detailed results).")

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let backend =
  let enum_conv =
    Arg.enum [ ("statevector", `Statevector); ("stabilizer", `Stabilizer) ]
  in
  Arg.(value & opt enum_conv `Statevector & info [ "backend" ] ~docv:"BACKEND"
         ~doc:"Simulator backend: statevector (default) or stabilizer \
               (Clifford-only, scales to many qubits).")

let no_batch =
  Arg.(value & flag & info [ "no-batch" ]
         ~doc:"Disable the batched sampling fast path and interpret the \
               program once per shot. By default, measurement-terminal \
               programs are simulated once and all shots are drawn from \
               the final distribution.")

let stats =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Print interpreter and runtime statistics.")

let cmd =
  let doc = "execute QIR programs on a simulator-backed runtime" in
  Cmd.v
    (Cmd.info "qir-run" ~doc)
    Term.(const run $ input $ shots $ seed $ backend $ no_batch $ stats)

let () = exit (Cmd.eval cmd)
