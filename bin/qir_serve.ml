(* qir-serve — the multi-tenant QIR execution service (Qservice) as a
   long-running daemon.

   Two transports, one protocol (newline-delimited JSON requests in,
   events out; see lib/service/protocol.ml):

   - batch mode (default): read requests from FILE or stdin. Submits
     are admitted as they are read (accepted/rejected events stream
     immediately), execution is deferred until every request is in so
     the weighted fair scheduler actually has a queue to arbitrate,
     then the queue drains (progress/result/failed events) and any
     "stats" request reports the post-drain totals. Deterministic, so
     the cram tests drive this mode.

   - --socket PATH: a Unix-domain-socket daemon. Each connection gets
     a reader thread; --executors N Domains drain the shared queue
     concurrently (the service core is Domain-safe) and events route
     back to the connection that submitted the job. Runs until killed.

   Exit codes: 0 ok, 7 usage. Per-job failures never kill the daemon —
   they are events on the wire carrying the taxonomy (rejections are
   kind=overload, exit_code 8). *)

open Cmdliner

let usage_die fmt = Cli_common.die ~code:Qruntime.Qir_error.exit_usage fmt

(* ------------------------------------------------------------------ *)
(* Request handling shared by both transports                           *)

type sink = { mutable write : string -> unit }

let handle_submit service ~(out : sink) ~id ~tenant ~program ~shots ~seed
    ~backend ~engine ~timeout =
  let source =
    match program with
    | `Inline text -> Ok text
    | `File path -> (
      try Ok (Cli_common.read_file path)
      with Sys_error msg ->
        Error
          (Qruntime.Qir_error.make ~kind:Qruntime.Qir_error.Usage
             ~layer:Qruntime.Qir_error.L_service msg))
  in
  match
    Result.bind source (fun src -> Qservice.Service.intern service ~source:src)
  with
  | Error e ->
    out.write
      (Qservice.Protocol.event_line
         (Qservice.Service.Rejected
            {
              id = Option.value ~default:"?" id;
              tenant;
              error = e;
              shed = false;
            }))
  | Ok m ->
    Qservice.Service.submit service ~tenant ?id ~shots ~seed ~backend ~engine
      ?timeout m

let handle_line service ~out ~route line =
  match String.trim line with
  | "" -> `Continue
  | line -> (
    match Qservice.Protocol.parse_request line with
    | Error e ->
      out.write (Qservice.Protocol.error_line e);
      `Continue
    | Ok Qservice.Protocol.Quit -> `Quit
    | Ok Qservice.Protocol.Stats -> `Stats
    | Ok
        (Qservice.Protocol.Submit
           { id; tenant; program; shots; seed; backend; engine; timeout }) ->
      let id = route ~requested:id in
      handle_submit service ~out ~id ~tenant ~program ~shots ~seed ~backend
        ~engine ~timeout;
      `Continue)

(* ------------------------------------------------------------------ *)
(* Batch mode                                                           *)

let run_batch config ~executors input =
  let out = { write = (fun line -> print_string line; print_newline ()) } in
  let service =
    Qservice.Service.create ~config
      ~emit:(fun ev -> out.write (Qservice.Protocol.event_line ev))
      ()
  in
  let ic =
    if String.equal input "-" then In_channel.stdin
    else
      try In_channel.open_text input
      with Sys_error msg -> usage_die "%s" msg
  in
  let want_stats = ref false in
  (try
     let quit = ref false in
     while not !quit do
       match In_channel.input_line ic with
       | None -> quit := true
       | Some line -> (
         match
           handle_line service ~out ~route:(fun ~requested -> requested) line
         with
         | `Quit -> quit := true
         | `Stats -> want_stats := true
         | `Continue -> ())
     done
   with e ->
     if not (String.equal input "-") then In_channel.close ic;
     raise e);
  if not (String.equal input "-") then In_channel.close ic;
  Qservice.Service.drain_parallel ~executors service;
  if !want_stats then
    out.write (Qservice.Protocol.stats_line (Qservice.Service.stats service))

(* ------------------------------------------------------------------ *)
(* Socket daemon                                                        *)

let run_socket config ~executors path =
  (* The service core is internally Domain-safe; this lock only guards
     the daemon's own routing table. *)
  let lock = Mutex.create () in
  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
  in
  (* job id -> the connection sink that submitted it; ids are made
     unique server-side so routing cannot be confused by clients
     reusing ids across connections. *)
  let routes : (string, sink) Hashtbl.t = Hashtbl.create 32 in
  let next_id = ref 0 in
  let dead = { write = (fun _ -> ()) } in
  let sink_of id =
    locked (fun () ->
        Option.value ~default:dead (Hashtbl.find_opt routes id))
  in
  let emit ev =
    let deliver id line =
      (* a vanished client must not kill the executor thread *)
      try (sink_of id).write line with Sys_error _ | Unix.Unix_error _ -> ()
    in
    let line = Qservice.Protocol.event_line ev in
    match ev with
    | Qservice.Service.Accepted { id; _ } | Qservice.Service.Progress { id; _ }
      ->
      deliver id line
    | Qservice.Service.Rejected { id; _ } ->
      deliver id line;
      locked (fun () -> Hashtbl.remove routes id)
    | Qservice.Service.Result { id; _ } | Qservice.Service.Failed { id; _ } ->
      deliver id line;
      locked (fun () -> Hashtbl.remove routes id)
  in
  let service = Qservice.Service.create ~config ~emit () in
  (* one drain loop per executor Domain, all claiming from the shared
     fair queue; idle loops back off so an empty daemon costs nothing *)
  let _executors =
    Array.init executors (fun _ ->
        Domain.spawn (fun () ->
            while true do
              if not (Qservice.Service.run_once service) then
                Thread.delay 0.01
            done))
  in
  let serve_conn fd =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let out_lock = Mutex.create () in
    let out =
      {
        write =
          (fun line ->
            Mutex.lock out_lock;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock out_lock)
              (fun () ->
                output_string oc line;
                output_char oc '\n';
                flush oc));
      }
    in
    let route ~requested =
      locked (fun () ->
          incr next_id;
          let id =
            match requested with
            | Some id -> Printf.sprintf "%s#%d" id !next_id
            | None -> Printf.sprintf "job-%d" !next_id
          in
          Hashtbl.replace routes id out;
          Some id)
    in
    let quit = ref false in
    (try
       while not !quit do
         match In_channel.input_line ic with
         | None -> quit := true
         | Some line -> (
           match handle_line service ~out ~route line with
           | `Quit -> quit := true
           | `Stats ->
             out.write
               (Qservice.Protocol.stats_line (Qservice.Service.stats service))
           | `Continue -> ())
       done
     with Sys_error _ | Unix.Unix_error _ | End_of_file -> ());
    out.write <- (fun _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  if Sys.file_exists path then Unix.unlink path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  Printf.eprintf "qir-serve: listening on %s\n%!" path;
  while true do
    let fd, _ = Unix.accept sock in
    ignore (Thread.create serve_conn fd)
  done

(* ------------------------------------------------------------------ *)
(* CLI                                                                  *)

let bytes_conv : int Arg.conv =
  let parse s =
    let num, unit_ =
      let i = ref 0 in
      while
        !i < String.length s
        && (match s.[!i] with '0' .. '9' -> true | _ -> false)
      do
        incr i
      done;
      (String.sub s 0 !i, String.sub s !i (String.length s - !i))
    in
    match
      ( int_of_string_opt num,
        match String.lowercase_ascii unit_ with
        | "" | "b" -> Some 1
        | "k" | "kib" -> Some 1024
        | "m" | "mib" -> Some (1024 * 1024)
        | "g" | "gib" -> Some (1024 * 1024 * 1024)
        | _ -> None )
    with
    | Some n, Some scale when n >= 0 -> Ok (n * scale)
    | _ ->
      Error
        (`Msg
           (Printf.sprintf
              "bad size %S (expected e.g. 1048576, 64K, 256MiB, 16GiB)" s))
  in
  let print ppf bytes =
    Format.pp_print_string ppf (Qservice.Admission.bytes_to_string bytes)
  in
  Arg.conv (parse, print)

let weight_conv : (string * int) Arg.conv =
  let parse s =
    match String.index_opt s '=' with
    | Some i -> (
      let tenant = String.sub s 0 i in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some w when w >= 1 && tenant <> "" -> Ok (tenant, w)
      | _ -> Error (`Msg (Printf.sprintf "bad weight %S (expected TENANT=N)" s)))
    | None -> Error (`Msg (Printf.sprintf "bad weight %S (expected TENANT=N)" s))
  in
  let print ppf (t, w) = Format.fprintf ppf "%s=%d" t w in
  Arg.conv (parse, print)

let serve input socket mem_budget max_queue max_tenant_queue max_shots timeout
    retries breaker_threshold breaker_cooldown overload_depth chunk weights
    no_sleep executors domains local_bits =
  Cli_common.protect @@ fun () ->
  if max_queue < 1 then usage_die "--max-queue: need at least 1";
  if overload_depth < 1 then usage_die "--overload-depth: need at least 1";
  if chunk < 1 then usage_die "--chunk: need at least 1";
  if executors < 1 then usage_die "--executors: need at least 1";
  Option.iter
    (fun n ->
      if n < 1 then usage_die "--domains: need at least one domain";
      Qsim.Dpool.set_domains n)
    domains;
  Option.iter
    (fun b ->
      if b < 1 || b > Qsim.Statevector.max_qubits then
        usage_die "--local-bits: expected 1..%d" Qsim.Statevector.max_qubits;
      Qsim.Statevector.set_max_local_bits b)
    local_bits;
  let config =
    {
      Qservice.Service.default_config with
      Qservice.Service.mem_budget;
      max_queue;
      max_tenant_queue;
      max_shots;
      default_timeout = timeout;
      retries;
      breaker_threshold;
      breaker_cooldown;
      overload_depth;
      chunk;
      tenant_weights = weights;
      sleep = not no_sleep;
    }
  in
  match socket with
  | Some path -> run_socket config ~executors path
  | None -> run_batch config ~executors input

let input =
  Arg.(value & pos 0 string "-" & info [] ~docv:"REQUESTS.ndjson"
         ~doc:"Batch-mode input: newline-delimited JSON requests ('-' for \
               stdin). Ignored under --socket.")

let socket =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Listen on a Unix domain socket at PATH instead of running \
               one stdin batch; one connection per client, events routed \
               back to the submitting connection.")

let mem_budget =
  Arg.(value & opt bytes_conv (1 lsl 34) & info [ "mem-budget" ] ~docv:"SIZE"
         ~doc:"Admission memory budget per job (default 16GiB, the \
               30-qubit statevector): jobs whose simulator footprint \
               exceeds SIZE are rejected fast with kind=overload \
               (exit code 8), before touching the simulator.")

let max_queue =
  Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N"
         ~doc:"Global queued-job ceiling; beyond it, load is shed \
               cache-coldest-first.")

let max_tenant_queue =
  Arg.(value & opt int 32 & info [ "max-tenant-queue" ] ~docv:"N"
         ~doc:"Per-tenant queued-job quota.")

let max_shots =
  Arg.(value & opt int 1_000_000 & info [ "max-shots" ] ~docv:"N"
         ~doc:"Per-job shot quota.")

let timeout =
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SEC"
         ~doc:"Default per-job wall-clock budget (queue wait included). A \
               job whose budget expires mid-run streams the completed \
               shots as a degraded partial result.")

let retries =
  Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N"
         ~doc:"Retries per shot for transient backend faults.")

let breaker_threshold =
  Arg.(value & opt int 5 & info [ "breaker-threshold" ] ~docv:"N"
         ~doc:"Consecutive backend/exec job failures that trip a \
               tenant's circuit breaker open.")

let breaker_cooldown =
  Arg.(value & opt float 1.0 & info [ "breaker-cooldown" ] ~docv:"SEC"
         ~doc:"Seconds a tripped breaker stays open before admitting a \
               half-open probe job.")

let overload_depth =
  Arg.(value & opt int 8 & info [ "overload-depth" ] ~docv:"N"
         ~doc:"Queue depth at which graceful degradation starts: at N the \
               executor tier is capped at gate-tape replay; at 2N cold \
               jobs drop to per-shot interpretation and the Domain pool \
               is throttled to sequential sweeps.")

let chunk =
  Arg.(value & opt int 64 & info [ "chunk" ] ~docv:"SHOTS"
         ~doc:"Streamed shots per scheduling quantum for non-batched \
               jobs; each chunk emits a progress event.")

let weights =
  Arg.(value & opt_all weight_conv [] & info [ "weight" ] ~docv:"TENANT=N"
         ~doc:"Fair-share weight for a tenant (repeatable; default 1). \
               Weight 2 receives twice the scheduling share of weight 1 \
               while both are backlogged.")

let no_sleep =
  Arg.(value & flag & info [ "no-backoff-sleep" ]
         ~doc:"Do not actually wait out retry backoff delays (test \
               harnesses only).")

let executors =
  Arg.(value & opt int 1 & info [ "executors" ] ~docv:"N"
         ~doc:"Drain loops (Domains) executing jobs concurrently against \
               the shared session. Per-job results are seed-determined, \
               so N > 1 changes throughput and event interleaving, never \
               histograms.")

let domains =
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
         ~doc:"Domains for the simulator kernel pool (default: \
               QIR_SIM_DOMAINS or the detected core count).")

let local_bits =
  Arg.(value & opt (some int) None & info [ "local-bits" ] ~docv:"BITS"
         ~doc:"Statevector shard granularity: each shard holds 2^BITS \
               amplitudes (default: QIR_SIM_LOCAL_BITS or 24).")

let cmd =
  let doc = "serve QIR programs to concurrent tenants over a job queue" in
  Cmd.v
    (Cmd.info "qir-serve" ~doc)
    Term.(
      const serve $ input $ socket $ mem_budget $ max_queue $ max_tenant_queue
      $ max_shots $ timeout $ retries $ breaker_threshold $ breaker_cooldown
      $ overload_depth $ chunk $ weights $ no_sleep $ executors $ domains
      $ local_bits)

let () = exit (Cmd.eval cmd)
