(* qir-lint — static analysis diagnostics for QIR programs.

   Runs the structural verifier plus the dataflow analyses (qubit
   lifetimes, dead quantum code, proved-static addresses) and reports
   rule-tagged findings:

     QV001 error    IR verifier violation
     QL001 error    use of a released qubit
     QL002 error    double release
     QL003 warning  qubit (array) never released
     QL004 error    result read before any measurement
     QD001 warning  gate affects no measured/recorded qubit
     QA001 note     dynamic-looking address proved static

   Exit code 0 when nothing rises to error severity, 3 (the verify exit
   code) otherwise; --Werror promotes warnings. *)

open Cmdliner

let run input format werror notes =
  Cli_common.protect @@ fun () ->
  let m = Cli_common.parse_qir_file input in
  let ds = Qir_analysis.Lint.run ~notes m in
  (match format with
  | `Text -> Format.printf "%a" Qir_analysis.Diagnostic.render_text ds
  | `Json -> Format.printf "%a" Qir_analysis.Diagnostic.render_json ds);
  let failing =
    Qir_analysis.Diagnostic.errors ds > 0
    || (werror && Qir_analysis.Diagnostic.warnings ds > 0)
  in
  if failing then exit Qruntime.Qir_error.exit_verify

let input =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"INPUT.ll"
         ~doc:"QIR input file ('-' for stdin).")

let format =
  let enum_conv = Arg.enum [ ("text", `Text); ("json", `Json) ] in
  Arg.(value & opt enum_conv `Text & info [ "format" ] ~docv:"FORMAT"
         ~doc:"Report format: text (default) or json.")

let werror =
  Arg.(value & flag & info [ "Werror" ]
         ~doc:"Treat warnings as errors (exit 3).")

let notes =
  Arg.(value & opt bool true & info [ "notes" ] ~docv:"BOOL"
         ~doc:"Include informational notes (QA001). Default true.")

let cmd =
  let doc = "static analysis diagnostics for QIR programs" in
  Cmd.v
    (Cmd.info "qir-lint" ~doc)
    Term.(const run $ input $ format $ werror $ notes)

let () = exit (Cmd.eval cmd)
