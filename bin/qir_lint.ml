(* qir-lint — static analysis diagnostics for QIR programs.

   Runs the structural verifier plus the dataflow analyses (qubit
   lifetimes, dead quantum code, proved-static addresses) and the
   whole-module interprocedural checks (call-graph rules, cross-call
   lifetimes via function effect summaries), reporting rule-tagged
   findings:

     QV001 error    IR verifier violation
     QL001 error    use of a released qubit
     QL002 error    double release
     QL003 warning  qubit (array) never released
     QL004 error    result read before any measurement
     QD001 warning  gate affects no measured/recorded qubit
     QD002 warning  call affects no measured/recorded qubit
     QP001 error    recursion reachable from the entry point
     QC001 warning  defined function unreachable from the entry point
     QA001 note     dynamic-looking address proved static
     QR001 e/w      qubit bound exceeds backend cap (--resources)
     QR002 warning  unbounded-trip loop on the quantum path (--resources)
     QR003 warning  declared qubit count below proven peak (--resources)
     QR004 note     T-count exceeds stabilizer eligibility (--resources)
     QR005 e/w      depth bound exceeds deadline budget (--resources)

   --resources adds the static resource certification: interprocedural
   symbolic upper/lower bounds on qubits, gates, T-count, depth and
   shot-loop trips, printed as a certificate (text) or emitted as the
   schema_version-stamped JSON certificate with diagnostics inline
   (--format json), plus the QR-series rules against the backend cap
   and optional deadline budget.

   --call-graph dumps the module's call graph (text or, with --format
   json, the schema_version-stamped JSON shape) instead of linting.
   Exit code 0 when nothing rises to error severity, 3 (the verify exit
   code) otherwise; --Werror promotes warnings. *)

open Cmdliner

let run input format werror notes ipo call_graph resources qubit_cap deadline
    throughput t_cap =
  Cli_common.protect @@ fun () ->
  let m = Cli_common.parse_qir_file input in
  if call_graph then begin
    let cg = Qir_analysis.Call_graph.build m in
    match format with
    | `Text -> Format.printf "%a" Qir_analysis.Call_graph.render_text cg
    | `Json -> Format.printf "%a" Qir_analysis.Call_graph.render_json cg
  end
  else begin
    let ropts =
      if resources then
        Some
          {
            Qir_analysis.Resource_lint.qubit_cap = Some qubit_cap;
            deadline_s = deadline;
            throughput;
            stabilizer_t_cap = t_cap;
          }
      else None
    in
    let ds = Qir_analysis.Lint.run ~notes ~ipo ?resources:ropts m in
    (if resources then
       let cert = Qir_analysis.Resource.certify m in
       match format with
       | `Text ->
         Format.printf "%a" Qir_analysis.Diagnostic.render_text ds;
         Format.printf "%a" Qir_analysis.Resource.pp_text cert
       | `Json ->
         Format.printf "%a"
           (Qir_analysis.Resource.render_json ~diagnostics:ds)
           cert
     else
       match format with
       | `Text -> Format.printf "%a" Qir_analysis.Diagnostic.render_text ds
       | `Json ->
         Format.printf "%a"
           (Qir_analysis.Diagnostic.render_json
              ~module_name:m.Llvm_ir.Ir_module.source_name)
           ds);
    let failing =
      Qir_analysis.Diagnostic.errors ds > 0
      || (werror && Qir_analysis.Diagnostic.warnings ds > 0)
    in
    if failing then exit Qruntime.Qir_error.exit_verify
  end

let input =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"INPUT.ll"
         ~doc:"QIR input file ('-' for stdin).")

let format =
  let enum_conv = Arg.enum [ ("text", `Text); ("json", `Json) ] in
  Arg.(value & opt enum_conv `Text & info [ "format" ] ~docv:"FORMAT"
         ~doc:"Report format: text (default) or json.")

let werror =
  Arg.(value & flag & info [ "Werror" ]
         ~doc:"Treat warnings as errors (exit 3).")

let notes =
  Arg.(value & opt bool true & info [ "notes" ] ~docv:"BOOL"
         ~doc:"Include informational notes (QA001). Default true.")

let ipo =
  Arg.(value & opt bool true & info [ "ipo" ] ~docv:"BOOL"
         ~doc:"Interprocedural lint: check the whole module with call \
               graph and function effect summaries. Default true; \
               --ipo=false restores the entry-point-only check.")

let call_graph =
  Arg.(value & flag & info [ "call-graph" ]
         ~doc:"Print the module's call graph (honors --format) instead \
               of linting.")

let resources =
  Arg.(value & flag & info [ "resources" ]
         ~doc:"Certify static resource bounds (qubits, gates, T-count, \
               depth, shot-loop trips) and check the QR-series rules. \
               Text output appends the certificate; --format json emits \
               the versioned certificate with diagnostics inline.")

let qubit_cap =
  Arg.(value & opt int Qsim.Statevector.max_qubits
       & info [ "qubit-cap" ] ~docv:"N"
           ~doc:"Backend register cap checked by QR001 (default: the \
                 statevector simulator's maximum).")

let deadline =
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SEC"
         ~doc:"Job deadline budget for QR002/QR005: flags unbounded \
               shot loops and depth bounds that cannot finish in SEC \
               seconds at the --throughput gate rate.")

let throughput =
  Arg.(value & opt (some float) None & info [ "throughput" ] ~docv:"GATES/S"
         ~doc:"Measured gate throughput used with --deadline to turn \
               the depth bound into seconds (QR005).")

let t_cap =
  Arg.(value & opt int 0 & info [ "t-cap" ] ~docv:"N"
         ~doc:"T/rotation-count ceiling for stabilizer-path eligibility \
               (QR004). Default 0: any proven non-Clifford gate \
               disqualifies the tableau backend.")

let cmd =
  let doc = "static analysis diagnostics for QIR programs" in
  Cmd.v
    (Cmd.info "qir-lint" ~doc)
    Term.(
      const run $ input $ format $ werror $ notes $ ipo $ call_graph
      $ resources $ qubit_cap $ deadline $ throughput $ t_cap)

let () = exit (Cmd.eval cmd)
