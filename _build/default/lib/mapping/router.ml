(* Routing: rewrite a circuit so that every multi-qubit gate acts on
   coupled physical qubits, inserting SWAPs along shortest paths. The
   output circuit is expressed over physical qubit indices. *)

open Qcircuit

type stats = {
  swaps_inserted : int;
  input_depth : int;
  output_depth : int;
}

exception Unroutable of string

(* Moves logical [a]'s physical position one hop towards [b]'s, recording
   the swap. *)
let step_towards hw layout build stats_swaps a_phys b_phys =
  let hop = hw.Hardware.next_hop.(a_phys).(b_phys) in
  if hop < 0 then
    raise
      (Unroutable
         (Printf.sprintf "no path between physical qubits %d and %d" a_phys
            b_phys));
  Circuit.Build.gate build Gate.Swap [ a_phys; hop ];
  incr stats_swaps;
  Layout.swap_physical layout a_phys hop;
  hop

let route ?(layout = `Greedy) (hw : Hardware.t) (c : Circuit.t) :
    Circuit.t * Layout.t * stats =
  if c.Circuit.num_qubits > hw.Hardware.num_qubits then
    raise
      (Unroutable
         (Printf.sprintf "circuit needs %d qubits, hardware has %d"
            c.Circuit.num_qubits hw.Hardware.num_qubits));
  let layout =
    match layout with
    | `Trivial ->
      Layout.identity ~num_logical:c.Circuit.num_qubits
        ~num_physical:hw.Hardware.num_qubits
    | `Greedy -> Layout.greedy hw c
    | `Fixed l -> Layout.copy l
  in
  let build =
    Circuit.Build.create ~num_qubits:hw.Hardware.num_qubits
      ~num_clbits:c.Circuit.num_clbits ()
  in
  let swaps = ref 0 in
  let route_2q cond g a b =
    let rec bring () =
      let pa = Layout.phys layout a and pb = Layout.phys layout b in
      if hw.Hardware.dist.(pa).(pb) > 1 then begin
        let _ = step_towards hw layout build swaps pa pb in
        bring ()
      end
    in
    bring ();
    Circuit.Build.gate ?cond build g
      [ Layout.phys layout a; Layout.phys layout b ]
  in
  let route_3q cond g a b c3 =
    (* bring all three mutually adjacent: first a next to c3, then b *)
    let rec bring x y =
      let px = Layout.phys layout x and py = Layout.phys layout y in
      if hw.Hardware.dist.(px).(py) > 1 then begin
        let _ = step_towards hw layout build swaps px py in
        bring x y
      end
    in
    bring a c3;
    bring b c3;
    (* the two controls may still be far from each other; for CCX-style
       gates adjacency to the target suffices only if the hardware also
       couples the controls — otherwise decompose. Here we require all
       three pairwise adjacent and keep pulling. *)
    let rec fix () =
      let pa = Layout.phys layout a
      and pb = Layout.phys layout b
      and pc = Layout.phys layout c3 in
      if
        hw.Hardware.dist.(pa).(pb) > 1
        || hw.Hardware.dist.(pa).(pc) > 1
        || hw.Hardware.dist.(pb).(pc) > 1
      then begin
        if hw.Hardware.dist.(pa).(pc) > 1 then ignore (step_towards hw layout build swaps pa pc)
        else if hw.Hardware.dist.(pb).(pc) > 1 then
          ignore (step_towards hw layout build swaps pb pc)
        else ignore (step_towards hw layout build swaps pa pb);
        fix ()
      end
    in
    fix ();
    Circuit.Build.gate ?cond build g
      [ Layout.phys layout a; Layout.phys layout b; Layout.phys layout c3 ]
  in
  List.iter
    (fun (op : Circuit.op) ->
      let cond = op.Circuit.cond in
      match op.Circuit.kind with
      | Circuit.Gate (g, [ q ]) ->
        Circuit.Build.gate ?cond build g [ Layout.phys layout q ]
      | Circuit.Gate (g, [ a; b ]) -> route_2q cond g a b
      | Circuit.Gate (g, [ a; b; c3 ]) -> route_3q cond g a b c3
      | Circuit.Gate (g, qs) ->
        raise
          (Unroutable
             (Printf.sprintf "cannot route %d-qubit gate %s" (List.length qs)
                (Gate.name g)))
      | Circuit.Measure (q, cl) ->
        Circuit.Build.measure ?cond build (Layout.phys layout q) cl
      | Circuit.Reset q -> Circuit.Build.reset ?cond build (Layout.phys layout q)
      | Circuit.Barrier qs ->
        Circuit.Build.barrier build (List.map (Layout.phys layout) qs))
    c.Circuit.ops;
  let routed = Circuit.Build.finish build in
  let stats =
    {
      swaps_inserted = !swaps;
      input_depth = Circuit.depth c;
      output_depth = Circuit.depth routed;
    }
  in
  (routed, layout, stats)

(* Routed circuits must only use coupled pairs: checked by tests. *)
let respects_coupling (hw : Hardware.t) (c : Circuit.t) =
  List.for_all
    (fun (op : Circuit.op) ->
      match op.Circuit.kind with
      | Circuit.Gate (_, ([ _; _ ] | [ _; _; _ ])) ->
        let qs = Circuit.op_qubits op in
        List.for_all
          (fun a ->
            List.for_all
              (fun b -> a = b || Hardware.connected hw a b)
              qs)
          qs
      | _ -> true)
    c.Circuit.ops
