lib/mapping/layout.mli: Hardware Hashtbl Qcircuit
