lib/mapping/mapper.ml: Allocator Circuit Format Hardware Printf Qcircuit Router
