lib/mapping/allocator.mli: Qcircuit
