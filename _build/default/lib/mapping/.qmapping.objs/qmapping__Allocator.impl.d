lib/mapping/allocator.ml: Array Circuit Fun Hashtbl List Option Qcircuit
