lib/mapping/mapper.mli: Format Hardware Layout Qcircuit
