lib/mapping/hardware.ml: Array Format List Printf Queue
