lib/mapping/router.ml: Array Circuit Gate Hardware Layout List Printf Qcircuit
