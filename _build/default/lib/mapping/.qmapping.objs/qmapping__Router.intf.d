lib/mapping/router.mli: Hardware Layout Qcircuit
