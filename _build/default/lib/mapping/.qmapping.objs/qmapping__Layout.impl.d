lib/mapping/layout.ml: Array Circuit Fun Hardware Hashtbl List Option Qcircuit
