lib/mapping/hardware.mli: Format
