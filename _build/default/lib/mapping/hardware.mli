(** Hardware models: a fixed number of physical qubits and a coupling
    graph restricting two-qubit gates (Sec. IV-A: "the hardware only has
    a fixed number of qubits"). *)

type t = private {
  hw_name : string;
  num_qubits : int;
  edges : (int * int) list;  (** undirected couplings *)
  dist : int array array;  (** all-pairs shortest-path distances *)
  next_hop : int array array;
      (** [next_hop.(a).(b)]: a's neighbor on a shortest path to [b] *)
}

val create : name:string -> num_qubits:int -> edges:(int * int) list -> t
(** Raises [Invalid_argument] on out-of-range or self-loop edges. *)

val connected : t -> int -> int -> bool
(** Directly coupled. *)

val distance : t -> int -> int -> int
val is_fully_connected : t -> bool

(** {1 Presets} *)

val linear : int -> t
val ring : int -> t
val grid : int -> int -> t
val star : int -> t
val fully_connected : int -> t

val heavy_hex : int -> int -> t
(** A heavy-hex-inspired sparse layout (degree <= 3): rows joined by
    sparse vertical rungs. *)

val pp : Format.formatter -> t -> unit
