(* Initial placement of logical qubits onto physical qubits. *)

open Qcircuit

type t = {
  phys_of_log : int array; (* logical -> physical *)
  log_of_phys : int array; (* physical -> logical, or -1 *)
}

let identity ~num_logical ~num_physical =
  if num_logical > num_physical then
    invalid_arg "Layout.identity: more logical than physical qubits";
  let log_of_phys = Array.make num_physical (-1) in
  for l = 0 to num_logical - 1 do
    log_of_phys.(l) <- l
  done;
  { phys_of_log = Array.init num_logical Fun.id; log_of_phys }

let phys t l = t.phys_of_log.(l)
let logical t p = t.log_of_phys.(p)

let copy t =
  { phys_of_log = Array.copy t.phys_of_log; log_of_phys = Array.copy t.log_of_phys }

let swap_physical t p1 p2 =
  let l1 = t.log_of_phys.(p1) and l2 = t.log_of_phys.(p2) in
  t.log_of_phys.(p1) <- l2;
  t.log_of_phys.(p2) <- l1;
  if l1 >= 0 then t.phys_of_log.(l1) <- p2;
  if l2 >= 0 then t.phys_of_log.(l2) <- p1

(* Interaction weights between logical qubit pairs. *)
let interaction_graph (c : Circuit.t) =
  let w = Hashtbl.create 32 in
  List.iter
    (fun (op : Circuit.op) ->
      match op.Circuit.kind with
      | Circuit.Gate (_, ([ _; _ ] as qs)) | Circuit.Gate (_, ([ _; _; _ ] as qs))
        ->
        List.iteri
          (fun i a ->
            List.iteri
              (fun j b ->
                if i < j then begin
                  let key = (min a b, max a b) in
                  Hashtbl.replace w key
                    (1 + Option.value ~default:0 (Hashtbl.find_opt w key))
                end)
              qs)
          qs
      | _ -> ())
    c.Circuit.ops;
  w

(* Greedy similarity placement: logical qubits in decreasing interaction
   degree; each placed on the free physical qubit minimizing the
   weighted distance to already-placed partners (ties: lowest index,
   which favors dense regions on the presets). *)
let greedy (hw : Hardware.t) (c : Circuit.t) =
  let nl = c.Circuit.num_qubits and np = hw.Hardware.num_qubits in
  if nl > np then invalid_arg "Layout.greedy: circuit too wide for hardware";
  let w = interaction_graph c in
  let degree = Array.make nl 0 in
  Hashtbl.iter
    (fun (a, b) n ->
      degree.(a) <- degree.(a) + n;
      degree.(b) <- degree.(b) + n)
    w;
  let order =
    List.sort
      (fun a b -> compare (degree.(b), a) (degree.(a), b))
      (List.init nl Fun.id)
  in
  let phys_of_log = Array.make nl (-1) in
  let log_of_phys = Array.make np (-1) in
  (* centrality of a physical node: total distance to all others *)
  let centrality p =
    let acc = ref 0 in
    for q = 0 to np - 1 do
      acc := !acc + hw.Hardware.dist.(p).(q)
    done;
    !acc
  in
  List.iter
    (fun l ->
      let partners =
        Hashtbl.fold
          (fun (a, b) n acc ->
            if a = l && phys_of_log.(b) >= 0 then (phys_of_log.(b), n) :: acc
            else if b = l && phys_of_log.(a) >= 0 then
              (phys_of_log.(a), n) :: acc
            else acc)
          w []
      in
      let cost p =
        if partners = [] then centrality p
        else
          List.fold_left
            (fun acc (pp, n) -> acc + (n * hw.Hardware.dist.(p).(pp)))
            0 partners
      in
      let best = ref (-1) in
      for p = 0 to np - 1 do
        if log_of_phys.(p) < 0 && (!best < 0 || cost p < cost !best) then
          best := p
      done;
      phys_of_log.(l) <- !best;
      log_of_phys.(!best) <- l)
    order;
  { phys_of_log; log_of_phys }
