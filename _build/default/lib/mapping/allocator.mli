(** Static qubit-address assignment as register allocation (Sec. IV-A:
    "a process very similar to register allocation in classical
    compilers").

    Every program qubit gets a live range (first to last operation
    touching it); linear-scan allocation packs qubits with disjoint
    ranges onto the same hardware qubit, inserting a [reset] at reuse
    boundaries when the previous occupant did not end in a measurement or
    reset. *)

type interval = {
  logical : int;
  first : int;
  last : int;
  ends_clean : bool;  (** last op is a measure or reset *)
}

type result = {
  circuit : Qcircuit.Circuit.t;  (** remapped to hardware qubits *)
  hw_qubits_used : int;
  assignment : (int * int) list;  (** logical -> hardware, sorted *)
  resets_inserted : int;
}

val live_intervals : Qcircuit.Circuit.t -> interval list
val allocate : Qcircuit.Circuit.t -> result
