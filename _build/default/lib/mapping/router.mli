(** Routing: rewriting a circuit so every multi-qubit gate acts on
    coupled physical qubits, inserting SWAPs along shortest paths. The
    output circuit is expressed over physical qubit indices. *)

type stats = { swaps_inserted : int; input_depth : int; output_depth : int }

exception Unroutable of string

val route :
  ?layout:[ `Fixed of Layout.t | `Greedy | `Trivial ] ->
  Hardware.t ->
  Qcircuit.Circuit.t ->
  Qcircuit.Circuit.t * Layout.t * stats
(** [route hw c] returns the routed circuit, the {e final} layout
    (logical -> physical, after all inserted SWAPs) and statistics.
    Raises {!Unroutable} when the circuit is too wide or a gate spans
    disconnected components. *)

val respects_coupling : Hardware.t -> Qcircuit.Circuit.t -> bool
(** Every multi-qubit gate acts on pairwise-coupled qubits. *)
