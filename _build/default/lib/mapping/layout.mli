(** Placement of logical qubits onto physical qubits. *)

type t = {
  phys_of_log : int array;  (** logical -> physical *)
  log_of_phys : int array;  (** physical -> logical, or -1 when free *)
}

val identity : num_logical:int -> num_physical:int -> t
val phys : t -> int -> int
val logical : t -> int -> int
val copy : t -> t

val swap_physical : t -> int -> int -> unit
(** Exchanges the logical occupants of two physical qubits (the effect of
    a routed SWAP). *)

val interaction_graph : Qcircuit.Circuit.t -> (int * int, int) Hashtbl.t
(** Two-qubit interaction counts between logical qubit pairs. *)

val greedy : Hardware.t -> Qcircuit.Circuit.t -> t
(** Greedy similarity placement: qubits in decreasing interaction degree,
    each placed to minimize weighted distance to already-placed
    partners. *)
