(** End-to-end hardware mapping (the full Sec. IV-A pipeline): optional
    live-range allocation, initial layout, SWAP routing, and a report. *)

type report = {
  logical_qubits : int;
  allocated_qubits : int;
  resets_inserted : int;
  swaps_inserted : int;
  input_depth : int;
  output_depth : int;
  layout_kind : string;
}

exception Too_wide of string

val map :
  ?allocate:bool ->
  ?layout:[ `Fixed of Layout.t | `Greedy | `Trivial ] ->
  Hardware.t ->
  Qcircuit.Circuit.t ->
  Qcircuit.Circuit.t * report
(** Raises {!Too_wide} when the (allocated) program still exceeds the
    hardware, and {!Router.Unroutable} on connectivity failures. *)

val pp_report : Format.formatter -> report -> unit
