(* End-to-end hardware mapping: optional live-range allocation (packing
   logical qubits onto fewer hardware qubits), initial layout, SWAP
   routing, and a report. The full Sec. IV-A pipeline: dynamic program
   qubits become static hardware addresses. *)

open Qcircuit

type report = {
  logical_qubits : int;
  allocated_qubits : int;
  resets_inserted : int;
  swaps_inserted : int;
  input_depth : int;
  output_depth : int;
  layout_kind : string;
}

exception Too_wide of string

let map ?(allocate = true) ?(layout = `Greedy) (hw : Hardware.t)
    (c : Circuit.t) : Circuit.t * report =
  let c', alloc_report =
    if allocate then begin
      let r = Allocator.allocate c in
      (r.Allocator.circuit,
       (r.Allocator.hw_qubits_used, r.Allocator.resets_inserted))
    end
    else (c, (c.Circuit.num_qubits, 0))
  in
  let allocated, resets = alloc_report in
  if allocated > hw.Hardware.num_qubits then
    raise
      (Too_wide
         (Printf.sprintf "program needs %d qubits, %s has %d" allocated
            hw.Hardware.hw_name hw.Hardware.num_qubits));
  let routed, _final_layout, stats = Router.route ~layout hw c' in
  ( routed,
    {
      logical_qubits = c.Circuit.num_qubits;
      allocated_qubits = allocated;
      resets_inserted = resets;
      swaps_inserted = stats.Router.swaps_inserted;
      input_depth = stats.Router.input_depth;
      output_depth = stats.Router.output_depth;
      layout_kind =
        (match layout with
        | `Trivial -> "trivial"
        | `Greedy -> "greedy"
        | `Fixed _ -> "fixed");
    } )

let pp_report ppf r =
  Format.fprintf ppf
    "logical=%d allocated=%d resets=%d swaps=%d depth %d -> %d (%s layout)"
    r.logical_qubits r.allocated_qubits r.resets_inserted r.swaps_inserted
    r.input_depth r.output_depth r.layout_kind
