(* Static qubit-address assignment as register allocation (Sec. IV-A:
   "the compiler must at some point assign the program's qubits to the
   hardware's qubits — a process very similar to register allocation in
   classical compilers").

   Each program (logical) qubit has a live range [first op, last op].
   Linear-scan allocation packs logical qubits whose ranges do not
   overlap onto the same hardware qubit, inserting a [reset] at reuse
   boundaries when the previous occupant did not end in a measurement or
   reset (a freshly reused qubit must be |0>). *)

open Qcircuit

type interval = {
  logical : int;
  first : int;
  last : int;
  ends_clean : bool; (* last op is a measure or reset *)
}

type result = {
  circuit : Circuit.t; (* remapped to hardware qubits *)
  hw_qubits_used : int;
  assignment : (int * int) list; (* logical -> hardware *)
  resets_inserted : int;
}

let live_intervals (c : Circuit.t) =
  let n = c.Circuit.num_qubits in
  let first = Array.make n max_int and last = Array.make n (-1) in
  let clean = Array.make n false in
  List.iteri
    (fun i (op : Circuit.op) ->
      List.iter
        (fun q ->
          if first.(q) = max_int then first.(q) <- i;
          last.(q) <- i;
          clean.(q) <-
            (match op.Circuit.kind with
            | Circuit.Measure _ | Circuit.Reset _ -> true
            | Circuit.Gate _ | Circuit.Barrier _ -> false))
        (Circuit.op_qubits op))
    c.Circuit.ops;
  List.filter_map
    (fun q ->
      if last.(q) < 0 then None (* unused qubit *)
      else
        Some { logical = q; first = first.(q); last = last.(q);
               ends_clean = clean.(q) })
    (List.init n Fun.id)

let allocate (c : Circuit.t) : result =
  let intervals =
    List.sort (fun a b -> compare a.first b.first) (live_intervals c)
  in
  (* free hardware qubits, with a flag: does it need a reset before reuse? *)
  let free : (int * bool) list ref = ref [] in
  let next_hw = ref 0 in
  let active : (int * interval * int) list ref = ref [] in
  (* (end, interval, hw) *)
  let assignment = Hashtbl.create 16 in
  let reset_before : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  (* op index -> hw qubits to reset first *)
  let resets = ref 0 in
  let expire now =
    let expired, still =
      List.partition (fun (last, _, _) -> last < now) !active
    in
    active := still;
    List.iter
      (fun (_, iv, hw) -> free := (hw, not iv.ends_clean) :: !free)
      expired
  in
  List.iter
    (fun iv ->
      expire iv.first;
      let hw, needs_reset =
        match !free with
        | (hw, dirty) :: rest ->
          free := rest;
          (hw, dirty)
        | [] ->
          let hw = !next_hw in
          incr next_hw;
          (hw, false)
      in
      if needs_reset then begin
        incr resets;
        Hashtbl.replace reset_before iv.first
          (hw
          :: Option.value ~default:[] (Hashtbl.find_opt reset_before iv.first))
      end;
      Hashtbl.replace assignment iv.logical hw;
      active := (iv.last, iv, hw) :: !active)
    intervals;
  let remap q =
    match Hashtbl.find_opt assignment q with
    | Some hw -> hw
    | None -> 0 (* unused qubit: arbitrary *)
  in
  let build =
    Circuit.Build.create ~num_qubits:(max !next_hw 1)
      ~num_clbits:c.Circuit.num_clbits ()
  in
  List.iteri
    (fun i (op : Circuit.op) ->
      (match Hashtbl.find_opt reset_before i with
      | Some hws -> List.iter (fun hw -> Circuit.Build.reset build hw) hws
      | None -> ());
      let cond = op.Circuit.cond in
      match op.Circuit.kind with
      | Circuit.Gate (g, qs) ->
        Circuit.Build.gate ?cond build g (List.map remap qs)
      | Circuit.Measure (q, cl) -> Circuit.Build.measure ?cond build (remap q) cl
      | Circuit.Reset q -> Circuit.Build.reset ?cond build (remap q)
      | Circuit.Barrier qs -> Circuit.Build.barrier build (List.map remap qs))
    c.Circuit.ops;
  {
    circuit = Circuit.Build.finish build;
    hw_qubits_used = !next_hw;
    assignment =
      List.sort compare
        (Hashtbl.fold (fun l hw acc -> (l, hw) :: acc) assignment []);
    resets_inserted = !resets;
  }
