(* Hardware models: a fixed number of physical qubits and a coupling
   graph restricting two-qubit gates (Sec. IV-A: "the hardware only has a
   fixed number of qubits"). *)

type t = {
  hw_name : string;
  num_qubits : int;
  edges : (int * int) list; (* undirected couplings *)
  dist : int array array; (* all-pairs shortest-path distances *)
  next_hop : int array array; (* next_hop.(a).(b): neighbor of a towards b *)
}

let adjacency num_qubits edges =
  let adj = Array.make num_qubits [] in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= num_qubits || b < 0 || b >= num_qubits || a = b then
        invalid_arg "Hardware: bad edge";
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    edges;
  Array.map (List.sort_uniq compare) adj

let create ~name ~num_qubits ~edges =
  let adj = adjacency num_qubits edges in
  let inf = max_int / 2 in
  let dist = Array.make_matrix num_qubits num_qubits inf in
  let next_hop = Array.make_matrix num_qubits num_qubits (-1) in
  (* BFS from every node *)
  for src = 0 to num_qubits - 1 do
    dist.(src).(src) <- 0;
    let queue = Queue.create () in
    Queue.add src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if dist.(src).(v) >= inf then begin
            dist.(src).(v) <- dist.(src).(u) + 1;
            (* first hop on the path src -> v goes through u's chain; we
               record hops in the reverse direction below *)
            Queue.add v queue
          end)
        adj.(u)
    done
  done;
  (* next hop: neighbor minimizing remaining distance *)
  for a = 0 to num_qubits - 1 do
    for b = 0 to num_qubits - 1 do
      if a <> b && dist.(a).(b) < inf then
        next_hop.(a).(b) <-
          List.fold_left
            (fun best v ->
              if best >= 0 && dist.(best).(b) <= dist.(v).(b) then best else v)
            (-1) adj.(a)
    done
  done;
  { hw_name = name; num_qubits; edges; dist; next_hop }

let connected t a b = t.dist.(a).(b) = 1
let distance t a b = t.dist.(a).(b)

let is_fully_connected t =
  let ok = ref true in
  for a = 0 to t.num_qubits - 1 do
    for b = 0 to t.num_qubits - 1 do
      if a <> b && t.dist.(a).(b) > 1 then ok := false
    done
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Presets                                                              *)

let linear n =
  create ~name:(Printf.sprintf "linear-%d" n) ~num_qubits:n
    ~edges:(List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let ring n =
  if n < 3 then linear n
  else
    create ~name:(Printf.sprintf "ring-%d" n) ~num_qubits:n
      ~edges:((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let grid rows cols =
  let n = rows * cols in
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (idx r c, idx r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (idx r c, idx (r + 1) c) :: !edges
    done
  done;
  create ~name:(Printf.sprintf "grid-%dx%d" rows cols) ~num_qubits:n
    ~edges:!edges

let star n =
  create ~name:(Printf.sprintf "star-%d" n) ~num_qubits:n
    ~edges:(List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))

let fully_connected n =
  let edges = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      edges := (a, b) :: !edges
    done
  done;
  create ~name:(Printf.sprintf "full-%d" n) ~num_qubits:n ~edges:!edges

(* A heavy-hex-inspired sparse layout (degree <= 3), built as rows of
   qubits joined by sparse vertical rungs — a simplified IBM-style
   topology. *)
let heavy_hex rows cols =
  let n = rows * cols in
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (idx r c, idx r (c + 1)) :: !edges;
      (* vertical rungs every 4 columns, offset by row parity *)
      if r + 1 < rows && c mod 4 = if r mod 2 = 0 then 0 else 2 then
        edges := (idx r c, idx (r + 1) c) :: !edges
    done
  done;
  create ~name:(Printf.sprintf "heavy-hex-%dx%d" rows cols) ~num_qubits:n
    ~edges:!edges

let pp ppf t =
  Format.fprintf ppf "%s (%d qubits, %d couplings)" t.hw_name t.num_qubits
    (List.length t.edges)
