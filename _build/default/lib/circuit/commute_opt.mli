(** Commutation-aware gate cancellation: inverse (or mergeable) gate
    pairs separated by operations they provably commute with are still
    combined — e.g. [x q1; cx q0,q1; x q1] reduces to the CX alone.
    Extends {!Circuit_opt}, which only combines directly adjacent gates.

    The commutation table is conservative: diagonal gates commute with
    each other and through control roles; X-axis gates commute through CX
    targets; nothing commutes across conditions, measurements, resets or
    barriers. *)

val is_diagonal : Gate.t -> bool
val is_x_axis : Gate.t -> bool

val commutes : Gate.t -> int list -> Circuit.op -> bool
(** [commutes g qs op]: does the gate application [g qs] commute with
    [op]? Only meaningful when [op] touches at least one qubit of
    [qs]. *)

type stats = { cancelled : int; merged : int }

val optimize : Circuit.t -> Circuit.t * stats
val optimize_fixpoint : ?max_rounds:int -> Circuit.t -> Circuit.t * stats
