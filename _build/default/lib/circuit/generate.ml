(* Workload generators: the named circuits used across examples, tests
   and benchmarks (GHZ, QFT, random circuits, feedback workloads). *)

let pi = Float.pi

(* Bell pair: the paper's Fig. 1 "Hello World". *)
let bell () =
  let b = Circuit.Build.create ~num_qubits:2 ~num_clbits:2 () in
  Circuit.Build.gate b Gate.H [ 0 ];
  Circuit.Build.gate b Gate.Cx [ 0; 1 ];
  Circuit.Build.measure b 0 0;
  Circuit.Build.measure b 1 1;
  Circuit.Build.finish b

(* GHZ state over n qubits, measured. *)
let ghz n =
  if n < 1 then invalid_arg "Generate.ghz: need at least 1 qubit";
  let b = Circuit.Build.create ~num_qubits:n ~num_clbits:n () in
  Circuit.Build.gate b Gate.H [ 0 ];
  for i = 0 to n - 2 do
    Circuit.Build.gate b Gate.Cx [ i; i + 1 ]
  done;
  for i = 0 to n - 1 do
    Circuit.Build.measure b i i
  done;
  Circuit.Build.finish b

(* The paper's Ex. 4 workload: one H on each of the first n qubits. *)
let h_layer n =
  let b = Circuit.Build.create ~num_qubits:n ~num_clbits:0 () in
  for i = 0 to n - 1 do
    Circuit.Build.gate b Gate.H [ i ]
  done;
  Circuit.Build.finish b

(* Quantum Fourier transform on n qubits (no measurement, no swap
   reversal by default). *)
let qft ?(swaps = true) n =
  let b = Circuit.Build.create ~num_qubits:n ~num_clbits:0 () in
  for i = 0 to n - 1 do
    Circuit.Build.gate b Gate.H [ i ];
    for j = i + 1 to n - 1 do
      let angle = pi /. Float.pow 2.0 (float_of_int (j - i)) in
      Circuit.Build.gate b (Gate.Cp angle) [ j; i ]
    done
  done;
  if swaps then
    for i = 0 to (n / 2) - 1 do
      Circuit.Build.gate b Gate.Swap [ i; n - 1 - i ]
    done;
  Circuit.Build.finish b

(* W-like cascade used as a linear-depth example workload. *)
let w_cascade n =
  let b = Circuit.Build.create ~num_qubits:n ~num_clbits:0 () in
  Circuit.Build.gate b (Gate.Ry (2.0 *. acos (sqrt (1.0 /. float_of_int n)))) [ 0 ];
  for i = 1 to n - 1 do
    let remaining = n - i in
    let theta = 2.0 *. acos (sqrt (1.0 /. float_of_int (remaining + 1))) in
    Circuit.Build.gate b (Gate.Cry theta) [ i - 1; i ];
    Circuit.Build.gate b Gate.Cx [ i; i - 1 ]
  done;
  Circuit.Build.finish b

let gate_pool_1q =
  [|
    Gate.H; Gate.X; Gate.Y; Gate.Z; Gate.S; Gate.Sdg; Gate.T; Gate.Tdg;
  |]

let clifford_pool_1q = [| Gate.H; Gate.X; Gate.Y; Gate.Z; Gate.S; Gate.Sdg |]

(* Random circuit: [gates] operations over [n] qubits with the given
   two-qubit gate fraction; deterministic in [seed]. *)
let random ?(seed = 42) ?(two_qubit_fraction = 0.3) ?(parametric = true)
    ~gates n =
  if n < 2 then invalid_arg "Generate.random: need at least 2 qubits";
  let rng = Rng.create seed in
  let b = Circuit.Build.create ~num_qubits:n ~num_clbits:0 () in
  for _ = 1 to gates do
    if Rng.float rng < two_qubit_fraction then begin
      let q1 = Rng.int rng n in
      let q2 = (q1 + 1 + Rng.int rng (n - 1)) mod n in
      let g =
        match Rng.int rng 3 with
        | 0 -> Gate.Cx
        | 1 -> Gate.Cz
        | _ -> if parametric then Gate.Cp (Rng.float rng *. pi) else Gate.Swap
      in
      Circuit.Build.gate b g [ q1; q2 ]
    end
    else begin
      let q = Rng.int rng n in
      let g =
        if parametric && Rng.bool rng then
          match Rng.int rng 3 with
          | 0 -> Gate.Rx (Rng.float rng *. 2.0 *. pi)
          | 1 -> Gate.Ry (Rng.float rng *. 2.0 *. pi)
          | _ -> Gate.Rz (Rng.float rng *. 2.0 *. pi)
        else gate_pool_1q.(Rng.int rng (Array.length gate_pool_1q))
      in
      Circuit.Build.gate b g [ q ]
    end
  done;
  Circuit.Build.finish b

(* Random Clifford circuit (exactly simulable by the stabilizer backend). *)
let random_clifford ?(seed = 42) ?(two_qubit_fraction = 0.3) ~gates n =
  if n < 2 then invalid_arg "Generate.random_clifford: need at least 2 qubits";
  let rng = Rng.create seed in
  let b = Circuit.Build.create ~num_qubits:n ~num_clbits:0 () in
  for _ = 1 to gates do
    if Rng.float rng < two_qubit_fraction then begin
      let q1 = Rng.int rng n in
      let q2 = (q1 + 1 + Rng.int rng (n - 1)) mod n in
      let g =
        match Rng.int rng 3 with
        | 0 -> Gate.Cx
        | 1 -> Gate.Cz
        | _ -> Gate.Swap
      in
      Circuit.Build.gate b g [ q1; q2 ]
    end
    else
      Circuit.Build.gate b
        clifford_pool_1q.(Rng.int rng (Array.length clifford_pool_1q))
        [ Rng.int rng n ]
  done;
  Circuit.Build.finish b

(* Measurement-feedback workload: teleportation-style rounds where each
   measurement conditions a correction — the Sec. IV-B regime. *)
let feedback_rounds ~rounds n =
  if n < 2 then invalid_arg "Generate.feedback_rounds: need at least 2 qubits";
  let b = Circuit.Build.create ~num_qubits:n ~num_clbits:rounds () in
  for r = 0 to rounds - 1 do
    let q = r mod (n - 1) in
    Circuit.Build.gate b Gate.H [ q ];
    Circuit.Build.gate b Gate.Cx [ q; q + 1 ];
    Circuit.Build.measure b q r;
    Circuit.Build.gate b ~cond:{ Circuit.cbits = [ r ]; value = 1 } Gate.X
      [ q + 1 ];
    Circuit.Build.reset b q
  done;
  Circuit.Build.finish b

(* Reset-heavy workload for the qubit-allocation experiment (E6): a long
   program that uses each logical qubit only briefly, so live-range
   allocation can pack it onto few hardware qubits. *)
let sequential_workers ~workers ~span n_per_worker =
  let nq = workers * n_per_worker in
  let b = Circuit.Build.create ~num_qubits:nq ~num_clbits:workers () in
  for w = 0 to workers - 1 do
    let base = w * n_per_worker in
    Circuit.Build.gate b Gate.H [ base ];
    for s = 1 to span - 1 do
      let q = base + (s mod n_per_worker) in
      if q <> base then Circuit.Build.gate b Gate.Cx [ base; q ]
    done;
    Circuit.Build.measure b base w;
    for s = 0 to n_per_worker - 1 do
      Circuit.Build.reset b (base + s)
    done
  done;
  Circuit.Build.finish b
