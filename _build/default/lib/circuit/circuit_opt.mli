(** Peephole optimization on the circuit IR: cancellation of adjacent
    inverse gates, merging of rotations about the same axis, and removal
    of identity rotations.

    This is the circuit-level counterpart of the classical optimizations
    QIR inherits from LLVM; benchmark E8 contrasts the two. Conditioned
    operations, measurements, resets and barriers act as optimization
    barriers. *)

type stats = { cancelled : int; merged : int; removed_identities : int }

val no_stats : stats

val optimize : ?eps:float -> Circuit.t -> Circuit.t * stats
(** One linear scan. [eps] is the tolerance for identity rotations. *)

val optimize_fixpoint :
  ?eps:float -> ?max_rounds:int -> Circuit.t -> Circuit.t * stats
(** Iterates {!optimize} until no further reduction (or [max_rounds]). *)
