(** The gate vocabulary: a closed union covering the common OpenQASM and
    QIR gate sets. Parametric gates carry their angles (radians). *)

type t =
  | I
  | H
  | X
  | Y
  | Z
  | S
  | Sdg
  | T
  | Tdg
  | Sx
  | Sxdg
  | Rx of float
  | Ry of float
  | Rz of float
  | P of float  (** phase gate (OpenQASM [u1]/[p]) *)
  | U of float * float * float  (** generic [u3(theta, phi, lambda)] *)
  | Cx
  | Cy
  | Cz
  | Ch
  | Swap
  | Crx of float
  | Cry of float
  | Crz of float
  | Cp of float
  | Cu of float * float * float
  | Ccx
  | Cswap

val num_qubits : t -> int
(** Number of qubit operands (1, 2 or 3). *)

val params : t -> float list
(** The gate's angle parameters, in OpenQASM order. *)

val inverse : t -> t
(** The adjoint gate. *)

val is_self_inverse : t -> bool
val is_clifford : t -> bool

val merge : t -> t -> t option
(** [merge a b] is the single gate equal to applying [a] then [b] on the
    same qubits, when one exists (rotations about the same axis, S·S=Z,
    T·T=S, ...). *)

val is_identity : ?eps:float -> t -> bool
(** Whether the gate acts as the identity (up to global phase), e.g. a
    rotation by a multiple of 4*pi. *)

val matrix_1q : t -> Complex.t array array
(** 2x2 unitary of a single-qubit gate. Raises [Invalid_argument] on
    multi-qubit gates. *)

val matrix_2q : t -> Complex.t array array
(** 4x4 unitary of a two-qubit gate in the basis |q0 q1> where operand 0
    (the control, for controlled gates) is the most significant bit.
    Raises [Invalid_argument] otherwise. *)

val name : t -> string
(** OpenQASM spelling ([h], [cx], [rz], ...). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
