(** The circuit IR: a sequence of operations over flat qubit and
    classical-bit index spaces — the "custom / tool-specific IR" of the
    paper's Sec. III-A.

    Classical control is limited to OpenQASM-2-style conditions (a set of
    classical bits compared against a constant); richer classical control
    flow lives at the QIR level. *)

type cond = { cbits : int list; value : int }
(** Execute iff the register formed by [cbits] (least-significant bit
    first) currently equals [value]. *)

type kind =
  | Gate of Gate.t * int list
  | Measure of int * int  (** qubit, clbit *)
  | Reset of int
  | Barrier of int list

type op = { kind : kind; cond : cond option }

type register = { rname : string; roffset : int; rsize : int }
(** A named register mapping onto the flat index space (for OpenQASM
    printing). *)

type t = {
  num_qubits : int;
  num_clbits : int;
  ops : op list;
  qregs : register list;
  cregs : register list;
}

val create :
  ?qregs:register list ->
  ?cregs:register list ->
  num_qubits:int ->
  num_clbits:int ->
  op list ->
  t
(** [create ~num_qubits ~num_clbits ops] builds a circuit; single default
    registers [q]/[c] are synthesized when none are given. The circuit is
    not validated — see {!validate} or use {!Build}. *)

val empty : int -> int -> t

(** {1 Operation constructors} *)

val gate : ?cond:cond -> Gate.t -> int list -> op
val measure : ?cond:cond -> int -> int -> op
val reset : ?cond:cond -> int -> op
val barrier : int list -> op

val op_qubits : op -> int list
val op_clbits : op -> int list

exception Invalid of string

val validate : t -> t
(** Checks arities, operand ranges and duplicate qubit operands; returns
    the circuit or raises {!Invalid}. *)

(** {1 Imperative construction} *)

module Build : sig
  type circuit := t
  type t

  val create : ?num_qubits:int -> ?num_clbits:int -> unit -> t
  (** Sizes grow automatically as operations touch new indices. *)

  val gate : ?cond:cond -> t -> Gate.t -> int list -> unit
  val measure : ?cond:cond -> t -> int -> int -> unit
  val reset : ?cond:cond -> t -> int -> unit
  val barrier : t -> int list -> unit
  val touch_qubit : t -> int -> unit
  val touch_clbit : t -> int -> unit

  val finish : ?qregs:register list -> ?cregs:register list -> t -> circuit
  (** Validates and returns the accumulated circuit. *)
end

(** {1 Metrics} *)

val size : t -> int
(** Number of operations. *)

val gate_count : ?name:string -> t -> int
(** Number of gate operations, optionally only those with the given
    OpenQASM name. *)

val two_qubit_gate_count : t -> int
val measure_count : t -> int
val has_conditions : t -> bool

val depth : t -> int
(** Longest dependency chain over shared qubits/clbits. *)

(** {1 Transformations} *)

val map_qubits : (int -> int) -> t -> t
val append : t -> t -> t

val inverse : t -> t
(** The adjoint circuit; raises {!Invalid} on measurements or resets. *)

val is_clifford : t -> bool

(** {1 Printing and equality} *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val equal : t -> t -> bool
(** Structural equality of sizes and operation lists (registers are
    ignored). *)
