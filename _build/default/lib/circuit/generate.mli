(** Workload generators used across examples, tests and benchmarks. All
    randomness is seeded and reproducible. *)

val bell : unit -> Circuit.t
(** The paper's Fig. 1 "Hello World": Bell pair, both qubits measured. *)

val ghz : int -> Circuit.t
(** GHZ state over [n] qubits, all measured. *)

val h_layer : int -> Circuit.t
(** One Hadamard on each of the first [n] qubits — the paper's Ex. 4
    workload. *)

val qft : ?swaps:bool -> int -> Circuit.t
(** Quantum Fourier transform (no measurement). *)

val w_cascade : int -> Circuit.t
(** W-state preparation cascade (linear depth, controlled rotations). *)

val random :
  ?seed:int ->
  ?two_qubit_fraction:float ->
  ?parametric:bool ->
  gates:int ->
  int ->
  Circuit.t
(** [random ~gates n]: a random circuit of [gates] operations over [n]
    qubits. *)

val random_clifford :
  ?seed:int -> ?two_qubit_fraction:float -> gates:int -> int -> Circuit.t
(** Random Clifford-only circuit (exactly simulable by the stabilizer
    backend). *)

val feedback_rounds : rounds:int -> int -> Circuit.t
(** Measurement-feedback workload: repeated entangle / measure /
    conditionally-correct / reset rounds — the Sec. IV-B regime. *)

val sequential_workers : workers:int -> span:int -> int -> Circuit.t
(** Reset-heavy workload whose logical qubits have short disjoint live
    ranges, so live-range allocation (E6) can pack them onto few hardware
    qubits: [workers] groups of [n_per_worker] qubits used one group at a
    time. *)
