(* The circuit IR: a sequence of operations over [num_qubits] qubits and
   [num_clbits] classical bits. This is the "custom / tool-specific IR"
   of the paper's Sec. III-A. Classical control is limited to OpenQASM-2
   style conditions (a classical register compared against a constant);
   richer control flow lives at the QIR level. *)

type cond = { cbits : int list; value : int }
(** Execute the operation iff the register formed by [cbits] (LSB first)
    currently equals [value]. *)

type kind =
  | Gate of Gate.t * int list
  | Measure of int * int (* qubit, clbit *)
  | Reset of int
  | Barrier of int list

type op = { kind : kind; cond : cond option }

type register = { rname : string; roffset : int; rsize : int }

type t = {
  num_qubits : int;
  num_clbits : int;
  ops : op list;
  qregs : register list; (* declared quantum registers, for printing *)
  cregs : register list;
}

let default_regs prefix n =
  if n = 0 then [] else [ { rname = prefix; roffset = 0; rsize = n } ]

let create ?(qregs = []) ?(cregs = []) ~num_qubits ~num_clbits ops =
  let qregs = if qregs = [] then default_regs "q" num_qubits else qregs in
  let cregs = if cregs = [] then default_regs "c" num_clbits else cregs in
  { num_qubits; num_clbits; ops; qregs; cregs }

let empty num_qubits num_clbits = create ~num_qubits ~num_clbits []

(* alias for use inside submodules that shadow [create] *)
let circuit_create = create

(* ------------------------------------------------------------------ *)
(* Operation helpers                                                    *)

let gate ?cond g qubits = { kind = Gate (g, qubits); cond }
let measure ?cond q c = { kind = Measure (q, c); cond }
let reset ?cond q = { kind = Reset q; cond }
let barrier qubits = { kind = Barrier qubits; cond = None }

let op_qubits op =
  match op.kind with
  | Gate (_, qs) -> qs
  | Measure (q, _) -> [ q ]
  | Reset q -> [ q ]
  | Barrier qs -> qs

let op_clbits op =
  let conds =
    match op.cond with
    | Some c -> c.cbits
    | None -> []
  in
  match op.kind with
  | Measure (_, c) -> c :: conds
  | Gate _ | Reset _ | Barrier _ -> conds

(* ------------------------------------------------------------------ *)
(* Validation                                                           *)

exception Invalid of string

let validate t =
  let bad fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt in
  List.iteri
    (fun i op ->
      (match op.kind with
      | Gate (g, qs) ->
        if List.length qs <> Gate.num_qubits g then
          bad "op %d: %s expects %d qubits, got %d" i (Gate.name g)
            (Gate.num_qubits g) (List.length qs);
        if List.length (List.sort_uniq compare qs) <> List.length qs then
          bad "op %d: duplicate qubit operands" i
      | Measure _ | Reset _ | Barrier _ -> ());
      List.iter
        (fun q ->
          if q < 0 || q >= t.num_qubits then
            bad "op %d: qubit %d out of range [0, %d)" i q t.num_qubits)
        (op_qubits op);
      List.iter
        (fun c ->
          if c < 0 || c >= t.num_clbits then
            bad "op %d: clbit %d out of range [0, %d)" i c t.num_clbits)
        (op_clbits op))
    t.ops;
  t

(* ------------------------------------------------------------------ *)
(* Builder                                                              *)

module Build = struct
  type circuit = t

  type t = {
    mutable nq : int;
    mutable nc : int;
    mutable rev_ops : op list;
  }

  let create ?(num_qubits = 0) ?(num_clbits = 0) () =
    { nq = num_qubits; nc = num_clbits; rev_ops = [] }

  let add b op = b.rev_ops <- op :: b.rev_ops

  let touch_qubit b q = if q >= b.nq then b.nq <- q + 1
  let touch_clbit b c = if c >= b.nc then b.nc <- c + 1

  let gate ?cond b g qubits =
    List.iter (touch_qubit b) qubits;
    (match cond with
    | Some c -> List.iter (touch_clbit b) c.cbits
    | None -> ());
    add b (gate ?cond g qubits)

  let measure ?cond b q c =
    touch_qubit b q;
    touch_clbit b c;
    (match cond with
    | Some cc -> List.iter (touch_clbit b) cc.cbits
    | None -> ());
    add b (measure ?cond q c)

  let reset ?cond b q =
    touch_qubit b q;
    add b (reset ?cond q)

  let barrier b qubits =
    List.iter (touch_qubit b) qubits;
    add b (barrier qubits)

  let finish ?qregs ?cregs b : circuit =
    validate
      (circuit_create ?qregs ?cregs ~num_qubits:b.nq ~num_clbits:b.nc
         (List.rev b.rev_ops))
end

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)

let size t = List.length t.ops

let gate_count ?name:n t =
  List.length
    (List.filter
       (fun op ->
         match op.kind, n with
         | Gate (g, _), Some n -> String.equal (Gate.name g) n
         | Gate _, None -> true
         | (Measure _ | Reset _ | Barrier _), _ -> false)
       t.ops)

let two_qubit_gate_count t =
  List.length
    (List.filter
       (fun op ->
         match op.kind with
         | Gate (g, _) -> Gate.num_qubits g >= 2
         | Measure _ | Reset _ | Barrier _ -> false)
       t.ops)

let measure_count t =
  List.length
    (List.filter
       (fun op ->
         match op.kind with
         | Measure _ -> true
         | Gate _ | Reset _ | Barrier _ -> false)
       t.ops)

let has_conditions t = List.exists (fun op -> op.cond <> None) t.ops

(* Circuit depth: the longest chain of operations over shared qubits or
   clbits (barriers synchronize their qubits). *)
let depth t =
  let qd = Array.make (max t.num_qubits 1) 0 in
  let cd = Array.make (max t.num_clbits 1) 0 in
  let result = ref 0 in
  List.iter
    (fun op ->
      let qs = op_qubits op and cs = op_clbits op in
      let level =
        1
        + List.fold_left
            (fun acc q -> max acc qd.(q))
            (List.fold_left (fun acc c -> max acc cd.(c)) 0 cs)
            qs
      in
      List.iter (fun q -> qd.(q) <- level) qs;
      List.iter (fun c -> cd.(c) <- level) cs;
      if level > !result then result := level)
    t.ops;
  !result

(* ------------------------------------------------------------------ *)
(* Transformations                                                      *)

let map_qubits f t =
  let fix op =
    let kind =
      match op.kind with
      | Gate (g, qs) -> Gate (g, List.map f qs)
      | Measure (q, c) -> Measure (f q, c)
      | Reset q -> Reset (f q)
      | Barrier qs -> Barrier (List.map f qs)
    in
    { op with kind }
  in
  { t with ops = List.map fix t.ops }

let append a b =
  if a.num_qubits <> b.num_qubits || a.num_clbits <> b.num_clbits then
    raise (Invalid "Circuit.append: size mismatch");
  { a with ops = a.ops @ b.ops }

(* The adjoint circuit (measurements and resets are not invertible). *)
let inverse t =
  let inv op =
    match op.kind with
    | Gate (g, qs) -> { op with kind = Gate (Gate.inverse g, qs) }
    | Measure _ | Reset _ ->
      raise (Invalid "Circuit.inverse: circuit contains non-unitary operations")
    | Barrier _ -> op
  in
  { t with ops = List.rev_map inv t.ops }

let is_clifford t =
  List.for_all
    (fun op ->
      match op.kind with
      | Gate (g, _) -> Gate.is_clifford g
      | Measure _ | Reset _ | Barrier _ -> true)
    t.ops

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                      *)

let pp_op ppf op =
  (match op.cond with
  | Some { cbits; value } ->
    Format.fprintf ppf "if (c[%a] == %d) "
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      cbits value
  | None -> ());
  match op.kind with
  | Gate (g, qs) ->
    Format.fprintf ppf "%a %a" Gate.pp g
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf q -> Format.fprintf ppf "q[%d]" q))
      qs
  | Measure (q, c) -> Format.fprintf ppf "measure q[%d] -> c[%d]" q c
  | Reset q -> Format.fprintf ppf "reset q[%d]" q
  | Barrier qs ->
    Format.fprintf ppf "barrier %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf q -> Format.fprintf ppf "q[%d]" q))
      qs

let pp ppf t =
  Format.fprintf ppf "circuit(%d qubits, %d clbits):@\n" t.num_qubits
    t.num_clbits;
  List.iter (fun op -> Format.fprintf ppf "  %a@\n" pp_op op) t.ops

let to_string t = Format.asprintf "%a" pp t

let equal a b =
  a.num_qubits = b.num_qubits && a.num_clbits = b.num_clbits && a.ops = b.ops
