(* Peephole optimization on the circuit IR: cancellation of adjacent
   self-inverse gates, merging of adjacent rotations about the same axis,
   and removal of identity rotations. This is the circuit-level
   counterpart of the classical optimizations QIR gets "for free" from
   LLVM (benchmark E8 contrasts the two). *)

type stats = { cancelled : int; merged : int; removed_identities : int }

let no_stats = { cancelled = 0; merged = 0; removed_identities = 0 }

(* The optimizer scans the operation list once, keeping for each qubit
   the index of the last surviving operation touching it. Two operations
   are adjacent on a qubit set Q when, for every q in Q, the last
   operation on q is the same candidate. Conditional operations are
   barriers for this purpose (they cannot be cancelled against anything,
   and nothing moves across them). *)
let optimize ?(eps = 1e-12) (c : Circuit.t) : Circuit.t * stats =
  let ops = Array.of_list c.Circuit.ops in
  let alive = Array.make (Array.length ops) true in
  let current = Array.map (fun op -> Some op) ops in
  let last = Array.make (max c.Circuit.num_qubits 1) (-1) in
  let cancelled = ref 0 and merged = ref 0 and removed = ref 0 in
  let block_qubits qs = List.iter (fun q -> last.(q) <- -1) qs in
  Array.iteri
    (fun i (op : Circuit.op) ->
      match op.Circuit.kind, op.Circuit.cond with
      | Circuit.Gate (g, qs), None ->
        if Gate.is_identity ~eps g then begin
          alive.(i) <- false;
          incr removed
        end
        else begin
          (* candidate: the previous op, if it is the same on all qubits *)
          let prev =
            match qs with
            | [] -> -1
            | q0 :: rest ->
              let p = last.(q0) in
              if p >= 0 && List.for_all (fun q -> last.(q) = p) rest then p
              else -1
          in
          let try_combine () =
            if prev < 0 || not alive.(prev) then None
            else
              match current.(prev) with
              | Some { Circuit.kind = Circuit.Gate (g', qs'); cond = None }
                when qs' = qs ->
                (* the previous op must touch exactly the same qubits *)
                if Gate.equal g' (Gate.inverse g) then Some `Cancel
                else
                  Option.map (fun m -> `Merge m) (Gate.merge g' g)
              | _ -> None
          in
          match try_combine () with
          | Some `Cancel ->
            alive.(prev) <- false;
            alive.(i) <- false;
            incr cancelled;
            (* the qubits' last op reverts to "unknown": conservative *)
            block_qubits qs
          | Some (`Merge m) ->
            alive.(prev) <- false;
            incr merged;
            if Gate.is_identity ~eps m then begin
              alive.(i) <- false;
              incr removed;
              block_qubits qs
            end
            else begin
              current.(i) <-
                Some { Circuit.kind = Circuit.Gate (m, qs); cond = None };
              List.iter (fun q -> last.(q) <- i) qs
            end
          | None -> List.iter (fun q -> last.(q) <- i) qs
        end
      | Circuit.Gate (_, qs), Some _ -> block_qubits qs
      | Circuit.Measure (q, _), _ | Circuit.Reset q, _ -> block_qubits [ q ]
      | Circuit.Barrier qs, _ -> block_qubits qs)
    ops;
  let remaining = ref [] in
  for i = Array.length ops - 1 downto 0 do
    if alive.(i) then
      match current.(i) with
      | Some op -> remaining := op :: !remaining
      | None -> ()
  done;
  ( { c with Circuit.ops = !remaining },
    { cancelled = !cancelled; merged = !merged; removed_identities = !removed }
  )

(* Iterates [optimize] until no further reduction. *)
let optimize_fixpoint ?(eps = 1e-12) ?(max_rounds = 16) c =
  let rec go c acc round =
    if round >= max_rounds then (c, acc)
    else begin
      let c', s = optimize ~eps c in
      if s.cancelled = 0 && s.merged = 0 && s.removed_identities = 0 then
        (c, acc)
      else
        go c'
          {
            cancelled = acc.cancelled + s.cancelled;
            merged = acc.merged + s.merged;
            removed_identities = acc.removed_identities + s.removed_identities;
          }
          (round + 1)
    end
  in
  go c no_stats 0
