(** Deterministic splitmix64 RNG, so tests and benchmarks are reproducible
    without touching the global [Random] state. *)

type t

val create : int -> t
(** [create seed]. Equal seeds give equal streams. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). Raises
    [Invalid_argument] when [bound <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
