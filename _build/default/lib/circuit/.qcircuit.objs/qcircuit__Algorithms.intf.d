lib/circuit/algorithms.mli: Circuit
