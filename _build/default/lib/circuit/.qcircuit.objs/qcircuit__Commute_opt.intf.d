lib/circuit/commute_opt.mli: Circuit Gate
