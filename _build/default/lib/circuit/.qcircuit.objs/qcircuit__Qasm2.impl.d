lib/circuit/qasm2.ml: Buffer Circuit Float Format Gate Hashtbl List Printf Qasm_expr Qasm_lexer String
