lib/circuit/qasm_lexer.ml: Format Printf String
