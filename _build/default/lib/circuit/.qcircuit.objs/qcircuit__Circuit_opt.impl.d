lib/circuit/circuit_opt.ml: Array Circuit Gate List Option
