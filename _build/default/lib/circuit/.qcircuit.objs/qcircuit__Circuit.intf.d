lib/circuit/circuit.mli: Format Gate
