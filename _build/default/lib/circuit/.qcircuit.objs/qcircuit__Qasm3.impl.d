lib/circuit/qasm3.ml: Buffer Circuit Format Fun Gate List Printf Qasm2 Qasm_expr Qasm_lexer String
