lib/circuit/qasm2.mli: Circuit Format Gate
