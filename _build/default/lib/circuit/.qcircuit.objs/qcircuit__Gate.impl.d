lib/circuit/gate.ml: Array Complex Float Format Printf
