lib/circuit/circuit_opt.mli: Circuit
