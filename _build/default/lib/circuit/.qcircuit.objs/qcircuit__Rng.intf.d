lib/circuit/rng.mli:
