lib/circuit/generate.mli: Circuit
