lib/circuit/algorithms.ml: Circuit Float Gate List
