lib/circuit/qasm3.mli: Circuit
