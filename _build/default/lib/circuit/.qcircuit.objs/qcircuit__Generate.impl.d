lib/circuit/generate.ml: Array Circuit Float Gate Rng
