lib/circuit/commute_opt.ml: Array Circuit Gate List
