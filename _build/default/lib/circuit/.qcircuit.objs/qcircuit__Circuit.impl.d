lib/circuit/circuit.ml: Array Format Gate List String
