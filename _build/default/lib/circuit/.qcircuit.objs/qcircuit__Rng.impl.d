lib/circuit/rng.ml: Int64
