lib/circuit/qasm_expr.ml: Float Format List Printf Qasm_lexer
