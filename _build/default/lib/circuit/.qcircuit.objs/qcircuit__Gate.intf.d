lib/circuit/gate.mli: Complex Format
