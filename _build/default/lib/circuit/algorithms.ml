(* Textbook algorithms with known exact outcomes — used as end-to-end
   integration workloads: each produces a deterministic (or sharply
   peaked) measurement distribution that the full QIR path must
   reproduce. *)

let pi = Float.pi

(* Bernstein-Vazirani: recovers the [secret] bitstring with one oracle
   query. Qubits 0..n-1 are the register, n is the phase ancilla; the
   register measures exactly [secret]. *)
let bernstein_vazirani (secret : bool list) =
  let n = List.length secret in
  if n = 0 then invalid_arg "Algorithms.bernstein_vazirani: empty secret";
  let b = Circuit.Build.create ~num_qubits:(n + 1) ~num_clbits:n () in
  (* ancilla in |-> *)
  Circuit.Build.gate b Gate.X [ n ];
  Circuit.Build.gate b Gate.H [ n ];
  for i = 0 to n - 1 do
    Circuit.Build.gate b Gate.H [ i ]
  done;
  (* oracle: f(x) = s . x *)
  List.iteri
    (fun i bit -> if bit then Circuit.Build.gate b Gate.Cx [ i; n ])
    secret;
  for i = 0 to n - 1 do
    Circuit.Build.gate b Gate.H [ i ];
    Circuit.Build.measure b i i
  done;
  Circuit.Build.finish b

(* Deutsch-Jozsa on [n] input qubits: measures all zeros iff the oracle
   is constant. [oracle] is `Constant true/false or `Balanced mask (f(x)
   = mask . x, balanced when mask <> 0). *)
let deutsch_jozsa ~n oracle =
  if n <= 0 then invalid_arg "Algorithms.deutsch_jozsa: need inputs";
  let b = Circuit.Build.create ~num_qubits:(n + 1) ~num_clbits:n () in
  Circuit.Build.gate b Gate.X [ n ];
  Circuit.Build.gate b Gate.H [ n ];
  for i = 0 to n - 1 do
    Circuit.Build.gate b Gate.H [ i ]
  done;
  (match oracle with
  | `Constant false -> ()
  | `Constant true -> Circuit.Build.gate b Gate.X [ n ]
  | `Balanced mask ->
    if mask = 0 then invalid_arg "Algorithms.deutsch_jozsa: zero mask";
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then Circuit.Build.gate b Gate.Cx [ i; n ]
    done);
  for i = 0 to n - 1 do
    Circuit.Build.gate b Gate.H [ i ];
    Circuit.Build.measure b i i
  done;
  Circuit.Build.finish b

(* Grover search on 2 qubits: one iteration finds [marked] (0..3) with
   certainty. *)
let grover_2q ~marked =
  if marked < 0 || marked > 3 then
    invalid_arg "Algorithms.grover_2q: marked state must be 0..3";
  let b = Circuit.Build.create ~num_qubits:2 ~num_clbits:2 () in
  Circuit.Build.gate b Gate.H [ 0 ];
  Circuit.Build.gate b Gate.H [ 1 ];
  (* oracle: phase-flip |marked> using CZ conjugated by X on 0-bits *)
  let flip_zeros () =
    if marked land 1 = 0 then Circuit.Build.gate b Gate.X [ 0 ];
    if marked land 2 = 0 then Circuit.Build.gate b Gate.X [ 1 ]
  in
  flip_zeros ();
  Circuit.Build.gate b Gate.Cz [ 0; 1 ];
  flip_zeros ();
  (* diffusion *)
  Circuit.Build.gate b Gate.H [ 0 ];
  Circuit.Build.gate b Gate.H [ 1 ];
  Circuit.Build.gate b Gate.X [ 0 ];
  Circuit.Build.gate b Gate.X [ 1 ];
  Circuit.Build.gate b Gate.Cz [ 0; 1 ];
  Circuit.Build.gate b Gate.X [ 0 ];
  Circuit.Build.gate b Gate.X [ 1 ];
  Circuit.Build.gate b Gate.H [ 0 ];
  Circuit.Build.gate b Gate.H [ 1 ];
  Circuit.Build.measure b 0 0;
  Circuit.Build.measure b 1 1;
  Circuit.Build.finish b

(* Quantum phase estimation of the eigenphase of P(2*pi*k/2^bits) on its
   |1> eigenstate, with [bits] counting qubits: measures exactly [k]
   (LSB-first in the classical register). Qubits 0..bits-1 count; qubit
   [bits] holds the eigenstate. *)
let phase_estimation ~bits ~k =
  if bits <= 0 then invalid_arg "Algorithms.phase_estimation: need bits";
  let denom = 1 lsl bits in
  if k < 0 || k >= denom then
    invalid_arg "Algorithms.phase_estimation: k out of range";
  let b = Circuit.Build.create ~num_qubits:(bits + 1) ~num_clbits:bits () in
  let eigen = bits in
  Circuit.Build.gate b Gate.X [ eigen ];
  for i = 0 to bits - 1 do
    Circuit.Build.gate b Gate.H [ i ]
  done;
  (* controlled powers: counting qubit i applies U^(2^i) *)
  let theta = 2.0 *. pi *. float_of_int k /. float_of_int denom in
  for i = 0 to bits - 1 do
    let angle = theta *. float_of_int (1 lsl i) in
    Circuit.Build.gate b (Gate.Cp angle) [ i; eigen ]
  done;
  (* inverse QFT on the counting register; this ordering leaves the
     estimate bit-reversed across the counting qubits, so the
     measurement map below reverses it back (clbit i = bit i of k) *)
  for i = bits - 1 downto 0 do
    for j = bits - 1 downto i + 1 do
      let angle = -.pi /. Float.pow 2.0 (float_of_int (j - i)) in
      Circuit.Build.gate b (Gate.Cp angle) [ j; i ]
    done;
    Circuit.Build.gate b Gate.H [ i ]
  done;
  for i = 0 to bits - 1 do
    Circuit.Build.measure b i (bits - 1 - i)
  done;
  Circuit.Build.finish b
