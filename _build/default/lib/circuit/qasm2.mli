(** OpenQASM 2.0 front- and back-end (the paper's Sec. II-A, Fig. 1 left).

    The parser supports the full language: register declarations, the
    built-in [U]/[CX] gates, the qelib1 standard library (implemented
    natively), user [gate] definitions (expanded as macros with parameter
    substitution), [opaque] declarations, whole-register broadcasting,
    [measure]/[reset], [barrier] and [if (creg == n)] conditions. *)

exception Error of int * string
(** Parse error with its source line. *)

val builtin : string -> float list -> Gate.t option
(** [builtin name params] resolves a built-in / qelib1 gate name applied
    to evaluated parameters. Exposed for reuse by the OpenQASM 3 subset
    parser. *)

val parse : string -> Circuit.t
(** Parses an OpenQASM 2.0 program. Raises {!Error}. *)

val parse_result : string -> (Circuit.t, string) result

val to_string : Circuit.t -> string
(** Prints a circuit as OpenQASM 2.0. Gates outside qelib1 get a
    definition in the prologue. Raises [Invalid_argument] when a
    condition does not cover a whole classical register (OpenQASM 2
    cannot express single-bit conditions). *)

(**/**)

(* Shared with the OpenQASM 3 printer. *)
val ref_in : Circuit.register list -> int -> string
val creg_covering : Circuit.register list -> int list -> Circuit.register option
val pp_angle : Format.formatter -> float -> unit
