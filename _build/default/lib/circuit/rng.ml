(* Deterministic splitmix64 RNG, so tests and benchmarks are reproducible
   without depending on the global [Random] state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(* Uniform float in [0, 1). *)
let float t =
  let r = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float r /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L
