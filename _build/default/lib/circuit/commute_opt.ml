(* Commutation-aware gate cancellation: two inverse (or mergeable) gates
   separated by operations they commute with are still combined, e.g.

     x q1; cx q0, q1; x q1      ->  cx q0, q1
     rz q0; cx q0, q1; rz q0    ->  cx q0, q1; rz(sum) q0

   This extends {!Circuit_opt} (which only combines directly adjacent
   gates) using a conservative commutation table: diagonal gates commute
   through control roles and with each other; X-axis gates commute
   through CX targets. Conditioned operations, measurements, resets and
   barriers never commute with anything. *)

(* Diagonal in the computational basis. *)
let is_diagonal (g : Gate.t) =
  match g with
  | Gate.Z | Gate.S | Gate.Sdg | Gate.T | Gate.Tdg | Gate.Rz _ | Gate.P _
  | Gate.Cz | Gate.Cp _ | Gate.Crz _ | Gate.I ->
    true
  | _ -> false

(* X-axis single-qubit gates. *)
let is_x_axis (g : Gate.t) =
  match g with
  | Gate.X | Gate.Rx _ | Gate.Sx | Gate.Sxdg | Gate.I -> true
  | _ -> false

(* Does the single-qubit gate [g] on [q] commute with operation [op]
   (which touches [q])? *)
let commutes_1q (g : Gate.t) q (op : Circuit.op) =
  match op.Circuit.cond, op.Circuit.kind with
  | Some _, _ -> false
  | None, Circuit.Gate (g2, qs2) -> (
    if is_diagonal g && is_diagonal g2 then true
    else
      match g2, qs2 with
      | Gate.Cx, [ ctrl; tgt ] ->
        (is_diagonal g && q = ctrl) || (is_x_axis g && q = tgt)
      | Gate.Ccx, [ c1; c2; tgt ] ->
        (is_diagonal g && (q = c1 || q = c2)) || (is_x_axis g && q = tgt)
      | Gate.Crx _, [ ctrl; _ ] -> is_diagonal g && q = ctrl
      | Gate.Cry _, [ ctrl; _ ] -> is_diagonal g && q = ctrl
      | Gate.Cu _, [ ctrl; _ ] -> is_diagonal g && q = ctrl
      | _ -> false)
  | None, (Circuit.Measure _ | Circuit.Reset _ | Circuit.Barrier _) -> false

(* Does CX (or CZ) on [qs] commute with [op]? Conservative. *)
let commutes_2q (g : Gate.t) qs (op : Circuit.op) =
  match g, qs with
  | Gate.Cx, [ ctrl; tgt ] -> (
    match op.Circuit.cond, op.Circuit.kind with
    | Some _, _ -> false
    | None, Circuit.Gate (g2, qs2) -> (
      match g2, qs2 with
      | Gate.Cx, [ ctrl2; tgt2 ] ->
        (* share only controls or only targets *)
        (ctrl = ctrl2 && tgt <> tgt2 && ctrl <> tgt2 && tgt <> ctrl2)
        || (tgt = tgt2 && ctrl <> ctrl2 && ctrl <> tgt2 && tgt <> ctrl2)
      | _, _ ->
        let shared = List.filter (fun q -> List.mem q qs2) qs in
        List.for_all
          (fun q ->
            match Gate.num_qubits g2, qs2 with
            | 1, [ _ ] ->
              (is_diagonal g2 && q = ctrl) || (is_x_axis g2 && q = tgt)
            | _ -> false)
          shared
        && shared <> [])
    | None, (Circuit.Measure _ | Circuit.Reset _ | Circuit.Barrier _) -> false)
  | (Gate.Cz | Gate.Cp _), [ _; _ ] -> (
    match op.Circuit.cond, op.Circuit.kind with
    | Some _, _ -> false
    | None, Circuit.Gate (g2, qs2) -> (
      match g2, qs2 with
      | _, [ _ ] ->
        (* CZ/CP are diagonal: commute with diagonal 1q gates anywhere *)
        is_diagonal g2
      | (Gate.Cz | Gate.Cp _ | Gate.Crz _), _ -> true
      | _ -> false)
    | None, (Circuit.Measure _ | Circuit.Reset _ | Circuit.Barrier _) -> false)
  | _ -> false

let commutes (g : Gate.t) qs (op : Circuit.op) =
  match qs with
  | [ q ] -> commutes_1q g q op
  | [ _; _ ] -> commutes_2q g qs op
  | _ -> false

type stats = { cancelled : int; merged : int }

let optimize (c : Circuit.t) : Circuit.t * stats =
  let ops = Array.of_list c.Circuit.ops in
  let n = Array.length ops in
  let alive = Array.make n true in
  let current = Array.map (fun op -> op) ops in
  (* per-qubit list of op indices, in order *)
  let by_qubit = Array.make (max c.Circuit.num_qubits 1) [] in
  Array.iteri
    (fun i op ->
      List.iter (fun q -> by_qubit.(q) <- i :: by_qubit.(q)) (Circuit.op_qubits op))
    ops;
  Array.iteri (fun q l -> by_qubit.(q) <- List.rev l) by_qubit;
  let cancelled = ref 0 and merged = ref 0 in
  (* indices after [i] of live ops touching any qubit of [qs], in order *)
  let later_touching i qs =
    let lists = List.map (fun q -> by_qubit.(q)) qs in
    let merged_list = List.sort_uniq compare (List.concat lists) in
    List.filter (fun j -> j > i && alive.(j)) merged_list
  in
  let try_combine i =
    match current.(i) with
    | { Circuit.kind = Circuit.Gate (g, qs); cond = None } ->
      let rec scan = function
        | [] -> ()
        | j :: rest -> (
          match current.(j) with
          | { Circuit.kind = Circuit.Gate (g2, qs2); cond = None }
            when qs2 = qs -> (
            if Gate.equal g2 (Gate.inverse g) then begin
              alive.(i) <- false;
              alive.(j) <- false;
              incr cancelled
            end
            else
              match Gate.merge g g2 with
              | Some m ->
                alive.(i) <- false;
                incr merged;
                if Gate.is_identity m then begin
                  alive.(j) <- false;
                  incr cancelled
                end
                else
                  current.(j) <-
                    { Circuit.kind = Circuit.Gate (m, qs); cond = None }
              | None -> if commutes g qs current.(j) then scan rest)
          | op when commutes g qs op -> scan rest
          | _ -> ())
      in
      scan (later_touching i qs)
    | _ -> ()
  in
  for i = 0 to n - 1 do
    if alive.(i) then try_combine i
  done;
  let remaining = ref [] in
  for i = n - 1 downto 0 do
    if alive.(i) then remaining := current.(i) :: !remaining
  done;
  ( { c with Circuit.ops = !remaining },
    { cancelled = !cancelled; merged = !merged } )

let optimize_fixpoint ?(max_rounds = 8) c =
  let rec go c acc round =
    if round >= max_rounds then (c, acc)
    else begin
      let c', s = optimize c in
      if s.cancelled = 0 && s.merged = 0 then (c, acc)
      else
        go c'
          { cancelled = acc.cancelled + s.cancelled;
            merged = acc.merged + s.merged }
          (round + 1)
    end
  in
  go c { cancelled = 0; merged = 0 } 0
