(* OpenQASM 2.0 front- and back-end (the paper's Sec. II-A, Fig. 1 left).

   The parser supports the full OpenQASM 2 language: register
   declarations, the built-in [U]/[CX] gates, the qelib1 standard library
   (implemented natively), user gate definitions (expanded as macros),
   [opaque] declarations, register broadcasting, [measure]/[reset],
   [barrier] and [if (creg == n)] conditions. *)

exception Error of int * string

let error line fmt =
  Format.kasprintf (fun msg -> raise (Error (line, msg))) fmt

(* ------------------------------------------------------------------ *)
(* Builtin gate vocabulary (U, CX and qelib1)                           *)

let half_pi = Float.pi /. 2.0

let builtin name (params : float list) : Gate.t option =
  match name, params with
  | "U", [ a; b; c ] | "u3", [ a; b; c ] | "u", [ a; b; c ] ->
    Some (Gate.U (a, b, c))
  | "u2", [ p; l ] -> Some (Gate.U (half_pi, p, l))
  | "u1", [ l ] | "p", [ l ] | "phase", [ l ] -> Some (Gate.P l)
  | "u0", [ _ ] -> Some Gate.I
  | "CX", [] | "cx", [] | "cnot", [] -> Some Gate.Cx
  | "id", [] -> Some Gate.I
  | "x", [] -> Some Gate.X
  | "y", [] -> Some Gate.Y
  | "z", [] -> Some Gate.Z
  | "h", [] -> Some Gate.H
  | "s", [] -> Some Gate.S
  | "sdg", [] -> Some Gate.Sdg
  | "t", [] -> Some Gate.T
  | "tdg", [] -> Some Gate.Tdg
  | "sx", [] -> Some Gate.Sx
  | "sxdg", [] -> Some Gate.Sxdg
  | "rx", [ t ] -> Some (Gate.Rx t)
  | "ry", [ t ] -> Some (Gate.Ry t)
  | "rz", [ t ] -> Some (Gate.Rz t)
  | "cz", [] -> Some Gate.Cz
  | "cy", [] -> Some Gate.Cy
  | "ch", [] -> Some Gate.Ch
  | "ccx", [] -> Some Gate.Ccx
  | "crx", [ t ] -> Some (Gate.Crx t)
  | "cry", [ t ] -> Some (Gate.Cry t)
  | "crz", [ t ] -> Some (Gate.Crz t)
  | "cu1", [ t ] | "cp", [ t ] -> Some (Gate.Cp t)
  | "cu3", [ a; b; c ] -> Some (Gate.Cu (a, b, c))
  | "swap", [] -> Some Gate.Swap
  | "cswap", [] -> Some Gate.Cswap
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)

type argument = Whole of string | Indexed of string * int

type g_stmt =
  | G_apply of string * Qasm_expr.t list * string list
  | G_barrier of string list

type gate_def = {
  g_params : string list;
  g_qubits : string list;
  g_body : g_stmt list; (* empty for opaque gates *)
  g_opaque : bool;
}

type state = {
  st : Qasm_expr.P.state;
  mutable qregs : Circuit.register list;
  mutable cregs : Circuit.register list;
  gates : (string, gate_def) Hashtbl.t;
  build : Circuit.Build.t;
  mutable include_seen : bool;
}

let tok ps = ps.st.Qasm_expr.P.tok
let advance ps = Qasm_expr.P.advance ps.st
let line ps = ps.st.Qasm_expr.P.lx.Qasm_lexer.line
let perror ps fmt = error (line ps) fmt

let expect ps t =
  if tok ps = t then advance ps
  else
    perror ps "expected '%s', found '%s'"
      (Qasm_lexer.string_of_token t)
      (Qasm_lexer.string_of_token (tok ps))

let expect_id ps =
  match tok ps with
  | Qasm_lexer.ID name ->
    advance ps;
    name
  | t -> perror ps "expected identifier, found '%s'" (Qasm_lexer.string_of_token t)

let expect_int ps =
  match tok ps with
  | Qasm_lexer.INT n ->
    advance ps;
    n
  | t -> perror ps "expected integer, found '%s'" (Qasm_lexer.string_of_token t)

let find_qreg ps name =
  List.find_opt (fun (r : Circuit.register) -> String.equal r.rname name) ps.qregs

let find_creg ps name =
  List.find_opt (fun (r : Circuit.register) -> String.equal r.rname name) ps.cregs

let parse_argument ps =
  let name = expect_id ps in
  if tok ps = Qasm_lexer.LBRACKET then begin
    advance ps;
    let idx = expect_int ps in
    expect ps Qasm_lexer.RBRACKET;
    Indexed (name, idx)
  end
  else Whole name

(* Resolves an argument against the quantum registers into a list of flat
   qubit indices ([Whole] broadcasts). *)
let resolve_qarg ps = function
  | Whole name -> (
    match find_qreg ps name with
    | Some r -> List.init r.rsize (fun i -> r.roffset + i)
    | None -> perror ps "undeclared quantum register %s" name)
  | Indexed (name, i) -> (
    match find_qreg ps name with
    | Some r ->
      if i < 0 || i >= r.rsize then
        perror ps "index %d out of range for %s[%d]" i name r.rsize;
      [ r.roffset + i ]
    | None -> perror ps "undeclared quantum register %s" name)

let resolve_carg ps = function
  | Whole name -> (
    match find_creg ps name with
    | Some r -> List.init r.rsize (fun i -> r.roffset + i)
    | None -> perror ps "undeclared classical register %s" name)
  | Indexed (name, i) -> (
    match find_creg ps name with
    | Some r ->
      if i < 0 || i >= r.rsize then
        perror ps "index %d out of range for %s[%d]" i name r.rsize;
      [ r.roffset + i ]
    | None -> perror ps "undeclared classical register %s" name)

(* Broadcast semantics: whole-register operands must agree in length;
   singleton operands repeat. *)
let broadcast ps (operands : int list list) =
  let lengths = List.sort_uniq compare (List.map List.length operands) in
  match lengths with
  | [ 1 ] -> [ List.map List.hd operands ]
  | [ n ] | [ 1; n ] ->
    List.init n (fun i ->
        List.map
          (fun ops ->
            match ops with
            | [ only ] -> only
            | _ -> List.nth ops i)
          operands)
  | _ -> perror ps "mismatched register sizes in broadcast"

let parse_params ps =
  if tok ps = Qasm_lexer.LPAREN then begin
    advance ps;
    if tok ps = Qasm_lexer.RPAREN then begin
      advance ps;
      []
    end
    else begin
      let rec go acc =
        let e = Qasm_expr.P.parse 0 ps.st in
        if tok ps = Qasm_lexer.COMMA then begin
          advance ps;
          go (e :: acc)
        end
        else begin
          expect ps Qasm_lexer.RPAREN;
          List.rev (e :: acc)
        end
      in
      go []
    end
  end
  else []

let rec parse_id_list ps acc =
  let id = expect_id ps in
  if tok ps = Qasm_lexer.COMMA then begin
    advance ps;
    parse_id_list ps (id :: acc)
  end
  else List.rev (id :: acc)

(* Emits one gate application, expanding user-defined gates. [env] maps
   gate parameters to values. *)
let rec emit_gate ps ?cond ~depth name (param_values : float list)
    (qubits : int list) =
  if depth > 64 then perror ps "gate expansion too deep (recursive gate?)";
  match builtin name param_values with
  | Some g ->
    if List.length qubits <> Gate.num_qubits g then
      perror ps "%s expects %d qubits, got %d" name (Gate.num_qubits g)
        (List.length qubits);
    if
      List.length (List.sort_uniq compare qubits) <> List.length qubits
    then perror ps "duplicate qubit operands to %s" name;
    Circuit.Build.gate ?cond ps.build g qubits
  | None -> (
    match Hashtbl.find_opt ps.gates name with
    | Some def when not def.g_opaque ->
      if List.length param_values <> List.length def.g_params then
        perror ps "%s expects %d parameters" name (List.length def.g_params);
      if List.length qubits <> List.length def.g_qubits then
        perror ps "%s expects %d qubits" name (List.length def.g_qubits);
      let penv = List.combine def.g_params param_values in
      let qenv = List.combine def.g_qubits qubits in
      List.iter
        (fun stmt ->
          match stmt with
          | G_apply (gname, exprs, qargs) ->
            let values =
              List.map
                (fun e ->
                  try Qasm_expr.eval penv e
                  with Qasm_expr.Unbound p ->
                    perror ps "unbound parameter %s in gate %s" p name)
                exprs
            in
            let qs =
              List.map
                (fun q ->
                  match List.assoc_opt q qenv with
                  | Some idx -> idx
                  | None -> perror ps "unbound qubit %s in gate %s" q name)
                qargs
            in
            emit_gate ps ?cond ~depth:(depth + 1) gname values qs
          | G_barrier _ -> () (* barriers inside gate bodies are hints *))
        def.g_body
    | Some _ -> perror ps "cannot apply opaque gate %s" name
    | None -> perror ps "unknown gate %s" name)

(* One quantum operation (after any [if] prefix). *)
let parse_qop ps ?cond () =
  match tok ps with
  | Qasm_lexer.ID "measure" ->
    advance ps;
    let qarg = parse_argument ps in
    expect ps Qasm_lexer.ARROW;
    let carg = parse_argument ps in
    expect ps Qasm_lexer.SEMI;
    let qs = resolve_qarg ps qarg and cs = resolve_carg ps carg in
    List.iter
      (fun pair ->
        match pair with
        | [ q; c ] -> Circuit.Build.measure ?cond ps.build q c
        | _ -> assert false)
      (broadcast ps [ qs; cs ])
  | Qasm_lexer.ID "reset" ->
    advance ps;
    let qarg = parse_argument ps in
    expect ps Qasm_lexer.SEMI;
    List.iter (fun q -> Circuit.Build.reset ?cond ps.build q) (resolve_qarg ps qarg)
  | Qasm_lexer.ID name ->
    advance ps;
    let exprs = parse_params ps in
    let values =
      List.map
        (fun e ->
          try Qasm_expr.eval [] e
          with Qasm_expr.Unbound p -> perror ps "unbound parameter %s" p)
        exprs
    in
    let rec args acc =
      let a = parse_argument ps in
      if tok ps = Qasm_lexer.COMMA then begin
        advance ps;
        args (a :: acc)
      end
      else begin
        expect ps Qasm_lexer.SEMI;
        List.rev (a :: acc)
      end
    in
    let arglist = args [] in
    let resolved = List.map (resolve_qarg ps) arglist in
    List.iter
      (fun qubits -> emit_gate ps ?cond ~depth:0 name values qubits)
      (broadcast ps resolved)
  | t -> perror ps "expected quantum operation, found '%s'" (Qasm_lexer.string_of_token t)

let parse_gate_body ps =
  expect ps Qasm_lexer.LBRACE;
  let stmts = ref [] in
  let rec go () =
    match tok ps with
    | Qasm_lexer.RBRACE -> advance ps
    | Qasm_lexer.ID "barrier" ->
      advance ps;
      let ids = parse_id_list ps [] in
      expect ps Qasm_lexer.SEMI;
      stmts := G_barrier ids :: !stmts;
      go ()
    | Qasm_lexer.ID name ->
      advance ps;
      let exprs = parse_params ps in
      let qargs = parse_id_list ps [] in
      expect ps Qasm_lexer.SEMI;
      stmts := G_apply (name, exprs, qargs) :: !stmts;
      go ()
    | t ->
      perror ps "unexpected '%s' in gate body" (Qasm_lexer.string_of_token t)
  in
  go ();
  List.rev !stmts

let parse_statement ps =
  match tok ps with
  | Qasm_lexer.ID "include" ->
    advance ps;
    (match tok ps with
    | Qasm_lexer.STRING lib ->
      advance ps;
      if
        not
          (String.equal lib "qelib1.inc" || String.equal lib "stdgates.inc")
      then perror ps "cannot resolve include %S (only qelib1.inc is built in)" lib;
      ps.include_seen <- true
    | t -> perror ps "expected string after include, found '%s'" (Qasm_lexer.string_of_token t));
    expect ps Qasm_lexer.SEMI
  | Qasm_lexer.ID "qreg" ->
    advance ps;
    let name = expect_id ps in
    expect ps Qasm_lexer.LBRACKET;
    let size = expect_int ps in
    expect ps Qasm_lexer.RBRACKET;
    expect ps Qasm_lexer.SEMI;
    if find_qreg ps name <> None then perror ps "duplicate qreg %s" name;
    let offset = List.fold_left (fun a (r : Circuit.register) -> a + r.rsize) 0 ps.qregs in
    ps.qregs <- ps.qregs @ [ { Circuit.rname = name; roffset = offset; rsize = size } ];
    (* make sure the builder knows about all declared qubits *)
    if size > 0 then Circuit.Build.touch_qubit ps.build (offset + size - 1)
  | Qasm_lexer.ID "creg" ->
    advance ps;
    let name = expect_id ps in
    expect ps Qasm_lexer.LBRACKET;
    let size = expect_int ps in
    expect ps Qasm_lexer.RBRACKET;
    expect ps Qasm_lexer.SEMI;
    if find_creg ps name <> None then perror ps "duplicate creg %s" name;
    let offset = List.fold_left (fun a (r : Circuit.register) -> a + r.rsize) 0 ps.cregs in
    ps.cregs <- ps.cregs @ [ { Circuit.rname = name; roffset = offset; rsize = size } ];
    if size > 0 then Circuit.Build.touch_clbit ps.build (offset + size - 1)
  | Qasm_lexer.ID "gate" ->
    advance ps;
    let name = expect_id ps in
    let g_params =
      if tok ps = Qasm_lexer.LPAREN then begin
        advance ps;
        if tok ps = Qasm_lexer.RPAREN then begin
          advance ps;
          []
        end
        else begin
          let ids = parse_id_list ps [] in
          expect ps Qasm_lexer.RPAREN;
          ids
        end
      end
      else []
    in
    let g_qubits = parse_id_list ps [] in
    let g_body = parse_gate_body ps in
    Hashtbl.replace ps.gates name { g_params; g_qubits; g_body; g_opaque = false }
  | Qasm_lexer.ID "opaque" ->
    advance ps;
    let name = expect_id ps in
    let g_params =
      if tok ps = Qasm_lexer.LPAREN then begin
        advance ps;
        let ids =
          if tok ps = Qasm_lexer.RPAREN then []
          else parse_id_list ps []
        in
        expect ps Qasm_lexer.RPAREN;
        ids
      end
      else []
    in
    let g_qubits = parse_id_list ps [] in
    expect ps Qasm_lexer.SEMI;
    Hashtbl.replace ps.gates name { g_params; g_qubits; g_body = []; g_opaque = true }
  | Qasm_lexer.ID "barrier" ->
    advance ps;
    let rec args acc =
      let a = parse_argument ps in
      if tok ps = Qasm_lexer.COMMA then begin
        advance ps;
        args (a :: acc)
      end
      else begin
        expect ps Qasm_lexer.SEMI;
        List.rev (a :: acc)
      end
    in
    let qs = List.concat_map (resolve_qarg ps) (args []) in
    Circuit.Build.barrier ps.build qs
  | Qasm_lexer.ID "if" ->
    advance ps;
    expect ps Qasm_lexer.LPAREN;
    let creg = expect_id ps in
    expect ps Qasm_lexer.EQEQ;
    let value = expect_int ps in
    expect ps Qasm_lexer.RPAREN;
    let cbits =
      match find_creg ps creg with
      | Some r -> List.init r.rsize (fun i -> r.roffset + i)
      | None -> perror ps "undeclared classical register %s" creg
    in
    parse_qop ps ~cond:{ Circuit.cbits; value } ()
  | Qasm_lexer.ID _ -> parse_qop ps ()
  | t -> perror ps "unexpected '%s' at top level" (Qasm_lexer.string_of_token t)

let parse src : Circuit.t =
  let lx = Qasm_lexer.create src in
  let st = { Qasm_expr.P.tok = Qasm_lexer.next lx; lx } in
  let ps =
    {
      st;
      qregs = [];
      cregs = [];
      gates = Hashtbl.create 16;
      build = Circuit.Build.create ();
      include_seen = false;
    }
  in
  (try
     (* header: OPENQASM 2.0; *)
     (match tok ps with
     | Qasm_lexer.ID "OPENQASM" ->
       advance ps;
       (match tok ps with
       | Qasm_lexer.REAL 2.0 -> advance ps
       | Qasm_lexer.INT 2 -> advance ps
       | t ->
         perror ps "unsupported OpenQASM version '%s'"
           (Qasm_lexer.string_of_token t));
       expect ps Qasm_lexer.SEMI
     | _ -> perror ps "missing OPENQASM 2.0 header");
     while tok ps <> Qasm_lexer.EOF do
       parse_statement ps
     done
   with Qasm_lexer.Error (l, m) -> error l "%s" m);
  Circuit.Build.finish ~qregs:ps.qregs ~cregs:ps.cregs ps.build

let parse_result src =
  match parse src with
  | c -> Ok c
  | exception Error (l, m) -> Error (Printf.sprintf "line %d: %s" l m)

(* ------------------------------------------------------------------ *)
(* Printer                                                              *)

(* Gates not in qelib1 need a definition in the prologue. *)
let prologue_defs = function
  | Gate.Sx -> Some "gate sx a { sdg a; h a; sdg a; }"
  | Gate.Sxdg -> Some "gate sxdg a { s a; h a; s a; }"
  | Gate.P _ -> None (* printed as u1 *)
  | Gate.Cp _ -> None (* printed as cu1 *)
  | Gate.Crx _ -> Some "gate crx(t) a, b { u1(pi/2) b; cx a, b; u3(-t/2,0,0) b; cx a, b; u3(t/2,-pi/2,0) b; }"
  | Gate.Cry _ -> Some "gate cry(t) a, b { ry(t/2) b; cx a, b; ry(-t/2) b; cx a, b; }"
  | _ -> None

let qasm_gate_name (g : Gate.t) =
  match g with
  | Gate.P _ -> "u1"
  | Gate.Cp _ -> "cu1"
  | Gate.U _ -> "u3"
  | Gate.Cu _ -> "cu3"
  | g -> Gate.name g

(* Maps a flat index back to "reg[i]" syntax. *)
let ref_in regs idx =
  let r =
    List.find_opt
      (fun (r : Circuit.register) ->
        idx >= r.roffset && idx < r.roffset + r.rsize)
      regs
  in
  match r with
  | Some r -> Printf.sprintf "%s[%d]" r.Circuit.rname (idx - r.Circuit.roffset)
  | None -> Printf.sprintf "q[%d]" idx

let creg_covering regs cbits =
  List.find_opt
    (fun (r : Circuit.register) ->
      List.sort compare cbits = List.init r.rsize (fun i -> r.roffset + i))
    regs

let pp_angle ppf t =
  (* render common multiples of pi exactly *)
  let k = t /. Float.pi in
  if Float.is_integer (k *. 8.0) && Float.abs k <= 16.0 then begin
    if Float.equal k 0.0 then Format.pp_print_string ppf "0"
    else if Float.equal k 1.0 then Format.pp_print_string ppf "pi"
    else if Float.equal k (-1.0) then Format.pp_print_string ppf "-pi"
    else if Float.is_integer k then Format.fprintf ppf "%g*pi" k
    else Format.fprintf ppf "%g*pi" k
  end
  else Format.fprintf ppf "%.17g" t

let to_string (t : Circuit.t) =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "OPENQASM 2.0;@\ninclude \"qelib1.inc\";@\n";
  (* prologue definitions for non-qelib gates *)
  let defs = Hashtbl.create 4 in
  List.iter
    (fun (op : Circuit.op) ->
      match op.kind with
      | Circuit.Gate (g, _) -> (
        match prologue_defs g with
        | Some d -> Hashtbl.replace defs d ()
        | None -> ())
      | _ -> ())
    t.ops;
  Hashtbl.iter (fun d () -> Format.fprintf ppf "%s@\n" d) defs;
  List.iter
    (fun (r : Circuit.register) ->
      Format.fprintf ppf "qreg %s[%d];@\n" r.rname r.rsize)
    t.qregs;
  List.iter
    (fun (r : Circuit.register) ->
      Format.fprintf ppf "creg %s[%d];@\n" r.rname r.rsize)
    t.cregs;
  List.iter
    (fun (op : Circuit.op) ->
      (match op.cond with
      | Some { cbits; value } -> (
        match creg_covering t.cregs cbits with
        | Some r -> Format.fprintf ppf "if (%s == %d) " r.rname value
        | None ->
          invalid_arg
            "Qasm2.to_string: condition does not cover a whole register")
      | None -> ());
      match op.kind with
      | Circuit.Gate (g, qs) ->
        let params = Gate.params g in
        if params = [] then
          Format.fprintf ppf "%s %s;@\n" (qasm_gate_name g)
            (String.concat ", " (List.map (ref_in t.qregs) qs))
        else
          Format.fprintf ppf "%s(%a) %s;@\n" (qasm_gate_name g)
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
               pp_angle)
            params
            (String.concat ", " (List.map (ref_in t.qregs) qs))
      | Circuit.Measure (q, c) ->
        Format.fprintf ppf "measure %s -> %s;@\n" (ref_in t.qregs q)
          (ref_in t.cregs c)
      | Circuit.Reset q -> Format.fprintf ppf "reset %s;@\n" (ref_in t.qregs q)
      | Circuit.Barrier qs ->
        Format.fprintf ppf "barrier %s;@\n"
          (String.concat ", " (List.map (ref_in t.qregs) qs)))
    t.ops;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
