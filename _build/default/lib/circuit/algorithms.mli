(** Textbook algorithms with known exact outcomes, used as end-to-end
    integration workloads across the QIR path. *)

val bernstein_vazirani : bool list -> Circuit.t
(** One-query recovery of the secret bitstring; the register (clbits
    0..n-1, LSB first) measures exactly the secret. Uses qubit [n] as the
    phase ancilla. *)

val deutsch_jozsa :
  n:int -> [ `Balanced of int | `Constant of bool ] -> Circuit.t
(** Measures all-zeros iff the oracle is constant. [`Balanced mask] is
    f(x) = mask.x (mask <> 0). *)

val grover_2q : marked:int -> Circuit.t
(** One Grover iteration on 2 qubits finds [marked] (0..3) with
    certainty. *)

val phase_estimation : bits:int -> k:int -> Circuit.t
(** QPE of the eigenphase 2*pi*k/2^bits of a phase gate on its |1>
    eigenstate: the counting register measures exactly [k]. *)
