(* Shared lexer for OpenQASM 2 and the OpenQASM 3 subset. Handles //
   line comments and /* */ block comments. *)

type token =
  | ID of string
  | INT of int
  | REAL of float
  | STRING of string
  | SEMI
  | COMMA
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | ARROW (* -> *)
  | EQEQ (* == *)
  | EQUALS (* = *)
  | COLON
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET
  | EOF

exception Error of int * string (* line, message *)

type t = { src : string; mutable pos : int; mutable line : int }

let create src = { src; pos = 0; line = 1 }

let error lx fmt =
  Format.kasprintf (fun msg -> raise (Error (lx.line, msg))) fmt

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  if peek lx = Some '\n' then lx.line <- lx.line + 1;
  lx.pos <- lx.pos + 1

let is_digit c = c >= '0' && c <= '9'

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id_char c = is_id_start c || is_digit c

let rec skip_trivia lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_trivia lx
  | Some '/' when peek2 lx = Some '/' ->
    let rec to_eol () =
      match peek lx with
      | Some '\n' | None -> ()
      | Some _ ->
        advance lx;
        to_eol ()
    in
    to_eol ();
    skip_trivia lx
  | Some '/' when peek2 lx = Some '*' ->
    advance lx;
    advance lx;
    let rec to_close () =
      match peek lx, peek2 lx with
      | Some '*', Some '/' ->
        advance lx;
        advance lx
      | None, _ -> error lx "unterminated block comment"
      | Some _, _ ->
        advance lx;
        to_close ()
    in
    to_close ();
    skip_trivia lx
  | Some _ | None -> ()

let take_while lx pred =
  let start = lx.pos in
  let rec go () =
    match peek lx with
    | Some c when pred c ->
      advance lx;
      go ()
    | Some _ | None -> ()
  in
  go ();
  String.sub lx.src start (lx.pos - start)

let number lx =
  let start = lx.pos in
  let _ = take_while lx is_digit in
  let is_real = ref false in
  if peek lx = Some '.' then begin
    is_real := true;
    advance lx;
    let _ = take_while lx is_digit in
    ()
  end;
  (match peek lx with
  | Some ('e' | 'E') ->
    is_real := true;
    advance lx;
    (match peek lx with
    | Some ('+' | '-') -> advance lx
    | Some _ | None -> ());
    let _ = take_while lx is_digit in
    ()
  | Some _ | None -> ());
  let text = String.sub lx.src start (lx.pos - start) in
  if !is_real then REAL (float_of_string text) else INT (int_of_string text)

let next lx =
  skip_trivia lx;
  match peek lx with
  | None -> EOF
  | Some '"' ->
    advance lx;
    let s = take_while lx (fun c -> c <> '"') in
    (match peek lx with
    | Some '"' -> advance lx
    | _ -> error lx "unterminated string");
    STRING s
  | Some ';' ->
    advance lx;
    SEMI
  | Some ',' ->
    advance lx;
    COMMA
  | Some '(' ->
    advance lx;
    LPAREN
  | Some ')' ->
    advance lx;
    RPAREN
  | Some '[' ->
    advance lx;
    LBRACKET
  | Some ']' ->
    advance lx;
    RBRACKET
  | Some '{' ->
    advance lx;
    LBRACE
  | Some '}' ->
    advance lx;
    RBRACE
  | Some ':' ->
    advance lx;
    COLON
  | Some '+' ->
    advance lx;
    PLUS
  | Some '-' ->
    if peek2 lx = Some '>' then begin
      advance lx;
      advance lx;
      ARROW
    end
    else begin
      advance lx;
      MINUS
    end
  | Some '*' ->
    advance lx;
    STAR
  | Some '/' ->
    advance lx;
    SLASH
  | Some '^' ->
    advance lx;
    CARET
  | Some '=' ->
    if peek2 lx = Some '=' then begin
      advance lx;
      advance lx;
      EQEQ
    end
    else begin
      advance lx;
      EQUALS
    end
  | Some c when is_digit c || c = '.' -> number lx
  | Some c when is_id_start c -> ID (take_while lx is_id_char)
  | Some c -> error lx "unexpected character %C" c

let string_of_token = function
  | ID s -> s
  | INT n -> string_of_int n
  | REAL f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | SEMI -> ";"
  | COMMA -> ","
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | ARROW -> "->"
  | EQEQ -> "=="
  | EQUALS -> "="
  | COLON -> ":"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | CARET -> "^"
  | EOF -> "<eof>"
