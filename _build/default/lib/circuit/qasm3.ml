(* OpenQASM 3 subset (the paper's Sec. II-B): classical declarations,
   stdgates applications, measurement assignment, [for] loops over integer
   ranges (unrolled while parsing) and [if] conditions over measurement
   bits. This is deliberately the "quantum assembly grown classical
   elements" design point the paper contrasts QIR with. *)

exception Error of int * string

let error line fmt =
  Format.kasprintf (fun msg -> raise (Error (line, msg))) fmt

type state = {
  st : Qasm_expr.P.state;
  mutable qregs : Circuit.register list;
  mutable cregs : Circuit.register list;
  build : Circuit.Build.t;
  mutable loop_env : (string * int) list; (* for-loop variables *)
}

let tok ps = ps.st.Qasm_expr.P.tok
let advance ps = Qasm_expr.P.advance ps.st
let line ps = ps.st.Qasm_expr.P.lx.Qasm_lexer.line
let perror ps fmt = error (line ps) fmt

let expect ps t =
  if tok ps = t then advance ps
  else
    perror ps "expected '%s', found '%s'"
      (Qasm_lexer.string_of_token t)
      (Qasm_lexer.string_of_token (tok ps))

let expect_id ps =
  match tok ps with
  | Qasm_lexer.ID name ->
    advance ps;
    name
  | t -> perror ps "expected identifier, found '%s'" (Qasm_lexer.string_of_token t)

(* An integer index: a literal or a loop variable (possibly +/- literal). *)
let rec parse_index ps =
  match tok ps with
  | Qasm_lexer.INT n ->
    advance ps;
    n
  | Qasm_lexer.MINUS ->
    advance ps;
    -parse_index ps
  | Qasm_lexer.ID v -> (
    advance ps;
    let base =
      match List.assoc_opt v ps.loop_env with
      | Some n -> n
      | None -> perror ps "unknown loop variable %s" v
    in
    match tok ps with
    | Qasm_lexer.PLUS ->
      advance ps;
      base + parse_index ps
    | Qasm_lexer.MINUS ->
      advance ps;
      base - parse_index ps
    | Qasm_lexer.STAR ->
      advance ps;
      base * parse_index ps
    | _ -> base)
  | t -> perror ps "expected index, found '%s'" (Qasm_lexer.string_of_token t)

let find_reg regs name =
  List.find_opt (fun (r : Circuit.register) -> String.equal r.Circuit.rname name) regs

type argument = Whole of string | Indexed of string * int

let parse_argument ps =
  let name = expect_id ps in
  if tok ps = Qasm_lexer.LBRACKET then begin
    advance ps;
    let idx = parse_index ps in
    expect ps Qasm_lexer.RBRACKET;
    Indexed (name, idx)
  end
  else Whole name

let resolve regs ps = function
  | Whole name -> (
    match find_reg regs name with
    | Some r -> List.init r.Circuit.rsize (fun i -> r.Circuit.roffset + i)
    | None -> perror ps "undeclared register %s" name)
  | Indexed (name, i) -> (
    match find_reg regs name with
    | Some r ->
      if i < 0 || i >= r.Circuit.rsize then
        perror ps "index %d out of range for %s[%d]" i name r.Circuit.rsize;
      [ r.Circuit.roffset + i ]
    | None -> perror ps "undeclared register %s" name)

let parse_params ps =
  if tok ps = Qasm_lexer.LPAREN then begin
    advance ps;
    if tok ps = Qasm_lexer.RPAREN then begin
      advance ps;
      []
    end
    else begin
      let rec go acc =
        let e = Qasm_expr.P.parse 0 ps.st in
        let v =
          try
            Qasm_expr.eval
              (List.map (fun (k, n) -> (k, float_of_int n)) ps.loop_env)
              e
          with Qasm_expr.Unbound p -> perror ps "unbound parameter %s" p
        in
        if tok ps = Qasm_lexer.COMMA then begin
          advance ps;
          go (v :: acc)
        end
        else begin
          expect ps Qasm_lexer.RPAREN;
          List.rev (v :: acc)
        end
      in
      go []
    end
  end
  else []

let broadcast ps (operands : int list list) =
  let lengths = List.sort_uniq compare (List.map List.length operands) in
  match lengths with
  | [ 1 ] -> [ List.map List.hd operands ]
  | [ n ] | [ 1; n ] ->
    List.init n (fun i ->
        List.map
          (fun ops ->
            match ops with
            | [ only ] -> only
            | _ -> List.nth ops i)
          operands)
  | _ -> perror ps "mismatched register sizes in broadcast"

let rec parse_statement ps ?cond () =
  match tok ps with
  | Qasm_lexer.ID "include" ->
    advance ps;
    (match tok ps with
    | Qasm_lexer.STRING _ -> advance ps
    | t -> perror ps "expected string, found '%s'" (Qasm_lexer.string_of_token t));
    expect ps Qasm_lexer.SEMI
  | Qasm_lexer.ID "qubit" ->
    advance ps;
    let size =
      if tok ps = Qasm_lexer.LBRACKET then begin
        advance ps;
        let n = parse_index ps in
        expect ps Qasm_lexer.RBRACKET;
        n
      end
      else 1
    in
    let name = expect_id ps in
    expect ps Qasm_lexer.SEMI;
    let offset =
      List.fold_left (fun a (r : Circuit.register) -> a + r.Circuit.rsize) 0 ps.qregs
    in
    ps.qregs <-
      ps.qregs @ [ { Circuit.rname = name; roffset = offset; rsize = size } ];
    if size > 0 then Circuit.Build.touch_qubit ps.build (offset + size - 1)
  | Qasm_lexer.ID "bit" ->
    advance ps;
    let size =
      if tok ps = Qasm_lexer.LBRACKET then begin
        advance ps;
        let n = parse_index ps in
        expect ps Qasm_lexer.RBRACKET;
        n
      end
      else 1
    in
    let name = expect_id ps in
    expect ps Qasm_lexer.SEMI;
    let offset =
      List.fold_left (fun a (r : Circuit.register) -> a + r.Circuit.rsize) 0 ps.cregs
    in
    ps.cregs <-
      ps.cregs @ [ { Circuit.rname = name; roffset = offset; rsize = size } ];
    if size > 0 then Circuit.Build.touch_clbit ps.build (offset + size - 1)
  | Qasm_lexer.ID "reset" ->
    advance ps;
    let a = parse_argument ps in
    expect ps Qasm_lexer.SEMI;
    List.iter (fun q -> Circuit.Build.reset ?cond ps.build q) (resolve ps.qregs ps a)
  | Qasm_lexer.ID "barrier" ->
    advance ps;
    if tok ps = Qasm_lexer.SEMI then begin
      advance ps;
      Circuit.Build.barrier ps.build
        (List.init
           (List.fold_left (fun a (r : Circuit.register) -> a + r.Circuit.rsize) 0 ps.qregs)
           Fun.id)
    end
    else begin
      let rec args acc =
        let a = parse_argument ps in
        if tok ps = Qasm_lexer.COMMA then begin
          advance ps;
          args (a :: acc)
        end
        else begin
          expect ps Qasm_lexer.SEMI;
          List.rev (a :: acc)
        end
      in
      let qs = List.concat_map (resolve ps.qregs ps) (args []) in
      Circuit.Build.barrier ps.build qs
    end
  | Qasm_lexer.ID "for" ->
    advance ps;
    (* for uint[N]? i in [a:b] | [a:s:b] { ... } *)
    (match tok ps with
    | Qasm_lexer.ID ("uint" | "int") ->
      advance ps;
      if tok ps = Qasm_lexer.LBRACKET then begin
        advance ps;
        let _ = parse_index ps in
        expect ps Qasm_lexer.RBRACKET
      end
    | _ -> ());
    let var = expect_id ps in
    (match tok ps with
    | Qasm_lexer.ID "in" -> advance ps
    | t -> perror ps "expected 'in', found '%s'" (Qasm_lexer.string_of_token t));
    expect ps Qasm_lexer.LBRACKET;
    let a = parse_index ps in
    expect ps Qasm_lexer.COLON;
    let b = parse_index ps in
    let step, stop =
      if tok ps = Qasm_lexer.COLON then begin
        advance ps;
        let c = parse_index ps in
        (b, c)
      end
      else (1, b)
    in
    expect ps Qasm_lexer.RBRACKET;
    if step = 0 then perror ps "for-loop step cannot be 0";
    (* capture the body's source span by scanning balanced braces; while
       the current token is '{', the lexer position is just past it *)
    (match tok ps with
    | Qasm_lexer.LBRACE -> ()
    | t -> perror ps "expected '{', found '%s'" (Qasm_lexer.string_of_token t));
    let body_start_pos = ps.st.Qasm_expr.P.lx.Qasm_lexer.pos in
    let body_start_line = line ps in
    advance ps;
    let depth = ref 0 in
    let body_end_pos = ref body_start_pos in
    let rec skip () =
      match tok ps with
      | Qasm_lexer.LBRACE ->
        incr depth;
        body_end_pos := ps.st.Qasm_expr.P.lx.Qasm_lexer.pos;
        advance ps;
        skip ()
      | Qasm_lexer.RBRACE ->
        if !depth = 0 then advance ps
        else begin
          decr depth;
          body_end_pos := ps.st.Qasm_expr.P.lx.Qasm_lexer.pos;
          advance ps;
          skip ()
        end
      | Qasm_lexer.EOF -> perror ps "unterminated for-loop body"
      | _ ->
        body_end_pos := ps.st.Qasm_expr.P.lx.Qasm_lexer.pos;
        advance ps;
        skip ()
    in
    skip ();
    let body_src =
      String.sub ps.st.Qasm_expr.P.lx.Qasm_lexer.src body_start_pos
        (!body_end_pos - body_start_pos)
    in
    (* OpenQASM 3 ranges are inclusive *)
    let values =
      let rec gen i acc =
        if (step > 0 && i > stop) || (step < 0 && i < stop) then List.rev acc
        else gen (i + step) (i :: acc)
      in
      gen a []
    in
    List.iter
      (fun v ->
        let sub_lx = Qasm_lexer.create body_src in
        (* keep line numbers roughly aligned for error messages *)
        sub_lx.Qasm_lexer.line <- body_start_line;
        let sub_st = { Qasm_expr.P.tok = Qasm_lexer.next sub_lx; lx = sub_lx } in
        let sub_ps =
          { ps with st = sub_st; loop_env = (var, v) :: ps.loop_env }
        in
        while tok sub_ps <> Qasm_lexer.EOF do
          parse_statement sub_ps ?cond ()
        done)
      values
  | Qasm_lexer.ID "if" ->
    advance ps;
    expect ps Qasm_lexer.LPAREN;
    let a = parse_argument ps in
    expect ps Qasm_lexer.EQEQ;
    let v = parse_index ps in
    expect ps Qasm_lexer.RPAREN;
    let cbits = resolve ps.cregs ps a in
    let cond' = { Circuit.cbits; value = v } in
    (match cond with
    | Some _ -> perror ps "nested if conditions are not supported"
    | None -> ());
    if tok ps = Qasm_lexer.LBRACE then begin
      advance ps;
      while tok ps <> Qasm_lexer.RBRACE do
        parse_statement ps ~cond:cond' ()
      done;
      advance ps
    end
    else parse_statement ps ~cond:cond' ()
  | Qasm_lexer.ID "measure" ->
    (* expression-statement form: measure q; (result discarded) *)
    perror ps "unassigned measure is not supported; use 'c = measure q;'"
  | Qasm_lexer.ID name -> (
    (* either an assignment 'c = measure q;' / 'c[i] = measure q[j];'
       or a gate application *)
    advance ps;
    let arg0 =
      if tok ps = Qasm_lexer.LBRACKET then begin
        advance ps;
        let idx = parse_index ps in
        expect ps Qasm_lexer.RBRACKET;
        Indexed (name, idx)
      end
      else Whole name
    in
    match tok ps with
    | Qasm_lexer.EQUALS ->
      advance ps;
      (match tok ps with
      | Qasm_lexer.ID "measure" -> advance ps
      | t ->
        perror ps "expected 'measure' after '=', found '%s'"
          (Qasm_lexer.string_of_token t));
      let qarg = parse_argument ps in
      expect ps Qasm_lexer.SEMI;
      let cs = resolve ps.cregs ps arg0 and qs = resolve ps.qregs ps qarg in
      List.iter
        (fun pair ->
          match pair with
          | [ q; c ] -> Circuit.Build.measure ?cond ps.build q c
          | _ -> assert false)
        (broadcast ps [ qs; cs ])
    | _ ->
      (* gate application: name(params)? args ; where arg0 was consumed
         only if it had no parameters — reparse path: if tok is LPAREN we
         mis-read; handle by treating arg0 as plain name *)
      let params =
        match arg0 with
        | Whole _ when tok ps = Qasm_lexer.LPAREN -> parse_params ps
        | _ -> []
      in
      let rec args acc =
        let a = parse_argument ps in
        if tok ps = Qasm_lexer.COMMA then begin
          advance ps;
          args (a :: acc)
        end
        else begin
          expect ps Qasm_lexer.SEMI;
          List.rev (a :: acc)
        end
      in
      let arglist =
        match arg0 with
        | Whole _ -> args []
        | Indexed _ ->
          perror ps "unexpected '[' after gate name %s" name
      in
      let resolved = List.map (resolve ps.qregs ps) arglist in
      List.iter
        (fun qubits ->
          match Qasm2.builtin name params with
          | Some g -> Circuit.Build.gate ?cond ps.build g qubits
          | None -> perror ps "unknown gate %s" name)
        (broadcast ps resolved))
  | t -> perror ps "unexpected '%s'" (Qasm_lexer.string_of_token t)

let parse src : Circuit.t =
  let lx = Qasm_lexer.create src in
  let st = { Qasm_expr.P.tok = Qasm_lexer.next lx; lx } in
  let ps =
    { st; qregs = []; cregs = []; build = Circuit.Build.create (); loop_env = [] }
  in
  (try
     (match tok ps with
     | Qasm_lexer.ID "OPENQASM" ->
       advance ps;
       (match tok ps with
       | Qasm_lexer.INT 3 -> advance ps
       | Qasm_lexer.REAL 3.0 -> advance ps
       | t ->
         perror ps "unsupported OpenQASM version '%s'"
           (Qasm_lexer.string_of_token t));
       expect ps Qasm_lexer.SEMI
     | _ -> perror ps "missing OPENQASM 3 header");
     while tok ps <> Qasm_lexer.EOF do
       parse_statement ps ()
     done
   with Qasm_lexer.Error (l, m) -> error l "%s" m);
  Circuit.Build.finish ~qregs:ps.qregs ~cregs:ps.cregs ps.build

let parse_result src =
  match parse src with
  | c -> Ok c
  | exception Error (l, m) -> Error (Printf.sprintf "line %d: %s" l m)

(* ------------------------------------------------------------------ *)
(* Printer (linear form)                                                *)

let to_string (t : Circuit.t) =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "OPENQASM 3;@\ninclude \"stdgates.inc\";@\n";
  List.iter
    (fun (r : Circuit.register) ->
      Format.fprintf ppf "qubit[%d] %s;@\n" r.rsize r.rname)
    t.qregs;
  List.iter
    (fun (r : Circuit.register) ->
      Format.fprintf ppf "bit[%d] %s;@\n" r.rsize r.rname)
    t.cregs;
  let qref = Qasm2.ref_in t.qregs and cref = Qasm2.ref_in t.cregs in
  List.iter
    (fun (op : Circuit.op) ->
      (match op.cond with
      | Some { cbits = [ c ]; value } ->
        Format.fprintf ppf "if (%s == %d) " (cref c) value
      | Some { cbits; value } -> (
        match Qasm2.creg_covering t.cregs cbits with
        | Some r -> Format.fprintf ppf "if (%s == %d) " r.Circuit.rname value
        | None ->
          invalid_arg "Qasm3.to_string: condition does not cover a register")
      | None -> ());
      match op.kind with
      | Circuit.Gate (g, qs) ->
        let params = Gate.params g in
        let name =
          match g with
          | Gate.P _ -> "p"
          | Gate.U _ -> "u3"
          | Gate.Cp _ -> "cp"
          | Gate.Cu _ -> "cu3"
          | g -> Gate.name g
        in
        if params = [] then
          Format.fprintf ppf "%s %s;@\n" name
            (String.concat ", " (List.map qref qs))
        else
          Format.fprintf ppf "%s(%a) %s;@\n" name
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
               Qasm2.pp_angle)
            params
            (String.concat ", " (List.map qref qs))
      | Circuit.Measure (q, c) ->
        Format.fprintf ppf "%s = measure %s;@\n" (cref c) (qref q)
      | Circuit.Reset q -> Format.fprintf ppf "reset %s;@\n" (qref q)
      | Circuit.Barrier qs ->
        Format.fprintf ppf "barrier %s;@\n"
          (String.concat ", " (List.map qref qs)))
    t.ops;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
