(* The gate set: a closed union covering the common OpenQASM / QIR gate
   vocabulary. Parametric gates carry their angles. *)

type t =
  | I
  | H
  | X
  | Y
  | Z
  | S
  | Sdg
  | T
  | Tdg
  | Sx
  | Sxdg
  | Rx of float
  | Ry of float
  | Rz of float
  | P of float (* phase gate, a.k.a. u1 *)
  | U of float * float * float (* generic single-qubit u3(theta, phi, lambda) *)
  | Cx
  | Cy
  | Cz
  | Ch
  | Swap
  | Crx of float
  | Cry of float
  | Crz of float
  | Cp of float
  | Cu of float * float * float
  | Ccx
  | Cswap

let num_qubits = function
  | I | H | X | Y | Z | S | Sdg | T | Tdg | Sx | Sxdg | Rx _ | Ry _ | Rz _
  | P _ | U _ ->
    1
  | Cx | Cy | Cz | Ch | Swap | Crx _ | Cry _ | Crz _ | Cp _ | Cu _ -> 2
  | Ccx | Cswap -> 3

let params = function
  | Rx t | Ry t | Rz t | P t | Crx t | Cry t | Crz t | Cp t -> [ t ]
  | U (a, b, c) | Cu (a, b, c) -> [ a; b; c ]
  | I | H | X | Y | Z | S | Sdg | T | Tdg | Sx | Sxdg | Cx | Cy | Cz | Ch
  | Swap | Ccx | Cswap ->
    []

(* The adjoint gate. *)
let inverse = function
  | I -> I
  | H -> H
  | X -> X
  | Y -> Y
  | Z -> Z
  | S -> Sdg
  | Sdg -> S
  | T -> Tdg
  | Tdg -> T
  | Sx -> Sxdg
  | Sxdg -> Sx
  | Rx t -> Rx (-.t)
  | Ry t -> Ry (-.t)
  | Rz t -> Rz (-.t)
  | P t -> P (-.t)
  | U (a, b, c) -> U (-.a, -.c, -.b)
  | Cx -> Cx
  | Cy -> Cy
  | Cz -> Cz
  | Ch -> Ch
  | Swap -> Swap
  | Crx t -> Crx (-.t)
  | Cry t -> Cry (-.t)
  | Crz t -> Crz (-.t)
  | Cp t -> Cp (-.t)
  | Cu (a, b, c) -> Cu (-.a, -.c, -.b)
  | Ccx -> Ccx
  | Cswap -> Cswap

let is_self_inverse g =
  match g with
  | I | H | X | Y | Z | Cx | Cy | Cz | Ch | Swap | Ccx | Cswap -> true
  | S | Sdg | T | Tdg | Sx | Sxdg | Rx _ | Ry _ | Rz _ | P _ | U _ | Crx _
  | Cry _ | Crz _ | Cp _ | Cu _ ->
    false

(* Clifford-group membership (for routing to the stabilizer backend). *)
let is_clifford = function
  | I | H | X | Y | Z | S | Sdg | Cx | Cy | Cz | Swap -> true
  | Sx | Sxdg -> true
  | T | Tdg | Rx _ | Ry _ | Rz _ | P _ | U _ | Ch | Crx _ | Cry _ | Crz _
  | Cp _ | Cu _ | Ccx | Cswap ->
    false

(* Merging two adjacent rotations about the same axis. *)
let merge a b =
  match a, b with
  | Rx t1, Rx t2 -> Some (Rx (t1 +. t2))
  | Ry t1, Ry t2 -> Some (Ry (t1 +. t2))
  | Rz t1, Rz t2 -> Some (Rz (t1 +. t2))
  | P t1, P t2 -> Some (P (t1 +. t2))
  | Crx t1, Crx t2 -> Some (Crx (t1 +. t2))
  | Cry t1, Cry t2 -> Some (Cry (t1 +. t2))
  | Crz t1, Crz t2 -> Some (Crz (t1 +. t2))
  | Cp t1, Cp t2 -> Some (Cp (t1 +. t2))
  | S, S -> Some Z
  | T, T -> Some S
  | Sdg, Sdg -> Some Z
  | Tdg, Tdg -> Some Sdg
  | _ -> None

let two_pi = 4.0 *. Float.pi

(* A rotation whose angle is an integer multiple of 4*pi (the period of
   Rx/Ry/Rz as unitaries including global phase for our purposes) is the
   identity; P has period 2*pi. *)
let is_identity ?(eps = 1e-12) g =
  let near_multiple x period =
    let r = Float.rem (Float.abs x) period in
    r < eps || period -. r < eps
  in
  match g with
  | I -> true
  | Rx t | Ry t | Rz t | Crx t | Cry t | Crz t -> near_multiple t two_pi
  | P t | Cp t -> near_multiple t (2.0 *. Float.pi)
  | U (a, b, c) ->
    near_multiple a two_pi && near_multiple (b +. c) (2.0 *. Float.pi)
  | H | X | Y | Z | S | Sdg | T | Tdg | Sx | Sxdg | Cx | Cy | Cz | Ch | Swap
  | Cu _ | Ccx | Cswap ->
    false

(* ------------------------------------------------------------------ *)
(* Matrices                                                             *)

let c re im = { Complex.re; im }
let c0 = Complex.zero
let c1 = Complex.one
let ci = c 0.0 1.0
let cneg1 = c (-1.0) 0.0
let cnegi = c 0.0 (-1.0)
let expi t = c (cos t) (sin t)
let inv_sqrt2 = 1.0 /. sqrt 2.0

(* u3(theta, phi, lambda) in the OpenQASM convention. *)
let u3_matrix theta phi lambda =
  let ct = cos (theta /. 2.0) and st = sin (theta /. 2.0) in
  [|
    [| c ct 0.0; Complex.neg (Complex.mul (expi lambda) (c st 0.0)) |];
    [|
      Complex.mul (expi phi) (c st 0.0);
      Complex.mul (expi (phi +. lambda)) (c ct 0.0);
    |];
  |]

let matrix_1q = function
  | I -> [| [| c1; c0 |]; [| c0; c1 |] |]
  | H ->
    [|
      [| c inv_sqrt2 0.0; c inv_sqrt2 0.0 |];
      [| c inv_sqrt2 0.0; c (-.inv_sqrt2) 0.0 |];
    |]
  | X -> [| [| c0; c1 |]; [| c1; c0 |] |]
  | Y -> [| [| c0; cnegi |]; [| ci; c0 |] |]
  | Z -> [| [| c1; c0 |]; [| c0; cneg1 |] |]
  | S -> [| [| c1; c0 |]; [| c0; ci |] |]
  | Sdg -> [| [| c1; c0 |]; [| c0; cnegi |] |]
  | T -> [| [| c1; c0 |]; [| c0; expi (Float.pi /. 4.0) |] |]
  | Tdg -> [| [| c1; c0 |]; [| c0; expi (-.Float.pi /. 4.0) |] |]
  | Sx ->
    let a = c 0.5 0.5 and b = c 0.5 (-0.5) in
    [| [| a; b |]; [| b; a |] |]
  | Sxdg ->
    let a = c 0.5 (-0.5) and b = c 0.5 0.5 in
    [| [| a; b |]; [| b; a |] |]
  | Rx t ->
    let ct = cos (t /. 2.0) and st = sin (t /. 2.0) in
    [| [| c ct 0.0; c 0.0 (-.st) |]; [| c 0.0 (-.st); c ct 0.0 |] |]
  | Ry t ->
    let ct = cos (t /. 2.0) and st = sin (t /. 2.0) in
    [| [| c ct 0.0; c (-.st) 0.0 |]; [| c st 0.0; c ct 0.0 |] |]
  | Rz t ->
    [| [| expi (-.t /. 2.0); c0 |]; [| c0; expi (t /. 2.0) |] |]
  | P t -> [| [| c1; c0 |]; [| c0; expi t |] |]
  | U (a, b, cc) -> u3_matrix a b cc
  | g ->
    invalid_arg
      (Printf.sprintf "Gate.matrix_1q: %d-qubit gate" (num_qubits g))

(* Two-qubit matrices in the convention that qubit operand 0 (the control
   for controlled gates) indexes the *most significant* bit of the 2-bit
   basis state: basis order |q0 q1> = 00, 01, 10, 11. *)
let controlled u =
  [|
    [| c1; c0; c0; c0 |];
    [| c0; c1; c0; c0 |];
    [| c0; c0; u.(0).(0); u.(0).(1) |];
    [| c0; c0; u.(1).(0); u.(1).(1) |];
  |]

let matrix_2q = function
  | Cx -> controlled (matrix_1q X)
  | Cy -> controlled (matrix_1q Y)
  | Cz -> controlled (matrix_1q Z)
  | Ch -> controlled (matrix_1q H)
  | Crx t -> controlled (matrix_1q (Rx t))
  | Cry t -> controlled (matrix_1q (Ry t))
  | Crz t -> controlled (matrix_1q (Rz t))
  | Cp t -> controlled (matrix_1q (P t))
  | Cu (a, b, cc) -> controlled (u3_matrix a b cc)
  | Swap ->
    [|
      [| c1; c0; c0; c0 |];
      [| c0; c0; c1; c0 |];
      [| c0; c1; c0; c0 |];
      [| c0; c0; c0; c1 |];
    |]
  | g ->
    invalid_arg
      (Printf.sprintf "Gate.matrix_2q: %d-qubit gate" (num_qubits g))

(* ------------------------------------------------------------------ *)
(* Names (OpenQASM spelling)                                            *)

let name = function
  | I -> "id"
  | H -> "h"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | Sx -> "sx"
  | Sxdg -> "sxdg"
  | Rx _ -> "rx"
  | Ry _ -> "ry"
  | Rz _ -> "rz"
  | P _ -> "p"
  | U _ -> "u3"
  | Cx -> "cx"
  | Cy -> "cy"
  | Cz -> "cz"
  | Ch -> "ch"
  | Swap -> "swap"
  | Crx _ -> "crx"
  | Cry _ -> "cry"
  | Crz _ -> "crz"
  | Cp _ -> "cp"
  | Cu _ -> "cu3"
  | Ccx -> "ccx"
  | Cswap -> "cswap"

let equal a b =
  match a, b with
  | Rx x, Rx y | Ry x, Ry y | Rz x, Rz y | P x, P y | Crx x, Crx y
  | Cry x, Cry y | Crz x, Crz y | Cp x, Cp y ->
    Float.equal x y
  | U (a1, b1, c1), U (a2, b2, c2) | Cu (a1, b1, c1), Cu (a2, b2, c2) ->
    Float.equal a1 a2 && Float.equal b1 b2 && Float.equal c1 c2
  | _ -> a = b

let pp ppf g =
  match params g with
  | [] -> Format.pp_print_string ppf (name g)
  | ps ->
    Format.fprintf ppf "%s(%a)" (name g)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf x -> Format.fprintf ppf "%g" x))
      ps

let to_string g = Format.asprintf "%a" pp g
