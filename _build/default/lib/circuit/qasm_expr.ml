(* Parameter expressions in OpenQASM gate arguments: reals, pi, gate
   parameters, arithmetic and the standard unary functions. *)

type t =
  | Num of float
  | Pi
  | Param of string
  | Neg of t
  | Bin of char * t * t (* '+', '-', '*', '/', '^' *)
  | Fn of string * t

exception Unbound of string

let rec eval env = function
  | Num f -> f
  | Pi -> Float.pi
  | Param name -> (
    match List.assoc_opt name env with
    | Some v -> v
    | None -> raise (Unbound name))
  | Neg e -> -.eval env e
  | Bin ('+', a, b) -> eval env a +. eval env b
  | Bin ('-', a, b) -> eval env a -. eval env b
  | Bin ('*', a, b) -> eval env a *. eval env b
  | Bin ('/', a, b) -> eval env a /. eval env b
  | Bin ('^', a, b) -> Float.pow (eval env a) (eval env b)
  | Bin (op, _, _) -> invalid_arg (Printf.sprintf "Qasm_expr: operator %c" op)
  | Fn ("sin", e) -> sin (eval env e)
  | Fn ("cos", e) -> cos (eval env e)
  | Fn ("tan", e) -> tan (eval env e)
  | Fn ("exp", e) -> exp (eval env e)
  | Fn ("ln", e) -> log (eval env e)
  | Fn ("sqrt", e) -> sqrt (eval env e)
  | Fn (f, _) -> invalid_arg ("Qasm_expr: function " ^ f)

(* Pratt-style parser over the shared lexer; the caller supplies current
   token access. [prec 0] entry point. *)
module P = struct
  type state = {
    mutable tok : Qasm_lexer.token;
    lx : Qasm_lexer.t;
  }

  let advance st = st.tok <- Qasm_lexer.next st.lx

  let rec parse_primary st =
    match st.tok with
    | Qasm_lexer.REAL f ->
      advance st;
      Num f
    | Qasm_lexer.INT n ->
      advance st;
      Num (float_of_int n)
    | Qasm_lexer.ID "pi" ->
      advance st;
      Pi
    | Qasm_lexer.ID fn
      when List.mem fn [ "sin"; "cos"; "tan"; "exp"; "ln"; "sqrt" ] ->
      advance st;
      (match st.tok with
      | Qasm_lexer.LPAREN ->
        advance st;
        let e = parse 0 st in
        (match st.tok with
        | Qasm_lexer.RPAREN ->
          advance st;
          Fn (fn, e)
        | _ -> Qasm_lexer.error st.lx "expected ')' after %s(..." fn)
      | _ -> Qasm_lexer.error st.lx "expected '(' after %s" fn)
    | Qasm_lexer.ID name ->
      advance st;
      Param name
    | Qasm_lexer.MINUS ->
      advance st;
      Neg (parse_primary st)
    | Qasm_lexer.PLUS ->
      advance st;
      parse_primary st
    | Qasm_lexer.LPAREN ->
      advance st;
      let e = parse 0 st in
      (match st.tok with
      | Qasm_lexer.RPAREN ->
        advance st;
        e
      | _ -> Qasm_lexer.error st.lx "expected ')'")
    | tok ->
      Qasm_lexer.error st.lx "expected expression, found '%s'"
        (Qasm_lexer.string_of_token tok)

  and parse min_prec st =
    let lhs = parse_primary st in
    let rec loop lhs =
      let op, prec =
        match st.tok with
        | Qasm_lexer.PLUS -> (Some '+', 1)
        | Qasm_lexer.MINUS -> (Some '-', 1)
        | Qasm_lexer.STAR -> (Some '*', 2)
        | Qasm_lexer.SLASH -> (Some '/', 2)
        | Qasm_lexer.CARET -> (Some '^', 3)
        | _ -> (None, 0)
      in
      match op with
      | Some op when prec >= min_prec ->
        advance st;
        (* ^ is right-associative, the rest left *)
        let rhs = parse (if op = '^' then prec else prec + 1) st in
        loop (Bin (op, lhs, rhs))
      | _ -> lhs
    in
    loop lhs
end

let rec pp ppf = function
  | Num f -> Format.fprintf ppf "%g" f
  | Pi -> Format.pp_print_string ppf "pi"
  | Param p -> Format.pp_print_string ppf p
  | Neg e -> Format.fprintf ppf "-(%a)" pp e
  | Bin (op, a, b) -> Format.fprintf ppf "(%a %c %a)" pp a op pp b
  | Fn (f, e) -> Format.fprintf ppf "%s(%a)" f pp e
