(** OpenQASM 3 subset (the paper's Sec. II-B): classical declarations
    ([qubit]/[bit]), stdgates applications, measurement assignment
    ([c = measure q]), [for] loops over integer ranges (unrolled while
    parsing — the circuit IR cannot represent loops) and [if] conditions
    over measurement bits. *)

exception Error of int * string

val parse : string -> Circuit.t
(** Parses the OpenQASM 3 subset. Raises {!Error}. *)

val parse_result : string -> (Circuit.t, string) result

val to_string : Circuit.t -> string
(** Prints a circuit in (linear) OpenQASM 3 form. Single-bit conditions
    are expressible here, unlike in OpenQASM 2. *)
