(** A basic block: a label, straight-line instructions and a single
    terminator. Phi nodes, when present, must lead the block (checked by
    {!Verifier}). *)

type t = { label : string; instrs : Instr.t list; term : Instr.term }

val mk : string -> Instr.t list -> Instr.term -> t
val phis : t -> Instr.t list
val non_phis : t -> Instr.t list
val successors : t -> string list

val defs : t -> string list
(** Result names defined by the block's instructions. *)
