(** An operand is a constant or a reference to a local SSA value.
    [typed] pairs an operand with the type it is used at, mirroring the
    textual form where every use site spells out the type. *)

type t =
  | Const of Constant.t
  | Local of string  (** [%name], without the sigil *)

type typed = { ty : Ty.t; v : t }

val typed : Ty.t -> t -> typed
val const : Ty.t -> Constant.t -> typed
val local : Ty.t -> string -> typed

(** {1 Shorthands} *)

val i64 : int64 -> typed
val i32 : int64 -> typed
val i1 : bool -> typed
val double : float -> typed
val null : typed

val qubit_ptr : int64 -> typed
(** The canonical static address operand: [ptr null] for 0,
    [inttoptr (i64 n to ptr)] otherwise (Ex. 6). *)

val equal : t -> t -> bool
val equal_typed : typed -> typed -> bool
val is_const : typed -> bool

val as_int : typed -> int64 option
(** The integer payload of a constant integer/bool operand. *)

val pp : Format.formatter -> t -> unit
val pp_typed : Format.formatter -> typed -> unit
val to_string : t -> string
