(** Diagnostics shared by the lexer, parser, verifier and interpreter. *)

type location = { line : int; col : int }

exception Parse_error of location * string
exception Verify_error of string
exception Exec_error of string

val parse_error : line:int -> col:int -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val verify_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val exec_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val pp_location : Format.formatter -> location -> unit

val to_string : exn -> string
(** Renders the three exceptions above; falls back to
    [Printexc.to_string]. *)
