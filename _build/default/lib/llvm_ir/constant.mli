(** Constant values. The type of a constant is supplied by the context in
    which it occurs (every LLVM operand use is typed), so constants carry
    only the payload that cannot be recovered from the context type. *)

type t =
  | Int of int64
  | Float of float
  | Bool of bool  (** i1 true/false *)
  | Null  (** ptr null *)
  | Undef
  | Inttoptr of int64
      (** [inttoptr (i64 n to ptr)] — a static qubit/result address *)
  | Global of string  (** [@name] used as a value *)
  | Str of string  (** [c"..."] initializer *)
  | Arr of Ty.t * t list  (** array initializer *)
  | Zeroinit

val equal : t -> t -> bool

val escape_c_string : string -> string
(** LLVM [c"..."] escaping (two-hex-digit escapes). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
