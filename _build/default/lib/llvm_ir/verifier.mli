(** Structural well-formedness checks: unique labels and definitions,
    defined uses, valid branch targets, phi/predecessor agreement, call
    arities against declarations, entry block without predecessors. *)

type violation = { where : string; what : string }

val pp_violation : Format.formatter -> violation -> unit

val check_func : Ir_module.t -> Func.t -> violation list
val check_module : Ir_module.t -> violation list

val verify_exn : Ir_module.t -> unit
(** Raises {!Ir_error.Verify_error} on the first violation. *)
