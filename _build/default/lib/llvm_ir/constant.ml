(* Constant values. The type of a constant is supplied by the context in
   which it occurs (every LLVM operand use is typed), so constants carry
   only the payload that cannot be recovered from the context type. *)

type t =
  | Int of int64 (* integer constant of the context's integer type *)
  | Float of float
  | Bool of bool (* i1 true/false *)
  | Null (* ptr null *)
  | Undef
  | Inttoptr of int64 (* inttoptr (i64 n to ptr) — static qubit address *)
  | Global of string (* @name used as a value *)
  | Str of string (* c"..." initializer *)
  | Arr of Ty.t * t list (* [ty v, ty v, ...] initializer *)
  | Zeroinit

let rec equal a b =
  match a, b with
  | Int x, Int y -> Int64.equal x y
  | Float x, Float y -> Float.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Null, Null | Undef, Undef | Zeroinit, Zeroinit -> true
  | Inttoptr x, Inttoptr y -> Int64.equal x y
  | Global x, Global y | Str x, Str y -> String.equal x y
  | Arr (t, xs), Arr (u, ys) ->
    Ty.equal t u && List.length xs = List.length ys && List.for_all2 equal xs ys
  | ( ( Int _ | Float _ | Bool _ | Null | Undef | Inttoptr _ | Global _
      | Str _ | Arr _ | Zeroinit ),
      _ ) ->
    false

let escape_c_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c >= ' ' && c <= '~' && c <> '"' && c <> '\\' then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "\\%02X" (Char.code c)))
    s;
  Buffer.contents buf

let rec pp ppf = function
  | Int n -> Format.fprintf ppf "%Ld" n
  | Float f ->
    (* print with enough digits to round-trip exactly: %.1f is exact for
       integer-valued doubles below 2^53, %.17g for everything else *)
    if Float.is_integer f && Float.abs f < 9e15 then
      Format.fprintf ppf "%.1f" f
    else Format.fprintf ppf "%.17g" f
  | Bool true -> Format.pp_print_string ppf "true"
  | Bool false -> Format.pp_print_string ppf "false"
  | Null -> Format.pp_print_string ppf "null"
  | Undef -> Format.pp_print_string ppf "undef"
  | Inttoptr n -> Format.fprintf ppf "inttoptr (i64 %Ld to ptr)" n
  | Global g -> Format.fprintf ppf "@%s" g
  | Str s -> Format.fprintf ppf "c\"%s\"" (escape_c_string s)
  | Arr (ty, vs) ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf v -> Format.fprintf ppf "%a %a" Ty.pp ty pp v))
      vs
  | Zeroinit -> Format.pp_print_string ppf "zeroinitializer"

let to_string c = Format.asprintf "%a" pp c
