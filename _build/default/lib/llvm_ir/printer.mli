(** Textual LLVM assembly output (modern opaque-pointer syntax).
    [parse_module (module_to_string m)] reproduces [m] up to formatting:
    print-parse-print is a fixed point (tested). *)

val pp_instr : Format.formatter -> Instr.t -> unit
val pp_term : Format.formatter -> Instr.term -> unit
val pp_block : Format.formatter -> Block.t -> unit
val pp_module : Format.formatter -> Ir_module.t -> unit
val instr_to_string : Instr.t -> string
val term_to_string : Instr.term -> string
val func_to_string : Func.t -> string
val module_to_string : Ir_module.t -> string
