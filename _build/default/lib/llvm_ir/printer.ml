(* Emits the textual LLVM assembly form (modern opaque-pointer syntax). *)

open Format

let pp_operand = Operand.pp
let pp_ty = Ty.pp

let pp_typed_list ppf args =
  pp_print_list
    ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
    Operand.pp_typed ppf args

let pp_instr ppf (i : Instr.t) =
  (match i.id with
  | Some id -> fprintf ppf "%%%s = " id
  | None -> ());
  match i.op with
  | Instr.Binop (b, ty, x, y) ->
    fprintf ppf "%s %a %a, %a" (Instr.string_of_binop b) pp_ty ty pp_operand x
      pp_operand y
  | Instr.Fbinop (b, ty, x, y) ->
    fprintf ppf "%s %a %a, %a" (Instr.string_of_fbinop b) pp_ty ty pp_operand x
      pp_operand y
  | Instr.Icmp (p, ty, x, y) ->
    fprintf ppf "icmp %s %a %a, %a" (Instr.string_of_icmp p) pp_ty ty
      pp_operand x pp_operand y
  | Instr.Fcmp (p, ty, x, y) ->
    fprintf ppf "fcmp %s %a %a, %a" (Instr.string_of_fcmp p) pp_ty ty
      pp_operand x pp_operand y
  | Instr.Alloca ty -> fprintf ppf "alloca %a, align 8" pp_ty ty
  | Instr.Load (ty, p) ->
    fprintf ppf "load %a, ptr %a, align 8" pp_ty ty pp_operand p
  | Instr.Store (v, p) ->
    fprintf ppf "store %a, ptr %a, align 8" Operand.pp_typed v pp_operand p
  | Instr.Gep (ty, base, idxs) ->
    fprintf ppf "getelementptr %a, ptr %a, %a" pp_ty ty pp_operand base
      pp_typed_list idxs
  | Instr.Call (ret, callee, args) ->
    fprintf ppf "call %a @%s(%a)" pp_ty ret callee pp_typed_list args
  | Instr.Select (c, a, b) ->
    fprintf ppf "select i1 %a, %a, %a" pp_operand c Operand.pp_typed a
      Operand.pp_typed b
  | Instr.Cast (c, v, ty) ->
    fprintf ppf "%s %a to %a" (Instr.string_of_cast c) Operand.pp_typed v pp_ty
      ty
  | Instr.Phi (ty, incoming) ->
    fprintf ppf "phi %a %a" pp_ty ty
      (pp_print_list
         ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
         (fun ppf (v, l) -> fprintf ppf "[ %a, %%%s ]" pp_operand v l))
      incoming
  | Instr.Freeze v -> fprintf ppf "freeze %a" Operand.pp_typed v

let pp_term ppf = function
  | Instr.Ret None -> pp_print_string ppf "ret void"
  | Instr.Ret (Some v) -> fprintf ppf "ret %a" Operand.pp_typed v
  | Instr.Br l -> fprintf ppf "br label %%%s" l
  | Instr.Cond_br (c, t, e) ->
    fprintf ppf "br i1 %a, label %%%s, label %%%s" pp_operand c t e
  | Instr.Switch (v, d, cases) ->
    fprintf ppf "switch %a, label %%%s [ %a ]" Operand.pp_typed v d
      (pp_print_list
         ~pp_sep:(fun ppf () -> pp_print_string ppf " ")
         (fun ppf (c, l) ->
           fprintf ppf "%a %a, label %%%s" pp_ty v.Operand.ty Constant.pp c l))
      cases
  | Instr.Unreachable -> pp_print_string ppf "unreachable"

let pp_block ppf (b : Block.t) =
  fprintf ppf "%s:@\n" b.label;
  List.iter (fun i -> fprintf ppf "  %a@\n" pp_instr i) b.instrs;
  fprintf ppf "  %a@\n" pp_term b.term

let pp_param ppf (p : Func.param) =
  fprintf ppf "%a %%%s" pp_ty p.Func.pty p.Func.pname

let pp_attr ppf (k, v) =
  if String.equal v "" then fprintf ppf "%S" k else fprintf ppf "%S=%S" k v

(* Attribute groups: functions with attributes reference #N; the groups are
   printed at the end of the module. [attr_index] assigns group numbers. *)
let attr_groups (m : Ir_module.t) =
  let groups = ref [] in
  let index_of attrs =
    match
      List.find_opt (fun (_, a) -> a = attrs) (List.mapi (fun i (a, _) -> (i, a)) !groups)
    with
    | Some (i, _) -> i
    | None ->
      groups := !groups @ [ (attrs, ()) ];
      List.length !groups - 1
  in
  let assoc =
    List.filter_map
      (fun (f : Func.t) ->
        if f.attrs = [] then None else Some (f.name, index_of f.attrs))
      m.Ir_module.funcs
  in
  (assoc, List.map fst !groups)

let pp_func groups ppf (f : Func.t) =
  let attr_suffix =
    match List.assoc_opt f.name groups with
    | Some i -> Printf.sprintf " #%d" i
    | None -> ""
  in
  if Func.is_declaration f then
    fprintf ppf "declare %a @%s(%a)%s@\n" pp_ty f.ret_ty f.name
      (pp_print_list
         ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
         (fun ppf p -> pp_ty ppf p.Func.pty))
      f.params attr_suffix
  else begin
    fprintf ppf "define %a @%s(%a)%s {@\n" pp_ty f.ret_ty f.name
      (pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf ", ") pp_param)
      f.params attr_suffix;
    (match f.blocks with
    | [] -> ()
    | entry :: rest ->
      (* The entry block's label is implicit in LLVM output when it is the
         default; we always print it for readability. *)
      pp_block ppf entry;
      List.iter (fun b -> fprintf ppf "@\n%a" pp_block b) rest);
    fprintf ppf "}@\n"
  end

let pp_global ppf (g : Ir_module.global) =
  match g.Ir_module.ginit with
  | Some init ->
    fprintf ppf "@%s = %s %a %a@\n" g.gname
      (if g.gconst then "constant" else "global")
      pp_ty g.gty Constant.pp init
  | None -> fprintf ppf "@%s = external global %a@\n" g.gname pp_ty g.gty

let pp_module ppf (m : Ir_module.t) =
  fprintf ppf "; ModuleID = '%s'@\n" m.source_name;
  if m.globals <> [] then begin
    fprintf ppf "@\n";
    List.iter (pp_global ppf) m.globals
  end;
  let groups, group_attrs = attr_groups m in
  List.iter (fun f -> fprintf ppf "@\n%a" (pp_func groups) f) m.funcs;
  List.iteri
    (fun i attrs ->
      fprintf ppf "@\nattributes #%d = { %a }@\n" i
        (pp_print_list
           ~pp_sep:(fun ppf () -> pp_print_string ppf " ")
           pp_attr)
        attrs)
    group_attrs

let instr_to_string i = asprintf "%a" pp_instr i
let term_to_string t = asprintf "%a" pp_term t
let func_to_string f = asprintf "%a" (pp_func []) f
let module_to_string m = asprintf "%a" pp_module m
