(* Recursive-descent parser for the LLVM assembly subset used by QIR.

   The parser accepts both the modern opaque-pointer syntax (which
   {!Printer} emits) and the legacy typed-pointer spelling used by the
   original QIR specification ([%Qubit*], [%Array*], ...): named types
   resolve through a typedef table and every pointer type collapses to
   [Ty.Ptr]. *)

type t = {
  lx : Lexer.t;
  mutable tok : Lexer.token;
  mutable tok2 : Lexer.token; (* one token of lookahead *)
  type_defs : (string, Ty.t) Hashtbl.t;
  attr_groups : (int, (string * string) list) Hashtbl.t;
  mutable group_refs : (string * int) list; (* function -> attribute group *)
}

let error p fmt =
  Ir_error.parse_error ~line:p.lx.Lexer.line ~col:(Lexer.col p.lx) fmt

let advance p =
  p.tok <- p.tok2;
  p.tok2 <- Lexer.next p.lx

let create src =
  let lx = Lexer.create src in
  let tok = Lexer.next lx in
  let tok2 = Lexer.next lx in
  {
    lx;
    tok;
    tok2;
    type_defs = Hashtbl.create 16;
    attr_groups = Hashtbl.create 8;
    group_refs = [];
  }

let expect p tok =
  if p.tok = tok then advance p
  else
    error p "expected '%s', found '%s'" (Lexer.string_of_token tok)
      (Lexer.string_of_token p.tok)

let expect_word p w =
  match p.tok with
  | Lexer.WORD s when String.equal s w -> advance p
  | _ ->
    error p "expected '%s', found '%s'" w (Lexer.string_of_token p.tok)

let eat_word p w =
  match p.tok with
  | Lexer.WORD s when String.equal s w ->
    advance p;
    true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Attribute-like noise words that may be skipped wherever they occur.  *)

let linkage_words =
  [ "private"; "internal"; "external"; "linkonce"; "weak"; "common";
    "appending"; "extern_weak"; "linkonce_odr"; "weak_odr"; "dso_local";
    "dso_preemptable"; "hidden"; "protected"; "default"; "local_unnamed_addr";
    "unnamed_addr" ]

let param_attr_words =
  [ "writeonly"; "readonly"; "readnone"; "nocapture"; "noundef"; "immarg";
    "nonnull"; "noalias"; "signext"; "zeroext"; "inreg"; "returned";
    "dereferenceable"; "align"; "captures" ]

let fn_attr_words =
  [ "nounwind"; "willreturn"; "norecurse"; "nosync"; "nofree"; "mustprogress";
    "alwaysinline"; "noinline"; "optnone"; "memory"; "speculatable"; "cold";
    "hot"; "uwtable" ]

let flag_words =
  [ "nuw"; "nsw"; "exact"; "inbounds"; "disjoint"; "volatile"; "fast"; "nnan";
    "ninf"; "nsz"; "arcp"; "contract"; "afn"; "reassoc"; "nneg"; "samesign" ]

let rec skip_balanced_parens p =
  match p.tok with
  | Lexer.LPAREN ->
    advance p;
    let rec go depth =
      match p.tok with
      | Lexer.LPAREN ->
        advance p;
        go (depth + 1)
      | Lexer.RPAREN ->
        advance p;
        if depth > 0 then go (depth - 1)
      | Lexer.EOF -> error p "unbalanced parentheses"
      | _ ->
        advance p;
        go depth
    in
    go 0;
    skip_balanced_parens p
  | _ -> ()

let rec skip_words p words =
  match p.tok with
  | Lexer.WORD w when List.mem w words ->
    advance p;
    (* [align 8], [dereferenceable(16)], [memory(none)] carry an argument *)
    (match p.tok with
    | Lexer.INT _ when String.equal w "align" -> advance p
    | Lexer.LPAREN -> skip_balanced_parens p
    | _ -> ());
    skip_words p words
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Types                                                                *)

let resolve_named_type p name =
  match Hashtbl.find_opt p.type_defs name with
  | Some ty -> ty
  | None -> Ty.Struct [] (* forward reference to an opaque named type *)

let rec parse_ty p =
  let base =
    match p.tok with
    | Lexer.WORD "void" ->
      advance p;
      Ty.Void
    | Lexer.WORD "i1" ->
      advance p;
      Ty.I1
    | Lexer.WORD "i8" ->
      advance p;
      Ty.I8
    | Lexer.WORD "i16" ->
      advance p;
      Ty.I16
    | Lexer.WORD "i32" ->
      advance p;
      Ty.I32
    | Lexer.WORD "i64" ->
      advance p;
      Ty.I64
    | Lexer.WORD ("double" | "float") ->
      advance p;
      Ty.Double
    | Lexer.WORD "ptr" ->
      advance p;
      Ty.Ptr
    | Lexer.WORD "label" ->
      advance p;
      Ty.Label
    | Lexer.LOCAL name ->
      advance p;
      resolve_named_type p name
    | Lexer.LBRACKET ->
      advance p;
      let n =
        match p.tok with
        | Lexer.INT n ->
          advance p;
          Int64.to_int n
        | _ -> error p "expected array length"
      in
      expect_word p "x";
      let elt = parse_ty p in
      expect p Lexer.RBRACKET;
      Ty.Array (n, elt)
    | Lexer.LBRACE ->
      advance p;
      let rec fields acc =
        if p.tok = Lexer.RBRACE then begin
          advance p;
          List.rev acc
        end
        else begin
          let f = parse_ty p in
          if p.tok = Lexer.COMMA then advance p;
          fields (f :: acc)
        end
      in
      Ty.Struct (fields [])
    | _ -> error p "expected type, found '%s'" (Lexer.string_of_token p.tok)
  in
  parse_ty_suffix p base

and parse_ty_suffix p base =
  match p.tok with
  | Lexer.STAR ->
    advance p;
    parse_ty_suffix p Ty.Ptr (* every pointer collapses to opaque ptr *)
  | Lexer.LPAREN ->
    (* function type: ret (args) — only in declarations of fn pointers *)
    advance p;
    let rec args acc vararg =
      match p.tok with
      | Lexer.RPAREN ->
        advance p;
        (List.rev acc, vararg)
      | Lexer.ELLIPSIS ->
        advance p;
        args acc true
      | _ ->
        let a = parse_ty p in
        if p.tok = Lexer.COMMA then advance p;
        args (a :: acc) vararg
    in
    let params, vararg = args [] false in
    parse_ty_suffix p (Ty.Func (base, params, vararg))
  | _ -> base

(* ------------------------------------------------------------------ *)
(* Constants and operands                                               *)

let rec parse_const p ty =
  match p.tok with
  | Lexer.INT n ->
    advance p;
    if Ty.equal ty Ty.I1 then Constant.Bool (not (Int64.equal n 0L))
    else if Ty.equal ty Ty.Double then Constant.Float (Int64.to_float n)
    else Constant.Int n
  | Lexer.FLOAT f ->
    advance p;
    Constant.Float f
  | Lexer.WORD "true" ->
    advance p;
    Constant.Bool true
  | Lexer.WORD "false" ->
    advance p;
    Constant.Bool false
  | Lexer.WORD "null" ->
    advance p;
    Constant.Null
  | Lexer.WORD ("undef" | "poison") ->
    advance p;
    Constant.Undef
  | Lexer.WORD "zeroinitializer" ->
    advance p;
    Constant.Zeroinit
  | Lexer.GLOBAL g ->
    advance p;
    Constant.Global g
  | Lexer.CSTRING s ->
    advance p;
    Constant.Str s
  | Lexer.WORD "inttoptr" ->
    advance p;
    expect p Lexer.LPAREN;
    let _ = parse_ty p in
    let n =
      match p.tok with
      | Lexer.INT n ->
        advance p;
        n
      | _ -> error p "expected integer in inttoptr constant"
    in
    expect_word p "to";
    let _ = parse_ty p in
    expect p Lexer.RPAREN;
    Constant.Inttoptr n
  | Lexer.WORD "getelementptr" ->
    (* constant GEP, e.g. string addressing: reduce to its base global *)
    advance p;
    let _ = eat_word p "inbounds" in
    expect p Lexer.LPAREN;
    let _ = parse_ty p in
    expect p Lexer.COMMA;
    let base_ty = parse_ty p in
    let base = parse_const p base_ty in
    let rec rest () =
      if p.tok = Lexer.COMMA then begin
        advance p;
        let ity = parse_ty p in
        let _ = parse_const p ity in
        rest ()
      end
    in
    rest ();
    expect p Lexer.RPAREN;
    base
  | Lexer.LBRACKET ->
    advance p;
    let rec elems acc elt_ty =
      if p.tok = Lexer.RBRACKET then begin
        advance p;
        (List.rev acc, elt_ty)
      end
      else begin
        let ety = parse_ty p in
        let c = parse_const p ety in
        if p.tok = Lexer.COMMA then advance p;
        elems (c :: acc) ety
      end
    in
    let elems, elt_ty = elems [] Ty.I8 in
    Constant.Arr (elt_ty, elems)
  | _ ->
    error p "expected constant of type %s, found '%s'" (Ty.to_string ty)
      (Lexer.string_of_token p.tok)

let parse_operand p ty =
  match p.tok with
  | Lexer.LOCAL name ->
    advance p;
    Operand.Local name
  | _ -> Operand.Const (parse_const p ty)

let parse_typed_operand p =
  let ty = parse_ty p in
  skip_words p param_attr_words;
  let v = parse_operand p ty in
  Operand.typed ty v

(* ------------------------------------------------------------------ *)
(* Metadata                                                             *)

(* [, !dbg !7] attachments after an instruction. *)
let rec skip_metadata_attachments p =
  match p.tok, p.tok2 with
  | Lexer.COMMA, Lexer.META _ ->
    advance p;
    advance p;
    (match p.tok with
    | Lexer.META _ -> advance p
    | _ -> ());
    skip_metadata_attachments p
  | _ -> ()

let rec skip_alignment p =
  match p.tok, p.tok2 with
  | Lexer.COMMA, Lexer.WORD "align" ->
    advance p;
    advance p;
    (match p.tok with
    | Lexer.INT _ -> advance p
    | _ -> error p "expected alignment value");
    skip_alignment p
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Instructions                                                         *)

let binop_of_word = function
  | "add" -> Some Instr.Add
  | "sub" -> Some Instr.Sub
  | "mul" -> Some Instr.Mul
  | "sdiv" -> Some Instr.Sdiv
  | "udiv" -> Some Instr.Udiv
  | "srem" -> Some Instr.Srem
  | "urem" -> Some Instr.Urem
  | "and" -> Some Instr.And
  | "or" -> Some Instr.Or
  | "xor" -> Some Instr.Xor
  | "shl" -> Some Instr.Shl
  | "lshr" -> Some Instr.Lshr
  | "ashr" -> Some Instr.Ashr
  | _ -> None

let fbinop_of_word = function
  | "fadd" -> Some Instr.Fadd
  | "fsub" -> Some Instr.Fsub
  | "fmul" -> Some Instr.Fmul
  | "fdiv" -> Some Instr.Fdiv
  | "frem" -> Some Instr.Frem
  | _ -> None

let icmp_of_word p = function
  | "eq" -> Instr.Ieq
  | "ne" -> Instr.Ine
  | "slt" -> Instr.Islt
  | "sle" -> Instr.Isle
  | "sgt" -> Instr.Isgt
  | "sge" -> Instr.Isge
  | "ult" -> Instr.Iult
  | "ule" -> Instr.Iule
  | "ugt" -> Instr.Iugt
  | "uge" -> Instr.Iuge
  | w -> error p "unknown icmp predicate '%s'" w

let fcmp_of_word p = function
  | "oeq" -> Instr.Foeq
  | "one" -> Instr.Fone
  | "olt" -> Instr.Folt
  | "ole" -> Instr.Fole
  | "ogt" -> Instr.Fogt
  | "oge" -> Instr.Foge
  | "ord" -> Instr.Ford
  | "uno" -> Instr.Funo
  | w -> error p "unknown fcmp predicate '%s'" w

let cast_of_word = function
  | "zext" -> Some Instr.Zext
  | "sext" -> Some Instr.Sext
  | "trunc" -> Some Instr.Trunc
  | "bitcast" -> Some Instr.Bitcast
  | "inttoptr" -> Some Instr.Inttoptr
  | "ptrtoint" -> Some Instr.Ptrtoint
  | "sitofp" -> Some Instr.Sitofp
  | "fptosi" -> Some Instr.Fptosi
  | _ -> None

let parse_call_args p =
  expect p Lexer.LPAREN;
  let rec args acc =
    if p.tok = Lexer.RPAREN then begin
      advance p;
      List.rev acc
    end
    else begin
      let a = parse_typed_operand p in
      if p.tok = Lexer.COMMA then advance p;
      args (a :: acc)
    end
  in
  args []

(* Parses the opcode and operands of one non-terminator instruction. *)
let parse_op p word =
  match binop_of_word word with
  | Some b ->
    skip_words p flag_words;
    let ty = parse_ty p in
    let x = parse_operand p ty in
    expect p Lexer.COMMA;
    let y = parse_operand p ty in
    Instr.Binop (b, ty, x, y)
  | None ->
  match fbinop_of_word word with
  | Some b ->
    skip_words p flag_words;
    let ty = parse_ty p in
    let x = parse_operand p ty in
    expect p Lexer.COMMA;
    let y = parse_operand p ty in
    Instr.Fbinop (b, ty, x, y)
  | None ->
  match cast_of_word word with
  | Some c ->
    skip_words p flag_words;
    let src = parse_typed_operand p in
    expect_word p "to";
    let ty = parse_ty p in
    Instr.Cast (c, src, ty)
  | None ->
  match word with
  | "icmp" ->
    skip_words p flag_words;
    let pred =
      match p.tok with
      | Lexer.WORD w ->
        advance p;
        icmp_of_word p w
      | _ -> error p "expected icmp predicate"
    in
    let ty = parse_ty p in
    let x = parse_operand p ty in
    expect p Lexer.COMMA;
    let y = parse_operand p ty in
    Instr.Icmp (pred, ty, x, y)
  | "fcmp" ->
    skip_words p flag_words;
    let pred =
      match p.tok with
      | Lexer.WORD w ->
        advance p;
        fcmp_of_word p w
      | _ -> error p "expected fcmp predicate"
    in
    let ty = parse_ty p in
    let x = parse_operand p ty in
    expect p Lexer.COMMA;
    let y = parse_operand p ty in
    Instr.Fcmp (pred, ty, x, y)
  | "alloca" ->
    let ty = parse_ty p in
    let ty = ref ty in
    let rec suffix () =
      match p.tok, p.tok2 with
      | Lexer.COMMA, Lexer.WORD "align" ->
        advance p;
        advance p;
        (match p.tok with
        | Lexer.INT _ -> advance p
        | _ -> error p "expected alignment");
        suffix ()
      | Lexer.COMMA, _ ->
        advance p;
        let cty = parse_ty p in
        (match parse_operand p cty with
        | Operand.Const (Constant.Int n) -> ty := Ty.Array (Int64.to_int n, !ty)
        | _ -> error p "alloca with a non-constant element count");
        suffix ()
      | _ -> ()
    in
    suffix ();
    Instr.Alloca !ty
  | "load" ->
    skip_words p flag_words;
    let ty = parse_ty p in
    expect p Lexer.COMMA;
    let pty = parse_ty p in
    if not (Ty.equal pty Ty.Ptr) then error p "load expects a pointer operand";
    let ptr = parse_operand p Ty.Ptr in
    skip_alignment p;
    Instr.Load (ty, ptr)
  | "store" ->
    skip_words p flag_words;
    let v = parse_typed_operand p in
    expect p Lexer.COMMA;
    let pty = parse_ty p in
    if not (Ty.equal pty Ty.Ptr) then error p "store expects a pointer operand";
    skip_words p param_attr_words;
    let ptr = parse_operand p Ty.Ptr in
    skip_alignment p;
    Instr.Store (v, ptr)
  | "getelementptr" ->
    skip_words p flag_words;
    let ty = parse_ty p in
    expect p Lexer.COMMA;
    let pty = parse_ty p in
    if not (Ty.equal pty Ty.Ptr) then
      error p "getelementptr expects a pointer operand";
    let base = parse_operand p Ty.Ptr in
    let rec idxs acc =
      if p.tok = Lexer.COMMA then begin
        advance p;
        let i = parse_typed_operand p in
        idxs (i :: acc)
      end
      else List.rev acc
    in
    Instr.Gep (ty, base, idxs [])
  | "call" ->
    skip_words p flag_words;
    let ret_ty = parse_ty p in
    (* A function-typed callee spelling like [void (ptr)* @f] collapses to
       ptr; the return type we keep is the one parsed first. *)
    let ret_ty =
      match ret_ty with
      | Ty.Func (r, _, _) -> r
      | t -> t
    in
    (match p.tok with
    | Lexer.GLOBAL callee ->
      advance p;
      let args = parse_call_args p in
      skip_words p fn_attr_words;
      (match p.tok with
      | Lexer.ATTR_REF _ -> advance p
      | _ -> ());
      Instr.Call (ret_ty, callee, args)
    | _ -> error p "indirect calls are not supported")
  | "select" ->
    let cty = parse_ty p in
    if not (Ty.equal cty Ty.I1) then error p "select expects an i1 condition";
    let c = parse_operand p Ty.I1 in
    expect p Lexer.COMMA;
    let a = parse_typed_operand p in
    expect p Lexer.COMMA;
    let b = parse_typed_operand p in
    Instr.Select (c, a, b)
  | "phi" ->
    skip_words p flag_words;
    let ty = parse_ty p in
    let rec incoming acc =
      expect p Lexer.LBRACKET;
      let v = parse_operand p ty in
      expect p Lexer.COMMA;
      let l =
        match p.tok with
        | Lexer.LOCAL l ->
          advance p;
          l
        | _ -> error p "expected predecessor label in phi"
      in
      expect p Lexer.RBRACKET;
      let acc = (v, l) :: acc in
      if p.tok = Lexer.COMMA && p.tok2 = Lexer.LBRACKET then begin
        advance p;
        incoming acc
      end
      else List.rev acc
    in
    Instr.Phi (ty, incoming [])
  | "freeze" -> Instr.Freeze (parse_typed_operand p)
  | w -> error p "unknown instruction '%s'" w

let parse_label_operand p =
  expect_word p "label";
  match p.tok with
  | Lexer.LOCAL l ->
    advance p;
    l
  | _ -> error p "expected label"

let parse_term p word =
  match word with
  | "ret" ->
    if eat_word p "void" then Instr.Ret None
    else begin
      let v = parse_typed_operand p in
      Instr.Ret (Some v)
    end
  | "br" -> (
    match p.tok with
    | Lexer.WORD "label" -> Instr.Br (parse_label_operand p)
    | _ ->
      let cty = parse_ty p in
      if not (Ty.equal cty Ty.I1) then error p "br expects an i1 condition";
      let c = parse_operand p Ty.I1 in
      expect p Lexer.COMMA;
      let t = parse_label_operand p in
      expect p Lexer.COMMA;
      let e = parse_label_operand p in
      Instr.Cond_br (c, t, e))
  | "switch" ->
    let v = parse_typed_operand p in
    expect p Lexer.COMMA;
    let d = parse_label_operand p in
    expect p Lexer.LBRACKET;
    let rec cases acc =
      if p.tok = Lexer.RBRACKET then begin
        advance p;
        List.rev acc
      end
      else begin
        let cty = parse_ty p in
        let c = parse_const p cty in
        expect p Lexer.COMMA;
        let l = parse_label_operand p in
        cases ((c, l) :: acc)
      end
    in
    Instr.Switch (v, d, cases [])
  | "unreachable" -> Instr.Unreachable
  | _ -> error p "expected terminator, found '%s'" word

let is_terminator_word = function
  | "ret" | "br" | "switch" | "unreachable" -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Function bodies                                                      *)

type partial_block = {
  mutable plabel : string;
  mutable pinstrs : Instr.t list; (* reversed *)
}

let parse_body p =
  let blocks = ref [] in
  let current = ref None in
  let block_counter = ref 0 in
  let start_block label =
    current := Some { plabel = label; pinstrs = [] }
  in
  let ensure_block () =
    match !current with
    | Some b -> b
    | None ->
      let label =
        if !block_counter = 0 && !blocks = [] then "entry"
        else Printf.sprintf "anon.%d" !block_counter
      in
      incr block_counter;
      start_block label;
      Option.get !current
  in
  let finish_block term =
    let b = ensure_block () in
    blocks := Block.mk b.plabel (List.rev b.pinstrs) term :: !blocks;
    current := None
  in
  let rec go () =
    match p.tok, p.tok2 with
    | Lexer.RBRACE, _ ->
      advance p;
      (match !current with
      | Some b ->
        error p "block %%%s has no terminator" b.plabel
      | None -> ());
      List.rev !blocks
    | Lexer.WORD w, Lexer.COLON ->
      (* label definition *)
      if !current <> None then
        error p "label '%s' begins before previous block is terminated" w;
      advance p;
      advance p;
      start_block w;
      go ()
    | Lexer.INT n, Lexer.COLON ->
      if !current <> None then
        error p "label '%Ld' begins before previous block is terminated" n;
      advance p;
      advance p;
      start_block (Int64.to_string n);
      go ()
    | Lexer.LOCAL id, Lexer.EQUALS ->
      advance p;
      advance p;
      let word =
        match p.tok with
        | Lexer.WORD w ->
          advance p;
          w
        | _ -> error p "expected instruction opcode"
      in
      let op = parse_op p word in
      skip_metadata_attachments p;
      let b = ensure_block () in
      b.pinstrs <- Instr.mk ~id op :: b.pinstrs;
      go ()
    | Lexer.WORD w, _ when is_terminator_word w ->
      advance p;
      let term = parse_term p w in
      skip_metadata_attachments p;
      finish_block term;
      go ()
    | Lexer.WORD ("tail" | "musttail" | "notail"), _ ->
      advance p;
      go ()
    | Lexer.WORD w, _ ->
      advance p;
      let op = parse_op p w in
      skip_metadata_attachments p;
      let b = ensure_block () in
      b.pinstrs <- Instr.mk op :: b.pinstrs;
      go ()
    | tok, _ ->
      error p "unexpected token '%s' in function body"
        (Lexer.string_of_token tok)
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Top level                                                            *)

let parse_fn_attrs p =
  (* inline quoted attributes and trailing attribute-group references on a
     declare/define line; returns (attrs, group refs) *)
  let attrs = ref [] in
  let refs = ref [] in
  let rec go () =
    match p.tok with
    | Lexer.ATTR_REF n ->
      advance p;
      refs := n :: !refs;
      go ()
    | Lexer.STRING k ->
      advance p;
      if p.tok = Lexer.EQUALS then begin
        advance p;
        match p.tok with
        | Lexer.STRING v ->
          advance p;
          attrs := (k, v) :: !attrs;
          go ()
        | _ -> error p "expected attribute value"
      end
      else begin
        attrs := (k, "") :: !attrs;
        go ()
      end
    | Lexer.WORD w when List.mem w fn_attr_words ->
      advance p;
      (match p.tok with
      | Lexer.LPAREN -> skip_balanced_parens p
      | _ -> ());
      go ()
    | _ -> ()
  in
  go ();
  (List.rev !attrs, List.rev !refs)

let parse_params p ~with_names =
  expect p Lexer.LPAREN;
  let counter = ref 0 in
  let rec go acc =
    match p.tok with
    | Lexer.RPAREN ->
      advance p;
      List.rev acc
    | Lexer.ELLIPSIS ->
      advance p;
      expect p Lexer.RPAREN;
      List.rev acc
    | _ ->
      let pty = parse_ty p in
      skip_words p param_attr_words;
      let pname =
        match p.tok with
        | Lexer.LOCAL name ->
          advance p;
          name
        | _ ->
          if with_names then error p "expected parameter name"
          else begin
            incr counter;
            Printf.sprintf "arg%d" (!counter - 1)
          end
      in
      if p.tok = Lexer.COMMA then advance p;
      go ({ Func.pty; pname } :: acc)
  in
  go []

let parse_function p ~is_define =
  skip_words p linkage_words;
  let ret_ty = parse_ty p in
  let name =
    match p.tok with
    | Lexer.GLOBAL g ->
      advance p;
      g
    | _ -> error p "expected function name"
  in
  let params = parse_params p ~with_names:false in
  let attrs, refs = parse_fn_attrs p in
  List.iter (fun n -> p.group_refs <- (name, n) :: p.group_refs) refs;
  if is_define then begin
    expect p Lexer.LBRACE;
    let blocks = parse_body p in
    Func.mk ~attrs name ret_ty params blocks
  end
  else Func.mk ~attrs name ret_ty params []

let parse_attr_group p =
  let n =
    match p.tok with
    | Lexer.ATTR_REF n ->
      advance p;
      n
    | _ -> error p "expected attribute group reference"
  in
  expect p Lexer.EQUALS;
  expect p Lexer.LBRACE;
  let attrs = ref [] in
  let rec go () =
    match p.tok with
    | Lexer.RBRACE -> advance p
    | Lexer.STRING k ->
      advance p;
      if p.tok = Lexer.EQUALS then begin
        advance p;
        match p.tok with
        | Lexer.STRING v ->
          advance p;
          attrs := (k, v) :: !attrs;
          go ()
        | Lexer.INT v ->
          advance p;
          attrs := (k, Int64.to_string v) :: !attrs;
          go ()
        | _ -> error p "expected attribute value"
      end
      else begin
        attrs := (k, "") :: !attrs;
        go ()
      end
    | Lexer.WORD w ->
      advance p;
      (match p.tok with
      | Lexer.LPAREN -> skip_balanced_parens p
      | Lexer.EQUALS ->
        advance p;
        advance p
      | _ -> ());
      attrs := (w, "") :: !attrs;
      go ()
    | _ -> error p "unexpected token in attribute group"
  in
  go ();
  Hashtbl.replace p.attr_groups n (List.rev !attrs)

let skip_metadata_def p =
  (* !name = [distinct] !{ ... } or !name = !"..." *)
  expect p Lexer.EQUALS;
  let _ = eat_word p "distinct" in
  match p.tok with
  | Lexer.META _ -> (
    advance p;
    match p.tok with
    | Lexer.LBRACE ->
      advance p;
      let rec go depth =
        match p.tok with
        | Lexer.LBRACE ->
          advance p;
          go (depth + 1)
        | Lexer.RBRACE ->
          advance p;
          if depth > 0 then go (depth - 1)
        | Lexer.EOF -> error p "unterminated metadata definition"
        | _ ->
          advance p;
          go depth
      in
      go 0
    | Lexer.STRING _ -> advance p
    | _ -> ())
  | Lexer.STRING _ -> advance p
  | Lexer.INT _ -> advance p
  | _ -> error p "unexpected metadata definition"

let parse_global_def p name =
  expect p Lexer.EQUALS;
  skip_words p linkage_words;
  if eat_word p "external" then begin
    let _ = eat_word p "global" || eat_word p "constant" in
    let gty = parse_ty p in
    skip_alignment p;
    { Ir_module.gname = name; gty; ginit = None; gconst = false }
  end
  else begin
    let gconst =
      if eat_word p "constant" then true
      else begin
        expect_word p "global";
        false
      end
    in
    let gty = parse_ty p in
    let init = parse_const p gty in
    skip_alignment p;
    { Ir_module.gname = name; gty; ginit = Some init; gconst }
  end

let parse_module ?(source_name = "parsed") src =
  let p = create src in
  let funcs = ref [] in
  let globals = ref [] in
  let rec go () =
    match p.tok with
    | Lexer.EOF -> ()
    | Lexer.WORD "source_filename" ->
      advance p;
      expect p Lexer.EQUALS;
      (match p.tok with
      | Lexer.STRING _ -> advance p
      | _ -> error p "expected string after source_filename");
      go ()
    | Lexer.WORD "target" ->
      advance p;
      (match p.tok with
      | Lexer.WORD ("datalayout" | "triple") -> advance p
      | _ -> error p "expected datalayout or triple");
      expect p Lexer.EQUALS;
      (match p.tok with
      | Lexer.STRING _ -> advance p
      | _ -> error p "expected string after target directive");
      go ()
    | Lexer.WORD "declare" ->
      advance p;
      funcs := parse_function p ~is_define:false :: !funcs;
      go ()
    | Lexer.WORD "define" ->
      advance p;
      funcs := parse_function p ~is_define:true :: !funcs;
      go ()
    | Lexer.WORD "attributes" ->
      advance p;
      parse_attr_group p;
      go ()
    | Lexer.LOCAL name ->
      advance p;
      expect p Lexer.EQUALS;
      expect_word p "type";
      let ty = if eat_word p "opaque" then Ty.Struct [] else parse_ty p in
      Hashtbl.replace p.type_defs name ty;
      go ()
    | Lexer.GLOBAL name ->
      advance p;
      globals := parse_global_def p name :: !globals;
      go ()
    | Lexer.META _ ->
      advance p;
      skip_metadata_def p;
      go ()
    | tok ->
      error p "unexpected token '%s' at top level" (Lexer.string_of_token tok)
  in
  go ();
  (* Resolve attribute-group references into per-function attributes. *)
  let funcs =
    List.rev_map
      (fun (f : Func.t) ->
        let extra =
          List.concat_map
            (fun (fname, n) ->
              if String.equal fname f.Func.name then
                Option.value ~default:[] (Hashtbl.find_opt p.attr_groups n)
              else [])
            p.group_refs
        in
        { f with Func.attrs = f.Func.attrs @ extra })
      !funcs
  in
  Ir_module.mk ~source_name ~globals:(List.rev !globals) funcs

let parse_module_exn = parse_module

let parse_module_result ?source_name src =
  match parse_module ?source_name src with
  | m -> Ok m
  | exception Ir_error.Parse_error (loc, msg) ->
    Error (Format.asprintf "%a: %s" Ir_error.pp_location loc msg)
