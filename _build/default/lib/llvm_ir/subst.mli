(** Substitution of SSA values — replace uses of named locals by operands
    throughout blocks or functions; the workhorse behind constant
    propagation, mem2reg renaming and the inliner. *)

module SMap : Map.S with type key = string

val operand : Operand.t SMap.t -> Operand.t -> Operand.t
val instr : Operand.t SMap.t -> Instr.t -> Instr.t
val term : Operand.t SMap.t -> Instr.term -> Instr.term
val block : Operand.t SMap.t -> Block.t -> Block.t
val func : Operand.t SMap.t -> Func.t -> Func.t
val of_list : (string * Operand.t) list -> Operand.t SMap.t

val rename_phi_labels : (string -> string) -> Block.t -> Block.t
(** Rewrites the incoming-edge labels of the block's phi nodes. *)

val rename_labels : (string -> string) -> Block.t -> Block.t
(** Renames the block's own label, its terminator targets and its phi
    incoming labels. *)
