(** LLVM IR types (the subset used by QIR programs).

    Pointers are opaque ([Ptr]), following modern LLVM syntax (the paper's
    footnote 1): pointee types are carried by the instructions that need
    them ([load], [getelementptr], ...), not by the pointer type itself. *)

type t =
  | Void
  | I1
  | I8
  | I16
  | I32
  | I64
  | Double
  | Ptr  (** opaque pointer *)
  | Array of int * t
  | Struct of t list
  | Func of t * t list * bool
      (** return type, parameter types, is-vararg *)
  | Label

val equal : t -> t -> bool

val is_integer : t -> bool
(** [is_integer t] holds for [I1], [I8], [I16], [I32] and [I64]. *)

val bit_width : t -> int
(** Bit width of an integer type. Raises [Invalid_argument] otherwise. *)

val size_in_cells : t -> int
(** Abstract size used by the interpreter's memory model: every scalar
    (integer, double, pointer) occupies one 8-byte cell; aggregates are the
    sum of their fields. See {!Interp} for the memory model. *)

val pp : Format.formatter -> t -> unit
(** Prints the type in LLVM assembly syntax, e.g. [i64], [[4 x double]]. *)

val to_string : t -> string
