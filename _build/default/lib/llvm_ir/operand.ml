(* An operand is either a constant or a reference to a local SSA value.
   [typed] pairs an operand with the type it is used at, mirroring the
   LLVM textual form where every use site spells out the type. *)

type t =
  | Const of Constant.t
  | Local of string (* %name, without the sigil *)

type typed = { ty : Ty.t; v : t }

let typed ty v = { ty; v }
let const ty c = { ty; v = Const c }
let local ty name = { ty; v = Local name }
let i64 n = const Ty.I64 (Constant.Int n)
let i32 n = const Ty.I32 (Constant.Int n)
let i1 b = const Ty.I1 (Constant.Bool b)
let double f = const Ty.Double (Constant.Float f)
let null = const Ty.Ptr Constant.Null
let qubit_ptr id = if id = 0L then null else const Ty.Ptr (Constant.Inttoptr id)

let equal a b =
  match a, b with
  | Const x, Const y -> Constant.equal x y
  | Local x, Local y -> String.equal x y
  | (Const _ | Local _), _ -> false

let equal_typed a b = Ty.equal a.ty b.ty && equal a.v b.v

let is_const { v; _ } =
  match v with
  | Const _ -> true
  | Local _ -> false

let as_int { v; _ } =
  match v with
  | Const (Constant.Int n) -> Some n
  | Const (Constant.Bool b) -> Some (if b then 1L else 0L)
  | Const
      ( Constant.Float _ | Constant.Null | Constant.Undef | Constant.Inttoptr _
      | Constant.Global _ | Constant.Str _ | Constant.Arr _
      | Constant.Zeroinit )
  | Local _ ->
    None

let pp ppf = function
  | Const c -> Constant.pp ppf c
  | Local name -> Format.fprintf ppf "%%%s" name

let pp_typed ppf { ty; v } = Format.fprintf ppf "%a %a" Ty.pp ty pp v
let to_string o = Format.asprintf "%a" pp o
