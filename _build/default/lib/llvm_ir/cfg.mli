(** Control-flow-graph view of a function: successor/predecessor maps and
    a reverse-postorder traversal — the substrate for dominators and loop
    analysis. *)

module SMap : Map.S with type key = string
module SSet : Set.S with type elt = string

type t = {
  entry : string;
  blocks : Block.t SMap.t;
  succs : string list SMap.t;
  preds : string list SMap.t;
  rpo : string list;  (** reverse postorder over reachable blocks *)
}

val of_func : Func.t -> t

val block : t -> string -> Block.t
(** Raises [Not_found]. *)

val successors : t -> string -> string list
val predecessors : t -> string -> string list
val is_reachable : t -> string -> bool
val reachable : t -> string list
val unreachable_blocks : Func.t -> string list
