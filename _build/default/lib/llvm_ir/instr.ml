(* Instructions and terminators of the LLVM IR subset. *)

type binop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | Udiv
  | Srem
  | Urem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr

type fbinop = Fadd | Fsub | Fmul | Fdiv | Frem

type icmp =
  | Ieq
  | Ine
  | Islt
  | Isle
  | Isgt
  | Isge
  | Iult
  | Iule
  | Iugt
  | Iuge

type fcmp = Foeq | Fone | Folt | Fole | Fogt | Foge | Ford | Funo
type cast = Zext | Sext | Trunc | Bitcast | Inttoptr | Ptrtoint | Sitofp | Fptosi

type op =
  | Binop of binop * Ty.t * Operand.t * Operand.t
  | Fbinop of fbinop * Ty.t * Operand.t * Operand.t
  | Icmp of icmp * Ty.t * Operand.t * Operand.t
  | Fcmp of fcmp * Ty.t * Operand.t * Operand.t
  | Alloca of Ty.t (* allocated type; result has type ptr *)
  | Load of Ty.t * Operand.t (* loaded type, pointer *)
  | Store of Operand.typed * Operand.t (* stored value, pointer *)
  | Gep of Ty.t * Operand.t * Operand.typed list
      (* source element type, base pointer, indices *)
  | Call of Ty.t * string * Operand.typed list
      (* return type, callee (@name), arguments *)
  | Select of Operand.t * Operand.typed * Operand.typed (* i1 cond, t, f *)
  | Cast of cast * Operand.typed * Ty.t (* op, source value, target type *)
  | Phi of Ty.t * (Operand.t * string) list (* incoming (value, pred label) *)
  | Freeze of Operand.typed

type t = { id : string option; op : op }
(** An instruction, optionally naming its result ([%id = ...]). *)

type term =
  | Ret of Operand.typed option
  | Br of string
  | Cond_br of Operand.t * string * string (* i1 cond, then, else *)
  | Switch of Operand.typed * string * (Constant.t * string) list
  | Unreachable

let mk ?id op = { id; op }

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)

let binop_is_division = function
  | Sdiv | Udiv | Srem | Urem -> true
  | Add | Sub | Mul | And | Or | Xor | Shl | Lshr | Ashr -> false

(* An instruction with no side effect may be removed if its result is
   unused. Calls are conservatively effectful (the interpreter's external
   table may bind them to quantum operations). *)
let has_side_effect = function
  | Store _ | Call _ -> true
  | Binop (b, _, _, _) -> binop_is_division b (* may trap on zero *)
  | Fbinop _ | Icmp _ | Fcmp _ | Alloca _ | Load _ | Gep _ | Select _ | Cast _
  | Phi _ | Freeze _ ->
    false

(* ------------------------------------------------------------------ *)
(* Result types                                                        *)

let result_ty = function
  | Binop (_, ty, _, _) | Fbinop (_, ty, _, _) -> Some ty
  | Icmp _ | Fcmp _ -> Some Ty.I1
  | Alloca _ | Gep _ -> Some Ty.Ptr
  | Load (ty, _) -> Some ty
  | Store _ -> None
  | Call (Ty.Void, _, _) -> None
  | Call (ty, _, _) -> Some ty
  | Select (_, a, _) -> Some a.Operand.ty
  | Cast (_, _, ty) -> Some ty
  | Phi (ty, _) -> Some ty
  | Freeze v -> Some v.Operand.ty

(* ------------------------------------------------------------------ *)
(* Operand traversal                                                   *)

let operands op =
  match op with
  | Binop (_, ty, a, b) | Fbinop (_, ty, a, b) | Icmp (_, ty, a, b)
  | Fcmp (_, ty, a, b) ->
    [ Operand.typed ty a; Operand.typed ty b ]
  | Alloca _ -> []
  | Load (_, p) -> [ Operand.typed Ty.Ptr p ]
  | Store (v, p) -> [ v; Operand.typed Ty.Ptr p ]
  | Gep (_, base, idxs) -> Operand.typed Ty.Ptr base :: idxs
  | Call (_, _, args) -> args
  | Select (c, a, b) -> [ Operand.typed Ty.I1 c; a; b ]
  | Cast (_, v, _) -> [ v ]
  | Phi (ty, incoming) ->
    List.map (fun (v, _) -> Operand.typed ty v) incoming
  | Freeze v -> [ v ]

let term_operands = function
  | Ret (Some v) -> [ v ]
  | Ret None | Br _ | Unreachable -> []
  | Cond_br (c, _, _) -> [ Operand.typed Ty.I1 c ]
  | Switch (v, _, _) -> [ v ]

(* [map_operands f op] rebuilds [op] with every operand [v] replaced by
   [f v]; used by substitution and renaming utilities. *)
let map_operands f op =
  match op with
  | Binop (b, ty, x, y) -> Binop (b, ty, f x, f y)
  | Fbinop (b, ty, x, y) -> Fbinop (b, ty, f x, f y)
  | Icmp (p, ty, x, y) -> Icmp (p, ty, f x, f y)
  | Fcmp (p, ty, x, y) -> Fcmp (p, ty, f x, f y)
  | Alloca ty -> Alloca ty
  | Load (ty, p) -> Load (ty, f p)
  | Store (v, p) -> Store ({ v with Operand.v = f v.Operand.v }, f p)
  | Gep (ty, base, idxs) ->
    Gep
      ( ty,
        f base,
        List.map (fun i -> { i with Operand.v = f i.Operand.v }) idxs )
  | Call (ty, callee, args) ->
    Call
      (ty, callee, List.map (fun a -> { a with Operand.v = f a.Operand.v }) args)
  | Select (c, a, b) ->
    Select (f c, { a with Operand.v = f a.Operand.v },
            { b with Operand.v = f b.Operand.v })
  | Cast (c, v, ty) -> Cast (c, { v with Operand.v = f v.Operand.v }, ty)
  | Phi (ty, incoming) -> Phi (ty, List.map (fun (v, l) -> (f v, l)) incoming)
  | Freeze v -> Freeze { v with Operand.v = f v.Operand.v }

let map_term_operands f = function
  | Ret (Some v) -> Ret (Some { v with Operand.v = f v.Operand.v })
  | Ret None -> Ret None
  | Br l -> Br l
  | Cond_br (c, t, e) -> Cond_br (f c, t, e)
  | Switch (v, d, cases) ->
    Switch ({ v with Operand.v = f v.Operand.v }, d, cases)
  | Unreachable -> Unreachable

let successors = function
  | Ret _ | Unreachable -> []
  | Br l -> [ l ]
  | Cond_br (_, t, e) -> if String.equal t e then [ t ] else [ t; e ]
  | Switch (_, d, cases) ->
    let labels = d :: List.map snd cases in
    List.sort_uniq String.compare labels

(* ------------------------------------------------------------------ *)
(* Printing helpers (full syntax lives in Printer)                     *)

let string_of_binop = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Sdiv -> "sdiv"
  | Udiv -> "udiv"
  | Srem -> "srem"
  | Urem -> "urem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Ashr -> "ashr"

let string_of_fbinop = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Frem -> "frem"

let string_of_icmp = function
  | Ieq -> "eq"
  | Ine -> "ne"
  | Islt -> "slt"
  | Isle -> "sle"
  | Isgt -> "sgt"
  | Isge -> "sge"
  | Iult -> "ult"
  | Iule -> "ule"
  | Iugt -> "ugt"
  | Iuge -> "uge"

let string_of_fcmp = function
  | Foeq -> "oeq"
  | Fone -> "one"
  | Folt -> "olt"
  | Fole -> "ole"
  | Fogt -> "ogt"
  | Foge -> "oge"
  | Ford -> "ord"
  | Funo -> "uno"

let string_of_cast = function
  | Zext -> "zext"
  | Sext -> "sext"
  | Trunc -> "trunc"
  | Bitcast -> "bitcast"
  | Inttoptr -> "inttoptr"
  | Ptrtoint -> "ptrtoint"
  | Sitofp -> "sitofp"
  | Fptosi -> "fptosi"
