(* Substitution of SSA values: replace uses of named locals by operands
   throughout a function or a set of blocks. The workhorse behind constant
   propagation, mem2reg renaming and the inliner. *)

module SMap = Map.Make (String)

let operand map (v : Operand.t) =
  match v with
  | Operand.Local name -> (
    match SMap.find_opt name map with
    | Some replacement -> replacement
    | None -> v)
  | Operand.Const _ -> v

let instr map (i : Instr.t) =
  { i with Instr.op = Instr.map_operands (operand map) i.Instr.op }

let term map t = Instr.map_term_operands (operand map) t

let block map (b : Block.t) =
  {
    b with
    Block.instrs = List.map (instr map) b.Block.instrs;
    Block.term = term map b.Block.term;
  }

let func map (f : Func.t) =
  if SMap.is_empty map then f
  else Func.replace_blocks f (List.map (block map) f.Func.blocks)

let of_list bindings =
  List.fold_left (fun acc (k, v) -> SMap.add k v acc) SMap.empty bindings

(* Rewrites phi-incoming labels: [rename old new] applied to every block.
   Used when blocks are merged or cloned. *)
let rename_phi_labels rename (b : Block.t) =
  let fix (i : Instr.t) =
    match i.Instr.op with
    | Instr.Phi (ty, incoming) ->
      { i with Instr.op = Instr.Phi (ty, List.map (fun (v, l) -> (v, rename l)) incoming) }
    | _ -> i
  in
  { b with Block.instrs = List.map fix b.Block.instrs }

let rename_labels rename (b : Block.t) =
  let term =
    match b.Block.term with
    | Instr.Ret _ as t -> t
    | Instr.Br l -> Instr.Br (rename l)
    | Instr.Cond_br (c, t, e) -> Instr.Cond_br (c, rename t, rename e)
    | Instr.Switch (v, d, cases) ->
      Instr.Switch (v, rename d, List.map (fun (c, l) -> (c, rename l)) cases)
    | Instr.Unreachable -> Instr.Unreachable
  in
  let b = rename_phi_labels rename b in
  { b with Block.term; Block.label = rename b.Block.label }
