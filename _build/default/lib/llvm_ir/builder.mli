(** Imperative construction of functions, in the style of LLVM's
    IRBuilder: the builder owns a function under construction and an
    insertion point (the current block). *)

type t

val create :
  ?attrs:(string * string) list ->
  name:string ->
  ret_ty:Ty.t ->
  params:(Ty.t * string) list ->
  unit ->
  t
(** Starts in a block labeled ["entry"]. *)

val fresh : t -> string
(** A fresh numeric value name. *)

val fresh_label : t -> string -> string

val insert : t -> Instr.op -> unit
(** Appends a result-less instruction. *)

val insert_value : t -> Instr.op -> Operand.typed
(** Appends an instruction, naming and returning its result. Raises
    [Invalid_argument] when the instruction produces none. *)

val terminate : t -> Instr.term -> unit
(** Closes the current block. *)

val start_block : t -> string -> unit
(** Opens a new current block with the given label. *)

(** {1 Convenience wrappers} *)

val alloca : t -> Ty.t -> Operand.typed
val load : t -> Ty.t -> Operand.typed -> Operand.typed
val store : t -> Operand.typed -> Operand.typed -> unit

val call : t -> Ty.t -> string -> Operand.typed list -> Operand.typed option
(** [None] for void calls. *)

val binop : t -> Instr.binop -> Ty.t -> Operand.typed -> Operand.typed -> Operand.typed
val icmp : t -> Instr.icmp -> Ty.t -> Operand.typed -> Operand.typed -> Operand.typed
val phi : t -> Ty.t -> (Operand.typed * string) list -> Operand.typed
val ret : t -> Operand.typed option -> unit
val br : t -> string -> unit
val cond_br : t -> Operand.typed -> string -> string -> unit

val finish : t -> Func.t
(** Raises [Invalid_argument] when the current block is unterminated or
    the builder was already finished. *)
