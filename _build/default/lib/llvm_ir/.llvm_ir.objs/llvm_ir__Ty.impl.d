lib/llvm_ir/ty.ml: Format List
