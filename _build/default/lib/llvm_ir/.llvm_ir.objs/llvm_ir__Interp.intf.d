lib/llvm_ir/interp.mli: Format Ir_module Ty
