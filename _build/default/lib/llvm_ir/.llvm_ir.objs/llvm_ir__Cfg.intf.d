lib/llvm_ir/cfg.mli: Block Func Map Set
