lib/llvm_ir/func.mli: Block Instr Ty
