lib/llvm_ir/printer.ml: Block Constant Format Func Instr Ir_module List Operand Printf String Ty
