lib/llvm_ir/func.ml: Block Hashtbl Instr List Printf String Ty
