lib/llvm_ir/builder.ml: Block Func Instr List Operand Printf Ty
