lib/llvm_ir/lexer.ml: Buffer Char Int64 Ir_error Printf String
