lib/llvm_ir/parser.mli: Ir_module
