lib/llvm_ir/ty.mli: Format
