lib/llvm_ir/printer.mli: Block Format Func Instr Ir_module
