lib/llvm_ir/operand.mli: Constant Format Ty
