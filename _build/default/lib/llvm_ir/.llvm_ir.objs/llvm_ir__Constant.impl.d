lib/llvm_ir/constant.ml: Bool Buffer Char Float Format Int64 List Printf String Ty
