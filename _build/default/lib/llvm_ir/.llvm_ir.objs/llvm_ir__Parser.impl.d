lib/llvm_ir/parser.ml: Block Constant Format Func Hashtbl Instr Int64 Ir_error Ir_module Lexer List Operand Option Printf String Ty
