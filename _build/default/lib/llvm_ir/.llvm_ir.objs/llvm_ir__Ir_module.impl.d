lib/llvm_ir/ir_module.ml: Constant Func List Printf String Ty
