lib/llvm_ir/interp.ml: Block Char Constant Float Format Func Hashtbl Instr Int64 Ir_error Ir_module List Operand Option String Ty
