lib/llvm_ir/instr.mli: Constant Operand Ty
