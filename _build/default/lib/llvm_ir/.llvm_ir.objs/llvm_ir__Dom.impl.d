lib/llvm_ir/dom.ml: Array Cfg Hashtbl List Map Option String
