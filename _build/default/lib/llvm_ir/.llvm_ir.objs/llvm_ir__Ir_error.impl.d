lib/llvm_ir/ir_error.ml: Format Printexc
