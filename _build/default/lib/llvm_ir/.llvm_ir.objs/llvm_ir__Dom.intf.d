lib/llvm_ir/dom.mli: Cfg
