lib/llvm_ir/builder.mli: Func Instr Operand Ty
