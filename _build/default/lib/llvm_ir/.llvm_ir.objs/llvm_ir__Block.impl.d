lib/llvm_ir/block.ml: Instr List
