lib/llvm_ir/subst.mli: Block Func Instr Map Operand
