lib/llvm_ir/cfg.ml: Block Func Hashtbl List Map Set String
