lib/llvm_ir/verifier.ml: Block Cfg Constant Format Func Hashtbl Instr Ir_error Ir_module List Map Operand Printf Set String
