lib/llvm_ir/verifier.mli: Format Func Ir_module
