lib/llvm_ir/subst.ml: Block Func Instr List Map Operand String
