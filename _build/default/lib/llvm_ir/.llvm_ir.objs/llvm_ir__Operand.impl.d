lib/llvm_ir/operand.ml: Constant Format String Ty
