lib/llvm_ir/ir_module.mli: Constant Func Ty
