lib/llvm_ir/block.mli: Instr
