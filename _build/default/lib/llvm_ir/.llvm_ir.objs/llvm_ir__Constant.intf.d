lib/llvm_ir/constant.mli: Format Ty
