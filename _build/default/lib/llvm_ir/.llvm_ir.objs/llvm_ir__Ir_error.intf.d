lib/llvm_ir/ir_error.mli: Format
