lib/llvm_ir/instr.ml: Constant List Operand String Ty
