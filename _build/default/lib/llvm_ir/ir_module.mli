(** A translation unit: global variables and functions. *)

type global = {
  gname : string;
  gty : Ty.t;
  ginit : Constant.t option;  (** [None] for external globals *)
  gconst : bool;
}

type t = {
  source_name : string;
  globals : global list;
  funcs : Func.t list;
}

val mk : ?source_name:string -> ?globals:global list -> Func.t list -> t
val find_func : t -> string -> Func.t option
val find_func_exn : t -> string -> Func.t
val find_global : t -> string -> global option
val defined_funcs : t -> Func.t list
val declarations : t -> Func.t list

val replace_func : t -> Func.t -> t
(** Replaces the function with the same name, or appends it. *)

val map_funcs : t -> (Func.t -> Func.t) -> t

val entry_point : t -> Func.t option
(** The function carrying the ["entry_point"] attribute, else [@main]. *)

val size : t -> int
