(* Control-flow graph view of a function: successor/predecessor maps and a
   reverse-postorder traversal, the substrate for dominators and loop
   analysis. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = {
  entry : string;
  blocks : Block.t SMap.t;
  succs : string list SMap.t;
  preds : string list SMap.t;
  rpo : string list; (* reverse postorder over reachable blocks *)
}

let of_func (f : Func.t) =
  let blocks =
    List.fold_left
      (fun acc (b : Block.t) -> SMap.add b.label b acc)
      SMap.empty f.blocks
  in
  let entry = (Func.entry f).Block.label in
  let succs =
    SMap.map (fun (b : Block.t) -> Block.successors b) blocks
  in
  let preds =
    SMap.fold
      (fun label ss acc ->
        List.fold_left
          (fun acc s ->
            SMap.update s
              (function
                | Some ps -> Some (label :: ps)
                | None -> Some [ label ])
              acc)
          acc ss)
      succs
      (SMap.map (fun _ -> []) blocks)
  in
  (* depth-first postorder from the entry *)
  let visited = Hashtbl.create 16 in
  let post = ref [] in
  let rec dfs label =
    if not (Hashtbl.mem visited label) then begin
      Hashtbl.replace visited label ();
      List.iter dfs (try SMap.find label succs with Not_found -> []);
      post := label :: !post
    end
  in
  dfs entry;
  { entry; blocks; succs; preds; rpo = !post }

let block cfg label = SMap.find label cfg.blocks
let successors cfg label = try SMap.find label cfg.succs with Not_found -> []
let predecessors cfg label = try SMap.find label cfg.preds with Not_found -> []
let is_reachable cfg label = List.mem label cfg.rpo
let reachable cfg = cfg.rpo

(* Blocks of [f] unreachable from the entry. *)
let unreachable_blocks (f : Func.t) =
  let cfg = of_func f in
  List.filter_map
    (fun (b : Block.t) ->
      if is_reachable cfg b.label then None else Some b.label)
    f.blocks
