(** Instructions and terminators of the LLVM IR subset. *)

type binop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | Udiv
  | Srem
  | Urem
  | And
  | Or
  | Xor
  | Shl
  | Lshr
  | Ashr

type fbinop = Fadd | Fsub | Fmul | Fdiv | Frem

type icmp =
  | Ieq
  | Ine
  | Islt
  | Isle
  | Isgt
  | Isge
  | Iult
  | Iule
  | Iugt
  | Iuge

type fcmp = Foeq | Fone | Folt | Fole | Fogt | Foge | Ford | Funo

type cast =
  | Zext
  | Sext
  | Trunc
  | Bitcast
  | Inttoptr
  | Ptrtoint
  | Sitofp
  | Fptosi

type op =
  | Binop of binop * Ty.t * Operand.t * Operand.t
  | Fbinop of fbinop * Ty.t * Operand.t * Operand.t
  | Icmp of icmp * Ty.t * Operand.t * Operand.t
  | Fcmp of fcmp * Ty.t * Operand.t * Operand.t
  | Alloca of Ty.t  (** allocated type; the result has type ptr *)
  | Load of Ty.t * Operand.t  (** loaded type, pointer *)
  | Store of Operand.typed * Operand.t  (** stored value, pointer *)
  | Gep of Ty.t * Operand.t * Operand.typed list
      (** source element type, base pointer, indices *)
  | Call of Ty.t * string * Operand.typed list
      (** return type, callee name (without [@]), arguments *)
  | Select of Operand.t * Operand.typed * Operand.typed
  | Cast of cast * Operand.typed * Ty.t  (** op, source, target type *)
  | Phi of Ty.t * (Operand.t * string) list
      (** incoming (value, predecessor label) pairs *)
  | Freeze of Operand.typed

type t = { id : string option; op : op }
(** An instruction, optionally naming its result ([%id = ...]). *)

type term =
  | Ret of Operand.typed option
  | Br of string
  | Cond_br of Operand.t * string * string  (** i1 cond, then, else *)
  | Switch of Operand.typed * string * (Constant.t * string) list
  | Unreachable

val mk : ?id:string -> op -> t

val binop_is_division : binop -> bool

val has_side_effect : op -> bool
(** May the instruction be removed when its result is unused? Calls are
    conservatively effectful (they may be quantum operations). *)

val result_ty : op -> Ty.t option
(** The type of the produced value, or [None] (store, void call). *)

val operands : op -> Operand.typed list
val term_operands : term -> Operand.typed list

val map_operands : (Operand.t -> Operand.t) -> op -> op
(** Rebuilds the instruction with every operand transformed — the
    workhorse of substitution and renaming. *)

val map_term_operands : (Operand.t -> Operand.t) -> term -> term

val successors : term -> string list
(** Distinct successor labels. *)

(** {1 Mnemonic spellings} *)

val string_of_binop : binop -> string
val string_of_fbinop : fbinop -> string
val string_of_icmp : icmp -> string
val string_of_fcmp : fcmp -> string
val string_of_cast : cast -> string
