(* A translation unit: global variables and functions. *)

type global = {
  gname : string;
  gty : Ty.t;
  ginit : Constant.t option; (* None for external globals *)
  gconst : bool;
}

type t = {
  source_name : string;
  globals : global list;
  funcs : Func.t list;
}

let mk ?(source_name = "module") ?(globals = []) funcs =
  { source_name; globals; funcs }

let find_func m name =
  List.find_opt (fun f -> String.equal f.Func.name name) m.funcs

let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Ir_module.find_func: no @%s" name)

let find_global m name =
  List.find_opt (fun g -> String.equal g.gname name) m.globals

let defined_funcs m = List.filter (fun f -> not (Func.is_declaration f)) m.funcs
let declarations m = List.filter Func.is_declaration m.funcs

let replace_func m f =
  let replaced = ref false in
  let funcs =
    List.map
      (fun g ->
        if String.equal g.Func.name f.Func.name then begin
          replaced := true;
          f
        end
        else g)
      m.funcs
  in
  if !replaced then { m with funcs } else { m with funcs = m.funcs @ [ f ] }

let map_funcs m fn = { m with funcs = List.map fn m.funcs }

(* The QIR entry point: the function carrying the "entry_point" attribute,
   falling back to @main. *)
let entry_point m =
  match List.find_opt (fun f -> Func.has_attr f "entry_point") m.funcs with
  | Some f -> Some f
  | None -> find_func m "main"

let size m = List.fold_left (fun acc f -> acc + Func.size f) 0 m.funcs
