(** Recursive-descent parser for the LLVM assembly subset QIR programs
    use.

    Accepts both the modern opaque-pointer syntax (which {!Printer}
    emits; the paper's footnote 1) and the legacy typed-pointer spelling
    of the original QIR specification ([%Qubit*], [%Array*], ...): named
    types resolve through a typedef table and every pointer type
    collapses to [Ty.Ptr]. Attribute groups ([attributes #0 = {...}]) and
    inline quoted attributes both land in [Func.attrs]; metadata is
    skipped. *)

val parse_module : ?source_name:string -> string -> Ir_module.t
(** Raises {!Ir_error.Parse_error} with a source location. *)

val parse_module_exn : ?source_name:string -> string -> Ir_module.t

val parse_module_result :
  ?source_name:string -> string -> (Ir_module.t, string) result
