(* Hand-written lexer for the LLVM assembly subset. Comments (';' to end
   of line) are dropped. Identifier syntax follows LLVM: the sigils '@'
   (global), '%' (local) and '!' (metadata) prefix names; bare words are
   keywords or label definitions. *)

type token =
  | GLOBAL of string (* @name *)
  | LOCAL of string (* %name *)
  | META of string (* !name or !0 *)
  | ATTR_REF of int (* #0 *)
  | WORD of string (* keyword / bare identifier *)
  | INT of int64
  | FLOAT of float
  | STRING of string (* "..." *)
  | CSTRING of string (* c"..." *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | EQUALS
  | STAR
  | COLON
  | ELLIPSIS
  | EOF

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

let create src = { src; pos = 0; line = 1; bol = 0 }
let col lx = lx.pos - lx.bol + 1

let error lx fmt = Ir_error.parse_error ~line:lx.line ~col:(col lx) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-' || c = '$'

let is_digit c = c >= '0' && c <= '9'

let peek_char lx =
  if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
    lx.line <- lx.line + 1;
    lx.bol <- lx.pos + 1
  | Some _ | None -> ());
  lx.pos <- lx.pos + 1

let rec skip_trivia lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_trivia lx
  | Some ';' ->
    let rec to_eol () =
      match peek_char lx with
      | Some '\n' | None -> ()
      | Some _ ->
        advance lx;
        to_eol ()
    in
    to_eol ();
    skip_trivia lx
  | Some _ | None -> ()

let take_while lx pred =
  let start = lx.pos in
  let rec go () =
    match peek_char lx with
    | Some c when pred c ->
      advance lx;
      go ()
    | Some _ | None -> ()
  in
  go ();
  String.sub lx.src start (lx.pos - start)

(* A quoted string; supports LLVM's \xx two-hex-digit escapes and \\. *)
let quoted_string lx =
  advance lx (* opening quote *);
  let buf = Buffer.create 16 in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> error lx "invalid hex digit %C in string escape" c
  in
  let rec go () =
    match peek_char lx with
    | None -> error lx "unterminated string literal"
    | Some '"' ->
      advance lx;
      Buffer.contents buf
    | Some '\\' ->
      advance lx;
      (match peek_char lx with
      | Some '\\' ->
        advance lx;
        Buffer.add_char buf '\\';
        go ()
      | Some c1 ->
        advance lx;
        (match peek_char lx with
        | Some c2 ->
          advance lx;
          Buffer.add_char buf (Char.chr ((hex c1 * 16) + hex c2));
          go ()
        | None -> error lx "unterminated string escape")
      | None -> error lx "unterminated string escape")
    | Some c ->
      advance lx;
      Buffer.add_char buf c;
      go ()
  in
  go ()

(* Name after a sigil: quoted or bare. *)
let sigil_name lx =
  match peek_char lx with
  | Some '"' -> quoted_string lx
  | Some _ -> take_while lx is_ident_char
  | None -> error lx "expected name after sigil"

let number lx =
  let start = lx.pos in
  if peek_char lx = Some '-' then advance lx;
  if peek_char lx = Some '0' && lx.pos + 1 < String.length lx.src
     && (lx.src.[lx.pos + 1] = 'x' || lx.src.[lx.pos + 1] = 'X')
  then begin
    (* Hexadecimal: LLVM uses 0x... for the raw IEEE-754 bits of floats. *)
    advance lx;
    advance lx;
    let digits =
      take_while lx (fun c ->
          is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'))
    in
    let bits = Int64.of_string ("0x" ^ digits) in
    FLOAT (Int64.float_of_bits bits)
  end
  else begin
    let _ = take_while lx is_digit in
    let is_float = ref false in
    if peek_char lx = Some '.' then begin
      is_float := true;
      advance lx;
      let _ = take_while lx is_digit in
      ()
    end;
    (match peek_char lx with
    | Some ('e' | 'E') ->
      is_float := true;
      advance lx;
      (match peek_char lx with
      | Some ('+' | '-') -> advance lx
      | Some _ | None -> ());
      let _ = take_while lx is_digit in
      ()
    | Some _ | None -> ());
    let text = String.sub lx.src start (lx.pos - start) in
    if !is_float then FLOAT (float_of_string text)
    else INT (Int64.of_string text)
  end

let next lx =
  skip_trivia lx;
  match peek_char lx with
  | None -> EOF
  | Some '@' ->
    advance lx;
    GLOBAL (sigil_name lx)
  | Some '%' ->
    advance lx;
    LOCAL (sigil_name lx)
  | Some '!' ->
    advance lx;
    META (take_while lx is_ident_char)
  | Some '#' ->
    advance lx;
    let digits = take_while lx is_digit in
    if String.equal digits "" then error lx "expected attribute group number"
    else ATTR_REF (int_of_string digits)
  | Some '"' -> STRING (quoted_string lx)
  | Some '(' ->
    advance lx;
    LPAREN
  | Some ')' ->
    advance lx;
    RPAREN
  | Some '{' ->
    advance lx;
    LBRACE
  | Some '}' ->
    advance lx;
    RBRACE
  | Some '[' ->
    advance lx;
    LBRACKET
  | Some ']' ->
    advance lx;
    RBRACKET
  | Some ',' ->
    advance lx;
    COMMA
  | Some '=' ->
    advance lx;
    EQUALS
  | Some '*' ->
    advance lx;
    STAR
  | Some ':' ->
    advance lx;
    COLON
  | Some '.' ->
    if lx.pos + 2 < String.length lx.src
       && lx.src.[lx.pos + 1] = '.'
       && lx.src.[lx.pos + 2] = '.'
    then begin
      advance lx;
      advance lx;
      advance lx;
      ELLIPSIS
    end
    else error lx "unexpected '.'"
  | Some c when is_digit c || c = '-' -> number lx
  | Some 'c' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '"'
    ->
    advance lx;
    CSTRING (quoted_string lx)
  | Some c when is_ident_char c ->
    let word = take_while lx is_ident_char in
    WORD word
  | Some c -> error lx "unexpected character %C" c

let string_of_token = function
  | GLOBAL s -> "@" ^ s
  | LOCAL s -> "%" ^ s
  | META s -> "!" ^ s
  | ATTR_REF n -> "#" ^ string_of_int n
  | WORD s -> s
  | INT n -> Int64.to_string n
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | CSTRING s -> Printf.sprintf "c%S" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | EQUALS -> "="
  | STAR -> "*"
  | COLON -> ":"
  | ELLIPSIS -> "..."
  | EOF -> "<eof>"
