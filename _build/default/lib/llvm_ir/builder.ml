(* Imperative construction of functions, in the style of LLVM's IRBuilder:
   a builder owns a function under construction and an insertion point
   (the current block); finished blocks accumulate in order. *)

type t = {
  fname : string;
  ret_ty : Ty.t;
  params : Func.param list;
  attrs : (string * string) list;
  mutable counter : int;
  mutable blocks : Block.t list; (* finished, reversed *)
  mutable cur_label : string;
  mutable cur_instrs : Instr.t list; (* reversed *)
  mutable finished : bool;
}

let create ?(attrs = []) ~name ~ret_ty ~params () =
  {
    fname = name;
    ret_ty;
    params = List.map (fun (pty, pname) -> { Func.pty; pname }) params;
    attrs;
    counter = 0;
    blocks = [];
    cur_label = "entry";
    cur_instrs = [];
    finished = false;
  }

let fresh b =
  let name = string_of_int b.counter in
  b.counter <- b.counter + 1;
  name

let fresh_label b prefix =
  let name = Printf.sprintf "%s.%d" prefix b.counter in
  b.counter <- b.counter + 1;
  name

let insert b op =
  b.cur_instrs <- Instr.mk op :: b.cur_instrs

(* Inserts an instruction producing a value; returns the local operand. *)
let insert_value b op =
  let id = fresh b in
  b.cur_instrs <- Instr.mk ~id op :: b.cur_instrs;
  let ty =
    match Instr.result_ty op with
    | Some ty -> ty
    | None -> invalid_arg "Builder.insert_value: instruction has no result"
  in
  Operand.local ty id

let terminate b term =
  b.blocks <- Block.mk b.cur_label (List.rev b.cur_instrs) term :: b.blocks;
  b.cur_instrs <- []

let start_block b label =
  b.cur_label <- label;
  b.cur_instrs <- []

(* Convenience wrappers *)

let alloca b ty = insert_value b (Instr.Alloca ty)
let load b ty ptr = insert_value b (Instr.Load (ty, ptr.Operand.v))
let store b v ptr = insert b (Instr.Store (v, ptr.Operand.v))

let call b ret_ty callee args =
  if Ty.equal ret_ty Ty.Void then begin
    insert b (Instr.Call (ret_ty, callee, args));
    None
  end
  else Some (insert_value b (Instr.Call (ret_ty, callee, args)))

let binop b op ty x y = insert_value b (Instr.Binop (op, ty, x.Operand.v, y.Operand.v))
let icmp b pred ty x y = insert_value b (Instr.Icmp (pred, ty, x.Operand.v, y.Operand.v))
let phi b ty incoming =
  insert_value b (Instr.Phi (ty, List.map (fun (v, l) -> (v.Operand.v, l)) incoming))

let ret b v = terminate b (Instr.Ret v)
let br b label = terminate b (Instr.Br label)
let cond_br b c t e = terminate b (Instr.Cond_br (c.Operand.v, t, e))

let finish b =
  if b.finished then invalid_arg "Builder.finish: already finished";
  if b.cur_instrs <> [] then
    invalid_arg "Builder.finish: current block is not terminated";
  b.finished <- true;
  Func.mk ~attrs:b.attrs b.fname b.ret_ty b.params (List.rev b.blocks)
