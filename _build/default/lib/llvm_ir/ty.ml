type t =
  | Void
  | I1
  | I8
  | I16
  | I32
  | I64
  | Double
  | Ptr
  | Array of int * t
  | Struct of t list
  | Func of t * t list * bool
  | Label

let rec equal a b =
  match a, b with
  | Void, Void | I1, I1 | I8, I8 | I16, I16 | I32, I32 | I64, I64 -> true
  | Double, Double | Ptr, Ptr | Label, Label -> true
  | Array (n, t), Array (m, u) -> n = m && equal t u
  | Struct ts, Struct us ->
    List.length ts = List.length us && List.for_all2 equal ts us
  | Func (r, ps, v), Func (r', ps', v') ->
    v = v' && equal r r'
    && List.length ps = List.length ps'
    && List.for_all2 equal ps ps'
  | ( ( Void | I1 | I8 | I16 | I32 | I64 | Double | Ptr | Array _ | Struct _
      | Func _ | Label ),
      _ ) ->
    false

let is_integer = function
  | I1 | I8 | I16 | I32 | I64 -> true
  | Void | Double | Ptr | Array _ | Struct _ | Func _ | Label -> false

let bit_width = function
  | I1 -> 1
  | I8 -> 8
  | I16 -> 16
  | I32 -> 32
  | I64 -> 64
  | Void | Double | Ptr | Array _ | Struct _ | Func _ | Label ->
    invalid_arg "Ty.bit_width: not an integer type"

let rec size_in_cells = function
  | Void -> 0
  | I1 | I8 | I16 | I32 | I64 | Double | Ptr -> 1
  | Array (n, t) -> n * size_in_cells t
  | Struct ts -> List.fold_left (fun acc t -> acc + size_in_cells t) 0 ts
  | Func _ | Label -> invalid_arg "Ty.size_in_cells: not a sized type"

let rec pp ppf = function
  | Void -> Format.pp_print_string ppf "void"
  | I1 -> Format.pp_print_string ppf "i1"
  | I8 -> Format.pp_print_string ppf "i8"
  | I16 -> Format.pp_print_string ppf "i16"
  | I32 -> Format.pp_print_string ppf "i32"
  | I64 -> Format.pp_print_string ppf "i64"
  | Double -> Format.pp_print_string ppf "double"
  | Ptr -> Format.pp_print_string ppf "ptr"
  | Array (n, t) -> Format.fprintf ppf "[%d x %a]" n pp t
  | Struct ts ->
    Format.fprintf ppf "{ %a }"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp)
      ts
  | Func (ret, params, vararg) ->
    Format.fprintf ppf "%a (%a%s)" pp ret
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp)
      params
      (if vararg then if params = [] then "..." else ", ..." else "")
  | Label -> Format.pp_print_string ppf "label"

let to_string t = Format.asprintf "%a" pp t
