(* Dominator tree and dominance frontiers, using the Cooper-Harvey-Kennedy
   iterative algorithm ("A Simple, Fast Dominance Algorithm"). Used by
   mem2reg (phi placement) and natural-loop detection. *)

module SMap = Map.Make (String)

type t = {
  cfg : Cfg.t;
  idom : string SMap.t; (* immediate dominator; entry maps to itself *)
  children : string list SMap.t; (* dominator-tree children *)
  frontier : string list SMap.t; (* dominance frontier *)
}

let compute cfg =
  let rpo = Array.of_list cfg.Cfg.rpo in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i l -> Hashtbl.replace index l i) rpo;
  let n = Array.length rpo in
  (* idom as array over rpo indices; -1 = undefined *)
  let idom = Array.make n (-1) in
  let entry_idx = 0 in
  idom.(entry_idx) <- entry_idx;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while !f1 > !f2 do
        f1 := idom.(!f1)
      done;
      while !f2 > !f1 do
        f2 := idom.(!f2)
      done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let preds =
        List.filter_map
          (fun p -> Hashtbl.find_opt index p)
          (Cfg.predecessors cfg rpo.(i))
      in
      let processed = List.filter (fun p -> idom.(p) >= 0) preds in
      match processed with
      | [] -> ()
      | first :: rest ->
        let new_idom = List.fold_left (fun acc p -> intersect acc p) first rest in
        if idom.(i) <> new_idom then begin
          idom.(i) <- new_idom;
          changed := true
        end
    done
  done;
  let idom_map =
    Array.to_list rpo
    |> List.mapi (fun i l -> (l, rpo.(idom.(i))))
    |> List.fold_left (fun acc (l, d) -> SMap.add l d acc) SMap.empty
  in
  let children =
    SMap.fold
      (fun l d acc ->
        if String.equal l cfg.Cfg.entry then acc
        else
          SMap.update d
            (function
              | Some cs -> Some (l :: cs)
              | None -> Some [ l ])
            acc)
      idom_map
      (SMap.map (fun _ -> []) idom_map)
  in
  (* dominance frontiers *)
  let frontier = ref (SMap.map (fun _ -> []) idom_map) in
  Array.iter
    (fun l ->
      let preds =
        List.filter (fun p -> Hashtbl.mem index p) (Cfg.predecessors cfg l)
      in
      if List.length preds >= 2 then
        List.iter
          (fun p ->
            let rec walk runner =
              if not (String.equal runner (SMap.find l idom_map)) then begin
                frontier :=
                  SMap.update runner
                    (function
                      | Some fs ->
                        if List.mem l fs then Some fs else Some (l :: fs)
                      | None -> Some [ l ])
                    !frontier;
                walk (SMap.find runner idom_map)
              end
            in
            walk p)
          preds)
    rpo;
  { cfg; idom = idom_map; children; frontier = !frontier }

let idom t label =
  if String.equal label t.cfg.Cfg.entry then None
  else SMap.find_opt label t.idom

let children t label =
  Option.value ~default:[] (SMap.find_opt label t.children)

let frontier t label =
  Option.value ~default:[] (SMap.find_opt label t.frontier)

(* [dominates t a b] — does block [a] dominate block [b]? *)
let dominates t a b =
  let rec walk l =
    if String.equal l a then true
    else if String.equal l t.cfg.Cfg.entry then false
    else
      match SMap.find_opt l t.idom with
      | Some d -> walk d
      | None -> false
  in
  walk b
