(* A basic block: a label, a straight-line list of instructions and a
   single terminator. Phi nodes, when present, must be the leading
   instructions of the block (checked by {!Verifier}). *)

type t = { label : string; instrs : Instr.t list; term : Instr.term }

let mk label instrs term = { label; instrs; term }

let phis block =
  List.filter
    (fun i ->
      match i.Instr.op with
      | Instr.Phi _ -> true
      | _ -> false)
    block.instrs

let non_phis block =
  List.filter
    (fun i ->
      match i.Instr.op with
      | Instr.Phi _ -> false
      | _ -> true)
    block.instrs

let successors block = Instr.successors block.term

(* Labels defined by this block's instruction results. *)
let defs block =
  List.filter_map (fun i -> i.Instr.id) block.instrs
