(** Dominator tree and dominance frontiers (Cooper-Harvey-Kennedy
    iterative algorithm) over reachable blocks. Used by mem2reg for phi
    placement and by natural-loop detection. *)

type t

val compute : Cfg.t -> t

val idom : t -> string -> string option
(** Immediate dominator; [None] for the entry block. *)

val children : t -> string -> string list
(** Dominator-tree children. *)

val frontier : t -> string -> string list
(** Dominance frontier. *)

val dominates : t -> string -> string -> bool
(** [dominates t a b]: does block [a] dominate block [b]? (Reflexive.) *)
