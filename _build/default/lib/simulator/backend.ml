(* Backend abstraction: the QIR runtime (Ex. 5) is parametric over the
   simulator implementing the quantum state, exactly as Catalyst is
   parametric over Lightning. *)

open Qcircuit

module type S = sig
  type t

  val name : string
  val create : ?seed:int -> int -> t
  val num_qubits : t -> int

  val ensure_qubits : t -> int -> unit
  (** Grows the register so that at least [n] qubits exist — the
      "allocate qubits on the fly when [the runtime] encounters a new
      qubit address" strategy of Sec. IV-A. *)

  val apply : t -> Gate.t -> int list -> unit
  (** May raise if the backend cannot represent the gate (e.g. a
      non-Clifford gate on the stabilizer backend). *)

  val measure : t -> int -> bool
  val reset : t -> int -> unit
end

module Statevector_backend : S = struct
  type t = Statevector.t

  let name = "statevector"
  let create ?seed n = Statevector.create ?seed n
  let num_qubits = Statevector.num_qubits
  let ensure_qubits = Statevector.ensure_qubits
  let apply = Statevector.apply
  let measure = Statevector.measure
  let reset = Statevector.reset
end

module Stabilizer_backend : S = struct
  type t = Stabilizer.t

  let name = "stabilizer"
  let create ?seed n = Stabilizer.create ?seed n
  let num_qubits = Stabilizer.num_qubits
  let ensure_qubits = Stabilizer.ensure_qubits
  let apply = Stabilizer.apply
  let measure = Stabilizer.measure
  let reset = Stabilizer.reset
end

(* An existentially-packed backend instance, so callers can choose one at
   runtime (e.g. from a CLI flag). *)
type instance = Instance : (module S with type t = 'a) * 'a -> instance

let create_instance ?seed kind n =
  match kind with
  | `Statevector ->
    Instance
      ((module Statevector_backend : S with type t = Statevector_backend.t),
       Statevector_backend.create ?seed n)
  | `Stabilizer ->
    Instance
      ((module Stabilizer_backend : S with type t = Stabilizer_backend.t),
       Stabilizer_backend.create ?seed n)

let instance_name (Instance ((module B), _)) = B.name
let instance_apply (Instance ((module B), st)) g qs = B.apply st g qs
let instance_measure (Instance ((module B), st)) q = B.measure st q
let instance_reset (Instance ((module B), st)) q = B.reset st q
let instance_ensure (Instance ((module B), st)) n = B.ensure_qubits st n
let instance_num_qubits (Instance ((module B), st)) = B.num_qubits st
