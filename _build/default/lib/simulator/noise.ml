(* Depolarizing noise on top of the statevector backend (stochastic
   Pauli-twirl trajectories): after every gate, each participating qubit
   suffers a uniformly random Pauli error with probability [p1] (one-
   qubit gates) or [p2] (two-or-more-qubit gates), and measurements
   misreport with probability [p_readout].

   This quantifies the paper's motivation that optimization passes are
   "essential to ... maintain a high fidelity of the resulting quantum
   program" (Sec. I): fewer gates, fewer error opportunities. Fidelity
   estimates average over trajectories. *)

open Qcircuit

type params = { p1 : float; p2 : float; p_readout : float }

let default = { p1 = 0.001; p2 = 0.01; p_readout = 0.01 }
let noiseless = { p1 = 0.0; p2 = 0.0; p_readout = 0.0 }

type t = {
  sv : Statevector.t;
  rng : Rng.t;
  params : params;
  mutable pauli_errors : int; (* injected error count, for reporting *)
}

let create ?(seed = 1) ?(params = default) n =
  {
    sv = Statevector.create ~seed n;
    rng = Rng.create (seed lxor 0x5EED);
    params;
    pauli_errors = 0;
  }

let statevector t = t.sv
let num_qubits t = Statevector.num_qubits t.sv
let error_count t = t.pauli_errors

let inject_pauli t q =
  t.pauli_errors <- t.pauli_errors + 1;
  let g =
    match Rng.int t.rng 3 with
    | 0 -> Gate.X
    | 1 -> Gate.Y
    | _ -> Gate.Z
  in
  Statevector.apply t.sv g [ q ]

let apply t g qs =
  Statevector.apply t.sv g qs;
  let p = if Gate.num_qubits g >= 2 then t.params.p2 else t.params.p1 in
  if p > 0.0 then
    List.iter (fun q -> if Rng.float t.rng < p then inject_pauli t q) qs

let measure t q =
  let outcome = Statevector.measure t.sv q in
  if t.params.p_readout > 0.0 && Rng.float t.rng < t.params.p_readout then
    not outcome
  else outcome

let reset t q = Statevector.reset t.sv q

(* One noisy trajectory of a whole circuit. *)
let run_circuit ?(seed = 1) ?(params = default) (c : Circuit.t) =
  let t = create ~seed ~params c.Circuit.num_qubits in
  let clbits = Array.make (max c.Circuit.num_clbits 1) false in
  let cond_holds (cond : Circuit.cond option) =
    match cond with
    | None -> true
    | Some { cbits; value } ->
      let v, _ =
        List.fold_left
          (fun (acc, k) cb ->
            ((acc lor if clbits.(cb) then 1 lsl k else 0), k + 1))
          (0, 0) cbits
      in
      v = value
  in
  List.iter
    (fun (op : Circuit.op) ->
      if cond_holds op.Circuit.cond then
        match op.Circuit.kind with
        | Circuit.Gate (g, qs) -> apply t g qs
        | Circuit.Measure (q, cl) -> clbits.(cl) <- measure t q
        | Circuit.Reset q -> reset t q
        | Circuit.Barrier _ -> ())
    c.Circuit.ops;
  (t, clbits)

(* Average fidelity of the noisy output state against the ideal one, over
   [trials] trajectories. Only meaningful for measurement-free circuits
   (measurements collapse both states differently). *)
let average_fidelity ?(seed = 1) ?(params = default) ~trials (c : Circuit.t) =
  let ideal, _ = Statevector.run_circuit ~seed c in
  let acc = ref 0.0 in
  for k = 0 to trials - 1 do
    let t, _ = run_circuit ~seed:(seed + (k * 7919)) ~params c in
    acc := !acc +. Statevector.fidelity ideal (statevector t)
  done;
  !acc /. float_of_int trials
