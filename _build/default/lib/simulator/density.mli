(** Exact density-matrix simulator: rho -> U rho U+ for gates, exact
    channel application for noise — the reference against which the
    stochastic {!Noise} trajectories are validated. Practical to ~10
    qubits (memory is 2 * 4^n doubles). *)

type t

val create : ?seed:int -> int -> t
(** |0..0><0..0| over [n] qubits (0 <= n <= 12). *)

val num_qubits : t -> int
val dim : t -> int

val entry : t -> int -> int -> Complex.t
(** Matrix entry (row, column) over basis states. *)

val trace : t -> float
(** Should remain 1 under trace-preserving evolution. *)

val probability : t -> int -> float
(** Diagonal entry: probability of a computational basis state. *)

val probabilities : t -> float array

val apply : t -> Qcircuit.Gate.t -> int list -> unit
val apply_matrix : t -> Complex.t array array -> int list -> unit

val depolarize : t -> int -> float -> unit
(** Exact depolarizing channel on one qubit:
    rho -> (1-p) rho + p/3 (X rho X + Y rho Y + Z rho Z). *)

val prob_one : t -> int -> float
val measure : t -> int -> bool
val reset : t -> int -> unit

val purity : t -> float
(** Tr(rho^2): 1 for pure states, 1/2^n for maximally mixed. *)

val run_circuit :
  ?seed:int -> ?noise:float * float -> Qcircuit.Circuit.t -> t * bool array
(** Executes a circuit; [noise = (p1, p2)] applies the exact depolarizing
    channel after every gate on each participating qubit (by arity). *)
