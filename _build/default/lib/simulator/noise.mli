(** Depolarizing noise over the statevector backend (stochastic Pauli
    trajectories): after each gate, every participating qubit suffers a
    uniformly random Pauli with probability [p1]/[p2] (by gate arity);
    measurements misreport with probability [p_readout].

    Quantifies the paper's Sec. I motivation that optimization passes
    "maintain a high fidelity": fewer gates, fewer error opportunities. *)

type params = { p1 : float; p2 : float; p_readout : float }

val default : params
(** p1 = 0.001, p2 = 0.01, readout = 0.01. *)

val noiseless : params

type t

val create : ?seed:int -> ?params:params -> int -> t
val statevector : t -> Statevector.t
val num_qubits : t -> int

val error_count : t -> int
(** Pauli errors injected so far. *)

val apply : t -> Qcircuit.Gate.t -> int list -> unit
val measure : t -> int -> bool
val reset : t -> int -> unit

val run_circuit :
  ?seed:int -> ?params:params -> Qcircuit.Circuit.t -> t * bool array
(** One noisy trajectory. *)

val average_fidelity :
  ?seed:int -> ?params:params -> trials:int -> Qcircuit.Circuit.t -> float
(** Mean fidelity of noisy output states against the ideal state, over
    [trials] trajectories (measurement-free circuits only). *)
