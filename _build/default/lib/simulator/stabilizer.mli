(** CHP stabilizer simulator (Aaronson-Gottesman tableau): Clifford
    circuits in polynomial time and space — the second backend behind the
    Ex. 5 runtime, demonstrating backend-agnosticism and scaling far
    beyond statevector limits. *)

type t

val create : ?seed:int -> int -> t
val num_qubits : t -> int

val add_qubit : t -> unit
val ensure_qubits : t -> int -> unit

exception Not_clifford of Qcircuit.Gate.t

val apply : t -> Qcircuit.Gate.t -> int list -> unit
(** Applies a Clifford gate; raises {!Not_clifford} otherwise. *)

val h : t -> int -> unit
val s : t -> int -> unit
val cnot : t -> int -> int -> unit

val measure : t -> int -> bool
(** Measures in the Z basis (deterministic or fair-coin random, per the
    stabilizer formalism), collapsing the state. *)

val reset : t -> int -> unit

val prob_one : t -> int -> float
(** 0, 1/2 or 1 — non-destructive. *)

val run_circuit : ?seed:int -> Qcircuit.Circuit.t -> t * bool array
(** Executes a whole (Clifford) circuit; returns the final tableau state
    and the classical bits. *)
