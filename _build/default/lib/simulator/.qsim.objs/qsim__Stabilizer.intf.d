lib/simulator/stabilizer.mli: Qcircuit
