lib/simulator/backend.ml: Gate Qcircuit Stabilizer Statevector
