lib/simulator/density.ml: Array Circuit Complex Gate List Printf Qcircuit Rng
