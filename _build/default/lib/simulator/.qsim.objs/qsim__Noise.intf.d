lib/simulator/noise.mli: Qcircuit Statevector
