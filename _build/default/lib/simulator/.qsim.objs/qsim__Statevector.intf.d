lib/simulator/statevector.mli: Complex Qcircuit
