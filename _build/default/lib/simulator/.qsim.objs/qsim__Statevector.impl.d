lib/simulator/statevector.ml: Array Circuit Complex Gate List Printf Qcircuit Rng
