lib/simulator/noise.ml: Array Circuit Gate List Qcircuit Rng Statevector
