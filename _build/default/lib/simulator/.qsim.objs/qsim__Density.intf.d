lib/simulator/density.mli: Complex Qcircuit
