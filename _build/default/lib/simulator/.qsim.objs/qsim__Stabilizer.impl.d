lib/simulator/stabilizer.ml: Array Bytes Circuit Gate List Printf Qcircuit Rng
