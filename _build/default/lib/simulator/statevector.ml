(* Dense statevector simulator: the stand-in for PennyLane Lightning in
   the paper's Ex. 5. Amplitudes are kept in two flat [float array]s
   (real/imaginary), which OCaml stores unboxed; gate kernels stride over
   the arrays without allocating.

   Qubit [q] indexes bit [q] of the basis-state index (qubit 0 is the
   least-significant bit). The simulator supports growing the register
   one qubit at a time ([add_qubit]) to serve dynamic qubit allocation
   (the paper's Sec. IV-A). *)

open Qcircuit

type t = {
  mutable n : int;
  mutable re : float array;
  mutable im : float array;
  rng : Rng.t;
}

let create ?(seed = 1) n =
  if n < 0 || n > 26 then invalid_arg "Statevector.create: 0 <= n <= 26";
  let size = 1 lsl n in
  let re = Array.make size 0.0 and im = Array.make size 0.0 in
  re.(0) <- 1.0;
  { n; re; im; rng = Rng.create seed }

let num_qubits st = st.n
let dim st = 1 lsl st.n

let amplitude st i = { Complex.re = st.re.(i); im = st.im.(i) }

let probability st i = (st.re.(i) *. st.re.(i)) +. (st.im.(i) *. st.im.(i))

let probabilities st = Array.init (dim st) (probability st)

let check_qubit st q =
  if q < 0 || q >= st.n then
    invalid_arg (Printf.sprintf "Statevector: qubit %d out of range [0, %d)" q st.n)

(* Tensors |0> onto the high end of the register. *)
let add_qubit st =
  if st.n >= 26 then invalid_arg "Statevector.add_qubit: register too large";
  let old_size = dim st in
  let re = Array.make (old_size * 2) 0.0 and im = Array.make (old_size * 2) 0.0 in
  Array.blit st.re 0 re 0 old_size;
  Array.blit st.im 0 im 0 old_size;
  st.re <- re;
  st.im <- im;
  st.n <- st.n + 1

let ensure_qubits st n =
  while st.n < n do
    add_qubit st
  done

(* ------------------------------------------------------------------ *)
(* Gate kernels                                                         *)

(* General single-qubit unitary on qubit [q]: for every index pair
   (i0, i1) differing only in bit q, apply the 2x2 matrix. *)
let apply_1q st (u : Complex.t array array) q =
  check_qubit st q;
  let bit = 1 lsl q in
  let size = dim st in
  let u00 = u.(0).(0) and u01 = u.(0).(1) and u10 = u.(1).(0) and u11 = u.(1).(1) in
  let re = st.re and im = st.im in
  let i = ref 0 in
  while !i < size do
    if !i land bit = 0 then begin
      let i0 = !i in
      let i1 = !i lor bit in
      let a_re = re.(i0) and a_im = im.(i0) in
      let b_re = re.(i1) and b_im = im.(i1) in
      re.(i0) <-
        (u00.Complex.re *. a_re) -. (u00.Complex.im *. a_im)
        +. (u01.Complex.re *. b_re) -. (u01.Complex.im *. b_im);
      im.(i0) <-
        (u00.Complex.re *. a_im) +. (u00.Complex.im *. a_re)
        +. (u01.Complex.re *. b_im) +. (u01.Complex.im *. b_re);
      re.(i1) <-
        (u10.Complex.re *. a_re) -. (u10.Complex.im *. a_im)
        +. (u11.Complex.re *. b_re) -. (u11.Complex.im *. b_im);
      im.(i1) <-
        (u10.Complex.re *. a_im) +. (u10.Complex.im *. a_re)
        +. (u11.Complex.re *. b_im) +. (u11.Complex.im *. b_re)
    end;
    incr i
  done

(* General two-qubit unitary on qubits [qa] (most significant in the
   matrix basis) and [qb]. *)
let apply_2q st (u : Complex.t array array) qa qb =
  check_qubit st qa;
  check_qubit st qb;
  if qa = qb then invalid_arg "Statevector.apply_2q: identical qubits";
  let ba = 1 lsl qa and bb = 1 lsl qb in
  let size = dim st in
  let re = st.re and im = st.im in
  let tmp_re = Array.make 4 0.0 and tmp_im = Array.make 4 0.0 in
  let idx = Array.make 4 0 in
  let i = ref 0 in
  while !i < size do
    if !i land ba = 0 && !i land bb = 0 then begin
      idx.(0) <- !i;
      idx.(1) <- !i lor bb;
      idx.(2) <- !i lor ba;
      idx.(3) <- !i lor ba lor bb;
      for k = 0 to 3 do
        let sr = ref 0.0 and si = ref 0.0 in
        for l = 0 to 3 do
          let m = u.(k).(l) in
          let vr = re.(idx.(l)) and vi = im.(idx.(l)) in
          sr := !sr +. ((m.Complex.re *. vr) -. (m.Complex.im *. vi));
          si := !si +. ((m.Complex.re *. vi) +. (m.Complex.im *. vr))
        done;
        tmp_re.(k) <- !sr;
        tmp_im.(k) <- !si
      done;
      for k = 0 to 3 do
        re.(idx.(k)) <- tmp_re.(k);
        im.(idx.(k)) <- tmp_im.(k)
      done
    end;
    incr i
  done

(* Toffoli / Fredkin as direct permutations, avoiding 8x8 matrices. *)
let apply_ccx st c1 c2 tgt =
  check_qubit st c1;
  check_qubit st c2;
  check_qubit st tgt;
  let b1 = 1 lsl c1 and b2 = 1 lsl c2 and bt = 1 lsl tgt in
  let size = dim st in
  let re = st.re and im = st.im in
  let i = ref 0 in
  while !i < size do
    if !i land b1 <> 0 && !i land b2 <> 0 && !i land bt = 0 then begin
      let j = !i lor bt in
      let tr = re.(!i) and ti = im.(!i) in
      re.(!i) <- re.(j);
      im.(!i) <- im.(j);
      re.(j) <- tr;
      im.(j) <- ti
    end;
    incr i
  done

let apply_cswap st c a b =
  check_qubit st c;
  check_qubit st a;
  check_qubit st b;
  let bc = 1 lsl c and ba = 1 lsl a and bb = 1 lsl b in
  let size = dim st in
  let re = st.re and im = st.im in
  let i = ref 0 in
  while !i < size do
    (* swap amplitudes of |..a=1,b=0..> and |..a=0,b=1..> when c=1 *)
    if !i land bc <> 0 && !i land ba <> 0 && !i land bb = 0 then begin
      let j = (!i lxor ba) lor bb in
      let tr = re.(!i) and ti = im.(!i) in
      re.(!i) <- re.(j);
      im.(!i) <- im.(j);
      re.(j) <- tr;
      im.(j) <- ti
    end;
    incr i
  done

let apply st (g : Gate.t) qubits =
  match Gate.num_qubits g, qubits with
  | 1, [ q ] -> apply_1q st (Gate.matrix_1q g) q
  | 2, [ a; b ] -> apply_2q st (Gate.matrix_2q g) a b
  | 3, [ a; b; c ] -> (
    match g with
    | Gate.Ccx -> apply_ccx st a b c
    | Gate.Cswap -> apply_cswap st a b c
    | _ -> assert false)
  | n, qs ->
    invalid_arg
      (Printf.sprintf "Statevector.apply: %s expects %d qubits, got %d"
         (Gate.name g) n (List.length qs))

(* ------------------------------------------------------------------ *)
(* Measurement                                                          *)

let prob_one st q =
  check_qubit st q;
  let bit = 1 lsl q in
  let size = dim st in
  let acc = ref 0.0 in
  for i = 0 to size - 1 do
    if i land bit <> 0 then
      acc := !acc +. (st.re.(i) *. st.re.(i)) +. (st.im.(i) *. st.im.(i))
  done;
  !acc

(* Projects onto [q] = [outcome] and renormalizes. *)
let collapse st q outcome prob =
  let bit = 1 lsl q in
  let size = dim st in
  let norm = 1.0 /. sqrt prob in
  for i = 0 to size - 1 do
    let is_one = i land bit <> 0 in
    if is_one = outcome then begin
      st.re.(i) <- st.re.(i) *. norm;
      st.im.(i) <- st.im.(i) *. norm
    end
    else begin
      st.re.(i) <- 0.0;
      st.im.(i) <- 0.0
    end
  done

let measure st q =
  let p1 = prob_one st q in
  let outcome = Rng.float st.rng < p1 in
  let prob = if outcome then p1 else 1.0 -. p1 in
  (* guard the numerically degenerate draw of a zero-probability branch *)
  let outcome, prob =
    if prob <= 0.0 then (not outcome, 1.0 -. prob) else (outcome, prob)
  in
  collapse st q outcome prob;
  outcome

let reset st q =
  let one = measure st q in
  if one then apply st Gate.X [ q ]

(* Z-expectation value of qubit [q] without collapsing. *)
let expectation_z st q = 1.0 -. (2.0 *. prob_one st q)

(* ------------------------------------------------------------------ *)
(* Whole-circuit execution                                              *)

let run_circuit ?(seed = 1) (c : Circuit.t) =
  let st = create ~seed c.Circuit.num_qubits in
  let clbits = Array.make (max c.Circuit.num_clbits 1) false in
  let cond_holds (cond : Circuit.cond option) =
    match cond with
    | None -> true
    | Some { cbits; value } ->
      let v =
        List.fold_left
          (fun (acc, k) c ->
            ((acc lor if clbits.(c) then 1 lsl k else 0), k + 1))
          (0, 0) cbits
        |> fst
      in
      v = value
  in
  List.iter
    (fun (op : Circuit.op) ->
      if cond_holds op.Circuit.cond then
        match op.Circuit.kind with
        | Circuit.Gate (g, qs) -> apply st g qs
        | Circuit.Measure (q, cl) -> clbits.(cl) <- measure st q
        | Circuit.Reset q -> reset st q
        | Circuit.Barrier _ -> ())
    c.Circuit.ops;
  (st, clbits)

(* Inner product <a|b>; |<a|b>|^2 = 1 iff the states coincide. *)
let inner_product a b =
  if a.n <> b.n then invalid_arg "Statevector.inner_product: size mismatch";
  let acc_re = ref 0.0 and acc_im = ref 0.0 in
  for i = 0 to dim a - 1 do
    (* conj(a) * b *)
    acc_re := !acc_re +. (a.re.(i) *. b.re.(i)) +. (a.im.(i) *. b.im.(i));
    acc_im := !acc_im +. (a.re.(i) *. b.im.(i)) -. (a.im.(i) *. b.re.(i))
  done;
  { Complex.re = !acc_re; im = !acc_im }

let fidelity a b = Complex.norm2 (inner_product a b)
