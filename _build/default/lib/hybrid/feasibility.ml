(* Coherence feasibility (Sec. IV-B): "it must be ensured that the
   classical code offloaded to the quantum hardware can be executed in
   the required time frame to uphold the coherence of the qubits. Hence,
   as long as quantum computers cannot achieve arbitrary coherence ...
   there will always be programs that describe an infeasible execution
   and must be rejected."

   The check walks a circuit with feedback conditions under a timing
   model and a placement for the classical decision logic, accumulating
   the waiting time of every live qubit. A program is rejected when any
   qubit waits longer than the coherence budget. *)

open Qcircuit

type violation = {
  qubit : int;
  wait_ns : float;
  at_op : int; (* index of the operation whose delay overflowed *)
}

type verdict = {
  feasible : bool;
  max_wait_ns : float;
  total_ns : float;
  violations : violation list;
}

(* Wall-clock walk. All operations are serialized except that waiting
   time is tracked per qubit: a qubit's wait is the time between two
   consecutive operations touching it while it holds live state. The
   classical decision time of a conditioned operation (the feedback
   latency) is charged to the global clock before the operation. *)
let check ?(params = Latency.default) ~(placement : Latency.placement)
    (c : Circuit.t) : verdict =
  let n = max c.Circuit.num_qubits 1 in
  let clock = ref 0.0 in
  let last_touch = Array.make n 0.0 in
  let live = Array.make n false in
  let max_wait = ref 0.0 in
  let violations = ref [] in
  let touch i q =
    if live.(q) then begin
      let wait = !clock -. last_touch.(q) in
      if wait > !max_wait then max_wait := wait;
      if wait > params.Latency.coherence_budget_ns then
        violations := { qubit = q; wait_ns = wait; at_op = i } :: !violations
    end;
    live.(q) <- true;
    last_touch.(q) <- !clock
  in
  List.iteri
    (fun i (op : Circuit.op) ->
      (match op.Circuit.cond with
      | Some { Circuit.cbits; _ } ->
        (* the feedback decision: read the bits and compare *)
        let instrs = List.length cbits + 1 in
        clock := !clock +. Latency.segment_cost params ~instrs placement
      | None -> ());
      let duration = Latency.op_duration params op in
      (match op.Circuit.kind with
      | Circuit.Barrier _ -> ()
      | _ -> List.iter (touch i) (Circuit.op_qubits op));
      clock := !clock +. duration;
      (* a reset or measurement ends the qubit's live state *)
      (match op.Circuit.kind with
      | Circuit.Reset q | Circuit.Measure (q, _) ->
        live.(q) <- false
      | Circuit.Gate _ | Circuit.Barrier _ -> ());
      (* advance last_touch for the touched qubits to after the op *)
      match op.Circuit.kind with
      | Circuit.Barrier _ -> ()
      | _ -> List.iter (fun q -> last_touch.(q) <- !clock) (Circuit.op_qubits op))
    c.Circuit.ops;
  {
    feasible = !violations = [];
    max_wait_ns = !max_wait;
    total_ns = !clock;
    violations = List.rev !violations;
  }

let pp_verdict ppf v =
  if v.feasible then
    Format.fprintf ppf "feasible (max wait %.0f ns, total %.0f ns)"
      v.max_wait_ns v.total_ns
  else
    Format.fprintf ppf "REJECTED: %d coherence violations (max wait %.0f ns)"
      (List.length v.violations) v.max_wait_ns
