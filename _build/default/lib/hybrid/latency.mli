(** Timing model for hybrid execution (Sec. IV-B): quantum operations on
    the QPU; classical code on the fast-but-restricted controller
    (FPGA/ASIC) or on the host, with a round-trip penalty. Nanoseconds
    throughout; defaults are in the range reported for superconducting
    control stacks. *)

type params = {
  gate_1q_ns : float;
  gate_2q_ns : float;
  measure_ns : float;
  reset_ns : float;
  controller_op_ns : float;
  host_op_ns : float;
  host_roundtrip_ns : float;
  controller_max_instrs : int;  (** controller program-store limit *)
  coherence_budget_ns : float;  (** tolerable idle time for a live qubit *)
}

val default : params

val op_duration : params -> Qcircuit.Circuit.op -> float

type placement = Controller | Host

val placement_name : placement -> string

val segment_cost : params -> instrs:int -> placement -> float
(** Latency contribution of executing a classical segment of [instrs]
    instructions at the given placement (host placement pays the
    round-trip). *)
