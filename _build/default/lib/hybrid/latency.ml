(* Timing model for hybrid execution (Sec. IV-B): quantum operations run
   on the QPU; classical code runs either on the fast-but-restricted
   controller (FPGA/ASIC) or on the host, with a round-trip penalty.
   Times are in nanoseconds, with defaults in the range reported for
   superconducting control stacks. *)

type params = {
  gate_1q_ns : float;
  gate_2q_ns : float;
  measure_ns : float;
  reset_ns : float;
  controller_op_ns : float; (* one classical instruction on the controller *)
  host_op_ns : float; (* one classical instruction on the host *)
  host_roundtrip_ns : float; (* QPU -> host -> QPU communication *)
  controller_max_instrs : int; (* program-store limit of the controller *)
  coherence_budget_ns : float; (* tolerable idle time for a live qubit *)
}

let default =
  {
    gate_1q_ns = 25.0;
    gate_2q_ns = 70.0;
    measure_ns = 300.0;
    reset_ns = 250.0;
    controller_op_ns = 4.0;
    host_op_ns = 1.0;
    host_roundtrip_ns = 10_000.0;
    controller_max_instrs = 1024;
    coherence_budget_ns = 100_000.0;
  }

open Qcircuit

let op_duration p (op : Circuit.op) =
  match op.Circuit.kind with
  | Circuit.Gate (g, _) ->
    if Gate.num_qubits g >= 2 then p.gate_2q_ns else p.gate_1q_ns
  | Circuit.Measure _ -> p.measure_ns
  | Circuit.Reset _ -> p.reset_ns
  | Circuit.Barrier _ -> 0.0

(* Classical segment cost under each placement. *)
type placement = Controller | Host

let placement_name = function
  | Controller -> "controller"
  | Host -> "host"

let segment_cost p ~instrs = function
  | Controller -> float_of_int instrs *. p.controller_op_ns
  | Host -> p.host_roundtrip_ns +. (float_of_int instrs *. p.host_op_ns)
