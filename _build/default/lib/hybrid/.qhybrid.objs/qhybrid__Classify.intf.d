lib/hybrid/classify.mli: Llvm_ir
