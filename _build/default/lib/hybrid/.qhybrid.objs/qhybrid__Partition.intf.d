lib/hybrid/partition.mli: Classify Format Latency Llvm_ir
