lib/hybrid/latency.mli: Qcircuit
