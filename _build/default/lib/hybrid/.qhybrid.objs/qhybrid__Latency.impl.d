lib/hybrid/latency.ml: Circuit Gate Qcircuit
