lib/hybrid/feasibility.ml: Array Circuit Format Latency List Qcircuit
