lib/hybrid/partition.ml: Classify Format Func Instr Ir_module Latency List Llvm_ir Qir String Ty
