lib/hybrid/classify.ml: Block Func Instr List Llvm_ir Operand Qir String
