lib/hybrid/feasibility.mli: Format Latency Qcircuit
