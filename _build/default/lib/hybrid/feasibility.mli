(** Coherence feasibility (Sec. IV-B): "as long as quantum computers
    cannot achieve arbitrary coherence ... there will always be programs
    that describe an infeasible execution and must be rejected."

    The check walks a circuit with feedback conditions under the timing
    model and a placement for the decision logic, accumulating every live
    qubit's waiting time; a program is rejected when any qubit waits
    longer than the coherence budget. *)

type violation = {
  qubit : int;
  wait_ns : float;
  at_op : int;  (** index of the operation whose delay overflowed *)
}

type verdict = {
  feasible : bool;
  max_wait_ns : float;
  total_ns : float;  (** modeled wall-clock of the whole program *)
  violations : violation list;
}

val check :
  ?params:Latency.params ->
  placement:Latency.placement ->
  Qcircuit.Circuit.t ->
  verdict

val pp_verdict : Format.formatter -> verdict -> unit
