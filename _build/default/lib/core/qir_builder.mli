(** Circuit -> QIR generation, in the two addressing styles of the paper:

    - [`Static]: qubits and results are constant [inttoptr] addresses
      (Ex. 6) — the form the base profile requires;
    - [`Dynamic]: qubits live in runtime-allocated arrays accessed through
      [__quantum__rt__*] calls, reproducing Fig. 1 (right).

    Circuits without classical conditions produce a single straight-line
    entry function (base profile); conditioned operations produce
    read_result / icmp / br control flow (adaptive profile). The entry
    point carries the [entry_point], [qir_profiles],
    [required_num_qubits] and [required_num_results] attributes.

    Results are allocated one per measurement operation, in program
    order; a condition reads the latest result measured into each of its
    classical bits. *)

type addressing = [ `Dynamic | `Static ]

val profile_name : Qcircuit.Circuit.t -> string
(** ["base_profile"] or ["adaptive_profile"], by presence of conditions. *)

val build :
  ?addressing:addressing ->
  ?record_output:bool ->
  ?entry_name:string ->
  Qcircuit.Circuit.t ->
  Llvm_ir.Ir_module.t
(** Builds a verifier-clean module (gates are legalized first). Defaults:
    static addressing, output recording on, entry point [@main]. *)

val to_string :
  ?addressing:addressing ->
  ?record_output:bool ->
  ?entry_name:string ->
  Qcircuit.Circuit.t ->
  string
(** [build] followed by printing. *)
