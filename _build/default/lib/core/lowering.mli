(** Lowering across profiles (Sec. III-B / Ex. 4): flattening a QIR
    program that uses the full expressiveness of LLVM IR (helper
    functions, loops, classical computation) towards the base profile via
    the classical pass pipeline — inlining, mem2reg, constant
    propagation, full loop unrolling, DCE and CFG simplification. *)

type error =
  | Violations of Profile_check.violation list
      (** lowered, but still violating the target profile (e.g.
          measurement feedback can never reach the base profile) *)
  | Unsupported of string  (** circuit extraction failed *)

val pp_error : Format.formatter -> error -> unit

val lower_module : ?max_rounds:int -> Llvm_ir.Ir_module.t -> Llvm_ir.Ir_module.t
(** Runs the lowering pipeline; purely structural, always succeeds (it
    just may not reach the base profile). *)

val lower_to_profile :
  ?max_rounds:int ->
  Profile.t ->
  Llvm_ir.Ir_module.t ->
  (Llvm_ir.Ir_module.t, error) result

val lower_to_circuit :
  ?max_rounds:int ->
  Llvm_ir.Ir_module.t ->
  (Qcircuit.Circuit.t, error) result
(** Lower, then parse with {!Qir_parser}. *)

val lower_to_base :
  ?max_rounds:int ->
  Llvm_ir.Ir_module.t ->
  (Llvm_ir.Ir_module.t, error) result
(** All the way to a base-profile module with static addresses (via the
    circuit IR). *)
