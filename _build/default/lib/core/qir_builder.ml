(* Circuit -> QIR generation, in the two addressing styles of the paper:

   - [`Static]: qubits and results are constant addresses (Ex. 6), the
     form the base profile requires;
   - [`Dynamic]: qubits live in runtime-allocated arrays accessed through
     [__quantum__rt__*] calls, reproducing Fig. 1 (right).

   Circuits without classical conditions emit a single straight-line
   entry function (base profile); conditioned operations emit
   read_result / icmp / br control flow (adaptive profile). *)

open Llvm_ir
open Qcircuit

type addressing = [ `Static | `Dynamic ]

let ptr = Ty.Ptr
let void = Ty.Void
let i64 = Ty.I64

(* Per-build mutable state. *)
type st = {
  b : Builder.t;
  addressing : addressing;
  (* static: unused; dynamic: alloca slots holding the array pointers *)
  mutable qubit_slot : Operand.typed option;
  mutable result_slot : Operand.typed option;
  mutable result_count : int;
  (* latest result id measured into each clbit *)
  clbit_result : (int, int) Hashtbl.t;
  mutable block_counter : int;
}

let call st name args = ignore (Builder.call st.b void name args)

let call_ptr st name args =
  match Builder.call st.b ptr name args with
  | Some v -> v
  | None -> assert false

let call_i1 st name args =
  match Builder.call st.b Ty.I1 name args with
  | Some v -> v
  | None -> assert false

(* The operand for qubit [q]. *)
let qubit_arg st q =
  match st.addressing with
  | `Static -> Operand.qubit_ptr (Int64.of_int q)
  | `Dynamic ->
    let slot = Option.get st.qubit_slot in
    let arr = Builder.load st.b ptr slot in
    call_ptr st Names.rt_array_get_element_ptr_1d
      [ arr; Operand.i64 (Int64.of_int q) ]

(* The operand for result [r]. *)
let result_arg st r =
  match st.addressing with
  | `Static -> Operand.qubit_ptr (Int64.of_int r)
  | `Dynamic ->
    let slot = Option.get st.result_slot in
    let arr = Builder.load st.b ptr slot in
    call_ptr st Names.rt_array_get_element_ptr_1d
      [ arr; Operand.i64 (Int64.of_int r) ]

let emit_gate st (g : Gate.t) qs =
  match Names.qis_of_gate g with
  | Some (name, doubles) ->
    let args =
      List.map Operand.double doubles @ List.map (qubit_arg st) qs
    in
    call st name args
  | None ->
    invalid_arg
      (Printf.sprintf "Qir_builder: gate %s is not in the QIR gate set (legalize first)"
         (Gate.name g))

let emit_measure st q c =
  let r = st.result_count in
  st.result_count <- r + 1;
  Hashtbl.replace st.clbit_result c r;
  call st Names.qis_mz [ qubit_arg st q; result_arg st r ]

let emit_reset st q = call st (Names.qis "reset") [ qubit_arg st q ]

let emit_kind st (kind : Circuit.kind) =
  match kind with
  | Circuit.Gate (g, qs) -> emit_gate st g qs
  | Circuit.Measure (q, c) -> emit_measure st q c
  | Circuit.Reset q -> emit_reset st q
  | Circuit.Barrier _ -> ()

(* Reads the classical register formed by [cbits] (LSB first) into an i64
   SSA value via read_result / zext / shl / or. *)
let emit_register_read st cbits =
  let parts =
    List.mapi
      (fun k c ->
        let r =
          match Hashtbl.find_opt st.clbit_result c with
          | Some r -> r
          | None ->
            invalid_arg
              (Printf.sprintf
                 "Qir_builder: condition reads clbit %d before any measurement"
                 c)
        in
        let bit = call_i1 st Names.rt_read_result [ result_arg st r ] in
        let wide =
          Builder.insert_value st.b (Instr.Cast (Instr.Zext, bit, i64))
        in
        if k = 0 then wide
        else
          Builder.insert_value st.b
            (Instr.Binop
               (Instr.Shl, i64, wide.Operand.v, (Operand.i64 (Int64.of_int k)).Operand.v)))
      cbits
  in
  match parts with
  | [] -> Operand.i64 0L
  | first :: rest ->
    List.fold_left
      (fun acc p -> Builder.binop st.b Instr.Or i64 acc p)
      first rest

let emit_op st (op : Circuit.op) =
  match op.Circuit.cond with
  | None -> emit_kind st op.Circuit.kind
  | Some { Circuit.cbits; value } ->
    let v = emit_register_read st cbits in
    let cmp =
      Builder.icmp st.b Instr.Ieq i64 v (Operand.i64 (Int64.of_int value))
    in
    let n = st.block_counter in
    st.block_counter <- n + 1;
    let then_label = Printf.sprintf "then%d" n in
    let cont_label = Printf.sprintf "continue%d" n in
    Builder.cond_br st.b cmp then_label cont_label;
    Builder.start_block st.b then_label;
    emit_kind st op.Circuit.kind;
    Builder.br st.b cont_label;
    Builder.start_block st.b cont_label

let profile_name (c : Circuit.t) =
  if Circuit.has_conditions c then "adaptive_profile" else "base_profile"

let build ?(addressing : addressing = `Static) ?(record_output = true)
    ?(entry_name = "main") (circuit : Circuit.t) : Ir_module.t =
  let circuit = Qir_gateset.legalize circuit in
  let num_results =
    (* one result per measurement operation *)
    Circuit.measure_count circuit
  in
  let attrs =
    [
      ("entry_point", "");
      ("qir_profiles", profile_name circuit);
      ("required_num_qubits", string_of_int circuit.Circuit.num_qubits);
      ("required_num_results", string_of_int num_results);
    ]
  in
  let b = Builder.create ~attrs ~name:entry_name ~ret_ty:void ~params:[] () in
  let st =
    {
      b;
      addressing;
      qubit_slot = None;
      result_slot = None;
      result_count = 0;
      clbit_result = Hashtbl.create 8;
      block_counter = 0;
    }
  in
  (match addressing with
  | `Static -> ()
  | `Dynamic ->
    (* the Fig. 1 prologue: allocate the qubit array and the result array,
       keeping the pointers in stack slots *)
    let qslot = Builder.alloca b ptr in
    let qarr =
      call_ptr st Names.rt_qubit_allocate_array
        [ Operand.i64 (Int64.of_int circuit.Circuit.num_qubits) ]
    in
    Builder.store b qarr qslot;
    st.qubit_slot <- Some qslot;
    if num_results > 0 then begin
      let cslot = Builder.alloca b ptr in
      let carr =
        call_ptr st Names.rt_array_create_1d
          [ Operand.i32 1L; Operand.i64 (Int64.of_int num_results) ]
      in
      Builder.store b carr cslot;
      st.result_slot <- Some cslot
    end);
  List.iter (emit_op st) circuit.Circuit.ops;
  if record_output then begin
    call st Names.rt_array_record_output
      [ Operand.i64 (Int64.of_int circuit.Circuit.num_clbits); Operand.null ];
    (* record each clbit's final result, in clbit order *)
    for c = 0 to circuit.Circuit.num_clbits - 1 do
      match Hashtbl.find_opt st.clbit_result c with
      | Some r ->
        call st Names.rt_result_record_output
          [ result_arg st r; Operand.null ]
      | None -> ()
    done
  end;
  (match addressing with
  | `Static -> ()
  | `Dynamic ->
    let qslot = Option.get st.qubit_slot in
    let qarr = Builder.load b ptr qslot in
    call st Names.rt_qubit_release_array [ qarr ]);
  Builder.ret b None;
  let f = Builder.finish b in
  let m = Ir_module.mk ~source_name:"qir_builder" [ f ] in
  Signatures.add_missing_declarations m

(* Convenience: textual QIR. *)
let to_string ?addressing ?record_output ?entry_name circuit =
  Printer.module_to_string
    (build ?addressing ?record_output ?entry_name circuit)
