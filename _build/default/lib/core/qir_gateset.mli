(** Legalization into the QIR base gate set (h, x, y, z, s, sdg, t, tdg,
    rx, ry, rz, cnot, cz, swap, ccx). All rewrites hold up to global
    phase. *)

val is_base_gate : Qcircuit.Gate.t -> bool

val legalize_gate :
  Qcircuit.Gate.t -> int list -> (Qcircuit.Gate.t * int list) list
(** Decomposes one gate application into base-set applications. Raises
    [Invalid_argument] on arity mismatch. *)

val legalize : Qcircuit.Circuit.t -> Qcircuit.Circuit.t
(** Rewrites every gate of the circuit into the base set (conditions are
    propagated onto each emitted gate). *)
