(* MLIR emission — the paper's conclusion: "One framework for exploring
   solutions to these questions is the Multi-Level Intermediate
   Representation (MLIR), which is a natural choice for the next step in
   the evolution of QIR."

   This module renders a circuit in the quantum-dialect style used by
   Catalyst/QIRO-like MLIR stacks: qubits are SSA values threaded through
   value-semantics operations, so the dataflow the LLVM form hides behind
   pointers becomes explicit — the main benefit the MLIR route promises.

     %q0_1 = quantum.custom "h"() %q0_0 : !quantum.bit
     %q0_2, %q1_1 = quantum.custom "cx"() %q0_1, %q1_0
                      : !quantum.bit, !quantum.bit
     %m0, %q0_3 = quantum.measure %q0_2 : i1, !quantum.bit *)

open Qcircuit

let bit_ty = "!quantum.bit"

type state = {
  buf : Buffer.t;
  version : int array; (* SSA version per qubit *)
  mutable measure_count : int;
}

let qref st q = Printf.sprintf "%%q%d_%d" q st.version.(q)

let next_qref st q =
  st.version.(q) <- st.version.(q) + 1;
  qref st q

let emit_gate st (g : Gate.t) qs =
  let ins = List.map (qref st) qs in
  let outs = List.map (next_qref st) qs in
  let params =
    match Gate.params g with
    | [] -> ""
    | ps -> Printf.sprintf "(%s)" (String.concat ", "
          (List.map (fun p -> Printf.sprintf "%.17g : f64" p) ps))
  in
  Buffer.add_string st.buf
    (Printf.sprintf "    %s = quantum.custom \"%s\"%s %s : %s\n"
       (String.concat ", " outs) (Gate.name g) params
       (String.concat ", " ins)
       (String.concat ", " (List.map (fun _ -> bit_ty) qs)))

let emit_measure st q c =
  let input = qref st q in
  let out = next_qref st q in
  Buffer.add_string st.buf
    (Printf.sprintf "    %%m%d, %s = quantum.measure %s : i1, %s\n" c out
       input bit_ty);
  st.measure_count <- st.measure_count + 1

let emit_reset st q =
  let input = qref st q in
  let out = next_qref st q in
  Buffer.add_string st.buf
    (Printf.sprintf "    %s = quantum.reset %s : %s\n" out input bit_ty)

let emit_cond st (cond : Circuit.cond) body =
  (* scf.if over the recorded measurement bits *)
  let bits = List.map (fun c -> Printf.sprintf "%%m%d" c) cond.Circuit.cbits in
  Buffer.add_string st.buf
    (Printf.sprintf "    %%cond = quantum.register_eq %s, %d : i1\n"
       (String.concat ", " bits) cond.Circuit.value);
  Buffer.add_string st.buf "    scf.if %cond {\n";
  body ();
  Buffer.add_string st.buf "    }\n"

(* Renders the circuit as an MLIR function in the quantum dialect. *)
let emit ?(func_name = "main") (c : Circuit.t) : string =
  let st =
    {
      buf = Buffer.create 1024;
      version = Array.make (max c.Circuit.num_qubits 1) 0;
      measure_count = 0;
    }
  in
  Buffer.add_string st.buf "module {\n";
  Buffer.add_string st.buf
    (Printf.sprintf "  func.func @%s() attributes {qir.entry_point} {\n"
       func_name);
  for q = 0 to c.Circuit.num_qubits - 1 do
    Buffer.add_string st.buf
      (Printf.sprintf "    %%q%d_0 = quantum.alloc : %s\n" q bit_ty)
  done;
  List.iter
    (fun (op : Circuit.op) ->
      let body () =
        match op.Circuit.kind with
        | Circuit.Gate (g, qs) -> emit_gate st g qs
        | Circuit.Measure (q, cl) -> emit_measure st q cl
        | Circuit.Reset q -> emit_reset st q
        | Circuit.Barrier _ -> ()
      in
      match op.Circuit.cond with
      | Some cond -> emit_cond st cond body
      | None -> body ())
    c.Circuit.ops;
  for q = 0 to c.Circuit.num_qubits - 1 do
    Buffer.add_string st.buf
      (Printf.sprintf "    quantum.dealloc %s : %s\n" (qref st q) bit_ty)
  done;
  Buffer.add_string st.buf "    return\n  }\n}\n";
  Buffer.contents st.buf

(* The same program from QIR (via the Ex. 3 parser). *)
let emit_module ?func_name (m : Llvm_ir.Ir_module.t) : string =
  emit ?func_name (Qir_parser.parse m)
