(* Static vs. dynamic qubit addressing (Sec. IV-A). Detection scans the
   module; conversion goes through the circuit IR: parse with the Ex. 3
   machinery, then re-emit in the requested style. The conversion to
   static addresses is the "register allocation" step the paper draws the
   analogy to — the identity assignment here; {!Qmapping.Allocator}
   implements the live-range-packing version. *)

open Llvm_ir

type style = Static | Dynamic | Mixed | No_qubits

let pp_style ppf s =
  Format.pp_print_string ppf
    (match s with
    | Static -> "static"
    | Dynamic -> "dynamic"
    | Mixed -> "mixed"
    | No_qubits -> "no-qubits")

let detect (m : Ir_module.t) : style =
  let has_static = ref false and has_dynamic = ref false in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_instrs f (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Call (_, callee, args) when Names.is_quantum callee -> (
            if
              String.equal callee Names.rt_qubit_allocate
              || String.equal callee Names.rt_qubit_allocate_array
            then has_dynamic := true;
            match Signatures.find callee with
            | Some s when List.length s.Signatures.args = List.length args ->
              List.iter2
                (fun kind (a : Operand.typed) ->
                  match kind, a.Operand.v with
                  | Signatures.Qubit, Operand.Const (Constant.Inttoptr _)
                  | Signatures.Qubit, Operand.Const Constant.Null ->
                    has_static := true
                  | _ -> ())
                s.Signatures.args args
            | _ -> ())
          | _ -> ()))
    m.Ir_module.funcs;
  match !has_static, !has_dynamic with
  | true, true -> Mixed
  | true, false -> Static
  | false, true -> Dynamic
  | false, false -> No_qubits

(* Conversions (semantic route: QIR -> circuit -> QIR). *)
let to_static ?record_output (m : Ir_module.t) =
  let circuit = Qir_parser.parse m in
  Qir_builder.build ~addressing:`Static ?record_output circuit

let to_dynamic ?record_output (m : Ir_module.t) =
  let circuit = Qir_parser.parse m in
  Qir_builder.build ~addressing:`Dynamic ?record_output circuit
