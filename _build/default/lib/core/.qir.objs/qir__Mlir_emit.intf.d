lib/core/mlir_emit.mli: Llvm_ir Qcircuit
