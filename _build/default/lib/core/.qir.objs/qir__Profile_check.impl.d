lib/core/profile_check.ml: Block Constant Format Func Instr Ir_module List Llvm_ir Names Operand Passes Printer Profile Signatures String Ty
