lib/core/names.ml: Filename Gate Qcircuit String
