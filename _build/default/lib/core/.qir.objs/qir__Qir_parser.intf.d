lib/core/qir_parser.mli: Llvm_ir Qcircuit
