lib/core/qir_gateset.ml: Circuit Float Gate List Names Printf Qcircuit
