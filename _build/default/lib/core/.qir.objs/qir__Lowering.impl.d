lib/core/lowering.ml: Format Ir_module Llvm_ir Passes Profile Profile_check Qcircuit Qir_builder Qir_parser
