lib/core/qir_builder.mli: Llvm_ir Qcircuit
