lib/core/profile_check.mli: Format Llvm_ir Profile
