lib/core/addressing.mli: Format Llvm_ir
