lib/core/lowering.mli: Format Llvm_ir Profile Profile_check Qcircuit
