lib/core/profile.ml: Format
