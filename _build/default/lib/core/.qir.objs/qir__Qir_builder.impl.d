lib/core/qir_builder.ml: Builder Circuit Gate Hashtbl Instr Int64 Ir_module List Llvm_ir Names Operand Option Printer Printf Qcircuit Qir_gateset Signatures Ty
