lib/core/signatures.ml: Func Hashtbl Instr Ir_module List Llvm_ir Names String Ty
