lib/core/addressing.ml: Constant Format Func Instr Ir_module List Llvm_ir Names Operand Qir_builder Qir_parser Signatures String
