lib/core/names.mli: Qcircuit
