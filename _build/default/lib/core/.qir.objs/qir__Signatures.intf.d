lib/core/signatures.mli: Llvm_ir
