lib/core/qir_gateset.mli: Qcircuit
