lib/core/qir_parser.ml: Block Circuit Constant Format Func Hashtbl Instr Int64 Ir_module List Llvm_ir Names Operand Parser Qcircuit Signatures String Ty
