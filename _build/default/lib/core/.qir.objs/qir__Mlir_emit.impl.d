lib/core/mlir_emit.ml: Array Buffer Circuit Gate List Llvm_ir Printf Qcircuit Qir_parser String
