(** Static vs. dynamic qubit addressing (Sec. IV-A).

    Conversion goes through the circuit IR (parse, then re-emit), so it
    accepts exactly what {!Qir_parser} accepts; the static result of
    {!to_static} is the "register allocation" outcome the paper draws the
    analogy to (identity assignment — see {!Qmapping.Allocator} for the
    live-range-packing version). *)

type style = Static | Dynamic | Mixed | No_qubits

val pp_style : Format.formatter -> style -> unit

val detect : Llvm_ir.Ir_module.t -> style
(** Scans for allocation calls (dynamic) and constant qubit addresses
    (static). *)

val to_static : ?record_output:bool -> Llvm_ir.Ir_module.t -> Llvm_ir.Ir_module.t
val to_dynamic : ?record_output:bool -> Llvm_ir.Ir_module.t -> Llvm_ir.Ir_module.t
