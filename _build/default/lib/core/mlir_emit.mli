(** MLIR emission — the outlook of the paper's conclusion ("MLIR ... is a
    natural choice for the next step in the evolution of QIR").

    Renders circuits in a Catalyst-style quantum dialect with
    value-semantics qubits: each operation consumes and produces qubit
    SSA values, making the dataflow explicit that the LLVM form hides
    behind opaque pointers. Measurement feedback appears as [scf.if]
    regions. Output is textual MLIR; no MLIR toolchain is required or
    used. *)

val emit : ?func_name:string -> Qcircuit.Circuit.t -> string

val emit_module : ?func_name:string -> Llvm_ir.Ir_module.t -> string
(** QIR module -> circuit (Ex. 3 parser) -> MLIR text. Raises
    {!Qir_parser.Unsupported} on programs the parser rejects. *)
