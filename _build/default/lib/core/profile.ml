(* QIR profiles (Sec. II-C): restrictions on the full generality of QIR
   that ease adoption. [Base] is essentially OpenQASM-2-like straight-line
   code with static addresses; [Adaptive] adds measurement feedback and
   bounded classical computation; [Full] is unrestricted LLVM IR plus the
   quantum vocabulary. *)

type t = Base | Adaptive | Full

let name = function
  | Base -> "base_profile"
  | Adaptive -> "adaptive_profile"
  | Full -> "full"

let of_name = function
  | "base_profile" | "base" -> Some Base
  | "adaptive_profile" | "adaptive" -> Some Adaptive
  | "full" -> Some Full
  | _ -> None

(* A profile [a] admits all programs of profile [b] iff [b <= a]. *)
let compare_permissiveness a b =
  let rank = function
    | Base -> 0
    | Adaptive -> 1
    | Full -> 2
  in
  compare (rank a) (rank b)

let pp ppf p = Format.pp_print_string ppf (name p)
