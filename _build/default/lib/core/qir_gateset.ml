(* Legalization of the full gate vocabulary into the QIR base gate set
   (h, x, y, z, s, sdg, t, tdg, rx, ry, rz, cnot, cz, swap, ccx). All
   identities hold up to global phase, which is unobservable for whole
   circuits. *)

open Qcircuit

let half_pi = Float.pi /. 2.0

(* One gate on concrete qubits -> a sequence over the base set. *)
let rec legalize_gate (g : Gate.t) (qs : int list) : (Gate.t * int list) list =
  match g, qs with
  | Gate.I, _ -> []
  | ( ( Gate.H | Gate.X | Gate.Y | Gate.Z | Gate.S | Gate.Sdg | Gate.T
      | Gate.Tdg | Gate.Rx _ | Gate.Ry _ | Gate.Rz _ | Gate.Cx | Gate.Cz
      | Gate.Swap | Gate.Ccx ),
      _ ) ->
    [ (g, qs) ]
  | Gate.Sx, [ q ] -> [ (Gate.Sdg, [ q ]); (Gate.H, [ q ]); (Gate.Sdg, [ q ]) ]
  | Gate.Sxdg, [ q ] -> [ (Gate.S, [ q ]); (Gate.H, [ q ]); (Gate.S, [ q ]) ]
  | Gate.P t, [ q ] -> [ (Gate.Rz t, [ q ]) ]
  | Gate.U (theta, phi, lambda), [ q ] ->
    (* u3 = rz(phi) . ry(theta) . rz(lambda), applied right-to-left *)
    [ (Gate.Rz lambda, [ q ]); (Gate.Ry theta, [ q ]); (Gate.Rz phi, [ q ]) ]
  | Gate.Cy, [ a; b ] ->
    [ (Gate.Sdg, [ b ]); (Gate.Cx, [ a; b ]); (Gate.S, [ b ]) ]
  | Gate.Ch, [ a; b ] ->
    (* standard decomposition (qelib1) *)
    [
      (Gate.S, [ b ]); (Gate.H, [ b ]); (Gate.T, [ b ]); (Gate.Cx, [ a; b ]);
      (Gate.Tdg, [ b ]); (Gate.H, [ b ]); (Gate.Sdg, [ b ]);
    ]
  | Gate.Crz t, [ a; b ] ->
    [
      (Gate.Rz (t /. 2.0), [ b ]); (Gate.Cx, [ a; b ]);
      (Gate.Rz (-.t /. 2.0), [ b ]); (Gate.Cx, [ a; b ]);
    ]
  | Gate.Cry t, [ a; b ] ->
    [
      (Gate.Ry (t /. 2.0), [ b ]); (Gate.Cx, [ a; b ]);
      (Gate.Ry (-.t /. 2.0), [ b ]); (Gate.Cx, [ a; b ]);
    ]
  | Gate.Crx t, [ a; b ] ->
    (Gate.H, [ b ]) :: legalize_gate (Gate.Crz t) [ a; b ] @ [ (Gate.H, [ b ]) ]
  | Gate.Cp t, [ a; b ] ->
    [
      (Gate.Rz (t /. 2.0), [ a ]); (Gate.Cx, [ a; b ]);
      (Gate.Rz (-.t /. 2.0), [ b ]); (Gate.Cx, [ a; b ]);
      (Gate.Rz (t /. 2.0), [ b ]);
    ]
  | Gate.Cu (theta, phi, lambda), [ a; b ] ->
    (* cu3 decomposition (qelib1), with u1 -> rz *)
    [ (Gate.Rz ((lambda +. phi) /. 2.0), [ a ]);
      (Gate.Rz ((lambda -. phi) /. 2.0), [ b ]);
      (Gate.Cx, [ a; b ]) ]
    @ legalize_gate (Gate.U (-.theta /. 2.0, 0.0, -.((phi +. lambda) /. 2.0))) [ b ]
    @ [ (Gate.Cx, [ a; b ]) ]
    @ legalize_gate (Gate.U (theta /. 2.0, phi, 0.0)) [ b ]
  | Gate.Cswap, [ c; a; b ] ->
    [ (Gate.Cx, [ b; a ]); (Gate.Ccx, [ c; a; b ]); (Gate.Cx, [ b; a ]) ]
  | g, qs ->
    invalid_arg
      (Printf.sprintf "Qir_gateset.legalize_gate: %s on %d qubits"
         (Gate.name g) (List.length qs))

let is_base_gate g = Names.qis_of_gate g <> None || g = Gate.I

(* Rewrites a circuit so that every gate is in the base set. *)
let legalize (c : Circuit.t) : Circuit.t =
  let ops =
    List.concat_map
      (fun (op : Circuit.op) ->
        match op.Circuit.kind with
        | Circuit.Gate (g, qs) when not (is_base_gate g) ->
          List.map
            (fun (g', qs') ->
              { Circuit.kind = Circuit.Gate (g', qs'); cond = op.Circuit.cond })
            (legalize_gate g qs)
        | Circuit.Gate (Gate.I, _) -> []
        | _ -> [ op ])
      c.Circuit.ops
  in
  { c with Circuit.ops }

let _ = half_pi
