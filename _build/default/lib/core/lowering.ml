(* Lowering across profiles (Sec. III-B / Ex. 4): a QIR program using the
   full expressiveness of LLVM IR (functions, loops, classical
   computation) is flattened towards the base profile by the classical
   pass pipeline — inlining, mem2reg, constant propagation, full loop
   unrolling, dead-code elimination and CFG simplification. *)

open Llvm_ir

type error =
  | Violations of Profile_check.violation list
      (* the program still violates the target profile after lowering *)
  | Unsupported of string (* circuit extraction failed *)

let pp_error ppf = function
  | Violations vs ->
    Format.fprintf ppf "lowered module still violates the profile:@\n%a"
      (Format.pp_print_list Profile_check.pp_violation)
      vs
  | Unsupported msg -> Format.fprintf ppf "unsupported construct: %s" msg

(* Runs the classical lowering pipeline; purely structural, always
   succeeds (it just may not reach the base profile). *)
let lower_module ?max_rounds (m : Ir_module.t) : Ir_module.t =
  Passes.Pipeline.lower ?max_rounds m

(* Lowers and checks against [profile]. *)
let lower_to_profile ?max_rounds profile (m : Ir_module.t) :
    (Ir_module.t, error) result =
  let m' = lower_module ?max_rounds m in
  match Profile_check.check profile m' with
  | [] -> Ok m'
  | vs -> Error (Violations vs)

(* Full route to a circuit: lower, then parse. Accepts anything the
   pipeline can flatten into the supported control-flow shapes. *)
let lower_to_circuit ?max_rounds (m : Ir_module.t) :
    (Qcircuit.Circuit.t, error) result =
  let m' = lower_module ?max_rounds m in
  match Qir_parser.parse m' with
  | c -> Ok c
  | exception Qir_parser.Unsupported msg -> Error (Unsupported msg)

(* Lowers a dynamic/adaptive module all the way to a base-profile module
   with static addresses, via the circuit IR. Conditions in the circuit
   (measurement feedback) cannot be represented in the base profile and
   are reported as violations. *)
let lower_to_base ?max_rounds (m : Ir_module.t) : (Ir_module.t, error) result =
  match lower_to_circuit ?max_rounds m with
  | Error e -> Error e
  | Ok circuit ->
    let m' = Qir_builder.build ~addressing:`Static circuit in
    (match Profile_check.check Profile.Base m' with
    | [] -> Ok m'
    | vs -> Error (Violations vs))
