(** End-to-end execution of QIR programs: the interpreter (the [lli]
    stand-in) plus the quantum runtime over a chosen simulator backend
    (Sec. III-C). *)

type backend_kind = [ `Stabilizer | `Statevector ]

type run_result = {
  output : string;  (** recorded-output bitstring, clbit order *)
  results : (int64 * bool) list;  (** every measured result, by address *)
  interp_stats : Llvm_ir.Interp.stats;
  runtime_stats : Runtime.stats;
}

val declared_qubits : Llvm_ir.Ir_module.t -> int
(** The entry point's [required_num_qubits], or 0 (the register grows on
    demand). *)

val run :
  ?seed:int ->
  ?backend:backend_kind ->
  ?fuel:int ->
  Llvm_ir.Ir_module.t ->
  run_result
(** One shot. Raises {!Runtime.Runtime_error} or
    {!Llvm_ir.Ir_error.Exec_error} on bad programs. *)

val run_shots :
  ?seed:int ->
  ?backend:backend_kind ->
  ?fuel:int ->
  shots:int ->
  Llvm_ir.Ir_module.t ->
  (string * int) list
(** Histogram over [shots] runs, keyed by the recorded output (or, when
    the program records nothing, by all results in address order),
    sorted by key. *)

val run_circuit_via_qir :
  ?seed:int ->
  ?backend:backend_kind ->
  ?addressing:Qir.Qir_builder.addressing ->
  shots:int ->
  Qcircuit.Circuit.t ->
  (string * int) list
(** Convenience: circuit -> QIR -> histogram (the E4 architecture). *)

val pp_histogram : Format.formatter -> (string * int) list -> unit
