lib/runtime/runtime.mli: Buffer Hashtbl Llvm_ir Qcircuit Qsim
