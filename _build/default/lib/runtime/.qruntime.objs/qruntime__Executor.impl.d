lib/runtime/executor.ml: Format Func Hashtbl Interp Ir_module List Llvm_ir Option Qir Qsim Runtime String
