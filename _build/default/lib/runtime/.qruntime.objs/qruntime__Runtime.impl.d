lib/runtime/runtime.ml: Buffer Format Gate Hashtbl Int64 Interp List Llvm_ir Qcircuit Qir Qsim Ty
