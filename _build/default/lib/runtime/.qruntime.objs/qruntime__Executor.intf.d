lib/runtime/executor.mli: Format Llvm_ir Qcircuit Qir Runtime
