(** Promotion of non-escaping allocas to SSA values, inserting phi nodes
    at iterated dominance frontiers (standard SSA construction). The
    enabling pass for loop unrolling on frontend output such as the
    paper's Ex. 4, where the induction variable lives in an alloca. *)

open Llvm_ir

val promotable_allocas : Func.t -> (string, Ty.t) Hashtbl.t
(** Single-cell allocas whose address is only used by loads and stores. *)

val run : Ir_module.t -> Func.t -> Func.t * bool
val pass : Pass.func_pass
