(* Natural-loop detection via back edges in the dominator tree. *)

open Llvm_ir
module SSet = Set.Make (String)

type t = {
  header : string;
  latches : string list; (* sources of back edges into the header *)
  body : SSet.t; (* all blocks of the loop, including the header *)
}

(* Natural loop of back edge (latch -> header): header plus all blocks that
   reach the latch without passing through the header. *)
let natural_loop cfg header latch =
  let body = ref (SSet.singleton header) in
  let rec grow label =
    if not (SSet.mem label !body) then begin
      body := SSet.add label !body;
      List.iter grow (Cfg.predecessors cfg label)
    end
  in
  grow latch;
  !body

let find (f : Func.t) =
  let cfg = Cfg.of_func f in
  let dom = Dom.compute cfg in
  (* back edges: u -> v where v dominates u *)
  let back_edges =
    List.concat_map
      (fun u ->
        List.filter_map
          (fun v -> if Dom.dominates dom v u then Some (u, v) else None)
          (Cfg.successors cfg u))
      (Cfg.reachable cfg)
  in
  (* group by header, merging bodies of shared headers *)
  let tbl : (string, string list * SSet.t) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (latch, header) ->
      let body = natural_loop cfg header latch in
      match Hashtbl.find_opt tbl header with
      | Some (latches, acc) ->
        Hashtbl.replace tbl header (latch :: latches, SSet.union acc body)
      | None -> Hashtbl.replace tbl header ([ latch ], body))
    back_edges;
  Hashtbl.fold
    (fun header (latches, body) acc -> { header; latches; body } :: acc)
    tbl []

(* Exits of a loop: (from, to) edges leaving the body. *)
let exits cfg loop =
  List.concat_map
    (fun label ->
      List.filter_map
        (fun s -> if SSet.mem s loop.body then None else Some (label, s))
        (Cfg.successors cfg label))
    (SSet.elements loop.body)
