(** Local constant folding: instructions with all-constant operands are
    evaluated at compile time and their uses rewritten; iterated to a
    fixed point per function. One of the classical optimizations the
    paper credits LLVM with (Sec. II-B). Trapping divisions by a zero
    constant are never folded away. *)

open Llvm_ir

val int_of_const : Constant.t -> int64 option
val fold_icmp : Instr.icmp -> Ty.t -> int64 -> int64 -> Constant.t

val fold_instr : Instr.op -> Constant.t option
(** The single-instruction folder (also reused by SCCP). *)

val run : Ir_module.t -> Func.t -> Func.t * bool
val pass : Pass.func_pass
