(** Full unrolling of counted natural loops with statically known bounds —
    the transformation behind the paper's Ex. 4.

    Recognized shape (what [mem2reg] + [simplify-cfg] produce from typical
    frontend output): a single-latch loop whose header carries the phis
    and an [icmp] exit condition over an affine function of an induction
    phi with constant init and step. The loop body may contain arbitrary
    internal control flow but no exits besides the header's. *)

open Llvm_ir

type limits = { max_trip : int; max_instrs : int }

val default_limits : limits
(** 4096 iterations / 262144 emitted instructions. *)

val run : ?limits:limits -> Ir_module.t -> Func.t -> Func.t * bool
(** Unrolls every eligible loop (innermost first) to a fixed point. *)

val pass : Pass.func_pass
