(* Control-flow graph cleanup:
   - folds conditional branches on constants (and equal-target cond_br),
   - removes blocks unreachable from the entry (fixing phis),
   - merges a block into its unique successor when it is that successor's
     unique predecessor,
   - short-circuits empty forwarding blocks.
   Runs to a local fixed point. *)

open Llvm_ir
module SSet = Set.Make (String)

let fold_terms (f : Func.t) =
  let changed = ref false in
  let blocks =
    List.map
      (fun (b : Block.t) ->
        let term =
          match b.Block.term with
          | Instr.Cond_br (Operand.Const c, t, e) -> (
            changed := true;
            match Const_fold.int_of_const c with
            | Some n -> Instr.Br (if Int64.equal n 0L then e else t)
            | None -> b.Block.term)
          | Instr.Cond_br (_, t, e) when String.equal t e ->
            changed := true;
            Instr.Br t
          | Instr.Switch (v, d, cases) -> (
            match v.Operand.v with
            | Operand.Const c -> (
              match Const_fold.int_of_const c with
              | Some n ->
                changed := true;
                let target =
                  List.fold_left
                    (fun acc (cc, l) ->
                      match Const_fold.int_of_const cc with
                      | Some m when Int64.equal m n -> Some l
                      | _ -> acc)
                    None cases
                in
                Instr.Br (Option.value ~default:d target)
              | None -> b.Block.term)
            | Operand.Local _ -> b.Block.term)
          | t -> t
        in
        { b with Block.term })
      f.Func.blocks
  in
  (Func.replace_blocks f blocks, !changed)

(* Removes unreachable blocks and prunes phi entries whose predecessor is
   gone. *)
let prune_unreachable (f : Func.t) =
  let cfg = Cfg.of_func f in
  let reachable = SSet.of_list (Cfg.reachable cfg) in
  if SSet.cardinal reachable = List.length f.Func.blocks then (f, false)
  else begin
    let blocks =
      List.filter_map
        (fun (b : Block.t) ->
          if not (SSet.mem b.Block.label reachable) then None
          else begin
            let instrs =
              List.map
                (fun (i : Instr.t) ->
                  match i.Instr.op with
                  | Instr.Phi (ty, incoming) ->
                    let incoming =
                      List.filter (fun (_, l) -> SSet.mem l reachable) incoming
                    in
                    { i with Instr.op = Instr.Phi (ty, incoming) }
                  | _ -> i)
                b.Block.instrs
            in
            Some { b with Block.instrs }
          end)
        f.Func.blocks
    in
    (Func.replace_blocks f blocks, true)
  end

(* Replaces single-incoming phis by their value. *)
let collapse_trivial_phis (f : Func.t) =
  let subst = ref Subst.SMap.empty in
  let blocks =
    List.map
      (fun (b : Block.t) ->
        let instrs =
          List.filter_map
            (fun (i : Instr.t) ->
              match i.Instr.id, i.Instr.op with
              | Some id, Instr.Phi (_, [ (v, _) ]) ->
                subst := Subst.SMap.add id v !subst;
                None
              | _ -> Some i)
            b.Block.instrs
        in
        { b with Block.instrs })
      f.Func.blocks
  in
  if Subst.SMap.is_empty !subst then (f, false)
  else begin
    (* substitutions may chain through each other *)
    let rec resolve (o : Operand.t) =
      match o with
      | Operand.Local name -> (
        match Subst.SMap.find_opt name !subst with
        | Some o' -> resolve o'
        | None -> o)
      | Operand.Const _ -> o
    in
    let blocks =
      List.map
        (fun (b : Block.t) ->
          {
            b with
            Block.instrs =
              List.map
                (fun (i : Instr.t) ->
                  { i with Instr.op = Instr.map_operands resolve i.Instr.op })
                b.Block.instrs;
            Block.term = Instr.map_term_operands resolve b.Block.term;
          })
        blocks
    in
    (Func.replace_blocks f blocks, true)
  end

(* Merges every straight-line chain b1 -> b2 -> ... (each link: [bi]'s
   terminator is an unconditional branch to [bi+1], and [bi+1]'s unique
   predecessor is [bi]) into its head block, in one pass over the
   function. *)
let merge_chains (f : Func.t) =
  let cfg = Cfg.of_func f in
  (* [next.(b)] = the block b absorbs, when the link is mergeable *)
  let absorbable = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      match b.Block.term with
      | Instr.Br s when not (String.equal s b.Block.label) -> (
        match Cfg.predecessors cfg s with
        | [ p ]
          when String.equal p b.Block.label
               && Cfg.is_reachable cfg b.Block.label
               && not (String.equal s cfg.Cfg.entry) ->
          Hashtbl.replace absorbable b.Block.label s
        | _ -> ())
      | _ -> ())
    f.Func.blocks;
  if Hashtbl.length absorbable = 0 then (f, false)
  else begin
    (* chain heads: blocks that absorb but are not themselves absorbed *)
    let absorbed = Hashtbl.create 16 in
    Hashtbl.iter (fun _ s -> Hashtbl.replace absorbed s ()) absorbable;
    let subst = ref Subst.SMap.empty in
    let tail_of = Hashtbl.create 16 in
    (* head label -> label of the final block in its chain *)
    let merged_blocks =
      List.filter_map
        (fun (b : Block.t) ->
          if Hashtbl.mem absorbed b.Block.label then None
          else begin
            (* walk the chain from this head *)
            let rec collect rev_groups label =
              let blk = Cfg.block cfg label in
              let instrs =
                List.filter_map
                  (fun (i : Instr.t) ->
                    match i.Instr.id, i.Instr.op with
                    | Some id, Instr.Phi (_, [ (v, _) ])
                      when not (String.equal label b.Block.label) ->
                      subst := Subst.SMap.add id v !subst;
                      None
                    | _ -> Some i)
                  blk.Block.instrs
              in
              let rev_groups = instrs :: rev_groups in
              match Hashtbl.find_opt absorbable label with
              | Some s -> collect rev_groups s
              | None -> (List.concat (List.rev rev_groups), blk.Block.term, label)
            in
            let instrs, term, tail = collect [] b.Block.label in
            Hashtbl.replace tail_of tail b.Block.label;
            Some (Block.mk b.Block.label instrs term)
          end)
        f.Func.blocks
    in
    (* phi labels naming an absorbed chain tail now come from the head *)
    let rename l =
      match Hashtbl.find_opt tail_of l with
      | Some head -> head
      | None -> l
    in
    let blocks = List.map (Subst.rename_phi_labels rename) merged_blocks in
    let f = Func.replace_blocks f blocks in
    let f = Subst.func !subst f in
    (f, true)
  end

let run (m : Ir_module.t) (f : Func.t) : Func.t * bool =
  ignore m;
  let steps = [ fold_terms; prune_unreachable; collapse_trivial_phis; merge_chains ] in
  let rec fixpoint f changed =
    let f, c =
      List.fold_left
        (fun (f, c) step ->
          let f', c' = step f in
          (f', c || c'))
        (f, false) steps
    in
    if c then fixpoint f true else (f, changed)
  in
  fixpoint f false

let pass = { Pass.name = "simplify-cfg"; run }
