(** Function inlining: call sites whose callee is a defined,
    non-recursive function within the size budget are replaced by a clone
    of the callee's body. Needed to lower multi-function QIR programs
    into a single entry function (Sec. III-B). *)

open Llvm_ir

type limits = { max_callee_size : int; max_growth : int }

val default_limits : limits

val recursive_funcs : Ir_module.t -> Set.Make(String).t
(** Functions that can (transitively) reach themselves. *)

val run : ?limits:limits -> Ir_module.t -> Func.t -> Func.t * bool
val pass : Pass.func_pass
