(** Control-flow cleanup: folds constant branches, removes unreachable
    blocks (fixing phis), collapses single-incoming phis, and merges
    straight-line block chains, to a local fixed point. *)

open Llvm_ir

val run : Ir_module.t -> Func.t -> Func.t * bool
val pass : Pass.func_pass
