(** Sparse conditional constant propagation (Wegman-Zadeck), by chaotic
    iteration: values descend Top > Constant > Bottom while edge
    executability grows. Stronger than plain folding because phi nodes
    meet only over executable incoming edges. *)

open Llvm_ir

val run : Ir_module.t -> Func.t -> Func.t * bool
val pass : Pass.func_pass
