(** Dead code elimination: removes side-effect-free instructions whose
    results are unused, iterating until nothing more dies. *)

open Llvm_ir

val run : Ir_module.t -> Func.t -> Func.t * bool
val pass : Pass.func_pass
