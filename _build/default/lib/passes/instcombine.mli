(** Algebraic peephole simplifications (the "instcombine" slice of
    classical optimization): identities like x+0, x*1, x*0, x^x,
    x/1, shifts by zero, trivial selects and reflexive comparisons. *)

open Llvm_ir

val simplify : Instr.op -> Operand.t option
(** The operand the instruction reduces to, when an identity applies. *)

val run : Ir_module.t -> Func.t -> Func.t * bool
val pass : Pass.func_pass
