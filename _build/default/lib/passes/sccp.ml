(* Sparse conditional constant propagation (Wegman-Zadeck), by chaotic
   iteration over the reachable blocks: values descend the lattice
   Top > Constant > Bottom while edge executability grows, so the
   iteration terminates. Stronger than plain constant folding because phi
   nodes only meet over *executable* incoming edges, letting constants
   flow through conditionals whose outcome is known. *)

open Llvm_ir
module SMap = Map.Make (String)

module ESet = Set.Make (struct
  type t = string * string

  let compare = compare
end)

type lattice = Top | Cst of Constant.t | Bot

let meet a b =
  match a, b with
  | Top, x | x, Top -> x
  | Bot, _ | _, Bot -> Bot
  | Cst c1, Cst c2 -> if Constant.equal c1 c2 then Cst c1 else Bot

let lattice_equal a b =
  match a, b with
  | Top, Top | Bot, Bot -> true
  | Cst c1, Cst c2 -> Constant.equal c1 c2
  | (Top | Cst _ | Bot), _ -> false

type state = {
  mutable values : lattice SMap.t;
  mutable edges : ESet.t; (* executable CFG edges *)
}

let value st id = Option.value ~default:Top (SMap.find_opt id st.values)

let operand_lattice st (o : Operand.t) =
  match o with
  | Operand.Const c -> Cst c
  | Operand.Local id -> value st id

(* Re-expresses an instruction with lattice-constant operands substituted,
   then reuses the constant folder. *)
let eval_instr st (op : Instr.op) : lattice =
  match op with
  | Instr.Call _ | Instr.Load _ | Instr.Alloca _ | Instr.Gep _ -> Bot
  | Instr.Store _ -> Bot
  | Instr.Phi _ -> assert false (* handled by the caller *)
  | Instr.Freeze v -> operand_lattice st v.Operand.v
  | _ ->
    (* if any operand is Top the result stays Top (optimism); if all are
       constants, fold; otherwise Bot *)
    let operands = Instr.operands op in
    let lats =
      List.map (fun (o : Operand.typed) -> operand_lattice st o.Operand.v) operands
    in
    if List.exists (fun l -> l = Top) lats then Top
    else begin
      let subst (o : Operand.t) =
        match o with
        | Operand.Local id -> (
          match value st id with
          | Cst c -> Operand.Const c
          | Top | Bot -> o)
        | Operand.Const _ -> o
      in
      let op' = Instr.map_operands subst op in
      match Const_fold.fold_instr op' with
      | Some c -> Cst c
      | None -> Bot
    end

let run (_m : Ir_module.t) (f : Func.t) : Func.t * bool =
  let cfg = Cfg.of_func f in
  let st = { values = SMap.empty; edges = ESet.empty } in
  (* parameters are unknown *)
  List.iter
    (fun (p : Func.param) -> st.values <- SMap.add p.Func.pname Bot st.values)
    f.Func.params;
  let entry = cfg.Cfg.entry in
  let block_reachable label =
    String.equal label entry
    || ESet.exists (fun (_, t) -> String.equal t label) st.edges
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun label ->
        if block_reachable label then begin
          let b = Cfg.block cfg label in
          List.iter
            (fun (i : Instr.t) ->
              match i.Instr.id, i.Instr.op with
              | Some id, Instr.Phi (_, incoming) ->
                let lat =
                  List.fold_left
                    (fun acc (v, l) ->
                      if ESet.mem (l, label) st.edges then
                        meet acc (operand_lattice st v)
                      else acc)
                    Top incoming
                in
                if not (lattice_equal lat (value st id)) then begin
                  st.values <- SMap.add id lat st.values;
                  changed := true
                end
              | Some id, op ->
                let lat = eval_instr st op in
                if not (lattice_equal lat (value st id)) then begin
                  st.values <- SMap.add id lat st.values;
                  changed := true
                end
              | None, _ -> ())
            b.Block.instrs;
          (* mark executable out-edges *)
          let mark t =
            if not (ESet.mem (label, t) st.edges) then begin
              st.edges <- ESet.add (label, t) st.edges;
              changed := true
            end
          in
          match b.Block.term with
          | Instr.Ret _ | Instr.Unreachable -> ()
          | Instr.Br t -> mark t
          | Instr.Cond_br (c, t, e) -> (
            match operand_lattice st c with
            | Cst cc -> (
              match Const_fold.int_of_const cc with
              | Some n -> mark (if Int64.equal n 0L then e else t)
              | None ->
                mark t;
                mark e)
            | Bot ->
              mark t;
              mark e
            | Top -> ())
          | Instr.Switch (v, d, cases) -> (
            match operand_lattice st v.Operand.v with
            | Cst cc -> (
              match Const_fold.int_of_const cc with
              | Some n ->
                let target =
                  List.fold_left
                    (fun acc (c, l) ->
                      match Const_fold.int_of_const c with
                      | Some m when Int64.equal m n -> Some l
                      | _ -> acc)
                    None cases
                in
                mark (Option.value ~default:d target)
              | None ->
                mark d;
                List.iter (fun (_, l) -> mark l) cases)
            | Bot ->
              mark d;
              List.iter (fun (_, l) -> mark l) cases
            | Top -> ())
        end)
      cfg.Cfg.rpo
  done;
  (* transformation: substitute constants, drop folded instructions, fold
     branches whose condition is now constant *)
  let const_ids =
    SMap.filter_map
      (fun _ lat ->
        match lat with
        | Cst c -> Some (Operand.Const c)
        | Top | Bot -> None)
      st.values
  in
  if SMap.is_empty const_ids then (f, false)
  else begin
    let resolve (o : Operand.t) =
      match o with
      | Operand.Local id -> (
        match SMap.find_opt id const_ids with
        | Some v -> v
        | None -> o)
      | Operand.Const _ -> o
    in
    let blocks =
      List.map
        (fun (b : Block.t) ->
          let instrs =
            List.filter_map
              (fun (i : Instr.t) ->
                match i.Instr.id with
                | Some id
                  when SMap.mem id const_ids
                       && not (Instr.has_side_effect i.Instr.op) ->
                  None
                | _ ->
                  Some
                    { i with Instr.op = Instr.map_operands resolve i.Instr.op })
              b.Block.instrs
          in
          let term = Instr.map_term_operands resolve b.Block.term in
          Block.mk b.Block.label instrs term)
        f.Func.blocks
    in
    (Func.replace_blocks f blocks, true)
  end

let pass = { Pass.name = "sccp"; run }
