(* The pass framework: a pass transforms one function and reports whether
   it changed anything. Module-level passes (e.g. inlining) get the whole
   module. *)

open Llvm_ir

type func_pass = {
  name : string;
  run : Ir_module.t -> Func.t -> Func.t * bool;
}

type module_pass = { mname : string; mrun : Ir_module.t -> Ir_module.t * bool }

let of_func_pass (p : func_pass) =
  {
    mname = p.name;
    mrun =
      (fun m ->
        let changed = ref false in
        let m' =
          Ir_module.map_funcs m (fun f ->
              if Func.is_declaration f then f
              else begin
                let f', c = p.run m f in
                if c then changed := true;
                f'
              end)
        in
        (m', !changed));
  }

(* Applies the passes in order, repeating the whole sequence until a round
   changes nothing (or [max_rounds] is reached). *)
let run_until_fixpoint ?(max_rounds = 8) passes m =
  let rec go round m =
    if round >= max_rounds then m
    else begin
      let m, changed =
        List.fold_left
          (fun (m, changed) p ->
            let m', c = p.mrun m in
            (m', changed || c))
          (m, false) passes
      in
      if changed then go (round + 1) m else m
    end
  in
  go 0 m

let run_once passes m =
  List.fold_left (fun m p -> fst (p.mrun m)) m passes
