(** Local common-subexpression elimination: within each basic block,
    pure instructions structurally identical to an earlier one are
    replaced by the earlier result. Loads and calls are never reused
    (stores / quantum calls may intervene). *)

open Llvm_ir

val run : Ir_module.t -> Func.t -> Func.t * bool
val pass : Pass.func_pass
