(* Local common-subexpression elimination: within each basic block, pure
   instructions that are structurally identical to an earlier one are
   replaced by the earlier result. Loads are not CSE'd (stores and
   opaque calls may intervene); calls are never pure here, since quantum
   instructions are calls. *)

open Llvm_ir

(* A pure instruction's structural key, or None when not eligible. *)
let key_of (op : Instr.op) : string option =
  match op with
  | Instr.Binop _ | Instr.Fbinop _ | Instr.Icmp _ | Instr.Fcmp _
  | Instr.Cast _ | Instr.Select _ | Instr.Gep _ | Instr.Freeze _ ->
    (* the printed form without the result name is a canonical key *)
    Some (Printer.instr_to_string (Instr.mk op))
  | Instr.Alloca _ | Instr.Load _ | Instr.Store _ | Instr.Call _
  | Instr.Phi _ ->
    None

let run (_m : Ir_module.t) (f : Func.t) : Func.t * bool =
  let changed = ref false in
  let blocks =
    List.map
      (fun (b : Block.t) ->
        let seen : (string, string) Hashtbl.t = Hashtbl.create 16 in
        let subst = ref Subst.SMap.empty in
        let resolve (o : Operand.t) =
          match o with
          | Operand.Local name -> (
            match Subst.SMap.find_opt name !subst with
            | Some o' -> o'
            | None -> o)
          | Operand.Const _ -> o
        in
        let instrs =
          List.filter_map
            (fun (i : Instr.t) ->
              let op = Instr.map_operands resolve i.Instr.op in
              match i.Instr.id, key_of op with
              | Some id, Some key -> (
                match Hashtbl.find_opt seen key with
                | Some earlier ->
                  changed := true;
                  subst := Subst.SMap.add id (Operand.Local earlier) !subst;
                  None
                | None ->
                  Hashtbl.replace seen key id;
                  Some { i with Instr.op })
              | _ -> Some { i with Instr.op })
            b.Block.instrs
        in
        let term = Instr.map_term_operands resolve b.Block.term in
        Block.mk b.Block.label instrs term)
      f.Func.blocks
  in
  (Func.replace_blocks f blocks, !changed)

let pass = { Pass.name = "cse"; run }
