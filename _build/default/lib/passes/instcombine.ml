(* Algebraic peephole simplifications on single instructions — the
   "instcombine" slice of classical optimization:

     x + 0, 0 + x, x - 0, x * 1, 1 * x  ->  x
     x * 0, 0 * x, x & 0, 0 & x         ->  0
     x & x, x | x, x | 0, 0 | x         ->  x (or x for or-0)
     x ^ x, x - x                       ->  0
     x ^ 0, 0 ^ x                       ->  x
     x / 1, x << 0, x >> 0              ->  x
     select c, v, v                     ->  v
     icmp eq/ne x, x                    ->  true/false  *)

open Llvm_ir

let is_zero (o : Operand.t) =
  match o with
  | Operand.Const (Constant.Int 0L) | Operand.Const (Constant.Bool false) ->
    true
  | _ -> false

let is_one (o : Operand.t) =
  match o with
  | Operand.Const (Constant.Int 1L) | Operand.Const (Constant.Bool true) ->
    true
  | _ -> false

let zero_of ty =
  if Ty.equal ty Ty.I1 then Operand.Const (Constant.Bool false)
  else Operand.Const (Constant.Int 0L)

(* [simplify op] returns the operand the instruction reduces to, if any. *)
let simplify (op : Instr.op) : Operand.t option =
  match op with
  | Instr.Binop (Instr.Add, _, x, y) ->
    if is_zero y then Some x else if is_zero x then Some y else None
  | Instr.Binop (Instr.Sub, ty, x, y) ->
    if is_zero y then Some x
    else if Operand.equal x y && not (Operand.is_const (Operand.typed ty x))
    then Some (zero_of ty)
    else None
  | Instr.Binop (Instr.Mul, ty, x, y) ->
    if is_one y then Some x
    else if is_one x then Some y
    else if is_zero x || is_zero y then Some (zero_of ty)
    else None
  | Instr.Binop ((Instr.Sdiv | Instr.Udiv), _, x, y) ->
    if is_one y then Some x else None
  | Instr.Binop (Instr.And, ty, x, y) ->
    if is_zero x || is_zero y then Some (zero_of ty)
    else if Operand.equal x y then Some x
    else None
  | Instr.Binop (Instr.Or, _, x, y) ->
    if is_zero y then Some x
    else if is_zero x then Some y
    else if Operand.equal x y then Some x
    else None
  | Instr.Binop (Instr.Xor, ty, x, y) ->
    if is_zero y then Some x
    else if is_zero x then Some y
    else if Operand.equal x y then Some (zero_of ty)
    else None
  | Instr.Binop ((Instr.Shl | Instr.Lshr | Instr.Ashr), _, x, y) ->
    if is_zero y then Some x else None
  | Instr.Select (_, a, b) when Operand.equal a.Operand.v b.Operand.v ->
    Some a.Operand.v
  | Instr.Icmp (Instr.Ieq, _, x, y) when Operand.equal x y ->
    (* undef-free in our subset: x == x holds *)
    Some (Operand.Const (Constant.Bool true))
  | Instr.Icmp (Instr.Ine, _, x, y) when Operand.equal x y ->
    Some (Operand.Const (Constant.Bool false))
  | _ -> None

let run (_m : Ir_module.t) (f : Func.t) : Func.t * bool =
  let changed = ref false in
  let rec fixpoint f =
    let subst = ref Subst.SMap.empty in
    let blocks =
      List.map
        (fun (b : Block.t) ->
          let instrs =
            List.filter_map
              (fun (i : Instr.t) ->
                match i.Instr.id with
                | Some id -> (
                  match simplify i.Instr.op with
                  | Some replacement ->
                    subst := Subst.SMap.add id replacement !subst;
                    None
                  | None -> Some i)
                | None -> Some i)
              b.Block.instrs
          in
          { b with Block.instrs })
        f.Func.blocks
    in
    if Subst.SMap.is_empty !subst then f
    else begin
      changed := true;
      (* replacements may chain (x -> y while y -> z was also simplified
         this round): resolve transitively before substituting *)
      let rec resolve (o : Operand.t) =
        match o with
        | Operand.Local name -> (
          match Subst.SMap.find_opt name !subst with
          | Some o' -> resolve o'
          | None -> o)
        | Operand.Const _ -> o
      in
      let resolved = Subst.SMap.map resolve !subst in
      fixpoint (Subst.func resolved (Func.replace_blocks f blocks))
    end
  in
  let f = fixpoint f in
  (f, !changed)

let pass = { Pass.name = "instcombine"; run }
