(** Natural-loop detection via back edges in the dominator tree. *)

open Llvm_ir
module SSet : Set.S with type elt = string

type t = {
  header : string;
  latches : string list;  (** sources of back edges into the header *)
  body : SSet.t;  (** all blocks of the loop, including the header *)
}

val natural_loop : Cfg.t -> string -> string -> SSet.t
(** [natural_loop cfg header latch]: the header plus every block reaching
    the latch without passing through the header. *)

val find : Func.t -> t list
(** Loops grouped by header (bodies of shared headers merged). *)

val exits : Cfg.t -> t -> (string * string) list
(** Edges leaving the loop body. *)
