(* Dead code elimination: removes instructions whose results are unused
   and which have no side effects, iterating until nothing more dies. *)

open Llvm_ir
module SSet = Set.Make (String)

let used_locals (f : Func.t) =
  let used = ref SSet.empty in
  let add (o : Operand.t) =
    match o with
    | Operand.Local name -> used := SSet.add name !used
    | Operand.Const _ -> ()
  in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          List.iter
            (fun (o : Operand.typed) -> add o.Operand.v)
            (Instr.operands i.Instr.op))
        b.Block.instrs;
      List.iter
        (fun (o : Operand.typed) -> add o.Operand.v)
        (Instr.term_operands b.Block.term))
    f.Func.blocks;
  !used

let run (_m : Ir_module.t) (f : Func.t) : Func.t * bool =
  let changed = ref false in
  let rec fixpoint f =
    let used = used_locals f in
    let died = ref false in
    let blocks =
      List.map
        (fun (b : Block.t) ->
          let instrs =
            List.filter
              (fun (i : Instr.t) ->
                let keep =
                  Instr.has_side_effect i.Instr.op
                  ||
                  match i.Instr.id with
                  | Some id -> SSet.mem id used
                  | None -> true
                in
                if not keep then died := true;
                keep)
              b.Block.instrs
          in
          { b with Block.instrs })
        f.Func.blocks
    in
    let f = Func.replace_blocks f blocks in
    if !died then begin
      changed := true;
      fixpoint f
    end
    else f
  in
  let f = fixpoint f in
  (f, !changed)

let pass = { Pass.name = "dce"; run }
