(* Promotes allocas whose address never escapes into SSA values, inserting
   phi nodes at iterated dominance frontiers (the standard SSA-construction
   algorithm). This is the enabling pass for loop unrolling on frontend
   output such as the paper's Ex. 4, where the induction variable lives in
   an alloca slot. *)

open Llvm_ir
module SMap = Map.Make (String)
module SSet = Set.Make (String)

(* Allocas promotable to SSA: every use is a [load] from or a [store] to
   the slot; any other appearance of the address escapes it. *)
let promotable_allocas (f : Func.t) =
  let allocas = Hashtbl.create 16 in
  Func.iter_instrs f (fun i ->
      match i.Instr.id, i.Instr.op with
      | Some id, Instr.Alloca ty ->
        if Ty.size_in_cells ty = 1 then Hashtbl.replace allocas id ty
      | _ -> ());
  let escape name = Hashtbl.remove allocas name in
  let scan_operand ~allowed (o : Operand.t) =
    match o with
    | Operand.Local name when Hashtbl.mem allocas name && not allowed ->
      escape name
    | Operand.Local _ | Operand.Const _ -> ()
  in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Load (_, _ptr) -> () (* pointer use is allowed *)
          | Instr.Store (v, _ptr) ->
            (* storing the address itself escapes it *)
            scan_operand ~allowed:false v.Operand.v
          | op ->
            List.iter
              (fun (o : Operand.typed) -> scan_operand ~allowed:false o.Operand.v)
              (Instr.operands op))
        b.Block.instrs;
      List.iter
        (fun (o : Operand.typed) -> scan_operand ~allowed:false o.Operand.v)
        (Instr.term_operands b.Block.term))
    f.Func.blocks;
  allocas

(* Substitutions may chain (a load feeding another alloca's store): chase
   until a fixed point. The chain is acyclic because renaming processes
   definitions in dominance order. *)
let rec resolve_final subst (o : Operand.t) =
  match o with
  | Operand.Local name -> (
    match Hashtbl.find_opt subst name with
    | Some o' -> resolve_final subst o'
    | None -> o)
  | Operand.Const _ -> o

let run (_m : Ir_module.t) (f : Func.t) : Func.t * bool =
  let allocas = promotable_allocas f in
  if Hashtbl.length allocas = 0 then (f, false)
  else begin
    let cfg = Cfg.of_func f in
    let dom = Dom.compute cfg in
    let gen = Func.Fresh.of_func f in
    (* 1. blocks containing a store to each alloca *)
    let def_blocks = Hashtbl.create 16 in
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            match i.Instr.op with
            | Instr.Store (_, Operand.Local a) when Hashtbl.mem allocas a ->
              let cur =
                Option.value ~default:SSet.empty
                  (Hashtbl.find_opt def_blocks a)
              in
              Hashtbl.replace def_blocks a (SSet.add b.Block.label cur)
            | _ -> ())
          b.Block.instrs)
      f.Func.blocks;
    (* 2. phi placement at iterated dominance frontiers *)
    (* phis : block label -> (phi id, alloca, ty) list *)
    let phis : (string, (string * string * Ty.t) list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let phi_of : (string, string * Ty.t) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun a ty ->
        let defs = Option.value ~default:SSet.empty (Hashtbl.find_opt def_blocks a) in
        let placed = ref SSet.empty in
        let work = ref (SSet.elements defs) in
        let rec go () =
          match !work with
          | [] -> ()
          | b :: rest ->
            work := rest;
            List.iter
              (fun d ->
                if Cfg.is_reachable cfg d && not (SSet.mem d !placed) then begin
                  placed := SSet.add d !placed;
                  let id = Func.Fresh.next gen (a ^ ".phi") in
                  let cell =
                    match Hashtbl.find_opt phis d with
                    | Some cell -> cell
                    | None ->
                      let cell = ref [] in
                      Hashtbl.replace phis d cell;
                      cell
                  in
                  cell := (id, a, ty) :: !cell;
                  Hashtbl.replace phi_of id (a, ty);
                  if not (SSet.mem d defs) then work := d :: !work
                end)
              (Dom.frontier dom b);
            go ()
        in
        go ())
      allocas;
    (* 3. renaming over the dominator tree *)
    let subst : (string, Operand.t) Hashtbl.t = Hashtbl.create 64 in
    let resolve (o : Operand.t) =
      match o with
      | Operand.Local name -> (
        match Hashtbl.find_opt subst name with
        | Some o' -> o'
        | None -> o)
      | Operand.Const _ -> o
    in
    (* collected incoming edges for each inserted phi *)
    let phi_incoming : (string, (Operand.t * string) list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let incoming_cell id =
      match Hashtbl.find_opt phi_incoming id with
      | Some c -> c
      | None ->
        let c = ref [] in
        Hashtbl.replace phi_incoming id c;
        c
    in
    let new_instrs : (string, Instr.t list) Hashtbl.t = Hashtbl.create 16 in
    let new_terms : (string, Instr.term) Hashtbl.t = Hashtbl.create 16 in
    let rec rename label (stacks : Operand.t SMap.t) =
      let b = Cfg.block cfg label in
      let stacks = ref stacks in
      (* our phis define new values for their allocas on entry *)
      (match Hashtbl.find_opt phis label with
      | Some cell ->
        List.iter
          (fun (id, a, _ty) -> stacks := SMap.add a (Operand.Local id) !stacks)
          !cell
      | None -> ());
      let kept =
        List.filter_map
          (fun (i : Instr.t) ->
            match i.Instr.id, i.Instr.op with
            | Some id, Instr.Alloca _ when Hashtbl.mem allocas id -> None
            | Some id, Instr.Load (_, Operand.Local a) when Hashtbl.mem allocas a
              ->
              let v =
                match SMap.find_opt a !stacks with
                | Some v -> v
                | None -> Operand.Const Constant.Undef
              in
              Hashtbl.replace subst id v;
              None
            | _, Instr.Store (v, Operand.Local a) when Hashtbl.mem allocas a ->
              stacks := SMap.add a (resolve v.Operand.v) !stacks;
              None
            | _, op ->
              Some { i with Instr.op = Instr.map_operands resolve op })
          b.Block.instrs
      in
      let term = Instr.map_term_operands resolve b.Block.term in
      Hashtbl.replace new_instrs label kept;
      Hashtbl.replace new_terms label term;
      (* feed the phis of reachable successors *)
      List.iter
        (fun s ->
          match Hashtbl.find_opt phis s with
          | Some cell ->
            List.iter
              (fun (id, a, _ty) ->
                let v =
                  match SMap.find_opt a !stacks with
                  | Some v -> v
                  | None -> Operand.Const Constant.Undef
                in
                let c = incoming_cell id in
                c := (v, label) :: !c)
              !cell
          | None -> ())
        (Cfg.successors cfg label);
      List.iter (fun child -> rename child !stacks) (Dom.children dom label)
    in
    rename cfg.Cfg.entry SMap.empty;
    (* 4. rebuild: inserted phis first, then surviving instructions; the
       load-substitution map is applied to phi incoming values too. *)
    let blocks =
      List.filter_map
        (fun (b : Block.t) ->
          if not (Cfg.is_reachable cfg b.Block.label) then
            (* unreachable blocks keep their instructions but still get the
               substitution applied where it is defined *)
            Some (Subst.block (Subst.SMap.of_seq (Hashtbl.to_seq subst)) b)
          else begin
            let inserted =
              match Hashtbl.find_opt phis b.Block.label with
              | Some cell ->
                List.rev_map
                  (fun (id, _a, ty) ->
                    let incoming =
                      match Hashtbl.find_opt phi_incoming id with
                      | Some c -> List.rev !c
                      | None -> []
                    in
                    (* any predecessor that never fed the phi (e.g. one the
                       renaming saw before the value was defined) gets undef *)
                    let preds = Cfg.predecessors cfg b.Block.label in
                    let incoming =
                      List.map
                        (fun p ->
                          match List.assoc_opt p (List.map (fun (v, l) -> (l, v)) incoming) with
                          | Some v -> (resolve_final subst v, p)
                          | None -> (Operand.Const Constant.Undef, p))
                        preds
                    in
                    Instr.mk ~id (Instr.Phi (ty, incoming)))
                  !cell
              | None -> []
            in
            let instrs =
              List.map
                (fun (i : Instr.t) ->
                  { i with Instr.op = Instr.map_operands (resolve_final subst) i.Instr.op })
                (Hashtbl.find new_instrs b.Block.label)
            in
            let term = Hashtbl.find new_terms b.Block.label in
            let term = Instr.map_term_operands (resolve_final subst) term in
            Some (Block.mk b.Block.label (inserted @ instrs) term)
          end)
        f.Func.blocks
    in
    (Func.replace_blocks f blocks, true)
  end

let pass = { Pass.name = "mem2reg"; run }
