(* Full unrolling of counted natural loops with statically known bounds —
   the transformation behind the paper's Ex. 4 ("it is straight forward to
   unroll any loops with statically known bounds in the QIR program").

   Recognized shape (what [mem2reg] + [simplify_cfg] produce from typical
   frontend output):

     preheader:  br %header
     header:     %iv = phi [init, %preheader], [%next, %latch]
                 ... (more loop-carried phis, straight-line code)
                 %c = icmp pred (%iv | %next), const
                 br i1 %c, label %inside, label %exit   ; or swapped
     body*:      arbitrary control flow within the loop,
                 %next = add/sub %iv, const somewhere inside
     latch:      br %header                             ; single latch

   The loop is replaced by [trip] clones of its blocks chained in
   sequence; header phis are substituted by their per-iteration values,
   and uses of header-defined values after the loop are redirected to the
   final clone. *)

open Llvm_ir
module SSet = Loop.SSet
module SMap = Map.Make (String)

type limits = { max_trip : int; max_instrs : int }

let default_limits = { max_trip = 4096; max_instrs = 262144 }

type counted_loop = {
  loop : Loop.t;
  latch : string;
  inside : string; (* header successor that stays in the loop *)
  exit : string; (* header successor that leaves the loop *)
  cond_is_continue : bool; (* true: cond true -> inside *)
  trip : int;
  (* header phis: id, ty, init value, backedge value *)
  header_phis : (string * Ty.t * Operand.t * Operand.t) list;
}

let find_instr_in_loop (f : Func.t) (body : SSet.t) id =
  List.find_map
    (fun (b : Block.t) ->
      if SSet.mem b.Block.label body then
        List.find_map
          (fun (i : Instr.t) ->
            match i.Instr.id with
            | Some id' when String.equal id id' -> Some i.Instr.op
            | _ -> None)
          b.Block.instrs
      else None)
    f.Func.blocks

(* Evaluates the compare scrutinee as an affine function of the induction
   phi: returns [Some (mult_of_iv, offset)] so that value = iv + offset
   when mult is 1. We only need iv and iv+step. *)
let rec affine_of f body phi_id (o : Operand.t) =
  match o with
  | Operand.Const c -> Option.map (fun n -> (0L, n)) (Const_fold.int_of_const c)
  | Operand.Local id when String.equal id phi_id -> Some (1L, 0L)
  | Operand.Local id -> (
    match find_instr_in_loop f body id with
    | Some (Instr.Binop (Instr.Add, _, x, y)) -> (
      match affine_of f body phi_id x, affine_of f body phi_id y with
      | Some (mx, ox), Some (my, oy) -> Some (Int64.add mx my, Int64.add ox oy)
      | _ -> None)
    | Some (Instr.Binop (Instr.Sub, _, x, y)) -> (
      match affine_of f body phi_id x, affine_of f body phi_id y with
      | Some (mx, ox), Some (my, oy) -> Some (Int64.sub mx my, Int64.sub ox oy)
      | _ -> None)
    | Some (Instr.Cast ((Instr.Sext | Instr.Zext), src, _)) ->
      (* width changes are benign for the small trip counts we accept *)
      affine_of f body phi_id src.Operand.v
    | _ -> None)

let analyze (f : Func.t) cfg (loop : Loop.t) limits : counted_loop option =
  match loop.Loop.latches with
  | [ latch ] -> (
    let header = Cfg.block cfg loop.Loop.header in
    (* single exit, from the header *)
    match Loop.exits cfg loop with
    | [ (from, exit) ] when String.equal from loop.Loop.header -> (
      match header.Block.term with
      | Instr.Cond_br (Operand.Local cond_id, t, e) -> (
        let inside, cond_is_continue =
          if String.equal t exit then (e, false) else (t, true)
        in
        (* header phis: exactly one incoming from the latch *)
        let phis_ok = ref true in
        let header_phis =
          List.filter_map
            (fun (i : Instr.t) ->
              match i.Instr.id, i.Instr.op with
              | Some id, Instr.Phi (ty, incoming) -> (
                let from_latch, from_outside =
                  List.partition (fun (_, l) -> String.equal l latch) incoming
                in
                match from_latch, from_outside with
                | [ (next, _) ], [ (init, _) ] -> Some (id, ty, init, next)
                | _ ->
                  phis_ok := false;
                  None)
              | _ -> None)
            header.Block.instrs
        in
        if not !phis_ok then None
        else
          (* the condition: icmp on an affine function of some header phi *)
          let cond_op =
            List.find_map
              (fun (i : Instr.t) ->
                match i.Instr.id with
                | Some id when String.equal id cond_id -> Some i.Instr.op
                | _ -> None)
              header.Block.instrs
          in
          match cond_op with
          | Some (Instr.Icmp (pred, ty, lhs, rhs)) ->
            (* try each induction-candidate phi *)
            let try_phi (phi_id, _ty, init, next) =
              match
                ( Const_fold.int_of_const
                    (match init with
                    | Operand.Const c -> c
                    | Operand.Local _ -> Constant.Undef),
                  affine_of f loop.Loop.body phi_id next )
              with
              | Some init_v, Some (1L, step) when not (Int64.equal step 0L) ->
                let lhs_aff = affine_of f loop.Loop.body phi_id lhs in
                let rhs_aff = affine_of f loop.Loop.body phi_id rhs in
                (match lhs_aff, rhs_aff with
                | Some (ml, ol), Some (mr, rr) ->
                  (* simulate header evaluations *)
                  let eval iv (m, o) = Int64.add (Int64.mul m iv) o in
                  let continue iv =
                    let x = eval iv (ml, ol) and y = eval iv (mr, rr) in
                    let c =
                      match
                        Const_fold.fold_icmp pred ty x y
                      with
                      | Constant.Bool b -> b
                      | _ -> false
                    in
                    if cond_is_continue then c else not c
                  in
                  let rec count iv k =
                    if k > limits.max_trip then None
                    else if continue iv then count (Int64.add iv step) (k + 1)
                    else Some k
                  in
                  count init_v 0
                | _ -> None)
              | _ -> None
            in
            let trip = List.find_map try_phi header_phis in
            Option.bind trip (fun trip ->
                let loop_size =
                  List.fold_left
                    (fun acc (b : Block.t) ->
                      if SSet.mem b.Block.label loop.Loop.body then
                        acc + List.length b.Block.instrs + 1
                      else acc)
                    0 f.Func.blocks
                in
                if trip * loop_size > limits.max_instrs then None
                else
                  Some
                    {
                      loop;
                      latch;
                      inside;
                      exit;
                      cond_is_continue;
                      trip;
                      header_phis;
                    })
          | _ -> None)
      | _ -> None)
    | _ -> None)
  | _ -> None

(* Clones the loop [cl.trip] times. Returns the rewritten function. *)
let apply (f : Func.t) (cl : counted_loop) : Func.t =
  let gen = Func.Fresh.of_func f in
  let body_labels = cl.loop.Loop.body in
  let header = cl.loop.Loop.header in
  let loop_blocks =
    List.filter
      (fun (b : Block.t) -> SSet.mem b.Block.label body_labels)
      f.Func.blocks
  in
  (* env: header phi id -> operand for the current iteration *)
  let init_env =
    List.fold_left
      (fun acc (id, _ty, init, _next) -> SMap.add id init acc)
      SMap.empty cl.header_phis
  in
  (* final substitution applied to blocks outside the loop *)
  let outer_subst = ref SMap.empty in
  let all_new_blocks = ref [] in
  let label_of_iter = Hashtbl.create 64 in
  (* pre-assign labels for every (block, iteration) including the final
     header-only iteration *)
  for k = 0 to cl.trip do
    List.iter
      (fun (b : Block.t) ->
        if k < cl.trip || String.equal b.Block.label header then
          Hashtbl.replace label_of_iter (b.Block.label, k)
            (Func.Fresh.next gen (Printf.sprintf "%s.it%d" b.Block.label k)))
      loop_blocks
  done;
  let clone_iteration k env =
    (* value renaming for this iteration: header phis -> env values;
       instruction results -> fresh names *)
    let vmap = ref env in
    let fresh_ids = Hashtbl.create 32 in
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            match i.Instr.id with
            | Some id when not (SMap.mem id !vmap) ->
              let id' = Func.Fresh.next gen (Printf.sprintf "%s.it%d" id k) in
              Hashtbl.replace fresh_ids id id'
            | _ -> ())
          b.Block.instrs)
      loop_blocks;
    let rename_value (o : Operand.t) =
      match o with
      | Operand.Local id -> (
        match SMap.find_opt id !vmap with
        | Some v -> v
        | None -> (
          match Hashtbl.find_opt fresh_ids id with
          | Some id' -> Operand.Local id'
          | None -> o (* defined outside the loop *)))
      | Operand.Const _ -> o
    in
    let rename_label l =
      if String.equal l header then
        (* a branch back to the header enters the next iteration *)
        Hashtbl.find label_of_iter (header, k + 1)
      else
        match Hashtbl.find_opt label_of_iter (l, k) with
        | Some l' -> l'
        | None -> l (* the exit block *)
    in
    let clone_block (b : Block.t) ~is_header ~final =
      let label = Hashtbl.find label_of_iter (b.Block.label, k) in
      let instrs =
        List.filter_map
          (fun (i : Instr.t) ->
            match i.Instr.id, i.Instr.op with
            | Some id, Instr.Phi _ when is_header && SMap.mem id !vmap ->
              None (* header phi: substituted away *)
            | id, Instr.Phi (ty, incoming) ->
              (* body phi: rename values and incoming labels; the entry
                 from the header keeps this iteration's header label *)
              let incoming =
                List.map
                  (fun (v, l) ->
                    let l' =
                      match Hashtbl.find_opt label_of_iter (l, k) with
                      | Some l' -> l'
                      | None -> l
                    in
                    (rename_value v, l'))
                  incoming
              in
              let id' = Option.map (fun i -> Hashtbl.find fresh_ids i) id in
              Some { Instr.id = id'; Instr.op = Instr.Phi (ty, incoming) }
            | id, op ->
              let id' = Option.map (fun i ->
                  match Hashtbl.find_opt fresh_ids i with
                  | Some x -> x
                  | None -> i) id
              in
              Some { Instr.id = id'; Instr.op = Instr.map_operands rename_value op })
          b.Block.instrs
      in
      let term =
        if is_header then
          if final then Instr.Br cl.exit
          else Instr.Br (rename_label cl.inside)
        else
          match b.Block.term with
          | Instr.Ret _ as t -> t
          | Instr.Br l -> Instr.Br (rename_label l)
          | Instr.Cond_br (c, t, e) ->
            Instr.Cond_br (rename_value c, rename_label t, rename_label e)
          | Instr.Switch (v, d, cases) ->
            Instr.Switch
              ( { v with Operand.v = rename_value v.Operand.v },
                rename_label d,
                List.map (fun (c, l) -> (c, rename_label l)) cases )
          | Instr.Unreachable -> Instr.Unreachable
      in
      Block.mk label instrs term
    in
    List.iter
      (fun (b : Block.t) ->
        let is_header = String.equal b.Block.label header in
        let final = k = cl.trip in
        if (not final) || is_header then
          all_new_blocks := clone_block b ~is_header ~final :: !all_new_blocks)
      loop_blocks;
    (* next iteration's env: evaluate the backedge values in this clone *)
    let next_env =
      List.fold_left
        (fun acc (id, _ty, _init, next) -> SMap.add id (rename_value next) acc)
        SMap.empty cl.header_phis
    in
    (* record the outer substitution from the final header clone *)
    if k = cl.trip then begin
      SMap.iter (fun id v -> outer_subst := SMap.add id v !outer_subst) env;
      List.iter
        (fun (b : Block.t) ->
          if String.equal b.Block.label header then
            List.iter
              (fun (i : Instr.t) ->
                match i.Instr.id with
                | Some id when Hashtbl.mem fresh_ids id ->
                  outer_subst :=
                    SMap.add id
                      (Operand.Local (Hashtbl.find fresh_ids id))
                      !outer_subst
                | _ -> ())
              b.Block.instrs)
        loop_blocks
    end;
    next_env
  in
  let env = ref init_env in
  for k = 0 to cl.trip do
    env := clone_iteration k !env
  done;
  let entry_clone = Hashtbl.find label_of_iter (header, 0) in
  let final_header = Hashtbl.find label_of_iter (header, cl.trip) in
  (* stitch: outside blocks branching to the header now branch to the first
     clone; phi labels in the exit block referring to the header come from
     the final clone; header-defined values used outside are substituted *)
  let rename l = if String.equal l header then entry_clone else l in
  let subst_fn (o : Operand.t) =
    match o with
    | Operand.Local id -> (
      match SMap.find_opt id !outer_subst with
      | Some v -> v
      | None -> o)
    | Operand.Const _ -> o
  in
  let outside =
    List.filter_map
      (fun (b : Block.t) ->
        if SSet.mem b.Block.label body_labels then None
        else begin
          let b =
            Subst.rename_phi_labels
              (fun l -> if String.equal l header then final_header else l)
              b
          in
          let term =
            match b.Block.term with
            | Instr.Ret _ as t -> t
            | Instr.Br l -> Instr.Br (rename l)
            | Instr.Cond_br (c, t, e) -> Instr.Cond_br (c, rename t, rename e)
            | Instr.Switch (v, d, cases) ->
              Instr.Switch
                (v, rename d, List.map (fun (c, l) -> (c, rename l)) cases)
            | Instr.Unreachable -> Instr.Unreachable
          in
          let b = { b with Block.term } in
          let b =
            {
              b with
              Block.instrs =
                List.map
                  (fun (i : Instr.t) ->
                    { i with Instr.op = Instr.map_operands subst_fn i.Instr.op })
                  b.Block.instrs;
              Block.term = Instr.map_term_operands subst_fn b.Block.term;
            }
          in
          Some b
        end)
      f.Func.blocks
  in
  let cloned = List.rev !all_new_blocks in
  let blocks = outside @ cloned in
  (* the entry block must stay first *)
  let entry_label = (Func.entry f).Block.label in
  let entry_blocks, others =
    List.partition (fun (b : Block.t) -> String.equal b.Block.label entry_label) blocks
  in
  Func.replace_blocks f (entry_blocks @ others)

let run ?(limits = default_limits) (_m : Ir_module.t) (f : Func.t) :
    Func.t * bool =
  let changed = ref false in
  let rec go f fuel =
    if fuel = 0 then f
    else begin
      let cfg = Cfg.of_func f in
      let loops = Loop.find f in
      (* innermost first: smaller bodies first *)
      let loops =
        List.sort
          (fun a b -> compare (SSet.cardinal a.Loop.body) (SSet.cardinal b.Loop.body))
          loops
      in
      match List.find_map (fun l -> analyze f cfg l limits) loops with
      | Some cl ->
        changed := true;
        go (apply f cl) (fuel - 1)
      | None -> f
    end
  in
  let f = go f 64 in
  (f, !changed)

let pass = { Pass.name = "loop-unroll"; run = (fun m f -> run m f) }
