lib/passes/unroll.ml: Block Cfg Const_fold Constant Func Hashtbl Instr Int64 Ir_module List Llvm_ir Loop Map Operand Option Pass Printf String Subst Ty
