lib/passes/inline.mli: Func Ir_module Llvm_ir Pass Set String
