lib/passes/inline.ml: Block Constant Func Hashtbl Instr Ir_module List Llvm_ir Map Operand Option Pass Set String Subst
