lib/passes/cse.ml: Block Func Hashtbl Instr Ir_module List Llvm_ir Operand Pass Printer Subst
