lib/passes/sccp.ml: Block Cfg Const_fold Constant Func Instr Int64 Ir_module List Llvm_ir Map Operand Option Pass Set String
