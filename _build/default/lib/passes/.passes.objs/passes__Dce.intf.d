lib/passes/dce.mli: Func Ir_module Llvm_ir Pass
