lib/passes/simplify_cfg.mli: Func Ir_module Llvm_ir Pass
