lib/passes/cse.mli: Func Ir_module Llvm_ir Pass
