lib/passes/pipeline.mli: Ir_module Llvm_ir Pass
