lib/passes/loop.mli: Cfg Func Llvm_ir Set
