lib/passes/sccp.mli: Func Ir_module Llvm_ir Pass
