lib/passes/pass.ml: Func Ir_module List Llvm_ir
