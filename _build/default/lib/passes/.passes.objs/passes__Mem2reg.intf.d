lib/passes/mem2reg.mli: Func Hashtbl Ir_module Llvm_ir Pass Ty
