lib/passes/unroll.mli: Func Ir_module Llvm_ir Pass
