lib/passes/pass.mli: Func Ir_module Llvm_ir
