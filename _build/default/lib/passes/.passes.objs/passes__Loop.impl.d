lib/passes/loop.ml: Cfg Dom Func Hashtbl List Llvm_ir Set String
