lib/passes/instcombine.ml: Block Constant Func Instr Ir_module List Llvm_ir Operand Pass Subst Ty
