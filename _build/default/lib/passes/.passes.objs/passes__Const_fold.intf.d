lib/passes/const_fold.mli: Constant Func Instr Ir_module Llvm_ir Pass Ty
