lib/passes/simplify_cfg.ml: Block Cfg Const_fold Func Hashtbl Instr Int64 Ir_module List Llvm_ir Operand Option Pass Set String Subst
