lib/passes/dce.ml: Block Func Instr Ir_module List Llvm_ir Operand Pass Set String
