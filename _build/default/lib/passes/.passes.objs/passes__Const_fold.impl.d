lib/passes/const_fold.ml: Block Constant Float Func Instr Int64 Interp Ir_module List Llvm_ir Operand Option Pass Subst Ty
