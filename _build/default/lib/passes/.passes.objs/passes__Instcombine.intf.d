lib/passes/instcombine.mli: Func Instr Ir_module Llvm_ir Operand Pass
