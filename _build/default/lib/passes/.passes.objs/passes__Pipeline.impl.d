lib/passes/pipeline.ml: Const_fold Cse Dce Inline Instcombine Ir_module List Llvm_ir Mem2reg Pass Sccp Simplify_cfg String Unroll
