lib/passes/mem2reg.ml: Block Cfg Constant Dom Func Hashtbl Instr Ir_module List Llvm_ir Map Operand Option Pass Set String Subst Ty
