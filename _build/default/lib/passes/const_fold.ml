(* Local constant folding: instructions whose operands are all constants
   are evaluated at compile time and their uses rewritten. Runs to a
   fixed point within each function. This is one of the classical
   optimizations the paper credits the LLVM infrastructure with
   (Sec. II-B). *)

open Llvm_ir

let const_of_operand (o : Operand.t) =
  match o with
  | Operand.Const c -> Some c
  | Operand.Local _ -> None

let int_of_const (c : Constant.t) =
  match c with
  | Constant.Int n -> Some n
  | Constant.Bool b -> Some (if b then 1L else 0L)
  | Constant.Inttoptr n -> Some n
  | Constant.Null -> Some 0L
  | Constant.Float _ | Constant.Undef | Constant.Global _ | Constant.Str _
  | Constant.Arr _ | Constant.Zeroinit ->
    None

let float_of_const (c : Constant.t) =
  match c with
  | Constant.Float f -> Some f
  | Constant.Int n -> Some (Int64.to_float n)
  | _ -> None

let truncate ty n = Interp.truncate_to_width ty n
let sext ty n = Interp.sign_extend ty n

let fold_binop op ty x y =
  let open Instr in
  let sx = sext ty x and sy = sext ty y in
  let safe_div f a b = if Int64.equal b 0L then None else Some (f a b) in
  let r =
    match op with
    | Add -> Some (Int64.add x y)
    | Sub -> Some (Int64.sub x y)
    | Mul -> Some (Int64.mul x y)
    | Sdiv -> safe_div Int64.div sx sy
    | Udiv -> safe_div Int64.unsigned_div x y
    | Srem -> safe_div Int64.rem sx sy
    | Urem -> safe_div Int64.unsigned_rem x y
    | And -> Some (Int64.logand x y)
    | Or -> Some (Int64.logor x y)
    | Xor -> Some (Int64.logxor x y)
    | Shl -> Some (Int64.shift_left x (Int64.to_int y land 63))
    | Lshr -> Some (Int64.shift_right_logical x (Int64.to_int y land 63))
    | Ashr -> Some (Int64.shift_right sx (Int64.to_int y land 63))
  in
  Option.map
    (fun n ->
      let n = truncate ty n in
      if Ty.equal ty Ty.I1 then Constant.Bool (not (Int64.equal n 0L))
      else Constant.Int n)
    r

let fold_icmp pred ty x y =
  let open Instr in
  let sx = sext ty x and sy = sext ty y in
  let u = Int64.unsigned_compare x y in
  let b =
    match pred with
    | Ieq -> Int64.equal x y
    | Ine -> not (Int64.equal x y)
    | Islt -> Int64.compare sx sy < 0
    | Isle -> Int64.compare sx sy <= 0
    | Isgt -> Int64.compare sx sy > 0
    | Isge -> Int64.compare sx sy >= 0
    | Iult -> u < 0
    | Iule -> u <= 0
    | Iugt -> u > 0
    | Iuge -> u >= 0
  in
  Constant.Bool b

let fold_fbinop op x y =
  let open Instr in
  Constant.Float
    (match op with
    | Fadd -> x +. y
    | Fsub -> x -. y
    | Fmul -> x *. y
    | Fdiv -> x /. y
    | Frem -> Float.rem x y)

let fold_fcmp pred x y =
  let open Instr in
  let b =
    match pred with
    | Foeq -> x = y
    | Fone -> x < y || x > y
    | Folt -> x < y
    | Fole -> x <= y
    | Fogt -> x > y
    | Foge -> x >= y
    | Ford -> not (Float.is_nan x || Float.is_nan y)
    | Funo -> Float.is_nan x || Float.is_nan y
  in
  Constant.Bool b

let fold_cast op (src : Operand.typed) c target_ty =
  match op, c with
  | Instr.Inttoptr, _ ->
    Option.map (fun n -> Constant.Inttoptr n) (int_of_const c)
  | Instr.Ptrtoint, _ ->
    Option.map (fun n -> Constant.Int (truncate target_ty n)) (int_of_const c)
  | Instr.Zext, _ ->
    Option.map (fun n -> Constant.Int (truncate target_ty n)) (int_of_const c)
  | Instr.Sext, _ ->
    Option.map
      (fun n -> Constant.Int (truncate target_ty (sext src.Operand.ty n)))
      (int_of_const c)
  | Instr.Trunc, _ -> (
    match int_of_const c with
    | Some n ->
      let n = truncate target_ty n in
      Some
        (if Ty.equal target_ty Ty.I1 then Constant.Bool (not (Int64.equal n 0L))
         else Constant.Int n)
    | None -> None)
  | Instr.Bitcast, _ -> Some c
  | Instr.Sitofp, _ ->
    Option.map
      (fun n -> Constant.Float (Int64.to_float (sext src.Operand.ty n)))
      (int_of_const c)
  | Instr.Fptosi, _ ->
    Option.map (fun f -> Constant.Int (truncate target_ty (Int64.of_float f)))
      (float_of_const c)

(* Attempts to fold one instruction to a constant. *)
let fold_instr (op : Instr.op) : Constant.t option =
  match op with
  | Instr.Binop (b, ty, x, y) -> (
    match const_of_operand x, const_of_operand y with
    | Some cx, Some cy -> (
      match int_of_const cx, int_of_const cy with
      | Some nx, Some ny -> fold_binop b ty nx ny
      | _ -> None)
    | _ -> None)
  | Instr.Icmp (pred, ty, x, y) -> (
    match const_of_operand x, const_of_operand y with
    | Some cx, Some cy -> (
      match int_of_const cx, int_of_const cy with
      | Some nx, Some ny -> Some (fold_icmp pred ty nx ny)
      | _ -> None)
    | _ -> None)
  | Instr.Fbinop (b, _, x, y) -> (
    match const_of_operand x, const_of_operand y with
    | Some cx, Some cy -> (
      match float_of_const cx, float_of_const cy with
      | Some fx, Some fy -> Some (fold_fbinop b fx fy)
      | _ -> None)
    | _ -> None)
  | Instr.Fcmp (pred, _, x, y) -> (
    match const_of_operand x, const_of_operand y with
    | Some cx, Some cy -> (
      match float_of_const cx, float_of_const cy with
      | Some fx, Some fy -> Some (fold_fcmp pred fx fy)
      | _ -> None)
    | _ -> None)
  | Instr.Cast (c, src, ty) -> (
    match const_of_operand src.Operand.v with
    | Some cv -> fold_cast c src cv ty
    | None -> None)
  | Instr.Select (c, a, b) -> (
    match const_of_operand c with
    | Some cc -> (
      match int_of_const cc with
      | Some n -> (
        let chosen = if not (Int64.equal n 0L) then a else b in
        match const_of_operand chosen.Operand.v with
        | Some c -> Some c
        | None -> None)
      | None -> None)
    | None -> None)
  | Instr.Phi (_, incoming) -> (
    (* a phi whose incoming values are all the same constant *)
    match incoming with
    | (Operand.Const c, _) :: rest
      when List.for_all
             (fun (v, _) -> Operand.equal v (Operand.Const c))
             rest ->
      Some c
    | _ -> None)
  | Instr.Alloca _ | Instr.Load _ | Instr.Store _ | Instr.Gep _ | Instr.Call _
  | Instr.Freeze _ ->
    None

let run (_m : Ir_module.t) (f : Func.t) : Func.t * bool =
  let changed = ref false in
  let rec fixpoint f =
    let subst = ref Subst.SMap.empty in
    let blocks =
      List.map
        (fun (b : Block.t) ->
          let instrs =
            List.filter_map
              (fun (i : Instr.t) ->
                match i.Instr.id with
                | Some id -> (
                  match fold_instr i.Instr.op with
                  | Some c ->
                    subst := Subst.SMap.add id (Operand.Const c) !subst;
                    None
                  | None -> Some i)
                | None -> Some i)
              b.Block.instrs
          in
          { b with Block.instrs })
        f.Func.blocks
    in
    if Subst.SMap.is_empty !subst then f
    else begin
      changed := true;
      fixpoint (Subst.func !subst (Func.replace_blocks f blocks))
    end
  in
  let f = fixpoint f in
  (f, !changed)

let pass = { Pass.name = "const-fold"; run }
