(** The pass framework: a pass transforms one function (or module) and
    reports whether it changed anything. *)

open Llvm_ir

type func_pass = {
  name : string;
  run : Ir_module.t -> Func.t -> Func.t * bool;
      (** receives the module for context (e.g. callee lookup) *)
}

type module_pass = { mname : string; mrun : Ir_module.t -> Ir_module.t * bool }

val of_func_pass : func_pass -> module_pass
(** Applies the pass to every defined function. *)

val run_until_fixpoint :
  ?max_rounds:int -> module_pass list -> Ir_module.t -> Ir_module.t
(** Repeats the whole sequence until a round changes nothing (or
    [max_rounds], default 8). *)

val run_once : module_pass list -> Ir_module.t -> Ir_module.t
