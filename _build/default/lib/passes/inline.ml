(* Function inlining: call sites whose callee is a defined, non-recursive
   function within the size budget are replaced by a clone of the callee's
   body. Needed to lower multi-function QIR programs into a single entry
   function before profile checking (adaptive -> base, Sec. III-B). *)

open Llvm_ir
module SMap = Map.Make (String)
module SSet = Set.Make (String)

type limits = { max_callee_size : int; max_growth : int }

let default_limits = { max_callee_size = 512; max_growth = 65536 }

(* Functions that (transitively) call themselves are never inlined. *)
let recursive_funcs (m : Ir_module.t) =
  let callees f =
    Func.fold_instrs f SSet.empty (fun acc (i : Instr.t) ->
        match i.Instr.op with
        | Instr.Call (_, callee, _) -> SSet.add callee acc
        | _ -> acc)
  in
  let graph =
    List.fold_left
      (fun acc (f : Func.t) ->
        if Func.is_declaration f then acc
        else SMap.add f.Func.name (callees f) acc)
      SMap.empty m.Ir_module.funcs
  in
  (* a function is recursive if it can reach itself *)
  let reaches_self start =
    let rec dfs visited frontier =
      match frontier with
      | [] -> false
      | x :: rest ->
        if SSet.mem x visited then dfs visited rest
        else
          let next = Option.value ~default:SSet.empty (SMap.find_opt x graph) in
          if SSet.mem start next then true
          else dfs (SSet.add x visited) (SSet.elements next @ rest)
    in
    let first = Option.value ~default:SSet.empty (SMap.find_opt start graph) in
    SSet.mem start first || dfs SSet.empty (SSet.elements first)
  in
  SMap.fold
    (fun name _ acc -> if reaches_self name then SSet.add name acc else acc)
    graph SSet.empty

(* Clones the callee body for one call site. Returns the blocks that
   replace the block containing the call. *)
let splice gen (caller_block : Block.t) ~before ~call_id ~(callee : Func.t)
    ~args ~after =
  let suffix_label = Func.Fresh.next gen (caller_block.Block.label ^ ".ret") in
  (* fresh names for the callee's locals and labels *)
  let lmap = Hashtbl.create 16 in
  let vmap = Hashtbl.create 32 in
  List.iter
    (fun (b : Block.t) ->
      Hashtbl.replace lmap b.Block.label
        (Func.Fresh.next gen ("inl." ^ b.Block.label));
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.id with
          | Some id ->
            Hashtbl.replace vmap id (Func.Fresh.next gen ("inl." ^ id))
          | None -> ())
        b.Block.instrs)
    callee.Func.blocks;
  let arg_value =
    List.fold_left2
      (fun acc (p : Func.param) (a : Operand.typed) ->
        SMap.add p.Func.pname a.Operand.v acc)
      SMap.empty callee.Func.params args
  in
  let rename_value (o : Operand.t) =
    match o with
    | Operand.Local id -> (
      match SMap.find_opt id arg_value with
      | Some v -> v
      | None -> (
        match Hashtbl.find_opt vmap id with
        | Some id' -> Operand.Local id'
        | None -> o))
    | Operand.Const _ -> o
  in
  let rename_label l =
    match Hashtbl.find_opt lmap l with
    | Some l' -> l'
    | None -> l
  in
  (* returns become branches to the suffix block, collecting values *)
  let ret_values = ref [] in
  let cloned =
    List.map
      (fun (b : Block.t) ->
        let label = rename_label b.Block.label in
        let instrs =
          List.map
            (fun (i : Instr.t) ->
              let id =
                Option.map
                  (fun id ->
                    match Hashtbl.find_opt vmap id with
                    | Some id' -> id'
                    | None -> id)
                  i.Instr.id
              in
              let op =
                match i.Instr.op with
                | Instr.Phi (ty, incoming) ->
                  Instr.Phi
                    ( ty,
                      List.map
                        (fun (v, l) -> (rename_value v, rename_label l))
                        incoming )
                | op -> Instr.map_operands rename_value op
              in
              { Instr.id; op })
            b.Block.instrs
        in
        let term =
          match b.Block.term with
          | Instr.Ret v ->
            (match v with
            | Some v ->
              ret_values :=
                ({ v with Operand.v = rename_value v.Operand.v }, label)
                :: !ret_values
            | None -> ());
            Instr.Br suffix_label
          | Instr.Br l -> Instr.Br (rename_label l)
          | Instr.Cond_br (c, t, e) ->
            Instr.Cond_br (rename_value c, rename_label t, rename_label e)
          | Instr.Switch (v, d, cases) ->
            Instr.Switch
              ( { v with Operand.v = rename_value v.Operand.v },
                rename_label d,
                List.map (fun (c, l) -> (c, rename_label l)) cases )
          | Instr.Unreachable -> Instr.Unreachable
        in
        Block.mk label instrs term)
      callee.Func.blocks
  in
  (* the suffix: a phi joining return values when the result is used *)
  let suffix_prefix =
    match call_id, !ret_values with
    | Some id, [ (v, _) ] ->
      (* single return: substitute directly, no phi needed *)
      `Subst (id, v.Operand.v)
    | Some id, ((v0, _) :: _ as vs) ->
      `Phi
        (Instr.mk ~id
           (Instr.Phi
              ( v0.Operand.ty,
                List.map (fun ((v : Operand.typed), l) -> (v.Operand.v, l)) vs )))
    | Some id, [] ->
      (* the callee never returns a value (infinite loop / unreachable) *)
      `Subst (id, Operand.Const Constant.Undef)
    | None, _ -> `Nothing
  in
  let entry_clone = rename_label (Func.entry callee).Block.label in
  let head =
    Block.mk caller_block.Block.label before (Instr.Br entry_clone)
  in
  let suffix_instrs, subst =
    match suffix_prefix with
    | `Phi phi -> ([ phi ], None)
    | `Subst (id, v) -> ([], Some (id, v))
    | `Nothing -> ([], None)
  in
  let suffix = Block.mk suffix_label (suffix_instrs @ after) caller_block.Block.term in
  ((head :: cloned) @ [ suffix ], suffix_label, subst)

let inline_one gen (m : Ir_module.t) recursive (f : Func.t) limits =
  (* find the first inlinable call site *)
  let found = ref None in
  List.iter
    (fun (b : Block.t) ->
      if !found = None then begin
        let rec split before = function
          | [] -> ()
          | (i : Instr.t) :: after -> (
            match i.Instr.op with
            | Instr.Call (_, callee_name, args)
              when !found = None
                   && (not (SSet.mem callee_name recursive))
                   && not (String.equal callee_name f.Func.name) -> (
              match Ir_module.find_func m callee_name with
              | Some callee
                when (not (Func.is_declaration callee))
                     && Func.size callee <= limits.max_callee_size ->
                found :=
                  Some (b, List.rev before, i.Instr.id, callee, args, after)
              | _ -> split (i :: before) after)
            | _ -> split (i :: before) after)
        in
        split [] b.Block.instrs
      end)
    f.Func.blocks;
  match !found with
  | None -> None
  | Some (b, before, call_id, callee, args, after) ->
    let replacement, suffix_label, subst =
      splice gen b ~before ~call_id ~callee ~args ~after
    in
    let blocks =
      List.concat_map
        (fun (blk : Block.t) ->
          if String.equal blk.Block.label b.Block.label then replacement
          else
            (* successors' phis that named the split block now receive
               control from the suffix *)
            [ Subst.rename_phi_labels
                (fun l ->
                  if
                    String.equal l b.Block.label
                    && List.mem blk.Block.label (Instr.successors b.Block.term)
                  then suffix_label
                  else l)
                blk ])
        f.Func.blocks
    in
    let f = Func.replace_blocks f blocks in
    let f =
      match subst with
      | Some (id, v) -> Subst.func (Subst.SMap.singleton id v) f
      | None -> f
    in
    Some f

let run ?(limits = default_limits) (m : Ir_module.t) (f : Func.t) :
    Func.t * bool =
  let recursive = recursive_funcs m in
  let budget = Func.size f + limits.max_growth in
  let changed = ref false in
  let rec go f =
    if Func.size f > budget then f
    else begin
      let gen = Func.Fresh.of_func f in
      match inline_one gen m recursive f limits with
      | Some f' ->
        changed := true;
        go f'
      | None -> f
    end
  in
  let f = go f in
  (f, !changed)

let pass = { Pass.name = "inline"; run = (fun m f -> run m f) }
