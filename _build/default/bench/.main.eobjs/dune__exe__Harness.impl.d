bench/harness.ml: Analyze Bechamel Benchmark Float Format Hashtbl Instance Measure Staged Test Time Toolkit
