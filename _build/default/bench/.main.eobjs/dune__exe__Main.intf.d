bench/main.mli:
