(* Hardware mapping end to end (Sec. IV-A): a reset-heavy program whose
   qubits the live-range allocator packs "like registers", then SWAP
   routing onto sparse topologies, and execution of the mapped circuit
   through the QIR runtime.

   Run with: dune exec examples/mapping_demo.exe *)

open Qcircuit

let () =
  (* 8 sequential 3-qubit workers: 24 logical qubits, 3 live at a time *)
  let program = Generate.sequential_workers ~workers:8 ~span:3 3 in
  Format.printf "program: %d logical qubits, %d operations, depth %d@\n"
    program.Circuit.num_qubits (Circuit.size program) (Circuit.depth program);

  let alloc = Qmapping.Allocator.allocate program in
  Format.printf
    "live-range allocation: %d -> %d hardware qubits (%d resets inserted)@\n"
    program.Circuit.num_qubits alloc.Qmapping.Allocator.hw_qubits_used
    alloc.Qmapping.Allocator.resets_inserted;
  Format.printf "assignment (logical -> hardware): %s@\n@\n"
    (String.concat ", "
       (List.map
          (fun (l, h) -> Printf.sprintf "%d->%d" l h)
          (List.filteri (fun i _ -> i < 8) alloc.Qmapping.Allocator.assignment)));

  (* route a QFT onto different topologies and compare *)
  let qft = Generate.qft 9 in
  Format.printf "routing qft-9 onto sparse hardware:@\n";
  List.iter
    (fun hw ->
      let routed, report = Qmapping.Mapper.map ~allocate:false hw qft in
      Format.printf "  %-14s %a@\n" hw.Qmapping.Hardware.hw_name
        Qmapping.Mapper.pp_report report;
      assert (Qmapping.Router.respects_coupling hw routed))
    [
      Qmapping.Hardware.grid 3 3;
      Qmapping.Hardware.ring 9;
      Qmapping.Hardware.linear 9;
      Qmapping.Hardware.fully_connected 9;
    ];

  (* the mapped program still computes the same thing: run a GHZ through
     mapping + QIR and check the outcome structure *)
  let ghz = Generate.ghz 6 in
  let hw = Qmapping.Hardware.grid 2 3 in
  let routed, report = Qmapping.Mapper.map ~allocate:false hw ghz in
  Format.printf "@\nghz-6 on %s: %a@\n" hw.Qmapping.Hardware.hw_name
    Qmapping.Mapper.pp_report report;
  let m = Qir.Qir_builder.build routed in
  let hist = Qruntime.Executor.run_shots ~seed:21 ~shots:200 m in
  Format.printf "measured (should be only all-0 / all-1):@\n%a"
    Qruntime.Executor.pp_histogram hist;
  let ok =
    List.for_all (fun (k, _) -> k = "000000" || k = "111111") hist
  in
  if not ok then begin
    print_endline "mapping broke the GHZ correlation!";
    exit 1
  end;
  print_endline "mapped execution verified."
