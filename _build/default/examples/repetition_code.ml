(* Three-qubit repetition code with syndrome measurement and conditional
   correction — the error-correction regime the paper points to as the
   long-term driver of classical feedback (Sec. II-B, Sec. IV-B).

   The logical |1> is encoded across qubits 0..2; a deliberate X error
   is injected on a chosen qubit; two ancillas (3, 4) measure the ZZ
   syndromes; the decoder is expressed as classically-controlled X
   gates. The whole program is adaptive-profile QIR executed on the
   runtime. Finally the coherence feasibility of the decoder placement
   is evaluated (Sec. IV-B).

   Run with: dune exec examples/repetition_code.exe *)

open Qcircuit

(* Encodes |1>_L, injects an X on [error_on] (or none), extracts the two
   syndromes into clbits 0-1, applies the decoder, and measures the data
   qubits into clbits 2-4. *)
let repetition_round ~error_on =
  let b = Circuit.Build.create ~num_qubits:5 ~num_clbits:5 () in
  (* encode |1>_L = |111> *)
  Circuit.Build.gate b Gate.X [ 0 ];
  Circuit.Build.gate b Gate.Cx [ 0; 1 ];
  Circuit.Build.gate b Gate.Cx [ 0; 2 ];
  (* error injection *)
  (match error_on with
  | Some q -> Circuit.Build.gate b Gate.X [ q ]
  | None -> ());
  (* syndrome 0: Z0 Z1 via ancilla 3; syndrome 1: Z1 Z2 via ancilla 4 *)
  Circuit.Build.gate b Gate.Cx [ 0; 3 ];
  Circuit.Build.gate b Gate.Cx [ 1; 3 ];
  Circuit.Build.gate b Gate.Cx [ 1; 4 ];
  Circuit.Build.gate b Gate.Cx [ 2; 4 ];
  Circuit.Build.measure b 3 0;
  Circuit.Build.measure b 4 1;
  (* decoder: s0 s1 = 10 -> X q0; 11 -> X q1; 01 -> X q2 *)
  Circuit.Build.gate b ~cond:{ Circuit.cbits = [ 0; 1 ]; value = 1 } Gate.X [ 0 ];
  Circuit.Build.gate b ~cond:{ Circuit.cbits = [ 0; 1 ]; value = 3 } Gate.X [ 1 ];
  Circuit.Build.gate b ~cond:{ Circuit.cbits = [ 0; 1 ]; value = 2 } Gate.X [ 2 ];
  (* read out the data qubits *)
  Circuit.Build.measure b 0 2;
  Circuit.Build.measure b 1 3;
  Circuit.Build.measure b 2 4;
  Circuit.Build.finish b

let run_case name ~error_on =
  let circuit = repetition_round ~error_on in
  let m = Qir.Qir_builder.build circuit in
  let hist = Qruntime.Executor.run_shots ~seed:99 ~shots:50 m in
  (* data bits are positions 2..4 of the recorded output *)
  let recovered =
    List.for_all (fun (key, _) -> String.sub key 2 3 = "111") hist
  in
  Format.printf "%-22s -> logical state recovered: %b@\n" name recovered;
  if not recovered then begin
    Format.printf "  histogram:@\n%a" Qruntime.Executor.pp_histogram hist;
    exit 1
  end

let () =
  let m = Qir.Qir_builder.build (repetition_round ~error_on:(Some 1)) in
  Format.printf "Program profile: %a@\n@\n" Qir.Profile.pp
    (Qir.Profile_check.classify m);
  run_case "no error" ~error_on:None;
  run_case "X error on qubit 0" ~error_on:(Some 0);
  run_case "X error on qubit 1" ~error_on:(Some 1);
  run_case "X error on qubit 2" ~error_on:(Some 2);

  (* the Sec. IV-B point: with decoding on the host the syndrome-to-
     correction latency blows the coherence budget; on the controller it
     fits *)
  print_newline ();
  let circuit = repetition_round ~error_on:(Some 1) in
  List.iter
    (fun budget ->
      let params =
        { Qhybrid.Latency.default with
          Qhybrid.Latency.coherence_budget_ns = budget }
      in
      let ctl =
        Qhybrid.Feasibility.check ~params
          ~placement:Qhybrid.Latency.Controller circuit
      in
      let host =
        Qhybrid.Feasibility.check ~params ~placement:Qhybrid.Latency.Host
          circuit
      in
      Format.printf
        "coherence budget %8.0f ns: controller %-9s host %s@\n" budget
        (if ctl.Qhybrid.Feasibility.feasible then "feasible," else "REJECTED,")
        (if host.Qhybrid.Feasibility.feasible then "feasible" else "REJECTED"))
    [ 2_000.0; 20_000.0; 200_000.0 ]
