examples/loop_unroll_demo.ml: Format Func Ir_module List Llvm_ir Parser Passes Printer Qcircuit Qir Qruntime String
