examples/mapping_demo.mli:
