examples/repetition_code.mli:
