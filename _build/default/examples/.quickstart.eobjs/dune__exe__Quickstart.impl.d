examples/quickstart.ml: Format Llvm_ir Qcircuit Qir Qruntime
