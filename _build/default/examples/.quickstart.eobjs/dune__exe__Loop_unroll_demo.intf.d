examples/loop_unroll_demo.mli:
