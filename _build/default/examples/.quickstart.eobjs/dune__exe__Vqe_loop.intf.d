examples/vqe_loop.mli:
