examples/quickstart.mli:
