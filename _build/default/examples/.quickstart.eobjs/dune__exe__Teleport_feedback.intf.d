examples/teleport_feedback.mli:
