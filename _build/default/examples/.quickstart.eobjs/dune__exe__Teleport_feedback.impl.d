examples/teleport_feedback.ml: Circuit Float Format Gate List Qcircuit Qhybrid Qir Qruntime String
