examples/vqe_loop.ml: Array Circuit Float Format Gate List Qcircuit Qir Qruntime Qsim String
