examples/mapping_demo.ml: Circuit Format Generate List Printf Qcircuit Qir Qmapping Qruntime String
