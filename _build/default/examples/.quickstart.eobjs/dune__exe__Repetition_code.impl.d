examples/repetition_code.ml: Circuit Format Gate List Qcircuit Qhybrid Qir Qruntime String
