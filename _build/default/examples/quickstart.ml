(* Quickstart: the paper's Fig. 1 end to end.

   Build the Bell circuit, print it as OpenQASM 2 (Fig. 1 top left) and
   as QIR in both addressing styles (Fig. 1 right / Ex. 6), check the
   profile, and execute the QIR program on the simulator-backed runtime.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let bell = Qcircuit.Generate.bell () in

  print_endline "=== Circuit IR ===";
  print_string (Qcircuit.Circuit.to_string bell);

  print_endline "\n=== OpenQASM 2 (Fig. 1, top left) ===";
  print_string (Qcircuit.Qasm2.to_string bell);

  print_endline "\n=== QIR, dynamic qubit addressing (Fig. 1, right) ===";
  print_string (Qir.Qir_builder.to_string ~addressing:`Dynamic bell);

  print_endline "\n=== QIR, static qubit addressing (Ex. 6) ===";
  let m = Qir.Qir_builder.build ~addressing:`Static bell in
  print_string (Llvm_ir.Printer.module_to_string m);

  Format.printf "\n=== Profile ===@\nThe static module conforms to: %a@\n"
    Qir.Profile.pp (Qir.Profile_check.classify m);

  print_endline "\n=== Execution (1000 shots, statevector backend) ===";
  let hist = Qruntime.Executor.run_shots ~seed:2024 ~shots:1000 m in
  Format.printf "%a" Qruntime.Executor.pp_histogram hist;

  (* parse the QIR right back into a circuit (the paper's Ex. 3) *)
  let reparsed = Qir.Qir_parser.parse m in
  Format.printf "\nRound-trip through QIR preserved the circuit: %b@\n"
    (Qcircuit.Circuit.equal (Qir.Qir_gateset.legalize bell) reparsed)
