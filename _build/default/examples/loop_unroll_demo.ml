(* The paper's Ex. 4, live: a QIR program with a classical FOR-loop over
   Hadamard gates, lowered by the classical pass pipeline until "an
   optimization pass does not have to handle the FOR-loop, but sees only
   the ten individual Hadamard gates".

   Run with: dune exec examples/loop_unroll_demo.exe *)

open Llvm_ir

let forloop_qir =
  {|
declare void @__quantum__qis__h__body(ptr)

define void @main() "entry_point" {
entry:
  %i = alloca i32, align 4
  store i32 0, ptr %i, align 4
  br label %for.header

for.header:
  %1 = load i32, ptr %i, align 4
  %cond = icmp slt i32 %1, 10
  br i1 %cond, label %body, label %exit

body:
  %2 = load i32, ptr %i, align 4
  %idx = sext i32 %2 to i64
  %qb = inttoptr i64 %idx to ptr
  call void @__quantum__qis__h__body(ptr %qb)
  %3 = load i32, ptr %i, align 4
  %4 = add nsw i32 %3, 1
  store i32 %4, ptr %i, align 4
  br label %for.header

exit:
  ret void
}
|}

let () =
  let m = Parser.parse_module forloop_qir in
  print_endline "=== Input (the paper's Ex. 4) ===";
  print_string (Printer.module_to_string m);
  Format.printf "@\nProfile before lowering: %a@\n" Qir.Profile.pp
    (Qir.Profile_check.classify m);

  (* the program EXECUTES as-is: the interpreter handles the loop *)
  let r = Qruntime.Executor.run m in
  Format.printf "Direct execution applies %d H gates.@\n@\n"
    r.Qruntime.Executor.runtime_stats.Qruntime.Runtime.gate_calls;

  (* lowering: inline + mem2reg + sccp + unroll + fold + dce + simplify *)
  let lowered = Qir.Lowering.lower_module m in
  print_endline "=== After lowering (mem2reg, unroll, const-prop, DCE) ===";
  print_string (Printer.module_to_string lowered);
  Format.printf "@\nProfile after lowering: %a@\n" Qir.Profile.pp
    (Qir.Profile_check.classify lowered);

  (* step-by-step ablation: which pass enables which *)
  print_endline "\n=== Pass-by-pass instruction counts ===";
  let count m =
    List.fold_left
      (fun acc f -> acc + Func.size f)
      0 (Ir_module.defined_funcs m)
  in
  let stages =
    [ "input"; "mem2reg"; "loop-unroll"; "sccp"; "const-fold"; "dce";
      "simplify-cfg" ]
  in
  let _ =
    List.fold_left
      (fun m stage ->
        let m' =
          if String.equal stage "input" then m
          else Passes.Pipeline.run_pass stage m
        in
        Format.printf "  %-12s %4d instructions, %d blocks@\n" stage (count m')
          (List.length (Ir_module.find_func_exn m' "main").Func.blocks);
        m')
      m stages
  in

  (* the lowered module parses straight into a circuit (Ex. 3) *)
  let circuit = Qir.Qir_parser.parse lowered in
  Format.printf "@\nExtracted circuit:@\n%a" Qcircuit.Circuit.pp circuit;
  Format.printf "Equals the hand-written 10-qubit H layer: %b@\n"
    (Qcircuit.Circuit.equal circuit (Qcircuit.Generate.h_layer 10))
