(* Quantum teleportation with measurement feedback.

   Teleports the state Ry(theta)|0> from qubit 0 to qubit 2 using a Bell
   pair and classically-controlled corrections — the adaptive-profile
   regime (mid-circuit measurement, feedback). The program goes through
   the full QIR path: circuit -> adaptive QIR -> runtime execution; the
   teleported state is verified by measuring qubit 2 over many shots and
   comparing against the theoretical probability sin^2(theta/2).

   Run with: dune exec examples/teleport_feedback.exe *)

open Qcircuit

let teleport theta =
  let b = Circuit.Build.create ~num_qubits:3 ~num_clbits:3 () in
  (* the payload state on qubit 0 *)
  Circuit.Build.gate b (Gate.Ry theta) [ 0 ];
  (* Bell pair between qubits 1 and 2 *)
  Circuit.Build.gate b Gate.H [ 1 ];
  Circuit.Build.gate b Gate.Cx [ 1; 2 ];
  (* Bell measurement of qubits 0 and 1 *)
  Circuit.Build.gate b Gate.Cx [ 0; 1 ];
  Circuit.Build.gate b Gate.H [ 0 ];
  Circuit.Build.measure b 0 0;
  Circuit.Build.measure b 1 1;
  (* classically-controlled corrections on qubit 2 *)
  Circuit.Build.gate b ~cond:{ Circuit.cbits = [ 1 ]; value = 1 } Gate.X [ 2 ];
  Circuit.Build.gate b ~cond:{ Circuit.cbits = [ 0 ]; value = 1 } Gate.Z [ 2 ];
  (* read out the teleported qubit *)
  Circuit.Build.measure b 2 2;
  Circuit.Build.finish b

let () =
  let theta = Float.pi /. 3.0 in
  let circuit = teleport theta in
  let m = Qir.Qir_builder.build circuit in

  Format.printf "Teleporting Ry(%.4f)|0> — profile: %a@\n" theta
    Qir.Profile.pp (Qir.Profile_check.classify m);

  let shots = 4000 in
  let hist = Qruntime.Executor.run_shots ~seed:7 ~shots m in
  (* clbit 2 (the third recorded bit) is the teleported qubit's readout;
     result ids are allocated per measurement in order 0,1,2 *)
  let ones =
    List.fold_left
      (fun acc (key, n) -> if key.[2] = '1' then acc + n else acc)
      0 hist
  in
  let measured = float_of_int ones /. float_of_int shots in
  let expected = sin (theta /. 2.0) ** 2.0 in
  Format.printf "P(1) on the teleported qubit: measured %.3f, theory %.3f@\n"
    measured expected;
  if Float.abs (measured -. expected) < 0.05 then
    print_endline "Teleportation verified."
  else begin
    print_endline "Teleportation FAILED.";
    exit 1
  end;

  (* the same program is infeasible if corrections wait on a slow host
     with a tight coherence budget (Sec. IV-B) *)
  let tight =
    { Qhybrid.Latency.default with Qhybrid.Latency.coherence_budget_ns = 5000.0 }
  in
  let on_controller =
    Qhybrid.Feasibility.check ~params:tight
      ~placement:Qhybrid.Latency.Controller circuit
  in
  let on_host =
    Qhybrid.Feasibility.check ~params:tight ~placement:Qhybrid.Latency.Host
      circuit
  in
  Format.printf "@\nFeasibility under a 5 us coherence budget:@\n";
  Format.printf "  corrections on the controller: %a@\n"
    Qhybrid.Feasibility.pp_verdict on_controller;
  Format.printf "  corrections via the host:      %a@\n"
    Qhybrid.Feasibility.pp_verdict on_host
