(* A variational quantum eigensolver loop — the "quantum circuit as part
   of a larger classical optimization loop" workload the paper gives as
   the near-term motivation for hybrid programs (Sec. II-B).

   Hamiltonian: H = Z0 Z1 + h (X0 + X1), a 2-qubit transverse-field Ising
   term (ground-state energy -sqrt(1 + 4 h^2)). Each energy evaluation
   builds a parametrized circuit, compiles it to QIR, and executes it on
   the runtime — one measurement setting for the ZZ term and one
   (Hadamard-rotated) for the X terms. A derivative-free coordinate
   descent drives the parameters.

   Run with: dune exec examples/vqe_loop.exe *)

open Qcircuit

let h_field = 0.5
let shots = 800

(* Ansatz: Ry(t0) q0; Ry(t1) q1; CX; Ry(t2) q1. *)
let ansatz (t0, t1, t2) =
  let b = Circuit.Build.create ~num_qubits:2 ~num_clbits:0 () in
  Circuit.Build.gate b (Gate.Ry t0) [ 0 ];
  Circuit.Build.gate b (Gate.Ry t1) [ 1 ];
  Circuit.Build.gate b Gate.Cx [ 0; 1 ];
  Circuit.Build.gate b (Gate.Ry t2) [ 1 ];
  b

let rotate_for_basis b = function
  | `Z -> ()
  | `X ->
    Circuit.Build.gate b Gate.H [ 0 ];
    Circuit.Build.gate b Gate.H [ 1 ]

let measured_circuit basis params =
  let b = ansatz params in
  rotate_for_basis b basis;
  Circuit.Build.measure b 0 0;
  Circuit.Build.measure b 1 1;
  Circuit.Build.finish b

let unmeasured_circuit basis params =
  let b = ansatz params in
  rotate_for_basis b basis;
  Circuit.Build.finish b

(* <O> from a histogram: O = product of Z eigenvalues over [bits]. *)
let expectation hist bits =
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 hist in
  let signed =
    List.fold_left
      (fun acc (key, n) ->
        let sign =
          List.fold_left
            (fun s bit -> if key.[bit] = '1' then -s else s)
            1 bits
        in
        acc + (sign * n))
      0 hist
  in
  float_of_int signed /. float_of_int total

(* Shot-based estimate through the full QIR path. *)
let energy ~seed params =
  let run basis =
    let m = Qir.Qir_builder.build (measured_circuit basis params) in
    Qruntime.Executor.run_shots ~seed ~shots m
  in
  let z = run `Z in
  let x = run `X in
  expectation z [ 0; 1 ]
  +. (h_field *. (expectation x [ 0 ] +. expectation x [ 1 ]))

(* Exact expectation via the statevector, for reporting. *)
let exact_energy params =
  let stz, _ = Qsim.Statevector.run_circuit (unmeasured_circuit `Z params) in
  let stx, _ = Qsim.Statevector.run_circuit (unmeasured_circuit `X params) in
  let p = Qsim.Statevector.probabilities stz in
  let zz = p.(0) -. p.(1) -. p.(2) +. p.(3) in
  zz
  +. h_field
     *. (Qsim.Statevector.expectation_z stx 0
        +. Qsim.Statevector.expectation_z stx 1)

(* The best the ansatz can reach, by exact coarse-to-fine search. *)
let ansatz_minimum () =
  let best = ref infinity in
  let pi = Float.pi in
  let steps = 16 in
  for i = 0 to steps - 1 do
    for j = 0 to steps - 1 do
      for k = 0 to steps - 1 do
        let t c = -.pi +. (2.0 *. pi *. float_of_int c /. float_of_int steps) in
        let e = exact_energy (t i, t j, t k) in
        if e < !best then best := e
      done
    done
  done;
  !best

(* Coordinate descent from one starting point; re-evaluates the incumbent
   each round so a lucky shot-noise draw cannot lock the search. *)
let descend ~seed start =
  let params = ref start in
  let counter = ref seed in
  let eval p =
    incr counter;
    energy ~seed:!counter p
  in
  let best = ref (eval !params) in
  let step = ref 0.9 in
  for _round = 1 to 10 do
    best := eval !params;
    for coord = 0 to 2 do
      let t0, t1, t2 = !params in
      let tweak delta =
        match coord with
        | 0 -> (t0 +. delta, t1, t2)
        | 1 -> (t0, t1 +. delta, t2)
        | _ -> (t0, t1, t2 +. delta)
      in
      List.iter
        (fun delta ->
          let candidate = tweak delta in
          let e = eval candidate in
          if e < !best then begin
            best := e;
            params := candidate
          end)
        [ !step; -. !step ]
    done;
    step := !step *. 0.75
  done;
  (!params, !best)

let () =
  let starts =
    [ (0.4, 0.8, -0.3); (2.0, -1.0, 1.0); (-1.5, 1.5, 2.5) ]
  in
  let candidates =
    List.mapi
      (fun i start ->
        let params, e = descend ~seed:(1000 + (i * 10_000)) start in
        Format.printf "start %d: E = %+.4f@\n%!" i e;
        (params, e))
      starts
  in
  let params, best =
    List.fold_left
      (fun (bp, be) (p, e) -> if e < be then (p, e) else (bp, be))
      (List.hd candidates) (List.tl candidates)
  in
  let params = ref params and best = ref best in
  let exact = exact_energy !params in
  let reachable = ansatz_minimum () in
  let e0 = -.sqrt (1.0 +. (4.0 *. h_field *. h_field)) in
  Format.printf "@\nfinal shot-estimated energy:      %+.4f@\n" !best;
  Format.printf "exact energy at these parameters: %+.4f@\n" exact;
  Format.printf "best energy the ansatz can reach: %+.4f@\n" reachable;
  Format.printf "true ground-state energy:         %+.4f@\n" e0;
  if exact -. reachable < 0.2 then
    print_endline "VQE converged to (near) the ansatz optimum."
  else begin
    print_endline "VQE did not converge.";
    exit 1
  end
