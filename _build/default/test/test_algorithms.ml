(* End-to-end integration tests: textbook algorithms with exact known
   outcomes, executed through the complete QIR path (circuit -> QIR ->
   interpreter + runtime -> histogram). *)

open Qcircuit

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* Runs through QIR and asserts the register (clbits as a bitstring,
   LSB first in position 0) always equals [expected]. *)
let assert_deterministic ?(shots = 30) circuit expected_bits =
  let m = Qir.Qir_builder.build circuit in
  let hist = Qruntime.Executor.run_shots ~seed:5 ~shots m in
  match hist with
  | [ (key, n) ] ->
    check int_t "all shots" shots n;
    check Alcotest.string "outcome" expected_bits key
  | _ ->
    Alcotest.failf "non-deterministic outcome: %s"
      (String.concat ", " (List.map (fun (k, n) -> Printf.sprintf "%s:%d" k n) hist))

let bits_of_int ~width v =
  String.init width (fun i -> if v land (1 lsl i) <> 0 then '1' else '0')

let test_bernstein_vazirani () =
  List.iter
    (fun secret ->
      let expected =
        String.concat ""
          (List.map (fun b -> if b then "1" else "0") secret)
      in
      assert_deterministic (Algorithms.bernstein_vazirani secret) expected)
    [
      [ true; false; true ];
      [ false; false; false; true ];
      [ true; true; true; true; true ];
    ]

let test_deutsch_jozsa_constant () =
  assert_deterministic (Algorithms.deutsch_jozsa ~n:4 (`Constant false)) "0000";
  assert_deterministic (Algorithms.deutsch_jozsa ~n:4 (`Constant true)) "0000"

let test_deutsch_jozsa_balanced () =
  (* balanced oracles never measure all-zeros *)
  List.iter
    (fun mask ->
      let m = Qir.Qir_builder.build (Algorithms.deutsch_jozsa ~n:4 (`Balanced mask)) in
      let hist = Qruntime.Executor.run_shots ~seed:5 ~shots:30 m in
      check bool_t "no all-zeros outcome" false
        (List.mem_assoc "0000" hist))
    [ 1; 6; 15 ]

let test_grover () =
  for marked = 0 to 3 do
    assert_deterministic (Algorithms.grover_2q ~marked)
      (bits_of_int ~width:2 marked)
  done

let test_phase_estimation () =
  List.iter
    (fun (bits, k) ->
      assert_deterministic (Algorithms.phase_estimation ~bits ~k)
        (bits_of_int ~width:bits k))
    [ (1, 1); (2, 3); (3, 5); (4, 11) ]

let test_qpe_via_stabilizer_rejected () =
  (* QPE uses non-Clifford phases: the stabilizer backend must refuse *)
  let m = Qir.Qir_builder.build (Algorithms.phase_estimation ~bits:3 ~k:5) in
  match Qruntime.Executor.run ~backend:`Stabilizer m with
  | exception Qsim.Stabilizer.Not_clifford _ -> ()
  | _ -> Alcotest.fail "expected Not_clifford"

(* The algorithms also survive a round-trip through textual QIR. *)
let test_bv_textual_roundtrip () =
  let c = Algorithms.bernstein_vazirani [ true; false; true ] in
  let text = Qir.Qir_builder.to_string c in
  let m = Llvm_ir.Parser.parse_module text in
  let hist = Qruntime.Executor.run_shots ~seed:5 ~shots:20 m in
  check bool_t "recovers secret" true (List.mem_assoc "101" hist);
  check int_t "deterministic" 1 (List.length hist)

(* And through hardware mapping: routing onto a line preserves the
   (deterministic) outcome. *)
let test_bv_routed () =
  let c = Algorithms.bernstein_vazirani [ true; true; false ] in
  let hw = Qmapping.Hardware.linear 4 in
  let routed, _report = Qmapping.Mapper.map ~allocate:false hw c in
  let m = Qir.Qir_builder.build routed in
  let hist = Qruntime.Executor.run_shots ~seed:9 ~shots:20 m in
  match hist with
  | [ (key, 20) ] -> check Alcotest.string "outcome" "110" key
  | _ -> Alcotest.fail "routing broke determinism"

let suite =
  [
    Alcotest.test_case "Bernstein-Vazirani" `Quick test_bernstein_vazirani;
    Alcotest.test_case "Deutsch-Jozsa constant" `Quick
      test_deutsch_jozsa_constant;
    Alcotest.test_case "Deutsch-Jozsa balanced" `Quick
      test_deutsch_jozsa_balanced;
    Alcotest.test_case "Grover 2-qubit" `Quick test_grover;
    Alcotest.test_case "phase estimation" `Quick test_phase_estimation;
    Alcotest.test_case "QPE rejected by stabilizer" `Quick
      test_qpe_via_stabilizer_rejected;
    Alcotest.test_case "BV textual round-trip" `Quick test_bv_textual_roundtrip;
    Alcotest.test_case "BV routed on hardware" `Quick test_bv_routed;
  ]
