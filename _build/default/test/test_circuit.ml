(* Tests for the circuit IR, the OpenQASM 2/3 front-ends and the peephole
   optimizer. *)

open Qcircuit

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* The paper's Fig. 1 (top left). *)
let bell_qasm2 =
  {|OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0], q[1];
measure q -> c;
|}

let test_parse_bell () =
  let c = Qasm2.parse bell_qasm2 in
  check int_t "qubits" 2 c.Circuit.num_qubits;
  check int_t "clbits" 2 c.Circuit.num_clbits;
  check bool_t "equals generated Bell" true
    (Circuit.equal c (Generate.bell ()))

let test_parse_gate_macro () =
  let src =
    {|OPENQASM 2.0;
include "qelib1.inc";
gate majority a, b, c {
  cx c, b;
  cx c, a;
  ccx a, b, c;
}
qreg q[3];
majority q[0], q[1], q[2];
|}
  in
  let c = Qasm2.parse src in
  check int_t "three ops" 3 (Circuit.size c);
  match List.map (fun (o : Circuit.op) -> o.Circuit.kind) c.Circuit.ops with
  | [ Circuit.Gate (Gate.Cx, [ 2; 1 ]); Circuit.Gate (Gate.Cx, [ 2; 0 ]);
      Circuit.Gate (Gate.Ccx, [ 0; 1; 2 ]) ] ->
    ()
  | _ -> Alcotest.fail "unexpected expansion"

let test_parse_parametric_macro () =
  let src =
    {|OPENQASM 2.0;
include "qelib1.inc";
gate foo(t) a { rz(t/2) a; rz(t/2) a; }
qreg q[1];
foo(pi) q[0];
|}
  in
  let c = Qasm2.parse src in
  match List.map (fun (o : Circuit.op) -> o.Circuit.kind) c.Circuit.ops with
  | [ Circuit.Gate (Gate.Rz a, [ 0 ]); Circuit.Gate (Gate.Rz b, [ 0 ]) ] ->
    check (Alcotest.float 1e-12) "half pi" (Float.pi /. 2.0) a;
    check (Alcotest.float 1e-12) "half pi" (Float.pi /. 2.0) b
  | _ -> Alcotest.fail "unexpected expansion"

let test_parse_broadcast () =
  let src =
    {|OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q;
cx q[0], q;
|}
  in
  (* broadcasting cx q[0], q would alias q[0] with itself: error *)
  match Qasm2.parse src with
  | exception Qasm2.Error _ -> ()
  | _ -> Alcotest.fail "expected aliasing error"

let test_parse_broadcast_h () =
  let src =
    {|OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q;
measure q -> c;
|}
  in
  let c = Qasm2.parse src in
  check int_t "4 h + 4 measure" 8 (Circuit.size c);
  check int_t "h count" 4 (Circuit.gate_count ~name:"h" c)

let test_parse_condition () =
  let src =
    {|OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
measure q[0] -> c[0];
if (c == 1) x q[1];
|}
  in
  let c = Qasm2.parse src in
  match List.rev c.Circuit.ops with
  | { Circuit.kind = Circuit.Gate (Gate.X, [ 1 ]); cond = Some cond } :: _ ->
    check (Alcotest.list int_t) "condition bits" [ 0; 1 ] cond.Circuit.cbits;
    check int_t "condition value" 1 cond.Circuit.value
  | _ -> Alcotest.fail "expected conditioned x"

let test_parse_two_registers () =
  let src =
    {|OPENQASM 2.0;
include "qelib1.inc";
qreg a[2];
qreg b[3];
creg c[2];
h a[1];
x b[2];
|}
  in
  let c = Qasm2.parse src in
  check int_t "5 qubits" 5 c.Circuit.num_qubits;
  match List.map (fun (o : Circuit.op) -> o.Circuit.kind) c.Circuit.ops with
  | [ Circuit.Gate (Gate.H, [ 1 ]); Circuit.Gate (Gate.X, [ 4 ]) ] -> ()
  | _ -> Alcotest.fail "flat indices wrong"

let test_parse_errors () =
  let cases =
    [
      "no header", "qreg q[1];";
      "unknown gate", "OPENQASM 2.0;\nqreg q[1];\nfoo q[0];";
      "out of range", "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\nh q[3];";
      "bad include", "OPENQASM 2.0;\ninclude \"other.inc\";";
      ( "opaque applied",
        "OPENQASM 2.0;\nopaque magic a;\nqreg q[1];\nmagic q[0];" );
    ]
  in
  List.iter
    (fun (name, src) ->
      match Qasm2.parse src with
      | exception Qasm2.Error _ -> ()
      | _ -> Alcotest.failf "%s: expected parse error" name)
    cases

let test_qasm2_roundtrip_bell () =
  let c = Generate.bell () in
  let printed = Qasm2.to_string c in
  let c' = Qasm2.parse printed in
  check bool_t "roundtrip" true (Circuit.equal c c')

let test_qasm2_roundtrip_generated () =
  List.iter
    (fun c ->
      let printed = Qasm2.to_string c in
      let c' =
        try Qasm2.parse printed
        with Qasm2.Error (l, m) ->
          Alcotest.failf "line %d: %s in\n%s" l m printed
      in
      check int_t "same op count" (Circuit.size c) (Circuit.size c');
      check int_t "same qubits" c.Circuit.num_qubits c'.Circuit.num_qubits)
    [
      Generate.ghz 5;
      Generate.qft 4;
      Generate.random ~seed:7 ~gates:50 4;
      Generate.sequential_workers ~workers:3 ~span:4 2;
    ]

let test_qasm2_rejects_bit_condition () =
  (* single-bit conditions are not expressible in OpenQASM 2 (only whole
     registers can be compared); the printer must refuse rather than emit
     a wrong program *)
  match Qasm2.to_string (Generate.feedback_rounds ~rounds:3 3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_qasm3_accepts_bit_condition () =
  let c = Generate.feedback_rounds ~rounds:3 3 in
  let c' = Qasm3.parse (Qasm3.to_string c) in
  check int_t "same op count" (Circuit.size c) (Circuit.size c')

(* ------------------------------------------------------------------ *)
(* OpenQASM 3                                                           *)

let bell_qasm3 =
  {|OPENQASM 3;
include "stdgates.inc";
qubit[2] q;
bit[2] c;
h q[0];
cx q[0], q[1];
c[0] = measure q[0];
c[1] = measure q[1];
|}

let test_qasm3_bell () =
  let c = Qasm3.parse bell_qasm3 in
  check bool_t "equals generated Bell" true (Circuit.equal c (Generate.bell ()))

let test_qasm3_for_loop () =
  (* the paper's Ex. 4 workload, written in OpenQASM 3 *)
  let src =
    {|OPENQASM 3;
include "stdgates.inc";
qubit[10] q;
for uint i in [0:9] { h q[i]; }
|}
  in
  let c = Qasm3.parse src in
  check int_t "ten h gates" 10 (Circuit.gate_count ~name:"h" c);
  check bool_t "equals h_layer" true (Circuit.equal c (Generate.h_layer 10))

let test_qasm3_for_step_and_nesting () =
  let src =
    {|OPENQASM 3;
include "stdgates.inc";
qubit[8] q;
for uint i in [0:2:6] {
  for uint j in [0:1] {
    x q[i + j];
  }
}
|}
  in
  let c = Qasm3.parse src in
  check int_t "8 x gates" 8 (Circuit.gate_count ~name:"x" c)

let test_qasm3_if () =
  let src =
    {|OPENQASM 3;
include "stdgates.inc";
qubit[2] q;
bit[1] c;
h q[0];
c[0] = measure q[0];
if (c[0] == 1) { x q[1]; }
|}
  in
  let c = Qasm3.parse src in
  match List.rev c.Circuit.ops with
  | { Circuit.kind = Circuit.Gate (Gate.X, [ 1 ]); cond = Some cond } :: _ ->
    check int_t "value" 1 cond.Circuit.value
  | _ -> Alcotest.fail "expected conditioned x"

let test_qasm3_roundtrip () =
  List.iter
    (fun c ->
      let printed = Qasm3.to_string c in
      let c' =
        try Qasm3.parse printed
        with Qasm3.Error (l, m) ->
          Alcotest.failf "line %d: %s in\n%s" l m printed
      in
      check int_t "same op count" (Circuit.size c) (Circuit.size c'))
    [ Generate.bell (); Generate.ghz 4; Generate.qft 3 ]

(* ------------------------------------------------------------------ *)
(* Circuit metrics                                                      *)

let test_depth () =
  let c = Generate.ghz 4 in
  (* h, cx, cx, cx chain + measurements: depth 4 + 1 *)
  check int_t "ghz depth" 5 (Circuit.depth c);
  check int_t "h_layer depth" 1 (Circuit.depth (Generate.h_layer 8))

let test_validate_rejects () =
  let bad () =
    Circuit.validate
      (Circuit.create ~num_qubits:1 ~num_clbits:0
         [ Circuit.gate Gate.Cx [ 0; 0 ] ])
  in
  match bad () with
  | exception Circuit.Invalid _ -> ()
  | _ -> Alcotest.fail "expected Invalid"

let test_inverse () =
  let c = Generate.qft 3 in
  let ci = Circuit.inverse c in
  check int_t "same size" (Circuit.size c) (Circuit.size ci);
  (* applying qft then its inverse is the identity on |0..0> *)
  let st, _ = Qsim.Statevector.run_circuit (Circuit.append c ci) in
  check (Alcotest.float 1e-9) "back to |000>" 1.0
    (Qsim.Statevector.probability st 0)

(* ------------------------------------------------------------------ *)
(* Peephole optimizer                                                   *)

let test_opt_cancels_hh () =
  let b = Circuit.Build.create ~num_qubits:1 () in
  Circuit.Build.gate b Gate.H [ 0 ];
  Circuit.Build.gate b Gate.H [ 0 ];
  let c, stats = Circuit_opt.optimize (Circuit.Build.finish b) in
  check int_t "empty" 0 (Circuit.size c);
  check int_t "one cancellation" 1 stats.Circuit_opt.cancelled

let test_opt_cancels_cx_pair () =
  let b = Circuit.Build.create ~num_qubits:2 () in
  Circuit.Build.gate b Gate.Cx [ 0; 1 ];
  Circuit.Build.gate b Gate.Cx [ 0; 1 ];
  let c, _ = Circuit_opt.optimize (Circuit.Build.finish b) in
  check int_t "empty" 0 (Circuit.size c)

let test_opt_does_not_cancel_reversed_cx () =
  let b = Circuit.Build.create ~num_qubits:2 () in
  Circuit.Build.gate b Gate.Cx [ 0; 1 ];
  Circuit.Build.gate b Gate.Cx [ 1; 0 ];
  let c, _ = Circuit_opt.optimize (Circuit.Build.finish b) in
  check int_t "both kept" 2 (Circuit.size c)

let test_opt_merges_rotations () =
  let b = Circuit.Build.create ~num_qubits:1 () in
  Circuit.Build.gate b (Gate.Rz 0.3) [ 0 ];
  Circuit.Build.gate b (Gate.Rz 0.4) [ 0 ];
  let c, stats = Circuit_opt.optimize (Circuit.Build.finish b) in
  check int_t "merged to one" 1 (Circuit.size c);
  check int_t "one merge" 1 stats.Circuit_opt.merged;
  match (List.hd c.Circuit.ops).Circuit.kind with
  | Circuit.Gate (Gate.Rz t, _) -> check (Alcotest.float 1e-12) "sum" 0.7 t
  | _ -> Alcotest.fail "expected rz"

let test_opt_t_t_becomes_s () =
  let b = Circuit.Build.create ~num_qubits:1 () in
  Circuit.Build.gate b Gate.T [ 0 ];
  Circuit.Build.gate b Gate.T [ 0 ];
  let c, _ = Circuit_opt.optimize (Circuit.Build.finish b) in
  match List.map (fun (o : Circuit.op) -> o.Circuit.kind) c.Circuit.ops with
  | [ Circuit.Gate (Gate.S, [ 0 ]) ] -> ()
  | _ -> Alcotest.fail "expected a single s gate"

let test_opt_blocked_by_intervening_op () =
  let b = Circuit.Build.create ~num_qubits:2 () in
  Circuit.Build.gate b Gate.H [ 0 ];
  Circuit.Build.gate b Gate.Cx [ 0; 1 ];
  Circuit.Build.gate b Gate.H [ 0 ];
  let c, _ = Circuit_opt.optimize (Circuit.Build.finish b) in
  check int_t "nothing cancelled" 3 (Circuit.size c)

let test_opt_blocked_by_measure () =
  let b = Circuit.Build.create ~num_qubits:1 ~num_clbits:1 () in
  Circuit.Build.gate b Gate.X [ 0 ];
  Circuit.Build.measure b 0 0;
  Circuit.Build.gate b Gate.X [ 0 ];
  let c, _ = Circuit_opt.optimize (Circuit.Build.finish b) in
  check int_t "nothing cancelled" 3 (Circuit.size c)

let test_opt_conditions_block () =
  let b = Circuit.Build.create ~num_qubits:1 ~num_clbits:1 () in
  let cond = { Circuit.cbits = [ 0 ]; value = 1 } in
  Circuit.Build.gate b Gate.X [ 0 ];
  Circuit.Build.gate b ~cond Gate.X [ 0 ];
  let c, _ = Circuit_opt.optimize (Circuit.Build.finish b) in
  check int_t "conditioned op not cancelled" 2 (Circuit.size c)

let test_opt_removes_identity_rotation () =
  let b = Circuit.Build.create ~num_qubits:1 () in
  Circuit.Build.gate b (Gate.Rz 0.0) [ 0 ];
  Circuit.Build.gate b Gate.X [ 0 ];
  let c, stats = Circuit_opt.optimize (Circuit.Build.finish b) in
  check int_t "one left" 1 (Circuit.size c);
  check int_t "identity removed" 1 stats.Circuit_opt.removed_identities

(* Property: peephole optimization preserves the state (up to global
   phase, hence fidelity) on measurement-free random circuits. *)
let prop_opt_preserves_state =
  QCheck2.Test.make ~count:50 ~name:"peephole optimization preserves the state"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 2 5))
    (fun (seed, n) ->
      let c = Generate.random ~seed ~gates:60 n in
      let c', _ = Circuit_opt.optimize_fixpoint c in
      let st, _ = Qsim.Statevector.run_circuit c in
      let st', _ = Qsim.Statevector.run_circuit c' in
      Float.abs (Qsim.Statevector.fidelity st st' -. 1.0) < 1e-9)

(* Property: QASM2 round-trip preserves the circuit semantics. *)
let prop_qasm2_roundtrip =
  QCheck2.Test.make ~count:50 ~name:"qasm2 round-trip preserves the state"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 2 5))
    (fun (seed, n) ->
      let c = Generate.random ~seed ~gates:40 n in
      let c' = Qasm2.parse (Qasm2.to_string c) in
      let st, _ = Qsim.Statevector.run_circuit c in
      let st', _ = Qsim.Statevector.run_circuit c' in
      Float.abs (Qsim.Statevector.fidelity st st' -. 1.0) < 1e-9)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_opt_preserves_state; prop_qasm2_roundtrip ]

let suite =
  [
    Alcotest.test_case "qasm2: Fig.1 Bell" `Quick test_parse_bell;
    Alcotest.test_case "qasm2: gate macros" `Quick test_parse_gate_macro;
    Alcotest.test_case "qasm2: parametric macros" `Quick
      test_parse_parametric_macro;
    Alcotest.test_case "qasm2: aliasing broadcast rejected" `Quick
      test_parse_broadcast;
    Alcotest.test_case "qasm2: whole-register broadcast" `Quick
      test_parse_broadcast_h;
    Alcotest.test_case "qasm2: if condition" `Quick test_parse_condition;
    Alcotest.test_case "qasm2: multiple registers" `Quick
      test_parse_two_registers;
    Alcotest.test_case "qasm2: error cases" `Quick test_parse_errors;
    Alcotest.test_case "qasm2: Bell round-trip" `Quick
      test_qasm2_roundtrip_bell;
    Alcotest.test_case "qasm2: generated round-trips" `Quick
      test_qasm2_roundtrip_generated;
    Alcotest.test_case "qasm2: bit condition rejected" `Quick
      test_qasm2_rejects_bit_condition;
    Alcotest.test_case "qasm3: bit condition round-trips" `Quick
      test_qasm3_accepts_bit_condition;
    Alcotest.test_case "qasm3: Bell" `Quick test_qasm3_bell;
    Alcotest.test_case "qasm3: Ex.4 for-loop" `Quick test_qasm3_for_loop;
    Alcotest.test_case "qasm3: stepped and nested loops" `Quick
      test_qasm3_for_step_and_nesting;
    Alcotest.test_case "qasm3: if condition" `Quick test_qasm3_if;
    Alcotest.test_case "qasm3: round-trips" `Quick test_qasm3_roundtrip;
    Alcotest.test_case "circuit: depth" `Quick test_depth;
    Alcotest.test_case "circuit: validation" `Quick test_validate_rejects;
    Alcotest.test_case "circuit: inverse undoes qft" `Quick test_inverse;
    Alcotest.test_case "opt: H H cancels" `Quick test_opt_cancels_hh;
    Alcotest.test_case "opt: CX CX cancels" `Quick test_opt_cancels_cx_pair;
    Alcotest.test_case "opt: reversed CX kept" `Quick
      test_opt_does_not_cancel_reversed_cx;
    Alcotest.test_case "opt: rotations merge" `Quick test_opt_merges_rotations;
    Alcotest.test_case "opt: T T -> S" `Quick test_opt_t_t_becomes_s;
    Alcotest.test_case "opt: intervening op blocks" `Quick
      test_opt_blocked_by_intervening_op;
    Alcotest.test_case "opt: measure blocks" `Quick test_opt_blocked_by_measure;
    Alcotest.test_case "opt: conditions block" `Quick test_opt_conditions_block;
    Alcotest.test_case "opt: identity rotation removed" `Quick
      test_opt_removes_identity_rotation;
  ]
  @ props
