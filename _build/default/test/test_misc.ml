(* Additional corner tests: the OpenQASM expression evaluator, the
   interpreter's memory model (GEP over arrays and structs), integer
   cast semantics, and diagnostic quality. *)

open Llvm_ir

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t = Alcotest.float 1e-12

(* ------------------------------------------------------------------ *)
(* Qasm_expr                                                            *)

let eval_str env src =
  let lx = Qcircuit.Qasm_lexer.create src in
  let st = { Qcircuit.Qasm_expr.P.tok = Qcircuit.Qasm_lexer.next lx; lx } in
  Qcircuit.Qasm_expr.eval env (Qcircuit.Qasm_expr.P.parse 0 st)

let test_expr_precedence () =
  check float_t "mul binds tighter" 7.0 (eval_str [] "1 + 2 * 3");
  check float_t "parens" 9.0 (eval_str [] "(1 + 2) * 3");
  check float_t "division" 2.5 (eval_str [] "5 / 2");
  check float_t "left assoc" 1.0 (eval_str [] "5 - 3 - 1");
  check float_t "pow right assoc" 512.0 (eval_str [] "2 ^ 3 ^ 2");
  check float_t "unary minus" (-6.0) (eval_str [] "-2 * 3")

let test_expr_functions () =
  check float_t "pi" Float.pi (eval_str [] "pi");
  check float_t "sin" 1.0 (eval_str [] "sin(pi / 2)");
  check float_t "cos" (-1.0) (eval_str [] "cos(pi)");
  check float_t "sqrt" 3.0 (eval_str [] "sqrt(9)");
  check float_t "ln exp" 1.0 (eval_str [] "ln(exp(1))");
  check float_t "nested" 2.0 (eval_str [] "sqrt(2) * sqrt(2)")

let test_expr_params () =
  check float_t "parameter" 1.5 (eval_str [ ("t", 0.5) ] "t * 3");
  match eval_str [] "unknown + 1" with
  | exception Qcircuit.Qasm_expr.Unbound "unknown" -> ()
  | _ -> Alcotest.fail "expected Unbound"

(* ------------------------------------------------------------------ *)
(* Interpreter memory model                                             *)

let test_interp_gep_array () =
  let src =
    {|
define i64 @f() {
entry:
  %a = alloca [4 x i64]
  %p0 = getelementptr [4 x i64], ptr %a, i64 0, i64 0
  %p2 = getelementptr [4 x i64], ptr %a, i64 0, i64 2
  store i64 11, ptr %p0
  store i64 22, ptr %p2
  %v0 = load i64, ptr %p0
  %v2 = load i64, ptr %p2
  %r = add i64 %v0, %v2
  ret i64 %r
}
|}
  in
  let m = Parser.parse_module src in
  match Interp.run m "f" [] with
  | Interp.VInt (_, n) -> check bool_t "33" true (Int64.equal n 33L)
  | _ -> Alcotest.fail "expected int"

let test_interp_gep_struct () =
  let src =
    {|
define i64 @f() {
entry:
  %s = alloca { i64, i64, i64 }
  %f1 = getelementptr { i64, i64, i64 }, ptr %s, i64 0, i64 1
  %f2 = getelementptr { i64, i64, i64 }, ptr %s, i64 0, i64 2
  store i64 5, ptr %f1
  store i64 7, ptr %f2
  %a = load i64, ptr %f1
  %b = load i64, ptr %f2
  %r = mul i64 %a, %b
  ret i64 %r
}
|}
  in
  let m = Parser.parse_module src in
  match Interp.run m "f" [] with
  | Interp.VInt (_, n) -> check bool_t "35" true (Int64.equal n 35L)
  | _ -> Alcotest.fail "expected int"

let test_interp_dynamic_gep_index () =
  let src =
    {|
define i64 @f(i64 %i) {
entry:
  %a = alloca [4 x i64]
  %p0 = getelementptr [4 x i64], ptr %a, i64 0, i64 0
  %p1 = getelementptr [4 x i64], ptr %a, i64 0, i64 1
  store i64 100, ptr %p0
  store i64 200, ptr %p1
  %pi = getelementptr [4 x i64], ptr %a, i64 0, i64 %i
  %r = load i64, ptr %pi
  ret i64 %r
}
|}
  in
  let m = Parser.parse_module src in
  let run i =
    match Interp.run m "f" [ Interp.VInt (Ty.I64, i) ] with
    | Interp.VInt (_, n) -> n
    | _ -> Alcotest.fail "expected int"
  in
  check bool_t "index 0" true (Int64.equal (run 0L) 100L);
  check bool_t "index 1" true (Int64.equal (run 1L) 200L)

let test_interp_cast_semantics () =
  let src =
    {|
define i64 @f() {
entry:
  %wide = add i32 0, 200
  %byte = trunc i32 %wide to i8
  %back_s = sext i8 %byte to i64
  %back_z = zext i8 %byte to i64
  %r = add i64 %back_s, %back_z
  ret i64 %r
}
|}
  in
  (* 200 as i8 is -56 signed / 200 unsigned: sext -> -56, zext -> 200 *)
  let m = Parser.parse_module src in
  match Interp.run m "f" [] with
  | Interp.VInt (_, n) -> check bool_t "144" true (Int64.equal n 144L)
  | _ -> Alcotest.fail "expected int"

let test_interp_i1_arith () =
  let src =
    {|
define i64 @f(i64 %x) {
entry:
  %c = icmp sgt i64 %x, 10
  %w = zext i1 %c to i64
  ret i64 %w
}
|}
  in
  let m = Parser.parse_module src in
  let run x =
    match Interp.run m "f" [ Interp.VInt (Ty.I64, x) ] with
    | Interp.VInt (_, n) -> n
    | _ -> -1L
  in
  check bool_t "above" true (Int64.equal (run 20L) 1L);
  check bool_t "below" true (Int64.equal (run 5L) 0L)

let test_interp_select () =
  let src =
    {|
define i64 @f(i1 %c) {
entry:
  %r = select i1 %c, i64 42, i64 7
  ret i64 %r
}
|}
  in
  let m = Parser.parse_module src in
  let run c =
    match Interp.run m "f" [ Interp.VInt (Ty.I1, c) ] with
    | Interp.VInt (_, n) -> n
    | _ -> -1L
  in
  check bool_t "true" true (Int64.equal (run 1L) 42L);
  check bool_t "false" true (Int64.equal (run 0L) 7L)

let test_interp_unsigned_division () =
  let src =
    {|
define i64 @f() {
entry:
  %a = sub i64 0, 8
  %q = udiv i64 %a, 2
  %s = sdiv i64 %a, 2
  %r = sub i64 %q, %s
  ret i64 %r
}
|}
  in
  (* -8 unsigned is 2^64-8: udiv 2 = 2^63-4; sdiv = -4 *)
  let m = Parser.parse_module src in
  match Interp.run m "f" [] with
  | Interp.VInt (_, n) ->
    check bool_t "difference" true (Int64.equal n Int64.(add min_int 0L))
  | _ -> Alcotest.fail "expected int"

let test_interp_division_by_zero () =
  let src = "define i64 @f() {\nentry:\n  %r = sdiv i64 1, 0\n  ret i64 %r\n}" in
  let m = Parser.parse_module src in
  match Interp.run m "f" [] with
  | exception Ir_error.Exec_error msg ->
    check bool_t "mentions zero" true
      (Astring.String.is_infix ~affix:"zero" msg)
  | _ -> Alcotest.fail "expected Exec_error"

(* ------------------------------------------------------------------ *)
(* Verifier corners                                                     *)

let test_verifier_phi_mismatch () =
  let src =
    {|
define i64 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %x = phi i64 [ 1, %a ]
  ret i64 %x
}
|}
  in
  let m = Parser.parse_module src in
  check bool_t "missing incoming flagged" true
    (List.exists
       (fun v ->
         Astring.String.is_infix ~affix:"missing an entry"
           v.Verifier.what)
       (Verifier.check_module m))

let test_verifier_call_arity () =
  let src =
    {|
declare void @g(i64, i64)
define void @f() {
entry:
  call void @g(i64 1)
  ret void
}
|}
  in
  let m = Parser.parse_module src in
  check bool_t "arity flagged" true
    (List.exists
       (fun v -> Astring.String.is_infix ~affix:"arguments" v.Verifier.what)
       (Verifier.check_module m))

let test_verifier_duplicate_def () =
  let src =
    "define void @f() {\nentry:\n  %x = add i64 1, 1\n  %x = add i64 2, 2\n\
    \  ret void\n}"
  in
  let m = Parser.parse_module src in
  check bool_t "duplicate flagged" true
    (List.exists
       (fun v -> Astring.String.is_infix ~affix:"more than once" v.Verifier.what)
       (Verifier.check_module m))

let suite =
  [
    Alcotest.test_case "expr: precedence" `Quick test_expr_precedence;
    Alcotest.test_case "expr: functions" `Quick test_expr_functions;
    Alcotest.test_case "expr: parameters" `Quick test_expr_params;
    Alcotest.test_case "interp: gep over arrays" `Quick test_interp_gep_array;
    Alcotest.test_case "interp: gep over structs" `Quick
      test_interp_gep_struct;
    Alcotest.test_case "interp: dynamic gep index" `Quick
      test_interp_dynamic_gep_index;
    Alcotest.test_case "interp: trunc/sext/zext" `Quick
      test_interp_cast_semantics;
    Alcotest.test_case "interp: i1 arithmetic" `Quick test_interp_i1_arith;
    Alcotest.test_case "interp: select" `Quick test_interp_select;
    Alcotest.test_case "interp: unsigned division" `Quick
      test_interp_unsigned_division;
    Alcotest.test_case "interp: division by zero" `Quick
      test_interp_division_by_zero;
    Alcotest.test_case "verifier: phi incoming" `Quick
      test_verifier_phi_mismatch;
    Alcotest.test_case "verifier: call arity" `Quick test_verifier_call_arity;
    Alcotest.test_case "verifier: duplicate definition" `Quick
      test_verifier_duplicate_def;
  ]
