(* Tests for the simulator backends: statevector correctness against known
   states, stabilizer correctness, and agreement between the two on
   Clifford circuits. *)

open Qcircuit
open Qsim

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t = Alcotest.float 1e-9

let inv_sqrt2 = 1.0 /. sqrt 2.0

(* ------------------------------------------------------------------ *)
(* Statevector                                                          *)

let test_bell_amplitudes () =
  let st = Statevector.create 2 in
  Statevector.apply st Gate.H [ 0 ];
  Statevector.apply st Gate.Cx [ 0; 1 ];
  (* (|00> + |11>) / sqrt 2 *)
  check float_t "p(|00>)" 0.5 (Statevector.probability st 0);
  check float_t "p(|01>)" 0.0 (Statevector.probability st 1);
  check float_t "p(|10>)" 0.0 (Statevector.probability st 2);
  check float_t "p(|11>)" 0.5 (Statevector.probability st 3)

let test_h_amplitudes () =
  let st = Statevector.create 1 in
  Statevector.apply st Gate.H [ 0 ];
  check float_t "re(0)" inv_sqrt2 (Statevector.amplitude st 0).Complex.re;
  check float_t "re(1)" inv_sqrt2 (Statevector.amplitude st 1).Complex.re

let test_x_flips () =
  let st = Statevector.create 3 in
  Statevector.apply st Gate.X [ 1 ];
  (* state |010> = index 2 *)
  check float_t "p(2)" 1.0 (Statevector.probability st 2)

let test_cx_control_order () =
  (* control qubit 1, target qubit 0: |10> (q1=1) -> |11> *)
  let st = Statevector.create 2 in
  Statevector.apply st Gate.X [ 1 ];
  Statevector.apply st Gate.Cx [ 1; 0 ];
  check float_t "p(|q1 q0> = 11)" 1.0 (Statevector.probability st 3)

let test_ccx_truth_table () =
  (* all 8 basis inputs: target flips iff both controls are 1 *)
  for input = 0 to 7 do
    let st = Statevector.create 3 in
    if input land 1 <> 0 then Statevector.apply st Gate.X [ 0 ];
    if input land 2 <> 0 then Statevector.apply st Gate.X [ 1 ];
    if input land 4 <> 0 then Statevector.apply st Gate.X [ 2 ];
    Statevector.apply st Gate.Ccx [ 0; 1; 2 ];
    let expected =
      if input land 1 <> 0 && input land 2 <> 0 then input lxor 4 else input
    in
    check float_t
      (Printf.sprintf "ccx input %d" input)
      1.0
      (Statevector.probability st expected)
  done

let test_swap () =
  let st = Statevector.create 2 in
  Statevector.apply st Gate.X [ 0 ];
  Statevector.apply st Gate.Swap [ 0; 1 ];
  check float_t "p(|q1=1,q0=0>)" 1.0 (Statevector.probability st 2)

let test_measure_collapses () =
  let st = Statevector.create ~seed:7 2 in
  Statevector.apply st Gate.H [ 0 ];
  Statevector.apply st Gate.Cx [ 0; 1 ];
  let m0 = Statevector.measure st 0 in
  let m1 = Statevector.measure st 1 in
  check bool_t "correlated" true (m0 = m1);
  (* state is now a basis state *)
  let idx = (if m0 then 1 else 0) lor if m1 then 2 else 0 in
  check float_t "collapsed" 1.0 (Statevector.probability st idx)

let test_measure_statistics () =
  (* H|0> measured 1000 times lands near 50/50 *)
  let ones = ref 0 in
  for seed = 1 to 1000 do
    let st = Statevector.create ~seed 1 in
    Statevector.apply st Gate.H [ 0 ];
    if Statevector.measure st 0 then incr ones
  done;
  check bool_t "roughly half ones" true (!ones > 400 && !ones < 600)

let test_reset () =
  let st = Statevector.create ~seed:3 1 in
  Statevector.apply st Gate.X [ 0 ];
  Statevector.reset st 0;
  check float_t "back to |0>" 1.0 (Statevector.probability st 0)

let test_add_qubit () =
  let st = Statevector.create 1 in
  Statevector.apply st Gate.H [ 0 ];
  Statevector.add_qubit st;
  check int_t "two qubits" 2 (Statevector.num_qubits st);
  (* new qubit in |0>, old state preserved *)
  check float_t "p(|00>)" 0.5 (Statevector.probability st 0);
  check float_t "p(|01>)" 0.5 (Statevector.probability st 1);
  check float_t "p(1 on new)" 0.0 (Statevector.prob_one st 1);
  (* the new qubit is usable *)
  Statevector.apply st Gate.Cx [ 0; 1 ];
  check float_t "entangled" 0.5 (Statevector.probability st 3)

let test_expectation_z () =
  let st = Statevector.create 1 in
  check float_t "<Z> of |0>" 1.0 (Statevector.expectation_z st 0);
  Statevector.apply st Gate.X [ 0 ];
  check float_t "<Z> of |1>" (-1.0) (Statevector.expectation_z st 0);
  Statevector.apply st Gate.H [ 0 ];
  check float_t "<Z> of |->" 0.0 (Statevector.expectation_z st 0)

let test_run_circuit_with_condition () =
  (* teleport-style correction: measure then conditionally flip *)
  let b = Circuit.Build.create ~num_qubits:2 ~num_clbits:1 () in
  Circuit.Build.gate b Gate.X [ 0 ];
  Circuit.Build.measure b 0 0;
  Circuit.Build.gate b ~cond:{ Circuit.cbits = [ 0 ]; value = 1 } Gate.X [ 1 ];
  let st, clbits = Statevector.run_circuit (Circuit.Build.finish b) in
  check bool_t "measured one" true clbits.(0);
  check float_t "correction applied" 1.0 (Statevector.prob_one st 1)

(* ------------------------------------------------------------------ *)
(* Gate-matrix properties                                               *)

let mat_mul_adjoint (u : Complex.t array array) =
  let n = Array.length u in
  Array.init n (fun i ->
      Array.init n (fun j ->
          let acc = ref Complex.zero in
          for k = 0 to n - 1 do
            acc := Complex.add !acc (Complex.mul u.(i).(k) (Complex.conj u.(j).(k)))
          done;
          !acc))

let is_unitary u =
  let p = mat_mul_adjoint u in
  let n = Array.length u in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let expected = if i = j then Complex.one else Complex.zero in
      if Complex.norm (Complex.sub p.(i).(j) expected) > 1e-9 then ok := false
    done
  done;
  !ok

let gen_gate_1q =
  let open QCheck2.Gen in
  let* theta = float_range (-10.0) 10.0 in
  let* phi = float_range (-10.0) 10.0 in
  let* lam = float_range (-10.0) 10.0 in
  oneofl
    [
      Gate.H; Gate.X; Gate.Y; Gate.Z; Gate.S; Gate.Sdg; Gate.T; Gate.Tdg;
      Gate.Sx; Gate.Sxdg; Gate.Rx theta; Gate.Ry theta; Gate.Rz theta;
      Gate.P lam; Gate.U (theta, phi, lam);
    ]

let prop_1q_matrices_unitary =
  QCheck2.Test.make ~count:100 ~name:"1q gate matrices are unitary" gen_gate_1q
    (fun g -> is_unitary (Gate.matrix_1q g))

let prop_2q_matrices_unitary =
  let gen =
    let open QCheck2.Gen in
    let* t = float_range (-10.0) 10.0 in
    oneofl
      [
        Gate.Cx; Gate.Cy; Gate.Cz; Gate.Ch; Gate.Swap; Gate.Crx t; Gate.Cry t;
        Gate.Crz t; Gate.Cp t; Gate.Cu (t, t /. 2.0, t /. 3.0);
      ]
  in
  QCheck2.Test.make ~count:100 ~name:"2q gate matrices are unitary" gen
    (fun g -> is_unitary (Gate.matrix_2q g))

let prop_gate_inverse_is_inverse =
  QCheck2.Test.make ~count:100 ~name:"g . inverse g = identity on the state"
    QCheck2.Gen.(pair gen_gate_1q (int_range 0 1000))
    (fun (g, seed) ->
      let st = Statevector.create ~seed 2 in
      (* arbitrary state via a couple of gates *)
      Statevector.apply st (Gate.Ry 0.7) [ 0 ];
      Statevector.apply st Gate.Cx [ 0; 1 ];
      let reference = Statevector.create ~seed 2 in
      Statevector.apply reference (Gate.Ry 0.7) [ 0 ];
      Statevector.apply reference Gate.Cx [ 0; 1 ];
      Statevector.apply st g [ 0 ];
      Statevector.apply st (Gate.inverse g) [ 0 ];
      Float.abs (Statevector.fidelity st reference -. 1.0) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Stabilizer                                                           *)

let test_stab_bell () =
  let st = Stabilizer.create ~seed:5 2 in
  Stabilizer.apply st Gate.H [ 0 ];
  Stabilizer.apply st Gate.Cx [ 0; 1 ];
  check float_t "random outcome" 0.5 (Stabilizer.prob_one st 0);
  let m0 = Stabilizer.measure st 0 in
  let m1 = Stabilizer.measure st 1 in
  check bool_t "correlated" true (m0 = m1)

let test_stab_deterministic () =
  let st = Stabilizer.create 1 in
  check float_t "fresh |0>" 0.0 (Stabilizer.prob_one st 0);
  Stabilizer.apply st Gate.X [ 0 ];
  check float_t "after X" 1.0 (Stabilizer.prob_one st 0);
  check bool_t "measures one" true (Stabilizer.measure st 0);
  (* measurement of a deterministic state does not disturb it *)
  check bool_t "measures one again" true (Stabilizer.measure st 0)

let test_stab_rejects_t () =
  let st = Stabilizer.create 1 in
  match Stabilizer.apply st Gate.T [ 0 ] with
  | exception Stabilizer.Not_clifford _ -> ()
  | _ -> Alcotest.fail "expected Not_clifford"

let test_stab_add_qubit () =
  let st = Stabilizer.create ~seed:3 1 in
  Stabilizer.apply st Gate.X [ 0 ];
  Stabilizer.add_qubit st;
  check int_t "two qubits" 2 (Stabilizer.num_qubits st);
  check float_t "old qubit still 1" 1.0 (Stabilizer.prob_one st 0);
  check float_t "new qubit is 0" 0.0 (Stabilizer.prob_one st 1);
  Stabilizer.apply st Gate.Cx [ 0; 1 ];
  check float_t "cx onto new qubit" 1.0 (Stabilizer.prob_one st 1)

(* Agreement: on random Clifford circuits, the two backends assign the
   same single-qubit outcome probabilities. *)
let prop_backends_agree =
  QCheck2.Test.make ~count:40 ~name:"stabilizer agrees with statevector"
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 2 5))
    (fun (seed, n) ->
      let c = Generate.random_clifford ~seed ~gates:40 n in
      let sv = Statevector.create n in
      let sb = Stabilizer.create n in
      List.iter
        (fun (op : Circuit.op) ->
          match op.Circuit.kind with
          | Circuit.Gate (g, qs) ->
            Statevector.apply sv g qs;
            Stabilizer.apply sb g qs
          | _ -> ())
        c.Circuit.ops;
      let ok = ref true in
      for q = 0 to n - 1 do
        let p_sv = Statevector.prob_one sv q in
        let p_sb = Stabilizer.prob_one sb q in
        if Float.abs (p_sv -. p_sb) > 1e-9 then ok := false
      done;
      !ok)

(* Sampled measurement outcomes also agree in distribution on GHZ. *)
let test_stab_ghz_statistics () =
  let all_equal = ref 0 in
  for seed = 1 to 200 do
    let st = Stabilizer.create ~seed 4 in
    Stabilizer.apply st Gate.H [ 0 ];
    for i = 0 to 2 do
      Stabilizer.apply st Gate.Cx [ i; i + 1 ]
    done;
    let bits = List.init 4 (fun q -> Stabilizer.measure st q) in
    match bits with
    | b :: rest when List.for_all (Bool.equal b) rest -> incr all_equal
    | _ -> ()
  done;
  check int_t "GHZ outcomes all-0 or all-1" 200 !all_equal

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_1q_matrices_unitary;
      prop_2q_matrices_unitary;
      prop_gate_inverse_is_inverse;
      prop_backends_agree;
    ]

let suite =
  [
    Alcotest.test_case "sv: Bell amplitudes" `Quick test_bell_amplitudes;
    Alcotest.test_case "sv: H amplitudes" `Quick test_h_amplitudes;
    Alcotest.test_case "sv: X on middle qubit" `Quick test_x_flips;
    Alcotest.test_case "sv: CX operand order" `Quick test_cx_control_order;
    Alcotest.test_case "sv: CCX truth table" `Quick test_ccx_truth_table;
    Alcotest.test_case "sv: SWAP" `Quick test_swap;
    Alcotest.test_case "sv: measurement collapses" `Quick
      test_measure_collapses;
    Alcotest.test_case "sv: measurement statistics" `Quick
      test_measure_statistics;
    Alcotest.test_case "sv: reset" `Quick test_reset;
    Alcotest.test_case "sv: dynamic qubit growth" `Quick test_add_qubit;
    Alcotest.test_case "sv: Z expectation" `Quick test_expectation_z;
    Alcotest.test_case "sv: conditioned execution" `Quick
      test_run_circuit_with_condition;
    Alcotest.test_case "stab: Bell" `Quick test_stab_bell;
    Alcotest.test_case "stab: deterministic measurement" `Quick
      test_stab_deterministic;
    Alcotest.test_case "stab: rejects T" `Quick test_stab_rejects_t;
    Alcotest.test_case "stab: dynamic qubit growth" `Quick test_stab_add_qubit;
    Alcotest.test_case "stab: GHZ statistics" `Quick test_stab_ghz_statistics;
  ]
  @ props
