declare void @__quantum__qis__h__body(ptr)

define void @main() "entry_point" {
entry:
  %i = alloca i32, align 4
  store i32 0, ptr %i, align 4
  br label %for.header

for.header:
  %1 = load i32, ptr %i, align 4
  %cond = icmp slt i32 %1, 10
  br i1 %cond, label %body, label %exit

body:
  %2 = load i32, ptr %i, align 4
  %idx = sext i32 %2 to i64
  %qb = inttoptr i64 %idx to ptr
  call void @__quantum__qis__h__body(ptr %qb)
  %3 = load i32, ptr %i, align 4
  %4 = add nsw i32 %3, 1
  store i32 %4, ptr %i, align 4
  br label %for.header

exit:
  ret void
}
