(* Tests for the depolarizing noise model and its interaction with
   circuit optimization (fewer gates -> higher fidelity). *)

open Qcircuit
open Qsim

let check = Alcotest.check
let bool_t = Alcotest.bool
let float_t = Alcotest.float 1e-9

let test_noiseless_is_ideal () =
  let c = Generate.qft 4 in
  let f =
    Noise.average_fidelity ~seed:3 ~params:Noise.noiseless ~trials:3 c
  in
  check float_t "fidelity 1" 1.0 f

let test_noise_reduces_fidelity () =
  let c = Generate.random ~seed:5 ~gates:120 4 in
  let f =
    Noise.average_fidelity ~seed:3
      ~params:{ Noise.default with Noise.p1 = 0.02; p2 = 0.05 }
      ~trials:30 c
  in
  check bool_t "below 0.9" true (f < 0.9);
  check bool_t "above 0" true (f > 0.0)

let test_more_gates_lower_fidelity () =
  let params = { Noise.default with Noise.p1 = 0.01; p2 = 0.03 } in
  let fid gates =
    Noise.average_fidelity ~seed:11 ~params ~trials:40
      (Generate.random ~seed:5 ~gates 4)
  in
  let f_short = fid 20 and f_long = fid 200 in
  check bool_t
    (Printf.sprintf "20 gates (%.3f) beats 200 gates (%.3f)" f_short f_long)
    true (f_short > f_long)

let test_optimization_improves_fidelity () =
  (* a heavily redundant circuit: the peephole-optimized version suffers
     fewer error opportunities under the same noise *)
  let b = Circuit.Build.create ~num_qubits:3 () in
  for _ = 1 to 12 do
    for q = 0 to 2 do
      Circuit.Build.gate b Gate.H [ q ];
      Circuit.Build.gate b Gate.H [ q ];
      Circuit.Build.gate b (Gate.Rz 0.1) [ q ];
      Circuit.Build.gate b (Gate.Rz 0.2) [ q ]
    done;
    Circuit.Build.gate b Gate.Cx [ 0; 1 ];
    Circuit.Build.gate b Gate.Cx [ 0; 1 ]
  done;
  Circuit.Build.gate b Gate.Cx [ 1; 2 ];
  let c = Circuit.Build.finish b in
  let optimized, _ = Circuit_opt.optimize_fixpoint c in
  check bool_t "optimizer shrank the circuit" true
    (Circuit.size optimized < Circuit.size c / 3);
  let params = { Noise.default with Noise.p1 = 0.01; p2 = 0.03 } in
  let f_raw = Noise.average_fidelity ~seed:7 ~params ~trials:40 c in
  let f_opt = Noise.average_fidelity ~seed:7 ~params ~trials:40 optimized in
  check bool_t
    (Printf.sprintf "optimized %.3f > raw %.3f" f_opt f_raw)
    true (f_opt > f_raw)

let test_readout_error () =
  (* |0> measured with readout error flips sometimes *)
  let flips = ref 0 in
  for seed = 1 to 400 do
    let t =
      Noise.create ~seed
        ~params:{ Noise.noiseless with Noise.p_readout = 0.25 }
        1
    in
    if Noise.measure t 0 then incr flips
  done;
  check bool_t "some flips" true (!flips > 50);
  check bool_t "not too many" true (!flips < 150)

let test_error_count_reported () =
  let c = Generate.random ~seed:2 ~gates:300 4 in
  let t, _ =
    Noise.run_circuit ~seed:5
      ~params:{ Noise.default with Noise.p1 = 0.05; p2 = 0.1 }
      c
  in
  check bool_t "errors were injected" true (Noise.error_count t > 0)

let suite =
  [
    Alcotest.test_case "noiseless = ideal" `Quick test_noiseless_is_ideal;
    Alcotest.test_case "noise reduces fidelity" `Quick
      test_noise_reduces_fidelity;
    Alcotest.test_case "fidelity decreases with gates" `Quick
      test_more_gates_lower_fidelity;
    Alcotest.test_case "optimization improves fidelity" `Quick
      test_optimization_improves_fidelity;
    Alcotest.test_case "readout error" `Quick test_readout_error;
    Alcotest.test_case "error counter" `Quick test_error_count_reported;
  ]
