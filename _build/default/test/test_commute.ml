(* Tests for commutation-aware cancellation. *)

open Qcircuit

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let build f =
  let b = Circuit.Build.create () in
  f b;
  Circuit.Build.finish b

let test_x_through_cx_target () =
  let c =
    build (fun b ->
        Circuit.Build.gate b Gate.X [ 1 ];
        Circuit.Build.gate b Gate.Cx [ 0; 1 ];
        Circuit.Build.gate b Gate.X [ 1 ])
  in
  let c', stats = Commute_opt.optimize c in
  check int_t "one cancellation" 1 stats.Commute_opt.cancelled;
  check int_t "cx remains" 1 (Circuit.size c')

let test_rz_through_cx_control () =
  let c =
    build (fun b ->
        Circuit.Build.gate b (Gate.Rz 0.3) [ 0 ];
        Circuit.Build.gate b Gate.Cx [ 0; 1 ];
        Circuit.Build.gate b (Gate.Rz 0.4) [ 0 ])
  in
  let c', stats = Commute_opt.optimize c in
  check int_t "one merge" 1 stats.Commute_opt.merged;
  check int_t "two ops left" 2 (Circuit.size c');
  match List.map (fun (o : Circuit.op) -> o.Circuit.kind) c'.Circuit.ops with
  | [ Circuit.Gate (Gate.Cx, _); Circuit.Gate (Gate.Rz t, [ 0 ]) ] ->
    check (Alcotest.float 1e-12) "sum" 0.7 t
  | _ -> Alcotest.fail "unexpected result"

let test_z_not_through_cx_target () =
  (* Z on the target does NOT commute with CX: nothing may combine *)
  let c =
    build (fun b ->
        Circuit.Build.gate b Gate.Z [ 1 ];
        Circuit.Build.gate b Gate.Cx [ 0; 1 ];
        Circuit.Build.gate b Gate.Z [ 1 ])
  in
  let c', _ = Commute_opt.optimize c in
  check int_t "all kept" 3 (Circuit.size c')

let test_x_not_through_cx_control () =
  let c =
    build (fun b ->
        Circuit.Build.gate b Gate.X [ 0 ];
        Circuit.Build.gate b Gate.Cx [ 0; 1 ];
        Circuit.Build.gate b Gate.X [ 0 ])
  in
  let c', _ = Commute_opt.optimize c in
  check int_t "all kept" 3 (Circuit.size c')

let test_cx_pair_through_rz () =
  let c =
    build (fun b ->
        Circuit.Build.gate b Gate.Cx [ 0; 1 ];
        Circuit.Build.gate b (Gate.Rz 0.5) [ 0 ];
        Circuit.Build.gate b Gate.X [ 1 ];
        Circuit.Build.gate b Gate.Cx [ 0; 1 ])
  in
  let c', stats = Commute_opt.optimize c in
  check int_t "cx pair cancelled" 1 stats.Commute_opt.cancelled;
  check int_t "two 1q gates left" 2 (Circuit.size c')

let test_measure_blocks () =
  let c =
    build (fun b ->
        Circuit.Build.gate b Gate.X [ 0 ];
        Circuit.Build.measure b 0 0;
        Circuit.Build.gate b Gate.X [ 0 ])
  in
  let c', _ = Commute_opt.optimize c in
  check int_t "all kept" 3 (Circuit.size c')

let test_condition_blocks () =
  let c =
    build (fun b ->
        Circuit.Build.measure b 1 0;
        Circuit.Build.gate b (Gate.Rz 0.1) [ 0 ];
        Circuit.Build.gate b ~cond:{ Circuit.cbits = [ 0 ]; value = 1 }
          (Gate.Rz 0.2) [ 0 ];
        Circuit.Build.gate b (Gate.Rz 0.3) [ 0 ])
  in
  let c', stats = Commute_opt.optimize c in
  ignore c';
  check int_t "nothing merged across the condition" 0
    stats.Commute_opt.merged

(* Soundness: optimization preserves the state on random circuits. *)
let prop_preserves_state =
  QCheck2.Test.make ~count:80
    ~name:"commutation-aware optimization preserves the state"
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 2 5))
    (fun (seed, n) ->
      let c = Generate.random ~seed ~gates:50 n in
      let c', _ = Commute_opt.optimize_fixpoint c in
      let st, _ = Qsim.Statevector.run_circuit c in
      let st', _ = Qsim.Statevector.run_circuit c' in
      Float.abs (Qsim.Statevector.fidelity st st' -. 1.0) < 1e-9)

(* Never grows the circuit, and composing it after the adjacent-only
   optimizer can only shrink further (both sound and state-preserving). *)
let prop_at_least_adjacent =
  QCheck2.Test.make ~count:60 ~name:"composition with adjacent-only shrinks"
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 2 5))
    (fun (seed, n) ->
      let c = Generate.random ~seed ~gates:50 n in
      let adjacent, _ = Circuit_opt.optimize_fixpoint c in
      let both, _ = Commute_opt.optimize_fixpoint adjacent in
      Circuit.size both <= Circuit.size adjacent
      &&
      let st, _ = Qsim.Statevector.run_circuit c in
      let st', _ = Qsim.Statevector.run_circuit both in
      Float.abs (Qsim.Statevector.fidelity st st' -. 1.0) < 1e-9)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_preserves_state; prop_at_least_adjacent ]

let suite =
  [
    Alcotest.test_case "x through cx target" `Quick test_x_through_cx_target;
    Alcotest.test_case "rz through cx control" `Quick
      test_rz_through_cx_control;
    Alcotest.test_case "z blocked at cx target" `Quick
      test_z_not_through_cx_target;
    Alcotest.test_case "x blocked at cx control" `Quick
      test_x_not_through_cx_control;
    Alcotest.test_case "cx pair through middle" `Quick
      test_cx_pair_through_rz;
    Alcotest.test_case "measure blocks" `Quick test_measure_blocks;
    Alcotest.test_case "condition blocks" `Quick test_condition_blocks;
  ]
  @ props
