(* Tests for the optimization passes: each pass individually, the preset
   pipelines, and semantic-preservation properties (the interpreter result
   is unchanged by optimization). *)

open Llvm_ir
open Passes

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let parse = Parser.parse_module

let run_i64 m name args =
  match Interp.run m name (List.map (fun n -> Interp.VInt (Ty.I64, n)) args) with
  | Interp.VInt (_, n) -> n
  | _ -> Alcotest.fail "expected an integer result"

let verify m =
  match Verifier.check_module m with
  | [] -> ()
  | v :: _ -> Alcotest.failf "verifier: %a" Verifier.pp_violation v

let count_instrs m name =
  let f = Ir_module.find_func_exn m name in
  Func.fold_instrs f 0 (fun acc _ -> acc + 1)

let count_calls m name callee =
  let f = Ir_module.find_func_exn m name in
  Func.fold_instrs f 0 (fun acc (i : Instr.t) ->
      match i.Instr.op with
      | Instr.Call (_, c, _) when String.equal c callee -> acc + 1
      | _ -> acc)

let block_count m name =
  List.length (Ir_module.find_func_exn m name).Func.blocks

(* ------------------------------------------------------------------ *)
(* mem2reg                                                              *)

let alloca_sum =
  {|
define i64 @sum(i64 %n) {
entry:
  %acc = alloca i64
  %i = alloca i64
  store i64 0, ptr %acc
  store i64 0, ptr %i
  br label %header
header:
  %iv = load i64, ptr %i
  %c = icmp slt i64 %iv, %n
  br i1 %c, label %body, label %done
body:
  %a = load i64, ptr %acc
  %a2 = add i64 %a, %iv
  store i64 %a2, ptr %acc
  %i2 = add i64 %iv, 1
  store i64 %i2, ptr %i
  br label %header
done:
  %r = load i64, ptr %acc
  ret i64 %r
}
|}

let test_mem2reg_promotes_loop () =
  let m = parse alloca_sum in
  let m', changed = (Pass.of_func_pass Mem2reg.pass).Pass.mrun m in
  check bool_t "changed" true changed;
  verify m';
  (* all allocas, loads and stores are gone *)
  let f = Ir_module.find_func_exn m' "sum" in
  Func.iter_instrs f (fun (i : Instr.t) ->
      match i.Instr.op with
      | Instr.Alloca _ | Instr.Load _ | Instr.Store _ ->
        Alcotest.fail "memory operation survived mem2reg"
      | _ -> ());
  check bool_t "semantics preserved" true
    (Int64.equal (run_i64 m' "sum" [ 10L ]) 45L)

let test_mem2reg_leaves_escaping_allocas () =
  let src =
    {|
declare void @use(ptr)
define void @f() {
entry:
  %a = alloca i64
  store i64 1, ptr %a
  call void @use(ptr %a)
  ret void
}
|}
  in
  let m = parse src in
  let m', _ = (Pass.of_func_pass Mem2reg.pass).Pass.mrun m in
  verify m';
  let f = Ir_module.find_func_exn m' "f" in
  let has_alloca =
    Func.fold_instrs f false (fun acc (i : Instr.t) ->
        acc
        ||
        match i.Instr.op with
        | Instr.Alloca _ -> true
        | _ -> false)
  in
  check bool_t "escaping alloca kept" true has_alloca

let test_mem2reg_diamond_phi () =
  let src =
    {|
define i64 @f(i1 %c) {
entry:
  %x = alloca i64
  store i64 0, ptr %x
  br i1 %c, label %t, label %e
t:
  store i64 1, ptr %x
  br label %join
e:
  store i64 2, ptr %x
  br label %join
join:
  %r = load i64, ptr %x
  ret i64 %r
}
|}
  in
  let m = parse src in
  let m', _ = (Pass.of_func_pass Mem2reg.pass).Pass.mrun m in
  verify m';
  let run c =
    match Interp.run m' "f" [ Interp.VInt (Ty.I1, c) ] with
    | Interp.VInt (_, n) -> n
    | _ -> Alcotest.fail "expected int"
  in
  check bool_t "true branch" true (Int64.equal (run 1L) 1L);
  check bool_t "false branch" true (Int64.equal (run 0L) 2L);
  (* a phi was inserted in join *)
  let f = Ir_module.find_func_exn m' "f" in
  let join = Func.find_block_exn f "join" in
  check bool_t "phi present" true
    (List.exists
       (fun (i : Instr.t) ->
         match i.Instr.op with
         | Instr.Phi _ -> true
         | _ -> false)
       join.Block.instrs)

(* ------------------------------------------------------------------ *)
(* const folding / SCCP / DCE                                           *)

let test_const_fold_chain () =
  let src =
    {|
define i64 @f() {
entry:
  %a = add i64 2, 3
  %b = mul i64 %a, 4
  %c = sub i64 %b, 5
  ret i64 %c
}
|}
  in
  let m = parse src in
  let m', changed = (Pass.of_func_pass Const_fold.pass).Pass.mrun m in
  check bool_t "changed" true changed;
  verify m';
  check int_t "all folded away" 0 (count_instrs m' "f");
  check bool_t "result" true (Int64.equal (run_i64 m' "f" []) 15L)

let test_const_fold_division_by_zero_kept () =
  let src =
    {|
define i64 @f() {
entry:
  %a = sdiv i64 1, 0
  ret i64 %a
}
|}
  in
  let m = parse src in
  let m', _ = (Pass.of_func_pass Const_fold.pass).Pass.mrun m in
  (* the trapping division must not be folded away *)
  check int_t "division kept" 1 (count_instrs m' "f")

let test_sccp_through_branch () =
  (* x is 7 on both paths; SCCP proves the final value constant *)
  let src =
    {|
define i64 @f(i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %join
e:
  br label %join
join:
  %x = phi i64 [ 7, %t ], [ 7, %e ]
  %y = add i64 %x, 1
  ret i64 %y
}
|}
  in
  let m = parse src in
  let m', changed = (Pass.of_func_pass Sccp.pass).Pass.mrun m in
  check bool_t "changed" true changed;
  verify m';
  check int_t "folded to return of 8" 0 (count_instrs m' "f");
  check bool_t "result" true
    (Int64.equal
       (match Interp.run m' "f" [ Interp.VInt (Ty.I1, 1L) ] with
       | Interp.VInt (_, n) -> n
       | _ -> 0L)
       8L)

let test_sccp_dead_branch () =
  (* the condition is constant: only one arm is executable, so the phi is
     constant even though the arms disagree *)
  let src =
    {|
define i64 @f() {
entry:
  %c = icmp eq i64 1, 1
  br i1 %c, label %t, label %e
t:
  br label %join
e:
  br label %join
join:
  %x = phi i64 [ 5, %t ], [ 99, %e ]
  ret i64 %x
}
|}
  in
  let m = parse src in
  let m', _ = (Pass.of_func_pass Sccp.pass).Pass.mrun m in
  verify m';
  check bool_t "result" true (Int64.equal (run_i64 m' "f" []) 5L);
  (* after simplify-cfg the function is a single block *)
  let m'', _ = (Pass.of_func_pass Simplify_cfg.pass).Pass.mrun m' in
  verify m'';
  check int_t "single block" 1 (block_count m'' "f")

let test_dce_removes_unused () =
  let src =
    {|
declare i64 @opaque()
define i64 @f() {
entry:
  %dead = add i64 1, 2
  %dead2 = mul i64 %dead, 3
  %live = call i64 @opaque()
  ret i64 %live
}
|}
  in
  let m = parse src in
  let m', changed = (Pass.of_func_pass Dce.pass).Pass.mrun m in
  check bool_t "changed" true changed;
  verify m';
  (* only the call remains *)
  check int_t "one instruction" 1 (count_instrs m' "f")

let test_simplify_cfg_merges_chain () =
  let src =
    {|
define i64 @f() {
entry:
  br label %a
a:
  %x = add i64 1, 0
  br label %b
b:
  ret i64 %x
}
|}
  in
  let m = parse src in
  let m', changed = (Pass.of_func_pass Simplify_cfg.pass).Pass.mrun m in
  check bool_t "changed" true changed;
  verify m';
  check int_t "single block" 1 (block_count m' "f");
  check bool_t "result" true (Int64.equal (run_i64 m' "f" []) 1L)

let test_simplify_cfg_prunes_dead_arm () =
  let src =
    {|
define i64 @f() {
entry:
  br i1 true, label %t, label %e
t:
  br label %join
e:
  br label %join
join:
  %x = phi i64 [ 1, %t ], [ 2, %e ]
  ret i64 %x
}
|}
  in
  let m = parse src in
  let m', _ = (Pass.of_func_pass Simplify_cfg.pass).Pass.mrun m in
  verify m';
  check bool_t "result" true (Int64.equal (run_i64 m' "f" []) 1L);
  check int_t "single block" 1 (block_count m' "f")

(* ------------------------------------------------------------------ *)
(* CSE / instcombine                                                    *)

let test_cse_dedups () =
  let src =
    {|
define i64 @f(i64 %x, i64 %y) {
entry:
  %a = add i64 %x, %y
  %b = add i64 %x, %y
  %c = add i64 %a, %b
  ret i64 %c
}
|}
  in
  let m = parse src in
  let m', changed = (Pass.of_func_pass Cse.pass).Pass.mrun m in
  check bool_t "changed" true changed;
  verify m';
  check int_t "one add eliminated" 2 (count_instrs m' "f");
  check bool_t "semantics" true (Int64.equal (run_i64 m' "f" [ 3L; 4L ]) 14L)

let test_cse_does_not_cross_blocks () =
  let src =
    {|
define i64 @f(i1 %c, i64 %x) {
entry:
  %a = add i64 %x, 1
  br i1 %c, label %t, label %e
t:
  %b = add i64 %x, 1
  ret i64 %b
e:
  ret i64 %a
}
|}
  in
  let m = parse src in
  let _, changed = (Pass.of_func_pass Cse.pass).Pass.mrun m in
  (* local CSE must not touch the cross-block duplicate *)
  check bool_t "unchanged" false changed

let test_cse_skips_calls_and_loads () =
  let src =
    {|
declare i64 @opaque()
define i64 @f() {
entry:
  %a = call i64 @opaque()
  %b = call i64 @opaque()
  %r = add i64 %a, %b
  ret i64 %r
}
|}
  in
  let m = parse src in
  let _, changed = (Pass.of_func_pass Cse.pass).Pass.mrun m in
  check bool_t "calls kept" false changed

let test_instcombine_identities () =
  let src =
    {|
define i64 @f(i64 %x) {
entry:
  %a = add i64 %x, 0
  %b = mul i64 %a, 1
  %c = xor i64 %b, 0
  %d = sub i64 %c, 0
  %e = or i64 %d, %d
  ret i64 %e
}
|}
  in
  let m = parse src in
  let m', changed = (Pass.of_func_pass Instcombine.pass).Pass.mrun m in
  check bool_t "changed" true changed;
  verify m';
  check int_t "everything folds to %x" 0 (count_instrs m' "f");
  check bool_t "semantics" true (Int64.equal (run_i64 m' "f" [ 9L ]) 9L)

let test_instcombine_mul_zero () =
  let src =
    {|
define i64 @f(i64 %x) {
entry:
  %a = mul i64 %x, 0
  %b = add i64 %a, 5
  ret i64 %b
}
|}
  in
  let m = parse src in
  let m' =
    Pass.run_until_fixpoint
      (List.map Pass.of_func_pass [ Instcombine.pass; Const_fold.pass ])
      m
  in
  verify m';
  check int_t "fully folded" 0 (count_instrs m' "f");
  check bool_t "result 5" true (Int64.equal (run_i64 m' "f" [ 123L ]) 5L)

let test_instcombine_reflexive_icmp () =
  let src =
    {|
define i64 @f(i64 %x) {
entry:
  %c = icmp eq i64 %x, %x
  br i1 %c, label %t, label %e
t:
  ret i64 1
e:
  ret i64 0
}
|}
  in
  let m = parse src in
  let m' =
    Pass.run_until_fixpoint
      (List.map Pass.of_func_pass [ Instcombine.pass; Simplify_cfg.pass ])
      m
  in
  verify m';
  check int_t "single block" 1 (block_count m' "f");
  check bool_t "returns 1" true (Int64.equal (run_i64 m' "f" [ 5L ]) 1L)

(* ------------------------------------------------------------------ *)
(* Loop unrolling (Ex. 4)                                               *)

let forloop_src = List.assoc "forloop" Test_llvm_ir.fixtures

let count_h_calls m =
  count_calls m "main" "__quantum__qis__h__body"

let test_unroll_ex4 () =
  (* the paper's Ex. 4 program: after the lowering pipeline the loop is
     gone and exactly ten H calls remain, on addresses 0..9 *)
  let m = parse forloop_src in
  let m' = Pipeline.lower m in
  verify m';
  check int_t "ten H calls" 10 (count_h_calls m');
  check int_t "single block" 1 (block_count m' "main");
  (* every call's argument is a constant static address *)
  let f = Ir_module.find_func_exn m' "main" in
  let addrs =
    Func.fold_instrs f [] (fun acc (i : Instr.t) ->
        match i.Instr.op with
        | Instr.Call (_, "__quantum__qis__h__body", [ arg ]) -> (
          match arg.Operand.v with
          | Operand.Const (Constant.Inttoptr n) -> Int64.to_int n :: acc
          | Operand.Const Constant.Null -> 0 :: acc
          | _ -> Alcotest.fail "H argument is not a static address")
        | _ -> acc)
  in
  check (Alcotest.list int_t) "addresses 0..9" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev addrs)

let test_unroll_preserves_semantics () =
  let src =
    {|
define i64 @tri(i64 %unused) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %acc = phi i64 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp slt i64 %i, 20
  br i1 %c, label %body, label %exit
body:
  %acc2 = add i64 %acc, %i
  %i2 = add i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
|}
  in
  let m = parse src in
  let before = run_i64 m "tri" [ 0L ] in
  let m', changed = (Pass.of_func_pass Unroll.pass).Pass.mrun m in
  check bool_t "unrolled" true changed;
  verify m';
  check bool_t "no loop left" true (Loop.find (Ir_module.find_func_exn m' "tri") = []);
  check bool_t "same result" true (Int64.equal before (run_i64 m' "tri" [ 0L ]))

let test_unroll_skips_dynamic_bound () =
  let src =
    {|
define i64 @f(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %i2 = add i64 %i, 1
  br label %header
exit:
  ret i64 %i
}
|}
  in
  let m = parse src in
  let _, changed = (Pass.of_func_pass Unroll.pass).Pass.mrun m in
  check bool_t "not unrolled" false changed

let test_unroll_respects_trip_limit () =
  let src =
    {|
define i64 @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %c = icmp slt i64 %i, 1000000
  br i1 %c, label %body, label %exit
body:
  %i2 = add i64 %i, 1
  br label %header
exit:
  ret i64 %i
}
|}
  in
  let m = parse src in
  let _, changed = (Pass.of_func_pass Unroll.pass).Pass.mrun m in
  check bool_t "not unrolled (trip too large)" false changed

let test_unroll_zero_trip () =
  let src =
    {|
define i64 @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 5, %entry ], [ %i2, %body ]
  %c = icmp slt i64 %i, 0
  br i1 %c, label %body, label %exit
body:
  %i2 = add i64 %i, 1
  br label %header
exit:
  ret i64 %i
}
|}
  in
  let m = parse src in
  let m', changed = (Pass.of_func_pass Unroll.pass).Pass.mrun m in
  check bool_t "unrolled" true changed;
  verify m';
  check bool_t "result is initial value" true (Int64.equal (run_i64 m' "f" []) 5L)

let test_unroll_countdown () =
  let src =
    {|
define i64 @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 10, %entry ], [ %i2, %body ]
  %acc = phi i64 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp sgt i64 %i, 0
  br i1 %c, label %body, label %exit
body:
  %acc2 = add i64 %acc, %i
  %i2 = sub i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
|}
  in
  let m = parse src in
  let m', changed = (Pass.of_func_pass Unroll.pass).Pass.mrun m in
  check bool_t "unrolled" true changed;
  verify m';
  check bool_t "sum 1..10" true (Int64.equal (run_i64 m' "f" []) 55L)

let test_unroll_body_with_branches () =
  (* the loop body contains an if-else: sum of odd numbers minus evens *)
  let src =
    {|
define i64 @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i2, %latch ]
  %acc = phi i64 [ 0, %entry ], [ %acc2, %latch ]
  %c = icmp slt i64 %i, 10
  br i1 %c, label %body, label %exit
body:
  %bit = and i64 %i, 1
  %odd = icmp eq i64 %bit, 1
  br i1 %odd, label %add, label %sub
add:
  %aplus = add i64 %acc, %i
  br label %latch
sub:
  %aminus = sub i64 %acc, %i
  br label %latch
latch:
  %acc2 = phi i64 [ %aplus, %add ], [ %aminus, %sub ]
  %i2 = add i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
|}
  in
  let m = parse src in
  let before = run_i64 m "f" [] in
  (* odds 1+3+5+7+9 = 25; evens 0+2+4+6+8 = 20; result 5 *)
  check bool_t "reference" true (Int64.equal before 5L);
  let m', changed = (Pass.of_func_pass Unroll.pass).Pass.mrun m in
  check bool_t "unrolled" true changed;
  verify m';
  check bool_t "no loop left" true
    (Loop.find (Ir_module.find_func_exn m' "f") = []);
  check bool_t "same result" true (Int64.equal before (run_i64 m' "f" []));
  (* and the whole pipeline folds it to a constant return *)
  let m'' = Pipeline.lower m in
  check int_t "fully folded" 0 (count_instrs m'' "f");
  check bool_t "still 5" true (Int64.equal (run_i64 m'' "f" []) 5L)

let test_unroll_exit_phi_uses_loop_value () =
  (* the exit block's phi consumes a header-defined value *)
  let src =
    {|
define i64 @f(i1 %skip) {
entry:
  br i1 %skip, label %exit_direct, label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %c = icmp slt i64 %i, 7
  br i1 %c, label %body, label %after
body:
  %i2 = add i64 %i, 1
  br label %header
after:
  br label %exit_direct
exit_direct:
  %r = phi i64 [ -1, %entry ], [ %i, %after ]
  ret i64 %r
}
|}
  in
  let m = parse src in
  let run skip =
    match Interp.run m "f" [ Interp.VInt (Ty.I1, skip) ] with
    | Interp.VInt (_, n) -> n
    | _ -> Alcotest.fail "expected int"
  in
  check bool_t "skip" true (Int64.equal (run 1L) (-1L));
  check bool_t "loop" true (Int64.equal (run 0L) 7L);
  let m', changed = (Pass.of_func_pass Unroll.pass).Pass.mrun m in
  check bool_t "unrolled" true changed;
  verify m';
  let run' skip =
    match Interp.run m' "f" [ Interp.VInt (Ty.I1, skip) ] with
    | Interp.VInt (_, n) -> n
    | _ -> Alcotest.fail "expected int"
  in
  check bool_t "skip preserved" true (Int64.equal (run' 1L) (-1L));
  check bool_t "loop preserved" true (Int64.equal (run' 0L) 7L)

let test_unroll_nested () =
  let src =
    {|
declare void @__quantum__qis__h__body(ptr)
define void @main() "entry_point" {
entry:
  br label %outer
outer:
  %i = phi i64 [ 0, %entry ], [ %i2, %outer.latch ]
  %oc = icmp slt i64 %i, 3
  br i1 %oc, label %inner.pre, label %exit
inner.pre:
  br label %inner
inner:
  %j = phi i64 [ 0, %inner.pre ], [ %j2, %inner.body ]
  %ic = icmp slt i64 %j, 4
  br i1 %ic, label %inner.body, label %outer.latch
inner.body:
  %q = mul i64 %i, 4
  %q2 = add i64 %q, %j
  %qb = inttoptr i64 %q2 to ptr
  call void @__quantum__qis__h__body(ptr %qb)
  %j2 = add i64 %j, 1
  br label %inner
outer.latch:
  %i2 = add i64 %i, 1
  br label %outer
exit:
  ret void
}
|}
  in
  let m = parse src in
  let m' = Pipeline.lower m in
  verify m';
  check int_t "12 H calls (3x4)" 12 (count_h_calls m');
  check int_t "single block" 1 (block_count m' "main")

(* ------------------------------------------------------------------ *)
(* Inlining                                                             *)

let test_inline_simple () =
  let src =
    {|
define i64 @double(i64 %x) {
entry:
  %r = add i64 %x, %x
  ret i64 %r
}
define i64 @f(i64 %x) {
entry:
  %a = call i64 @double(i64 %x)
  %b = call i64 @double(i64 %a)
  ret i64 %b
}
|}
  in
  let m = parse src in
  let m', changed = (Pass.of_func_pass Inline.pass).Pass.mrun m in
  check bool_t "changed" true changed;
  verify m';
  check int_t "no calls left in f" 0 (count_calls m' "f" "double");
  check bool_t "semantics" true (Int64.equal (run_i64 m' "f" [ 3L ]) 12L)

let test_inline_branching_callee () =
  let src =
    {|
define i64 @abs(i64 %x) {
entry:
  %neg = icmp slt i64 %x, 0
  br i1 %neg, label %n, label %p
n:
  %m = sub i64 0, %x
  ret i64 %m
p:
  ret i64 %x
}
define i64 @f(i64 %x) {
entry:
  %a = call i64 @abs(i64 %x)
  %b = add i64 %a, 1
  ret i64 %b
}
|}
  in
  let m = parse src in
  let m', _ = (Pass.of_func_pass Inline.pass).Pass.mrun m in
  verify m';
  check int_t "call inlined" 0 (count_calls m' "f" "abs");
  check bool_t "negative input" true (Int64.equal (run_i64 m' "f" [ -5L ]) 6L);
  check bool_t "positive input" true (Int64.equal (run_i64 m' "f" [ 5L ]) 6L)

let test_inline_skips_recursion () =
  let src =
    {|
define i64 @fact(i64 %n) {
entry:
  %c = icmp sle i64 %n, 1
  br i1 %c, label %base, label %rec
base:
  ret i64 1
rec:
  %n1 = sub i64 %n, 1
  %r = call i64 @fact(i64 %n1)
  %p = mul i64 %r, %n
  ret i64 %p
}
define i64 @f() {
entry:
  %r = call i64 @fact(i64 5)
  ret i64 %r
}
|}
  in
  let m = parse src in
  let m', _ = (Pass.of_func_pass Inline.pass).Pass.mrun m in
  verify m';
  (* the recursive callee is not inlined into itself *)
  check int_t "fact still recursive" 1 (count_calls m' "fact" "fact");
  check bool_t "semantics" true (Int64.equal (run_i64 m' "f" []) 120L)

let test_inline_void_callee () =
  let src =
    {|
declare void @__quantum__qis__h__body(ptr)
define void @apply_h(i64 %q) {
entry:
  %p = inttoptr i64 %q to ptr
  call void @__quantum__qis__h__body(ptr %p)
  ret void
}
define void @main() "entry_point" {
entry:
  call void @apply_h(i64 0)
  call void @apply_h(i64 1)
  ret void
}
|}
  in
  let m = parse src in
  let m' = Pipeline.lower m in
  verify m';
  check int_t "two H calls inline" 2 (count_h_calls m');
  check int_t "single function body"
    0
    (count_calls m' "main" "apply_h")

(* ------------------------------------------------------------------ *)
(* Semantic-preservation properties                                     *)

(* Random counted-loop programs: the lowering pipeline must preserve the
   interpreter's result. *)
let gen_loop_program =
  let open QCheck2.Gen in
  let* init = int_range 0 5 in
  let* bound = int_range 0 40 in
  let* step = int_range 1 3 in
  let* mult = int_range 1 4 in
  let src =
    Printf.sprintf
      {|
define i64 @f(i64 %%seed) {
entry:
  br label %%header
header:
  %%i = phi i64 [ %d, %%entry ], [ %%i2, %%body ]
  %%acc = phi i64 [ %%seed, %%entry ], [ %%acc2, %%body ]
  %%c = icmp slt i64 %%i, %d
  br i1 %%c, label %%body, label %%exit
body:
  %%t = mul i64 %%i, %d
  %%acc2 = add i64 %%acc, %%t
  %%i2 = add i64 %%i, %d
  br label %%header
exit:
  ret i64 %%acc
}
|}
      init bound mult step
  in
  return src

let prop_lowering_preserves_loops =
  QCheck2.Test.make ~count:60 ~name:"lowering preserves loop semantics"
    QCheck2.Gen.(pair gen_loop_program (int_range (-100) 100))
    (fun (src, seed) ->
      let m = parse src in
      let before = run_i64 m "f" [ Int64.of_int seed ] in
      let m' = Pipeline.lower m in
      (match Verifier.check_module m' with
      | [] -> ()
      | v :: _ ->
        QCheck2.Test.fail_reportf "verifier after lowering: %a"
          Verifier.pp_violation v);
      Int64.equal before (run_i64 m' "f" [ Int64.of_int seed ]))

let prop_standard_preserves_branchy =
  (* random diamonds with constants and parameters *)
  let gen =
    let open QCheck2.Gen in
    let* k1 = int_range (-50) 50 in
    let* k2 = int_range (-50) 50 in
    let* threshold = int_range (-20) 20 in
    return
      (Printf.sprintf
         {|
define i64 @f(i64 %%x) {
entry:
  %%slot = alloca i64
  store i64 %d, ptr %%slot
  %%c = icmp sgt i64 %%x, %d
  br i1 %%c, label %%t, label %%e
t:
  store i64 %d, ptr %%slot
  br label %%join
e:
  br label %%join
join:
  %%v = load i64, ptr %%slot
  %%r = add i64 %%v, %%x
  ret i64 %%r
}
|}
         k1 threshold k2)
  in
  QCheck2.Test.make ~count:60 ~name:"standard pipeline preserves diamonds"
    QCheck2.Gen.(pair gen (int_range (-100) 100))
    (fun (src, x) ->
      let m = parse src in
      let before = run_i64 m "f" [ Int64.of_int x ] in
      let m' = Pipeline.optimize m in
      (match Verifier.check_module m' with
      | [] -> ()
      | v :: _ ->
        QCheck2.Test.fail_reportf "verifier after optimize: %a"
          Verifier.pp_violation v);
      Int64.equal before (run_i64 m' "f" [ Int64.of_int x ]))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_lowering_preserves_loops; prop_standard_preserves_branchy ]

let suite =
  [
    Alcotest.test_case "mem2reg: promotes loop variables" `Quick
      test_mem2reg_promotes_loop;
    Alcotest.test_case "mem2reg: keeps escaping allocas" `Quick
      test_mem2reg_leaves_escaping_allocas;
    Alcotest.test_case "mem2reg: inserts phis at joins" `Quick
      test_mem2reg_diamond_phi;
    Alcotest.test_case "const-fold: folds chains" `Quick test_const_fold_chain;
    Alcotest.test_case "const-fold: keeps div-by-zero" `Quick
      test_const_fold_division_by_zero_kept;
    Alcotest.test_case "sccp: constants through branches" `Quick
      test_sccp_through_branch;
    Alcotest.test_case "sccp: ignores dead arms" `Quick test_sccp_dead_branch;
    Alcotest.test_case "dce: removes dead code" `Quick test_dce_removes_unused;
    Alcotest.test_case "simplify-cfg: merges chains" `Quick
      test_simplify_cfg_merges_chain;
    Alcotest.test_case "simplify-cfg: prunes dead arms" `Quick
      test_simplify_cfg_prunes_dead_arm;
    Alcotest.test_case "cse: duplicates eliminated" `Quick test_cse_dedups;
    Alcotest.test_case "cse: block-local only" `Quick
      test_cse_does_not_cross_blocks;
    Alcotest.test_case "cse: calls/loads kept" `Quick
      test_cse_skips_calls_and_loads;
    Alcotest.test_case "instcombine: identities" `Quick
      test_instcombine_identities;
    Alcotest.test_case "instcombine: mul by zero" `Quick
      test_instcombine_mul_zero;
    Alcotest.test_case "instcombine: reflexive icmp" `Quick
      test_instcombine_reflexive_icmp;
    Alcotest.test_case "unroll: Ex.4 end-to-end" `Quick test_unroll_ex4;
    Alcotest.test_case "unroll: semantics preserved" `Quick
      test_unroll_preserves_semantics;
    Alcotest.test_case "unroll: dynamic bound skipped" `Quick
      test_unroll_skips_dynamic_bound;
    Alcotest.test_case "unroll: trip limit respected" `Quick
      test_unroll_respects_trip_limit;
    Alcotest.test_case "unroll: zero-trip loop" `Quick test_unroll_zero_trip;
    Alcotest.test_case "unroll: countdown loop" `Quick test_unroll_countdown;
    Alcotest.test_case "unroll: body with branches" `Quick
      test_unroll_body_with_branches;
    Alcotest.test_case "unroll: exit phi uses loop value" `Quick
      test_unroll_exit_phi_uses_loop_value;
    Alcotest.test_case "unroll: nested loops" `Quick test_unroll_nested;
    Alcotest.test_case "inline: simple" `Quick test_inline_simple;
    Alcotest.test_case "inline: branching callee" `Quick
      test_inline_branching_callee;
    Alcotest.test_case "inline: recursion skipped" `Quick
      test_inline_skips_recursion;
    Alcotest.test_case "inline: void callee via pipeline" `Quick
      test_inline_void_callee;
  ]
  @ props
