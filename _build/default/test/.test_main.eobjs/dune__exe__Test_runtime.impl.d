test/test_runtime.ml: Alcotest Astring Circuit Executor Float Gate Generate List Llvm_ir Option QCheck2 QCheck_alcotest Qcircuit Qir Qir_builder Qir_gateset Qruntime Runtime Test_llvm_ir
