test/test_hybrid.ml: Alcotest Buffer Classify Feasibility Generate Latency List Llvm_ir Partition Printf Qcircuit Qhybrid
