test/test_noise.ml: Alcotest Circuit Circuit_opt Gate Generate Noise Printf Qcircuit Qsim
