test/test_commute.ml: Alcotest Circuit Circuit_opt Commute_opt Float Gate Generate List QCheck2 QCheck_alcotest Qcircuit Qsim
