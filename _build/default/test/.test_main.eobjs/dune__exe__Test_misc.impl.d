test/test_misc.ml: Alcotest Astring Float Int64 Interp Ir_error List Llvm_ir Parser Qcircuit Ty Verifier
