test/test_density.ml: Alcotest Array Circuit Complex Density Float Gate Generate List Noise Printf QCheck2 QCheck_alcotest Qcircuit Qsim Statevector
