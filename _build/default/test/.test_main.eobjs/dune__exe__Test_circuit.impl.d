test/test_circuit.ml: Alcotest Circuit Circuit_opt Float Gate Generate List QCheck2 QCheck_alcotest Qasm2 Qasm3 Qcircuit Qsim
