test/test_algorithms.ml: Alcotest Algorithms List Llvm_ir Printf Qcircuit Qir Qmapping Qruntime Qsim String
