test/test_simulator.ml: Alcotest Array Bool Circuit Complex Float Gate Generate List Printf QCheck2 QCheck_alcotest Qcircuit Qsim Stabilizer Statevector
