test/test_mapping.ml: Alcotest Allocator Array Circuit Float Fun Gate Generate Hardware Hashtbl Layout List Mapper QCheck2 QCheck_alcotest Qcircuit Qmapping Qsim Router
