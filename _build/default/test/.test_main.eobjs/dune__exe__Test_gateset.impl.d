test/test_gateset.ml: Alcotest Float Gate Generate List Printf QCheck2 QCheck_alcotest Qcircuit Qir Qsim Rng String
