(* Correctness of the QIR gate-set legalization: every decomposition in
   Qir_gateset must equal the original gate as a unitary, up to global
   phase. Checked by preparing a random entangled state, applying the
   original vs. the legalized sequence, and comparing fidelity. *)

open Qcircuit

let check = Alcotest.check
let bool_t = Alcotest.bool

(* A fixed "scrambling" prefix so the gate acts on a generic state. *)
let scramble st seed =
  let rng = Rng.create seed in
  for q = 0 to Qsim.Statevector.num_qubits st - 1 do
    Qsim.Statevector.apply st (Gate.Ry (Rng.float rng *. 3.0)) [ q ];
    Qsim.Statevector.apply st (Gate.Rz (Rng.float rng *. 3.0)) [ q ]
  done;
  for q = 0 to Qsim.Statevector.num_qubits st - 2 do
    Qsim.Statevector.apply st Gate.Cx [ q; q + 1 ]
  done

let legalization_faithful ?(n = 3) ~seed g qs =
  let st_orig = Qsim.Statevector.create n in
  let st_leg = Qsim.Statevector.create n in
  scramble st_orig seed;
  scramble st_leg seed;
  Qsim.Statevector.apply st_orig g qs;
  List.iter
    (fun (g', qs') -> Qsim.Statevector.apply st_leg g' qs')
    (Qir.Qir_gateset.legalize_gate g qs);
  Float.abs (Qsim.Statevector.fidelity st_orig st_leg -. 1.0) < 1e-9

let angles = [ 0.0; 0.7; Float.pi /. 2.0; Float.pi; -1.3; 5.9 ]

let test_1q_decompositions () =
  List.iter
    (fun g ->
      List.iteri
        (fun i q ->
          check bool_t
            (Printf.sprintf "%s on q%d" (Gate.to_string g) q)
            true
            (legalization_faithful ~seed:(100 + i) g [ q ]))
        [ 0; 2 ])
    ([ Gate.Sx; Gate.Sxdg ]
    @ List.map (fun t -> Gate.P t) angles
    @ List.map (fun t -> Gate.U (t, t /. 2.0, -.t)) angles)

let test_2q_decompositions () =
  List.iter
    (fun g ->
      List.iteri
        (fun i (a, b) ->
          check bool_t
            (Printf.sprintf "%s on (%d,%d)" (Gate.to_string g) a b)
            true
            (legalization_faithful ~seed:(200 + i) g [ a; b ]))
        [ (0, 1); (2, 0) ])
    ([ Gate.Cy; Gate.Ch ]
    @ List.concat_map
        (fun t -> [ Gate.Crx t; Gate.Cry t; Gate.Crz t; Gate.Cp t ])
        angles
    @ List.map (fun t -> Gate.Cu (t, 0.4, -0.9)) angles)

let test_3q_decompositions () =
  List.iteri
    (fun i perm ->
      check bool_t
        (Printf.sprintf "cswap %s" (String.concat "," (List.map string_of_int perm)))
        true
        (legalization_faithful ~seed:(300 + i) Gate.Cswap perm))
    [ [ 0; 1; 2 ]; [ 2; 0; 1 ] ]

(* Gate.merge must agree with sequential application. *)
let prop_merge_faithful =
  QCheck2.Test.make ~count:100 ~name:"Gate.merge agrees with composition"
    QCheck2.Gen.(
      pair (int_range 0 10000)
        (pair (float_range (-6.0) 6.0) (float_range (-6.0) 6.0)))
    (fun (seed, (t1, t2)) ->
      let pairs =
        [
          (Gate.Rx t1, Gate.Rx t2); (Gate.Ry t1, Gate.Ry t2);
          (Gate.Rz t1, Gate.Rz t2); (Gate.P t1, Gate.P t2);
          (Gate.S, Gate.S); (Gate.T, Gate.T); (Gate.Sdg, Gate.Sdg);
          (Gate.Tdg, Gate.Tdg);
        ]
      in
      List.for_all
        (fun (g1, g2) ->
          match Gate.merge g1 g2 with
          | None -> true
          | Some merged ->
            let st_seq = Qsim.Statevector.create 2 in
            let st_merged = Qsim.Statevector.create 2 in
            scramble st_seq seed;
            scramble st_merged seed;
            Qsim.Statevector.apply st_seq g1 [ 0 ];
            Qsim.Statevector.apply st_seq g2 [ 0 ];
            Qsim.Statevector.apply st_merged merged [ 0 ];
            Float.abs (Qsim.Statevector.fidelity st_seq st_merged -. 1.0)
            < 1e-9)
        pairs)

(* Gate.inverse must undo the gate on the state. *)
let prop_inverse_faithful_2q =
  QCheck2.Test.make ~count:60 ~name:"2q/3q Gate.inverse undoes the gate"
    QCheck2.Gen.(pair (int_range 0 10000) (float_range (-6.0) 6.0))
    (fun (seed, t) ->
      let gates2 =
        [ Gate.Cx; Gate.Cy; Gate.Cz; Gate.Ch; Gate.Swap; Gate.Crx t;
          Gate.Cry t; Gate.Crz t; Gate.Cp t; Gate.Cu (t, 0.3, -0.8) ]
      in
      let gates3 = [ Gate.Ccx; Gate.Cswap ] in
      let check_gate g qs =
        let st = Qsim.Statevector.create 3 in
        let reference = Qsim.Statevector.create 3 in
        scramble st seed;
        scramble reference seed;
        Qsim.Statevector.apply st g qs;
        Qsim.Statevector.apply st (Gate.inverse g) qs;
        Float.abs (Qsim.Statevector.fidelity st reference -. 1.0) < 1e-9
      in
      List.for_all (fun g -> check_gate g [ 0; 2 ]) gates2
      && List.for_all (fun g -> check_gate g [ 1; 0; 2 ]) gates3)

(* Whole-circuit legalization preserves semantics including measures. *)
let prop_legalize_circuit =
  QCheck2.Test.make ~count:40 ~name:"circuit legalization preserves the state"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 2 4))
    (fun (seed, n) ->
      let c = Generate.random ~seed ~gates:30 n in
      let st, _ = Qsim.Statevector.run_circuit c in
      let st', _ = Qsim.Statevector.run_circuit (Qir.Qir_gateset.legalize c) in
      Float.abs (Qsim.Statevector.fidelity st st' -. 1.0) < 1e-9)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_merge_faithful; prop_inverse_faithful_2q; prop_legalize_circuit ]

let suite =
  [
    Alcotest.test_case "1q decompositions" `Quick test_1q_decompositions;
    Alcotest.test_case "2q decompositions" `Quick test_2q_decompositions;
    Alcotest.test_case "3q decompositions" `Quick test_3q_decompositions;
  ]
  @ props
