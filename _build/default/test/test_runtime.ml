(* Tests for the QIR runtime and executor: end-to-end execution of QIR
   programs over both simulator backends (the paper's Ex. 5). *)

open Qcircuit
open Qir
open Qruntime

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let total hist = List.fold_left (fun acc (_, n) -> acc + n) 0 hist
let count key hist = Option.value ~default:0 (List.assoc_opt key hist)

let test_bell_static () =
  let m = Qir_builder.build ~addressing:`Static (Generate.bell ()) in
  let hist = Executor.run_shots ~shots:200 m in
  check int_t "all shots accounted" 200 (total hist);
  check int_t "only 00 and 11" 0
    (total (List.filter (fun (k, _) -> k <> "00" && k <> "11") hist));
  check bool_t "both outcomes occur" true
    (count "00" hist > 40 && count "11" hist > 40)

let test_bell_dynamic () =
  let m = Qir_builder.build ~addressing:`Dynamic (Generate.bell ()) in
  let hist = Executor.run_shots ~shots:200 m in
  check int_t "only 00 and 11" 0
    (total (List.filter (fun (k, _) -> k <> "00" && k <> "11") hist));
  check bool_t "both outcomes occur" true
    (count "00" hist > 40 && count "11" hist > 40)

let test_paper_fig1_text () =
  (* the paper's own Fig. 1 program, executed end to end *)
  let m = Llvm_ir.Parser.parse_module (List.assoc "bell" Test_llvm_ir.fixtures) in
  let r = Executor.run ~seed:3 m in
  check int_t "one measurement" 1 r.Executor.runtime_stats.Runtime.measurements;
  check int_t "two gates" 2 r.Executor.runtime_stats.Runtime.gate_calls

let test_paper_ex4_loop_executes () =
  (* the for-loop QIR runs directly on the interpreter: no unrolling is
     needed for execution, only for transformation *)
  let m = Llvm_ir.Parser.parse_module (List.assoc "forloop" Test_llvm_ir.fixtures) in
  let r = Executor.run m in
  check int_t "ten H gates applied" 10
    r.Executor.runtime_stats.Runtime.gate_calls

let test_ghz_via_qir () =
  let hist =
    Executor.run_circuit_via_qir ~seed:5 ~shots:100 (Generate.ghz 5)
  in
  check int_t "only extreme outcomes" 0
    (total (List.filter (fun (k, _) -> k <> "00000" && k <> "11111") hist));
  check bool_t "both occur" true
    (count "00000" hist > 10 && count "11111" hist > 10)

let test_feedback_correction () =
  (* X q0; mz q0 -> c0; if (c0 == 1) X q1; mz q1 -> c1  ==> output "11" *)
  let b = Circuit.Build.create ~num_qubits:2 ~num_clbits:2 () in
  Circuit.Build.gate b Gate.X [ 0 ];
  Circuit.Build.measure b 0 0;
  Circuit.Build.gate b ~cond:{ Circuit.cbits = [ 0 ]; value = 1 } Gate.X [ 1 ];
  Circuit.Build.measure b 1 1;
  let m = Qir_builder.build (Circuit.Build.finish b) in
  let hist = Executor.run_shots ~shots:20 m in
  check int_t "always 11" 20 (count "11" hist)

let test_feedback_not_taken () =
  (* no X: condition is false, correction skipped -> "00" *)
  let b = Circuit.Build.create ~num_qubits:2 ~num_clbits:2 () in
  Circuit.Build.measure b 0 0;
  Circuit.Build.gate b ~cond:{ Circuit.cbits = [ 0 ]; value = 1 } Gate.X [ 1 ];
  Circuit.Build.measure b 1 1;
  let m = Qir_builder.build (Circuit.Build.finish b) in
  let hist = Executor.run_shots ~shots:20 m in
  check int_t "always 00" 20 (count "00" hist)

let test_stabilizer_backend () =
  let m = Qir_builder.build (Generate.ghz 4) in
  let hist = Executor.run_shots ~backend:`Stabilizer ~shots:100 m in
  check int_t "only extreme outcomes" 0
    (total (List.filter (fun (k, _) -> k <> "0000" && k <> "1111") hist));
  check bool_t "both occur" true
    (count "0000" hist > 10 && count "1111" hist > 10)

let test_backends_agree_on_distribution () =
  let m = Qir_builder.build (Generate.bell ()) in
  let sv = Executor.run_shots ~seed:11 ~backend:`Statevector ~shots:300 m in
  let sb = Executor.run_shots ~seed:23 ~backend:`Stabilizer ~shots:300 m in
  let frac hist key = float_of_int (count key hist) /. 300.0 in
  check bool_t "p(00) close" true
    (Float.abs (frac sv "00" -. frac sb "00") < 0.15)

let test_on_the_fly_allocation () =
  (* a static program touching qubit 5 with no declared register size:
     the runtime grows the register on demand (Sec. IV-A) *)
  let src =
    {|
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare void @__quantum__rt__result_record_output(ptr, ptr)

define void @main() "entry_point" {
entry:
  call void @__quantum__qis__x__body(ptr inttoptr (i64 5 to ptr))
  call void @__quantum__qis__mz__body(ptr inttoptr (i64 5 to ptr), ptr null)
  call void @__quantum__rt__result_record_output(ptr null, ptr null)
  ret void
}
|}
  in
  let m = Llvm_ir.Parser.parse_module src in
  let r = Executor.run m in
  check Alcotest.string "measured one" "1" r.Executor.output

let test_read_result_before_measure_fails () =
  let src =
    {|
declare i1 @__quantum__qis__read_result__body(ptr)

define void @main() "entry_point" {
entry:
  %b = call i1 @__quantum__qis__read_result__body(ptr null)
  ret void
}
|}
  in
  let m = Llvm_ir.Parser.parse_module src in
  match Executor.run m with
  | exception Runtime.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected Runtime_error"

let test_rotation_angles_flow () =
  (* rx(pi) acts as X up to phase: deterministic 1 outcome *)
  let b = Circuit.Build.create ~num_qubits:1 ~num_clbits:1 () in
  Circuit.Build.gate b (Gate.Rx Float.pi) [ 0 ];
  Circuit.Build.measure b 0 0;
  let m = Qir_builder.build (Circuit.Build.finish b) in
  let hist = Executor.run_shots ~shots:20 m in
  check int_t "always 1" 20 (count "1" hist)

let test_hybrid_program_with_classical_code () =
  (* a genuinely hybrid program: a classical loop computes the rotation
     count, gates execute conditionally on classical values *)
  let src =
    {|
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare void @__quantum__rt__result_record_output(ptr, ptr)

define void @main() "entry_point" {
entry:
  %n = alloca i64
  store i64 0, ptr %n
  br label %header
header:
  %i = load i64, ptr %n
  %c = icmp slt i64 %i, 3
  br i1 %c, label %body, label %after
body:
  call void @__quantum__qis__x__body(ptr null)
  %i2 = add i64 %i, 1
  store i64 %i2, ptr %n
  br label %header
after:
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  call void @__quantum__rt__result_record_output(ptr null, ptr null)
  ret void
}
|}
  in
  let m = Llvm_ir.Parser.parse_module src in
  let r = Executor.run m in
  (* three X gates leave the qubit in |1> *)
  check Alcotest.string "odd number of flips" "1" r.Executor.output;
  check int_t "three gates" 3 r.Executor.runtime_stats.Runtime.gate_calls

(* Property: for random measurement-free circuits, executing through the
   full QIR path applies exactly the same number of gates as the circuit
   has (after legalization). *)
let prop_gate_counts_match =
  QCheck2.Test.make ~count:30 ~name:"QIR execution applies every gate"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 2 5))
    (fun (seed, n) ->
      let c = Qir_gateset.legalize (Generate.random ~seed ~gates:30 n) in
      let m = Qir_builder.build ~addressing:`Static c in
      let r = Executor.run m in
      r.Executor.runtime_stats.Runtime.gate_calls = Circuit.gate_count c)

let props = List.map QCheck_alcotest.to_alcotest [ prop_gate_counts_match ]

let suite =
  [
    Alcotest.test_case "bell via static QIR" `Quick test_bell_static;
    Alcotest.test_case "bell via dynamic QIR" `Quick test_bell_dynamic;
    Alcotest.test_case "paper Fig.1 executes" `Quick test_paper_fig1_text;
    Alcotest.test_case "paper Ex.4 loop executes" `Quick
      test_paper_ex4_loop_executes;
    Alcotest.test_case "GHZ via QIR" `Quick test_ghz_via_qir;
    Alcotest.test_case "feedback: correction taken" `Quick
      test_feedback_correction;
    Alcotest.test_case "feedback: correction skipped" `Quick
      test_feedback_not_taken;
    Alcotest.test_case "stabilizer backend" `Quick test_stabilizer_backend;
    Alcotest.test_case "backends agree" `Quick
      test_backends_agree_on_distribution;
    Alcotest.test_case "on-the-fly allocation (IV-A)" `Quick
      test_on_the_fly_allocation;
    Alcotest.test_case "read_result before measure" `Quick
      test_read_result_before_measure_fails;
    Alcotest.test_case "rotation angles" `Quick test_rotation_angles_flow;
    Alcotest.test_case "hybrid classical+quantum program" `Quick
      test_hybrid_program_with_classical_code;
  ]
  @ props

(* extra: the interpreter fuel limit propagates through the executor *)
let test_executor_fuel () =
  let src =
    "define void @main() \"entry_point\" {\nentry:\n  br label %l\nl:\n  br label %l\n}"
  in
  let m = Llvm_ir.Parser.parse_module src in
  match Executor.run ~fuel:500 m with
  | exception Llvm_ir.Ir_error.Exec_error _ -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

(* extra: an entry point with parameters is flagged by the profile check *)
let test_profile_entry_params () =
  let src =
    "define void @main(i64 %x) \"entry_point\" {\nentry:\n  ret void\n}"
  in
  let m = Llvm_ir.Parser.parse_module src in
  let vs = Qir.Profile_check.check Qir.Profile.Base m in
  check bool_t "parameters flagged" true
    (List.exists
       (fun v ->
         Astring.String.is_infix ~affix:"no parameters" v.Qir.Profile_check.what)
       vs)

let suite =
  suite
  @ [
      Alcotest.test_case "executor: fuel limit" `Quick test_executor_fuel;
      Alcotest.test_case "profile: entry params flagged" `Quick
        test_profile_entry_params;
    ]
