(* Tests for hardware models, layout, routing and the register-allocation
   style qubit allocator (Sec. IV-A). *)

open Qcircuit
open Qmapping

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Hardware                                                             *)

let test_linear_distances () =
  let hw = Hardware.linear 5 in
  check int_t "adjacent" 1 (Hardware.distance hw 0 1);
  check int_t "ends" 4 (Hardware.distance hw 0 4);
  check bool_t "not connected" false (Hardware.connected hw 0 2)

let test_ring_distances () =
  let hw = Hardware.ring 6 in
  check int_t "wrap-around" 1 (Hardware.distance hw 0 5);
  check int_t "opposite" 3 (Hardware.distance hw 0 3)

let test_grid_distances () =
  let hw = Hardware.grid 3 3 in
  check int_t "manhattan" 4 (Hardware.distance hw 0 8);
  check int_t "row neighbor" 1 (Hardware.distance hw 3 4)

let test_star () =
  let hw = Hardware.star 5 in
  check int_t "leaf to leaf" 2 (Hardware.distance hw 1 4);
  check int_t "hub to leaf" 1 (Hardware.distance hw 0 3)

let test_full () =
  check bool_t "fully connected" true
    (Hardware.is_fully_connected (Hardware.fully_connected 5));
  check bool_t "linear is not" false
    (Hardware.is_fully_connected (Hardware.linear 5))

let test_heavy_hex_connected () =
  let hw = Hardware.heavy_hex 3 8 in
  let ok = ref true in
  for a = 0 to hw.Hardware.num_qubits - 1 do
    if Hardware.distance hw 0 a > hw.Hardware.num_qubits then ok := false
  done;
  check bool_t "connected" true !ok

let test_next_hop_progresses () =
  let hw = Hardware.grid 4 4 in
  (* following next hops always reaches the target *)
  let rec walk a b steps =
    if a = b then true
    else if steps > hw.Hardware.num_qubits then false
    else walk hw.Hardware.next_hop.(a).(b) b (steps + 1)
  in
  let ok = ref true in
  for a = 0 to 15 do
    for b = 0 to 15 do
      if not (walk a b 0) then ok := false
    done
  done;
  check bool_t "all paths terminate" true !ok

(* ------------------------------------------------------------------ *)
(* Layout                                                               *)

let test_layout_greedy_is_permutation () =
  let hw = Hardware.grid 3 3 in
  let c = Generate.qft 6 in
  let l = Layout.greedy hw c in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun p ->
      check bool_t "no duplicate placement" false (Hashtbl.mem seen p);
      Hashtbl.replace seen p ())
    l.Layout.phys_of_log;
  for log = 0 to 5 do
    check int_t "inverse consistent" log (Layout.logical l (Layout.phys l log))
  done

(* ------------------------------------------------------------------ *)
(* Router                                                               *)

let test_route_ghz_linear () =
  let hw = Hardware.linear 6 in
  let c = Generate.ghz 6 in
  let routed, _, stats = Router.route ~layout:`Trivial hw c in
  (* GHZ chain cx(i, i+1) is already linear: no swaps needed *)
  check int_t "no swaps" 0 stats.Router.swaps_inserted;
  check bool_t "coupling respected" true (Router.respects_coupling hw routed)

let test_route_needs_swaps () =
  let hw = Hardware.linear 4 in
  let b = Circuit.Build.create ~num_qubits:4 () in
  Circuit.Build.gate b Gate.Cx [ 0; 3 ];
  let c = Circuit.Build.finish b in
  let routed, _, stats = Router.route ~layout:`Trivial hw c in
  check bool_t "swaps inserted" true (stats.Router.swaps_inserted >= 1);
  check bool_t "coupling respected" true (Router.respects_coupling hw routed)

(* Routing preserves the state up to the final layout permutation. *)
let routed_state_matches c hw layout_kind =
  let nl = c.Circuit.num_qubits in
  assert (nl = hw.Hardware.num_qubits);
  let routed, final_layout, _ = Router.route ~layout:layout_kind hw c in
  check bool_t "coupling respected" true (Router.respects_coupling hw routed);
  let sv_orig, _ = Qsim.Statevector.run_circuit c in
  let sv_routed, _ = Qsim.Statevector.run_circuit routed in
  (* permute the routed state back: logical l lives at phys(l) *)
  let perm = Array.init nl (fun l -> Layout.phys final_layout l) in
  (* apply swaps to move phys(l) -> l *)
  let pos = Array.copy perm in
  for l = 0 to nl - 1 do
    if pos.(l) <> l then begin
      (* find who currently sits where we need *)
      let src = pos.(l) in
      Qsim.Statevector.apply sv_routed Gate.Swap [ src; l ];
      (* update positions: any logical qubit at [l] moves to [src] *)
      for k = 0 to nl - 1 do
        if k <> l && pos.(k) = l then pos.(k) <- src
      done;
      pos.(l) <- l
    end
  done;
  Float.abs (Qsim.Statevector.fidelity sv_orig sv_routed -. 1.0) < 1e-9

let test_route_preserves_state () =
  let hw = Hardware.linear 5 in
  let c = Generate.qft 5 in
  check bool_t "trivial layout" true (routed_state_matches c hw `Trivial);
  check bool_t "greedy layout" true (routed_state_matches c hw `Greedy)

let prop_route_preserves_state =
  QCheck2.Test.make ~count:25 ~name:"routing preserves the state"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 3 5))
    (fun (seed, n) ->
      let c = Generate.random ~seed ~gates:30 n in
      let hw = Hardware.linear n in
      routed_state_matches c hw `Greedy)

let test_route_too_wide () =
  let hw = Hardware.linear 3 in
  match Router.route hw (Generate.ghz 5) with
  | exception Router.Unroutable _ -> ()
  | _ -> Alcotest.fail "expected Unroutable"

(* ------------------------------------------------------------------ *)
(* Allocator (register allocation for qubits)                           *)

let test_allocator_packs_sequential () =
  (* 4 workers with 3 qubits each used strictly one after another: live
     ranges are disjoint, so 3 hardware qubits suffice *)
  let c = Generate.sequential_workers ~workers:4 ~span:3 3 in
  check int_t "12 logical qubits" 12 c.Circuit.num_qubits;
  let r = Allocator.allocate c in
  check int_t "3 hardware qubits" 3 r.Allocator.hw_qubits_used

let test_allocator_keeps_parallel () =
  (* a GHZ keeps every qubit live to the end: no packing possible *)
  let c = Generate.ghz 5 in
  let r = Allocator.allocate c in
  check int_t "5 hardware qubits" 5 r.Allocator.hw_qubits_used

let test_allocator_inserts_reset_on_dirty_reuse () =
  (* qubit 0's last op is a gate (dirty), then qubit 1 starts fresh *)
  let b = Circuit.Build.create ~num_qubits:2 ~num_clbits:1 () in
  Circuit.Build.gate b Gate.X [ 0 ];
  (* qubit 0 never touched again *)
  Circuit.Build.gate b Gate.H [ 1 ];
  Circuit.Build.measure b 1 0;
  let c = Circuit.Build.finish b in
  let r = Allocator.allocate c in
  if r.Allocator.hw_qubits_used = 1 then
    check bool_t "reset inserted" true (r.Allocator.resets_inserted >= 1)

let test_allocator_preserves_semantics () =
  (* deterministic workload: each worker flips and measures; outcomes all 1 *)
  let workers = 3 in
  let b = Circuit.Build.create ~num_qubits:workers ~num_clbits:workers () in
  for w = 0 to workers - 1 do
    Circuit.Build.gate b Gate.X [ w ];
    Circuit.Build.measure b w w;
    Circuit.Build.reset b w
  done;
  let c = Circuit.Build.finish b in
  let r = Allocator.allocate c in
  check int_t "one hardware qubit" 1 r.Allocator.hw_qubits_used;
  let _, bits = Qsim.Statevector.run_circuit r.Allocator.circuit in
  check bool_t "all ones" true (Array.for_all Fun.id bits)

(* ------------------------------------------------------------------ *)
(* Mapper                                                               *)

let test_mapper_end_to_end () =
  let hw = Hardware.grid 3 3 in
  let c = Generate.qft 6 in
  let routed, report = Mapper.map hw c in
  check bool_t "coupling respected" true (Router.respects_coupling hw routed);
  check int_t "logical" 6 report.Mapper.logical_qubits;
  check bool_t "swaps happened on sparse hardware" true
    (report.Mapper.swaps_inserted > 0)

let test_mapper_allocation_helps () =
  (* 8 sequential workers x 2 qubits = 16 logical, fits a 4-qubit device
     only thanks to allocation *)
  let c = Generate.sequential_workers ~workers:8 ~span:2 2 in
  let hw = Hardware.linear 4 in
  let _, report = Mapper.map ~allocate:true hw c in
  check bool_t "fits after allocation" true
    (report.Mapper.allocated_qubits <= 4);
  match Mapper.map ~allocate:false hw c with
  | exception Mapper.Too_wide _ -> ()
  | _ -> Alcotest.fail "expected Too_wide without allocation"

let props = List.map QCheck_alcotest.to_alcotest [ prop_route_preserves_state ]

let suite =
  [
    Alcotest.test_case "hw: linear distances" `Quick test_linear_distances;
    Alcotest.test_case "hw: ring distances" `Quick test_ring_distances;
    Alcotest.test_case "hw: grid distances" `Quick test_grid_distances;
    Alcotest.test_case "hw: star" `Quick test_star;
    Alcotest.test_case "hw: full connectivity" `Quick test_full;
    Alcotest.test_case "hw: heavy-hex connected" `Quick
      test_heavy_hex_connected;
    Alcotest.test_case "hw: next-hop paths" `Quick test_next_hop_progresses;
    Alcotest.test_case "layout: greedy permutation" `Quick
      test_layout_greedy_is_permutation;
    Alcotest.test_case "route: GHZ on linear" `Quick test_route_ghz_linear;
    Alcotest.test_case "route: swaps inserted" `Quick test_route_needs_swaps;
    Alcotest.test_case "route: state preserved" `Quick
      test_route_preserves_state;
    Alcotest.test_case "route: too wide" `Quick test_route_too_wide;
    Alcotest.test_case "alloc: packs sequential workers" `Quick
      test_allocator_packs_sequential;
    Alcotest.test_case "alloc: GHZ cannot pack" `Quick
      test_allocator_keeps_parallel;
    Alcotest.test_case "alloc: dirty reuse resets" `Quick
      test_allocator_inserts_reset_on_dirty_reuse;
    Alcotest.test_case "alloc: semantics preserved" `Quick
      test_allocator_preserves_semantics;
    Alcotest.test_case "mapper: end to end" `Quick test_mapper_end_to_end;
    Alcotest.test_case "mapper: allocation enables fit" `Quick
      test_mapper_allocation_helps;
  ]
  @ props

(* extra: a caller-supplied fixed layout is honored *)
let test_fixed_layout () =
  let hw = Hardware.linear 4 in
  let c = Generate.ghz 4 in
  let l = Layout.identity ~num_logical:4 ~num_physical:4 in
  let routed, final, stats = Router.route ~layout:(`Fixed l) hw c in
  check bool_t "coupling respected" true (Router.respects_coupling hw routed);
  check int_t "no swaps on a chain" 0 stats.Router.swaps_inserted;
  (* the caller's layout object is not mutated (route copies it) *)
  check int_t "caller layout intact" 0 (Layout.phys l 0);
  ignore final

let test_identity_layout_rejects_too_many () =
  match Layout.identity ~num_logical:5 ~num_physical:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let suite =
  suite
  @ [
      Alcotest.test_case "route: fixed layout" `Quick test_fixed_layout;
      Alcotest.test_case "layout: too many logical" `Quick
        test_identity_layout_rejects_too_many;
    ]
