  $ qasm2qir bell.qasm --record-output false
  $ qasm2qir bell.qasm -o bell.ll
  $ qirc bell.ll --check base --emit none
  $ qasm2qir bell.qasm --addressing dynamic -o bell_dyn.ll
  $ qirc bell_dyn.ll --check base --emit none
  $ qirc bell_dyn.ll --addressing static --check base --emit none
  $ qir-run bell.ll --shots 50 --seed 3
  $ qir2qasm bell.ll
  $ qirc bell.ll --pass no-such-pass
  $ echo "this is not llvm" > bad.ll
  $ qirc bad.ll
  $ qir-run bad.ll
  $ qirc bell.ll --emit mlir
  $ qirc forloop.ll --check base --emit none
  $ qirc forloop.ll --lower --check base --emit qasm3
