(* Tests for the density-matrix simulator: agreement with the statevector
   on pure circuits, exact channel behaviour, and validation of the
   stochastic Noise trajectories against the exact channel. *)

open Qcircuit
open Qsim

let check = Alcotest.check
let bool_t = Alcotest.bool
let float_t = Alcotest.float 1e-9

let test_bell_density () =
  let st = Density.create 2 in
  Density.apply st Gate.H [ 0 ];
  Density.apply st Gate.Cx [ 0; 1 ];
  check float_t "p(00)" 0.5 (Density.probability st 0);
  check float_t "p(11)" 0.5 (Density.probability st 3);
  check float_t "trace" 1.0 (Density.trace st);
  check float_t "pure" 1.0 (Density.purity st);
  (* coherence present: off-diagonal <00|rho|11> = 1/2 *)
  check float_t "coherence" 0.5 (Density.entry st 0 3).Complex.re

let test_matches_statevector_on_pure_circuits () =
  List.iter
    (fun seed ->
      let c = Generate.random ~seed ~gates:40 3 in
      let sv, _ = Statevector.run_circuit c in
      let dm, _ = Density.run_circuit c in
      let p_sv = Statevector.probabilities sv in
      let p_dm = Density.probabilities dm in
      Array.iteri
        (fun i p ->
          check float_t (Printf.sprintf "seed %d p(%d)" seed i) p p_dm.(i))
        p_sv)
    [ 1; 7; 42 ]

let test_ccx_matches_statevector () =
  let c =
    Circuit.create ~num_qubits:3 ~num_clbits:0
      [
        Circuit.gate Gate.H [ 0 ]; Circuit.gate Gate.H [ 1 ];
        Circuit.gate Gate.Ccx [ 0; 1; 2 ]; Circuit.gate (Gate.Ry 0.4) [ 2 ];
      ]
  in
  let sv, _ = Statevector.run_circuit c in
  let dm, _ = Density.run_circuit c in
  Array.iteri
    (fun i p -> check float_t (Printf.sprintf "p(%d)" i) p (Density.probabilities dm).(i))
    (Statevector.probabilities sv)

let test_depolarize_fully_mixes () =
  (* p = 3/4 is the fully-depolarizing point for one qubit *)
  let st = Density.create 1 in
  Density.depolarize st 0 0.75;
  check float_t "p(0)" 0.5 (Density.probability st 0);
  check float_t "p(1)" 0.5 (Density.probability st 1);
  check float_t "purity 1/2" 0.5 (Density.purity st);
  check float_t "trace preserved" 1.0 (Density.trace st)

let test_depolarize_reduces_purity () =
  let st = Density.create 2 in
  Density.apply st Gate.H [ 0 ];
  Density.apply st Gate.Cx [ 0; 1 ];
  Density.depolarize st 0 0.1;
  let p = Density.purity st in
  check bool_t "purity dropped" true (p < 1.0);
  check bool_t "still fairly pure" true (p > 0.7);
  check float_t "trace preserved" 1.0 (Density.trace st)

let test_measurement_collapse () =
  let st = Density.create ~seed:5 2 in
  Density.apply st Gate.H [ 0 ];
  Density.apply st Gate.Cx [ 0; 1 ];
  let m0 = Density.measure st 0 in
  let m1 = Density.measure st 1 in
  check bool_t "correlated" true (m0 = m1);
  check float_t "pure after collapse" 1.0 (Density.purity st)

(* The stochastic trajectory model converges to the exact channel: the
   Z-expectation of the noisy state under trajectories matches the exact
   density evolution within sampling error. *)
let test_noise_trajectories_match_exact_channel () =
  let p1 = 0.05 and p2 = 0.08 in
  let c =
    Circuit.create ~num_qubits:2 ~num_clbits:0
      [
        Circuit.gate Gate.H [ 0 ]; Circuit.gate Gate.Cx [ 0; 1 ];
        Circuit.gate (Gate.Ry 0.9) [ 1 ]; Circuit.gate Gate.Cx [ 0; 1 ];
      ]
  in
  (* exact *)
  let dm, _ = Density.run_circuit ~noise:(p1, p2) c in
  let exact_q0 = Density.prob_one dm 0 and exact_q1 = Density.prob_one dm 1 in
  (* trajectories *)
  let trials = 3000 in
  let acc0 = ref 0.0 and acc1 = ref 0.0 in
  for k = 0 to trials - 1 do
    let t, _ =
      Noise.run_circuit ~seed:(1000 + k)
        ~params:{ Noise.p1; p2; p_readout = 0.0 }
        c
    in
    let sv = Noise.statevector t in
    acc0 := !acc0 +. Statevector.prob_one sv 0;
    acc1 := !acc1 +. Statevector.prob_one sv 1
  done;
  let traj_q0 = !acc0 /. float_of_int trials in
  let traj_q1 = !acc1 /. float_of_int trials in
  check bool_t
    (Printf.sprintf "q0: exact %.4f vs trajectories %.4f" exact_q0 traj_q0)
    true
    (Float.abs (exact_q0 -. traj_q0) < 0.02);
  check bool_t
    (Printf.sprintf "q1: exact %.4f vs trajectories %.4f" exact_q1 traj_q1)
    true
    (Float.abs (exact_q1 -. traj_q1) < 0.02)

let prop_trace_preserved =
  QCheck2.Test.make ~count:40 ~name:"trace stays 1 under gates and channels"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 2 4))
    (fun (seed, n) ->
      let c = Generate.random ~seed ~gates:25 n in
      let dm, _ = Density.run_circuit ~noise:(0.02, 0.05) c in
      Float.abs (Density.trace dm -. 1.0) < 1e-9)

let props = List.map QCheck_alcotest.to_alcotest [ prop_trace_preserved ]

let suite =
  [
    Alcotest.test_case "Bell density matrix" `Quick test_bell_density;
    Alcotest.test_case "matches statevector (pure)" `Quick
      test_matches_statevector_on_pure_circuits;
    Alcotest.test_case "ccx via decomposition" `Quick
      test_ccx_matches_statevector;
    Alcotest.test_case "full depolarization" `Quick test_depolarize_fully_mixes;
    Alcotest.test_case "partial depolarization" `Quick
      test_depolarize_reduces_purity;
    Alcotest.test_case "measurement collapse" `Quick test_measurement_collapse;
    Alcotest.test_case "trajectories match exact channel" `Slow
      test_noise_trajectories_match_exact_channel;
  ]
  @ props
