(* Tests for the QIR core: builder output shape (Fig. 1 / Ex. 6), the
   Ex. 3 parser over static, dynamic and adaptive inputs, profile
   conformance checking, addressing conversion and lowering. *)

open Llvm_ir
open Qcircuit
open Qir

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let count_calls_to m callee =
  List.fold_left
    (fun acc (f : Func.t) ->
      Func.fold_instrs f acc (fun acc (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Call (_, c, _) when String.equal c callee -> acc + 1
          | _ -> acc))
    0 m.Ir_module.funcs

(* ------------------------------------------------------------------ *)
(* Builder                                                              *)

let test_build_static_matches_ex6 () =
  let m = Qir_builder.build ~addressing:`Static ~record_output:false (Generate.bell ()) in
  let main = Ir_module.find_func_exn m "main" in
  check int_t "single block" 1 (List.length main.Func.blocks);
  let calls =
    List.filter_map
      (fun (i : Instr.t) ->
        match i.Instr.op with
        | Instr.Call (_, callee, args) -> Some (callee, args)
        | _ -> None)
      (Func.entry main).Block.instrs
  in
  (match calls with
  | [ (h, [ q0 ]); (cnot, [ a; b ]); (mz0, _); (mz1, [ q1'; r1 ]) ] ->
    check Alcotest.string "h" (Names.qis "h") h;
    check Alcotest.string "cnot" (Names.qis "cnot") cnot;
    check Alcotest.string "mz" Names.qis_mz mz0;
    check Alcotest.string "mz" Names.qis_mz mz1;
    (* Ex. 6: qubit 0 is null, qubit 1 is inttoptr (i64 1 to ptr) *)
    check bool_t "q0 is null" true
      (Operand.equal q0.Operand.v (Operand.Const Constant.Null));
    check bool_t "cnot control null" true
      (Operand.equal a.Operand.v (Operand.Const Constant.Null));
    check bool_t "cnot target inttoptr 1" true
      (Operand.equal b.Operand.v (Operand.Const (Constant.Inttoptr 1L)));
    check bool_t "mz1 qubit inttoptr 1" true
      (Operand.equal q1'.Operand.v (Operand.Const (Constant.Inttoptr 1L)));
    check bool_t "mz1 result inttoptr 1" true
      (Operand.equal r1.Operand.v (Operand.Const (Constant.Inttoptr 1L)))
  | _ -> Alcotest.fail "unexpected instruction sequence");
  check
    (Alcotest.option Alcotest.string)
    "required_num_qubits" (Some "2")
    (Func.attr main "required_num_qubits");
  check
    (Alcotest.option Alcotest.string)
    "profile attr" (Some "base_profile")
    (Func.attr main "qir_profiles");
  (* verifier-clean *)
  check int_t "verifier" 0 (List.length (Verifier.check_module m))

let test_build_dynamic_matches_fig1 () =
  let m = Qir_builder.build ~addressing:`Dynamic ~record_output:false (Generate.bell ()) in
  check int_t "one qubit array allocation" 1
    (count_calls_to m Names.rt_qubit_allocate_array);
  check int_t "one result array" 1 (count_calls_to m Names.rt_array_create_1d);
  check bool_t "uses element pointers" true
    (count_calls_to m Names.rt_array_get_element_ptr_1d > 0);
  check int_t "released at the end" 1
    (count_calls_to m Names.rt_qubit_release_array);
  check int_t "verifier" 0 (List.length (Verifier.check_module m))

let test_build_legalizes_gates () =
  (* a circuit with gates outside the QIR set is decomposed *)
  let b = Circuit.Build.create ~num_qubits:2 () in
  Circuit.Build.gate b (Gate.Cp 0.5) [ 0; 1 ];
  Circuit.Build.gate b Gate.Sx [ 0 ];
  let m = Qir_builder.build (Circuit.Build.finish b) in
  check int_t "no unknown calls" 0 (count_calls_to m (Names.qis "cp"));
  check bool_t "rz appears" true (count_calls_to m (Names.qis "rz") > 0);
  check int_t "verifier" 0 (List.length (Verifier.check_module m))

let test_build_adaptive_feedback () =
  let m = Qir_builder.build (Generate.feedback_rounds ~rounds:2 2) in
  let main = Ir_module.find_func_exn m "main" in
  check
    (Alcotest.option Alcotest.string)
    "profile attr" (Some "adaptive_profile")
    (Func.attr main "qir_profiles");
  check bool_t "reads results" true (count_calls_to m Names.rt_read_result > 0);
  check bool_t "has branches" true (List.length main.Func.blocks > 1);
  check int_t "verifier" 0 (List.length (Verifier.check_module m))

(* ------------------------------------------------------------------ *)
(* Parser (Ex. 3)                                                       *)

let test_parse_paper_fig1 () =
  (* the exact Fig. 1 dynamic-addressing program *)
  let c = Qir_parser.parse_string (List.assoc "bell" Test_llvm_ir.fixtures) in
  check int_t "2 qubits" 2 c.Circuit.num_qubits;
  match List.map (fun (o : Circuit.op) -> o.Circuit.kind) c.Circuit.ops with
  | [ Circuit.Gate (Gate.H, [ 0 ]); Circuit.Gate (Gate.Cx, [ 0; 1 ]);
      Circuit.Measure (0, 0) ] ->
    ()
  | _ -> Alcotest.failf "unexpected circuit:@\n%a" Circuit.pp c

let test_parse_paper_ex6 () =
  let c = Qir_parser.parse_string (List.assoc "static" Test_llvm_ir.fixtures) in
  match List.map (fun (o : Circuit.op) -> o.Circuit.kind) c.Circuit.ops with
  | [ Circuit.Gate (Gate.H, [ 0 ]); Circuit.Gate (Gate.Cx, [ 0; 1 ]);
      Circuit.Measure (0, 0); Circuit.Measure (1, 1) ] ->
    ()
  | _ -> Alcotest.failf "unexpected circuit:@\n%a" Circuit.pp c

let test_parse_rejects_loop () =
  match Qir_parser.parse_string (List.assoc "forloop" Test_llvm_ir.fixtures) with
  | exception Qir_parser.Unsupported msg ->
    check bool_t "mentions lowering" true
      (Astring.String.is_infix ~affix:"lower" msg)
  | _ -> Alcotest.fail "expected Unsupported"

let test_parse_respects_declared_qubits () =
  let src =
    {|
declare void @__quantum__qis__h__body(ptr)
define void @main() "entry_point" "required_num_qubits"="5" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  ret void
}
|}
  in
  let c = Qir_parser.parse_string src in
  check int_t "declared size wins" 5 c.Circuit.num_qubits

(* ------------------------------------------------------------------ *)
(* Round-trips                                                          *)

let roundtrip_static c =
  Qir_parser.parse (Qir_builder.build ~addressing:`Static c)

let roundtrip_dynamic c =
  Qir_parser.parse (Qir_builder.build ~addressing:`Dynamic c)

let test_roundtrip_ghz () =
  let c = Qir_gateset.legalize (Generate.ghz 5) in
  check bool_t "static" true (Circuit.equal c (roundtrip_static c));
  check bool_t "dynamic" true (Circuit.equal c (roundtrip_dynamic c))

let test_roundtrip_feedback () =
  let c = Qir_gateset.legalize (Generate.feedback_rounds ~rounds:3 3) in
  check bool_t "static adaptive" true (Circuit.equal c (roundtrip_static c));
  check bool_t "dynamic adaptive" true (Circuit.equal c (roundtrip_dynamic c))

let prop_roundtrip_random =
  QCheck2.Test.make ~count:50 ~name:"build/parse round-trip (random circuits)"
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 2 6))
    (fun (seed, n) ->
      let c = Qir_gateset.legalize (Generate.random ~seed ~gates:40 n) in
      Circuit.equal c (roundtrip_static c)
      && Circuit.equal c (roundtrip_dynamic c))

(* ------------------------------------------------------------------ *)
(* Profiles                                                             *)

let test_profile_base_conforms () =
  let m = Qir_builder.build ~addressing:`Static (Generate.bell ()) in
  check bool_t "conforms base" true (Profile_check.conforms Profile.Base m);
  check bool_t "classified base" true (Profile_check.classify m = Profile.Base)

let test_profile_dynamic_violates_base () =
  let m = Qir_builder.build ~addressing:`Dynamic (Generate.bell ()) in
  let vs = Profile_check.check Profile.Base m in
  check bool_t "violations found" true (vs <> []);
  let rules = List.map (fun v -> v.Profile_check.rule) vs in
  check bool_t "flags allocation" true (List.mem "base:no-allocation" rules);
  check bool_t "flags memory" true (List.mem "base:no-memory" rules)

let test_profile_adaptive () =
  let m = Qir_builder.build (Generate.feedback_rounds ~rounds:2 2) in
  check bool_t "violates base" true (not (Profile_check.conforms Profile.Base m));
  check bool_t "conforms adaptive" true
    (Profile_check.conforms Profile.Adaptive m);
  check bool_t "classified adaptive" true
    (Profile_check.classify m = Profile.Adaptive)

let test_profile_forloop_is_full () =
  let m = Parser.parse_module (List.assoc "forloop" Test_llvm_ir.fixtures) in
  check bool_t "loop violates adaptive" true
    (not (Profile_check.conforms Profile.Adaptive m));
  check bool_t "classified full" true (Profile_check.classify m = Profile.Full)

let test_profile_missing_entry_point () =
  let m = Parser.parse_module "define void @f() {\nentry:\n  ret void\n}" in
  (* @main fallback is absent, and no attribute *)
  let vs = Profile_check.check Profile.Base m in
  check bool_t "entry point violation" true
    (List.exists (fun v -> v.Profile_check.rule = "entry-point") vs)

(* ------------------------------------------------------------------ *)
(* Addressing (Sec. IV-A)                                               *)

let test_addressing_detect () =
  let st = Qir_builder.build ~addressing:`Static (Generate.bell ()) in
  let dy = Qir_builder.build ~addressing:`Dynamic (Generate.bell ()) in
  check bool_t "static detected" true (Addressing.detect st = Addressing.Static);
  check bool_t "dynamic detected" true
    (Addressing.detect dy = Addressing.Dynamic)

let test_addressing_convert () =
  let dy = Qir_builder.build ~addressing:`Dynamic ~record_output:false (Generate.bell ()) in
  let st = Addressing.to_static ~record_output:false dy in
  check bool_t "now static" true (Addressing.detect st = Addressing.Static);
  check bool_t "conforms base" true (Profile_check.conforms Profile.Base st);
  (* and the circuit content is unchanged *)
  check bool_t "same circuit" true
    (Circuit.equal (Qir_parser.parse dy) (Qir_parser.parse st));
  (* back again *)
  let dy2 = Addressing.to_dynamic ~record_output:false st in
  check bool_t "dynamic again" true (Addressing.detect dy2 = Addressing.Dynamic)

(* ------------------------------------------------------------------ *)
(* Lowering (Sec. III-B / Ex. 4)                                        *)

let test_lowering_ex4 () =
  let m = Parser.parse_module (List.assoc "forloop" Test_llvm_ir.fixtures) in
  match Lowering.lower_to_base m with
  | Error e -> Alcotest.failf "lowering failed: %a" Lowering.pp_error e
  | Ok m' ->
    check bool_t "conforms base" true (Profile_check.conforms Profile.Base m');
    let c = Qir_parser.parse m' in
    check int_t "ten H gates" 10 (Circuit.gate_count ~name:"h" c);
    check bool_t "equals h_layer" true (Circuit.equal c (Generate.h_layer 10))

let test_lowering_multifunction () =
  let src =
    {|
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__cnot__body(ptr, ptr)

define void @bell_pair(i64 %a, i64 %b) {
entry:
  %pa = inttoptr i64 %a to ptr
  %pb = inttoptr i64 %b to ptr
  call void @__quantum__qis__h__body(ptr %pa)
  call void @__quantum__qis__cnot__body(ptr %pa, ptr %pb)
  ret void
}

define void @main() "entry_point" {
entry:
  call void @bell_pair(i64 0, i64 1)
  call void @bell_pair(i64 2, i64 3)
  ret void
}
|}
  in
  let m = Parser.parse_module src in
  match Lowering.lower_to_circuit m with
  | Error e -> Alcotest.failf "lowering failed: %a" Lowering.pp_error e
  | Ok c ->
    check int_t "2 h gates" 2 (Circuit.gate_count ~name:"h" c);
    check int_t "2 cx gates" 2 (Circuit.gate_count ~name:"cx" c)

let test_lowering_reports_feedback () =
  (* measurement feedback cannot reach the base profile: lower_to_base
     must report violations rather than silently dropping conditions *)
  let m = Qir_builder.build (Generate.feedback_rounds ~rounds:2 2) in
  match Lowering.lower_to_base m with
  | Error (Lowering.Violations _) -> ()
  | Error (Lowering.Unsupported _) -> ()
  | Ok m' ->
    (* acceptable only if the conditions survived into the adaptive output
       — which would contradict base conformance *)
    Alcotest.failf "expected failure, got:@\n%s" (Printer.module_to_string m')

let props = List.map QCheck_alcotest.to_alcotest [ prop_roundtrip_random ]

let suite =
  [
    Alcotest.test_case "builder: Ex.6 static form" `Quick
      test_build_static_matches_ex6;
    Alcotest.test_case "builder: Fig.1 dynamic form" `Quick
      test_build_dynamic_matches_fig1;
    Alcotest.test_case "builder: gate legalization" `Quick
      test_build_legalizes_gates;
    Alcotest.test_case "builder: adaptive feedback" `Quick
      test_build_adaptive_feedback;
    Alcotest.test_case "parser: paper Fig.1" `Quick test_parse_paper_fig1;
    Alcotest.test_case "parser: paper Ex.6" `Quick test_parse_paper_ex6;
    Alcotest.test_case "parser: rejects loops" `Quick test_parse_rejects_loop;
    Alcotest.test_case "parser: declared qubit count" `Quick
      test_parse_respects_declared_qubits;
    Alcotest.test_case "roundtrip: GHZ" `Quick test_roundtrip_ghz;
    Alcotest.test_case "roundtrip: feedback" `Quick test_roundtrip_feedback;
    Alcotest.test_case "profile: base conformance" `Quick
      test_profile_base_conforms;
    Alcotest.test_case "profile: dynamic violates base" `Quick
      test_profile_dynamic_violates_base;
    Alcotest.test_case "profile: adaptive" `Quick test_profile_adaptive;
    Alcotest.test_case "profile: loops are full" `Quick
      test_profile_forloop_is_full;
    Alcotest.test_case "profile: missing entry point" `Quick
      test_profile_missing_entry_point;
    Alcotest.test_case "addressing: detection" `Quick test_addressing_detect;
    Alcotest.test_case "addressing: conversion" `Quick test_addressing_convert;
    Alcotest.test_case "lowering: Ex.4 to base" `Quick test_lowering_ex4;
    Alcotest.test_case "lowering: multi-function" `Quick
      test_lowering_multifunction;
    Alcotest.test_case "lowering: feedback reported" `Quick
      test_lowering_reports_feedback;
  ]
  @ props

(* ------------------------------------------------------------------ *)
(* MLIR outlook (paper conclusion)                                     *)

let test_mlir_bell () =
  let text = Mlir_emit.emit (Generate.bell ()) in
  List.iter
    (fun needle ->
      check bool_t ("contains " ^ needle) true
        (Astring.String.is_infix ~affix:needle text))
    [
      "func.func @main";
      "qir.entry_point";
      {|quantum.custom "h"|};
      {|quantum.custom "cx"|};
      "quantum.measure";
      "quantum.alloc";
      "quantum.dealloc";
    ]

let test_mlir_feedback_uses_scf_if () =
  let text = Mlir_emit.emit (Generate.feedback_rounds ~rounds:2 2) in
  check bool_t "scf.if present" true
    (Astring.String.is_infix ~affix:"scf.if" text)

let test_mlir_ssa_single_assignment () =
  (* every %name on the left of '=' is defined exactly once *)
  let text = Mlir_emit.emit (Generate.qft 4) in
  let defs = Hashtbl.create 64 in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         match String.index_opt line '=' with
         | Some eq ->
           let lhs = String.trim (String.sub line 0 eq) in
           String.split_on_char ',' lhs
           |> List.iter (fun name ->
                  let name = String.trim name in
                  if String.length name > 0 && name.[0] = '%' then begin
                    if Hashtbl.mem defs name then
                      Alcotest.failf "%s defined twice" name;
                    Hashtbl.replace defs name ()
                  end)
         | None -> ());
  check bool_t "definitions found" true (Hashtbl.length defs > 10)

let test_mlir_from_qir_module () =
  let m = Qir_builder.build ~addressing:`Dynamic (Generate.ghz 3) in
  let text = Mlir_emit.emit_module m in
  check bool_t "has measures" true
    (Astring.String.is_infix ~affix:"quantum.measure" text)

let mlir_suite =
  [
    Alcotest.test_case "mlir: Bell shape" `Quick test_mlir_bell;
    Alcotest.test_case "mlir: feedback uses scf.if" `Quick
      test_mlir_feedback_uses_scf_if;
    Alcotest.test_case "mlir: SSA single assignment" `Quick
      test_mlir_ssa_single_assignment;
    Alcotest.test_case "mlir: from QIR module" `Quick
      test_mlir_from_qir_module;
  ]

let suite = suite @ mlir_suite
