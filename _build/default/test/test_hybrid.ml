(* Tests for hybrid classical-quantum analysis: classification,
   segmentation, partitioning and coherence feasibility (Sec. IV-B). *)

open Qcircuit
open Qhybrid

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let hybrid_src =
  {|
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
declare void @__quantum__qis__x__body(ptr)

define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %b = call i1 @__quantum__qis__read_result__body(ptr null)
  %w = zext i1 %b to i64
  %v = add i64 %w, 0
  %c = icmp eq i64 %v, 1
  br i1 %c, label %fix, label %done
fix:
  call void @__quantum__qis__x__body(ptr inttoptr (i64 1 to ptr))
  br label %done
done:
  ret void
}
|}

let parse src = Llvm_ir.Parser.parse_module src

let test_classify_counts () =
  let m = parse hybrid_src in
  let f = Llvm_ir.Ir_module.find_func_exn m "main" in
  let counts = Classify.count_function f in
  check int_t "quantum" 3 counts.Classify.quantum;
  check int_t "result reads" 1 counts.Classify.result_reads;
  check int_t "classical" 3 counts.Classify.classical

let test_segments () =
  let m = parse hybrid_src in
  let f = Llvm_ir.Ir_module.find_func_exn m "main" in
  let segs = Classify.segments_of_func f in
  (* quantum (h, mz) / classical (read+arith) / quantum (x) *)
  check int_t "three segments" 3 (List.length segs);
  match segs with
  | [ q1; cl; q2 ] ->
    check bool_t "first quantum" true (q1.Classify.seg_class = `Quantum);
    check bool_t "middle classical" true (cl.Classify.seg_class = `Classical);
    check bool_t "middle reads results" true cl.Classify.reads_results;
    check bool_t "last quantum" true (q2.Classify.seg_class = `Quantum);
    ignore cl.Classify.feeds_quantum
  | _ -> Alcotest.fail "unexpected segmentation"

let test_partition_small_feedback_on_controller () =
  let m = parse hybrid_src in
  let plan = Partition.plan_module m in
  (* the classical decision segment is tiny and controller-expressible *)
  let classical_decisions =
    List.filter
      (fun d -> d.Partition.segment.Classify.seg_class = `Classical)
      plan.Partition.decisions
  in
  check bool_t "has classical segment" true (classical_decisions <> []);
  List.iter
    (fun d ->
      if d.Partition.segment.Classify.reads_results then
        check bool_t "feedback on controller" true
          (d.Partition.placement = Latency.Controller))
    classical_decisions;
  check bool_t "critical path below a host round-trip" true
    (plan.Partition.critical_path_ns < Latency.default.Latency.host_roundtrip_ns)

let test_partition_forces_host_for_floats () =
  (* a feedback computation with floating point cannot run on the
     controller: forced to the host despite the round-trip *)
  let src =
    {|
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
declare void @__quantum__qis__rz__body(double, ptr)

define void @main() "entry_point" {
entry:
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %b = call i1 @__quantum__qis__read_result__body(ptr null)
  %w = zext i1 %b to i64
  %f = sitofp i64 %w to double
  %angle = fmul double %f, 0x3FF921FB54442D18
  call void @__quantum__qis__rz__body(double %angle, ptr null)
  ret void
}
|}
  in
  let plan = Partition.plan_module (parse src) in
  let forced_host =
    List.exists
      (fun d ->
        d.Partition.segment.Classify.seg_class = `Classical
        && d.Partition.placement = Latency.Host
        && d.Partition.forced)
      plan.Partition.decisions
  in
  check bool_t "float segment forced to host" true forced_host;
  check bool_t "pays the round-trip" true
    (plan.Partition.critical_path_ns
     >= Latency.default.Latency.host_roundtrip_ns)

let test_partition_async_classical_is_free () =
  (* classical code that never feeds quantum instructions costs nothing
     on the quantum critical path *)
  let src =
    {|
declare void @__quantum__qis__h__body(ptr)

define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  %a = add i64 1, 2
  %b = mul i64 %a, 3
  ret void
}
|}
  in
  let plan = Partition.plan_module (parse src) in
  check bool_t "zero critical path cost" true
    (plan.Partition.critical_path_ns = 0.0)

let test_partition_respects_controller_budget () =
  (* a long feedback computation exceeding the controller program store *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    {|
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
declare void @__quantum__qis__x__body(ptr)

define void @main() "entry_point" {
entry:
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %b = call i1 @__quantum__qis__read_result__body(ptr null)
  %v0 = zext i1 %b to i64
|};
  for i = 1 to 2000 do
    Buffer.add_string buf
      (Printf.sprintf "  %%v%d = add i64 %%v%d, 1\n" i (i - 1))
  done;
  Buffer.add_string buf
    {|
  %c = icmp eq i64 %v2000, 1000
  br i1 %c, label %fix, label %done
fix:
  call void @__quantum__qis__x__body(ptr null)
  br label %done
done:
  ret void
}
|};
  let plan = Partition.plan_module (parse (Buffer.contents buf)) in
  let forced_host =
    List.exists
      (fun d ->
        d.Partition.segment.Classify.seg_class = `Classical
        && d.Partition.placement = Latency.Host
        && d.Partition.forced)
      plan.Partition.decisions
  in
  check bool_t "oversized segment forced to host" true forced_host

(* ------------------------------------------------------------------ *)
(* Feasibility                                                          *)

let test_feasibility_controller_ok () =
  let c = Generate.feedback_rounds ~rounds:5 3 in
  let v = Feasibility.check ~placement:Latency.Controller c in
  check bool_t "feasible on controller" true v.Feasibility.feasible

let test_feasibility_host_rejected_with_tight_budget () =
  let params =
    { Latency.default with Latency.coherence_budget_ns = 5_000.0 }
  in
  let c = Generate.feedback_rounds ~rounds:5 3 in
  let controller = Feasibility.check ~params ~placement:Latency.Controller c in
  let host = Feasibility.check ~params ~placement:Latency.Host c in
  check bool_t "controller feasible" true controller.Feasibility.feasible;
  check bool_t "host rejected" false host.Feasibility.feasible;
  check bool_t "violations reported" true (host.Feasibility.violations <> [])

let test_feasibility_monotone_in_budget () =
  let c = Generate.feedback_rounds ~rounds:8 4 in
  let feasible_at budget =
    let params = { Latency.default with Latency.coherence_budget_ns = budget } in
    (Feasibility.check ~params ~placement:Latency.Host c).Feasibility.feasible
  in
  (* once feasible, bigger budgets stay feasible *)
  let budgets = [ 1e2; 1e3; 1e4; 1e5; 1e6 ] in
  let verdicts = List.map feasible_at budgets in
  let rec monotone = function
    | true :: false :: _ -> false
    | _ :: rest -> monotone rest
    | [] -> true
  in
  check bool_t "monotone" true (monotone verdicts);
  check bool_t "huge budget feasible" true (feasible_at 1e9)

let test_feasibility_no_feedback_is_free () =
  (* no feedback decisions: feasibility is governed only by gate and
     measurement times (serialized measurements make the last qubit wait
     ~4 * 300 ns here, well within the budget) *)
  let c = Generate.ghz 5 in
  let params = { Latency.default with Latency.coherence_budget_ns = 10_000.0 } in
  let v = Feasibility.check ~params ~placement:Latency.Host c in
  check bool_t "feasible" true v.Feasibility.feasible

let suite =
  [
    Alcotest.test_case "classify: counts" `Quick test_classify_counts;
    Alcotest.test_case "classify: segments" `Quick test_segments;
    Alcotest.test_case "partition: feedback on controller" `Quick
      test_partition_small_feedback_on_controller;
    Alcotest.test_case "partition: floats force host" `Quick
      test_partition_forces_host_for_floats;
    Alcotest.test_case "partition: async classical free" `Quick
      test_partition_async_classical_is_free;
    Alcotest.test_case "partition: controller budget" `Quick
      test_partition_respects_controller_budget;
    Alcotest.test_case "feasibility: controller ok" `Quick
      test_feasibility_controller_ok;
    Alcotest.test_case "feasibility: tight budget rejects host" `Quick
      test_feasibility_host_rejected_with_tight_budget;
    Alcotest.test_case "feasibility: monotone in budget" `Quick
      test_feasibility_monotone_in_budget;
    Alcotest.test_case "feasibility: no feedback" `Quick
      test_feasibility_no_feedback_is_free;
  ]
