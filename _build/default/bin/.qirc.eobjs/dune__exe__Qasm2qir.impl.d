bin/qasm2qir.ml: Arg Cli_common Cmd Cmdliner Llvm_ir Qcircuit Qir Term
