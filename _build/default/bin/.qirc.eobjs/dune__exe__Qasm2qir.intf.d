bin/qasm2qir.mli:
