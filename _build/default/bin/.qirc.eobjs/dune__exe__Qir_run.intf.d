bin/qir_run.mli:
