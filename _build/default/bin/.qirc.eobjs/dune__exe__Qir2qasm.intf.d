bin/qir2qasm.mli:
