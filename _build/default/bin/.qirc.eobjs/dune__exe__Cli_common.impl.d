bin/cli_common.ml: In_channel Llvm_ir Out_channel Printf String
