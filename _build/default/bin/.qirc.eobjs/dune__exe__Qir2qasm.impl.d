bin/qir2qasm.ml: Arg Cli_common Cmd Cmdliner Format Printf Qcircuit Qir Term
