bin/qirc.ml: Arg Cli_common Cmd Cmdliner Format List Llvm_ir Passes Printf Qcircuit Qir String Term
