bin/qirc.mli:
