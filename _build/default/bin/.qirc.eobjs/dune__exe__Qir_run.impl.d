bin/qir_run.ml: Arg Cli_common Cmd Cmdliner Format List Llvm_ir Printf Qruntime String Term
