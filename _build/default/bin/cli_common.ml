(* Shared bits for the command-line tools. *)

let read_file path =
  if String.equal path "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_text path In_channel.input_all

let write_output out text =
  match out with
  | None -> print_string text
  | Some path -> Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc text)

let parse_qir_file path =
  let src = read_file path in
  match Llvm_ir.Parser.parse_module_result ~source_name:path src with
  | Ok m -> m
  | Error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 1

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline msg;
    exit 1
