(* Property tests for the high-performance statevector engine: every
   specialized kernel, the fusion pass, the Domain-parallel paths and
   the batched shot sampler are checked against the naive general-kernel
   reference ({!Qsim.Statevector.Reference}) on randomized inputs. *)

open Qcircuit
module Sv = Qsim.Statevector
module Ref = Qsim.Statevector.Reference

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Helpers                                                              *)

(* Two bitwise-identical random states, both prepared by the reference
   engine, so any deviation after the gate under test is the kernel's. *)
let prep n seed =
  let c = Generate.random ~seed ~gates:(6 * n) ~parametric:true n in
  let st1, _ = Ref.run_circuit ~seed c in
  let st2, _ = Ref.run_circuit ~seed c in
  (st1, st2)

let max_dev a b =
  check int_t "same dim" (Sv.dim a) (Sv.dim b);
  let d = ref 0.0 in
  for i = 0 to Sv.dim a - 1 do
    let za = Sv.amplitude a i and zb = Sv.amplitude b i in
    d := Float.max !d (Complex.norm (Complex.sub za zb))
  done;
  !d

let norm st =
  let s = ref 0.0 in
  for i = 0 to Sv.dim st - 1 do
    s := !s +. Sv.probability st i
  done;
  !s

let all_finite st =
  let ok = ref true in
  for i = 0 to Sv.dim st - 1 do
    let z = Sv.amplitude st i in
    if not (Float.is_finite z.Complex.re && Float.is_finite z.Complex.im) then
      ok := false
  done;
  !ok

(* Temporarily force a worker pool so the parallel code paths run even
   on single-core CI machines. *)
let with_pool ~domains ~threshold f =
  let d0 = Qsim.Dpool.domains () and t0 = Qsim.Dpool.threshold () in
  Qsim.Dpool.set_domains domains;
  Qsim.Dpool.set_threshold threshold;
  Fun.protect f ~finally:(fun () ->
      Qsim.Dpool.set_domains d0;
      Qsim.Dpool.set_threshold t0)

(* ------------------------------------------------------------------ *)
(* 1. Every specialized kernel against the reference                     *)

let gates_1q =
  Gate.
    [
      I; H; X; Y; Z; S; Sdg; T; Tdg; Sx; Sxdg; Rx 0.7; Ry 1.1; Rz 2.3; P 0.9;
      U (0.5, 1.2, 2.0);
    ]

let gates_2q =
  Gate.
    [
      Cx; Cy; Cz; Ch; Swap; Crx 0.8; Cry 1.3; Crz 0.4; Cp 1.9;
      Cu (0.3, 0.7, 1.5);
    ]

let test_kernels_vs_reference () =
  let n = 5 in
  let try_gate seed g qs =
    let st_fast, st_ref = prep n seed in
    Sv.apply st_fast g qs;
    Ref.apply st_ref g qs;
    let dev = max_dev st_fast st_ref in
    if dev > 1e-12 then
      Alcotest.failf "%s on [%s]: deviation %g" (Gate.to_string g)
        (String.concat ";" (List.map string_of_int qs))
        dev
  in
  List.iteri
    (fun i g -> List.iter (fun q -> try_gate (31 + i) g [ q ]) [ 0; 2; n - 1 ])
    gates_1q;
  List.iteri
    (fun i g ->
      List.iter
        (fun (a, b) -> try_gate (53 + i) g [ a; b ])
        [ (0, 1); (1, 0); (0, n - 1); (3, 1) ])
    gates_2q;
  List.iter
    (fun qs -> try_gate 71 Gate.Ccx qs)
    [ [ 0; 1; 2 ]; [ 2; 0; 4 ]; [ 4; 3; 1 ] ];
  List.iter
    (fun qs -> try_gate 73 Gate.Cswap qs)
    [ [ 0; 1; 2 ]; [ 1; 4; 0 ]; [ 3; 0; 2 ] ]

(* ------------------------------------------------------------------ *)
(* 2. Whole random circuits: fast engine == reference                    *)

let test_random_circuits_vs_reference () =
  List.iter
    (fun seed ->
      let parametric = seed mod 2 = 0 in
      let c =
        Generate.random ~seed ~two_qubit_fraction:0.35 ~parametric ~gates:120 6
      in
      let st_fast, _ = Sv.run_circuit ~seed c in
      let st_ref, _ = Ref.run_circuit ~seed c in
      let dev = max_dev st_fast st_ref in
      if dev > 1e-10 then Alcotest.failf "seed %d: deviation %g" seed dev)
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* 3. Fusion: same state, far fewer kernel sweeps                        *)

let test_fusion_vs_reference () =
  List.iter
    (fun seed ->
      let parametric = seed mod 2 = 0 in
      let c =
        Generate.random ~seed ~two_qubit_fraction:0.3 ~parametric ~gates:150 6
      in
      let st_fused, _ = Qsim.Fusion.run_circuit ~seed c in
      let st_ref, _ = Ref.run_circuit ~seed c in
      let fid = Sv.fidelity st_fused st_ref in
      if Float.abs (fid -. 1.0) > 1e-9 then
        Alcotest.failf "seed %d: fidelity %.15f" seed fid;
      let _, stats = Qsim.Fusion.plan c in
      check bool_t "fusion shrinks the plan" true
        (stats.Qsim.Fusion.steps_out < stats.Qsim.Fusion.ops_in))
    [ 11; 12; 13; 14 ]

(* Fusion must also preserve classical behavior: measurements, resets
   and conditioned gates are barriers, and RNG consumption order is
   unchanged. *)
let test_fusion_with_measurements () =
  List.iter
    (fun seed ->
      let c = Generate.feedback_rounds ~rounds:4 3 in
      let st_fused, cl_fused = Qsim.Fusion.run_circuit ~seed c in
      let st_ref, cl_ref = Ref.run_circuit ~seed c in
      check bool_t "clbits match" true (cl_fused = cl_ref);
      let dev = max_dev st_fused st_ref in
      if dev > 1e-10 then Alcotest.failf "seed %d: deviation %g" seed dev)
    [ 3; 17; 42 ]

(* QFT: long runs of 1q+Cp gates — the fusion sweet spot. *)
let test_fusion_qft () =
  let c = Generate.qft 6 in
  let st_fused, _ = Qsim.Fusion.run_circuit c in
  let st_ref, _ = Ref.run_circuit c in
  let dev = max_dev st_fused st_ref in
  if dev > 1e-10 then Alcotest.failf "qft deviation %g" dev

(* ------------------------------------------------------------------ *)
(* 4. Parallel paths: forced pool == sequential                          *)

let test_parallel_kernels () =
  with_pool ~domains:4 ~threshold:32 (fun () ->
      test_kernels_vs_reference ();
      test_random_circuits_vs_reference ();
      test_fusion_vs_reference ())

let test_parallel_reductions () =
  let c = Generate.random ~seed:9 ~gates:80 ~parametric:true 7 in
  let st, _ = Ref.run_circuit ~seed:9 c in
  let st2, _ = Ref.run_circuit ~seed:9 c in
  let seq_probs = Array.init 7 (fun q -> Sv.prob_one st q) in
  let seq_ip = Sv.inner_product st st2 in
  with_pool ~domains:4 ~threshold:16 (fun () ->
      Array.iteri
        (fun q p ->
          let pp = Sv.prob_one st q in
          if Float.abs (p -. pp) > 1e-12 then
            Alcotest.failf "prob_one qubit %d: %g vs %g" q p pp)
        seq_probs;
      let par_ip = Sv.inner_product st st2 in
      if Complex.norm (Complex.sub seq_ip par_ip) > 1e-12 then
        Alcotest.fail "inner_product parallel mismatch")

let test_parallel_measure_collapse () =
  (* measure/collapse under a forced pool: same outcomes and a
     normalized post-state *)
  let c = Generate.random ~seed:21 ~gates:60 ~parametric:false 6 in
  let st_seq, _ = Ref.run_circuit ~seed:21 c in
  let seq_outcomes = List.init 6 (fun q -> Sv.measure st_seq q) in
  with_pool ~domains:4 ~threshold:16 (fun () ->
      let st_par, _ = Ref.run_circuit ~seed:21 c in
      let par_outcomes = List.init 6 (fun q -> Sv.measure st_par q) in
      check bool_t "same outcomes" true (seq_outcomes = par_outcomes);
      check bool_t "finite" true (all_finite st_par);
      if Float.abs (norm st_par -. 1.0) > 1e-9 then
        Alcotest.failf "norm %g after parallel collapse" (norm st_par))

(* ------------------------------------------------------------------ *)
(* 5. The Domain pool itself                                             *)

let test_dpool_coverage () =
  with_pool ~domains:4 ~threshold:16 (fun () ->
      check int_t "small stays sequential" 1 (Qsim.Dpool.chunk_count ~size:8);
      check int_t "large splits" 4 (Qsim.Dpool.chunk_count ~size:64);
      let size = 1000 in
      let hits = Array.make size 0 in
      Qsim.Dpool.run ~size (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      check bool_t "every index exactly once" true
        (Array.for_all (fun h -> h = 1) hits);
      let s =
        Qsim.Dpool.reduce_float ~size (fun lo hi ->
            let acc = ref 0.0 in
            for i = lo to hi - 1 do
              acc := !acc +. float_of_int i
            done;
            !acc)
      in
      check bool_t "reduce sums the range" true
        (Float.abs (s -. (float_of_int (size * (size - 1)) /. 2.0)) < 1e-9))

let test_dpool_exception () =
  with_pool ~domains:4 ~threshold:16 (fun () ->
      match
        Qsim.Dpool.run ~size:256 (fun lo _ ->
            if lo > 0 then failwith "worker boom")
      with
      | () -> Alcotest.fail "expected the worker exception to propagate"
      | exception Failure _ -> ())

(* ------------------------------------------------------------------ *)
(* 6. FP robustness                                                      *)

let test_prob_one_clamped () =
  let c = Generate.random ~seed:5 ~gates:200 ~parametric:true 8 in
  let st, _ = Sv.run_circuit ~seed:5 c in
  for q = 0 to 7 do
    let p = Sv.prob_one st q in
    check bool_t "p >= 0" true (p >= 0.0);
    check bool_t "p <= 1" true (p <= 1.0)
  done

let test_collapse_near_zero_branch () =
  (* a branch with probability ~1e-18 must not blow up into NaN/inf *)
  let st = Sv.create ~seed:7 2 in
  Sv.apply st (Gate.Ry 2e-9) [ 0 ];
  ignore (Sv.measure st 0);
  check bool_t "finite after knife-edge collapse" true (all_finite st);
  if Float.abs (norm st -. 1.0) > 1e-6 then
    Alcotest.failf "norm %g after collapse" (norm st)

let test_measure_deterministic_qubit () =
  let st = Sv.create 2 in
  check bool_t "|0> measures 0" false (Sv.measure st 0);
  Sv.apply st Gate.X [ 1 ];
  check bool_t "|1> measures 1" true (Sv.measure st 1);
  check bool_t "finite" true (all_finite st);
  if Float.abs (norm st -. 1.0) > 1e-12 then Alcotest.fail "not normalized"

(* ------------------------------------------------------------------ *)
(* 7. Batched shot sampling                                              *)

let measure_all c =
  let b = Circuit.Build.create ~num_qubits:c.Circuit.num_qubits
      ~num_clbits:c.Circuit.num_qubits ()
  in
  List.iter
    (fun (op : Circuit.op) ->
      match op.Circuit.kind with
      | Circuit.Gate (g, qs) -> Circuit.Build.gate b g qs
      | _ -> ())
    c.Circuit.ops;
  for q = 0 to c.Circuit.num_qubits - 1 do
    Circuit.Build.measure b q q
  done;
  Circuit.Build.finish b

let test_batchable () =
  check bool_t "bell is batchable" true (Qsim.Sampler.batchable (Generate.bell ()));
  check bool_t "ghz is batchable" true (Qsim.Sampler.batchable (Generate.ghz 4));
  check bool_t "feedback is not (cond/reset)" false
    (Qsim.Sampler.batchable (Generate.feedback_rounds ~rounds:2 2));
  (* gate after measuring the same qubit *)
  let b = Circuit.Build.create ~num_qubits:2 ~num_clbits:1 () in
  Circuit.Build.gate b Gate.H [ 0 ];
  Circuit.Build.measure b 0 0;
  Circuit.Build.gate b Gate.X [ 0 ];
  check bool_t "gate after measure" false
    (Qsim.Sampler.batchable (Circuit.Build.finish b));
  (* gate on another qubit after a measurement commutes: still batchable *)
  let b = Circuit.Build.create ~num_qubits:2 ~num_clbits:2 () in
  Circuit.Build.gate b Gate.H [ 0 ];
  Circuit.Build.measure b 0 0;
  Circuit.Build.gate b Gate.X [ 1 ];
  Circuit.Build.measure b 1 1;
  check bool_t "commuting tail gate" true
    (Qsim.Sampler.batchable (Circuit.Build.finish b));
  (* permuted clbits are fine; sparse clbits are not *)
  let b = Circuit.Build.create ~num_qubits:2 ~num_clbits:2 () in
  Circuit.Build.gate b Gate.H [ 0 ];
  Circuit.Build.measure b 0 1;
  Circuit.Build.measure b 1 0;
  check bool_t "permuted clbits" true
    (Qsim.Sampler.batchable (Circuit.Build.finish b));
  let b = Circuit.Build.create ~num_qubits:2 ~num_clbits:3 () in
  Circuit.Build.measure b 0 2;
  check bool_t "sparse clbits" false
    (Qsim.Sampler.batchable (Circuit.Build.finish b));
  match Qsim.Sampler.sample ~shots:10 (Generate.feedback_rounds ~rounds:2 2) with
  | _ -> Alcotest.fail "sample must reject non-batchable circuits"
  | exception Qsim.Sim_error.Error _ -> ()

let total_variation h1 h2 =
  let keys =
    List.sort_uniq compare (List.map fst h1 @ List.map fst h2)
  in
  let shots h = float_of_int (List.fold_left (fun a (_, n) -> a + n) 0 h) in
  let s1 = shots h1 and s2 = shots h2 in
  List.fold_left
    (fun acc k ->
      let f h s =
        float_of_int (Option.value ~default:0 (List.assoc_opt k h)) /. s
      in
      acc +. Float.abs (f h1 s1 -. f h2 s2))
    0.0 keys
  /. 2.0

let test_batched_matches_per_shot () =
  let c = measure_all (Generate.random ~seed:8 ~gates:40 ~parametric:true 4) in
  let shots = 2000 in
  let batched =
    Qruntime.Executor.run_circuit_via_qir ~seed:3 ~batch:true ~shots c
  in
  let per_shot =
    Qruntime.Executor.run_circuit_via_qir ~seed:3 ~batch:false ~shots c
  in
  check int_t "batched shot total" shots
    (List.fold_left (fun a (_, n) -> a + n) 0 batched);
  let tv = total_variation batched per_shot in
  if tv > 0.06 then
    Alcotest.failf "batched vs per-shot total variation %.4f" tv

let test_batched_sampler_vs_direct () =
  (* the sampler agrees with drawing shots from the exact distribution *)
  let c = measure_all (Generate.random ~seed:14 ~gates:30 ~parametric:false 3) in
  let st, _ = Ref.run_circuit (Qsim.Sampler.strip_measurements c) in
  let hist = Qsim.Sampler.sample ~seed:2 ~shots:4000 c in
  List.iter
    (fun (key, n) ->
      (* key bit j = qubit j here, LSB first *)
      let idx = ref 0 in
      String.iteri (fun j ch -> if ch = '1' then idx := !idx lor (1 lsl j)) key;
      let p = Sv.probability st !idx in
      let f = float_of_int n /. 4000.0 in
      if Float.abs (p -. f) > 0.05 then
        Alcotest.failf "outcome %s: probability %.3f sampled %.3f" key p f)
    hist

let test_batched_deterministic_permutation () =
  (* QPE measures qubit i into clbit bits-1-i: the batched path must
     reproduce the per-shot (recorded-output) key exactly *)
  let m = Qir.Qir_builder.build (Algorithms.phase_estimation ~bits:3 ~k:5) in
  let batched = Qruntime.Executor.run_shots ~seed:4 ~shots:50 m in
  let per_shot = Qruntime.Executor.run_shots ~seed:4 ~batch:false ~shots:50 m in
  check bool_t "same deterministic histogram" true (batched = per_shot);
  match batched with
  | [ (key, 50) ] -> check Alcotest.string "key" "101" key
  | _ -> Alcotest.fail "expected a deterministic outcome"

(* ------------------------------------------------------------------ *)
(* 8. Sharded storage and the cluster path: differential properties      *)

(* Temporarily lower the shard granularity so even tiny registers split
   into multiple shards, exercising the two-level kernels cheaply. *)
let with_local_bits bits f =
  let b0 = Sv.max_local_bits () in
  Sv.set_max_local_bits bits;
  Fun.protect f ~finally:(fun () -> Sv.set_max_local_bits b0)

(* Cluster-fused execution on a sharded state vs the flat naive
   reference: same amplitudes (<= 1e-12) and the same classical bits,
   over random 2..14-qubit circuits and every cluster width. *)
let prop_cluster_shard_differential =
  QCheck2.Test.make ~count:40
    ~name:"cluster-fused sharded engine matches flat reference"
    QCheck2.Gen.(
      triple (int_range 0 100000) (int_range 2 14)
        (pair (int_range 2 6) (int_range 2 4)))
    (fun (seed, n, (k, lb)) ->
      let c =
        Generate.random ~seed ~two_qubit_fraction:0.3
          ~parametric:(seed mod 2 = 0) ~gates:(5 * n) n
      in
      let st_ref, cl_ref = Ref.run_circuit ~seed c in
      let st_sh, cl_sh =
        with_local_bits lb (fun () -> Qsim.Fusion.run_circuit ~seed ~k c)
      in
      if n > lb && Sv.shard_count st_sh < 2 then
        QCheck2.Test.fail_report "state did not shard";
      if cl_sh <> cl_ref then QCheck2.Test.fail_report "clbits diverge";
      let dev = max_dev st_sh st_ref in
      if dev > 1e-12 then
        QCheck2.Test.fail_reportf "amplitude deviation %g" dev;
      true)

(* Fixed seed => the sampler histogram is bit-identical whether the
   state is flat or sharded, clustered or not. *)
let test_histogram_shard_invariant () =
  let c = measure_all (Generate.random ~seed:19 ~gates:60 ~parametric:true 6) in
  let flat = Qsim.Sampler.sample ~seed:11 ~shots:500 c in
  let sharded =
    with_local_bits 3 (fun () -> Qsim.Sampler.sample ~seed:11 ~shots:500 c)
  in
  check bool_t "sharded histogram bit-identical" true (flat = sharded);
  let sharded_par =
    with_local_bits 2 (fun () ->
        with_pool ~domains:4 ~threshold:16 (fun () ->
            Qsim.Sampler.sample ~seed:11 ~shots:500 c))
  in
  check bool_t "sharded+pooled histogram bit-identical" true (flat = sharded_par)

(* Gates whose qubit span exceeds the shard width: every amplitude
   group straddles shard boundaries. *)
let test_shard_straddling_gates () =
  let n = 6 in
  let st_ref, _ = prep n 91 in
  let ops =
    [
      (Gate.H, [ 5 ]); (Gate.Cx, [ 5; 0 ]); (Gate.Swap, [ 2; 5 ]);
      (Gate.Ccx, [ 1; 3; 5 ]); (Gate.Cp 0.7, [ 4; 2 ]);
    ]
  in
  let c = Generate.random ~seed:91 ~gates:(6 * n) ~parametric:true n in
  let st_sh =
    with_local_bits 2 (fun () ->
        let st, _ = Ref.run_circuit ~seed:91 c in
        check bool_t "sharded" true (Sv.shard_count st > 1);
        List.iter (fun (g, qs) -> Sv.apply st g qs) ops;
        st)
  in
  List.iter (fun (g, qs) -> Ref.apply st_ref g qs) ops;
  let dev = max_dev st_sh st_ref in
  if dev > 1e-12 then
    Alcotest.failf "straddling-gate deviation %g" dev;
  (* a cluster spanning more qubits than the shard width *)
  let u =
    Array.init 8 (fun r ->
        Array.init 8 (fun c -> if c = 7 - r then Complex.one else Complex.zero))
  in
  Sv.apply_cluster st_sh u [| 1; 3; 5 |];
  List.iter
    (fun (g, qs) -> Ref.apply st_ref g qs)
    [ (Gate.X, [ 1 ]); (Gate.X, [ 3 ]); (Gate.X, [ 5 ]) ];
  let dev = max_dev st_sh st_ref in
  if dev > 1e-12 then Alcotest.failf "straddling-cluster deviation %g" dev

(* Mid-circuit register growth across the flat->sharded boundary. *)
let test_add_qubit_across_shard_split () =
  let build apply_ops st =
    apply_ops st [ (Gate.H, [ 0 ]); (Gate.Cx, [ 0; 1 ]) ];
    Sv.ensure_qubits st 5;
    apply_ops st [ (Gate.Cx, [ 1; 4 ]); (Gate.H, [ 4 ]); (Gate.Cz, [ 0; 4 ]) ]
  in
  let st_flat = Sv.create ~seed:3 2 in
  build (fun st -> List.iter (fun (g, qs) -> Ref.apply st g qs)) st_flat;
  let st_sh =
    with_local_bits 3 (fun () ->
        let st = Sv.create ~seed:3 2 in
        check int_t "starts flat" 1 (Sv.shard_count st);
        build (fun st -> List.iter (fun (g, qs) -> Sv.apply st g qs)) st;
        check bool_t "grew across the split" true (Sv.shard_count st > 1);
        st)
  in
  let dev = max_dev st_sh st_flat in
  if dev > 1e-12 then Alcotest.failf "growth deviation %g" dev

(* The checked-access mode re-asserts every unsafe index; it must be
   transparent (and actually run the cluster sweeps). *)
let test_checked_access_path () =
  let c = Generate.random ~seed:55 ~gates:80 ~parametric:false 6 in
  let st_ref, cl_ref = Ref.run_circuit ~seed:55 c in
  let st_chk, cl_chk =
    let c0 = Sv.checked_access () in
    Sv.set_checked_access true;
    Fun.protect
      (fun () ->
        check bool_t "checked mode on" true (Sv.checked_access ());
        with_local_bits 2 (fun () -> Qsim.Fusion.run_circuit ~seed:55 ~k:5 c))
      ~finally:(fun () -> Sv.set_checked_access c0)
  in
  check bool_t "clbits match" true (cl_chk = cl_ref);
  let dev = max_dev st_chk st_ref in
  if dev > 1e-12 then Alcotest.failf "checked-access deviation %g" dev

let suite =
  [
    Alcotest.test_case "specialized kernels vs reference" `Quick
      test_kernels_vs_reference;
    Alcotest.test_case "random circuits vs reference" `Quick
      test_random_circuits_vs_reference;
    Alcotest.test_case "fusion vs reference" `Quick test_fusion_vs_reference;
    Alcotest.test_case "fusion with measurements" `Quick
      test_fusion_with_measurements;
    Alcotest.test_case "fusion on QFT" `Quick test_fusion_qft;
    Alcotest.test_case "parallel kernels (forced pool)" `Quick
      test_parallel_kernels;
    Alcotest.test_case "parallel reductions" `Quick test_parallel_reductions;
    Alcotest.test_case "parallel measure/collapse" `Quick
      test_parallel_measure_collapse;
    Alcotest.test_case "dpool coverage and reduce" `Quick test_dpool_coverage;
    Alcotest.test_case "dpool exception propagation" `Quick
      test_dpool_exception;
    Alcotest.test_case "prob_one clamped" `Quick test_prob_one_clamped;
    Alcotest.test_case "collapse near-zero branch" `Quick
      test_collapse_near_zero_branch;
    Alcotest.test_case "measure deterministic qubit" `Quick
      test_measure_deterministic_qubit;
    Alcotest.test_case "batchable classification" `Quick test_batchable;
    Alcotest.test_case "batched matches per-shot" `Quick
      test_batched_matches_per_shot;
    Alcotest.test_case "batched sampler vs exact distribution" `Quick
      test_batched_sampler_vs_direct;
    Alcotest.test_case "batched path matches recorded-output order" `Quick
      test_batched_deterministic_permutation;
    QCheck_alcotest.to_alcotest prop_cluster_shard_differential;
    Alcotest.test_case "histogram invariant under sharding" `Quick
      test_histogram_shard_invariant;
    Alcotest.test_case "shard-straddling gates" `Quick
      test_shard_straddling_gates;
    Alcotest.test_case "add_qubit across the shard split" `Quick
      test_add_qubit_across_shard_split;
    Alcotest.test_case "checked-access mode" `Quick test_checked_access_path;
  ]
