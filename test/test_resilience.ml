(* Tests for the resilience layer: fault injection (Qsim.Faulty), the
   retry/timeout/backoff policy (Qruntime.Resilience), graceful
   degradation of the batched and parallel fast paths, and the unified
   error taxonomy (Qruntime.Qir_error).

   The central property: because a retried shot re-runs with the
   identical quantum seed but a fresh fault stream, a faulty run that
   recovers produces *exactly* the fault-free histogram — not merely a
   statistically similar one. *)

open Qcircuit
open Qir
open Qruntime

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let hist_t = Alcotest.(list (pair string int))

let bell () = Qir_builder.build (Generate.bell ())
let ghz n = Qir_builder.build (Generate.ghz n)

(* An entry point that never terminates: br label %l / l: br label %l.
   Used to exercise wall-clock deadlines deterministically. *)
let spin_src =
  "define void @main() \"entry_point\" {\nentry:\n  br label %l\nl:\n  br \
   label %l\n}"

let faulty ?(gate = 0.0) ?(measure = 0.0) ?(crash = 0.0) ?(stall = 0.0)
    ?(seed = 1) () =
  `Faulty
    {
      Qsim.Faulty.default with
      Qsim.Faulty.gate_rate = gate;
      measure_rate = measure;
      crash_rate = crash;
      stall_rate = stall;
      fault_seed = seed;
    }

(* Retries without real sleeps keep the suite fast. *)
let policy ?(retries = 8) () =
  { Resilience.default with Resilience.max_retries = retries; sleep = false }

(* ------------------------------------------------------------------ *)
(* (a) recovery: per fault kind, the recovered histogram is exact      *)

let recovered_equals_fault_free backend =
  let m = bell () in
  let reference =
    Executor.run_shots_resilient ~policy:(policy ()) ~seed:5 ~batch:false
      ~shots:300 m
  in
  let injected_before = Qsim.Faulty.injected () in
  let r =
    Executor.run_shots_resilient ~policy:(policy ()) ~seed:5 ~backend
      ~shots:300 m
  in
  check bool_t "faults were actually injected" true
    (Qsim.Faulty.injected () > injected_before);
  check bool_t "retries happened" true (r.Executor.retries > 0);
  check bool_t "not degraded" false r.Executor.degraded;
  check int_t "all shots completed" 300 r.Executor.completed;
  check hist_t "histogram identical to fault-free run"
    reference.Executor.histogram r.Executor.histogram

let test_recover_gate_faults () =
  recovered_equals_fault_free (faulty ~gate:0.05 ~seed:7 ())

let test_recover_measure_faults () =
  recovered_equals_fault_free (faulty ~measure:0.05 ~seed:11 ())

let test_recover_crash_faults () =
  recovered_equals_fault_free (faulty ~crash:0.02 ~seed:13 ())

let test_recover_stall_faults () =
  recovered_equals_fault_free (faulty ~stall:0.02 ~seed:17 ())

let test_recover_mixed_on_stabilizer () =
  (* the fault injector wraps any inner backend *)
  let m = ghz 4 in
  let spec =
    {
      Qsim.Faulty.default with
      Qsim.Faulty.gate_rate = 0.03;
      measure_rate = 0.03;
      fault_seed = 23;
      inner = `Stabilizer;
    }
  in
  let reference =
    Executor.run_shots_resilient ~policy:(policy ()) ~seed:9
      ~backend:`Stabilizer ~shots:200 m
  in
  let r =
    Executor.run_shots_resilient ~policy:(policy ()) ~seed:9
      ~backend:(`Faulty spec) ~shots:200 m
  in
  check bool_t "retries happened" true (r.Executor.retries > 0);
  check hist_t "stabilizer histogram identical" reference.Executor.histogram
    r.Executor.histogram

let test_no_retries_fails_with_backend_error () =
  let m = bell () in
  match
    Executor.run_resilient ~policy:Resilience.no_retry ~seed:1
      ~backend:(faulty ~gate:1.0 ())
      m
  with
  | Ok _ -> Alcotest.fail "expected a backend error with retries disabled"
  | Error e ->
    check int_t "backend exit code" Qir_error.exit_backend
      (Qir_error.exit_code e);
    check bool_t "classified transient" true
      (e.Qir_error.severity = Qir_error.Transient)

let test_exhausted_budget_raises () =
  let m = bell () in
  check bool_t "run_shots_resilient raises Qir_error on certain faults" true
    (match
       Executor.run_shots_resilient
         ~policy:(policy ~retries:2 ())
         ~seed:1
         ~backend:(faulty ~gate:1.0 ())
         ~shots:5 m
     with
    | exception Qir_error.Error e -> e.Qir_error.kind = Qir_error.Backend_failure
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* (b) deadlines: expiry yields partial results with degraded = true   *)

let test_total_deadline_already_expired () =
  let m = bell () in
  let p = { (policy ()) with Resilience.total_timeout = Some 0.0 } in
  let r = Executor.run_shots_resilient ~policy:p ~shots:50 m in
  check bool_t "degraded" true r.Executor.degraded;
  check int_t "no shots completed" 0 r.Executor.completed;
  check int_t "requested preserved" 50 r.Executor.requested

let test_shot_deadline_stops_spinning_program () =
  let m = Llvm_ir.Parser.parse_module spin_src in
  let p = { (policy ()) with Resilience.shot_timeout = Some 0.02 } in
  let t0 = Unix.gettimeofday () in
  let r = Executor.run_shots_resilient ~policy:p ~batch:false ~shots:3 m in
  check bool_t "degraded" true r.Executor.degraded;
  check bool_t "stopped promptly" true (Unix.gettimeofday () -. t0 < 5.0)

let test_generous_deadline_not_degraded () =
  let m = bell () in
  let p = { (policy ()) with Resilience.total_timeout = Some 60.0 } in
  let r = Executor.run_shots_resilient ~policy:p ~shots:20 m in
  check bool_t "not degraded" false r.Executor.degraded;
  check int_t "all completed" 20 r.Executor.completed

let test_interp_deadline_raises_timeout () =
  let m = Llvm_ir.Parser.parse_module spin_src in
  (* absolute deadlines live on the monotonic clock, not the epoch *)
  let deadline = Resilience.Deadline.now () +. 0.02 in
  check bool_t "interpreter raises Timeout_error past the deadline" true
    (match Executor.run ~deadline m with
    | exception Llvm_ir.Ir_error.Timeout_error _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* (c) graceful degradation: fallbacks preserve the histogram          *)

let test_batch_fallback_identical_histogram () =
  let m = bell () in
  let batched = Executor.run_shots_resilient ~seed:4 ~shots:400 m in
  check bool_t "fast path is batched" true batched.Executor.batched;
  Executor.set_batch_sabotage (fun () ->
      Qsim.Sim_error.error ~op:"test" "sabotaged batch path");
  let fell_back =
    Fun.protect
      ~finally:(fun () -> Executor.set_batch_sabotage (fun () -> ()))
      (fun () -> Executor.run_shots_resilient ~seed:4 ~shots:400 m)
  in
  check bool_t "fallback engaged" true fell_back.Executor.batch_fallback;
  check bool_t "no longer batched" false fell_back.Executor.batched;
  let per_shot =
    Executor.run_shots_resilient ~seed:4 ~batch:false ~shots:400 m
  in
  check hist_t "fallback histogram = per-shot histogram"
    per_shot.Executor.histogram fell_back.Executor.histogram

let test_pool_fallback_identical_histogram () =
  (* Lower the parallel threshold so even a 2-qubit kernel wants the
     pool, then make Domain.spawn fail: kernels must degrade to
     sequential sweeps with identical results. *)
  let m = bell () in
  let reference = Executor.run_shots_resilient ~seed:6 ~shots:200 m in
  let saved_threshold = Qsim.Dpool.threshold () in
  let saved_domains = Qsim.Dpool.domains () in
  Qsim.Dpool.set_threshold 1;
  Qsim.Dpool.set_domains 2;
  Qsim.Dpool.force_spawn_failure true;
  let r =
    Fun.protect
      ~finally:(fun () ->
        Qsim.Dpool.force_spawn_failure false;
        Qsim.Dpool.set_domains saved_domains;
        Qsim.Dpool.set_threshold saved_threshold)
      (fun () -> Executor.run_shots_resilient ~seed:6 ~shots:200 m)
  in
  check bool_t "sequential fallbacks counted" true
    (r.Executor.pool_fallbacks > 0);
  check hist_t "sequential histogram identical" reference.Executor.histogram
    r.Executor.histogram

(* ------------------------------------------------------------------ *)
(* (d) units: taxonomy, policy, fault-spec parsing                     *)

let test_error_classification () =
  let cases =
    [
      ( Qsim.Sim_error.Backend_fault
          { fault = Qsim.Sim_error.Gate_fault; op = "h" },
        Qir_error.Backend_failure, Qir_error.Transient, 6 );
      ( Qsim.Sim_error.Backend_fault
          { fault = Qsim.Sim_error.Stall; op = "h" },
        Qir_error.Timeout, Qir_error.Transient, 5 );
      ( Qsim.Sim_error.Error { op = "apply"; msg = "qubit out of range" },
        Qir_error.Backend_failure, Qir_error.Permanent, 6 );
      ( Llvm_ir.Ir_error.Timeout_error "deadline",
        Qir_error.Timeout, Qir_error.Permanent, 5 );
      ( Runtime.Runtime_error "bad result pointer",
        Qir_error.Exec, Qir_error.Permanent, 4 );
    ]
  in
  List.iter
    (fun (exn, kind, sev, code) ->
      match Qir_error.of_exn exn with
      | None -> Alcotest.fail "expected classification"
      | Some e ->
        check bool_t "kind" true (e.Qir_error.kind = kind);
        check bool_t "severity" true (e.Qir_error.severity = sev);
        check int_t "exit code" code (Qir_error.exit_code e))
    cases;
  check bool_t "unknown exceptions stay unclassified" true
    (Qir_error.of_exn Exit = None);
  check bool_t "only injected faults are transient" true
    (Qir_error.is_transient
       (Qsim.Sim_error.Backend_fault
          { fault = Qsim.Sim_error.Crash; op = "x" })
    && not (Qir_error.is_transient (Runtime.Runtime_error "x")))

let test_backoff_delay_bounds () =
  let p =
    {
      Resilience.default with
      Resilience.base_backoff = 0.010;
      backoff_factor = 2.0;
      max_backoff = 0.050;
      jitter = 0.5;
    }
  in
  let rng = Rng.create 42 in
  for attempt = 0 to 9 do
    let d = Resilience.backoff_delay p rng ~attempt in
    let ceiling =
      Float.min (0.010 *. (2.0 ** float_of_int attempt)) 0.050
    in
    check bool_t "delay within [ceiling/2, ceiling]" true
      (d >= (ceiling /. 2.0) -. 1e-9 && d <= ceiling +. 1e-9)
  done

let test_with_retries_counts () =
  let rng = Rng.create 1 in
  let p = { (policy ~retries:5 ()) with Resilience.base_backoff = 0.0 } in
  let calls = ref 0 in
  let f ~attempt =
    incr calls;
    if attempt < 3 then
      Qsim.Sim_error.fault ~op:"t" Qsim.Sim_error.Gate_fault
    else "ok"
  in
  (match Resilience.with_retries p rng f with
  | Ok (v, retries) ->
    check Alcotest.string "value" "ok" v;
    check int_t "retries used" 3 retries
  | Error _ -> Alcotest.fail "expected success after 3 retries");
  check int_t "calls" 4 !calls;
  (* permanent errors never retry *)
  let calls = ref 0 in
  let g ~attempt:_ =
    incr calls;
    raise (Runtime.Runtime_error "permanent")
  in
  (match Resilience.with_retries p rng g with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error (e, attempts) ->
    check bool_t "permanent" true
      (e.Qir_error.severity = Qir_error.Permanent);
    check int_t "single attempt" 1 attempts);
  check int_t "no retry on permanent" 1 !calls

let test_spec_parsing () =
  (match Qsim.Faulty.spec_of_string "gate=0.05,measure=0.01,seed=7" with
  | Error msg -> Alcotest.fail msg
  | Ok s ->
    check (Alcotest.float 1e-12) "gate" 0.05 s.Qsim.Faulty.gate_rate;
    check (Alcotest.float 1e-12) "measure" 0.01 s.Qsim.Faulty.measure_rate;
    check int_t "seed" 7 s.Qsim.Faulty.fault_seed);
  (match Qsim.Faulty.spec_of_string "0.09" with
  | Error msg -> Alcotest.fail msg
  | Ok s ->
    check (Alcotest.float 1e-12) "bare rate splits" 0.03
      s.Qsim.Faulty.gate_rate);
  (match Qsim.Faulty.spec_of_string "inner=stabilizer" with
  | Error msg -> Alcotest.fail msg
  | Ok s ->
    check bool_t "inner backend" true (s.Qsim.Faulty.inner = `Stabilizer));
  check bool_t "bad rate rejected" true
    (Result.is_error (Qsim.Faulty.spec_of_string "gate=1.5"));
  check bool_t "unknown key rejected" true
    (Result.is_error (Qsim.Faulty.spec_of_string "bogus=1"));
  (* round trip through the printer *)
  match Qsim.Faulty.spec_of_string "gate=0.05,stall=0.001,seed=3" with
  | Error msg -> Alcotest.fail msg
  | Ok s -> (
    match Qsim.Faulty.spec_of_string (Qsim.Faulty.spec_to_string s) with
    | Error msg -> Alcotest.fail msg
    | Ok s' -> check bool_t "round trip" true (s = s'))

let test_run_shots_back_compat () =
  (* the historical API still produces the same histograms *)
  let m = bell () in
  let old_api = Executor.run_shots ~seed:8 ~shots:150 m in
  let new_api = Executor.run_shots_resilient ~seed:8 ~shots:150 m in
  check hist_t "identical" new_api.Executor.histogram old_api

let suite =
  [
    Alcotest.test_case "recover from gate faults" `Quick
      test_recover_gate_faults;
    Alcotest.test_case "recover from measure faults" `Quick
      test_recover_measure_faults;
    Alcotest.test_case "recover from crashes" `Quick
      test_recover_crash_faults;
    Alcotest.test_case "recover from stalls" `Quick
      test_recover_stall_faults;
    Alcotest.test_case "recover on stabilizer inner" `Quick
      test_recover_mixed_on_stabilizer;
    Alcotest.test_case "no retries -> backend error" `Quick
      test_no_retries_fails_with_backend_error;
    Alcotest.test_case "exhausted budget raises" `Quick
      test_exhausted_budget_raises;
    Alcotest.test_case "expired total deadline degrades" `Quick
      test_total_deadline_already_expired;
    Alcotest.test_case "shot deadline stops spin" `Quick
      test_shot_deadline_stops_spinning_program;
    Alcotest.test_case "generous deadline completes" `Quick
      test_generous_deadline_not_degraded;
    Alcotest.test_case "interp deadline raises" `Quick
      test_interp_deadline_raises_timeout;
    Alcotest.test_case "batch fallback histogram" `Quick
      test_batch_fallback_identical_histogram;
    Alcotest.test_case "pool fallback histogram" `Quick
      test_pool_fallback_identical_histogram;
    Alcotest.test_case "error classification" `Quick
      test_error_classification;
    Alcotest.test_case "backoff delay bounds" `Quick
      test_backoff_delay_bounds;
    Alcotest.test_case "with_retries accounting" `Quick
      test_with_retries_counts;
    Alcotest.test_case "fault spec parsing" `Quick test_spec_parsing;
    Alcotest.test_case "run_shots back-compat" `Quick
      test_run_shots_back_compat;
  ]
