The full CLI pipeline on the paper's Fig. 1 program.

OpenQASM 2 -> QIR with static addressing (Ex. 6):

  $ qasm2qir bell.qasm --record-output false
  ; ModuleID = 'qir_builder'
  
  declare void @__quantum__qis__mz__body(ptr, ptr)
  
  declare void @__quantum__qis__cnot__body(ptr, ptr)
  
  declare void @__quantum__qis__h__body(ptr)
  
  define void @main() #0 {
  entry:
    call void @__quantum__qis__h__body(ptr null)
    call void @__quantum__qis__cnot__body(ptr null, ptr inttoptr (i64 1 to ptr))
    call void @__quantum__qis__mz__body(ptr null, ptr null)
    call void @__quantum__qis__mz__body(ptr inttoptr (i64 1 to ptr), ptr inttoptr (i64 1 to ptr))
    ret void
  }
  
  attributes #0 = { "entry_point" "qir_profiles"="base_profile" "required_num_qubits"="2" "required_num_results"="2" }

The static module conforms to the base profile:

  $ qasm2qir bell.qasm -o bell.ll
  $ qirc bell.ll --check base --emit none
  conforms to base_profile

Dynamic addressing (Fig. 1 right) violates it:

  $ qasm2qir bell.qasm --addressing dynamic -o bell_dyn.ll
  $ qirc bell_dyn.ll --check base --emit none
  [base:no-memory] @main: memory instruction '%0 = alloca ptr, align 8' is not allowed
  [base:no-allocation] @main: dynamic qubit allocation (@__quantum__rt__qubit_allocate_array) is not allowed
  [base:no-memory] @main: memory instruction 'store ptr %1, ptr %0, align 8' is not allowed
  [base:no-memory] @main: memory instruction '%2 = alloca ptr, align 8' is not allowed
  [base:no-memory] @main: memory instruction 'store ptr %3, ptr %2, align 8' is not allowed
  [base:no-memory] @main: memory instruction '%4 = load ptr, ptr %0, align 8' is not allowed
  [base:static-addresses] @main: @__quantum__qis__h__body receives a dynamic qubit/result address
  [base:no-memory] @main: memory instruction '%6 = load ptr, ptr %0, align 8' is not allowed
  [base:no-memory] @main: memory instruction '%8 = load ptr, ptr %0, align 8' is not allowed
  [base:static-addresses] @main: @__quantum__qis__cnot__body receives a dynamic qubit/result address
  [base:static-addresses] @main: @__quantum__qis__cnot__body receives a dynamic qubit/result address
  [base:no-memory] @main: memory instruction '%10 = load ptr, ptr %2, align 8' is not allowed
  [base:no-memory] @main: memory instruction '%12 = load ptr, ptr %0, align 8' is not allowed
  [base:static-addresses] @main: @__quantum__qis__mz__body receives a dynamic qubit/result address
  [base:static-addresses] @main: @__quantum__qis__mz__body receives a dynamic qubit/result address
  [base:no-memory] @main: memory instruction '%14 = load ptr, ptr %2, align 8' is not allowed
  [base:no-memory] @main: memory instruction '%16 = load ptr, ptr %0, align 8' is not allowed
  [base:static-addresses] @main: @__quantum__qis__mz__body receives a dynamic qubit/result address
  [base:static-addresses] @main: @__quantum__qis__mz__body receives a dynamic qubit/result address
  [base:no-memory] @main: memory instruction '%18 = load ptr, ptr %2, align 8' is not allowed
  [base:static-addresses] @main: @__quantum__rt__result_record_output receives a dynamic qubit/result address
  [base:no-memory] @main: memory instruction '%20 = load ptr, ptr %2, align 8' is not allowed
  [base:static-addresses] @main: @__quantum__rt__result_record_output receives a dynamic qubit/result address
  [base:no-memory] @main: memory instruction '%22 = load ptr, ptr %0, align 8' is not allowed
  [3]

...but converts:

  $ qirc bell_dyn.ll --addressing static --check base --emit none
  conforms to base_profile

Execution (deterministic with a seed):

  $ qir-run bell.ll --shots 50 --seed 3
  00: 23
  11: 27

Round-trip back to OpenQASM:

  $ qir2qasm bell.ll
  OPENQASM 2.0;
  include "qelib1.inc";
  qreg q[2];
  creg c[2];
  h q[0];
  cx q[0], q[1];
  measure q[0] -> c[0];
  measure q[1] -> c[1];

Error paths: unknown pass, bad input, unroutable profile check.

  $ qirc bell.ll --pass no-such-pass
  qirc: unknown pass no-such-pass (available: mem2reg, const-fold, sccp, instcombine, cse, dce, simplify-cfg, loop-unroll, inline, quantum-dce, quantum-opt)
  [7]

  $ echo "this is not llvm" > bad.ll
  $ qirc bad.ll
  qirc: bad.ll: 1:8: unexpected token 'this' at top level
  [2]

  $ qir-run bad.ll
  qir-run: bad.ll: 1:8: unexpected token 'this' at top level
  [2]

The MLIR outlook (paper conclusion):

  $ qirc bell.ll --emit mlir
  module {
    func.func @main() attributes {qir.entry_point} {
      %q0_0 = quantum.alloc : !quantum.bit
      %q1_0 = quantum.alloc : !quantum.bit
      %q0_1 = quantum.custom "h" %q0_0 : !quantum.bit
      %q0_2, %q1_1 = quantum.custom "cx" %q0_1, %q1_0 : !quantum.bit, !quantum.bit
      %m0, %q0_3 = quantum.measure %q0_2 : i1, !quantum.bit
      %m1, %q1_2 = quantum.measure %q1_1 : i1, !quantum.bit
      quantum.dealloc %q0_3 : !quantum.bit
      quantum.dealloc %q1_2 : !quantum.bit
      return
    }
  }

The paper's Ex. 4: a QIR FOR-loop lowers to ten straight-line H calls.

  $ qirc forloop.ll --check base --emit none
  [base:straight-line] @main: base profile requires a single basic block, found 4
  [base:no-memory] @main: memory instruction '%i = alloca i32, align 8' is not allowed
  [base:no-memory] @main: memory instruction 'store i32 0, ptr %i, align 8' is not allowed
  [base:straight-line] @main: branching is not allowed
  [base:no-memory] @main: memory instruction '%1 = load i32, ptr %i, align 8' is not allowed
  [base:no-classical] @main: classical computation '%cond = icmp slt i32 %1, 10' is not allowed
  [base:straight-line] @main: branching is not allowed
  [base:no-memory] @main: memory instruction '%2 = load i32, ptr %i, align 8' is not allowed
  [base:no-classical] @main: classical computation '%idx = sext i32 %2 to i64' is not allowed
  [base:no-classical] @main: classical computation '%qb = inttoptr i64 %idx to ptr' is not allowed
  [base:static-addresses] @main: @__quantum__qis__h__body receives a dynamic qubit/result address
  [base:no-memory] @main: memory instruction '%3 = load i32, ptr %i, align 8' is not allowed
  [base:no-classical] @main: classical computation '%4 = add i32 %3, 1' is not allowed
  [base:no-memory] @main: memory instruction 'store i32 %4, ptr %i, align 8' is not allowed
  [base:straight-line] @main: branching is not allowed
  [3]

  $ qirc forloop.ll --lower --check base --emit qasm3
  conforms to base_profile
  OPENQASM 3;
  include "stdgates.inc";
  qubit[10] q;
  h q[0];
  h q[1];
  h q[2];
  h q[3];
  h q[4];
  h q[5];
  h q[6];
  h q[7];
  h q[8];
  h q[9];

Resilience: the executor retries transient injected faults with backoff,
and a recovered run reproduces the fault-free histogram exactly.

  $ qir-run bell.ll --shots 50 --seed 3 --no-batch
  00: 22
  11: 28

  $ qir-run bell.ll --shots 50 --seed 3 --backend faulty:0.05 --stats | grep -v '^timings:'
  00: 22
  11: 28
  completed=50/50 retries=6 batched=false batch-fallback=false pool-fallbacks=0 engine=bytecode tape=false
  stats: {"completed": 50, "requested": 50, "retries": 6, "batched": false, "batch_fallback": false, "pool_fallbacks": 0, "engine": "bytecode", "tape": false, "compile_cache_hits": 56, "compile_cache_misses": 1, "tape_cache_hits": 0, "tape_cache_misses": 0}

Execution engines: the AST interpreter and the compile-once bytecode
engine are observably identical — forcing either one must reproduce the
seed histograms byte for byte (per shot and batched).

  $ qir-run bell.ll --shots 50 --seed 3 --no-batch --engine ast
  00: 22
  11: 28

  $ qir-run bell.ll --shots 50 --seed 3 --no-batch --engine bytecode
  00: 22
  11: 28

  $ qir-run bell.ll --shots 50 --seed 3 --engine ast
  00: 23
  11: 27

The default auto engine unlocks the gate-tape fast path where the
analyses prove the program static; the stabilizer backend is ineligible
for batching, so the tape is what serves it — with the same histogram
per-shot interpretation produces.

  $ qir-run bell.ll --shots 50 --seed 3 --backend stabilizer --stats | grep -v '^timings:'
  00: 27
  11: 23
  completed=50/50 retries=0 batched=false batch-fallback=false pool-fallbacks=0 engine=bytecode tape=true
  stats: {"completed": 50, "requested": 50, "retries": 0, "batched": false, "batch_fallback": false, "pool_fallbacks": 0, "engine": "bytecode", "tape": true, "compile_cache_hits": 0, "compile_cache_misses": 1, "tape_cache_hits": 0, "tape_cache_misses": 1}

  $ qir-run bell.ll --shots 50 --seed 3 --backend stabilizer --engine ast
  00: 27
  11: 23

An unknown engine is rejected by the option parser:

  $ qir-run bell.ll --engine turbo
  qir-run: option '--engine': unknown engine "turbo" (expected ast, bytecode or
           auto)
  Usage: qir-run [OPTION]… INPUT.ll
  Try 'qir-run --help' for more information.
  [124]

The --stats wall-clock breakdown is one JSON line with stable keys
(values vary run to run; the keys are the contract):

  $ qir-run bell.ll --shots 10 --stats | grep '^timings:' | grep -o '"[a-z_]*_s"'
  "parse_s"
  "analysis_s"
  "resource_s"
  "compile_s"
  "execute_s"
  "total_s"

  $ qir-run bell.ll --stats | grep '^timings:' | grep -o '"[a-z_]*_s"'
  "parse_s"
  "analysis_s"
  "resource_s"
  "compile_s"
  "execute_s"
  "total_s"

With retries disabled, the first fault is fatal (exit 6):

  $ qir-run bell.ll --shots 50 --seed 3 --backend faulty:gate=1 --retries 0
  qir-run: backend error (backend, transient): injected gate fault during h
  [6]

A malformed fault spec is rejected by the option parser (cmdliner's
conventional exit 124):

  $ qir-run bell.ll --backend faulty:bogus=1
  qir-run: option '--backend': faulty: unknown field "bogus"
  Usage: qir-run [OPTION]… INPUT.ll
  Try 'qir-run --help' for more information.
  [124]

Execution errors exit 4:

  $ cat > div0.ll <<'LL'
  > define void @main() "entry_point" {
  > entry:
  >   %x = udiv i32 1, 0
  >   ret void
  > }
  > LL
  $ qir-run div0.ll
  qir-run: exec error (interpreter, permanent): integer division by zero
  [4]

An exhausted wall-clock budget keeps completed shots and exits 5:

  $ qir-run bell.ll --shots 5 --timeout 0
  qir-run: deadline expired after 0/5 shots (degraded result)
  [5]

A missing input file is a usage error:

  $ qir-run no-such-file.ll
  qir-run: no-such-file.ll: No such file or directory
  [7]

Static analysis: qir-lint is clean on well-formed programs, whatever
their addressing style.

  $ qir-lint bell.ll
  0 error(s), 0 warning(s), 0 note(s)

  $ qir-lint bell_dyn.ll
  note: @main %entry [QO004] entry point provably lowers to static addressing (35 dynamic operand(s)/instruction(s) rewritten)
  0 error(s), 0 warning(s), 1 note(s)

Seeded lifetime bugs (use-after-release, double release, leak,
read-before-measure, dead gates) are all flagged; errors exit 3.

  $ cat > buggy.ll <<'LL'
  > declare ptr @__quantum__rt__qubit_allocate()
  > declare void @__quantum__rt__qubit_release(ptr)
  > declare void @__quantum__qis__h__body(ptr)
  > declare void @__quantum__qis__x__body(ptr)
  > declare i1 @__quantum__qis__read_result__body(ptr)
  > define void @main() "entry_point" {
  > entry:
  >   %q0 = call ptr @__quantum__rt__qubit_allocate()
  >   %q1 = call ptr @__quantum__rt__qubit_allocate()
  >   call void @__quantum__qis__h__body(ptr %q0)
  >   call void @__quantum__rt__qubit_release(ptr %q0)
  >   call void @__quantum__qis__x__body(ptr %q0)
  >   call void @__quantum__rt__qubit_release(ptr %q0)
  >   %r = call i1 @__quantum__qis__read_result__body(ptr null)
  >   ret void
  > }
  > LL
  $ qir-lint buggy.ll
  error: @main %entry [QL001] @__quantum__qis__x__body uses a released qubit (qubit allocated at site 0)
  error: @main %entry [QL002] @__quantum__rt__qubit_release releases an already-released qubit (allocation site 0)
  error: @main %entry [QL004] @__quantum__qis__read_result__body reads result 0, which is measured on no path here
  warning: @main %entry [QL003] qubit allocated at site 1 is never released
  warning: @main %entry [QD001] 'call void @__quantum__qis__h__body(ptr %q0)' affects no measured or recorded qubit
  warning: @main %entry [QD001] 'call void @__quantum__qis__x__body(ptr %q0)' affects no measured or recorded qubit
  3 error(s), 3 warning(s), 0 note(s)
  [3]

The same report as machine-readable JSON:

  $ qir-lint buggy.ll --format json
  {
    "schema_version": 2,
    "module":"buggy.ll",
    "diagnostics": [
      {"rule":"QL001","severity":"error","module":"buggy.ll","where":"@main %entry","message":"@__quantum__qis__x__body uses a released qubit (qubit allocated at site 0)"},
      {"rule":"QL002","severity":"error","module":"buggy.ll","where":"@main %entry","message":"@__quantum__rt__qubit_release releases an already-released qubit (allocation site 0)"},
      {"rule":"QL004","severity":"error","module":"buggy.ll","where":"@main %entry","message":"@__quantum__qis__read_result__body reads result 0, which is measured on no path here"},
      {"rule":"QL003","severity":"warning","module":"buggy.ll","where":"@main %entry","message":"qubit allocated at site 1 is never released"},
      {"rule":"QD001","severity":"warning","module":"buggy.ll","where":"@main %entry","message":"'call void @__quantum__qis__h__body(ptr %q0)' affects no measured or recorded qubit"},
      {"rule":"QD001","severity":"warning","module":"buggy.ll","where":"@main %entry","message":"'call void @__quantum__qis__x__body(ptr %q0)' affects no measured or recorded qubit"}
    ],
    "summary": {"errors": 3, "warnings": 3, "notes": 0}
  }
  [3]

A phi-resolved constant address is dynamic in shape but proved static
by the dataflow analysis (QA001), and `--addressing static` converts it
where the purely syntactic route refuses the phi:

  $ cat > phi_addr.ll <<'LL'
  > declare void @__quantum__qis__h__body(ptr)
  > declare void @__quantum__qis__x__body(ptr)
  > declare void @__quantum__qis__mz__body(ptr, ptr)
  > declare i1 @__quantum__qis__read_result__body(ptr)
  > define void @main() "entry_point" {
  > entry:
  >   call void @__quantum__qis__h__body(ptr null)
  >   call void @__quantum__qis__mz__body(ptr null, ptr null)
  >   %r = call i1 @__quantum__qis__read_result__body(ptr null)
  >   br i1 %r, label %then, label %join
  > then:
  >   %a1 = add i64 0, 1
  >   br label %join
  > join:
  >   %addr = phi i64 [ 1, %entry ], [ %a1, %then ]
  >   %q = inttoptr i64 %addr to ptr
  >   call void @__quantum__qis__x__body(ptr %q)
  >   call void @__quantum__qis__mz__body(ptr %q, ptr inttoptr (i64 1 to ptr))
  >   ret void
  > }
  > LL
  $ qir-lint phi_addr.ll
  note: @main %join [QA001] operand %q of @__quantum__qis__x__body is proved static (= inttoptr (i64 1 to ptr))
  note: @main %join [QA001] operand %q of @__quantum__qis__mz__body is proved static (= inttoptr (i64 1 to ptr))
  0 error(s), 0 warning(s), 2 note(s)

  $ qirc phi_addr.ll --addressing static --check base --emit none
  conforms to base_profile

qirc --lint gates compilation on error findings only; --Werror promotes
warnings (the leak below) to the verify exit code.

  $ cat > leaky.ll <<'LL'
  > declare ptr @__quantum__rt__qubit_allocate()
  > declare void @__quantum__qis__h__body(ptr)
  > declare void @__quantum__qis__mz__body(ptr, ptr)
  > define void @main() "entry_point" {
  > entry:
  >   %q = call ptr @__quantum__rt__qubit_allocate()
  >   call void @__quantum__qis__h__body(ptr %q)
  >   call void @__quantum__qis__mz__body(ptr %q, ptr null)
  >   ret void
  > }
  > LL
  $ qirc leaky.ll --lint --emit none
  warning: @main %entry [QL003] qubit allocated at site 0 is never released
  note: @main %entry [QO004] entry point provably lowers to static addressing (3 dynamic operand(s)/instruction(s) rewritten)
  0 error(s), 1 warning(s), 1 note(s)

  $ qirc leaky.ll --lint --Werror --emit none
  warning: @main %entry [QL003] qubit allocated at site 0 is never released
  note: @main %entry [QO004] entry point provably lowers to static addressing (3 dynamic operand(s)/instruction(s) rewritten)
  0 error(s), 1 warning(s), 1 note(s)
  [3]

  $ qirc buggy.ll --lint --emit none
  error: @main %entry [QL001] @__quantum__qis__x__body uses a released qubit (qubit allocated at site 0)
  error: @main %entry [QL002] @__quantum__rt__qubit_release releases an already-released qubit (allocation site 0)
  error: @main %entry [QL004] @__quantum__qis__read_result__body reads result 0, which is measured on no path here
  warning: @main %entry [QL003] qubit allocated at site 1 is never released
  warning: @main %entry [QD001] 'call void @__quantum__qis__h__body(ptr %q0)' affects no measured or recorded qubit
  warning: @main %entry [QD001] 'call void @__quantum__qis__x__body(ptr %q0)' affects no measured or recorded qubit
  3 error(s), 3 warning(s), 0 note(s)
  [3]

The quantum-dce pass removes gates that cannot affect any measurement:

  $ cat > deadgate.ll <<'LL'
  > declare void @__quantum__qis__h__body(ptr)
  > declare void @__quantum__qis__x__body(ptr)
  > declare void @__quantum__qis__mz__body(ptr, ptr)
  > define void @main() "entry_point" {
  > entry:
  >   call void @__quantum__qis__h__body(ptr null)
  >   call void @__quantum__qis__x__body(ptr inttoptr (i64 1 to ptr))
  >   call void @__quantum__qis__mz__body(ptr null, ptr null)
  >   ret void
  > }
  > LL
  $ qirc deadgate.ll --pass quantum-dce
  ; ModuleID = 'deadgate.ll'
  
  declare void @__quantum__qis__h__body(ptr)
  
  declare void @__quantum__qis__x__body(ptr)
  
  declare void @__quantum__qis__mz__body(ptr, ptr)
  
  define void @main() #0 {
  entry:
    call void @__quantum__qis__h__body(ptr null)
    call void @__quantum__qis__mz__body(ptr null, ptr null)
    ret void
  }
  
  attributes #0 = { "entry_point" }






Interprocedural lint: the checked-in teleportation example hides a
use-after-release behind a helper call — @measure_and_free releases its
qubit argument, and @main touches that qubit again. Only the
whole-module analysis (through the callee's effect summary) sees it.

  $ qir-lint ../../examples/teleport_helpers.ll
  error: @main %fix [QL001] @__quantum__qis__x__body uses a released qubit (qubit allocated at site 1)
  warning: @main %fix [QD001] 'call void @__quantum__qis__x__body(ptr %a)' affects no measured or recorded qubit
  1 error(s), 1 warning(s), 0 note(s)
  [3]

The pre-interprocedural behavior (--ipo=false) is blind to the real bug
and instead raises false alarms: the helper-released qubits look leaked
and the helper-measured result looks unmeasured.

  $ qir-lint ../../examples/teleport_helpers.ll --ipo=false
  error: @main %entry [QL004] @__quantum__qis__read_result__body reads result 1, which is measured on no path here
  warning: @main %done [QL003] qubit allocated at site 0 is never released
  warning: @main %done [QL003] qubit allocated at site 1 is never released
  warning: @main %fix [QD001] 'call void @__quantum__qis__x__body(ptr %a)' affects no measured or recorded qubit
  1 error(s), 3 warning(s), 0 note(s)
  [3]

The call graph behind the verdict:

  $ qir-lint ../../examples/teleport_helpers.ll --call-graph
  call graph of '../../examples/teleport_helpers.ll' (entry: @main)
    @entangle -> (no calls)
    @measure_and_free -> (no calls)
    @main -> @entangle, @measure_and_free
    sccs (bottom-up): {@entangle} {@measure_and_free} {@main}
    recursive: none
    unreachable: none

Recursion is rejected whole-module (QP001): no QIR profile supports it,
even though each function body is individually well-formed.

  $ qir-lint ../../examples/recursive_bad.ll
  error: @loop [QP001] recursion (@loop) is reachable from @main; no QIR profile supports recursive calls
  1 error(s), 0 warning(s), 0 note(s)
  [3]

  $ qirc ../../examples/recursive_bad.ll --check adaptive --emit none
  [adaptive:no-recursion] @loop: function @loop is recursive; no QIR profile supports recursion
  [3]

The machine-readable call-graph dump shares the JSON envelope
(schema_version + module) with the diagnostics format:

  $ qir-lint ../../examples/recursive_bad.ll --call-graph --format json
  {
    "schema_version": 2,
    "module": "../../examples/recursive_bad.ll",
    "entry": "main",
    "functions": [
      {"name":"loop","callees":["loop"],"external_callees":[],"recursive":true,"reachable":true},
      {"name":"main","callees":["loop"],"external_callees":[],"recursive":false,"reachable":true}
    ],
    "sccs": [["loop"],["main"]]
  }

Static resource certification (--resources): interprocedural symbolic
upper and lower bounds on qubits, gates, T-count, circuit depth and
shot-loop trip counts, checked by the QR-series rules. The bell
program is fully static, so every bound is exact:

  $ qir-lint bell.ll --resources
  0 error(s), 0 warning(s), 0 note(s)
  resource certificate: bell.ll (schema 2)
    entry: main  declared qubits: 2
    qubits:   2
    gates:    2
    t-count:  0
    measures: 2
    depth:    3
    loops: none

A counted loop over a dynamic qubit address: the trip count is proven
(the analysis runs mem2reg and constant folding on a shadow of the
module, never mutating the original), so the gate bound follows — but
the register demand is honestly unbounded, which QR001 flags against
the backend cap. --format json emits the versioned certificate with
the diagnostics inline:

  $ qir-lint forloop.ll --resources --format json
  {
    "schema_version": 2,
    "certificate": {
      "module": "forloop.ll",
      "entry": "main",
      "declared_qubits": 0,
      "opaque": false,
      "bounds": {
        "qubits": {"lo": 0, "hi": null},
        "gates": {"lo": 10, "hi": 11},
        "t_count": {"lo": 0, "hi": 0},
        "measures": {"lo": 0, "hi": 0},
        "depth": {"lo": 1, "hi": 11}
      },
      "loops": [
        {"function": "main", "header": "for.header", "trip": {"lo": 10, "hi": 10}, "quantum": true}
      ],
      "functions": [
        {"name": "main", "opaque": false, "gates": {"lo": 10, "hi": 11}, "t_count": {"lo": 0, "hi": 0}, "measures": {"lo": 0, "hi": 0}, "depth": {"lo": 1, "hi": 11}, "q_grow": {"lo": 0, "hi": 0}, "q_need": {"lo": 0, "hi": null}}
      ]
    },
    "diagnostics": [
      {"rule": "QR001", "severity": "warning", "where": "@main", "message": "qubit demand is unbounded; the 30-qubit backend cap cannot be certified"}
    ]
  }

qirc certifies the *transformed* program (on stderr, so the emitted
output stays clean): lowering unrolls the loop to static addresses and
the certificate tightens to exact bounds — ten parallel wires, depth 1:

  $ qirc forloop.ll --lower --resources --emit none
  resource certificate: forloop.ll (schema 2)
    entry: main  declared qubits: 0
    qubits:   10
    gates:    10
    t-count:  0
    measures: 0
    depth:    1
    loops: none
  0 error(s), 0 warning(s), 0 note(s)



Exit 8 is the service tier's overload code. qir-run exposes the same
admission check qir-serve applies per job, now sized from the resource
certificate: the declared register is a proven *lower* bound (the
runtime allocates it up front), so a footprint over the budget is
rejected before anything is compiled.

  $ cat > big.ll <<'LL'
  > define void @main() #0 {
  > entry:
  >   ret void
  > }
  > attributes #0 = { "entry_point" "required_num_qubits"="28" }
  > LL
  $ qir-run big.ll --mem-budget 1GiB
  qir-run: overload error (service, permanent): admission rejected before compile: proven 28-qubit lower bound needs 4.0 GiB, over the 1.0 GiB memory budget
  [8]
  $ qir-run bell.ll --shots 10 --mem-budget 1KiB > /dev/null

A declaration below the proven peak is never trusted: admission
charges the certified bound and surfaces the discrepancy as a QR003
note — and rejects on the proven bound even when the declared one
would have fit.

  $ cat > underdeclared.ll <<'LL'
  > declare void @__quantum__qis__h__body(ptr)
  > define void @main() #0 {
  > entry:
  >   call void @__quantum__qis__h__body(ptr inttoptr (i64 2 to ptr))
  >   ret void
  > }
  > attributes #0 = { "entry_point" "required_num_qubits"="1" }
  > LL
  $ qir-run underdeclared.ll --mem-budget 1KiB
  qir-run: QR003: declared qubit count 1 is below the certified peak 3; charging the proven bound
  $ qir-run underdeclared.ll --mem-budget 64
  qir-run: overload error (service, permanent): admission rejected before compile: proven 3-qubit lower bound needs 128 B, over the 64 B memory budget
  [8]

The --stats JSON line mirrors the human-readable counters and adds the
session cache hit/miss counts (stable keys are the contract):

  $ qir-run bell.ll --shots 10 --stats | grep '^stats:' | grep -o '"[a-z_]*":'
  "completed":
  "requested":
  "retries":
  "batched":
  "batch_fallback":
  "pool_fallbacks":
  "engine":
  "tape":
  "compile_cache_hits":
  "compile_cache_misses":
  "tape_cache_hits":
  "tape_cache_misses":

qir-serve runs the same programs as a multi-tenant service: requests
are newline-delimited JSON, events come back one per line with the
taxonomy embedded (an over-budget job is rejected with exit_code 8
while the in-budget job streams its result).

  $ cat > jobs.ndjson <<'NDJSON'
  > {"op":"submit","id":"a1","tenant":"alice","file":"bell.ll","shots":40,"seed":7}
  > {"op":"submit","id":"b1","tenant":"bob","file":"big.ll","shots":10}
  > {"op":"stats"}
  > NDJSON
  $ qir-serve jobs.ndjson --mem-budget 64MiB | sed -E 's/"(wait_s|run_s)": [-0-9.e]+/"\1": _/g'
  {"event": "accepted", "id": "a1", "tenant": "alice"}
  {"event": "rejected", "id": "b1", "tenant": "bob", "shed": false, "kind": "overload", "layer": "service", "exit_code": 8, "message": "admission rejected before compile: proven 28-qubit lower bound needs 4.0 GiB, over the 64.0 MiB memory budget"}
  {"event": "result", "id": "a1", "tenant": "alice", "tier": "batched", "completed": 40, "requested": 40, "degraded": false, "retries": 0, "engine": "bytecode", "tape": false, "batched": true, "pool_fallbacks": 0, "wait_s": _, "run_s": _, "histogram": {"00": 22, "11": 18}}
  {"event": "stats", "submitted": 2, "accepted": 1, "rejected": 1, "shed": 0, "completed": 1, "failed": 0, "degraded_results": 0, "batched_runs": 1, "tape_runs": 0, "per_shot_runs": 0, "throttled_runs": 0, "breaker_trips": 0, "queue_depth": 0, "compile_cache_hits": 0, "compile_cache_misses": 1, "tape_cache_hits": 0, "tape_cache_misses": 0, "cert_cache_hits": 0, "cert_cache_misses": 2}

A malformed request is a protocol-level usage error event, not a dead
daemon; later requests on the same stream still run.

  $ printf '%s\n%s\n' 'not json' '{"op":"submit","tenant":"c","file":"bell.ll","shots":5,"seed":1}' | qir-serve - | sed -E 's/"(wait_s|run_s)": [-0-9.e]+/"\1": _/g'
  {"event": "error", "kind": "usage", "layer": "service", "exit_code": 7, "message": "bad request JSON: expected 'null' at offset 0"}
  {"event": "accepted", "id": "job-1", "tenant": "c"}
  {"event": "result", "id": "job-1", "tenant": "c", "tier": "batched", "completed": 5, "requested": 5, "degraded": false, "retries": 0, "engine": "bytecode", "tape": false, "batched": true, "pool_fallbacks": 0, "wait_s": _, "run_s": _, "histogram": {"00": 2, "11": 3}}

Degenerate pool, shard and executor knobs are usage errors (exit 7),
rejected before any Domain is spawned:

  $ qir-run bell.ll --domains 0
  qir-run: --domains: need at least one domain
  [7]
  $ qir-run bell.ll --local-bits=-1
  qir-run: --local-bits: expected 1..30
  [7]
  $ qir-serve jobs.ndjson --executors 0
  qir-serve: --executors: need at least 1
  [7]
  $ qir-serve jobs.ndjson --domains 0
  qir-serve: --domains: need at least one domain
  [7]
  $ qir-serve jobs.ndjson --local-bits=-3
  qir-serve: --local-bits: expected 1..30
  [7]

Extra drain loops change throughput, never results: the same batch
under --executors 2 yields the same histogram, seed-determined.

  $ qir-serve jobs.ndjson --mem-budget 64MiB --executors 2 | grep '"event": "result"' | sed -E 's/"(wait_s|run_s)": [-0-9.e]+/"\1": _/g'
  {"event": "result", "id": "a1", "tenant": "alice", "tier": "batched", "completed": 40, "requested": 40, "degraded": false, "retries": 0, "engine": "bytecode", "tape": false, "batched": true, "pool_fallbacks": 0, "wait_s": _, "run_s": _, "histogram": {"00": 22, "11": 18}}

The value-semantics quantum optimizer (--opt-quantum): adjacent
self-inverse pairs cancel, same-axis rotations merge, and qir-lint
surfaces every rewrite opportunity as a QO note before anything is
touched.

  $ cat > redundant.ll <<'LL'
  > declare void @__quantum__qis__h__body(ptr)
  > declare void @__quantum__qis__rz__body(double, ptr)
  > declare void @__quantum__qis__mz__body(ptr, ptr)
  > declare void @__quantum__rt__result_record_output(ptr, ptr)
  > define void @main() "entry_point" {
  > entry:
  >   call void @__quantum__qis__h__body(ptr null)
  >   call void @__quantum__qis__h__body(ptr null)
  >   call void @__quantum__qis__rz__body(double 0.25, ptr inttoptr (i64 1 to ptr))
  >   call void @__quantum__qis__rz__body(double 0.5, ptr inttoptr (i64 1 to ptr))
  >   call void @__quantum__qis__mz__body(ptr null, ptr null)
  >   call void @__quantum__qis__mz__body(ptr inttoptr (i64 1 to ptr), ptr inttoptr (i64 1 to ptr))
  >   call void @__quantum__rt__result_record_output(ptr null, ptr null)
  >   call void @__quantum__rt__result_record_output(ptr inttoptr (i64 1 to ptr), ptr null)
  >   ret void
  > }
  > LL
  $ qir-lint redundant.ll
  note: @main %entry [QO001] cancellable pair: h then h on qubit 0 cancel
  note: @main %entry [QO002] mergeable rotations: rz(0.25) then rz(0.5) on qubit 1 -> rz(0.75)
  0 error(s), 0 warning(s), 2 note(s)

The optimizer removes the cancelled pair and folds the rotations into
one gate (the two mz calls are the only other qis calls left):

  $ qirc redundant.ll --opt-quantum -o redundant.opt.ll
  $ grep -c 'call void @__quantum__qis__h__body' redundant.opt.ll
  0
  [1]
  $ grep 'call void @__quantum__qis__rz__body' redundant.opt.ll
    call void @__quantum__qis__rz__body(double 0.75, ptr inttoptr (i64 1 to ptr))

qir-run reports what the optimizer did in one stable stats line:

  $ qir-run redundant.ll --opt-quantum --shots 20 --seed 5 --stats | grep '^opt:'
  opt: {"gates_before": 4, "gates_after": 1, "cancelled": 1, "merged": 1, "releases_hoisted": 0, "promoted": false}

Promotion makes the dynamic Bell module tape-eligible without changing
a single shot: the per-shot histograms are bit-identical.

  $ qir-run bell_dyn.ll --shots 50 --seed 3 --no-batch
  00: 22
  11: 28

  $ qir-run bell_dyn.ll --opt-quantum --shots 50 --seed 3 --no-batch
  00: 22
  11: 28

  $ qir-run bell_dyn.ll --opt-quantum --shots 20 --seed 5 --stats | grep '^opt:'
  opt: {"gates_before": 2, "gates_after": 2, "cancelled": 0, "merged": 0, "releases_hoisted": 0, "promoted": true}
