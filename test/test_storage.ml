(* Differential tests for the Bigarray-backed statevector storage
   (lib/simulator/statevector.ml).

   The storage migration's contract is *bit-identity*, not closeness:
   float64 Bigarray slices hold exactly the same IEEE doubles as the
   old [float array] pairs, and every kernel performs the same
   arithmetic on each amplitude in an order-independent way, so no
   result may move by even one ulp. Three angles:

   - [Oracle] is the seed engine's full-scan arithmetic kept on plain
     [float array] storage — the pre-migration representation,
     re-implemented here so the old layout stays testable after the
     library dropped it. A QCheck suite checks amplitudes, classical
     bits and shot histograms of random measured circuits are
     bit-identical between the oracle and {!Statevector.Reference}.
   - The same property with the register forced into small Bigarray
     shards, which exercises the two-level shard addressing.
   - Shard-exchange invariance: the stride-aware cross-shard kernels
     reorder traversal, never arithmetic, so the fast engine and the
     fused engine must produce bit-identical states under every
     [set_max_local_bits] setting. *)

open Qcircuit
open Qsim

let check = Alcotest.check
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* The old storage: seed-engine arithmetic over [float array] pairs    *)

module Oracle = struct
  type t = { n : int; re : float array; im : float array; rng : Rng.t }

  let create ?(seed = 1) n =
    let size = 1 lsl n in
    let re = Array.make size 0.0 and im = Array.make size 0.0 in
    re.(0) <- 1.0;
    { n; re; im; rng = Rng.create seed }

  let amplitude st i = { Complex.re = st.re.(i); im = st.im.(i) }

  let apply_1q st (u : Complex.t array array) q =
    let bit = 1 lsl q in
    let size = 1 lsl st.n in
    let u00 = u.(0).(0) and u01 = u.(0).(1) in
    let u10 = u.(1).(0) and u11 = u.(1).(1) in
    let re = st.re and im = st.im in
    let i = ref 0 in
    while !i < size do
      if !i land bit = 0 then begin
        let i0 = !i in
        let i1 = !i lor bit in
        let a_re = re.(i0) and a_im = im.(i0) in
        let b_re = re.(i1) and b_im = im.(i1) in
        re.(i0) <-
          (u00.Complex.re *. a_re) -. (u00.Complex.im *. a_im)
          +. (u01.Complex.re *. b_re) -. (u01.Complex.im *. b_im);
        im.(i0) <-
          (u00.Complex.re *. a_im) +. (u00.Complex.im *. a_re)
          +. (u01.Complex.re *. b_im) +. (u01.Complex.im *. b_re);
        re.(i1) <-
          (u10.Complex.re *. a_re) -. (u10.Complex.im *. a_im)
          +. (u11.Complex.re *. b_re) -. (u11.Complex.im *. b_im);
        im.(i1) <-
          (u10.Complex.re *. a_im) +. (u10.Complex.im *. a_re)
          +. (u11.Complex.re *. b_im) +. (u11.Complex.im *. b_re)
      end;
      incr i
    done

  let apply_2q st (u : Complex.t array array) qa qb =
    let ba = 1 lsl qa and bb = 1 lsl qb in
    let size = 1 lsl st.n in
    let tmp_re = Array.make 4 0.0 and tmp_im = Array.make 4 0.0 in
    let idx = Array.make 4 0 in
    let re = st.re and im = st.im in
    let i = ref 0 in
    while !i < size do
      if !i land ba = 0 && !i land bb = 0 then begin
        idx.(0) <- !i;
        idx.(1) <- !i lor bb;
        idx.(2) <- !i lor ba;
        idx.(3) <- !i lor ba lor bb;
        for k = 0 to 3 do
          let sr = ref 0.0 and si = ref 0.0 in
          for l = 0 to 3 do
            let m = u.(k).(l) in
            let vr = re.(idx.(l)) and vi = im.(idx.(l)) in
            sr := !sr +. ((m.Complex.re *. vr) -. (m.Complex.im *. vi));
            si := !si +. ((m.Complex.re *. vi) +. (m.Complex.im *. vr))
          done;
          tmp_re.(k) <- !sr;
          tmp_im.(k) <- !si
        done;
        for k = 0 to 3 do
          re.(idx.(k)) <- tmp_re.(k);
          im.(idx.(k)) <- tmp_im.(k)
        done
      end;
      incr i
    done

  let apply_ccx st c1 c2 tgt =
    let b1 = 1 lsl c1 and b2 = 1 lsl c2 and bt = 1 lsl tgt in
    let size = 1 lsl st.n in
    let re = st.re and im = st.im in
    let i = ref 0 in
    while !i < size do
      if !i land b1 <> 0 && !i land b2 <> 0 && !i land bt = 0 then begin
        let j = !i lor bt in
        let tr = re.(!i) and ti = im.(!i) in
        re.(!i) <- re.(j);
        im.(!i) <- im.(j);
        re.(j) <- tr;
        im.(j) <- ti
      end;
      incr i
    done

  let apply_cswap st c a b =
    let bc = 1 lsl c and ba = 1 lsl a and bb = 1 lsl b in
    let size = 1 lsl st.n in
    let re = st.re and im = st.im in
    let i = ref 0 in
    while !i < size do
      if !i land bc <> 0 && !i land ba <> 0 && !i land bb = 0 then begin
        let j = (!i lxor ba) lor bb in
        let tr = re.(!i) and ti = im.(!i) in
        re.(!i) <- re.(j);
        im.(!i) <- im.(j);
        re.(j) <- tr;
        im.(j) <- ti
      end;
      incr i
    done

  let apply st (g : Gate.t) qubits =
    match Gate.num_qubits g, qubits with
    | 1, [ q ] -> apply_1q st (Gate.matrix_1q g) q
    | 2, [ a; b ] -> apply_2q st (Gate.matrix_2q g) a b
    | 3, [ a; b; c ] -> (
      match g with
      | Gate.Ccx -> apply_ccx st a b c
      | Gate.Cswap -> apply_cswap st a b c
      | _ -> assert false)
    | _ -> assert false

  (* Measurement replicates the engine byte for byte: the bit-set-half
     enumeration of [prob_one], its clamp, the degenerate-branch guard
     of [measure] and the collapse normalization — all on the same
     splitmix64 stream. *)
  let prob_one st q =
    let bit = 1 lsl q in
    let half = 1 lsl (st.n - 1) in
    let acc = ref 0.0 in
    for k = 0 to half - 1 do
      let i1 = ((k lsr q) lsl (q + 1)) lor (k land (bit - 1)) lor bit in
      let r = st.re.(i1) and m = st.im.(i1) in
      acc := !acc +. (r *. r) +. (m *. m)
    done;
    Float.min 1.0 (Float.max 0.0 !acc)

  let collapse st q outcome prob =
    let bit = 1 lsl q in
    let size = 1 lsl st.n in
    let prob = if Float.is_nan prob || prob < 1e-300 then 1e-300 else prob in
    let norm = 1.0 /. sqrt prob in
    for i = 0 to size - 1 do
      let is_one = i land bit <> 0 in
      if is_one = outcome then begin
        st.re.(i) <- st.re.(i) *. norm;
        st.im.(i) <- st.im.(i) *. norm
      end
      else begin
        st.re.(i) <- 0.0;
        st.im.(i) <- 0.0
      end
    done

  let measure st q =
    let p1 = prob_one st q in
    let outcome = Rng.float st.rng < p1 in
    let prob = if outcome then p1 else 1.0 -. p1 in
    let outcome, prob =
      if prob <= 0.0 then (not outcome, 1.0 -. prob) else (outcome, prob)
    in
    collapse st q outcome prob;
    outcome

  let run_circuit ?(seed = 1) (c : Circuit.t) =
    let st = create ~seed c.Circuit.num_qubits in
    let clbits = Array.make (max c.Circuit.num_clbits 1) false in
    List.iter
      (fun (op : Circuit.op) ->
        if Statevector.cond_holds clbits op.Circuit.cond then
          match op.Circuit.kind with
          | Circuit.Gate (g, qs) -> apply st g qs
          | Circuit.Measure (q, cl) -> clbits.(cl) <- measure st q
          | Circuit.Reset q ->
            let one = measure st q in
            if one then apply st Gate.X [ q ]
          | Circuit.Barrier _ -> ())
      c.Circuit.ops;
    (st, clbits)
end

(* ------------------------------------------------------------------ *)
(* Workload: random circuits with mid-circuit and final measurements   *)

let measured_random ~seed ~gates n =
  let c = Generate.random ~seed ~parametric:true ~gates n in
  let split = gates / 2 in
  let pre = List.filteri (fun i _ -> i < split) c.Circuit.ops in
  let post = List.filteri (fun i _ -> i >= split) c.Circuit.ops in
  let mid = [ Circuit.measure 0 0; Circuit.reset (n - 1) ] in
  let finals = List.init n (fun q -> Circuit.measure q q) in
  { c with Circuit.num_clbits = n; ops = pre @ mid @ post @ finals }

let bits_of = Int64.bits_of_float

let clbits_key bits =
  String.concat "" (List.map (fun b -> if b then "1" else "0")
                      (Array.to_list bits))

(* Exact per-amplitude comparison: raw IEEE bit patterns, not a
   tolerance. Returns the first diverging index, if any. *)
let first_divergence n get_a get_b =
  let rec go i =
    if i >= 1 lsl n then None
    else
      let a = get_a i and b = get_b i in
      if
        bits_of a.Complex.re <> bits_of b.Complex.re
        || bits_of a.Complex.im <> bits_of b.Complex.im
      then Some i
      else go (i + 1)
  in
  go 0

let with_local_bits lb f =
  let saved = Statevector.max_local_bits () in
  Statevector.set_max_local_bits lb;
  Fun.protect ~finally:(fun () -> Statevector.set_max_local_bits saved) f

(* ------------------------------------------------------------------ *)
(* QCheck: Bigarray Reference vs the float-array oracle                *)

let check_against_oracle ~lb (seed, n) =
  let c = measured_random ~seed ~gates:(5 * n) n in
  (* amplitudes and classical bits of one run, bit for bit *)
  let st_o, cl_o = Oracle.run_circuit ~seed c in
  let st_b, cl_b =
    with_local_bits lb (fun () -> Statevector.Reference.run_circuit ~seed c)
  in
  (match
     first_divergence n (Oracle.amplitude st_o) (Statevector.amplitude st_b)
   with
  | Some i ->
    QCheck2.Test.fail_reportf
      "seed %d, %dq, lb %d: amplitude %d differs from the float-array \
       oracle"
      seed n lb i
  | None -> ());
  if cl_o <> cl_b then
    QCheck2.Test.fail_reportf "seed %d, %dq, lb %d: classical bits differ"
      seed n lb;
  (* shot histograms over reseeded runs *)
  let histogram run =
    let tbl = Hashtbl.create 8 in
    for shot = 0 to 5 do
      let _, cl = run ~seed:(seed + (shot * 7919)) c in
      let key = clbits_key cl in
      Hashtbl.replace tbl key
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
    done;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort compare
  in
  let h_o = histogram (fun ~seed c -> Oracle.run_circuit ~seed c) in
  let h_b =
    histogram (fun ~seed c ->
        with_local_bits lb (fun () ->
            Statevector.Reference.run_circuit ~seed c))
  in
  if h_o <> h_b then
    QCheck2.Test.fail_reportf "seed %d, %dq, lb %d: histograms differ" seed n
      lb;
  true

let prop_bigarray_vs_float_array =
  QCheck2.Test.make ~count:30
    ~name:"bigarray storage is bit-identical to float-array storage"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 2 14))
    (check_against_oracle ~lb:24)

let prop_bigarray_sharded_vs_float_array =
  QCheck2.Test.make ~count:20
    ~name:"sharded bigarray storage is bit-identical to float-array storage"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 4 10))
    (check_against_oracle ~lb:3)

(* ------------------------------------------------------------------ *)
(* Shard-exchange invariance across --local-bits settings              *)

(* The stride-aware exchange only reorders which Domain touches which
   amplitude pair; the per-pair arithmetic is the flat kernels'. So
   the final state may not move by an ulp as the shard size shrinks
   and more gates cross the shard boundary. *)
let invariance_engines =
  [
    ("specialized", fun ~seed c -> Statevector.run_circuit ~seed c);
    ("fused", fun ~seed c -> Fusion.run_circuit ~seed c);
  ]

let test_local_bits_invariance () =
  List.iter
    (fun (ename, run) ->
      List.iter
        (fun (seed, n, gates) ->
          let c = measured_random ~seed ~gates n in
          let flat, cl_flat = with_local_bits 24 (fun () -> run ~seed c) in
          List.iter
            (fun lb ->
              let sharded, cl_sh =
                with_local_bits lb (fun () -> run ~seed c)
              in
              (match
                 first_divergence n
                   (Statevector.amplitude flat)
                   (Statevector.amplitude sharded)
               with
              | Some i ->
                Alcotest.failf
                  "%s engine, seed %d, lb %d: amplitude %d differs from \
                   the flat run"
                  ename seed lb i
              | None -> ());
              check (Alcotest.array Alcotest.bool)
                (Printf.sprintf "%s engine, seed %d, lb %d: classical bits"
                   ename seed lb)
                cl_flat cl_sh)
            [ 7; 5; 3; 2 ])
        [ (3, 9, 80); (17, 8, 60) ])
    invariance_engines

let test_ghz_shard_permutation () =
  (* GHZ's CX ladder reaches the pure shard-permutation fast path
     (all involved bits at or above the boundary) at small lb. *)
  let c = Generate.ghz 10 in
  let flat, _ = with_local_bits 24 (fun () -> Statevector.run_circuit ~seed:5 c) in
  List.iter
    (fun lb ->
      let sharded, _ =
        with_local_bits lb (fun () -> Statevector.run_circuit ~seed:5 c)
      in
      match
        first_divergence 10
          (Statevector.amplitude flat)
          (Statevector.amplitude sharded)
      with
      | Some i ->
        Alcotest.failf "ghz, lb %d: amplitude %d differs from the flat run" lb
          i
      | None -> ())
    [ 6; 4; 2; 1 ]

let test_shard_slice_layout () =
  (* sanity: forcing lb below n really shards the register *)
  with_local_bits 3 (fun () ->
      let st = Statevector.create 6 in
      check int_t "shard count" 8 (Statevector.shard_count st);
      check int_t "local bits" 3 (Statevector.local_bits st))

let suite =
  [
    Alcotest.test_case "local-bits invariance (bit-identical)" `Quick
      test_local_bits_invariance;
    Alcotest.test_case "ghz shard-permutation fast path" `Quick
      test_ghz_shard_permutation;
    Alcotest.test_case "forced sharding layout" `Quick test_shard_slice_layout;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_bigarray_vs_float_array; prop_bigarray_sharded_vs_float_array ]
