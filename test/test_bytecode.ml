(* Tests for the bytecode engine: compile-once programs must be
   observably identical to the AST interpreter — same values, stats,
   fuel accounting, deadline behaviour and error strings — and the
   gate-tape fast path must fire exactly when the analyses prove the
   program static, with bit-identical histograms. *)

open Llvm_ir

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let value_to_string : Interp.value -> string = function
  | Interp.VInt (ty, n) -> Printf.sprintf "%s %Ld" (Ty.to_string ty) n
  | Interp.VFloat f -> Printf.sprintf "double %h" f
  | Interp.VPtr a -> Printf.sprintf "ptr 0x%Lx" a
  | Interp.VVoid -> "void"

let stats_to_string (s : Interp.stats) =
  Printf.sprintf "instr=%d ext=%d int=%d blocks=%d" s.Interp.instructions
    s.Interp.external_calls s.Interp.internal_calls s.Interp.blocks_entered

(* Runs [entry] under both engines and returns (result-or-error,
   stats) per engine, errors as strings so messages can be compared. *)
let both ?fuel ?deadline ?(externals = []) text entry =
  let outcome create run stats =
    let st = create () in
    let r =
      match run st with
      | v -> Printf.sprintf "ok: %s" (value_to_string v)
      | exception Ir_error.Exec_error msg -> Printf.sprintf "exec: %s" msg
      | exception Ir_error.Timeout_error msg ->
        Printf.sprintf "timeout: %s" msg
      | exception Invalid_argument msg -> Printf.sprintf "invalid: %s" msg
    in
    (r, stats_to_string (stats st))
  in
  let m = Parser.parse_module text in
  let a =
    outcome
      (fun () -> Interp.create ?fuel ?deadline ~externals m)
      (fun st -> Interp.run_function st entry [])
      Interp.stats
  in
  let prog = Bytecode.compile m in
  let b =
    outcome
      (fun () -> Bc_exec.create ?fuel ?deadline ~externals prog)
      (fun st -> Bc_exec.run_function st entry [])
      Bc_exec.stats
  in
  (a, b)

let check_parity ?fuel ?deadline ?externals ~name text entry =
  let (ra, sa), (rb, sb) = both ?fuel ?deadline ?externals text entry in
  check string_t (name ^ ": result") ra rb;
  check string_t (name ^ ": stats") sa sb;
  (ra, sa)

(* ------------------------------------------------------------------ *)
(* Fixtures                                                             *)

(* Parallel phi moves: the classic swap loop — naive in-order phi
   assignment computes (b, b) instead of (b, a). *)
let phi_swap_qir =
  {|
define i64 @main() {
entry:
  br label %loop

loop:
  %a = phi i64 [ 1, %entry ], [ %b, %loop ]
  %b = phi i64 [ 2, %entry ], [ %a, %loop ]
  %i = phi i64 [ 0, %entry ], [ %i1, %loop ]
  %i1 = add i64 %i, 1
  %done = icmp eq i64 %i1, 5
  br i1 %done, label %exit, label %loop

exit:
  %r = mul i64 %a, 10
  %s = add i64 %r, %b
  ret i64 %s
}
|}

(* select / switch / gep / load / store in one program. *)
let classical_mix_qir =
  {|
define i64 @main() {
entry:
  %buf = alloca [4 x i64], align 8
  %p0 = getelementptr [4 x i64], ptr %buf, i64 0, i64 0
  store i64 11, ptr %p0, align 8
  %p2 = getelementptr [4 x i64], ptr %buf, i64 0, i64 2
  store i64 22, ptr %p2, align 8
  %v = load i64, ptr %p2, align 8
  %c = icmp sgt i64 %v, 11
  %sel = select i1 %c, i64 2, i64 0
  switch i64 %sel, label %other [
    i64 0, label %zero
    i64 2, label %two
  ]

zero:
  ret i64 -1

two:
  %w = load i64, ptr %p0, align 8
  %s = add i64 %w, %v
  ret i64 %s

other:
  ret i64 -2
}
|}

(* A tight arithmetic loop with an internal call: enough instructions
   that fuel boundaries land everywhere interesting. *)
let loop_qir =
  {|
define i64 @double(i64 %x) {
entry:
  %r = add i64 %x, %x
  ret i64 %r
}

define i64 @main() {
entry:
  br label %loop

loop:
  %i = phi i64 [ 0, %entry ], [ %i1, %loop ]
  %acc = phi i64 [ 0, %entry ], [ %acc1, %loop ]
  %d = call i64 @double(i64 %i)
  %acc1 = add i64 %acc, %d
  %i1 = add i64 %i, 1
  %done = icmp eq i64 %i1, 10
  br i1 %done, label %exit, label %loop

exit:
  ret i64 %acc
}
|}

let div_by_zero_qir =
  {|
define i64 @main() {
entry:
  %z = sub i64 1, 1
  %d = sdiv i64 7, %z
  ret i64 %d
}
|}

let missing_external_qir =
  {|
declare void @mystery(i64)

define void @main() {
entry:
  call void @mystery(i64 3)
  ret void
}
|}

(* ------------------------------------------------------------------ *)
(* Engine parity                                                        *)

let test_phi_swap () =
  let r, _ = check_parity ~name:"phi swap" phi_swap_qir "main" in
  (* after 5 iterations the pair has swapped back to a=1, b=2 *)
  check string_t "value" "ok: i64 12" r

let test_classical_mix () =
  let r, _ = check_parity ~name:"mix" classical_mix_qir "main" in
  check string_t "value" "ok: i64 33" r

let test_loop () =
  let r, _ = check_parity ~name:"loop" loop_qir "main" in
  (* exit returns the phi's value on the final iteration: 2*(0+..+8) *)
  check string_t "value" "ok: i64 72" r

let test_div_by_zero () =
  let r, _ = check_parity ~name:"sdiv 0" div_by_zero_qir "main" in
  check bool_t "is exec error" true
    (String.length r >= 5 && String.sub r 0 5 = "exec:")

let test_missing_external () =
  let r, _ = check_parity ~name:"missing ext" missing_external_qir "main" in
  check string_t "error" "exec: call to external function @mystery with no \
                          implementation" r

let test_missing_function () =
  let (ra, _), (rb, _) = both loop_qir "nope" in
  check string_t "missing function" ra rb

(* Every fuel value from 0 to past completion: the two engines must
   either both succeed or both fail with the identical message. *)
let test_fuel_boundary () =
  for fuel = 0 to 90 do
    let name = Printf.sprintf "fuel=%d" fuel in
    ignore (check_parity ~fuel ~name loop_qir "main")
  done

(* A deterministic counting deadline (polled every 128 instructions)
   must trip at the identical instruction in both engines. *)
let test_deadline_parity () =
  let deep =
    {|
define i64 @main() {
entry:
  br label %loop

loop:
  %i = phi i64 [ 0, %entry ], [ %i1, %loop ]
  %i1 = add i64 %i, 1
  %done = icmp eq i64 %i1, 100000
  br i1 %done, label %exit, label %loop

exit:
  ret i64 %i1
}
|}
  in
  let make_deadline () =
    let polls = ref 0 in
    fun () ->
      incr polls;
      !polls > 2
  in
  let m = Parser.parse_module deep in
  let run_a () =
    let st = Interp.create ~deadline:(make_deadline ()) m in
    match Interp.run_function st "main" [] with
    | _ -> "no timeout"
    | exception Ir_error.Timeout_error msg -> msg
  in
  let run_b () =
    let prog = Bytecode.compile m in
    let st = Bc_exec.create ~deadline:(make_deadline ()) prog in
    match Bc_exec.run_function st "main" [] with
    | _ -> "no timeout"
    | exception Ir_error.Timeout_error msg -> msg
  in
  let a = run_a () and b = run_b () in
  check bool_t "timed out" true (a <> "no timeout");
  check string_t "same timeout point" a b

(* Differential property: random circuits through the full QIR path
   produce identical outputs, results and stats under both engines. *)
let prop_engine_differential =
  QCheck2.Test.make ~count:40 ~name:"bytecode engine matches ast engine"
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 2 5))
    (fun (seed, n) ->
      let c = Qcircuit.Generate.random ~seed ~gates:30 n in
      let addressing = if seed mod 2 = 0 then `Static else `Dynamic in
      let m = Qir.Qir_builder.build ~addressing c in
      let ra = Qruntime.Executor.run ~seed ~engine:`Ast m in
      let rb = Qruntime.Executor.run ~seed ~engine:`Bytecode m in
      ra.Qruntime.Executor.output = rb.Qruntime.Executor.output
      && ra.Qruntime.Executor.results = rb.Qruntime.Executor.results
      && stats_to_string ra.Qruntime.Executor.interp_stats
         = stats_to_string rb.Qruntime.Executor.interp_stats)

(* ------------------------------------------------------------------ *)
(* Compile-once cache                                                   *)

let test_compile_cache () =
  let m = Parser.parse_module loop_qir in
  let p1, _, hit1 = Qruntime.Executor.compiled m in
  let p2, _, hit2 = Qruntime.Executor.compiled m in
  check bool_t "first is a miss" false hit1;
  check bool_t "second is a hit" true hit2;
  check bool_t "same program" true (p1 == p2);
  (* a different parse of the same text is a different module *)
  let m' = Parser.parse_module loop_qir in
  let _, _, hit3 = Qruntime.Executor.compiled m' in
  check bool_t "reparse is a miss" false hit3

(* ------------------------------------------------------------------ *)
(* Gate tape                                                            *)

let static_circuit_qir =
  {|
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__cnot__body(ptr, ptr)
declare void @__quantum__qis__reset__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare void @__quantum__rt__result_record_output(ptr, ptr)

define void @main() "entry_point" "required_num_qubits"="2" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__cnot__body(ptr null, ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__reset__body(ptr null)
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  call void @__quantum__qis__mz__body(ptr inttoptr (i64 1 to ptr), ptr inttoptr (i64 1 to ptr))
  call void @__quantum__rt__result_record_output(ptr null, ptr null)
  call void @__quantum__rt__result_record_output(ptr inttoptr (i64 1 to ptr), ptr null)
  ret void
}
|}

let branching_qir =
  {|
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__rt__read_result(ptr)

define void @main() "entry_point" "required_num_qubits"="1" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__rt__read_result(ptr null)
  br i1 %r, label %one, label %zero

one:
  ret void

zero:
  ret void
}
|}

(* Address computed through arithmetic: syntactically dynamic, proved
   static by Const_addr. The reset keeps the batched sampler out, so
   the tape tier is the one that must handle it. *)
let computed_addr_qir =
  {|
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__reset__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)

define void @main() "entry_point" "required_num_qubits"="2" {
entry:
  %i = add i64 0, 1
  %q = inttoptr i64 %i to ptr
  call void @__quantum__qis__reset__body(ptr %q)
  call void @__quantum__qis__h__body(ptr %q)
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  ret void
}
|}

let test_tape_extracts_static () =
  let m = Parser.parse_module static_circuit_qir in
  match Qruntime.Gate_tape.extract m with
  | None -> Alcotest.fail "expected a tape for the static circuit"
  | Some tape ->
    check int_t "ops" 8 (Qruntime.Gate_tape.length tape);
    check int_t "records" 2 tape.Qruntime.Gate_tape.records

let test_tape_rejects_branching () =
  let m = Parser.parse_module branching_qir in
  check bool_t "no tape" true (Qruntime.Gate_tape.extract m = None)

let test_tape_rejects_defined_callee () =
  let m = Parser.parse_module loop_qir in
  check bool_t "no tape" true (Qruntime.Gate_tape.extract m = None)

let test_tape_proved_address () =
  let m = Parser.parse_module computed_addr_qir in
  check bool_t "computed address still tapes" true
    (Qruntime.Gate_tape.extract m <> None)

(* The tape's histogram must equal forced per-shot interpretation. *)
let tape_matches_from text =
  let m = Parser.parse_module text in
  let auto =
    Qruntime.Executor.run_shots_resilient ~seed:9 ~shots:60 ~engine:`Auto m
  in
  check bool_t "tape fired" true auto.Qruntime.Executor.tape;
  let ast =
    Qruntime.Executor.run_shots_resilient ~seed:9 ~shots:60 ~batch:false
      ~engine:`Ast m
  in
  check bool_t "ast ran per shot" false ast.Qruntime.Executor.tape;
  Alcotest.(check (list (pair string int)))
    "identical histogram" ast.Qruntime.Executor.histogram
    auto.Qruntime.Executor.histogram

let test_tape_histogram_matches () = tape_matches_from static_circuit_qir
let test_tape_histogram_computed () = tape_matches_from computed_addr_qir

(* The eligibility verdict is cached by module identity: the second run
   reports zero analysis time, and a reparse pays it again. *)
let test_tape_verdict_cache () =
  let m = Parser.parse_module static_circuit_qir in
  let run m =
    Qruntime.Executor.run_shots_resilient ~seed:5 ~shots:3 ~engine:`Auto m
  in
  let r1 = run m in
  check bool_t "tape fired" true r1.Qruntime.Executor.tape;
  check bool_t "first run pays the analysis" true
    (r1.Qruntime.Executor.analysis_s > 0.);
  let r2 = run m in
  check bool_t "tape still fires" true r2.Qruntime.Executor.tape;
  Alcotest.(check (float 0.))
    "cached verdict is free" 0. r2.Qruntime.Executor.analysis_s;
  let r3 = run (Parser.parse_module static_circuit_qir) in
  check bool_t "reparse re-analyzes" true
    (r3.Qruntime.Executor.analysis_s > 0.)

let suite =
  [
    Alcotest.test_case "parity: phi swap" `Quick test_phi_swap;
    Alcotest.test_case "parity: select/switch/gep" `Quick test_classical_mix;
    Alcotest.test_case "parity: loop with calls" `Quick test_loop;
    Alcotest.test_case "parity: division by zero" `Quick test_div_by_zero;
    Alcotest.test_case "parity: missing external" `Quick
      test_missing_external;
    Alcotest.test_case "parity: missing function" `Quick
      test_missing_function;
    Alcotest.test_case "parity: every fuel boundary" `Quick
      test_fuel_boundary;
    Alcotest.test_case "parity: deadline instruction" `Quick
      test_deadline_parity;
    Alcotest.test_case "cache: compile once per module" `Quick
      test_compile_cache;
    Alcotest.test_case "tape: extracts static circuit" `Quick
      test_tape_extracts_static;
    Alcotest.test_case "tape: rejects branching" `Quick
      test_tape_rejects_branching;
    Alcotest.test_case "tape: rejects defined callees" `Quick
      test_tape_rejects_defined_callee;
    Alcotest.test_case "tape: proved computed address" `Quick
      test_tape_proved_address;
    Alcotest.test_case "tape: histogram equals per-shot" `Quick
      test_tape_histogram_matches;
    Alcotest.test_case "tape: computed-address histogram" `Quick
      test_tape_histogram_computed;
    Alcotest.test_case "tape: verdict cached per module" `Quick
      test_tape_verdict_cache;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_engine_differential ]
