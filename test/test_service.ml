(* Tests for the multi-tenant execution service (lib/service): the
   stride scheduler's weighted fairness, admission control against the
   memory budget, per-tenant circuit breakers, deadline handling
   (queue-expiry shedding and mid-run partial results), the graceful
   degradation ladder, cache-coldest-first load shedding — and the
   central correctness property: a chunked, degraded service run merges
   into a histogram *bit-identical* to one direct Executor call at the
   same tier cap, because chunk [lo, hi) runs with seed + lo*7919, the
   executor's own per-shot seeding formula. *)

open Qcircuit
open Qir
open Qruntime
open Qservice

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string
let hist_t = Alcotest.(list (pair string int))

let bell () = Qir_builder.build (Generate.bell ())
let ghz n = Qir_builder.build (Generate.ghz n)

(* An entry point that never terminates, for deterministic deadline
   tests (as in test_resilience.ml). *)
let spin_src =
  "define void @main() \"entry_point\" {\nentry:\n  br label %l\nl:\n  br \
   label %l\n}"

(* A module whose declared register (28 qubits = a 4 GiB statevector)
   dwarfs any test budget without ever being executed. *)
let big_src =
  "define void @main() #0 {\nentry:\n  ret void\n}\nattributes #0 = { \
   \"entry_point\" \"required_num_qubits\"=\"28\" }"

let parse src = Llvm_ir.Parser.parse_module src

let faulty_gate =
  `Faulty { Qsim.Faulty.default with Qsim.Faulty.gate_rate = 1.0 }

(* A service wired to an event recorder; tests never sleep out backoff. *)
let recording ?(config = Service.default_config) () =
  let events = ref [] in
  let svc =
    Service.create
      ~config:{ config with Service.sleep = false }
      ~emit:(fun ev -> events := ev :: !events)
      ()
  in
  (svc, fun () -> List.rev !events)

let results events =
  List.filter_map
    (function
      | Service.Result { tenant; result; tier; _ } ->
        Some (tenant, result, tier)
      | _ -> None)
    events

let rejections events =
  List.filter_map
    (function
      | Service.Rejected { id; error; shed; _ } -> Some (id, error, shed)
      | _ -> None)
    events

(* ------------------------------------------------------------------ *)
(* Jsonx                                                                *)

let test_jsonx_roundtrip () =
  let v =
    Jsonx.Obj
      [
        ("op", Jsonx.Str "submit");
        ("shots", Jsonx.Num 100.);
        ("nested", Jsonx.Arr [ Jsonx.Bool true; Jsonx.Null; Jsonx.Num 2.5 ]);
        ("esc", Jsonx.Str "line\n\"quote\"\tunicode \xc3\xa9");
      ]
  in
  match Jsonx.parse (Jsonx.to_string v) with
  | Error e -> Alcotest.fail ("round-trip failed: " ^ e)
  | Ok v' ->
    check bool_t "round-trips" true (v = v');
    check (Alcotest.option int_t) "int accessor" (Some 100)
      (Jsonx.mem_int "shots" v')

let test_jsonx_rejects_garbage () =
  let bad s =
    match Jsonx.parse s with Ok _ -> false | Error _ -> true
  in
  check bool_t "trailing garbage" true (bad "{\"a\": 1} x");
  check bool_t "unterminated string" true (bad "\"abc");
  check bool_t "bare word" true (bad "flse");
  check bool_t "unicode escape parses" true
    (Jsonx.parse "\"\\u00e9\"" = Ok (Jsonx.Str "\xc3\xa9"))

(* ------------------------------------------------------------------ *)
(* Scheduler                                                            *)

let test_scheduler_weighted_fairness () =
  let s = Scheduler.create () in
  for i = 1 to 12 do
    ignore (Scheduler.push s ~tenant:"heavy" ~weight:2 i);
    ignore (Scheduler.push s ~tenant:"light" ~weight:1 i)
  done;
  for _ = 1 to 9 do
    ignore (Scheduler.pop s)
  done;
  (* stride scheduling: over 9 pops, weight 2 gets exactly 2/3 *)
  check int_t "heavy served 6 of 9" 6 (Scheduler.served_of s "heavy");
  check int_t "light served 3 of 9" 3 (Scheduler.served_of s "light");
  check int_t "queue accounting" 15 (Scheduler.length s)

let test_scheduler_idle_rejoin () =
  let s = Scheduler.create () in
  for i = 1 to 4 do
    ignore (Scheduler.push s ~tenant:"a" ~weight:1 i)
  done;
  for _ = 1 to 4 do
    ignore (Scheduler.pop s)
  done;
  (* b was idle the whole time; on rejoin it must not replay the idle
     period as credit and starve a *)
  for i = 1 to 2 do
    ignore (Scheduler.push s ~tenant:"b" ~weight:1 i);
    ignore (Scheduler.push s ~tenant:"a" ~weight:1 (10 + i))
  done;
  let order =
    List.init 4 (fun _ ->
        match Scheduler.pop s with Some (t, _) -> t | None -> "?")
  in
  check
    Alcotest.(list string_t)
    "fair alternation after rejoin" [ "b"; "a"; "b"; "a" ] order

(* Cost-weighted strides: at equal weight, fair shares are of served
   *cost*, not job count — a tenant of cost-3 jobs clears a hundred of
   them in the time a tenant of cost-300 jobs clears one. *)
let test_scheduler_cost_weighted_fairness () =
  let s = Scheduler.create () in
  for i = 1 to 200 do
    ignore (Scheduler.push s ~cost:3.0 ~tenant:"cheap" ~weight:1 i)
  done;
  for i = 1 to 10 do
    ignore (Scheduler.push s ~cost:300.0 ~tenant:"pricey" ~weight:1 i)
  done;
  for _ = 1 to 101 do
    ignore (Scheduler.pop s)
  done;
  check int_t "cheap cleared 100 jobs" 100 (Scheduler.served_of s "cheap");
  check int_t "pricey cleared 1 job" 1 (Scheduler.served_of s "pricey");
  (* ...and the *cost* each received is balanced to within one stride *)
  check bool_t "served cost balanced" true
    (Float.abs
       (Scheduler.served_cost_of s "cheap"
       -. Scheduler.served_cost_of s "pricey")
    <= 300.0)

(* Weight still scales the cost share: weight 2 earns twice the served
   cost of weight 1 over any backlogged window. *)
let test_scheduler_cost_respects_weights () =
  let s = Scheduler.create () in
  for i = 1 to 30 do
    ignore (Scheduler.push s ~cost:10.0 ~tenant:"heavy" ~weight:2 i);
    ignore (Scheduler.push s ~cost:10.0 ~tenant:"light" ~weight:1 i)
  done;
  for _ = 1 to 9 do
    ignore (Scheduler.pop s)
  done;
  check int_t "heavy got 2/3 of equal-cost pops" 6
    (Scheduler.served_of s "heavy");
  check bool_t "served cost ratio is 2:1" true
    (Scheduler.served_cost_of s "heavy"
    = 2.0 *. Scheduler.served_cost_of s "light")

(* An idle tenant rejoining under cost strides joins at the current
   virtual time — it cannot replay its idle period as credit even when
   the busy tenant has been charged heavy costs meanwhile. *)
let test_scheduler_cost_idle_rejoin () =
  let s = Scheduler.create () in
  ignore (Scheduler.push s ~cost:10.0 ~tenant:"b" ~weight:1 0);
  for i = 1 to 20 do
    ignore (Scheduler.push s ~cost:10.0 ~tenant:"a" ~weight:1 i)
  done;
  (* b clears its one job and goes idle; a keeps being served *)
  for _ = 1 to 15 do
    ignore (Scheduler.pop s)
  done;
  for i = 1 to 3 do
    ignore (Scheduler.push s ~cost:10.0 ~tenant:"b" ~weight:1 (100 + i))
  done;
  let order =
    List.init 6 (fun _ ->
        match Scheduler.pop s with Some (t, _) -> t | None -> "?")
  in
  check string_t "rejoiner is served promptly" "b" (List.hd order);
  check int_t "fair half of the window, no replayed credit" 3
    (List.length (List.filter (( = ) "b") order))

let test_scheduler_drop_last () =
  let s = Scheduler.create () in
  ignore (Scheduler.push s ~tenant:"a" ~weight:1 "a1");
  ignore (Scheduler.push s ~tenant:"a" ~weight:1 "a2");
  ignore (Scheduler.push s ~tenant:"b" ~weight:1 "b1");
  check
    Alcotest.(option string_t)
    "newest overall" (Some "b1")
    (Scheduler.drop_last s (fun _ -> true));
  check
    Alcotest.(option string_t)
    "newest matching" (Some "a2")
    (Scheduler.drop_last s (fun j -> j.[0] = 'a'));
  check int_t "two dropped" 1 (Scheduler.length s)

(* Shedding under cost strides: a dropped job's cost is never charged —
   only cleared jobs advance a tenant's pass and served cost, so the
   survivors rejoin the stride sequence exactly where they left it. *)
let test_scheduler_drop_last_cost () =
  let s = Scheduler.create () in
  ignore (Scheduler.push s ~cost:5.0 ~tenant:"a" ~weight:1 "a1");
  ignore (Scheduler.push s ~cost:500.0 ~tenant:"a" ~weight:1 "a2");
  ignore (Scheduler.push s ~cost:5.0 ~tenant:"b" ~weight:1 "b1");
  check
    Alcotest.(option string_t)
    "newest matching a job shed" (Some "a2")
    (Scheduler.drop_last s (fun j -> j.[0] = 'a'));
  let order =
    List.init 2 (fun _ ->
        match Scheduler.pop s with
        | Some (t, j) -> t ^ ":" ^ j
        | None -> "?")
  in
  check
    Alcotest.(list string_t)
    "stride order unaffected by the shed cost" [ "a:a1"; "b:b1" ] order;
  check bool_t "served cost excludes the shed job" true
    (Scheduler.served_cost_of s "a" = 5.0)

(* ------------------------------------------------------------------ *)
(* Breaker                                                              *)

let busy_wait seconds =
  let until = Resilience.Deadline.now () +. seconds in
  while Resilience.Deadline.now () < until do
    ignore (Sys.opaque_identity ())
  done

let test_breaker_lifecycle () =
  let b = Breaker.create ~threshold:2 ~cooldown:0.02 () in
  check bool_t "admits when closed" true (Breaker.admit b);
  Breaker.record_failure b;
  check bool_t "below threshold still admits" true (Breaker.admit b);
  Breaker.record_failure b;
  check bool_t "tripped open" false (Breaker.admit b);
  check int_t "one trip" 1 (Breaker.trips b);
  busy_wait 0.025;
  check string_t "half-open after cooldown" "half-open" (Breaker.state_name b);
  check bool_t "half-open admits a probe" true (Breaker.admit b);
  Breaker.record_failure b;
  check bool_t "failed probe re-opens" false (Breaker.admit b);
  check int_t "second trip" 2 (Breaker.trips b);
  busy_wait 0.025;
  Breaker.record_success b;
  check string_t "success closes" "closed" (Breaker.state_name b)

(* ------------------------------------------------------------------ *)
(* Admission                                                            *)

let test_admission_memory_budget () =
  let m = parse big_src in
  check int_t "declared qubits" 28 (Admission.required_qubits m);
  (match Admission.check ~budget:(1 lsl 30) ~backend:`Statevector m with
  | Ok _ -> Alcotest.fail "4 GiB statevector admitted under a 1 GiB budget"
  | Error e ->
    check int_t "overload exit code" Qir_error.exit_overload
      (Qir_error.exit_code e));
  (* the tableau footprint for the same register is a few hundred bytes *)
  check bool_t "stabilizer backend fits easily" true
    (Result.is_ok (Admission.check ~budget:(1 lsl 20) ~backend:`Stabilizer m));
  check bool_t "small statevector fits" true
    (Result.is_ok (Admission.check ~budget:1024 ~backend:`Statevector (bell ())))

(* Satellite fix: a proof that shows a higher peak than the declaration
   must win — admission charges max(declared, proven) and surfaces the
   discrepancy as a QR003 note. *)
let underdeclared_src =
  "%Qubit = type opaque\n\
   declare void @__quantum__qis__h__body(%Qubit*)\n\
   define void @main() #0 {\n\
   entry:\n\
  \  call void @__quantum__qis__h__body(%Qubit* inttoptr (i64 2 to %Qubit*))\n\
  \  ret void\n\
   }\n\
   attributes #0 = { \"entry_point\" \"required_num_qubits\"=\"1\" }"

let test_admission_proof_beats_declaration () =
  let m = parse underdeclared_src in
  let cert = Qir_analysis.Resource.certify m in
  let v = Admission.evaluate ~cert ~backend:`Statevector m in
  check int_t "charged the proven peak, not the declared 1" 3
    v.Admission.v_qubits;
  (match v.Admission.v_qr003 with
  | Some note ->
    check bool_t "note names QR003" true
      (String.length note >= 5 && String.sub note 0 5 = "QR003")
  | None -> Alcotest.fail "expected a QR003 note");
  (* the service surfaces the note on the Accepted event *)
  let svc, events = recording () in
  Service.submit svc ~tenant:"t" ~shots:2 m;
  let note =
    List.find_map
      (function Service.Accepted { note; _ } -> note | _ -> None)
      (events ())
  in
  check bool_t "Accepted event carries the QR003 note" true (note <> None)

(* A module whose *lower* bound is proven huge: a gate on static qubit
   index 27 forces a 28-qubit register on every path, so admission can
   reject before anything is compiled. *)
let provably_big_src =
  "%Qubit = type opaque\n\
   declare void @__quantum__qis__h__body(%Qubit*)\n\
   define void @main() #0 {\n\
   entry:\n\
  \  call void @__quantum__qis__h__body(%Qubit* inttoptr (i64 27 to \
   %Qubit*))\n\
  \  ret void\n\
   }\n\
   attributes #0 = { \"entry_point\" \"required_num_qubits\"=\"0\" }"

let test_admission_lower_bound_rejects_before_compile () =
  let m = parse provably_big_src in
  let cert = Qir_analysis.Resource.certify m in
  check int_t "proven lower bound" 28 (Qir_analysis.Resource.qubits_lower cert);
  match Admission.check ~cert ~budget:(1 lsl 30) ~backend:`Statevector m with
  | Ok _ -> Alcotest.fail "proven 4 GiB lower bound admitted under 1 GiB"
  | Error e ->
    check int_t "exit 8" Qir_error.exit_overload (Qir_error.exit_code e);
    check bool_t "rejection happened before compile" true
      (let msg = e.Qir_error.message in
       let needle = "before compile" in
       let n = String.length needle and l = String.length msg in
       let rec scan i =
         i + n <= l && (String.sub msg i n = needle || scan (i + 1))
       in
       scan 0)

(* Per-tenant accounting: two 4 GiB jobs fit a 5 GiB budget one at a
   time, but not together in flight. *)
let test_admission_tenant_inflight_accounting () =
  let svc, events =
    recording
      ~config:{ Service.default_config with Service.mem_budget = 5 * (1 lsl 30) }
      ()
  in
  let m = parse big_src in
  Service.submit svc ~tenant:"greedy" ~id:"first" ~shots:1 m;
  Service.submit svc ~tenant:"greedy" ~id:"second" ~shots:1 m;
  (* no drain: the 28-qubit jobs must never actually execute *)
  check int_t "first accepted" 1 (Service.stats svc).Service.accepted;
  (match rejections (events ()) with
  | [ (id, e, shed) ] ->
    check string_t "second rejected" "second" id;
    check bool_t "not a shed" false shed;
    check int_t "exit 8" Qir_error.exit_overload (Qir_error.exit_code e)
  | evs -> Alcotest.failf "expected one rejection, saw %d" (List.length evs));
  check bool_t "in-flight bytes charged" true
    (Service.inflight_bytes svc "greedy" >= 1 lsl 32)

let test_service_rejects_at_admission () =
  let svc, events =
    recording
      ~config:{ Service.default_config with Service.mem_budget = 1 lsl 20 }
      ()
  in
  Service.submit svc ~tenant:"alice" ~shots:10 (parse big_src);
  Service.drain svc;
  match rejections (events ()) with
  | [ (_, e, shed) ] ->
    check int_t "exit 8" Qir_error.exit_overload (Qir_error.exit_code e);
    check bool_t "not a shed" false shed;
    check int_t "nothing ran" 0 (Service.stats svc).Service.completed
  | evs -> Alcotest.failf "expected one rejection, saw %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* Fair scheduling under contention                                     *)

let test_service_fairness_under_contention () =
  let svc, events =
    recording
      ~config:
        {
          Service.default_config with
          Service.tenant_weights = [ ("heavy", 2); ("light", 1) ];
        }
      ()
  in
  let m = bell () in
  for _ = 1 to 9 do
    Service.submit svc ~tenant:"heavy" ~shots:4 m;
    Service.submit svc ~tenant:"light" ~shots:4 m
  done;
  Service.drain svc;
  let order = List.map (fun (t, _, _) -> t) (results (events ())) in
  check int_t "all jobs completed" 18 (List.length order);
  let first9 = List.filteri (fun i _ -> i < 9) order in
  check int_t "heavy got 2/3 of the first nine slots" 6
    (List.length (List.filter (( = ) "heavy") first9));
  check int_t "heavy vs light served" 9 (Service.served_of svc "heavy")

(* Heterogeneous certified costs at equal weight: the cheap tenant's
   1-shot jobs clear while a single 50-shot job of the same circuit is
   charged 50x the stride, so cost-fair WFQ drains the cheap backlog
   early. [cost_fair = false] restores job-count alternation. *)
let test_service_cost_fair_scheduling () =
  let m = bell () in
  let run cost_fair =
    let svc, events =
      recording
        ~config:{ Service.default_config with Service.cost_fair }
        ()
    in
    for _ = 1 to 6 do
      Service.submit svc ~tenant:"cheap" ~shots:1 m;
      Service.submit svc ~tenant:"pricey" ~shots:50 m
    done;
    Service.drain svc;
    (svc, List.map (fun (t, _, _) -> t) (results (events ())))
  in
  let svc, order = run true in
  check int_t "all completed" 12 (List.length order);
  let first7 = List.filteri (fun i _ -> i < 7) order in
  check int_t "cost-fair: cheap backlog drains while one pricey job runs" 6
    (List.length (List.filter (( = ) "cheap") first7));
  check bool_t "pricey was charged more served cost" true
    (Service.served_cost_of svc "pricey" > Service.served_cost_of svc "cheap");
  let _, order2 = run false in
  let first6 = List.filteri (fun i _ -> i < 6) order2 in
  check int_t "job-fair: strict alternation" 3
    (List.length (List.filter (( = ) "cheap") first6))

(* ------------------------------------------------------------------ *)
(* Circuit breaker at the service level                                 *)

let test_service_breaker_trips_and_recovers () =
  let svc, events =
    recording
      ~config:
        {
          Service.default_config with
          Service.retries = 0;
          breaker_threshold = 2;
          breaker_cooldown = 0.02;
        }
      ()
  in
  let m = bell () in
  (* two jobs against an always-faulting backend: both fail, tripping
     the tenant's breaker *)
  Service.submit svc ~tenant:"chaos" ~shots:3 ~backend:faulty_gate m;
  Service.drain svc;
  Service.submit svc ~tenant:"chaos" ~shots:3 ~backend:faulty_gate m;
  Service.drain svc;
  check string_t "breaker open" "open" (Service.breaker_state svc "chaos");
  (* fast rejection while open — the simulator is never touched *)
  Service.submit svc ~tenant:"chaos" ~shots:3 m;
  (match rejections (events ()) with
  | [ (_, e, _) ] ->
    check int_t "breaker rejection is exit 8" Qir_error.exit_overload
      (Qir_error.exit_code e)
  | evs -> Alcotest.failf "expected one rejection, saw %d" (List.length evs));
  let s = Service.stats svc in
  check int_t "two failures recorded" 2 s.Service.failed;
  check int_t "one trip recorded" 1 s.Service.breaker_trips;
  (* after the cooldown a half-open probe that succeeds closes it *)
  busy_wait 0.025;
  check string_t "half-open probe window" "half-open"
    (Service.breaker_state svc "chaos");
  Service.submit svc ~tenant:"chaos" ~shots:3 m;
  Service.drain svc;
  check string_t "success closes the breaker" "closed"
    (Service.breaker_state svc "chaos");
  check int_t "probe job completed" 1 (Service.stats svc).Service.completed

(* ------------------------------------------------------------------ *)
(* Deadlines                                                            *)

let test_service_sheds_queue_expired_jobs () =
  let svc, events = recording () in
  Service.submit svc ~tenant:"t" ~shots:10 ~timeout:0.0 (bell ());
  Service.drain svc;
  match rejections (events ()) with
  | [ (_, e, shed) ] ->
    check bool_t "shed, not plain rejection" true shed;
    check int_t "exit 8" Qir_error.exit_overload (Qir_error.exit_code e);
    check int_t "no simulator time spent" 0
      (Service.stats svc).Service.completed
  | evs -> Alcotest.failf "expected one shed, saw %d" (List.length evs)

let test_service_deadline_yields_partial_result () =
  let svc, events = recording () in
  Service.submit svc ~tenant:"t" ~shots:10 ~timeout:0.05 (parse spin_src);
  Service.drain svc;
  match results (events ()) with
  | [ (_, r, _) ] ->
    check bool_t "degraded partial result" true r.Executor.degraded;
    check int_t "requested preserved" 10 r.Executor.requested;
    check bool_t "not all shots completed" true (r.Executor.completed < 10);
    check int_t "still a success for the breaker" 0
      (Service.stats svc).Service.failed
  | evs -> Alcotest.failf "expected one result, saw %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* Histogram parity with direct Executor runs                           *)

(* Normal load: the batched fast path, exactly as a direct call. *)
let test_parity_batched () =
  let m = bell () in
  let svc, events = recording () in
  Service.submit svc ~tenant:"t" ~shots:97 ~seed:5 m;
  Service.drain svc;
  let direct =
    Executor.run_shots_resilient
      ~session:(Executor.Session.create ())
      ~seed:5 ~shots:97 m
  in
  match results (events ()) with
  | [ (_, r, tier) ] ->
    check string_t "ran batched" "batched" (Executor.tier_name tier);
    check hist_t "histogram identical to direct batched run"
      direct.Executor.histogram r.Executor.histogram
  | evs -> Alcotest.failf "expected one result, saw %d" (List.length evs)

(* Elevated load caps at the tape tier and chunks; the merged chunked
   histogram must equal one direct tape-capped call. *)
let test_parity_tape_chunked () =
  let m = bell () in
  let svc, events =
    recording
      ~config:
        {
          Service.default_config with
          Service.overload_depth = 1;
          chunk = 7;
        }
      ()
  in
  Service.submit svc ~tenant:"t" ~shots:23 ~seed:11 m;
  Service.submit svc ~tenant:"filler" ~shots:2 m;
  Service.drain svc;
  let direct =
    Executor.run_shots_resilient
      ~session:(Executor.Session.create ())
      ~seed:11 ~max_tier:`Tape ~shots:23 m
  in
  check bool_t "direct comparison run used the tape" true
    direct.Executor.tape;
  match results (events ()) with
  | (_, r, tier) :: _ ->
    check string_t "service capped at tape" "tape" (Executor.tier_name tier);
    check int_t "all shots completed" 23 r.Executor.completed;
    check hist_t "chunked tape merge identical to direct run"
      direct.Executor.histogram r.Executor.histogram
  | [] -> Alcotest.fail "expected results"

(* Critical load drops cold jobs to per-shot interpretation (and
   throttles the pool); parity must still be exact. *)
let test_parity_per_shot_critical () =
  let m = bell () in
  let svc, events =
    recording
      ~config:
        {
          Service.default_config with
          Service.overload_depth = 1;
          chunk = 5;
        }
      ()
  in
  Service.submit svc ~tenant:"t" ~shots:17 ~seed:3 m;
  Service.submit svc ~tenant:"f1" ~shots:2 m;
  Service.submit svc ~tenant:"f2" ~shots:2 m;
  Service.drain svc;
  check bool_t "throttle released after drain" false (Qsim.Dpool.throttled ());
  let direct =
    Executor.run_shots_resilient
      ~session:(Executor.Session.create ())
      ~seed:3 ~max_tier:`Per_shot ~shots:17 m
  in
  match results (events ()) with
  | (_, r, tier) :: _ ->
    check string_t "cold job dropped to per-shot" "per-shot"
      (Executor.tier_name tier);
    check hist_t "chunked per-shot merge identical to direct run"
      direct.Executor.histogram r.Executor.histogram;
    check bool_t "pool was throttled during the run" true
      ((Service.stats svc).Service.throttled_runs >= 1)
  | [] -> Alcotest.fail "expected results"

(* ------------------------------------------------------------------ *)
(* Load shedding prefers cache-cold jobs                                *)

let test_service_sheds_cache_coldest_first () =
  let hot = bell () in
  let cold1 = ghz 3 in
  let cold2 = ghz 4 in
  let cold3 = ghz 5 in
  let svc, events =
    recording
      ~config:{ Service.default_config with Service.max_queue = 2 }
      ()
  in
  (* warm the session's caches with [hot] *)
  Service.submit svc ~tenant:"t" ~id:"warmup" ~shots:4 hot;
  Service.drain svc;
  check bool_t "module is cache-hot" true
    (Executor.Session.is_cached (Service.session svc) hot);
  (* fill the queue with cold work, then offer a hot job *)
  Service.submit svc ~tenant:"t" ~id:"cold1" ~shots:4 cold1;
  Service.submit svc ~tenant:"t" ~id:"cold2" ~shots:4 cold2;
  Service.submit svc ~tenant:"t" ~id:"hot" ~shots:4 hot;
  (* the hot job displaced the newest cold job *)
  (match rejections (events ()) with
  | [ (id, _, shed) ] ->
    check string_t "newest cold job was shed" "cold2" id;
    check bool_t "marked as shed" true shed
  | evs -> Alcotest.failf "expected one shed, saw %d" (List.length evs));
  (* a cold newcomer against a full queue is rejected outright *)
  Service.submit svc ~tenant:"t" ~id:"cold3" ~shots:4 cold3;
  (match rejections (events ()) with
  | [ _; (id, e, shed) ] ->
    check string_t "cold newcomer rejected" "cold3" id;
    check bool_t "not shed (never accepted)" false shed;
    check int_t "exit 8" Qir_error.exit_overload (Qir_error.exit_code e)
  | evs -> Alcotest.failf "expected two rejections, saw %d" (List.length evs));
  Service.drain svc;
  let s = Service.stats svc in
  check int_t "one shed recorded" 1 s.Service.shed;
  check int_t "warmup + cold1 + hot completed" 3 s.Service.completed

(* ------------------------------------------------------------------ *)
(* Program interning                                                    *)

let test_intern_shares_modules_across_jobs () =
  let svc, events = recording () in
  let src = Llvm_ir.Printer.module_to_string (bell ()) in
  let m1 =
    match Service.intern svc ~source:src with
    | Ok m -> m
    | Error e -> Alcotest.fail (Qir_error.to_string e)
  in
  let m2 =
    match Service.intern svc ~source:src with
    | Ok m -> m
    | Error e -> Alcotest.fail (Qir_error.to_string e)
  in
  check bool_t "identical text interns to the same module" true (m1 == m2);
  Service.submit svc ~tenant:"a" ~shots:8 m1;
  Service.submit svc ~tenant:"b" ~shots:8 m2;
  Service.drain svc;
  check int_t "both ran" 2 (List.length (results (events ())));
  let c = (Service.stats svc).Service.cache in
  check bool_t "second job hit the session cache" true
    (c.Executor.Session.compile_hits >= 1);
  match Service.intern svc ~source:"not qir at all" with
  | Ok _ -> Alcotest.fail "garbage interned"
  | Error e ->
    check int_t "parse-kind taxonomy error" Qir_error.exit_parse
      (Qir_error.exit_code e)

(* N concurrent drain loops vs 1: the loops claim jobs from the shared
   stride scheduler in a nondeterministic order, but seeding is
   per-job, so every job's histogram must be bit-identical either
   way. The kernel pool is pinned to one domain so the executor
   Domains are the only concurrency under test. *)
let test_multi_executor_parity () =
  let saved_domains = Qsim.Dpool.domains () in
  Qsim.Dpool.set_domains 1;
  Fun.protect ~finally:(fun () -> Qsim.Dpool.set_domains saved_domains)
  @@ fun () ->
  let jobs =
    List.init 10 (fun i ->
        (Printf.sprintf "j%d" i, ghz (2 + (i mod 3)), 31 + i))
  in
  let run executors =
    let svc, events = recording () in
    List.iter
      (fun (id, m, seed) ->
        Service.submit svc ~tenant:"t" ~id ~shots:16 ~seed m)
      jobs;
    Service.drain_parallel ~executors svc;
    List.filter_map
      (function
        | Service.Result { id; result; _ } ->
          Some (id, result.Executor.histogram, result.Executor.completed)
        | _ -> None)
      (events ())
    |> List.sort compare
  in
  let single = run 1 in
  let multi = run 4 in
  check int_t "all jobs completed under 4 executors" (List.length jobs)
    (List.length multi);
  List.iter2
    (fun (ida, ha, ca) (idb, hb, cb) ->
      check string_t "same job order after sort" ida idb;
      check int_t (Printf.sprintf "job %s: completed shots" ida) ca cb;
      check hist_t (Printf.sprintf "job %s: histogram parity" ida) ha hb)
    single multi

let suite =
  [
    Alcotest.test_case "jsonx: round-trip" `Quick test_jsonx_roundtrip;
    Alcotest.test_case "jsonx: rejects garbage" `Quick
      test_jsonx_rejects_garbage;
    Alcotest.test_case "scheduler: weighted fairness" `Quick
      test_scheduler_weighted_fairness;
    Alcotest.test_case "scheduler: idle tenants rejoin fairly" `Quick
      test_scheduler_idle_rejoin;
    Alcotest.test_case "scheduler: drop_last picks the newest match" `Quick
      test_scheduler_drop_last;
    Alcotest.test_case "scheduler: cost-weighted fairness" `Quick
      test_scheduler_cost_weighted_fairness;
    Alcotest.test_case "scheduler: cost strides respect weights" `Quick
      test_scheduler_cost_respects_weights;
    Alcotest.test_case "scheduler: idle rejoin under cost strides" `Quick
      test_scheduler_cost_idle_rejoin;
    Alcotest.test_case "scheduler: drop_last never charges shed cost" `Quick
      test_scheduler_drop_last_cost;
    Alcotest.test_case "breaker: trip, half-open, reset" `Quick
      test_breaker_lifecycle;
    Alcotest.test_case "admission: memory budget" `Quick
      test_admission_memory_budget;
    Alcotest.test_case "admission: proof beats declaration (QR003)" `Quick
      test_admission_proof_beats_declaration;
    Alcotest.test_case "admission: lower bound rejects before compile" `Quick
      test_admission_lower_bound_rejects_before_compile;
    Alcotest.test_case "admission: per-tenant in-flight accounting" `Quick
      test_admission_tenant_inflight_accounting;
    Alcotest.test_case "service: rejects at admission with exit 8" `Quick
      test_service_rejects_at_admission;
    Alcotest.test_case "service: weighted fairness under contention" `Quick
      test_service_fairness_under_contention;
    Alcotest.test_case "service: cost-fair scheduling across tenants" `Quick
      test_service_cost_fair_scheduling;
    Alcotest.test_case "service: breaker trips and recovers" `Quick
      test_service_breaker_trips_and_recovers;
    Alcotest.test_case "service: sheds queue-expired jobs" `Quick
      test_service_sheds_queue_expired_jobs;
    Alcotest.test_case "service: deadline yields a partial result" `Quick
      test_service_deadline_yields_partial_result;
    Alcotest.test_case "service: batched parity with direct run" `Quick
      test_parity_batched;
    Alcotest.test_case "service: chunked tape parity with direct run" `Quick
      test_parity_tape_chunked;
    Alcotest.test_case "service: per-shot parity under critical load" `Quick
      test_parity_per_shot_critical;
    Alcotest.test_case "service: sheds cache-coldest first" `Quick
      test_service_sheds_cache_coldest_first;
    Alcotest.test_case "service: interning shares session caches" `Quick
      test_intern_shares_modules_across_jobs;
    Alcotest.test_case "service: multi-executor drain parity" `Quick
      test_multi_executor_parity;
  ]
