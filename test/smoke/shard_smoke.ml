(* Shard/cluster differential smoke: the Bigarray-backed storage
   layout, its sharding and the cluster-fusion pass must be observably
   invisible. 100 fuzzed circuits (random and feedback workloads,
   parametric and Clifford) execute per shot under seven engine
   configurations with identical seeds — specialized-flat,
   reference-flat, cluster-fused flat, cluster-fused sharded,
   specialized sharded, reference sharded (the two-level slice
   addressing of the oracle itself) and specialized sharded with
   checked accesses (every unsafe Bigarray index re-asserted against
   the slice bounds) — and every histogram must match bit for bit. A
   capstone case allocates a 28-qubit sharded register end to end
   (create, in-shard and cross-shard gates, measurement, teardown) and
   checks the ceiling itself rejects 31.

   Used by CI as the sharding gate:
     dune exec test/smoke/shard_smoke.exe *)

open Qcircuit
module Sv = Qsim.Statevector

let circuits = 100
let shots = 12
let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "shard-smoke: %s\n" msg)
    fmt

let with_measurements (c : Circuit.t) =
  let b =
    Circuit.Build.create ~num_qubits:c.Circuit.num_qubits
      ~num_clbits:c.Circuit.num_qubits ()
  in
  List.iter
    (fun (op : Circuit.op) ->
      match op.Circuit.kind with
      | Circuit.Gate (g, qs) -> Circuit.Build.gate b g qs
      | _ -> ())
    c.Circuit.ops;
  for q = 0 to c.Circuit.num_qubits - 1 do
    Circuit.Build.measure b q q
  done;
  Circuit.Build.finish b

let with_local_bits bits f =
  let b0 = Sv.max_local_bits () in
  Sv.set_max_local_bits bits;
  Fun.protect f ~finally:(fun () -> Sv.set_max_local_bits b0)

let with_checked_access f =
  let c0 = Sv.checked_access () in
  Sv.set_checked_access true;
  Fun.protect f ~finally:(fun () -> Sv.set_checked_access c0)

(* Per-shot histogram over clbit strings: works for every workload,
   including feedback circuits the batched sampler rejects, and
   consumes the RNG identically in every engine configuration. *)
let histogram (run : ?seed:int -> Circuit.t -> Sv.t * bool array) c seed =
  let tbl = Hashtbl.create 16 in
  for shot = 0 to shots - 1 do
    let _, clbits = run ~seed:(seed + shot) c in
    let key =
      String.init (Array.length clbits) (fun i ->
          if clbits.(i) then '1' else '0')
    in
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  done;
  List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [])

let hist_to_string h =
  String.concat ";" (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) h)

(* ------------------------------------------------------------------ *)
(* 1. fuzzed corpus under five engine configurations                     *)

let fuzzed_corpus () =
  for i = 0 to circuits - 1 do
    let seed = 6000 + (i * 100) in
    let n = 2 + (i mod 7) in
    let c =
      if i mod 9 = 0 then Generate.feedback_rounds ~rounds:(1 + (i mod 3)) n
      else
        with_measurements
          (Generate.random ~seed ~parametric:(i mod 2 = 0)
             ~two_qubit_fraction:0.35
             ~gates:(10 + (i mod 4 * 10))
             n)
    in
    let k = 2 + (i mod 5) in
    let lb = 2 + (i mod 3) in
    try
      let base = histogram Sv.run_circuit c seed in
      let checks =
        [
          ("reference-flat", histogram Sv.Reference.run_circuit c seed);
          ("clustered-flat", histogram (Qsim.Fusion.run_circuit ~k) c seed);
          ( "clustered-sharded",
            with_local_bits lb (fun () ->
                histogram (Qsim.Fusion.run_circuit ~k) c seed) );
          ( "specialized-sharded",
            with_local_bits lb (fun () -> histogram Sv.run_circuit c seed) );
          ( "reference-sharded",
            with_local_bits lb (fun () ->
                histogram Sv.Reference.run_circuit c seed) );
          ( "checked-sharded",
            with_checked_access (fun () ->
                with_local_bits lb (fun () ->
                    histogram Sv.run_circuit c seed)) );
        ]
      in
      List.iter
        (fun (name, h) ->
          if h <> base then
            fail "circuit %d (seed %d, k=%d, lb=%d): %s histogram %s <> %s" i
              seed k lb name (hist_to_string h) (hist_to_string base))
        checks
    with e ->
      fail "circuit %d (seed %d): raised %s" i seed (Printexc.to_string e)
  done

(* ------------------------------------------------------------------ *)
(* 2. the qubit ceiling: a 28-qubit register allocates, shards, takes   *)
(*    in-shard and cross-shard gates, measures and tears down            *)

let ceiling () =
  (try
     let st = Sv.create ~seed:9 28 in
     if Sv.shard_count st < 2 then
       fail "28-qubit register did not shard (local_bits %d)"
         (Sv.local_bits st);
     Sv.apply st Gate.H [ 0 ];
     Sv.apply st Gate.Cx [ 0; 27 ] (* cross-shard entangler *);
     let p = Sv.prob_one st 27 in
     if Float.abs (p -. 0.5) > 1e-9 then
       fail "28-qubit GHZ pair: prob_one(27) = %g, expected 0.5" p;
     let a = Sv.measure st 0 in
     let b = Sv.measure st 27 in
     if a <> b then fail "28-qubit GHZ pair measured unequal bits";
     ignore (Sys.opaque_identity st)
   with e -> fail "28-qubit check raised %s" (Printexc.to_string e));
  Gc.compact ();
  (* the cap itself: 31 qubits must be rejected at creation *)
  match Sv.create 31 with
  | _ -> fail "create 31 succeeded; expected rejection at max_qubits = 30"
  | exception Qsim.Sim_error.Error _ -> ()

let () =
  fuzzed_corpus ();
  ceiling ();
  Printf.printf
    "shard smoke: %d fuzzed circuits x %d shots x 7 configurations + \
     28-qubit ceiling, %d divergences\n"
    circuits shots !failures;
  if !failures > 0 then exit 1
