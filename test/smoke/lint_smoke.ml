(* Lint smoke: qir-lint must be quiet on code that is actually fine and
   loud on code that is actually broken.

   Three corpora:
   1. the checked-in examples (examples/*.ll, or the directory given as
      argv(1)) — no errors or warnings allowed (notes are fine);
   2. 100 generated circuits built as QIR in both addressing styles —
      builder output must produce zero findings;
   3. embedded seeded-bug fixtures — each must trigger its rule.

   Used by CI:  dune exec test/smoke/lint_smoke.exe *)

open Qcircuit

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "FAIL: %s\n" msg)
    fmt

let noisy ds =
  Qir_analysis.Diagnostic.errors ds + Qir_analysis.Diagnostic.warnings ds

let rules ds =
  List.map (fun (d : Qir_analysis.Diagnostic.t) -> d.Qir_analysis.Diagnostic.rule) ds

(* 1. checked-in examples ------------------------------------------- *)

let lint_examples dir =
  let files =
    try
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".ll")
      |> List.sort compare
    with Sys_error _ -> []
  in
  if files = [] then Printf.printf "examples: none found in %s (skipped)\n" dir
  else
    List.iter
      (fun f ->
        let path = Filename.concat dir f in
        let src = In_channel.with_open_text path In_channel.input_all in
        let m = Llvm_ir.Parser.parse_module ~source_name:path src in
        let ds = Qir_analysis.Lint.run m in
        if noisy ds > 0 then
          fail "%s: expected a clean lint, got %d error/warning finding(s)"
            path (noisy ds))
      files;
  Printf.printf "examples: %d file(s) linted\n" (List.length files)

(* 2. generated corpus ---------------------------------------------- *)

let with_measurements (c : Circuit.t) =
  let b =
    Circuit.Build.create ~num_qubits:c.Circuit.num_qubits
      ~num_clbits:c.Circuit.num_qubits ()
  in
  List.iter
    (fun (op : Circuit.op) ->
      match op.Circuit.kind with
      | Circuit.Gate (g, qs) -> Circuit.Build.gate b g qs
      | _ -> ())
    c.Circuit.ops;
  for q = 0 to c.Circuit.num_qubits - 1 do
    Circuit.Build.measure b q q
  done;
  Circuit.Build.finish b

let lint_corpus () =
  let count = 100 in
  for i = 0 to count - 1 do
    let seed = 4000 + i in
    let n = 2 + (i mod 5) in
    let c =
      with_measurements
        (Generate.random ~seed ~parametric:(i mod 2 = 0) ~gates:(8 + (i mod 3 * 8)) n)
    in
    List.iter
      (fun addressing ->
        let m = Qir.Qir_builder.build ~addressing c in
        let ds = Qir_analysis.Lint.run ~notes:false m in
        if ds <> [] then
          fail "generated circuit %d (%s): %d unexpected finding(s): %s" i
            (match addressing with `Static -> "static" | `Dynamic -> "dynamic")
            (List.length ds)
            (String.concat " " (rules ds)))
      [ `Static; `Dynamic ]
  done;
  Printf.printf "corpus: %d circuits x 2 addressings linted clean\n" count

(* 3. seeded bugs --------------------------------------------------- *)

let prelude =
  {|
declare ptr @__quantum__rt__qubit_allocate()
declare void @__quantum__rt__qubit_release(ptr)
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
|}

let seeded : (string * string * string) list =
  [
    ( "QL001",
      "use after release",
      prelude
      ^ {|
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q)
  call void @__quantum__qis__x__body(ptr %q)
  ret void
}|} );
    ( "QL002",
      "double release",
      prelude
      ^ {|
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q)
  call void @__quantum__rt__qubit_release(ptr %q)
  ret void
}|} );
    ( "QL003",
      "leaked qubit",
      prelude
      ^ {|
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  ret void
}|} );
    ( "QL004",
      "read before measure",
      prelude
      ^ {|
define void @main() "entry_point" {
entry:
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
}|} );
    ( "QD001",
      "dead gate",
      prelude
      ^ {|
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__x__body(ptr inttoptr (i64 7 to ptr))
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
}|} );
  ]

let lint_seeded () =
  List.iter
    (fun (rule, what, src) ->
      let m = Llvm_ir.Parser.parse_module src in
      let ds = Qir_analysis.Lint.run m in
      if not (List.mem rule (rules ds)) then
        fail "seeded %s (%s) not detected" rule what)
    seeded;
  Printf.printf "seeded: %d bug fixtures detected\n" (List.length seeded)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "examples" in
  lint_examples dir;
  lint_corpus ();
  lint_seeded ();
  if !failures > 0 then begin
    Printf.eprintf "lint smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "lint smoke: ok"
