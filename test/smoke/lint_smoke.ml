(* Lint smoke: qir-lint must be quiet on code that is actually fine and
   loud on code that is actually broken.

   Four corpora:
   1. the checked-in examples (examples/*.ll, or the directory given as
      argv(1)) — no errors or warnings allowed (notes are fine), except
      the deliberately-buggy demos, which must fire exactly their
      documented rules;
   2. 100 generated circuits built as QIR in both addressing styles —
      builder output must produce zero findings;
   3. 100 generated *multi-function* modules — helpers taking qubit
      arguments, qubit-releasing callees, fresh-qubit-returning
      factories, two-level call chains — that the interprocedural lint
      must pass zero-FP;
   4. embedded seeded-bug fixtures, intraprocedural and cross-call —
      each must trigger its rule.

   Used by CI:  dune exec test/smoke/lint_smoke.exe *)

open Qcircuit

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "FAIL: %s\n" msg)
    fmt

let noisy ds =
  Qir_analysis.Diagnostic.errors ds + Qir_analysis.Diagnostic.warnings ds

let rules ds =
  List.map (fun (d : Qir_analysis.Diagnostic.t) -> d.Qir_analysis.Diagnostic.rule) ds

(* 1. checked-in examples ------------------------------------------- *)

(* Deliberately-buggy demos: each must fire exactly the rules it is
   checked in to demonstrate (any extra error/warning is a smoke FP). *)
let expected_bad =
  [
    ("teleport_helpers.ll", [ "QL001" ]);
    ("recursive_bad.ll", [ "QP001" ]);
  ]

let lint_examples dir =
  let files =
    try
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".ll")
      |> List.sort compare
    with Sys_error _ -> []
  in
  if files = [] then Printf.printf "examples: none found in %s (skipped)\n" dir
  else
    List.iter
      (fun f ->
        let path = Filename.concat dir f in
        let src = In_channel.with_open_text path In_channel.input_all in
        let m = Llvm_ir.Parser.parse_module ~source_name:path src in
        let ds = Qir_analysis.Lint.run m in
        match List.assoc_opt f expected_bad with
        | Some required ->
          List.iter
            (fun rule ->
              if not (List.mem rule (rules ds)) then
                fail "%s: expected rule %s to fire" path rule)
            required
        | None ->
          if noisy ds > 0 then
            fail "%s: expected a clean lint, got %d error/warning finding(s)"
              path (noisy ds))
      files;
  Printf.printf "examples: %d file(s) linted\n" (List.length files)

(* 2. generated corpus ---------------------------------------------- *)

let with_measurements (c : Circuit.t) =
  let b =
    Circuit.Build.create ~num_qubits:c.Circuit.num_qubits
      ~num_clbits:c.Circuit.num_qubits ()
  in
  List.iter
    (fun (op : Circuit.op) ->
      match op.Circuit.kind with
      | Circuit.Gate (g, qs) -> Circuit.Build.gate b g qs
      | _ -> ())
    c.Circuit.ops;
  for q = 0 to c.Circuit.num_qubits - 1 do
    Circuit.Build.measure b q q
  done;
  Circuit.Build.finish b

let lint_corpus () =
  let count = 100 in
  for i = 0 to count - 1 do
    let seed = 4000 + i in
    let n = 2 + (i mod 5) in
    let c =
      with_measurements
        (Generate.random ~seed ~parametric:(i mod 2 = 0) ~gates:(8 + (i mod 3 * 8)) n)
    in
    List.iter
      (fun addressing ->
        let m = Qir.Qir_builder.build ~addressing c in
        let ds = Qir_analysis.Lint.run ~notes:false m in
        if ds <> [] then
          fail "generated circuit %d (%s): %d unexpected finding(s): %s" i
            (match addressing with `Static -> "static" | `Dynamic -> "dynamic")
            (List.length ds)
            (String.concat " " (rules ds)))
      [ `Static; `Dynamic ]
  done;
  Printf.printf "corpus: %d circuits x 2 addressings linted clean\n" count

(* 3. generated multi-function corpus ------------------------------- *)

(* Textual QIR with helpers that take qubit arguments, release their
   arguments, return fresh qubits, or forward qubits down a two-level
   call chain — all correct, so the interprocedural lint must stay
   silent. Three module shapes, sizes varied by index. *)

let mf_prelude =
  {|declare ptr @__quantum__rt__qubit_allocate()
declare void @__quantum__rt__qubit_release(ptr)
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__cnot__body(ptr, ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
declare void @__quantum__rt__result_record_output(ptr, ptr)
|}

let result_addr i =
  if i = 0 then "ptr null" else Printf.sprintf "ptr inttoptr (i64 %d to ptr)" i

(* helpers release their qubit arguments; main only hands qubits over *)
let mf_release_shape ~n ~gate ~read =
  let b = Buffer.create 1024 in
  Buffer.add_string b mf_prelude;
  Buffer.add_string b
    {|
define void @entangle(ptr %a, ptr %b) {
entry:
  call void @__quantum__qis__h__body(ptr %a)
  call void @__quantum__qis__cnot__body(ptr %a, ptr %b)
  ret void
}

define void @finish(ptr %q, ptr %r) {
entry:
  call void @__quantum__qis__mz__body(ptr %q, ptr %r)
  call void @__quantum__rt__qubit_release(ptr %q)
  ret void
}

define void @main() "entry_point" {
entry:
|};
  for q = 0 to n - 1 do
    Printf.bprintf b "  %%q%d = call ptr @__quantum__rt__qubit_allocate()\n" q
  done;
  Printf.bprintf b "  call void @__quantum__qis__%s__body(ptr %%q0)\n" gate;
  for q = 0 to n - 2 do
    Printf.bprintf b "  call void @entangle(ptr %%q%d, ptr %%q%d)\n" q (q + 1)
  done;
  for q = 0 to n - 1 do
    Printf.bprintf b "  call void @finish(ptr %%q%d, %s)\n" q (result_addr q)
  done;
  if read then begin
    Buffer.add_string b
      "  %c = call i1 @__quantum__qis__read_result__body(ptr null)\n";
    Buffer.add_string b
      "  call void @__quantum__rt__result_record_output(ptr null, ptr null)\n"
  end;
  Buffer.add_string b "  ret void\n}\n";
  Buffer.contents b

(* a factory returns a fresh qubit the caller must (and does) release *)
let mf_factory_shape ~n ~gate ~read =
  let b = Buffer.create 1024 in
  Buffer.add_string b mf_prelude;
  Printf.bprintf b
    {|
define ptr @make_q() {
entry:
  %%q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__%s__body(ptr %%q)
  ret ptr %%q
}

define void @main() "entry_point" {
entry:
|}
    gate;
  for q = 0 to n - 1 do
    Printf.bprintf b "  %%q%d = call ptr @make_q()\n" q
  done;
  for q = 0 to n - 2 do
    Printf.bprintf b
      "  call void @__quantum__qis__cnot__body(ptr %%q%d, ptr %%q%d)\n" q
      (q + 1)
  done;
  for q = 0 to n - 1 do
    Printf.bprintf b "  call void @__quantum__qis__mz__body(ptr %%q%d, %s)\n" q
      (result_addr q)
  done;
  if read then
    Buffer.add_string b
      "  %c = call i1 @__quantum__qis__read_result__body(ptr null)\n";
  for q = 0 to n - 1 do
    Printf.bprintf b "  call void @__quantum__rt__qubit_release(ptr %%q%d)\n" q
  done;
  Buffer.add_string b "  ret void\n}\n";
  Buffer.contents b

(* a two-level chain: effects must compose through nested summaries *)
let mf_chain_shape ~n ~gate ~read =
  let b = Buffer.create 1024 in
  Buffer.add_string b mf_prelude;
  Printf.bprintf b
    {|
define void @inner(ptr %%q, ptr %%r) {
entry:
  call void @__quantum__qis__mz__body(ptr %%q, ptr %%r)
  ret void
}

define void @outer(ptr %%q, ptr %%r) {
entry:
  call void @__quantum__qis__%s__body(ptr %%q)
  call void @inner(ptr %%q, ptr %%r)
  ret void
}

define void @main() "entry_point" {
entry:
|}
    gate;
  for q = 0 to n - 1 do
    Printf.bprintf b "  %%q%d = call ptr @__quantum__rt__qubit_allocate()\n" q
  done;
  for q = 0 to n - 1 do
    Printf.bprintf b "  call void @outer(ptr %%q%d, %s)\n" q (result_addr q)
  done;
  if read then
    Buffer.add_string b
      "  %c = call i1 @__quantum__qis__read_result__body(ptr null)\n";
  for q = 0 to n - 1 do
    Printf.bprintf b "  call void @__quantum__rt__qubit_release(ptr %%q%d)\n" q
  done;
  Buffer.add_string b "  ret void\n}\n";
  Buffer.contents b

let lint_mf_corpus () =
  let count = 100 in
  for i = 0 to count - 1 do
    let n = 2 + (i mod 4) in
    let gate = if i mod 2 = 0 then "h" else "x" in
    let read = i mod 3 = 0 in
    let shape, src =
      match i mod 3 with
      | 0 -> ("release", mf_release_shape ~n ~gate ~read)
      | 1 -> ("factory", mf_factory_shape ~n ~gate ~read)
      | _ -> ("chain", mf_chain_shape ~n ~gate ~read)
    in
    let m = Llvm_ir.Parser.parse_module src in
    let ds = Qir_analysis.Lint.run ~notes:false m in
    if ds <> [] then
      fail "multi-function module %d (%s, n=%d): %d unexpected finding(s): %s"
        i shape n (List.length ds)
        (String.concat " " (rules ds))
  done;
  Printf.printf "multi-function corpus: %d modules linted clean\n" count

(* 4. seeded bugs --------------------------------------------------- *)

let prelude =
  {|
declare ptr @__quantum__rt__qubit_allocate()
declare void @__quantum__rt__qubit_release(ptr)
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
|}

let seeded : (string * string * string) list =
  [
    ( "QL001",
      "use after release",
      prelude
      ^ {|
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q)
  call void @__quantum__qis__x__body(ptr %q)
  ret void
}|} );
    ( "QL002",
      "double release",
      prelude
      ^ {|
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q)
  call void @__quantum__rt__qubit_release(ptr %q)
  ret void
}|} );
    ( "QL003",
      "leaked qubit",
      prelude
      ^ {|
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  ret void
}|} );
    ( "QL004",
      "read before measure",
      prelude
      ^ {|
define void @main() "entry_point" {
entry:
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
}|} );
    ( "QD001",
      "dead gate",
      prelude
      ^ {|
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__x__body(ptr inttoptr (i64 7 to ptr))
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
}|} );
  ]

(* Bugs only visible across a call boundary: every one was a blind spot
   of the intraprocedural lint and must fire through summaries now. *)
let seeded_cross_call : (string * string * string) list =
  [
    ( "QL001",
      "helper releases its argument, caller uses it after",
      mf_prelude
      ^ {|
define void @free_it(ptr %q) {
entry:
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q)
  ret void
}
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @free_it(ptr %q)
  call void @__quantum__qis__x__body(ptr %q)
  ret void
}|} );
    ( "QL002",
      "helper releases its argument, caller releases it again",
      mf_prelude
      ^ {|
define void @free_it(ptr %q) {
entry:
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q)
  ret void
}
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @free_it(ptr %q)
  call void @__quantum__rt__qubit_release(ptr %q)
  ret void
}|} );
    ( "QL003",
      "factory returns a fresh qubit the caller never releases",
      mf_prelude
      ^ {|
define ptr @make_q() {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  ret ptr %q
}
define void @main() "entry_point" {
entry:
  %q = call ptr @make_q()
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  ret void
}|} );
    ( "QD002",
      "pure classical call with unused result",
      mf_prelude
      ^ {|
define i64 @twice(i64 %x) {
entry:
  %y = add i64 %x, %x
  ret i64 %y
}
define void @main() "entry_point" {
entry:
  %t = call i64 @twice(i64 3)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
}|} );
    ( "QD002",
      "unitary helper applied to a qubit no measurement can see",
      mf_prelude
      ^ {|
define void @spin(ptr %q) {
entry:
  call void @__quantum__qis__h__body(ptr %q)
  ret void
}
define void @main() "entry_point" {
entry:
  %q0 = call ptr @__quantum__rt__qubit_allocate()
  %q1 = call ptr @__quantum__rt__qubit_allocate()
  call void @spin(ptr %q1)
  call void @__quantum__qis__mz__body(ptr %q0, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q0)
  call void @__quantum__rt__qubit_release(ptr %q1)
  ret void
}|} );
    ( "QP001",
      "recursion reachable from the entry point",
      mf_prelude
      ^ {|
define void @loop(ptr %q, i64 %n) {
entry:
  %done = icmp sle i64 %n, 0
  br i1 %done, label %exit, label %recurse
recurse:
  call void @__quantum__qis__h__body(ptr %q)
  %n1 = sub i64 %n, 1
  call void @loop(ptr %q, i64 %n1)
  br label %exit
exit:
  ret void
}
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @loop(ptr %q, i64 3)
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q)
  ret void
}|} );
    ( "QC001",
      "defined helper unreachable from the entry point",
      mf_prelude
      ^ {|
define void @orphan(ptr %q) {
entry:
  call void @__quantum__qis__h__body(ptr %q)
  ret void
}
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
}|} );
  ]

let lint_seeded () =
  List.iter
    (fun (rule, what, src) ->
      let m = Llvm_ir.Parser.parse_module src in
      let ds = Qir_analysis.Lint.run m in
      if not (List.mem rule (rules ds)) then
        fail "seeded %s (%s) not detected" rule what)
    seeded;
  Printf.printf "seeded: %d bug fixtures detected\n" (List.length seeded)

let lint_seeded_cross_call () =
  List.iter
    (fun (rule, what, src) ->
      let m = Llvm_ir.Parser.parse_module src in
      let ds = Qir_analysis.Lint.run m in
      if not (List.mem rule (rules ds)) then
        fail "seeded cross-call %s (%s) not detected" rule what)
    seeded_cross_call;
  Printf.printf "seeded cross-call: %d bug fixtures detected\n"
    (List.length seeded_cross_call)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "examples" in
  lint_examples dir;
  lint_corpus ();
  lint_mf_corpus ();
  lint_seeded ();
  lint_seeded_cross_call ();
  if !failures > 0 then begin
    Printf.eprintf "lint smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "lint smoke: ok"
