(* Chaos smoke for the multi-tenant execution service: concurrent
   tenants submit at roughly twice the service rate (hot cache-friendly
   jobs, a stream of cache-cold fuzzed circuits, a faulty-backend chaos
   tenant, an always-failing tenant that must trip its breaker, and
   injected Domain-pool worker failures), while the queue is drained at
   a deliberately slower pace so the service spends most of the run in
   its Elevated/Critical degradation levels.

   Hard gates, any violation fails the run:
   - zero non-taxonomy errors: nothing escapes submit/run_once as a
     raw exception, and every rejection/failure event carries a stable
     taxonomy exit code (2..8);
   - zero histogram divergences: every completed, non-degraded result
     from a deterministic tenant is re-executed directly against the
     Executor at the same tier cap and must match bit for bit —
     degradation may defer or shed work, never corrupt it;
   - bookkeeping closes: accepted = completed + failed + shed, and
     rejections happened (the run is actually overloaded);
   - the always-failing tenant's breaker tripped, and the Domain pool
     throttle is released once the queue drains.

   Used by CI:  dune exec test/smoke/service_smoke.exe *)

open Qcircuit
open Qservice

let shots_hot = 24
let shots_cold = 10
let waves = 20

(* Terminal measurements on every qubit so execution produces output
   (same shape as fault_smoke.ml). *)
let with_measurements (c : Circuit.t) =
  let b =
    Circuit.Build.create ~num_qubits:c.Circuit.num_qubits
      ~num_clbits:c.Circuit.num_qubits ()
  in
  List.iter
    (fun (op : Circuit.op) ->
      match op.Circuit.kind with
      | Circuit.Gate (g, qs) -> Circuit.Build.gate b g qs
      | _ -> ())
    c.Circuit.ops;
  for q = 0 to c.Circuit.num_qubits - 1 do
    Circuit.Build.measure b q q
  done;
  Circuit.Build.finish b

let cold_module seed =
  let n = 2 + (seed mod 4) in
  let gates = 8 + (seed mod 3 * 8) in
  Qir.Qir_builder.build
    (with_measurements (Generate.random ~seed ~parametric:false ~gates n))

let () =
  let failures = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        incr failures;
        Printf.eprintf "service_smoke: %s\n" msg)
      fmt
  in
  let events = ref [] in
  let config =
    {
      Service.default_config with
      Service.max_queue = 24;
      max_tenant_queue = 20;
      overload_depth = 6;
      chunk = 7;
      retries = 6;
      breaker_threshold = 3;
      breaker_cooldown = 0.05;
      tenant_weights = [ ("hot", 2) ];
      sleep = false;
    }
  in
  let svc =
    Service.create ~config ~emit:(fun ev -> events := ev :: !events) ()
  in
  let hot = Qir.Qir_builder.build (Generate.bell ()) in
  (* id -> (module, seed, shots) for deterministic-tenant parity *)
  let deterministic : (string, Llvm_ir.Ir_module.t * int * int) Hashtbl.t =
    Hashtbl.create 128
  in
  let chaos_spec rate seed =
    `Faulty
      {
        Qsim.Faulty.default with
        Qsim.Faulty.gate_rate = rate;
        fault_seed = seed;
      }
  in
  let guarded label f =
    try f ()
    with e -> fail "%s raised a non-taxonomy exception: %s" label
                (Printexc.to_string e)
  in
  (* ---- the chaos run: submit at ~2x the drain rate ---------------- *)
  for wave = 0 to waves - 1 do
    (* hot tenant: the same physical module every time (cache-hot) *)
    for i = 0 to 3 do
      let id = Printf.sprintf "hot-%d-%d" wave i in
      let seed = 100 + (wave * 7) + i in
      Hashtbl.replace deterministic id (hot, seed, shots_hot);
      guarded id (fun () ->
          Service.submit svc ~tenant:"hot" ~id ~shots:shots_hot ~seed hot)
    done;
    (* cold tenant: a fresh fuzzed module per job (always cache-cold) *)
    for i = 0 to 2 do
      let id = Printf.sprintf "cold-%d-%d" wave i in
      let seed = 1000 + (wave * 3) + i in
      let m = cold_module seed in
      Hashtbl.replace deterministic id (m, seed, shots_cold);
      guarded id (fun () ->
          Service.submit svc ~tenant:"cold" ~id ~shots:shots_cold ~seed m)
    done;
    (* chaos tenant: transient faults the retry policy must absorb *)
    for i = 0 to 1 do
      let id = Printf.sprintf "chaos-%d-%d" wave i in
      guarded id (fun () ->
          Service.submit svc ~tenant:"chaos" ~id ~shots:6
            ~seed:(2000 + wave)
            ~backend:(chaos_spec 0.02 (3000 + (wave * 2) + i))
            hot)
    done;
    (* an always-failing tenant: must trip its breaker, not the pool *)
    if wave mod 4 = 0 then
      for i = 0 to 2 do
        let id = Printf.sprintf "badbot-%d-%d" wave i in
        guarded id (fun () ->
            Service.submit svc ~tenant:"badbot" ~id ~shots:4
              ~backend:(chaos_spec 1.0 wave) hot)
      done;
    (* a sprinkling of jobs whose budget expires while queued *)
    if wave mod 5 = 0 then begin
      let id = Printf.sprintf "rushed-%d" wave in
      guarded id (fun () ->
          Service.submit svc ~tenant:"cold" ~id ~shots:4 ~timeout:0.0
            (cold_module (5000 + wave)))
    end;
    (* injected worker failures for one wave in four: parallel sweeps
       must degrade to sequential, never to a wrong histogram *)
    Qsim.Dpool.force_spawn_failure (wave mod 4 = 1);
    (* drain slower than the arrival rate: ~5 services per ~10 arrivals *)
    for _ = 0 to 4 do
      guarded "run_once" (fun () -> ignore (Service.run_once svc))
    done
  done;
  Qsim.Dpool.force_spawn_failure false;
  guarded "drain" (fun () -> Service.drain svc);
  let events = List.rev !events in
  let stats = Service.stats svc in

  (* ---- gate 1: only taxonomy-coded errors on the wire ------------- *)
  List.iter
    (fun ev ->
      let check_error where (e : Qruntime.Qir_error.t) =
        let code = Qruntime.Qir_error.exit_code e in
        if code < 2 || code > 8 then
          fail "%s carries a non-taxonomy exit code %d (%s)" where code
            e.Qruntime.Qir_error.message
      in
      match ev with
      | Service.Rejected { id; error; _ } ->
        check_error ("rejection of " ^ id) error
      | Service.Failed { id; error; _ } ->
        check_error ("failure of " ^ id) error
      | _ -> ())
    events;

  (* ---- gate 2: zero histogram divergences ------------------------- *)
  let parity_checked = ref 0 in
  List.iter
    (function
      | Service.Result { id; result; tier; _ }
        when Hashtbl.mem deterministic id ->
        if
          (not result.Qruntime.Executor.degraded)
          && result.Qruntime.Executor.completed
             = result.Qruntime.Executor.requested
        then begin
          let m, seed, shots = Hashtbl.find deterministic id in
          let direct =
            Qruntime.Executor.run_shots_resilient
              ~session:(Qruntime.Executor.Session.create ())
              ~policy:
                {
                  Qruntime.Resilience.default with
                  Qruntime.Resilience.sleep = false;
                }
              ~seed ~max_tier:tier ~shots m
          in
          incr parity_checked;
          if direct.Qruntime.Executor.histogram
             <> result.Qruntime.Executor.histogram
          then
            fail "histogram divergence on %s (tier %s)" id
              (Qruntime.Executor.tier_name tier)
        end
      | _ -> ())
    events;
  if !parity_checked < 20 then
    fail "only %d parity checks ran; the smoke lost its teeth"
      !parity_checked;

  (* ---- gate 3: bookkeeping closes under load shedding ------------- *)
  if stats.Service.queue_depth <> 0 then
    fail "queue not drained: %d left" stats.Service.queue_depth;
  if
    stats.Service.accepted
    <> stats.Service.completed + stats.Service.failed + stats.Service.shed
  then
    fail "bookkeeping leak: accepted %d <> completed %d + failed %d + shed %d"
      stats.Service.accepted stats.Service.completed stats.Service.failed
      stats.Service.shed;
  if stats.Service.submitted <> stats.Service.accepted + (stats.Service.rejected - stats.Service.shed)
  then
    fail "admission leak: submitted %d <> accepted %d + turned-away %d"
      stats.Service.submitted stats.Service.accepted
      (stats.Service.rejected - stats.Service.shed);
  if stats.Service.rejected = 0 then
    fail "a 2x-overload run rejected nothing; overload never happened";
  if stats.Service.throttled_runs = 0 then
    fail "critical load never throttled the pool";

  (* ---- gate 4: the hostile tenant tripped its breaker ------------- *)
  if stats.Service.breaker_trips = 0 then
    fail "badbot never tripped a circuit breaker";
  if Qsim.Dpool.throttled () then
    fail "pool throttle left engaged after drain";

  Printf.printf
    "service smoke OK: %d submitted, %d accepted, %d completed (%d \
     degraded), %d failed, %d shed, %d rejected, %d breaker trips, %d \
     throttled runs, %d parity checks, 0 divergences\n"
    stats.Service.submitted stats.Service.accepted stats.Service.completed
    stats.Service.degraded_results stats.Service.failed stats.Service.shed
    stats.Service.rejected stats.Service.breaker_trips
    stats.Service.throttled_runs !parity_checked;
  if !failures > 0 then begin
    Printf.eprintf "service smoke FAILED: %d violations\n" !failures;
    exit 1
  end
