(* Quantum-optimizer smoke: 120 generated modules (30 seeds x 2
   addressing styles x {raw, redundancy-injected}) run through the
   value-semantics optimizer (quantum-opt). Gates:

   1. soundness — every optimized module must reproduce the exact
      per-shot histogram of its source at a fixed seed (bit-identical,
      not statistically close);
   2. monotonicity — the optimizer never adds gates, and never makes a
      gate-tape-eligible module ineligible;
   3. progress — across the corpus the total gate count must strictly
      drop and the number of tape-eligible modules must strictly rise
      (dynamic builder output is ineligible until promotion proves it
      static);
   4. robustness — any exception anywhere in the pipeline is a failure;
      there is no error taxonomy for an optimizer crash.

   Used by CI:  dune exec test/smoke/opt_smoke.exe *)

open Qcircuit

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "FAIL: %s\n" msg)
    fmt

(* Random circuit with measurements on every qubit; with [redundant] a
   seeded third of the gates are immediately followed by their inverse,
   so cancellation/merging has guaranteed fuel. *)
let circuit ~redundant ~seed n =
  let c = Generate.random ~seed ~parametric:(seed mod 2 = 0) ~gates:12 n in
  let b =
    Circuit.Build.create ~num_qubits:c.Circuit.num_qubits
      ~num_clbits:c.Circuit.num_qubits ()
  in
  let st = Random.State.make [| seed; 91 |] in
  List.iter
    (fun (op : Circuit.op) ->
      match op.Circuit.kind with
      | Circuit.Gate (g, qs) ->
        Circuit.Build.gate b g qs;
        if redundant && Random.State.int st 3 = 0 then
          Circuit.Build.gate b (Gate.inverse g) qs
      | _ -> ())
    c.Circuit.ops;
  for q = 0 to c.Circuit.num_qubits - 1 do
    Circuit.Build.measure b q q
  done;
  Circuit.Build.finish b

let eligible m = Qruntime.Gate_tape.extract m <> None

let run_histogram ~seed m =
  Qruntime.Executor.run_shots ~seed ~batch:false ~shots:48 m

let () =
  let total = ref 0 in
  let gates_before = ref 0 in
  let gates_after = ref 0 in
  let eligible_before = ref 0 in
  let eligible_after = ref 0 in
  for i = 0 to 29 do
    let seed = 7000 + i in
    let n = 2 + (i mod 4) in
    List.iter
      (fun addressing ->
        List.iter
          (fun redundant ->
            incr total;
            let tag =
              Printf.sprintf "seed %d n %d %s%s" seed n
                (match addressing with
                | `Static -> "static"
                | `Dynamic -> "dynamic")
                (if redundant then " redundant" else "")
            in
            try
              let m =
                Qir.Qir_builder.build ~addressing (circuit ~redundant ~seed n)
              in
              let m', st = Qir_analysis.Qdf_opt.optimize m in
              let open Qir_analysis.Qdf_opt in
              gates_before := !gates_before + st.s_gates_before;
              gates_after := !gates_after + st.s_gates_after;
              if st.s_gates_after > st.s_gates_before then
                fail "%s: optimizer added gates (%d -> %d)" tag
                  st.s_gates_before st.s_gates_after;
              let e0 = eligible m and e1 = eligible m' in
              if e0 then incr eligible_before;
              if e1 then incr eligible_after;
              if e0 && not e1 then
                fail "%s: optimizer lost gate-tape eligibility" tag;
              if run_histogram ~seed m <> run_histogram ~seed m' then
                fail "%s: histogram not bit-identical" tag
            with e -> fail "%s: exception %s" tag (Printexc.to_string e))
          [ false; true ])
      [ `Static; `Dynamic ]
  done;
  Printf.printf "opt smoke: %d modules, gates %d -> %d, tape-eligible %d -> %d\n"
    !total !gates_before !gates_after !eligible_before !eligible_after;
  if !gates_after >= !gates_before then
    fail "corpus: no gate-count reduction (%d -> %d)" !gates_before !gates_after;
  if !eligible_after <= !eligible_before then
    fail "corpus: no tape-eligibility uplift (%d -> %d)" !eligible_before
      !eligible_after;
  if !failures > 0 then begin
    Printf.eprintf "opt smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "opt smoke: ok"
