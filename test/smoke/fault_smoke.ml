(* Bounded fuzz/fault smoke: 200 randomized circuits run through the
   whole pipeline — circuit -> QIR text -> parse -> optimize ->
   execute — under a 1% injected fault rate with retries enabled.
   Transient faults must all be absorbed by the retry policy; any
   non-transient failure (or an exhausted retry budget) fails the run.

   Used by CI as a cheap end-to-end robustness gate:
     dune exec test/smoke/fault_smoke.exe *)

open Qcircuit

let circuits = 200
let shots = 3

(* Terminal measurements on every qubit so execution produces output. *)
let with_measurements (c : Circuit.t) =
  let b =
    Circuit.Build.create ~num_qubits:c.Circuit.num_qubits
      ~num_clbits:c.Circuit.num_qubits ()
  in
  List.iter
    (fun (op : Circuit.op) ->
      match op.Circuit.kind with
      | Circuit.Gate (g, qs) -> Circuit.Build.gate b g qs
      | _ -> ())
    c.Circuit.ops;
  for q = 0 to c.Circuit.num_qubits - 1 do
    Circuit.Build.measure b q q
  done;
  Circuit.Build.finish b

let () =
  let spec =
    match Qsim.Faulty.spec_of_string "0.01" with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  let policy =
    {
      Qruntime.Resilience.default with
      Qruntime.Resilience.max_retries = 20;
      sleep = false;
    }
  in
  let failures = ref 0 in
  let total_retries = ref 0 in
  for i = 0 to circuits - 1 do
    let seed = 1000 + i in
    let n = 2 + (i mod 5) in
    let gates = 10 + (i mod 4 * 10) in
    try
      let c =
        with_measurements
          (Generate.random ~seed ~parametric:(i mod 2 = 0) ~gates n)
      in
      (* full pipeline: build -> print -> parse -> optimize -> execute *)
      let text = Qir.Qir_builder.to_string c in
      let m = Llvm_ir.Parser.parse_module text in
      let m = Passes.Pipeline.optimize m in
      let r =
        Qruntime.Executor.run_shots_resilient ~policy ~seed
          ~backend:(`Faulty { spec with Qsim.Faulty.fault_seed = seed })
          ~batch:false ~shots m
      in
      total_retries := !total_retries + r.Qruntime.Executor.retries;
      if r.Qruntime.Executor.degraded then begin
        incr failures;
        Printf.eprintf "circuit %d (seed %d): degraded result\n" i seed
      end
      else if r.Qruntime.Executor.completed <> shots then begin
        incr failures;
        Printf.eprintf "circuit %d (seed %d): %d/%d shots\n" i seed
          r.Qruntime.Executor.completed shots
      end
    with e ->
      incr failures;
      Printf.eprintf "circuit %d (seed %d): %s\n" i seed
        (Printexc.to_string e)
  done;
  Printf.printf
    "fault smoke: %d circuits x %d shots, 1%% fault rate, %d faults \
     injected, %d retries, %d failures\n"
    circuits shots
    (Qsim.Faulty.injected ())
    !total_retries !failures;
  if !failures > 0 then exit 1
