(* Resource-certification smoke: the soundness gate for the static
   resource analysis. 120+ fuzzed modules (30 seeds x 2 addressing
   styles x {plain, parametric}) plus counted-loop and interprocedural
   fixtures are certified and then actually executed; for every module
   the interpreter-measured register size, gate count and measurement
   count must fall inside the certified [lo, hi] interval. One
   violation anywhere fails the run — an unsound bound is a broken
   proof, not a statistic.

   A second gate seeds modules whose *lower* bound is proven huge
   (static gates on high qubit indices) and checks that admission
   control rejects them on the certificate alone — before any
   compilation — with the stable overload taxonomy (exit 8).

   Used by CI:  dune exec test/smoke/resource_smoke.exe *)

open Qcircuit
module Resource = Qir_analysis.Resource

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "FAIL: %s\n" msg)
    fmt

(* ------------------------------------------------------------------ *)
(* Execution-side measurement: run the module once on the statevector
   backend and read the runtime's ground truth. *)

let measure ~seed (m : Llvm_ir.Ir_module.t) =
  let n = Qruntime.Executor.declared_qubits m in
  let inst = Qsim.Backend.create_instance ~seed `Statevector n in
  let rt = Qruntime.Runtime.create inst in
  let externals = Qruntime.Runtime.externals rt in
  let entry =
    match Llvm_ir.Ir_module.entry_point m with
    | Some f -> f.Llvm_ir.Func.name
    | None -> failwith "module has no entry point"
  in
  let st = Llvm_ir.Interp.create ~externals m in
  ignore (Llvm_ir.Interp.run_function st entry []);
  let stats = Qruntime.Runtime.stats rt in
  ( rt.Qruntime.Runtime.ops.Qruntime.Runtime.bnum_qubits (),
    stats.Qruntime.Runtime.gate_calls,
    stats.Qruntime.Runtime.measurements )

let in_iv what tag measured (iv : Resource.iv) =
  if measured < iv.Resource.lo then
    fail "%s: measured %s %d below certified lower bound %d" tag what measured
      iv.Resource.lo;
  match iv.Resource.hi with
  | Resource.Fin hi when measured > hi ->
    fail "%s: measured %s %d above certified upper bound %d" tag what measured
      hi
  | Resource.Fin _ | Resource.Inf -> ()

let check_sound ~seed tag (m : Llvm_ir.Ir_module.t) =
  try
    let cert = Resource.certify m in
    let qubits, gates, measures = measure ~seed m in
    in_iv "qubits" tag qubits cert.Resource.qubits;
    in_iv "gates" tag gates cert.Resource.gates;
    in_iv "measures" tag measures cert.Resource.measures;
    (* internal consistency: T gates are gates; depth never exceeds the
       serial gate count *)
    (match (cert.Resource.t_count.Resource.hi, cert.Resource.gates.Resource.hi)
    with
    | Resource.Fin t, Resource.Fin g when t > g ->
      fail "%s: t-count bound %d exceeds gate bound %d" tag t g
    | _ -> ());
    match (cert.Resource.depth.Resource.hi, cert.Resource.gates.Resource.hi)
    with
    | Resource.Fin d, Resource.Fin g when d > g ->
      fail "%s: depth bound %d exceeds gate bound %d" tag d g
    | _ -> ()
  with e -> fail "%s: exception %s" tag (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Fuzzed corpus: generated circuits, terminal measurements on every
   qubit, both addressing styles. *)

let with_measurements (c : Circuit.t) =
  let b =
    Circuit.Build.create ~num_qubits:c.Circuit.num_qubits
      ~num_clbits:c.Circuit.num_qubits ()
  in
  List.iter
    (fun (op : Circuit.op) ->
      match op.Circuit.kind with
      | Circuit.Gate (g, qs) -> Circuit.Build.gate b g qs
      | _ -> ())
    c.Circuit.ops;
  for q = 0 to c.Circuit.num_qubits - 1 do
    Circuit.Build.measure b q q
  done;
  Circuit.Build.finish b

let fuzzed () =
  let total = ref 0 in
  for i = 0 to 29 do
    let seed = 4100 + i in
    let n = 2 + (i mod 4) in
    List.iter
      (fun parametric ->
        let c =
          with_measurements (Generate.random ~seed ~parametric ~gates:14 n)
        in
        List.iter
          (fun addressing ->
            incr total;
            let tag =
              Printf.sprintf "fuzz seed %d n %d %s%s" seed n
                (match addressing with
                | `Static -> "static"
                | `Dynamic -> "dynamic")
                (if parametric then " parametric" else "")
            in
            check_sound ~seed tag (Qir.Qir_builder.build ~addressing c))
          [ `Static; `Dynamic ])
      [ false; true ]
  done;
  !total

(* ------------------------------------------------------------------ *)
(* Counted-loop and interprocedural fixtures: the measured gate count
   equals the trip count exactly, so these double as precision checks —
   the certified gate interval must be finite. *)

let loop_src trip =
  Printf.sprintf
    "declare void @__quantum__qis__h__body(ptr)\n\
     define void @main() \"entry_point\" {\n\
     entry:\n\
    \  br label %%h\n\
     h:\n\
    \  %%i = phi i64 [ 0, %%entry ], [ %%n, %%b ]\n\
    \  %%c = icmp slt i64 %%i, %d\n\
    \  br i1 %%c, label %%b, label %%x\n\
     b:\n\
    \  call void @__quantum__qis__h__body(ptr inttoptr (i64 1 to ptr))\n\
    \  %%n = add i64 %%i, 1\n\
    \  br label %%h\n\
     x:\n\
    \  ret void\n\
     }"
    trip

let callee_loop_src trip =
  Printf.sprintf
    "declare void @__quantum__qis__h__body(ptr)\n\
     declare void @__quantum__qis__t__body(ptr)\n\
     define void @flip(ptr %%q) {\n\
     entry:\n\
    \  call void @__quantum__qis__h__body(ptr %%q)\n\
    \  call void @__quantum__qis__t__body(ptr %%q)\n\
    \  ret void\n\
     }\n\
     define void @main() \"entry_point\" {\n\
     entry:\n\
    \  br label %%h\n\
     h:\n\
    \  %%i = phi i64 [ 0, %%entry ], [ %%n, %%b ]\n\
    \  %%c = icmp slt i64 %%i, %d\n\
    \  br i1 %%c, label %%b, label %%x\n\
     b:\n\
    \  call void @flip(ptr inttoptr (i64 2 to ptr))\n\
    \  %%n = add i64 %%i, 1\n\
    \  br label %%h\n\
     x:\n\
    \  ret void\n\
     }"
    trip

let fixtures () =
  let total = ref 0 in
  List.iter
    (fun trip ->
      List.iter
        (fun (kind, src) ->
          incr total;
          let tag = Printf.sprintf "%s trip %d" kind trip in
          let m = Llvm_ir.Parser.parse_module src in
          check_sound ~seed:(trip + 1) tag m;
          (* precision: a proven trip count must make the gate bound
             finite *)
          let cert = Resource.certify m in
          match cert.Resource.gates.Resource.hi with
          | Resource.Inf -> fail "%s: gate bound not finite" tag
          | Resource.Fin _ -> ())
        [ ("loop", loop_src trip); ("call-loop", callee_loop_src trip) ])
    [ 1; 2; 3; 5; 8; 13 ];
  !total

(* ------------------------------------------------------------------ *)
(* Lower-bound early rejection: a static gate on qubit index K proves a
   (K+1)-qubit register on every path; under a budget below that
   footprint, admission must reject on the certificate alone. *)

let big_src k =
  Printf.sprintf
    "declare void @__quantum__qis__h__body(ptr)\n\
     define void @main() \"entry_point\" {\n\
     entry:\n\
    \  call void @__quantum__qis__h__body(ptr inttoptr (i64 %d to ptr))\n\
    \  ret void\n\
     }"
    k

let contains ~needle hay =
  let n = String.length needle and l = String.length hay in
  let rec scan i = i + n <= l && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let rejections () =
  let total = ref 0 in
  let budget = 1 lsl 30 (* 1 GiB: fits 26 qubits, not 27 *) in
  List.iter
    (fun k ->
      incr total;
      let tag = Printf.sprintf "reject k %d" k in
      let m = Llvm_ir.Parser.parse_module (big_src k) in
      let cert = Resource.certify m in
      if Resource.qubits_lower cert <> k + 1 then
        fail "%s: expected proven lower bound %d, got %d" tag (k + 1)
          (Resource.qubits_lower cert);
      match Qservice.Admission.check ~cert ~budget ~backend:`Statevector m with
      | Ok _ -> fail "%s: admitted a proven %d-qubit job under 1 GiB" tag (k + 1)
      | Error e ->
        if Qruntime.Qir_error.exit_code e <> 8 then
          fail "%s: expected exit 8, got %d" tag
            (Qruntime.Qir_error.exit_code e);
        if not (contains ~needle:"before compile" e.Qruntime.Qir_error.message)
        then fail "%s: rejection not certificate-first: %s" tag
            e.Qruntime.Qir_error.message)
    [ 26; 27; 28; 29 ];
  (* control: a small module under the same budget sails through *)
  let m = Llvm_ir.Parser.parse_module (big_src 1) in
  let cert = Resource.certify m in
  (match Qservice.Admission.check ~cert ~budget ~backend:`Statevector m with
  | Ok v ->
    if v.Qservice.Admission.v_qubits <> 2 then
      fail "control: charged %d qubits, expected 2" v.Qservice.Admission.v_qubits
  | Error e ->
    fail "control: small module rejected: %s" e.Qruntime.Qir_error.message);
  !total

let () =
  let n_fuzz = fuzzed () in
  let n_fix = fixtures () in
  let n_rej = rejections () in
  Printf.printf
    "resource smoke: %d fuzzed + %d loop/call fixtures certified sound, %d \
     certificate-first rejections\n"
    n_fuzz n_fix n_rej;
  if !failures > 0 then begin
    Printf.eprintf "resource smoke: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "resource smoke: ok"
