(* Engine differential smoke: the AST interpreter and the bytecode
   engine must be observably identical. 200 fuzzed modules (random
   circuits, both addressing modes, feedback workloads, optimized and
   not) execute per shot under both engines with identical seeds —
   histograms and interpreter statistics must match bit for bit. A
   faulty-backend subset checks the retry machinery sees the same world
   from both engines; a counting-deadline case checks mid-shot timeout
   fires at the identical instruction; the checked-in examples (and
   recursive_bad under a fuel ceiling) close the loop on real files.

   Used by CI as the engine-parity gate:
     dune exec test/smoke/engine_diff.exe *)

open Qcircuit

let circuits = 200
let shots = 4
let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "engine-diff: %s\n" msg)
    fmt

let hist_to_string h =
  String.concat ";" (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) h)

let stats_to_string (s : Llvm_ir.Interp.stats) =
  Printf.sprintf "instr=%d ext=%d int=%d blocks=%d"
    s.Llvm_ir.Interp.instructions s.Llvm_ir.Interp.external_calls
    s.Llvm_ir.Interp.internal_calls s.Llvm_ir.Interp.blocks_entered

let with_measurements (c : Circuit.t) =
  let b =
    Circuit.Build.create ~num_qubits:c.Circuit.num_qubits
      ~num_clbits:c.Circuit.num_qubits ()
  in
  List.iter
    (fun (op : Circuit.op) ->
      match op.Circuit.kind with
      | Circuit.Gate (g, qs) -> Circuit.Build.gate b g qs
      | _ -> ())
    c.Circuit.ops;
  for q = 0 to c.Circuit.num_qubits - 1 do
    Circuit.Build.measure b q q
  done;
  Circuit.Build.finish b

let module_of_circuit ~i c =
  let addressing = if i mod 2 = 0 then `Static else `Dynamic in
  let text = Qir.Qir_builder.to_string ~addressing c in
  let m = Llvm_ir.Parser.parse_module text in
  if i mod 3 = 0 then Passes.Pipeline.optimize m else m

let run_engine ~policy ~seed ~backend ~engine m =
  Qruntime.Executor.run_shots_resilient ~policy ~seed ~backend ~batch:false
    ~engine ~shots m

(* -------------------------------------------------------------------- *)
(* 1. fuzzed corpus, both engines, identical seeds                       *)

let fuzzed_corpus () =
  let policy = { Qruntime.Resilience.no_retry with sleep = false } in
  for i = 0 to circuits - 1 do
    let seed = 2000 + i in
    let n = 2 + (i mod 5) in
    let c =
      if i mod 7 = 0 then Generate.feedback_rounds ~rounds:(1 + (i mod 3)) n
      else
        with_measurements
          (Generate.random ~seed ~parametric:(i mod 2 = 0)
             ~gates:(8 + (i mod 4 * 8))
             n)
    in
    try
      let m = module_of_circuit ~i c in
      let a = run_engine ~policy ~seed ~backend:`Statevector ~engine:`Ast m in
      let b =
        run_engine ~policy ~seed ~backend:`Statevector ~engine:`Bytecode m
      in
      if a.Qruntime.Executor.histogram <> b.Qruntime.Executor.histogram then
        fail "circuit %d (seed %d): histogram %s <> %s" i seed
          (hist_to_string a.Qruntime.Executor.histogram)
          (hist_to_string b.Qruntime.Executor.histogram);
      (* single-shot stats must agree instruction for instruction *)
      let ra =
        Qruntime.Executor.run ~seed ~backend:`Statevector ~engine:`Ast m
      in
      let rb =
        Qruntime.Executor.run ~seed ~backend:`Statevector ~engine:`Bytecode m
      in
      if ra.Qruntime.Executor.output <> rb.Qruntime.Executor.output then
        fail "circuit %d (seed %d): output %S <> %S" i seed
          ra.Qruntime.Executor.output rb.Qruntime.Executor.output;
      if ra.Qruntime.Executor.results <> rb.Qruntime.Executor.results then
        fail "circuit %d (seed %d): results differ" i seed;
      if
        stats_to_string ra.Qruntime.Executor.interp_stats
        <> stats_to_string rb.Qruntime.Executor.interp_stats
      then
        fail "circuit %d (seed %d): stats %s <> %s" i seed
          (stats_to_string ra.Qruntime.Executor.interp_stats)
          (stats_to_string rb.Qruntime.Executor.interp_stats)
    with e ->
      fail "circuit %d (seed %d): raised %s" i seed (Printexc.to_string e)
  done

(* -------------------------------------------------------------------- *)
(* 2. faulty backends: retries and recovered histograms must line up     *)

let faulty_subset () =
  let spec =
    match Qsim.Faulty.spec_of_string "0.02" with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  let policy =
    {
      Qruntime.Resilience.default with
      Qruntime.Resilience.max_retries = 20;
      sleep = false;
    }
  in
  for i = 0 to 29 do
    let seed = 4000 + i in
    let c =
      with_measurements
        (Generate.random ~seed ~gates:(10 + (i mod 3 * 10)) (2 + (i mod 4)))
    in
    try
      let m = module_of_circuit ~i c in
      let backend = `Faulty { spec with Qsim.Faulty.fault_seed = seed } in
      let a = run_engine ~policy ~seed ~backend ~engine:`Ast m in
      let b = run_engine ~policy ~seed ~backend ~engine:`Bytecode m in
      if a.Qruntime.Executor.histogram <> b.Qruntime.Executor.histogram then
        fail "faulty %d (seed %d): histogram %s <> %s" i seed
          (hist_to_string a.Qruntime.Executor.histogram)
          (hist_to_string b.Qruntime.Executor.histogram);
      if a.Qruntime.Executor.retries <> b.Qruntime.Executor.retries then
        fail "faulty %d (seed %d): retries %d <> %d" i seed
          a.Qruntime.Executor.retries b.Qruntime.Executor.retries;
      if a.Qruntime.Executor.completed <> b.Qruntime.Executor.completed then
        fail "faulty %d (seed %d): completed %d <> %d" i seed
          a.Qruntime.Executor.completed b.Qruntime.Executor.completed
    with e ->
      fail "faulty %d (seed %d): raised %s" i seed (Printexc.to_string e)
  done

(* -------------------------------------------------------------------- *)
(* 3. deadline expiry mid-shot: a deterministic counting deadline must   *)
(*    fire at the identical instruction and produce the identical        *)
(*    Timeout_error from both engines                                    *)

let deadline_parity () =
  (* big enough that the every-128-instructions poll fires > 3 times *)
  let c = with_measurements (Generate.random ~seed:77 ~gates:700 4) in
  let text = Qir.Qir_builder.to_string c in
  let m = Llvm_ir.Parser.parse_module text in
  let timeout_of create run_fn =
    (* trip after 3 polls (the deadline is polled every 128 instrs) *)
    let polls = ref 0 in
    let deadline () =
      incr polls;
      !polls > 3
    in
    let inst = Qsim.Backend.create_instance ~seed:77 `Statevector 4 in
    let rt = Qruntime.Runtime.create inst in
    let st = create ~deadline ~externals:(Qruntime.Runtime.externals rt) in
    match run_fn st with
    | _ -> None
    | exception Llvm_ir.Ir_error.Timeout_error msg -> Some msg
  in
  let a =
    timeout_of
      (fun ~deadline ~externals ->
        Llvm_ir.Interp.create ~deadline ~externals m)
      (fun st -> Llvm_ir.Interp.run_function st "main" [])
  in
  let b =
    let prog, _, _ = Qruntime.Executor.compiled m in
    timeout_of
      (fun ~deadline ~externals ->
        Llvm_ir.Bc_exec.create ~deadline ~externals prog)
      (fun st -> Llvm_ir.Bc_exec.run_function st "main" [])
  in
  match (a, b) with
  | Some ma, Some mb when ma = mb -> ()
  | Some ma, Some mb -> fail "deadline: %S <> %S" ma mb
  | None, _ | _, None ->
    fail "deadline: expected Timeout_error from both engines (ast=%b bc=%b)"
      (a <> None) (b <> None)

(* -------------------------------------------------------------------- *)
(* 4. checked-in examples, plus recursive_bad under a fuel ceiling       *)

let examples () =
  let dir = "../../../examples" in
  let dir = if Sys.file_exists dir then dir else "examples" in
  let run_file name f =
    let path = Filename.concat dir name in
    if Sys.file_exists path then f path
    else Printf.eprintf "engine-diff: skipping missing %s\n" path
  in
  List.iter
    (fun name ->
      run_file name (fun path ->
          let ic = open_in path in
          let text = really_input_string ic (in_channel_length ic) in
          close_in ic;
          let m = Llvm_ir.Parser.parse_module text in
          let policy = { Qruntime.Resilience.no_retry with sleep = false } in
          let a =
            run_engine ~policy ~seed:11 ~backend:`Statevector ~engine:`Ast m
          in
          let b =
            run_engine ~policy ~seed:11 ~backend:`Statevector
              ~engine:`Bytecode m
          in
          if a.Qruntime.Executor.histogram <> b.Qruntime.Executor.histogram
          then
            fail "%s: histogram %s <> %s" name
              (hist_to_string a.Qruntime.Executor.histogram)
              (hist_to_string b.Qruntime.Executor.histogram)))
    [
      "bell_static.ll"; "bell_dynamic.ll"; "phi_addr.ll";
      "teleport_helpers.ll";
    ];
  (* recursive_bad: the fuel ceiling must trip with the identical error *)
  run_file "recursive_bad.ll" (fun path ->
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let m = Llvm_ir.Parser.parse_module text in
      let msg_of engine =
        match
          Qruntime.Executor.run ~seed:5 ~fuel:10 ~engine m
        with
        | _ -> None
        | exception Llvm_ir.Ir_error.Exec_error msg -> Some msg
      in
      match (msg_of `Ast, msg_of `Bytecode) with
      | Some ma, Some mb when ma = mb -> ()
      | Some ma, Some mb -> fail "recursive_bad fuel: %S <> %S" ma mb
      | a, b ->
        fail "recursive_bad fuel: expected Exec_error from both (ast=%b \
              bc=%b)"
          (a <> None) (b <> None))

let () =
  fuzzed_corpus ();
  faulty_subset ();
  deadline_parity ();
  examples ();
  Printf.printf
    "engine diff: %d fuzzed modules x %d shots + 30 faulty + deadline + \
     examples, %d divergences\n"
    circuits shots !failures;
  if !failures > 0 then exit 1
