(* Parallel-drain smoke: the multi-Domain service execution path under
   2x overload with injected backend faults.

   The same job set — cache-hot jobs, cache-cold fuzzed circuits, a
   transient-fault chaos tenant, an always-failing tenant and jobs
   whose budget is already expired — is submitted to two identically
   configured services at twice the queue capacity, then one is
   drained by a single loop and the other by four Domain drain loops
   claiming from the shared stride scheduler concurrently.

   Hard gates, any violation fails the run:
   - zero non-taxonomy errors: concurrent claiming/bookkeeping never
     lets a raw exception or an unstable error code onto the wire
     (every rejection/failure carries exit code 2..8);
   - per-job histograms bit-identical between 1 and 4 executors:
     seeding is per job, so executor parallelism may change timing and
     tiers, never results;
   - bookkeeping closes under contention: accepted = completed +
     failed + shed, the queue is empty, and no tenant leaks in-flight
     certified bytes (every charge is released exactly once even when
     four Domains race on completion);
   - the overload is real: rejections happened in both runs.

   Used by CI:  dune exec test/smoke/parallel_smoke.exe *)

open Qcircuit
open Qservice

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "parallel_smoke: %s\n" msg)
    fmt

let with_measurements (c : Circuit.t) =
  let b =
    Circuit.Build.create ~num_qubits:c.Circuit.num_qubits
      ~num_clbits:c.Circuit.num_qubits ()
  in
  List.iter
    (fun (op : Circuit.op) ->
      match op.Circuit.kind with
      | Circuit.Gate (g, qs) -> Circuit.Build.gate b g qs
      | _ -> ())
    c.Circuit.ops;
  for q = 0 to c.Circuit.num_qubits - 1 do
    Circuit.Build.measure b q q
  done;
  Circuit.Build.finish b

let cold_module seed =
  let n = 2 + (seed mod 4) in
  let gates = 8 + (seed mod 3 * 8) in
  Qir.Qir_builder.build
    (with_measurements (Generate.random ~seed ~parametric:false ~gates n))

let chaos_spec rate seed =
  `Faulty
    {
      Qsim.Faulty.default with
      Qsim.Faulty.gate_rate = rate;
      fault_seed = seed;
    }

let hot = Qir.Qir_builder.build (Generate.bell ())

let tenants = [ "hot"; "cold"; "chaos"; "badbot" ]

(* Submit the deterministic 2x-overload job set: the queue caps at 16,
   and ~32 jobs arrive before anything drains. Admission decisions are
   made in submission order, so both services accept and shed the same
   jobs; only the drain differs. *)
let submit_all svc =
  for wave = 0 to 7 do
    for i = 0 to 1 do
      let id = Printf.sprintf "hot-%d-%d" wave i in
      Service.submit svc ~tenant:"hot" ~id ~shots:24
        ~seed:(100 + (wave * 7) + i)
        hot
    done;
    let id = Printf.sprintf "cold-%d" wave in
    let seed = 1000 + (wave * 3) in
    Service.submit svc ~tenant:"cold" ~id ~shots:10 ~seed (cold_module seed);
    let id = Printf.sprintf "chaos-%d" wave in
    Service.submit svc ~tenant:"chaos" ~id ~shots:6 ~seed:(2000 + wave)
      ~backend:(chaos_spec 0.02 (3000 + wave))
      hot;
    if wave mod 3 = 0 then begin
      let id = Printf.sprintf "badbot-%d" wave in
      Service.submit svc ~tenant:"badbot" ~id ~shots:4
        ~backend:(chaos_spec 1.0 wave) hot
    end;
    if wave mod 4 = 0 then begin
      let id = Printf.sprintf "rushed-%d" wave in
      Service.submit svc ~tenant:"cold" ~id ~shots:4 ~timeout:0.0
        (cold_module (5000 + wave))
    end
  done

let run executors =
  let events = ref [] in
  let config =
    {
      Service.default_config with
      Service.max_queue = 16;
      max_tenant_queue = 16;
      overload_depth = 5;
      chunk = 7;
      retries = 6;
      breaker_threshold = 3;
      breaker_cooldown = 0.05;
      sleep = false;
    }
  in
  let svc =
    Service.create ~config ~emit:(fun ev -> events := ev :: !events) ()
  in
  submit_all svc;
  (try Service.drain_parallel ~executors svc
   with e ->
     fail "%d-executor drain raised a non-taxonomy exception: %s" executors
       (Printexc.to_string e));
  (svc, List.rev !events, Service.stats svc)

let check_gates label (svc, events, stats) =
  (* gate 1: only taxonomy-coded errors on the wire *)
  List.iter
    (fun ev ->
      let check_error where (e : Qruntime.Qir_error.t) =
        let code = Qruntime.Qir_error.exit_code e in
        if code < 2 || code > 8 then
          fail "%s: %s carries a non-taxonomy exit code %d (%s)" label where
            code e.Qruntime.Qir_error.message
      in
      match ev with
      | Service.Rejected { id; error; _ } ->
        check_error ("rejection of " ^ id) error
      | Service.Failed { id; error; _ } ->
        check_error ("failure of " ^ id) error
      | _ -> ())
    events;
  (* gate 3: bookkeeping closes and no in-flight bytes leak *)
  if stats.Service.queue_depth <> 0 then
    fail "%s: queue not drained: %d left" label stats.Service.queue_depth;
  if
    stats.Service.accepted
    <> stats.Service.completed + stats.Service.failed + stats.Service.shed
  then
    fail "%s: bookkeeping leak: accepted %d <> completed %d + failed %d + \
          shed %d"
      label stats.Service.accepted stats.Service.completed
      stats.Service.failed stats.Service.shed;
  if stats.Service.rejected = 0 then
    fail "%s: a 2x-overload run rejected nothing; overload never happened"
      label;
  List.iter
    (fun tenant ->
      let leaked = Service.inflight_bytes svc tenant in
      if leaked <> 0 then
        fail "%s: tenant %s leaked %d in-flight bytes after the drain" label
          tenant leaked)
    tenants;
  (* index results by job id for the cross-run parity gate *)
  List.filter_map
    (function
      | Service.Result { id; result; _ } ->
        Some
          ( id,
            ( result.Qruntime.Executor.histogram,
              result.Qruntime.Executor.completed ) )
      | _ -> None)
    events
  |> List.sort compare

let () =
  let single = check_gates "1-executor" (run 1) in
  let multi = check_gates "4-executor" (run 4) in
  (* gate 2: same completed job set, bit-identical per-job histograms *)
  if List.length single <> List.length multi then
    fail "result sets differ: %d jobs under 1 executor, %d under 4"
      (List.length single) (List.length multi)
  else
    List.iter2
      (fun (ida, (ha, ca)) (idb, (hb, cb)) ->
        if ida <> idb then fail "result id mismatch: %s vs %s" ida idb
        else if ha <> hb || ca <> cb then
          fail "histogram divergence on %s between 1 and 4 executors" ida)
      single multi;
  Printf.printf
    "parallel smoke: %d jobs completed under 1 and 4 executor Domains, %d \
     divergences\n"
    (List.length multi) !failures;
  if !failures > 0 then exit 1
