let () =
  Alcotest.run "qir_ocaml"
    [
      ("llvm_ir", Test_llvm_ir.suite);
      ("passes", Test_passes.suite);
      ("circuit", Test_circuit.suite);
      ("simulator", Test_simulator.suite);
      ("engine", Test_engine.suite);
      ("qir", Test_qir.suite);
      ("analysis", Test_analysis.suite);
      ("runtime", Test_runtime.suite);
      ("resilience", Test_resilience.suite);
      ("mapping", Test_mapping.suite);
      ("hybrid", Test_hybrid.suite);
      ("algorithms", Test_algorithms.suite);
      ("misc", Test_misc.suite);
      ("gateset", Test_gateset.suite);
      ("noise", Test_noise.suite);
      ("commute", Test_commute.suite);
      ("density", Test_density.suite);
      ("bytecode", Test_bytecode.suite);
      ("storage", Test_storage.suite);
      ("service", Test_service.suite);
    ]
