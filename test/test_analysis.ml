(* Tests for the dataflow engine and the QIR static analyses: qubit
   lifetime checking (QL001-QL004), dead-quantum-code analysis (QD001 /
   the quantum-dce pass), constant-address proofs (QA001, proved-static
   addressing upgrades) and the lint driver. *)

open Llvm_ir
open Qir
open Qruntime
open Qir_analysis

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let parse = Parser.parse_module

let rules ds = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.rule) ds
let has_rule r ds = List.mem r (rules ds)
let count_rule r ds = List.length (List.filter (String.equal r) (rules ds))

let count_calls_to m callee =
  List.fold_left
    (fun acc (f : Func.t) ->
      Func.fold_instrs f acc (fun acc (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Call (_, c, _) when String.equal c callee -> acc + 1
          | _ -> acc))
    0 m.Ir_module.funcs

(* ------------------------------------------------------------------ *)
(* The generic engine                                                   *)

(* A forward reachability problem with branch pruning: blocks behind a
   constant-false edge are never reached, and a diamond join merges the
   facts of both feasible predecessors. *)
module Labels = struct
  type t = Cfg.SSet.t

  let bottom = Cfg.SSet.empty
  let equal = Cfg.SSet.equal
  let join = Cfg.SSet.union
end

module FwdLabels = Dataflow.Forward (Labels)

let test_forward_join_and_pruning () =
  let m =
    parse
      {|
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  br i1 false, label %dead, label %exit
dead:
  br label %exit
exit:
  ret void
}|}
  in
  let f = Ir_module.find_func_exn m "f" in
  let cfg = Cfg.of_func f in
  let tf =
    {
      FwdLabels.instr = (fun _ _ fact -> fact);
      FwdLabels.term =
        (fun label term fact ->
          let fact = Cfg.SSet.add label fact in
          match term with
          | Instr.Cond_br (Operand.Const (Constant.Bool false), _, el) ->
            [ (el, fact) ]
          | _ -> FwdLabels.uniform_term label term fact);
    }
  in
  let res = FwdLabels.solve cfg tf in
  check bool_t "diamond join sees both arms" true
    (Cfg.SSet.equal
       (FwdLabels.block_in res "join")
       (Cfg.SSet.of_list [ "entry"; "a"; "b" ]));
  check bool_t "constant-false arm unreached" false
    (FwdLabels.reached res "dead");
  check bool_t "exit reached" true (FwdLabels.reached res "exit")

(* ------------------------------------------------------------------ *)
(* Lifetime analysis                                                    *)

let lint src = Lint.run (parse src)

let prelude =
  {|
declare ptr @__quantum__rt__qubit_allocate()
declare void @__quantum__rt__qubit_release(ptr)
declare ptr @__quantum__rt__qubit_allocate_array(i64)
declare void @__quantum__rt__qubit_release_array(ptr)
declare ptr @__quantum__rt__array_get_element_ptr_1d(ptr, i64)
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
declare void @__quantum__rt__result_record_output(ptr, ptr)
|}

let test_use_after_release () =
  let ds =
    lint
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__h__body(ptr %q)
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q)
  call void @__quantum__qis__x__body(ptr %q)
  ret void
}|})
  in
  check bool_t "QL001 reported" true (has_rule "QL001" ds)

let test_release_then_stop_is_clean () =
  let ds =
    lint
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__h__body(ptr %q)
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q)
  ret void
}|})
  in
  check int_t "no findings" 0 (List.length ds)

let test_double_release () =
  let ds =
    lint
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q)
  call void @__quantum__rt__qubit_release(ptr %q)
  ret void
}|})
  in
  check int_t "one QL002" 1 (count_rule "QL002" ds);
  check bool_t "no QL001 for the release itself" false (has_rule "QL001" ds)

let test_leak_and_array_release () =
  let ds =
    lint
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  %qs = call ptr @__quantum__rt__qubit_allocate_array(i64 2)
  %q0 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %qs, i64 0)
  call void @__quantum__qis__h__body(ptr %q0)
  call void @__quantum__qis__mz__body(ptr %q0, ptr null)
  ret void
}|})
  in
  check int_t "one QL003 leak" 1 (count_rule "QL003" ds);
  (* releasing the array silences it *)
  let ds' =
    lint
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  %qs = call ptr @__quantum__rt__qubit_allocate_array(i64 2)
  %q0 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %qs, i64 0)
  call void @__quantum__qis__h__body(ptr %q0)
  call void @__quantum__qis__mz__body(ptr %q0, ptr null)
  call void @__quantum__rt__qubit_release_array(ptr %qs)
  ret void
}|})
  in
  check int_t "no findings after release" 0 (List.length ds')

let test_read_before_measure () =
  let ds =
    lint
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
}|})
  in
  check int_t "one QL004" 1 (count_rule "QL004" ds);
  let ds' =
    lint
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  ret void
}|})
  in
  check bool_t "measured first is clean" false (has_rule "QL004" ds')

let test_branch_release_no_false_positive () =
  (* released on one path only: a later use is a maybe, not a definite
     use-after-release — no QL001; the path-dependent leak is a QL003 *)
  let ds =
    lint
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  br i1 %r, label %then, label %join
then:
  call void @__quantum__rt__qubit_release(ptr %q)
  br label %join
join:
  call void @__quantum__qis__x__body(ptr %q)
  ret void
}|})
  in
  check bool_t "no definite use-after-release" false (has_rule "QL001" ds);
  check bool_t "path-dependent leak reported" true (has_rule "QL003" ds)

let test_builder_output_is_clean () =
  List.iter
    (fun addressing ->
      let m =
        Qir_builder.build ~addressing (Qcircuit.Generate.bell ())
      in
      check int_t "builder module lints clean" 0
        (List.length (Lint.run ~notes:false m)))
    [ `Static; `Dynamic ]

(* ------------------------------------------------------------------ *)
(* Dead-quantum-code analysis / quantum-dce pass                        *)

let () = Quantum_dce.register ()

let deadgate_src =
  prelude
  ^ {|
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__x__body(ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  call void @__quantum__rt__result_record_output(ptr null, ptr null)
  ret void
}|}

let test_quantum_dce_removes_dead_gate () =
  let m = parse deadgate_src in
  check bool_t "QD001 reported" true (has_rule "QD001" (Lint.run m));
  let m' = Passes.Pipeline.run_pass "quantum-dce" m in
  check int_t "x removed" 0 (count_calls_to m' Names.(qis "x"));
  check int_t "h kept" 1 (count_calls_to m' Names.(qis "h"));
  (* removing the dead gate does not change the output distribution *)
  let hist = Executor.run_shots ~seed:7 ~shots:100 m in
  let hist' = Executor.run_shots ~seed:7 ~shots:100 m' in
  check bool_t "same histogram" true (hist = hist')

let test_quantum_dce_respects_entanglement () =
  let m =
    parse
      (prelude
     ^ {|
declare void @__quantum__qis__cnot__body(ptr, ptr)
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__cnot__body(ptr null, ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__mz__body(ptr inttoptr (i64 1 to ptr), ptr null)
  ret void
}|})
  in
  (* h acts on an unmeasured qubit, but its effect reaches the measured
     one through the cnot: nothing is removable *)
  check bool_t "nothing dead" false (has_rule "QD001" (Lint.run m));
  let m' = Passes.Pipeline.run_pass "quantum-dce" m in
  check int_t "h kept" 1 (count_calls_to m' Names.(qis "h"));
  check int_t "cnot kept" 1 (count_calls_to m' Names.(qis "cnot"))

(* ------------------------------------------------------------------ *)
(* Constant-address analysis and proved-static addressing               *)

let phi_addr_src =
  prelude
  ^ {|
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  br i1 %r, label %then, label %join
then:
  %a1 = add i64 0, 1
  br label %join
join:
  %addr = phi i64 [ 1, %entry ], [ %a1, %then ]
  %q = inttoptr i64 %addr to ptr
  call void @__quantum__qis__x__body(ptr %q)
  call void @__quantum__qis__mz__body(ptr %q, ptr inttoptr (i64 1 to ptr))
  ret void
}|}

let test_const_addr_proves_phi_static () =
  let m = parse phi_addr_src in
  let s = Const_addr.summarize m in
  check int_t "two operands proved" 2 s.Const_addr.proved_static;
  check int_t "none left dynamic" 0 s.Const_addr.dynamic;
  check int_t "two QA001 notes" 2 (count_rule "QA001" (Lint.run m))

let test_detect_proved_upgrade () =
  let m = parse phi_addr_src in
  let r = Addressing.detect_proved m in
  (* null-addressed gates next to the phi-computed one: syntactically
     the module mixes static and dynamic addressing *)
  check bool_t "syntactically mixed" true
    (r.Addressing.syntactic = Addressing.Mixed);
  check bool_t "proved static" true (r.Addressing.proved = Addressing.Static);
  check int_t "two upgraded operands" 2 r.Addressing.upgraded_args

let test_detect_ignores_dead_allocation () =
  (* the allocation sits in an unreachable block: the program's live
     addressing is static *)
  let m =
    parse
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
dead:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__h__body(ptr %q)
  ret void
}|})
  in
  check bool_t "dead allocate does not make it dynamic" true
    (Addressing.detect m = Addressing.Static)

let test_to_static_converts_where_syntactic_refuses () =
  let m = parse phi_addr_src in
  (* the seed's syntactic route rejects the phi outright *)
  check bool_t "parser refuses the phi" true
    (match Qir_parser.parse_result m with Error _ -> true | Ok _ -> false);
  (* the proved-constant rewrite converts it *)
  let m' = Addressing.to_static ~record_output:false m in
  check bool_t "now static" true (Addressing.detect m' = Addressing.Static);
  check bool_t "conforms base" true
    (Profile_check.conforms Profile.Base m');
  (* and the observable behavior is unchanged: qubit 1 is always
     flipped, qubit 0 stays uniform *)
  let shots = 300 in
  let hist = Executor.run_shots ~seed:13 ~shots m in
  let hist' = Executor.run_shots ~seed:29 ~shots m' in
  let count key h = Option.value ~default:0 (List.assoc_opt key h) in
  List.iter
    (fun h ->
      check int_t "only 01 and 11" shots (count "01" h + count "11" h))
    [ hist; hist' ];
  let frac h key = float_of_int (count key h) /. float_of_int shots in
  check bool_t "p(01) close" true
    (Float.abs (frac hist "01" -. frac hist' "01") < 0.15)

let test_profile_check_consumes_proofs () =
  (* a single-block program with a computed — but provably constant —
     address: base:static-addresses must not fire (the remaining
     classical-computation violations are expected) *)
  let m =
    parse
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  %a = add i64 0, 1
  %q = inttoptr i64 %a to ptr
  call void @__quantum__qis__h__body(ptr %q)
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  ret void
}|})
  in
  let vs = Profile_check.check Profile.Base m in
  check bool_t "no static-addresses violation" false
    (List.exists
       (fun (v : Profile_check.violation) ->
         String.equal v.Profile_check.rule "base:static-addresses")
       vs);
  check bool_t "classical computation still flagged" true
    (List.exists
       (fun (v : Profile_check.violation) ->
         String.equal v.Profile_check.rule "base:no-classical")
       vs)

(* ------------------------------------------------------------------ *)
(* Verifier and the lint driver                                         *)

let test_verifier_reports_all_phi_mismatches () =
  let m =
    parse
      {|
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %x = phi i64 [ 1, %a ], [ 2, %a ], [ 3, %nosuchpred ]
  ret void
}|}
  in
  let f = Ir_module.find_func_exn m "f" in
  let vs = Verifier.check_func m f in
  let whats = List.map (fun (v : Verifier.violation) -> v.Verifier.what) vs in
  let mem sub =
    List.exists
      (fun w -> Astring.String.is_infix ~affix:sub w)
      whats
  in
  check bool_t "duplicate entries reported" true (mem "duplicate entries");
  check bool_t "missing predecessor reported" true (mem "missing an entry");
  check bool_t "non-predecessor entry reported" true (mem "non-predecessor")

let test_lint_structural_short_circuit () =
  let m =
    parse
      {|
declare void @__quantum__qis__h__body(ptr)
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr %undefined)
  ret void
}|}
  in
  let ds = Lint.run m in
  check bool_t "QV001 reported" true (has_rule "QV001" ds);
  check bool_t "only structural findings" true
    (List.for_all (String.equal "QV001") (rules ds))

let suite =
  [
    Alcotest.test_case "engine: forward join and pruning" `Quick
      test_forward_join_and_pruning;
    Alcotest.test_case "lifetime: use after release" `Quick
      test_use_after_release;
    Alcotest.test_case "lifetime: release is clean" `Quick
      test_release_then_stop_is_clean;
    Alcotest.test_case "lifetime: double release" `Quick test_double_release;
    Alcotest.test_case "lifetime: leak and array release" `Quick
      test_leak_and_array_release;
    Alcotest.test_case "lifetime: read before measure" `Quick
      test_read_before_measure;
    Alcotest.test_case "lifetime: branch release, no false positive" `Quick
      test_branch_release_no_false_positive;
    Alcotest.test_case "lifetime: builder output is clean" `Quick
      test_builder_output_is_clean;
    Alcotest.test_case "quantum-dce: removes dead gate" `Quick
      test_quantum_dce_removes_dead_gate;
    Alcotest.test_case "quantum-dce: respects entanglement" `Quick
      test_quantum_dce_respects_entanglement;
    Alcotest.test_case "const-addr: proves phi static" `Quick
      test_const_addr_proves_phi_static;
    Alcotest.test_case "const-addr: detect_proved upgrade" `Quick
      test_detect_proved_upgrade;
    Alcotest.test_case "addressing: dead allocate ignored" `Quick
      test_detect_ignores_dead_allocation;
    Alcotest.test_case "addressing: to_static via proofs" `Quick
      test_to_static_converts_where_syntactic_refuses;
    Alcotest.test_case "profile-check: consumes proofs" `Quick
      test_profile_check_consumes_proofs;
    Alcotest.test_case "verifier: all phi mismatches" `Quick
      test_verifier_reports_all_phi_mismatches;
    Alcotest.test_case "lint: structural short-circuit" `Quick
      test_lint_structural_short_circuit;
  ]
