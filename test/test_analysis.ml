(* Tests for the dataflow engine and the QIR static analyses: qubit
   lifetime checking (QL001-QL004), dead-quantum-code analysis (QD001 /
   the quantum-dce pass), constant-address proofs (QA001, proved-static
   addressing upgrades) and the lint driver. *)

open Llvm_ir
open Qir
open Qruntime
open Qir_analysis

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let parse = Parser.parse_module

let rules ds = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.rule) ds
let has_rule r ds = List.mem r (rules ds)
let count_rule r ds = List.length (List.filter (String.equal r) (rules ds))

let count_calls_to m callee =
  List.fold_left
    (fun acc (f : Func.t) ->
      Func.fold_instrs f acc (fun acc (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Call (_, c, _) when String.equal c callee -> acc + 1
          | _ -> acc))
    0 m.Ir_module.funcs

(* ------------------------------------------------------------------ *)
(* The generic engine                                                   *)

(* A forward reachability problem with branch pruning: blocks behind a
   constant-false edge are never reached, and a diamond join merges the
   facts of both feasible predecessors. *)
module Labels = struct
  type t = Cfg.SSet.t

  let bottom = Cfg.SSet.empty
  let equal = Cfg.SSet.equal
  let join = Cfg.SSet.union
end

module FwdLabels = Dataflow.Forward (Labels)

let test_forward_join_and_pruning () =
  let m =
    parse
      {|
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  br i1 false, label %dead, label %exit
dead:
  br label %exit
exit:
  ret void
}|}
  in
  let f = Ir_module.find_func_exn m "f" in
  let cfg = Cfg.of_func f in
  let tf =
    {
      FwdLabels.instr = (fun _ _ fact -> fact);
      FwdLabels.term =
        (fun label term fact ->
          let fact = Cfg.SSet.add label fact in
          match term with
          | Instr.Cond_br (Operand.Const (Constant.Bool false), _, el) ->
            [ (el, fact) ]
          | _ -> FwdLabels.uniform_term label term fact);
    }
  in
  let res = FwdLabels.solve cfg tf in
  check bool_t "diamond join sees both arms" true
    (Cfg.SSet.equal
       (FwdLabels.block_in res "join")
       (Cfg.SSet.of_list [ "entry"; "a"; "b" ]));
  check bool_t "constant-false arm unreached" false
    (FwdLabels.reached res "dead");
  check bool_t "exit reached" true (FwdLabels.reached res "exit")

(* ------------------------------------------------------------------ *)
(* Lifetime analysis                                                    *)

let lint src = Lint.run (parse src)

let prelude =
  {|
declare ptr @__quantum__rt__qubit_allocate()
declare void @__quantum__rt__qubit_release(ptr)
declare ptr @__quantum__rt__qubit_allocate_array(i64)
declare void @__quantum__rt__qubit_release_array(ptr)
declare ptr @__quantum__rt__array_get_element_ptr_1d(ptr, i64)
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__x__body(ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)
declare i1 @__quantum__qis__read_result__body(ptr)
declare void @__quantum__rt__result_record_output(ptr, ptr)
|}

let test_use_after_release () =
  let ds =
    lint
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__h__body(ptr %q)
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q)
  call void @__quantum__qis__x__body(ptr %q)
  ret void
}|})
  in
  check bool_t "QL001 reported" true (has_rule "QL001" ds)

let test_release_then_stop_is_clean () =
  let ds =
    lint
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__h__body(ptr %q)
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q)
  ret void
}|})
  in
  (* quantum-opt may note the module promotable (QO004); only errors
     and warnings count against cleanliness *)
  check int_t "no errors or warnings" 0
    (Diagnostic.errors ds + Diagnostic.warnings ds)

let test_double_release () =
  let ds =
    lint
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q)
  call void @__quantum__rt__qubit_release(ptr %q)
  ret void
}|})
  in
  check int_t "one QL002" 1 (count_rule "QL002" ds);
  check bool_t "no QL001 for the release itself" false (has_rule "QL001" ds)

let test_leak_and_array_release () =
  let ds =
    lint
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  %qs = call ptr @__quantum__rt__qubit_allocate_array(i64 2)
  %q0 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %qs, i64 0)
  call void @__quantum__qis__h__body(ptr %q0)
  call void @__quantum__qis__mz__body(ptr %q0, ptr null)
  ret void
}|})
  in
  check int_t "one QL003 leak" 1 (count_rule "QL003" ds);
  (* releasing the array silences it *)
  let ds' =
    lint
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  %qs = call ptr @__quantum__rt__qubit_allocate_array(i64 2)
  %q0 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %qs, i64 0)
  call void @__quantum__qis__h__body(ptr %q0)
  call void @__quantum__qis__mz__body(ptr %q0, ptr null)
  call void @__quantum__rt__qubit_release_array(ptr %qs)
  ret void
}|})
  in
  check int_t "no errors or warnings after release" 0
    (Diagnostic.errors ds' + Diagnostic.warnings ds')

let test_read_before_measure () =
  let ds =
    lint
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
}|})
  in
  check int_t "one QL004" 1 (count_rule "QL004" ds);
  let ds' =
    lint
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  ret void
}|})
  in
  check bool_t "measured first is clean" false (has_rule "QL004" ds')

let test_branch_release_no_false_positive () =
  (* released on one path only: a later use is a maybe, not a definite
     use-after-release — no QL001; the path-dependent leak is a QL003 *)
  let ds =
    lint
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  br i1 %r, label %then, label %join
then:
  call void @__quantum__rt__qubit_release(ptr %q)
  br label %join
join:
  call void @__quantum__qis__x__body(ptr %q)
  ret void
}|})
  in
  check bool_t "no definite use-after-release" false (has_rule "QL001" ds);
  check bool_t "path-dependent leak reported" true (has_rule "QL003" ds)

let test_builder_output_is_clean () =
  List.iter
    (fun addressing ->
      let m =
        Qir_builder.build ~addressing (Qcircuit.Generate.bell ())
      in
      check int_t "builder module lints clean" 0
        (List.length (Lint.run ~notes:false m)))
    [ `Static; `Dynamic ]

(* ------------------------------------------------------------------ *)
(* Dead-quantum-code analysis / quantum-dce pass                        *)

let () = Quantum_dce.register ()

let deadgate_src =
  prelude
  ^ {|
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__x__body(ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  call void @__quantum__rt__result_record_output(ptr null, ptr null)
  ret void
}|}

let test_quantum_dce_removes_dead_gate () =
  let m = parse deadgate_src in
  check bool_t "QD001 reported" true (has_rule "QD001" (Lint.run m));
  let m' = Passes.Pipeline.run_pass "quantum-dce" m in
  check int_t "x removed" 0 (count_calls_to m' Names.(qis "x"));
  check int_t "h kept" 1 (count_calls_to m' Names.(qis "h"));
  (* removing the dead gate does not change the output distribution *)
  let hist = Executor.run_shots ~seed:7 ~shots:100 m in
  let hist' = Executor.run_shots ~seed:7 ~shots:100 m' in
  check bool_t "same histogram" true (hist = hist')

let test_quantum_dce_respects_entanglement () =
  let m =
    parse
      (prelude
     ^ {|
declare void @__quantum__qis__cnot__body(ptr, ptr)
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__cnot__body(ptr null, ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__mz__body(ptr inttoptr (i64 1 to ptr), ptr null)
  ret void
}|})
  in
  (* h acts on an unmeasured qubit, but its effect reaches the measured
     one through the cnot: nothing is removable *)
  check bool_t "nothing dead" false (has_rule "QD001" (Lint.run m));
  let m' = Passes.Pipeline.run_pass "quantum-dce" m in
  check int_t "h kept" 1 (count_calls_to m' Names.(qis "h"));
  check int_t "cnot kept" 1 (count_calls_to m' Names.(qis "cnot"))

(* ------------------------------------------------------------------ *)
(* Constant-address analysis and proved-static addressing               *)

let phi_addr_src =
  prelude
  ^ {|
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  %r = call i1 @__quantum__qis__read_result__body(ptr null)
  br i1 %r, label %then, label %join
then:
  %a1 = add i64 0, 1
  br label %join
join:
  %addr = phi i64 [ 1, %entry ], [ %a1, %then ]
  %q = inttoptr i64 %addr to ptr
  call void @__quantum__qis__x__body(ptr %q)
  call void @__quantum__qis__mz__body(ptr %q, ptr inttoptr (i64 1 to ptr))
  ret void
}|}

let test_const_addr_proves_phi_static () =
  let m = parse phi_addr_src in
  let s = Const_addr.summarize m in
  check int_t "two operands proved" 2 s.Const_addr.proved_static;
  check int_t "none left dynamic" 0 s.Const_addr.dynamic;
  check int_t "two QA001 notes" 2 (count_rule "QA001" (Lint.run m))

let test_detect_proved_upgrade () =
  let m = parse phi_addr_src in
  let r = Addressing.detect_proved m in
  (* null-addressed gates next to the phi-computed one: syntactically
     the module mixes static and dynamic addressing *)
  check bool_t "syntactically mixed" true
    (r.Addressing.syntactic = Addressing.Mixed);
  check bool_t "proved static" true (r.Addressing.proved = Addressing.Static);
  check int_t "two upgraded operands" 2 r.Addressing.upgraded_args

let test_detect_ignores_dead_allocation () =
  (* the allocation sits in an unreachable block: the program's live
     addressing is static *)
  let m =
    parse
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
dead:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__h__body(ptr %q)
  ret void
}|})
  in
  check bool_t "dead allocate does not make it dynamic" true
    (Addressing.detect m = Addressing.Static)

let test_to_static_converts_where_syntactic_refuses () =
  let m = parse phi_addr_src in
  (* the seed's syntactic route rejects the phi outright *)
  check bool_t "parser refuses the phi" true
    (match Qir_parser.parse_result m with Error _ -> true | Ok _ -> false);
  (* the proved-constant rewrite converts it *)
  let m' = Addressing.to_static ~record_output:false m in
  check bool_t "now static" true (Addressing.detect m' = Addressing.Static);
  check bool_t "conforms base" true
    (Profile_check.conforms Profile.Base m');
  (* and the observable behavior is unchanged: qubit 1 is always
     flipped, qubit 0 stays uniform *)
  let shots = 300 in
  let hist = Executor.run_shots ~seed:13 ~shots m in
  let hist' = Executor.run_shots ~seed:29 ~shots m' in
  let count key h = Option.value ~default:0 (List.assoc_opt key h) in
  List.iter
    (fun h ->
      check int_t "only 01 and 11" shots (count "01" h + count "11" h))
    [ hist; hist' ];
  let frac h key = float_of_int (count key h) /. float_of_int shots in
  check bool_t "p(01) close" true
    (Float.abs (frac hist "01" -. frac hist' "01") < 0.15)

let test_profile_check_consumes_proofs () =
  (* a single-block program with a computed — but provably constant —
     address: base:static-addresses must not fire (the remaining
     classical-computation violations are expected) *)
  let m =
    parse
      (prelude
     ^ {|
define void @main() "entry_point" {
entry:
  %a = add i64 0, 1
  %q = inttoptr i64 %a to ptr
  call void @__quantum__qis__h__body(ptr %q)
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  ret void
}|})
  in
  let vs = Profile_check.check Profile.Base m in
  check bool_t "no static-addresses violation" false
    (List.exists
       (fun (v : Profile_check.violation) ->
         String.equal v.Profile_check.rule "base:static-addresses")
       vs);
  check bool_t "classical computation still flagged" true
    (List.exists
       (fun (v : Profile_check.violation) ->
         String.equal v.Profile_check.rule "base:no-classical")
       vs)

(* ------------------------------------------------------------------ *)
(* Verifier and the lint driver                                         *)

let test_verifier_reports_all_phi_mismatches () =
  let m =
    parse
      {|
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %x = phi i64 [ 1, %a ], [ 2, %a ], [ 3, %nosuchpred ]
  ret void
}|}
  in
  let f = Ir_module.find_func_exn m "f" in
  let vs = Verifier.check_func m f in
  let whats = List.map (fun (v : Verifier.violation) -> v.Verifier.what) vs in
  let mem sub =
    List.exists
      (fun w -> Astring.String.is_infix ~affix:sub w)
      whats
  in
  check bool_t "duplicate entries reported" true (mem "duplicate entries");
  check bool_t "missing predecessor reported" true (mem "missing an entry");
  check bool_t "non-predecessor entry reported" true (mem "non-predecessor")

let test_lint_structural_short_circuit () =
  let m =
    parse
      {|
declare void @__quantum__qis__h__body(ptr)
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr %undefined)
  ret void
}|}
  in
  let ds = Lint.run m in
  check bool_t "QV001 reported" true (has_rule "QV001" ds);
  check bool_t "only structural findings" true
    (List.for_all (String.equal "QV001") (rules ds))

(* ------------------------------------------------------------------ *)
(* Call graph                                                           *)

let diamond_with_orphan =
  prelude
  ^ {|
define void @leaf(ptr %q) {
entry:
  call void @__quantum__qis__h__body(ptr %q)
  ret void
}
define void @mid(ptr %q) {
entry:
  call void @leaf(ptr %q)
  ret void
}
define void @orphan(ptr %q) {
entry:
  call void @__quantum__qis__x__body(ptr %q)
  ret void
}
define void @main() "entry_point" {
entry:
  call void @mid(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
}|}

let test_call_graph_basics () =
  let m = parse diamond_with_orphan in
  let cg = Call_graph.build m in
  let order = List.concat (Call_graph.sccs_bottom_up cg) in
  let pos name =
    let rec go i = function
      | [] -> Alcotest.failf "%s not in SCC order" name
      | n :: _ when String.equal n name -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 order
  in
  check bool_t "callee before caller (leaf < mid)" true (pos "leaf" < pos "mid");
  check bool_t "callee before caller (mid < main)" true (pos "mid" < pos "main");
  check bool_t "no recursion" false (Call_graph.is_recursive cg "mid");
  check bool_t "orphan unreachable" true
    (Call_graph.unreachable_defined cg = [ "orphan" ]);
  let ds = Call_graph.findings cg in
  check int_t "one QC001" 1 (count_rule "QC001" ds);
  check int_t "no QP001" 0 (count_rule "QP001" ds)

let test_call_graph_mutual_recursion () =
  let m =
    parse
      (prelude
     ^ {|
define void @ping(ptr %q, i64 %n) {
entry:
  call void @pong(ptr %q, i64 %n)
  ret void
}
define void @pong(ptr %q, i64 %n) {
entry:
  call void @ping(ptr %q, i64 %n)
  ret void
}
define void @main() "entry_point" {
entry:
  call void @ping(ptr null, i64 2)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
}|})
  in
  let cg = Call_graph.build m in
  check bool_t "ping recursive" true (Call_graph.is_recursive cg "ping");
  check bool_t "pong recursive" true (Call_graph.is_recursive cg "pong");
  check bool_t "main not recursive" false (Call_graph.is_recursive cg "main");
  (* the mutual pair is one SCC and is reported once per function *)
  check int_t "two QP001" 2 (count_rule "QP001" (Call_graph.findings cg));
  (* whole-module lint surfaces the same rule *)
  check bool_t "lint reports QP001" true (has_rule "QP001" (Lint.run m))

(* ------------------------------------------------------------------ *)
(* Function effect summaries                                            *)

let releasing_helper_src ~use_after =
  prelude
  ^ {|
define void @free_it(ptr %q) {
entry:
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q)
  ret void
}
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__h__body(ptr %q)
  call void @free_it(ptr %q)
|}
  ^ (if use_after then "  call void @__quantum__qis__x__body(ptr %q)\n" else "")
  ^ {|  ret void
}|}

let test_summary_release_and_purity () =
  let m = parse (releasing_helper_src ~use_after:false) in
  let tbl = Summary.of_module m in
  let s =
    match Summary.find tbl "free_it" with
    | Some s -> s
    | None -> Alcotest.fail "no summary for @free_it"
  in
  check bool_t "argument released on every path" true
    s.Summary.arg_fx.(0).Summary.fx_released;
  check bool_t "argument consumed" true s.Summary.arg_fx.(0).Summary.fx_used;
  check bool_t "measures" true s.Summary.measures;
  check bool_t "not opaque" false s.Summary.opaque;
  (* a pure classical helper is quantum-free and side-effect-free *)
  let m2 =
    parse
      {|
define i64 @twice(i64 %x) {
entry:
  %y = add i64 %x, %x
  ret i64 %y
}
define void @main() "entry_point" {
entry:
  %t = call i64 @twice(i64 3)
  ret void
}|}
  in
  let tbl2 = Summary.of_module m2 in
  (match Summary.find tbl2 "twice" with
  | Some s ->
    check bool_t "quantum free" true (Summary.quantum_free s);
    check bool_t "side-effect free" true s.Summary.side_effect_free;
    check bool_t "controller expressible" true s.Summary.controller_ok
  | None -> Alcotest.fail "no summary for @twice")

let test_summary_returns_fresh_qubit () =
  let m =
    parse
      (prelude
     ^ {|
define ptr @make_q() {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__h__body(ptr %q)
  ret ptr %q
}
define void @main() "entry_point" {
entry:
  %q = call ptr @make_q()
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q)
  ret void
}|})
  in
  let tbl = Summary.of_module m in
  (match Summary.find tbl "make_q" with
  | Some s ->
    check bool_t "returns fresh qubit" true s.Summary.returns_fresh_qubit
  | None -> Alcotest.fail "no summary for @make_q");
  check int_t "caller releasing the returned qubit is clean" 0
    (List.length (Lint.run ~notes:false m))

(* ------------------------------------------------------------------ *)
(* Cross-call lifetime rules                                            *)

let test_cross_call_use_after_release () =
  let ds = lint (releasing_helper_src ~use_after:true) in
  check bool_t "QL001 through the summary" true (has_rule "QL001" ds);
  (* without the use, the helper-released qubit is fine (no QL003: the
     callee released it for us) *)
  check int_t "correct caller is clean" 0
    (List.length (lint (releasing_helper_src ~use_after:false)))

let test_cross_call_double_release () =
  let ds =
    lint
      (prelude
     ^ {|
define void @free_it(ptr %q) {
entry:
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q)
  ret void
}
define void @main() "entry_point" {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @free_it(ptr %q)
  call void @__quantum__rt__qubit_release(ptr %q)
  ret void
}|})
  in
  check int_t "one QL002 through the summary" 1 (count_rule "QL002" ds)

let test_cross_call_leak_of_returned_qubit () =
  let factory leak =
    prelude
    ^ {|
define ptr @make_q() {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  ret ptr %q
}
define void @main() "entry_point" {
entry:
  %q = call ptr @make_q()
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
|}
    ^ (if leak then ""
       else "  call void @__quantum__rt__qubit_release(ptr %q)\n")
    ^ {|  ret void
}|}
  in
  check bool_t "leaked factory qubit" true (has_rule "QL003" (lint (factory true)));
  check bool_t "released factory qubit is clean" false
    (has_rule "QL003" (lint (factory false)))

let test_helper_bodies_are_checked_too () =
  (* a double release inside a non-entry helper is reported even though
     no one calls the helper bug into the entry path *)
  let ds =
    lint
      (prelude
     ^ {|
define void @bad_helper() {
entry:
  %q = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__mz__body(ptr %q, ptr null)
  call void @__quantum__rt__qubit_release(ptr %q)
  call void @__quantum__rt__qubit_release(ptr %q)
  ret void
}
define void @main() "entry_point" {
entry:
  call void @bad_helper()
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
}|})
  in
  check bool_t "QL002 inside the helper" true (has_rule "QL002" ds)

(* ------------------------------------------------------------------ *)
(* Interprocedural dead quantum code (QD002) and whole-function DCE     *)

let test_qd002_dead_classical_call () =
  let src used =
    prelude
    ^ {|
define i64 @twice(i64 %x) {
entry:
  %y = add i64 %x, %x
  ret i64 %y
}
define void @main() "entry_point" {
entry:
  %t = call i64 @twice(i64 3)
|}
    ^ (if used then
         "  %addr = inttoptr i64 %t to ptr\n\
          \  call void @__quantum__qis__mz__body(ptr %addr, ptr null)\n"
       else "  call void @__quantum__qis__mz__body(ptr null, ptr null)\n")
    ^ {|  ret void
}|}
  in
  check bool_t "unused pure call is QD002" true
    (has_rule "QD002" (lint (src false)));
  check bool_t "used result keeps the call" false
    (has_rule "QD002" (lint (src true)))

let test_qd002_dead_unitary_helper () =
  let src measured =
    prelude
    ^ {|
define void @spin(ptr %q) {
entry:
  call void @__quantum__qis__h__body(ptr %q)
  ret void
}
define void @main() "entry_point" {
entry:
  %q0 = call ptr @__quantum__rt__qubit_allocate()
  %q1 = call ptr @__quantum__rt__qubit_allocate()
  call void @spin(ptr %q1)
  call void @__quantum__qis__mz__body(ptr %q0, ptr null)
|}
    ^ (if measured then
         "  call void @__quantum__qis__mz__body(ptr %q1, ptr inttoptr (i64 1 \
          to ptr))\n"
       else "")
    ^ {|  call void @__quantum__rt__qubit_release(ptr %q0)
  call void @__quantum__rt__qubit_release(ptr %q1)
  ret void
}|}
  in
  check bool_t "helper on unmeasured qubit is QD002" true
    (has_rule "QD002" (lint (src false)));
  check bool_t "measured qubit keeps the call" false
    (has_rule "QD002" (lint (src true)))

let test_quantum_dce_drops_unreachable_function () =
  let m = parse diamond_with_orphan in
  check bool_t "QC001 before the pass" true (has_rule "QC001" (Lint.run m));
  let m' = Passes.Pipeline.run_pass "quantum-dce" m in
  check bool_t "orphan dropped" true
    (Ir_module.find_func m' "orphan" = None);
  check bool_t "reachable helpers kept" true
    (Ir_module.find_func m' "mid" <> None
    && Ir_module.find_func m' "leaf" <> None);
  check bool_t "clean after the pass" false (has_rule "QC001" (Lint.run m'))

(* ------------------------------------------------------------------ *)
(* Interprocedural constant addresses and profile checking              *)

let threaded_addr_src =
  prelude
  ^ {|
define void @apply_x(i64 %addr) {
entry:
  %q = inttoptr i64 %addr to ptr
  call void @__quantum__qis__x__body(ptr %q)
  ret void
}
define void @mid(i64 %a) {
entry:
  call void @apply_x(i64 %a)
  ret void
}
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @mid(i64 1)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  call void @__quantum__qis__mz__body(ptr inttoptr (i64 1 to ptr), ptr inttoptr (i64 1 to ptr))
  ret void
}|}

let test_const_addr_through_calls () =
  let m = parse threaded_addr_src in
  (* the constant 1 reaches @apply_x's address through two call sites *)
  let r = Addressing.detect_proved m in
  check bool_t "proved static" true (r.Addressing.proved = Addressing.Static);
  check bool_t "at least one upgraded operand" true
    (r.Addressing.upgraded_args >= 1)

let test_to_static_through_calls () =
  let m = parse threaded_addr_src in
  check bool_t "syntactic route refuses" true
    (match Qir_parser.parse_result m with Error _ -> true | Ok _ -> false);
  let m' = Addressing.to_static ~record_output:false m in
  check bool_t "now static" true (Addressing.detect m' = Addressing.Static);
  check bool_t "conforms base" true (Profile_check.conforms Profile.Base m');
  (* distribution equivalence: qubit 1 always flipped, qubit 0 uniform *)
  let shots = 300 in
  let hist = Executor.run_shots ~seed:11 ~shots m in
  let hist' = Executor.run_shots ~seed:23 ~shots m' in
  let count key h = Option.value ~default:0 (List.assoc_opt key h) in
  List.iter
    (fun h ->
      check int_t "only 01 and 11" shots (count "01" h + count "11" h))
    [ hist; hist' ];
  let frac h key = float_of_int (count key h) /. float_of_int shots in
  check bool_t "p(01) close" true
    (Float.abs (frac hist "01" -. frac hist' "01") < 0.15)

let test_adaptive_profile_interprocedural () =
  (* calls to defined conforming helpers are fine under adaptive... *)
  let ok =
    parse
      (prelude
     ^ {|
define void @helper(ptr %q) {
entry:
  call void @__quantum__qis__h__body(ptr %q)
  ret void
}
define void @main() "entry_point" {
entry:
  call void @helper(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
}|})
  in
  check bool_t "internal call conforms" true
    (Profile_check.conforms Profile.Adaptive ok);
  (* ...but recursion has no lowering to any profile *)
  let rec_m =
    parse
      ({|define void @loop(i64 %n) {
entry:
  call void @loop(i64 %n)
  ret void
}
define void @main() "entry_point" {
entry:
  call void @loop(i64 4)
  ret void
}|})
  in
  check bool_t "recursion violates adaptive" true
    (List.exists
       (fun (v : Profile_check.violation) ->
         String.equal v.Profile_check.rule "adaptive:no-recursion")
       (Profile_check.check Profile.Adaptive rec_m))

let test_classify_with_summaries () =
  let m = parse (releasing_helper_src ~use_after:false) in
  let summaries = Summary.of_module m in
  let f = Ir_module.find_func_exn m "main" in
  let call_to name =
    Func.fold_instrs f None (fun acc (i : Instr.t) ->
        match i.Instr.op with
        | Instr.Call (_, c, _) when String.equal c name -> Some i
        | _ -> acc)
    |> Option.get
  in
  (* without summaries a defined callee is an opaque classical call;
     with them, its quantum effects are visible *)
  check bool_t "opaque without summaries" true
    (Qhybrid.Classify.classify_instr (call_to "free_it")
    = Qhybrid.Classify.Call_classical);
  check bool_t "quantum with summaries" true
    (Qhybrid.Classify.classify_instr ~summaries (call_to "free_it")
    = Qhybrid.Classify.Quantum)

(* ------------------------------------------------------------------ *)
(* Value-semantics quantum optimizer (qdf / qdf_opt)                    *)

let () = Qdf_opt.register ()

let opt_prelude =
  prelude
  ^ {|
declare void @__quantum__qis__rz__body(double, ptr)
declare void @__quantum__qis__cnot__body(ptr, ptr)
declare i64 @choose()
|}

let run_opt = Passes.Pipeline.run_pass "quantum-opt"

(* Bit-identical histograms, per-shot sampling: the batched sampler
   draws in a different order, so exact equality needs ~batch:false. *)
let same_histogram ?(seed = 11) ?(shots = 64) m m' =
  Executor.run_shots ~seed ~batch:false ~shots m
  = Executor.run_shots ~seed ~batch:false ~shots m'

let test_qopt_cancel_across_classical () =
  let m =
    parse
      (opt_prelude
     ^ {|
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  %a = add i64 1, 2
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  call void @__quantum__rt__result_record_output(ptr null, ptr null)
  ret void
}|})
  in
  check bool_t "QO001 noted" true (has_rule "QO001" (Lint.run m));
  let m' = run_opt m in
  check int_t "both h removed" 0 (count_calls_to m' Names.(qis "h"));
  check bool_t "same histogram" true (same_histogram m m')

let test_qopt_merges_rotations () =
  let m =
    parse
      (opt_prelude
     ^ {|
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__rz__body(double 0.25, ptr null)
  call void @__quantum__qis__rz__body(double 0.5, ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  call void @__quantum__rt__result_record_output(ptr null, ptr null)
  ret void
}|})
  in
  check bool_t "QO002 noted" true (has_rule "QO002" (Lint.run m));
  let m' = run_opt m in
  check int_t "one rz left" 1 (count_calls_to m' Names.(qis "rz"));
  check bool_t "same histogram" true (same_histogram m m')

let test_qopt_merge_to_identity () =
  let m =
    parse
      (opt_prelude
     ^ {|
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__rz__body(double 0.5, ptr null)
  call void @__quantum__qis__rz__body(double -0.5, ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
}|})
  in
  let m' = run_opt m in
  check int_t "identity pair removed" 0 (count_calls_to m' Names.(qis "rz"))

let test_qopt_merge_across_blocks_refused () =
  (* the scan is per-block by design: a rotation pair split across a
     branch is left alone even though the blocks are Br-connected *)
  let m =
    parse
      (opt_prelude
     ^ {|
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__rz__body(double 0.25, ptr null)
  br label %next
next:
  call void @__quantum__qis__rz__body(double 0.5, ptr null)
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  ret void
}|})
  in
  let m' = run_opt m in
  check int_t "cross-block merge refused" 2 (count_calls_to m' Names.(qis "rz"))

let test_qopt_alias_uncertain_refused () =
  (* %p is an array element at an unprovable index: it may or may not
     be the wire the surrounding h gates act on, so neither cancelling
     the outer pair nor commuting through the middle gate is sound *)
  let m =
    parse
      (opt_prelude
     ^ {|
define void @main() "entry_point" {
entry:
  %arr = call ptr @__quantum__rt__qubit_allocate_array(i64 2)
  %p0 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %arr, i64 0)
  %i = call i64 @choose()
  %p = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %arr, i64 %i)
  call void @__quantum__qis__h__body(ptr %p0)
  call void @__quantum__qis__h__body(ptr %p)
  call void @__quantum__qis__h__body(ptr %p0)
  call void @__quantum__qis__mz__body(ptr %p0, ptr null)
  call void @__quantum__rt__qubit_release_array(ptr %arr)
  ret void
}|})
  in
  let m' = run_opt m in
  check int_t "alias-uncertain: nothing removed" 3
    (count_calls_to m' Names.(qis "h"))

let test_qopt_commute_cancel () =
  (* x on the cnot target commutes with the cnot, so the pair cancels
     across it *)
  let m =
    parse
      (opt_prelude
     ^ {|
define void @main() "entry_point" {
entry:
  call void @__quantum__qis__x__body(ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__cnot__body(ptr null, ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__x__body(ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__mz__body(ptr null, ptr null)
  call void @__quantum__qis__mz__body(ptr inttoptr (i64 1 to ptr), ptr inttoptr (i64 1 to ptr))
  call void @__quantum__rt__result_record_output(ptr null, ptr null)
  call void @__quantum__rt__result_record_output(ptr inttoptr (i64 1 to ptr), ptr null)
  ret void
}|})
  in
  let m' = run_opt m in
  check int_t "x pair cancelled through cnot" 0
    (count_calls_to m' Names.(qis "x"));
  check int_t "cnot kept" 1 (count_calls_to m' Names.(qis "cnot"));
  check bool_t "same histogram" true (same_histogram m m')

let test_qopt_release_hoist () =
  let m =
    parse
      (opt_prelude
     ^ {|
define void @main() "entry_point" {
entry:
  %a = call ptr @__quantum__rt__qubit_allocate()
  %b = call ptr @__quantum__rt__qubit_allocate()
  call void @__quantum__qis__h__body(ptr %b)
  call void @__quantum__qis__x__body(ptr %b)
  call void @__quantum__qis__mz__body(ptr %b, ptr null)
  call void @__quantum__rt__qubit_release(ptr %a)
  call void @__quantum__rt__qubit_release(ptr %b)
  ret void
}|})
  in
  check bool_t "QO003 noted" true (has_rule "QO003" (Lint.run m));
  let _, st = Qdf_opt.optimize m in
  check bool_t "release hoisted" true (st.Qdf_opt.s_hoisted > 0)

let test_qopt_promotion () =
  let m =
    Qir_builder.build ~addressing:`Dynamic (Qcircuit.Generate.bell ())
  in
  check bool_t "dynamic module is tape-ineligible" true
    (Gate_tape.extract m = None);
  check bool_t "QO004 noted" true (has_rule "QO004" (Lint.run m));
  let m', st = Qdf_opt.optimize m in
  check bool_t "promotion fired" true (st.Qdf_opt.s_promoted > 0);
  check bool_t "promoted module is tape-eligible" true
    (Gate_tape.extract m' <> None);
  check bool_t "bit-identical histogram" true
    (same_histogram ~seed:3 ~shots:50 m m')

(* Differential property: on random circuits (with seeded redundancy
   injected so the rewrites actually fire) the optimizer must preserve
   the exact per-shot histogram in both addressing styles. *)
let qopt_module ~addressing ~redundant ~seed n =
  let open Qcircuit in
  let c = Generate.random ~seed ~parametric:true ~gates:14 n in
  let b =
    Circuit.Build.create ~num_qubits:c.Circuit.num_qubits
      ~num_clbits:c.Circuit.num_qubits ()
  in
  let st = Random.State.make [| seed; 77 |] in
  List.iter
    (fun (op : Circuit.op) ->
      match op.Circuit.kind with
      | Circuit.Gate (g, qs) ->
        Circuit.Build.gate b g qs;
        if redundant && Random.State.int st 3 = 0 then
          Circuit.Build.gate b (Gate.inverse g) qs
      | _ -> ())
    c.Circuit.ops;
  for q = 0 to c.Circuit.num_qubits - 1 do
    Circuit.Build.measure b q q
  done;
  Qir_builder.build ~addressing (Circuit.Build.finish b)

let qopt_props =
  let prop (seed, n) =
    List.for_all
      (fun addressing ->
        List.for_all
          (fun redundant ->
            let m = qopt_module ~addressing ~redundant ~seed n in
            let m', _ = Qdf_opt.optimize m in
            same_histogram ~seed:(1 + (seed mod 1000)) ~shots:48 m m')
          [ false; true ])
      [ `Static; `Dynamic ]
  in
  [
    QCheck2.Test.make ~count:30
      ~name:"quantum-opt: optimized modules are distribution-equivalent"
      QCheck2.Gen.(pair (int_range 0 100000) (int_range 2 5))
      prop;
  ]

let suite =
  [
    Alcotest.test_case "engine: forward join and pruning" `Quick
      test_forward_join_and_pruning;
    Alcotest.test_case "lifetime: use after release" `Quick
      test_use_after_release;
    Alcotest.test_case "lifetime: release is clean" `Quick
      test_release_then_stop_is_clean;
    Alcotest.test_case "lifetime: double release" `Quick test_double_release;
    Alcotest.test_case "lifetime: leak and array release" `Quick
      test_leak_and_array_release;
    Alcotest.test_case "lifetime: read before measure" `Quick
      test_read_before_measure;
    Alcotest.test_case "lifetime: branch release, no false positive" `Quick
      test_branch_release_no_false_positive;
    Alcotest.test_case "lifetime: builder output is clean" `Quick
      test_builder_output_is_clean;
    Alcotest.test_case "quantum-dce: removes dead gate" `Quick
      test_quantum_dce_removes_dead_gate;
    Alcotest.test_case "quantum-dce: respects entanglement" `Quick
      test_quantum_dce_respects_entanglement;
    Alcotest.test_case "const-addr: proves phi static" `Quick
      test_const_addr_proves_phi_static;
    Alcotest.test_case "const-addr: detect_proved upgrade" `Quick
      test_detect_proved_upgrade;
    Alcotest.test_case "addressing: dead allocate ignored" `Quick
      test_detect_ignores_dead_allocation;
    Alcotest.test_case "addressing: to_static via proofs" `Quick
      test_to_static_converts_where_syntactic_refuses;
    Alcotest.test_case "profile-check: consumes proofs" `Quick
      test_profile_check_consumes_proofs;
    Alcotest.test_case "verifier: all phi mismatches" `Quick
      test_verifier_reports_all_phi_mismatches;
    Alcotest.test_case "lint: structural short-circuit" `Quick
      test_lint_structural_short_circuit;
    Alcotest.test_case "call-graph: bottom-up SCCs and reachability" `Quick
      test_call_graph_basics;
    Alcotest.test_case "call-graph: mutual recursion (QP001)" `Quick
      test_call_graph_mutual_recursion;
    Alcotest.test_case "summary: release and purity" `Quick
      test_summary_release_and_purity;
    Alcotest.test_case "summary: returns fresh qubit" `Quick
      test_summary_returns_fresh_qubit;
    Alcotest.test_case "lifetime: cross-call use after release" `Quick
      test_cross_call_use_after_release;
    Alcotest.test_case "lifetime: cross-call double release" `Quick
      test_cross_call_double_release;
    Alcotest.test_case "lifetime: leak of returned qubit" `Quick
      test_cross_call_leak_of_returned_qubit;
    Alcotest.test_case "lifetime: helper bodies checked" `Quick
      test_helper_bodies_are_checked_too;
    Alcotest.test_case "quantum-dce: QD002 dead classical call" `Quick
      test_qd002_dead_classical_call;
    Alcotest.test_case "quantum-dce: QD002 dead unitary helper" `Quick
      test_qd002_dead_unitary_helper;
    Alcotest.test_case "quantum-dce: drops unreachable function" `Quick
      test_quantum_dce_drops_unreachable_function;
    Alcotest.test_case "const-addr: threaded through calls" `Quick
      test_const_addr_through_calls;
    Alcotest.test_case "addressing: to_static through calls" `Quick
      test_to_static_through_calls;
    Alcotest.test_case "profile-check: adaptive interprocedural" `Quick
      test_adaptive_profile_interprocedural;
    Alcotest.test_case "classify: summaries reveal callee effects" `Quick
      test_classify_with_summaries;
    Alcotest.test_case "quantum-opt: cancels across classical instr" `Quick
      test_qopt_cancel_across_classical;
    Alcotest.test_case "quantum-opt: merges adjacent rotations" `Quick
      test_qopt_merges_rotations;
    Alcotest.test_case "quantum-opt: merges to identity" `Quick
      test_qopt_merge_to_identity;
    Alcotest.test_case "quantum-opt: refuses merge across blocks" `Quick
      test_qopt_merge_across_blocks_refused;
    Alcotest.test_case "quantum-opt: refuses alias-uncertain wires" `Quick
      test_qopt_alias_uncertain_refused;
    Alcotest.test_case "quantum-opt: cancels through a commuting gate" `Quick
      test_qopt_commute_cancel;
    Alcotest.test_case "quantum-opt: hoists a late release" `Quick
      test_qopt_release_hoist;
    Alcotest.test_case "quantum-opt: promotes to static addressing" `Quick
      test_qopt_promotion;
  ]
  @ List.map QCheck_alcotest.to_alcotest qopt_props
