(* Tests for the LLVM IR substrate: lexer, parser, printer round-trips,
   verifier and interpreter. *)

open Llvm_ir

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Fixtures                                                             *)

(* The paper's Fig. 1 (right): the Bell circuit in QIR with dynamically
   allocated qubits, in modern opaque-pointer syntax. *)
let bell_qir =
  {|
declare ptr @__quantum__rt__qubit_allocate_array(i64)
declare ptr @__quantum__rt__array_create_1d(i32, i64)
declare ptr @__quantum__rt__array_get_element_ptr_1d(ptr, i64)
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__cnot__body(ptr, ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)

define void @main() "entry_point" "required_num_qubits"="2" {
entry:
  %q = alloca ptr, align 8
  %0 = call ptr @__quantum__rt__qubit_allocate_array(i64 2)
  store ptr %0, ptr %q, align 8
  %c = alloca ptr, align 8
  %1 = call ptr @__quantum__rt__array_create_1d(i32 1, i64 2)
  store ptr %1, ptr %c, align 8
  %2 = load ptr, ptr %q, align 8
  %3 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %2, i64 0)
  call void @__quantum__qis__h__body(ptr %3)
  %4 = load ptr, ptr %q, align 8
  %5 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %4, i64 0)
  %6 = load ptr, ptr %q, align 8
  %7 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %6, i64 1)
  call void @__quantum__qis__cnot__body(ptr %5, ptr %7)
  %8 = load ptr, ptr %q, align 8
  %9 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %8, i64 0)
  %10 = load ptr, ptr %c, align 8
  %11 = call ptr @__quantum__rt__array_get_element_ptr_1d(ptr %10, i64 0)
  call void @__quantum__qis__mz__body(ptr %9, ptr %11)
  ret void
}
|}

(* The paper's Ex. 4: a FOR-loop applying H to qubits 0..9. *)
let forloop_qir =
  {|
declare void @__quantum__qis__h__body(ptr)

define void @main() "entry_point" {
entry:
  %i = alloca i32, align 4
  store i32 0, ptr %i, align 4
  br label %for.header

for.header:
  %1 = load i32, ptr %i, align 4
  %cond = icmp slt i32 %1, 10
  br i1 %cond, label %body, label %exit

body:
  %2 = load i32, ptr %i, align 4
  %idx = sext i32 %2 to i64
  %qb = inttoptr i64 %idx to ptr
  call void @__quantum__qis__h__body(ptr %qb)
  %3 = load i32, ptr %i, align 4
  %4 = add nsw i32 %3, 1
  store i32 %4, ptr %i, align 4
  br label %for.header

exit:
  ret void
}
|}

(* The paper's Ex. 6: the Bell circuit with static qubit addresses. *)
let static_qir =
  {|
declare void @__quantum__qis__h__body(ptr)
declare void @__quantum__qis__cnot__body(ptr, ptr)
declare void @__quantum__qis__mz__body(ptr, ptr)

define void @main() "entry_point" "required_num_qubits"="2" {
entry:
  call void @__quantum__qis__h__body(ptr null)
  call void @__quantum__qis__cnot__body(ptr null, ptr inttoptr (i64 1 to ptr))
  call void @__quantum__qis__mz__body(ptr null, ptr writeonly null)
  call void @__quantum__qis__mz__body(ptr inttoptr (i64 1 to ptr), ptr writeonly inttoptr (i64 1 to ptr))
  ret void
}
|}

(* Legacy typed-pointer spelling from the original QIR specification. *)
let legacy_qir =
  {|
%Qubit = type opaque
%Result = type opaque

declare void @__quantum__qis__h__body(%Qubit*)
declare void @__quantum__qis__mz__body(%Qubit*, %Result*)

define void @main() #0 {
entry:
  call void @__quantum__qis__h__body(%Qubit* null)
  call void @__quantum__qis__mz__body(%Qubit* null, %Result* null)
  ret void
}

attributes #0 = { "entry_point" "required_num_qubits"="1" }
|}

let parse src = Parser.parse_module src

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)

let test_lexer_sigils () =
  let lx = Lexer.create "@__quantum__qis__h__body %q %\"odd name\" #3 !dbg" in
  check string_t "global" "@__quantum__qis__h__body"
    (Lexer.string_of_token (Lexer.next lx));
  check string_t "local" "%q" (Lexer.string_of_token (Lexer.next lx));
  check string_t "quoted local" "%odd name" (Lexer.string_of_token (Lexer.next lx));
  check string_t "attr ref" "#3" (Lexer.string_of_token (Lexer.next lx));
  check string_t "meta" "!dbg" (Lexer.string_of_token (Lexer.next lx));
  check bool_t "eof" true (Lexer.next lx = Lexer.EOF)

let test_lexer_numbers () =
  let lx = Lexer.create "42 -7 3.5 1e-3 0x3FF0000000000000" in
  check bool_t "int" true (Lexer.next lx = Lexer.INT 42L);
  check bool_t "negative" true (Lexer.next lx = Lexer.INT (-7L));
  check bool_t "float" true (Lexer.next lx = Lexer.FLOAT 3.5);
  check bool_t "exponent" true (Lexer.next lx = Lexer.FLOAT 1e-3);
  (* 0x3FF0000000000000 is the IEEE-754 representation of 1.0 *)
  check bool_t "hex float" true (Lexer.next lx = Lexer.FLOAT 1.0)

let test_lexer_comments () =
  let lx = Lexer.create "; a comment line\nret ; trailing\nvoid" in
  check string_t "ret" "ret" (Lexer.string_of_token (Lexer.next lx));
  check string_t "void" "void" (Lexer.string_of_token (Lexer.next lx));
  check bool_t "eof" true (Lexer.next lx = Lexer.EOF)

let test_lexer_cstring () =
  let lx = Lexer.create {|c"ab\00"|} in
  match Lexer.next lx with
  | Lexer.CSTRING s ->
    check int_t "length" 3 (String.length s);
    check bool_t "nul" true (s.[2] = '\000')
  | _ -> Alcotest.fail "expected CSTRING"

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)

let test_parse_bell () =
  let m = parse bell_qir in
  check int_t "functions" 7 (List.length m.Ir_module.funcs);
  let main = Ir_module.find_func_exn m "main" in
  check bool_t "entry point attr" true (Func.has_attr main "entry_point");
  check (Alcotest.option string_t) "required qubits" (Some "2")
    (Func.attr main "required_num_qubits");
  check int_t "blocks" 1 (List.length main.Func.blocks);
  check int_t "instructions" 19 (List.length (Func.entry main).Block.instrs)

let test_parse_forloop () =
  let m = parse forloop_qir in
  let main = Ir_module.find_func_exn m "main" in
  check int_t "blocks" 4 (List.length main.Func.blocks);
  let labels = List.map (fun (b : Block.t) -> b.Block.label) main.Func.blocks in
  check (Alcotest.list string_t) "labels"
    [ "entry"; "for.header"; "body"; "exit" ]
    labels

let test_parse_static () =
  let m = parse static_qir in
  let main = Ir_module.find_func_exn m "main" in
  let entry = Func.entry main in
  (* the second call's second argument is inttoptr (i64 1 to ptr) *)
  match (List.nth entry.Block.instrs 1).Instr.op with
  | Instr.Call (_, "__quantum__qis__cnot__body", [ _; arg ]) ->
    check bool_t "static address" true
      (Operand.equal arg.Operand.v
         (Operand.Const (Constant.Inttoptr 1L)))
  | _ -> Alcotest.fail "expected cnot call"

let test_parse_legacy () =
  let m = parse legacy_qir in
  let main = Ir_module.find_func_exn m "main" in
  check bool_t "attr group resolved" true (Func.has_attr main "entry_point");
  check (Alcotest.option string_t) "qubits via group" (Some "1")
    (Func.attr main "required_num_qubits");
  (* typed pointers collapse to opaque ptr *)
  let h = Ir_module.find_func_exn m "__quantum__qis__h__body" in
  match h.Func.params with
  | [ p ] -> check bool_t "param is ptr" true (Ty.equal p.Func.pty Ty.Ptr)
  | _ -> Alcotest.fail "expected a single parameter"

let test_parse_switch_phi () =
  let src =
    {|
define i64 @f(i64 %x) {
entry:
  switch i64 %x, label %other [ i64 0, label %zero i64 1, label %one ]
zero:
  br label %join
one:
  br label %join
other:
  br label %join
join:
  %r = phi i64 [ 10, %zero ], [ 20, %one ], [ 30, %other ]
  ret i64 %r
}
|}
  in
  let m = parse src in
  check int_t "verifier clean" 0 (List.length (Verifier.check_module m));
  let run x = Interp.run m "f" [ Interp.VInt (Ty.I64, x) ] in
  check bool_t "case 0" true (run 0L = Interp.VInt (Ty.I64, 10L));
  check bool_t "case 1" true (run 1L = Interp.VInt (Ty.I64, 20L));
  check bool_t "default" true (run 5L = Interp.VInt (Ty.I64, 30L))

let test_parse_error_location () =
  match Parser.parse_module_result "define void @f() {\n  bogus_opcode\n}" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error msg ->
    check bool_t "mentions opcode" true
      (Astring.String.is_infix ~affix:"bogus_opcode" msg
       || Astring.String.is_infix ~affix:"unknown instruction" msg)

(* ------------------------------------------------------------------ *)
(* Printer round-trip                                                   *)

let roundtrip name src () =
  let m1 = parse src in
  let printed = Printer.module_to_string m1 in
  let m2 =
    try parse printed
    with exn ->
      Alcotest.failf "%s: reprint did not parse: %s\n%s" name
        (Ir_error.to_string exn) printed
  in
  let p1 = Printer.module_to_string m1 in
  let p2 = Printer.module_to_string m2 in
  check string_t (name ^ ": print . parse . print is stable") p1 p2

let test_verifier_catches_undefined_value () =
  let src = "define i64 @f() {\nentry:\n  %r = add i64 %nope, 1\n  ret i64 %r\n}" in
  let m = parse src in
  check bool_t "violation reported" true (Verifier.check_module m <> [])

let test_verifier_catches_bad_branch () =
  let src = "define void @f() {\nentry:\n  br label %nowhere\n}" in
  let m = parse src in
  check bool_t "violation reported" true (Verifier.check_module m <> [])

let test_verifier_accepts_fixtures () =
  List.iter
    (fun src ->
      let m = parse src in
      match Verifier.check_module m with
      | [] -> ()
      | v :: _ ->
        Alcotest.failf "unexpected violation: %a" Verifier.pp_violation v)
    [ bell_qir; forloop_qir; static_qir; legacy_qir ]

(* Call sites must agree with the declared signature: arity, per-argument
   types, and the call's return type are all checked. *)
let callee_def = "define i64 @g(i64 %x, ptr %p) {\nentry:\n  ret i64 %x\n}\n"

let violations_mentioning affix vs =
  List.filter
    (fun (v : Verifier.violation) ->
      Astring.String.is_infix ~affix v.Verifier.what)
    vs

let test_verifier_catches_call_arity_mismatch () =
  let m =
    parse
      (callee_def
     ^ "define void @f() {\nentry:\n  %r = call i64 @g(i64 1)\n  ret void\n}")
  in
  let vs = Verifier.check_module m in
  check bool_t "arity mismatch reported" true
    (violations_mentioning "expected 2" vs <> [])

let test_verifier_catches_call_arg_type_mismatch () =
  let m =
    parse
      (callee_def
     ^ "define void @f() {\n\
        entry:\n\
       \  %r = call i64 @g(i64 1, i64 2)\n\
       \  ret void\n\
        }")
  in
  let vs = Verifier.check_module m in
  check bool_t "argument type mismatch reported" true
    (violations_mentioning "passes i64 for argument 1" vs <> [])

let test_verifier_catches_call_return_type_mismatch () =
  let m =
    parse
      (callee_def
     ^ "define void @f() {\n\
        entry:\n\
       \  %r = call i1 @g(i64 1, ptr null)\n\
       \  ret void\n\
        }")
  in
  let vs = Verifier.check_module m in
  check bool_t "return type mismatch reported" true
    (violations_mentioning "declared to return i64" vs <> [])

let test_verifier_accepts_matching_call () =
  let m =
    parse
      (callee_def
     ^ "define void @f() {\n\
        entry:\n\
       \  %r = call i64 @g(i64 1, ptr null)\n\
       \  ret void\n\
        }")
  in
  check int_t "matching call is clean" 0 (List.length (Verifier.check_module m))

(* ------------------------------------------------------------------ *)
(* Interpreter                                                          *)

let test_interp_arith () =
  let src =
    {|
define i64 @f(i64 %x, i64 %y) {
entry:
  %s = add i64 %x, %y
  %d = mul i64 %s, 3
  %q = sdiv i64 %d, 2
  ret i64 %q
}
|}
  in
  let m = parse src in
  match Interp.run m "f" [ Interp.VInt (Ty.I64, 5L); Interp.VInt (Ty.I64, 7L) ] with
  | Interp.VInt (_, n) -> check bool_t "result" true (Int64.equal n 18L)
  | _ -> Alcotest.fail "expected an integer result"

let test_interp_loop () =
  (* sum 0..n-1 with an alloca-based loop, as produced by a C frontend *)
  let src =
    {|
define i64 @sum(i64 %n) {
entry:
  %acc = alloca i64
  %i = alloca i64
  store i64 0, ptr %acc
  store i64 0, ptr %i
  br label %header
header:
  %iv = load i64, ptr %i
  %c = icmp slt i64 %iv, %n
  br i1 %c, label %body, label %done
body:
  %a = load i64, ptr %acc
  %a2 = add i64 %a, %iv
  store i64 %a2, ptr %acc
  %i2 = add i64 %iv, 1
  store i64 %i2, ptr %i
  br label %header
done:
  %r = load i64, ptr %acc
  ret i64 %r
}
|}
  in
  let m = parse src in
  match Interp.run m "sum" [ Interp.VInt (Ty.I64, 10L) ] with
  | Interp.VInt (_, n) -> check bool_t "sum 0..9" true (Int64.equal n 45L)
  | _ -> Alcotest.fail "expected an integer result"

let test_interp_recursion () =
  let src =
    {|
define i64 @fib(i64 %n) {
entry:
  %c = icmp slt i64 %n, 2
  br i1 %c, label %base, label %rec
base:
  ret i64 %n
rec:
  %n1 = sub i64 %n, 1
  %n2 = sub i64 %n, 2
  %f1 = call i64 @fib(i64 %n1)
  %f2 = call i64 @fib(i64 %n2)
  %r = add i64 %f1, %f2
  ret i64 %r
}
|}
  in
  let m = parse src in
  match Interp.run m "fib" [ Interp.VInt (Ty.I64, 12L) ] with
  | Interp.VInt (_, n) -> check bool_t "fib 12" true (Int64.equal n 144L)
  | _ -> Alcotest.fail "expected an integer result"

let test_interp_externals () =
  (* the Ex. 5 architecture: quantum instructions dispatch to the table *)
  let trace = ref [] in
  let externals =
    [
      ( "__quantum__qis__h__body",
        fun args ->
          (match args with
          | [ Interp.VPtr q ] -> trace := ("h", q) :: !trace
          | _ -> Alcotest.fail "h: bad args");
          Interp.VVoid );
      ( "__quantum__qis__cnot__body",
        fun args ->
          (match args with
          | [ Interp.VPtr a; Interp.VPtr b ] ->
            trace := ("cnot", a) :: !trace;
            trace := ("cnot_tgt", b) :: !trace
          | _ -> Alcotest.fail "cnot: bad args");
          Interp.VVoid );
      ( "__quantum__qis__mz__body",
        fun _ ->
          trace := ("mz", 0L) :: !trace;
          Interp.VVoid );
    ]
  in
  let m = parse static_qir in
  let result = Interp.run_entry ~externals m in
  check bool_t "void result" true (result = Interp.VVoid);
  let ops = List.rev_map fst !trace in
  check (Alcotest.list string_t) "gate order"
    [ "h"; "cnot"; "cnot_tgt"; "mz"; "mz" ]
    ops

let test_interp_forloop_calls_h_ten_times () =
  let count = ref 0 in
  let qubits = ref [] in
  let externals =
    [
      ( "__quantum__qis__h__body",
        fun args ->
          incr count;
          (match args with
          | [ Interp.VPtr q ] -> qubits := q :: !qubits
          | _ -> ());
          Interp.VVoid );
    ]
  in
  let m = parse forloop_qir in
  ignore (Interp.run_entry ~externals m);
  check int_t "ten h gates" 10 !count;
  check (Alcotest.list bool_t) "addresses 0..9"
    (List.init 10 (fun _ -> true))
    (List.rev_map (fun q -> q >= 0L && q < 10L) !qubits)

let test_interp_fuel () =
  let src =
    "define void @spin() {\nentry:\n  br label %l\nl:\n  br label %l\n}"
  in
  let m = parse src in
  match Interp.run ~fuel:1000 m "spin" [] with
  | exception Ir_error.Exec_error _ -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_interp_global_string () =
  let src =
    {|
@msg = constant [3 x i8] c"ok\00"
declare void @log(ptr)
define void @main() {
entry:
  call void @log(ptr @msg)
  ret void
}
|}
  in
  let m = parse src in
  let got = ref "" in
  let st =
    Interp.create
      ~externals:
        [
          ( "log",
            fun args ->
              (match args with
              | [ Interp.VPtr _ ] -> got := "ptr"
              | _ -> ());
              Interp.VVoid );
        ]
      m
  in
  ignore (Interp.run_function st "main" []);
  check string_t "logged a pointer" "ptr" !got

(* ------------------------------------------------------------------ *)
(* Builder                                                              *)

let test_builder_bell_like () =
  let b =
    Builder.create ~name:"main" ~ret_ty:Ty.Void ~params:[]
      ~attrs:[ ("entry_point", "") ] ()
  in
  Builder.insert b
    (Instr.Call (Ty.Void, "__quantum__qis__h__body", [ Operand.qubit_ptr 0L ]));
  Builder.insert b
    (Instr.Call
       ( Ty.Void,
         "__quantum__qis__cnot__body",
         [ Operand.qubit_ptr 0L; Operand.qubit_ptr 1L ] ));
  Builder.ret b None;
  let f = Builder.finish b in
  check int_t "two instructions" 2 (List.length (Func.entry f).Block.instrs);
  check bool_t "entry point" true (Func.has_attr f "entry_point")

let test_builder_rejects_unterminated () =
  let b = Builder.create ~name:"f" ~ret_ty:Ty.Void ~params:[] () in
  Builder.insert b (Instr.Alloca Ty.I64);
  match Builder.finish b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ------------------------------------------------------------------ *)
(* CFG / dominators                                                     *)

let diamond =
  {|
define i64 @f(i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %join
e:
  br label %join
join:
  %r = phi i64 [ 1, %t ], [ 2, %e ]
  ret i64 %r
}
|}

let test_cfg_diamond () =
  let m = parse diamond in
  let f = Ir_module.find_func_exn m "f" in
  let cfg = Cfg.of_func f in
  check (Alcotest.list string_t) "entry succs" [ "t"; "e" ]
    (Cfg.successors cfg "entry");
  check
    (Alcotest.slist string_t String.compare)
    "join preds" [ "t"; "e" ] (Cfg.predecessors cfg "join");
  check int_t "reachable" 4 (List.length (Cfg.reachable cfg))

let test_dom_diamond () =
  let m = parse diamond in
  let f = Ir_module.find_func_exn m "f" in
  let dom = Dom.compute (Cfg.of_func f) in
  check (Alcotest.option string_t) "idom t" (Some "entry") (Dom.idom dom "t");
  check (Alcotest.option string_t) "idom join" (Some "entry")
    (Dom.idom dom "join");
  check bool_t "entry dominates join" true (Dom.dominates dom "entry" "join");
  check bool_t "t does not dominate join" false (Dom.dominates dom "t" "join");
  check (Alcotest.list string_t) "frontier of t" [ "join" ]
    (Dom.frontier dom "t")

let test_unreachable_blocks () =
  let src =
    {|
define void @f() {
entry:
  ret void
dead:
  br label %dead2
dead2:
  ret void
}
|}
  in
  let m = parse src in
  let f = Ir_module.find_func_exn m "f" in
  check
    (Alcotest.slist string_t String.compare)
    "dead blocks" [ "dead"; "dead2" ]
    (Cfg.unreachable_blocks f)

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)

(* Random straight-line integer programs: parse . print round-trips. *)
let gen_straightline =
  let open QCheck2.Gen in
  let* n = int_range 1 20 in
  let ops = [| "add"; "sub"; "mul"; "and"; "or"; "xor" |] in
  let* choices = list_repeat n (pair (int_range 0 5) (int_range (-100) 100)) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "define i64 @f(i64 %x) {\nentry:\n";
  List.iteri
    (fun i (op, k) ->
      let prev = if i = 0 then "%x" else Printf.sprintf "%%v%d" (i - 1) in
      Buffer.add_string buf
        (Printf.sprintf "  %%v%d = %s i64 %s, %d\n" i ops.(op) prev k))
    choices;
  Buffer.add_string buf
    (Printf.sprintf "  ret i64 %%v%d\n}\n" (List.length choices - 1));
  return (Buffer.contents buf)

let prop_roundtrip_straightline =
  QCheck2.Test.make ~count:100 ~name:"parse/print round-trip (straight-line)"
    gen_straightline (fun src ->
      let m1 = parse src in
      let m2 = parse (Printer.module_to_string m1) in
      String.equal (Printer.module_to_string m1) (Printer.module_to_string m2))

let prop_interp_matches_reference =
  QCheck2.Test.make ~count:100 ~name:"interpreter matches OCaml reference"
    QCheck2.Gen.(pair gen_straightline (int_range (-1000) 1000))
    (fun (src, x0) ->
      let m = parse src in
      (* reference evaluation by re-parsing the textual source *)
      let lines = String.split_on_char '\n' src in
      let apply acc line =
        match String.split_on_char ' ' (String.trim line) with
        | [ _; "="; op; "i64"; _arg; k ] ->
          let k = int_of_string (String.sub k 0 (String.length k)) in
          let k = Int64.of_int k in
          (match op with
          | "add" -> Int64.add acc k
          | "sub" -> Int64.sub acc k
          | "mul" -> Int64.mul acc k
          | "and" -> Int64.logand acc k
          | "or" -> Int64.logor acc k
          | "xor" -> Int64.logxor acc k
          | _ -> acc)
        | _ -> acc
      in
      (* strip the trailing comma of the first operand spelled "%x," *)
      let src_normalized =
        List.map
          (fun l ->
            String.concat "" (String.split_on_char ',' l))
          lines
      in
      let expected = List.fold_left apply (Int64.of_int x0) src_normalized in
      match Interp.run m "f" [ Interp.VInt (Ty.I64, Int64.of_int x0) ] with
      | Interp.VInt (_, n) -> Int64.equal n expected
      | _ -> false)

(* Float constants round-trip through print + parse bit-exactly. *)
let prop_float_roundtrip =
  let gen =
    let open QCheck2.Gen in
    oneof
      [
        float;
        map Float.of_int (int_range (-1_000_000_000) 1_000_000_000);
        float_range (-10.0) 10.0;
        return Float.pi;
        return 1234567891.0;
      ]
  in
  QCheck2.Test.make ~count:200 ~name:"float constants round-trip exactly" gen
    (fun f ->
      QCheck2.assume (Float.is_finite f);
      let src =
        Format.asprintf
          "declare void @g(double)\ndefine void @f() {\nentry:\n  call void \
           @g(double %a)\n  ret void\n}"
          Constant.pp (Constant.Float f)
      in
      let m = parse src in
      let fn = Ir_module.find_func_exn m "f" in
      match (List.hd (Func.entry fn).Block.instrs).Instr.op with
      | Instr.Call (_, _, [ arg ]) -> (
        match arg.Operand.v with
        | Operand.Const (Constant.Float f') ->
          Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f')
        | _ -> false)
      | _ -> false)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_roundtrip_straightline;
      prop_interp_matches_reference;
      prop_float_roundtrip;
    ]

let suite =
  [
    Alcotest.test_case "lexer: sigils" `Quick test_lexer_sigils;
    Alcotest.test_case "lexer: numbers" `Quick test_lexer_numbers;
    Alcotest.test_case "lexer: comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer: c-string escapes" `Quick test_lexer_cstring;
    Alcotest.test_case "parser: Fig.1 Bell QIR" `Quick test_parse_bell;
    Alcotest.test_case "parser: Ex.4 for-loop" `Quick test_parse_forloop;
    Alcotest.test_case "parser: Ex.6 static addresses" `Quick test_parse_static;
    Alcotest.test_case "parser: legacy typed pointers" `Quick test_parse_legacy;
    Alcotest.test_case "parser: switch and phi" `Quick test_parse_switch_phi;
    Alcotest.test_case "parser: error reporting" `Quick test_parse_error_location;
    Alcotest.test_case "roundtrip: Bell" `Quick (roundtrip "bell" bell_qir);
    Alcotest.test_case "roundtrip: for-loop" `Quick
      (roundtrip "forloop" forloop_qir);
    Alcotest.test_case "roundtrip: static" `Quick (roundtrip "static" static_qir);
    Alcotest.test_case "roundtrip: legacy" `Quick (roundtrip "legacy" legacy_qir);
    Alcotest.test_case "verifier: undefined value" `Quick
      test_verifier_catches_undefined_value;
    Alcotest.test_case "verifier: bad branch target" `Quick
      test_verifier_catches_bad_branch;
    Alcotest.test_case "verifier: fixtures are clean" `Quick
      test_verifier_accepts_fixtures;
    Alcotest.test_case "verifier: call arity mismatch" `Quick
      test_verifier_catches_call_arity_mismatch;
    Alcotest.test_case "verifier: call argument type mismatch" `Quick
      test_verifier_catches_call_arg_type_mismatch;
    Alcotest.test_case "verifier: call return type mismatch" `Quick
      test_verifier_catches_call_return_type_mismatch;
    Alcotest.test_case "verifier: matching call is clean" `Quick
      test_verifier_accepts_matching_call;
    Alcotest.test_case "interp: arithmetic" `Quick test_interp_arith;
    Alcotest.test_case "interp: alloca loop" `Quick test_interp_loop;
    Alcotest.test_case "interp: recursion" `Quick test_interp_recursion;
    Alcotest.test_case "interp: external dispatch (Ex.5)" `Quick
      test_interp_externals;
    Alcotest.test_case "interp: Ex.4 loop executes 10 H gates" `Quick
      test_interp_forloop_calls_h_ten_times;
    Alcotest.test_case "interp: fuel limit" `Quick test_interp_fuel;
    Alcotest.test_case "interp: global string" `Quick test_interp_global_string;
    Alcotest.test_case "builder: bell-like" `Quick test_builder_bell_like;
    Alcotest.test_case "builder: unterminated block" `Quick
      test_builder_rejects_unterminated;
    Alcotest.test_case "cfg: diamond" `Quick test_cfg_diamond;
    Alcotest.test_case "dom: diamond" `Quick test_dom_diamond;
    Alcotest.test_case "cfg: unreachable blocks" `Quick test_unreachable_blocks;
  ]
  @ props

(* Fixtures shared with other test modules. *)
let fixtures =
  [ ("bell", bell_qir); ("forloop", forloop_qir); ("static", static_qir) ]
