(* QIR -> circuit parsing by abstract interpretation of the entry
   function — exactly the algorithm the paper sketches in Ex. 3: "track
   the assignment of variables to their values to infer the respective
   qubit that is passed to a quantum instruction", with instructions
   matched by pattern.

   Supported input shapes:
   - base profile, static addressing (Ex. 6): qubit/result operands are
     [inttoptr] constants;
   - base profile, dynamic addressing (Fig. 1): runtime arrays in stack
     slots, accessed via load / get_element_ptr;
   - the adaptive pattern emitted by {!Qir_builder}: measurements read
     back with [read_result], combined into an integer, compared and
     branched on (forward branches only).

   Anything else — loops, unknown calls, classical memory traffic beyond
   pointer slots — is rejected with a diagnostic telling the user to
   lower the program first (Sec. III-B): run {!Lowering.lower} and retry.

   Clbit convention: the parsed circuit has one classical bit per QIR
   result id, in allocation order. *)

open Llvm_ir
open Qcircuit

exception Unsupported of string

let fail fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

type avalue =
  | AQubit of int
  | AResult of int
  | AQubitArray of { base : int; size : int }
  | AResultArray of { base : int; size : int }
  | ASlot of int
  | AInt of int64
  | AFloat of float
  | AOne (* the canonical one Result *)
  | AZero
  | ABit of int * bool (* result id, negated? *)
  | ALin of (int * int) list * int64 (* sum of result-bits * weight + const *)
  | ACmp of (int * int) list * int64 (* linear combo == value *)

type t = {
  m : Ir_module.t;
  env : (string, avalue) Hashtbl.t;
  mem : (int, avalue) Hashtbl.t;
  build : Circuit.Build.t;
  mutable next_qubit : int;
  mutable next_result : int;
  mutable next_slot : int;
  mutable max_qubit : int; (* highest qubit index seen (static or dynamic) *)
  mutable visited : string list;
  mutable recorded : int list; (* result ids record_output'd, reversed *)
}

let define st id v =
  match id with
  | Some id -> Hashtbl.replace st.env id v
  | None -> ()

let lookup st name =
  match Hashtbl.find_opt st.env name with
  | Some v -> v
  | None -> fail "use of untracked value %%%s" name

let avalue_of_operand st (o : Operand.t) =
  match o with
  | Operand.Local name -> lookup st name
  | Operand.Const c -> (
    match c with
    | Constant.Int n -> AInt n
    | Constant.Bool b -> AInt (if b then 1L else 0L)
    | Constant.Float f -> AFloat f
    | Constant.Null -> AInt 0L (* resolves to qubit/result 0 contextually *)
    | Constant.Inttoptr n -> AInt n
    | Constant.Undef -> fail "undef operand"
    | Constant.Global g -> fail "global @%s used as an operand" g
    | Constant.Str _ | Constant.Arr _ | Constant.Zeroinit ->
      fail "aggregate constant operand")

let as_qubit _st (v : avalue) =
  match v with
  | AQubit q -> q
  | AInt n ->
    let q = Int64.to_int n in
    if q < 0 then fail "negative qubit address %Ld" n;
    q
  | _ -> fail "operand is not a qubit"

let as_result st (v : avalue) =
  ignore st;
  match v with
  | AResult r -> r
  | AInt n ->
    let r = Int64.to_int n in
    if r < 0 then fail "negative result address %Ld" n;
    r
  | _ -> fail "operand is not a result"

let as_float (v : avalue) =
  match v with
  | AFloat f -> f
  | AInt n -> Int64.to_float n
  | _ -> fail "operand is not a rotation angle"

let as_int (v : avalue) =
  match v with
  | AInt n -> n
  | _ -> fail "operand is not a constant integer"

let note_qubit st q = if q > st.max_qubit then st.max_qubit <- q

let lin_of v =
  match v with
  | ABit (r, false) -> ([ (r, 1) ], 0L)
  | ABit (_, true) -> fail "negated result bit in arithmetic"
  | ALin (terms, c) -> (terms, c)
  | AInt n -> ([], n)
  | _ -> fail "operand is not a classical value derived from results"

(* ------------------------------------------------------------------ *)
(* Calls                                                                *)

let resolve_call_args st callee (args : Operand.typed list) =
  let signature =
    match Signatures.find callee with
    | Some s -> s
    | None -> fail "call to unknown quantum function @%s" callee
  in
  (try
     List.combine signature.Signatures.args args
   with Invalid_argument _ ->
     fail "@%s called with %d arguments" callee (List.length args))
  |> List.map (fun (kind, (a : Operand.typed)) ->
         (kind, avalue_of_operand st a.Operand.v))

let exec_call st ~cond id callee args =
  let open Names in
  if String.equal callee rt_qubit_allocate_array then begin
    let n =
      match args with
      | [ (_, v) ] -> Int64.to_int (as_int v)
      | _ -> fail "qubit_allocate_array: bad arguments"
    in
    let base = st.next_qubit in
    st.next_qubit <- base + n;
    note_qubit st (base + n - 1);
    define st id (AQubitArray { base; size = n })
  end
  else if String.equal callee rt_qubit_allocate then begin
    let q = st.next_qubit in
    st.next_qubit <- q + 1;
    note_qubit st q;
    define st id (AQubit q)
  end
  else if String.equal callee rt_array_create_1d then begin
    let n =
      match args with
      | [ _; (_, v) ] -> Int64.to_int (as_int v)
      | _ -> fail "array_create_1d: bad arguments"
    in
    let base = st.next_result in
    st.next_result <- base + n;
    define st id (AResultArray { base; size = n })
  end
  else if String.equal callee rt_array_get_element_ptr_1d then begin
    match args with
    | [ (_, arr); (_, idx) ] -> (
      let i = Int64.to_int (as_int idx) in
      match arr with
      | AQubitArray { base; size } ->
        if i < 0 || i >= size then fail "qubit array index %d out of range" i;
        define st id (AQubit (base + i))
      | AResultArray { base; size } ->
        if i < 0 || i >= size then fail "result array index %d out of range" i;
        define st id (AResult (base + i))
      | _ -> fail "array_get_element_ptr_1d on a non-array value")
    | _ -> fail "array_get_element_ptr_1d: bad arguments"
  end
  else if String.equal callee rt_result_get_one then define st id AOne
  else if String.equal callee rt_result_get_zero then define st id AZero
  else if String.equal callee rt_result_equal then begin
    match args with
    | [ (_, a); (_, b) ] -> (
      match a, b with
      | AResult r, AOne | AOne, AResult r -> define st id (ABit (r, false))
      | AResult r, AZero | AZero, AResult r -> define st id (ABit (r, true))
      | _ -> fail "result_equal: unsupported operand shape")
    | _ -> fail "result_equal: bad arguments"
  end
  else if String.equal callee rt_read_result then begin
    match args with
    | [ (_, r) ] -> define st id (ABit (as_result st r, false))
    | _ -> fail "read_result: bad arguments"
  end
  else if String.equal callee qis_mz then begin
    match args with
    | [ (_, q); (_, r) ] ->
      let q = as_qubit st q and r = as_result st r in
      note_qubit st q;
      if r >= st.next_result then st.next_result <- r + 1;
      Circuit.Build.measure ?cond st.build q r
    | _ -> fail "mz: bad arguments"
  end
  else if String.equal callee qis_m then begin
    match args with
    | [ (_, q) ] ->
      let q = as_qubit st q in
      note_qubit st q;
      let r = st.next_result in
      st.next_result <- r + 1;
      Circuit.Build.measure ?cond st.build q r;
      define st id (AResult r)
    | _ -> fail "m: bad arguments"
  end
  else if String.equal callee (qis "reset") then begin
    match args with
    | [ (_, q) ] ->
      let q = as_qubit st q in
      note_qubit st q;
      Circuit.Build.reset ?cond st.build q
    | _ -> fail "reset: bad arguments"
  end
  else if String.equal callee rt_result_record_output then begin
    (* no circuit semantics, but the call order defines the program's
       output bit order — keep it for consumers that need output-
       compatible sampling (the executor's batched fast path) *)
    match args with
    | (_, r) :: _ -> st.recorded <- as_result st r :: st.recorded
    | [] -> fail "result_record_output: bad arguments"
  end
  else if
    String.equal callee rt_array_update_reference_count
    || String.equal callee rt_result_update_reference_count
    || String.equal callee rt_qubit_release
    || String.equal callee rt_qubit_release_array
    || String.equal callee rt_array_record_output
    || String.equal callee rt_initialize
    || String.equal callee rt_message
  then () (* bookkeeping calls carry no circuit semantics *)
  else begin
    (* a gate *)
    let doubles =
      List.filter_map
        (fun (kind, v) ->
          match kind with
          | Signatures.Double_arg -> Some (as_float v)
          | _ -> None)
        args
    in
    let qubits =
      List.filter_map
        (fun (kind, v) ->
          match kind with
          | Signatures.Qubit -> Some (as_qubit st v)
          | _ -> None)
        args
    in
    match Names.gate_of_qis callee doubles with
    | Some g ->
      List.iter (note_qubit st) qubits;
      Circuit.Build.gate ?cond st.build g qubits
    | None -> fail "unsupported quantum function @%s" callee
  end

(* ------------------------------------------------------------------ *)
(* Instructions                                                         *)

let exec_instr st ~cond (i : Instr.t) =
  match i.Instr.op with
  | Instr.Call (_, callee, args) ->
    if Names.is_quantum callee then
      exec_call st ~cond i.Instr.id callee (resolve_call_args st callee args)
    else fail "call to non-quantum function @%s (inline/lower first)" callee
  | Instr.Alloca Ty.Ptr | Instr.Alloca (Ty.I1 | Ty.I8 | Ty.I32 | Ty.I64) ->
    let s = st.next_slot in
    st.next_slot <- s + 1;
    define st i.Instr.id (ASlot s)
  | Instr.Alloca ty -> fail "alloca of %s" (Ty.to_string ty)
  | Instr.Store (v, p) -> (
    match avalue_of_operand st p with
    | ASlot s -> Hashtbl.replace st.mem s (avalue_of_operand st v.Operand.v)
    | _ -> fail "store through a non-slot pointer")
  | Instr.Load (_, p) -> (
    match avalue_of_operand st p with
    | ASlot s -> (
      match Hashtbl.find_opt st.mem s with
      | Some v -> define st i.Instr.id v
      | None -> fail "load from an uninitialized slot")
    | _ -> fail "load through a non-slot pointer")
  | Instr.Cast (Instr.Zext, src, _) | Instr.Cast (Instr.Sext, src, _) ->
    define st i.Instr.id (avalue_of_operand st src.Operand.v)
  | Instr.Cast (Instr.Inttoptr, src, _) ->
    define st i.Instr.id (avalue_of_operand st src.Operand.v)
  | Instr.Cast (Instr.Ptrtoint, src, _) ->
    define st i.Instr.id (avalue_of_operand st src.Operand.v)
  | Instr.Cast (c, _, _) -> fail "unsupported cast %s" (Instr.string_of_cast c)
  | Instr.Binop (op, _, x, y) -> (
    let xv = avalue_of_operand st x and yv = avalue_of_operand st y in
    match op, xv, yv with
    | Instr.Add, AInt a, AInt b -> define st i.Instr.id (AInt (Int64.add a b))
    | Instr.Sub, AInt a, AInt b -> define st i.Instr.id (AInt (Int64.sub a b))
    | Instr.Mul, AInt a, AInt b -> define st i.Instr.id (AInt (Int64.mul a b))
    | Instr.Shl, v, AInt k ->
      let terms, c = lin_of v in
      let f = Int64.shift_left 1L (Int64.to_int k) in
      define st i.Instr.id
        (ALin
           ( List.map (fun (r, w) -> (r, w * Int64.to_int f)) terms,
             Int64.mul c f ))
    | (Instr.Or | Instr.Add), a, b ->
      let ta, ca = lin_of a and tb, cb = lin_of b in
      define st i.Instr.id (ALin (ta @ tb, Int64.add ca cb))
    | _ -> fail "unsupported classical operation %s (lower first)" (Instr.string_of_binop op))
  | Instr.Icmp (Instr.Ieq, _, x, y) -> (
    let xv = avalue_of_operand st x and yv = avalue_of_operand st y in
    match xv, yv with
    | (ABit _ | ALin _), AInt v | AInt v, (ABit _ | ALin _) ->
      let terms, c =
        lin_of (match xv with AInt _ -> yv | _ -> xv)
      in
      define st i.Instr.id (ACmp (terms, Int64.sub v c))
    | AInt a, AInt b ->
      define st i.Instr.id (AInt (if Int64.equal a b then 1L else 0L))
    | _ -> fail "unsupported comparison operands (lower first)")
  | Instr.Icmp (p, _, _, _) ->
    fail "unsupported comparison predicate %s (lower first)" (Instr.string_of_icmp p)
  | Instr.Fbinop _ | Instr.Fcmp _ ->
    fail "floating-point computation (lower first)"
  | Instr.Gep _ -> fail "getelementptr on classical memory"
  | Instr.Select _ -> fail "select instruction"
  | Instr.Phi _ -> fail "phi node (the program has non-trivial control flow; lower first)"
  | Instr.Freeze v -> define st i.Instr.id (avalue_of_operand st v.Operand.v)

(* ------------------------------------------------------------------ *)
(* Control flow: a forward chain with optional if-then shapes           *)

let cond_of_avalue v : Circuit.cond =
  match v with
  | ABit (r, false) -> { Circuit.cbits = [ r ]; value = 1 }
  | ABit (r, true) -> { Circuit.cbits = [ r ]; value = 0 }
  | ACmp (terms, value) ->
    (* terms must be distinct bits with power-of-two weights forming a
       contiguous register, LSB first *)
    let sorted = List.sort (fun (_, w1) (_, w2) -> compare w1 w2) terms in
    let bits =
      List.mapi
        (fun k (r, w) ->
          if w <> 1 lsl k then
            fail "condition is not a plain register comparison";
          r)
        sorted
    in
    { Circuit.cbits = bits; value = Int64.to_int value }
  | _ -> fail "branch condition does not derive from measurement results"

let rec exec_block st (f : Func.t) label =
  if List.mem label st.visited then
    fail "the program contains a loop; lower (unroll) first";
  st.visited <- label :: st.visited;
  let b = Func.find_block_exn f label in
  List.iter (exec_instr st ~cond:None) b.Block.instrs;
  match b.Block.term with
  | Instr.Ret None -> ()
  | Instr.Ret (Some _) -> fail "entry point returns a value"
  | Instr.Br next -> exec_block st f next
  | Instr.Cond_br (c, then_label, else_label) ->
    let cond = cond_of_avalue (avalue_of_operand st c) in
    (* shape: then-block is straight-line and rejoins at else_label *)
    let then_block = Func.find_block_exn f then_label in
    (match then_block.Block.term with
    | Instr.Br join when String.equal join else_label ->
      List.iter (exec_instr st ~cond:(Some cond)) then_block.Block.instrs;
      st.visited <- then_label :: st.visited;
      exec_block st f else_label
    | _ ->
      fail
        "unsupported control-flow shape (only if-then over measurement \
         results is recognized; lower first)")
  | Instr.Switch _ -> fail "switch instruction (lower first)"
  | Instr.Unreachable -> fail "unreachable terminator"

let parse_with_output_exn (m : Ir_module.t) : Circuit.t * int list =
  let entry =
    match Ir_module.entry_point m with
    | Some f when not (Func.is_declaration f) -> f
    | Some f -> fail "entry point @%s is a declaration" f.Func.name
    | None -> fail "module has no entry point"
  in
  let st =
    {
      m;
      env = Hashtbl.create 64;
      mem = Hashtbl.create 16;
      build = Circuit.Build.create ();
      next_qubit = 0;
      next_result = 0;
      next_slot = 0;
      max_qubit = -1;
      visited = [];
      recorded = [];
    }
  in
  exec_block st entry (Func.entry entry).Block.label;
  (* honor the declared qubit count when present *)
  (match Func.attr entry "required_num_qubits" with
  | Some n -> (
    match int_of_string_opt n with
    | Some n when n > st.max_qubit -> note_qubit st (n - 1)
    | _ -> ())
  | None -> ());
  if st.max_qubit >= 0 then Circuit.Build.touch_qubit st.build st.max_qubit;
  if st.next_result > 0 then Circuit.Build.touch_clbit st.build (st.next_result - 1);
  (Circuit.Build.finish st.build, List.rev st.recorded)

let parse m = fst (parse_with_output_exn m)

let parse_result m =
  match parse m with
  | c -> Ok c
  | exception Unsupported msg -> Error msg

let parse_with_output m =
  match parse_with_output_exn m with
  | pair -> Ok pair
  | exception Unsupported msg -> Error msg

(* Parses textual QIR end to end. *)
let parse_string src = parse (Parser.parse_module src)
