(** Conformance checking against QIR profiles (Sec. II-C). Violations
    name the rule broken so tools can emit actionable diagnostics.

    Base-profile rules: one void, parameterless entry point; a single
    straight-line basic block; only calls to the known QIS/RT vocabulary;
    static qubit/result addresses (operands the constant-address
    analysis proves constant count as static); no allocation, no result
    reads, no classical computation. Adaptive adds forward control flow, integer
    computation and result reads; loops and memory stay forbidden. *)

type violation = { rule : string; where : string; what : string }

val pp_violation : Format.formatter -> violation -> unit

val check : Profile.t -> Llvm_ir.Ir_module.t -> violation list
(** Empty list = conformant. *)

val conforms : Profile.t -> Llvm_ir.Ir_module.t -> bool

val classify : Llvm_ir.Ir_module.t -> Profile.t
(** The most restrictive profile the module satisfies. *)
