(** QIR -> circuit parsing by abstract interpretation of the entry
    function — the algorithm of the paper's Ex. 3: track variable
    assignments to infer the qubit passed to each quantum instruction,
    matching instructions by pattern.

    Supported shapes: base profile with static (Ex. 6) or dynamic
    (Fig. 1) addressing, and the adaptive read_result / compare / branch
    pattern emitted by {!Qir_builder} (forward branches only). Anything
    else — loops, unknown calls, general classical memory traffic — is
    rejected with a diagnostic suggesting {!Lowering} first.

    Clbit convention: the parsed circuit has one classical bit per QIR
    result id, in allocation order. *)

exception Unsupported of string

val parse : Llvm_ir.Ir_module.t -> Qcircuit.Circuit.t
(** Raises {!Unsupported}. *)

val parse_result : Llvm_ir.Ir_module.t -> (Qcircuit.Circuit.t, string) result

val parse_with_output :
  Llvm_ir.Ir_module.t -> (Qcircuit.Circuit.t * int list, string) result
(** Like {!parse_result}, additionally returning the result ids passed
    to [__quantum__rt__result_record_output], in call order (empty when
    the program records nothing). The program's output bitstring reads
    those results in that order, which need not match result-id order. *)

val parse_string : string -> Qcircuit.Circuit.t
(** Parses textual QIR end to end (LLVM text -> module -> circuit). *)
