(** Static vs. dynamic qubit addressing (Sec. IV-A).

    Detection scans reachable code only (a [qubit_allocate] in dead code
    does not make a module dynamic) and, via {!detect_proved}, consults
    the constant-address dataflow analysis
    ({!Qir_analysis.Const_addr}) to upgrade dynamically shaped operands
    it proves constant.

    Conversion goes through the circuit IR (parse, then re-emit). When
    the syntactic parser rejects a module whose addresses are
    phi-resolved constants, the proved-constant rewrite plus classical
    cleanup is applied and the parse retried, so {!to_static} converts
    programs the purely syntactic route refuses. The static result is
    the "register allocation" outcome the paper draws the analogy to
    (identity assignment — see {!Qmapping.Allocator} for the
    live-range-packing version). *)

type style = Static | Dynamic | Mixed | No_qubits

val pp_style : Format.formatter -> style -> unit

val detect : Llvm_ir.Ir_module.t -> style
(** Syntactic classification over reachable instructions: constant
    qubit addresses are static; allocations and locally computed
    addresses are dynamic. *)

type report = {
  syntactic : style;  (** what {!detect} reports *)
  proved : style;
      (** with proved-constant operands counted as static; dynamic only
          if some qubit operand remains unproved *)
  upgraded_args : int;
      (** dynamically shaped qubit operands proved constant *)
}

val detect_proved : Llvm_ir.Ir_module.t -> report

val to_static : ?record_output:bool -> Llvm_ir.Ir_module.t -> Llvm_ir.Ir_module.t
val to_dynamic : ?record_output:bool -> Llvm_ir.Ir_module.t -> Llvm_ir.Ir_module.t
