(* Conformance checking of a module against a QIR profile. Returns the
   list of violations (empty = conformant), each naming the rule it
   breaks, so tools can report actionable diagnostics. *)

open Llvm_ir

type violation = { rule : string; where : string; what : string }

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %s: %s" v.rule v.where v.what

type acc = { mutable violations : violation list }

let violate acc rule where fmt =
  Format.kasprintf
    (fun what -> acc.violations <- { rule; where; what } :: acc.violations)
    fmt

(* Is an operand a static qubit/result address (constant pointer)? *)
let is_static_address (o : Operand.t) =
  match o with
  | Operand.Const (Constant.Null | Constant.Inttoptr _) -> true
  | Operand.Const _ | Operand.Local _ -> false

let check_entry_point acc (m : Ir_module.t) =
  match Ir_module.entry_point m with
  | None ->
    violate acc "entry-point" "module" "no function carries the entry_point attribute";
    None
  | Some f ->
    if Func.is_declaration f then begin
      violate acc "entry-point" ("@" ^ f.Func.name) "entry point is a declaration";
      None
    end
    else begin
      if not (Ty.equal f.Func.ret_ty Ty.Void) then
        violate acc "entry-point" ("@" ^ f.Func.name)
          "entry point must return void";
      if f.Func.params <> [] then
        violate acc "entry-point" ("@" ^ f.Func.name)
          "entry point must take no parameters";
      Some f
    end

(* Rules for the base profile, applied to the entry function. The
   static-addresses rule consults the constant-address analysis: an
   operand that is dynamically shaped but proved constant is not a
   violation (it is a QA001 lint note instead). *)
let check_base acc (f : Func.t) =
  let where = "@" ^ f.Func.name in
  let facts = Qir_analysis.Const_addr.analyze f in
  (match f.Func.blocks with
  | [ _ ] -> ()
  | blocks ->
    violate acc "base:straight-line" where
      "base profile requires a single basic block, found %d"
      (List.length blocks));
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Call (_, callee, args) ->
            if not (Names.is_quantum callee) then
              violate acc "base:calls" where
                "call to non-quantum function @%s" callee
            else begin
              (match Signatures.find callee with
              | None ->
                violate acc "base:vocabulary" where
                  "unknown quantum function @%s" callee
              | Some s ->
                (* qubit and result operands must be static addresses *)
                let kinds = s.Signatures.args in
                if List.length kinds = List.length args then
                  List.iter2
                    (fun kind (a : Operand.typed) ->
                      match kind with
                      | Signatures.Qubit | Signatures.Result ->
                        if
                          (not (is_static_address a.Operand.v))
                          && Qir_analysis.Const_addr.proved_address facts
                               a.Operand.v
                             = None
                        then
                          violate acc "base:static-addresses" where
                            "@%s receives a dynamic qubit/result address"
                            callee
                      | Signatures.Double_arg | Signatures.Int_arg _
                      | Signatures.Ptr_arg ->
                        ())
                    kinds args);
              if String.equal callee Names.rt_qubit_allocate
                 || String.equal callee Names.rt_qubit_allocate_array
              then
                violate acc "base:no-allocation" where
                  "dynamic qubit allocation (@%s) is not allowed" callee;
              if String.equal callee Names.rt_read_result then
                violate acc "base:no-feedback" where
                  "reading measurement results (@%s) is not allowed" callee
            end
          | Instr.Alloca _ | Instr.Load _ | Instr.Store _ | Instr.Gep _ ->
            violate acc "base:no-memory" where
              "memory instruction '%s' is not allowed"
              (Printer.instr_to_string i)
          | Instr.Phi _ ->
            violate acc "base:straight-line" where "phi node is not allowed"
          | Instr.Binop _ | Instr.Fbinop _ | Instr.Icmp _ | Instr.Fcmp _
          | Instr.Select _ | Instr.Cast _ | Instr.Freeze _ ->
            violate acc "base:no-classical" where
              "classical computation '%s' is not allowed"
              (Printer.instr_to_string i))
        b.Block.instrs;
      match b.Block.term with
      | Instr.Ret None -> ()
      | Instr.Ret (Some _) ->
        violate acc "base:straight-line" where "entry point returns a value"
      | Instr.Br _ | Instr.Cond_br _ | Instr.Switch _ ->
        violate acc "base:straight-line" where "branching is not allowed"
      | Instr.Unreachable ->
        violate acc "base:straight-line" where "unreachable terminator")
    f.Func.blocks

(* Rules for the adaptive profile, applied to one function body:
   forward control flow and integer computation are allowed; memory,
   floats beyond rotation constants and unknown calls are not. Loops
   are rejected. Calls to functions *defined in the module* are fine —
   each reachable definition is checked with the same rules (and
   inlining can flatten them away) — but recursion has no lowering to
   any profile, and calls to external classical code stay violations. *)
let check_adaptive_func acc (cg : Qir_analysis.Call_graph.t) (f : Func.t) =
  let where = "@" ^ f.Func.name in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Call (_, callee, _) ->
            if Names.is_quantum callee then begin
              if Signatures.find callee = None then
                violate acc "adaptive:vocabulary" where
                  "unknown quantum function @%s" callee
            end
            else if
              not
                (List.mem callee (Qir_analysis.Call_graph.callees cg f.Func.name))
            then
              violate acc "adaptive:calls" where
                "call to external function @%s" callee
          | Instr.Alloca _ | Instr.Load _ | Instr.Store _ | Instr.Gep _ ->
            violate acc "adaptive:no-memory" where
              "memory instruction '%s' is not allowed"
              (Printer.instr_to_string i)
          | Instr.Fbinop _ | Instr.Fcmp _ ->
            violate acc "adaptive:no-float" where
              "floating-point computation is not allowed"
          | Instr.Binop _ | Instr.Icmp _ | Instr.Select _ | Instr.Cast _
          | Instr.Phi _ | Instr.Freeze _ ->
            ())
        b.Block.instrs)
    f.Func.blocks;
  (* no loops *)
  if Passes.Loop.find f <> [] then
    violate acc "adaptive:no-loops" where "function @%s contains loops"
      f.Func.name;
  if Qir_analysis.Call_graph.is_recursive cg f.Func.name then
    violate acc "adaptive:no-recursion" where
      "function @%s is recursive; no QIR profile supports recursion"
      f.Func.name

(* The adaptive check is whole-program: every defined function reachable
   from the entry point must conform, since it will execute there. *)
let check_adaptive acc (m : Ir_module.t) =
  let cg = Qir_analysis.Call_graph.build m in
  List.iter
    (fun name ->
      match Ir_module.find_func m name with
      | Some f when not (Func.is_declaration f) -> check_adaptive_func acc cg f
      | Some _ | None -> ())
    (Qir_analysis.Call_graph.reachable_defined cg)

let check (profile : Profile.t) (m : Ir_module.t) : violation list =
  let acc = { violations = [] } in
  (match check_entry_point acc m with
  | Some f -> (
    match profile with
    | Profile.Base -> check_base acc f
    | Profile.Adaptive -> check_adaptive acc m
    | Profile.Full -> ())
  | None -> ());
  List.rev acc.violations

let conforms profile m = check profile m = []

(* The most restrictive profile the module satisfies. *)
let classify m =
  if conforms Profile.Base m then Profile.Base
  else if conforms Profile.Adaptive m then Profile.Adaptive
  else Profile.Full
