(* Static vs. dynamic qubit addressing (Sec. IV-A). Detection scans the
   module's *reachable* instructions — a qubit_allocate sitting in dead
   code must not classify the program as dynamic — and can additionally
   consult the constant-address dataflow analysis to upgrade operands it
   proves constant. Conversion goes through the circuit IR: parse with
   the Ex. 3 machinery, then re-emit in the requested style; when the
   syntactic parser rejects the module (phi-resolved addresses), the
   proved-constant rewrite plus classical cleanup gives it a second
   chance. The conversion to static addresses is the "register
   allocation" step the paper draws the analogy to — the identity
   assignment here; {!Qmapping.Allocator} implements the
   live-range-packing version. *)

open Llvm_ir
module Const_addr = Qir_analysis.Const_addr

type style = Static | Dynamic | Mixed | No_qubits

let pp_style ppf s =
  Format.pp_print_string ppf
    (match s with
    | Static -> "static"
    | Dynamic -> "dynamic"
    | Mixed -> "mixed"
    | No_qubits -> "no-qubits")

let classify_flags ~static ~dynamic =
  match static, dynamic with
  | true, true -> Mixed
  | true, false -> Static
  | false, true -> Dynamic
  | false, false -> No_qubits

(* One scan serving both views. [syntactic] counts a constant pointer as
   static and anything else (allocations, locally-computed addresses) as
   dynamic; [proved] additionally counts operands the dataflow analysis
   resolves to a constant as static, leaving allocations dynamic only
   when some qubit still reaches a gate through an unproved address. *)
type report = {
  syntactic : style;
  proved : style;
  upgraded_args : int;  (* dynamically shaped operands proved constant *)
}

let scan (m : Ir_module.t) : report =
  let syn_static = ref false and syn_dynamic = ref false in
  let proved_args = ref 0 and unproved_args = ref 0 in
  (* interprocedural constant propagation: an address that is constant
     at every call site counts as proved inside the callee too *)
  let mf = Const_addr.analyze_module m in
  List.iter
    (fun (f : Func.t) ->
      if not (Func.is_declaration f) then begin
        let facts = Const_addr.func_facts mf f.Func.name in
        List.iter
          (fun (b : Block.t) ->
            if Const_addr.block_reached facts b.Block.label then
              List.iter
                (fun (i : Instr.t) ->
                  match i.Instr.op with
                  | Instr.Call (_, callee, args) when Names.is_quantum callee
                    -> (
                    if
                      String.equal callee Names.rt_qubit_allocate
                      || String.equal callee Names.rt_qubit_allocate_array
                    then syn_dynamic := true;
                    match Signatures.find callee with
                    | Some s
                      when List.length s.Signatures.args = List.length args ->
                      List.iter2
                        (fun kind (a : Operand.typed) ->
                          match kind with
                          | Signatures.Qubit -> (
                            match a.Operand.v with
                            | Operand.Const (Constant.Inttoptr _)
                            | Operand.Const Constant.Null ->
                              syn_static := true
                            | o -> (
                              syn_dynamic := true;
                              match Const_addr.proved_address facts o with
                              | Some _ -> incr proved_args
                              | None -> incr unproved_args))
                          | Signatures.Result
                          | Signatures.Double_arg | Signatures.Int_arg _
                          | Signatures.Ptr_arg ->
                            ())
                        s.Signatures.args args
                    | _ -> ())
                  | _ -> ())
                b.Block.instrs)
          f.Func.blocks
      end)
    m.Ir_module.funcs;
  let syntactic =
    classify_flags ~static:!syn_static ~dynamic:!syn_dynamic
  in
  let proved =
    classify_flags
      ~static:(!syn_static || !proved_args > 0)
      ~dynamic:(!unproved_args > 0)
  in
  { syntactic; proved; upgraded_args = !proved_args }

let detect (m : Ir_module.t) : style = (scan m).syntactic
let detect_proved = scan

(* Conversions (semantic route: QIR -> circuit -> QIR). When the
   syntactic parser rejects the module, rewrite proved-constant
   addresses into their literal spelling, let DCE and CFG cleanup sweep
   the now-dead address computation (phi chains, branches over folded
   conditions), and retry — the path that converts the programs the
   seed refused. *)
let parse_with_upgrade (m : Ir_module.t) =
  try Qir_parser.parse m
  with Qir_parser.Unsupported _ as first -> (
    (* a multi-function module first gets flattened: inlining turns a
       constant address threaded through a call into a local constant
       the rewrite below can spell out *)
    let m =
      match Ir_module.defined_funcs m with
      | _ :: _ :: _ -> Passes.Pipeline.lower m
      | _ -> m
    in
    try Qir_parser.parse m
    with Qir_parser.Unsupported _ -> (
      let m', upgraded = Const_addr.rewrite m in
      if upgraded = 0 then raise first
      else
        let m' = Passes.Pipeline.optimize m' in
        try Qir_parser.parse m' with Qir_parser.Unsupported _ -> raise first))

let to_static ?record_output (m : Ir_module.t) =
  let circuit = parse_with_upgrade m in
  Qir_builder.build ~addressing:`Static ?record_output circuit

let to_dynamic ?record_output (m : Ir_module.t) =
  let circuit = parse_with_upgrade m in
  Qir_builder.build ~addressing:`Dynamic ?record_output circuit
