(** Placement of classical segments (Sec. IV-B): deciding "which part of
    the code should be executed on the classical hardware and which part
    on the quantum hardware".

    Rules: classical segments feeding later quantum instructions are on
    the quantum critical path — the controller is preferred, but only for
    segments expressible in controller-supported operations (integer
    compute, no memory/floats/calls) that fit the program store;
    result-independent classical code runs on the host off the critical
    path, for free. *)

type decision = {
  segment : Classify.segment;
  placement : Latency.placement;
  cost_ns : float;  (** contribution to the quantum critical path *)
  forced : bool;  (** only one placement was legal *)
}

type plan = {
  decisions : decision list;
  critical_path_ns : float;
  controller_instrs : int;
}

val controller_supports :
  ?summaries:Qir_analysis.Summary.table -> Llvm_ir.Instr.t -> bool
(** With [summaries], a call to a defined function whose summary says
    [controller_ok] counts as supported (conceptually inlinable). *)

val segment_controller_ok :
  ?summaries:Qir_analysis.Summary.table -> Classify.segment -> bool

val plan :
  ?summaries:Qir_analysis.Summary.table ->
  ?params:Latency.params ->
  Classify.segment list ->
  plan

val plan_module : ?params:Latency.params -> Llvm_ir.Ir_module.t -> plan
(** Segments the entry point and plans it, consulting function effect
    summaries for calls. Raises [Invalid_argument] when the module has
    no defined entry point. *)

val pp_plan : Format.formatter -> plan -> unit
