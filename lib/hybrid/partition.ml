(* Placement of classical segments (Sec. IV-B): "the question naturally
   arises for a hybrid classical-quantum program ... how to decide which
   part of the code should be executed on the classical hardware and
   which part on the quantum hardware."

   Rule set:
   - classical segments that feed later quantum instructions lie on the
     critical path: placing them on the host costs a round-trip; on the
     controller they must be expressible in controller-supported
     operations and fit the program store;
   - segments that do not feed quantum code can run on the host
     asynchronously (no round-trip on the quantum critical path). *)

open Llvm_ir

type decision = {
  segment : Classify.segment;
  placement : Latency.placement;
  cost_ns : float; (* contribution to the quantum critical path *)
  forced : bool; (* true when only one placement was legal *)
}

type plan = {
  decisions : decision list;
  critical_path_ns : float;
  controller_instrs : int;
}

(* Can the controller execute this instruction? Integer compute and
   forward branches only — no memory, floats or calls (the paper: special
   purpose hardware is "incapable of executing arbitrary classical
   code"). *)
let controller_supports ?(summaries : Qir_analysis.Summary.table option)
    (i : Instr.t) =
  match i.Instr.op with
  | Instr.Binop (_, ty, _, _) | Instr.Icmp (_, ty, _, _) -> Ty.is_integer ty
  | Instr.Select _ | Instr.Freeze _ -> true
  | Instr.Cast ((Instr.Zext | Instr.Sext | Instr.Trunc), _, _) -> true
  | Instr.Cast
      ((Instr.Bitcast | Instr.Inttoptr | Instr.Ptrtoint | Instr.Sitofp
        | Instr.Fptosi), _, _) ->
    false
  | Instr.Phi _ -> true
  | Instr.Call (_, callee, _) -> (
    (* result reads happen at the controller by construction *)
    String.equal callee Names.rt_read_result
    || String.equal callee Names.rt_result_equal
    ||
    (* a summarized callee whose body is itself controller-expressible
       is conceptually inlinable into the controller program *)
    match
      Option.bind summaries (fun t -> Qir_analysis.Summary.find t callee)
    with
    | Some s -> s.Qir_analysis.Summary.controller_ok
    | None -> false)
  | Instr.Fbinop _ | Instr.Fcmp _ | Instr.Alloca _ | Instr.Load _
  | Instr.Store _ | Instr.Gep _ ->
    false

let segment_controller_ok ?summaries (s : Classify.segment) =
  List.for_all (controller_supports ?summaries) s.Classify.instrs

let plan ?summaries ?(params = Latency.default)
    (segments : Classify.segment list) : plan =
  let controller_budget = ref params.Latency.controller_max_instrs in
  let decisions =
    List.map
      (fun (s : Classify.segment) ->
        match s.Classify.seg_class with
        | `Quantum ->
          { segment = s; placement = Latency.Controller; cost_ns = 0.0;
            forced = true }
        | `Classical ->
          let n = List.length s.Classify.instrs in
          if not s.Classify.feeds_quantum then
            (* off the critical path: host, free of round-trip *)
            { segment = s; placement = Latency.Host; cost_ns = 0.0;
              forced = false }
          else begin
            let can_controller =
              segment_controller_ok ?summaries s && n <= !controller_budget
            in
            let controller_cost =
              Latency.segment_cost params ~instrs:n Latency.Controller
            in
            let host_cost = Latency.segment_cost params ~instrs:n Latency.Host in
            if can_controller && controller_cost <= host_cost then begin
              controller_budget := !controller_budget - n;
              { segment = s; placement = Latency.Controller;
                cost_ns = controller_cost; forced = false }
            end
            else
              { segment = s; placement = Latency.Host; cost_ns = host_cost;
                forced = not can_controller }
          end)
      segments
  in
  let critical_path_ns =
    List.fold_left (fun acc d -> acc +. d.cost_ns) 0.0 decisions
  in
  let controller_instrs =
    List.fold_left
      (fun acc d ->
        match d.placement, d.segment.Classify.seg_class with
        | Latency.Controller, `Classical ->
          acc + List.length d.segment.Classify.instrs
        | _ -> acc)
      0 decisions
  in
  { decisions; critical_path_ns; controller_instrs }

let plan_module ?params (m : Ir_module.t) =
  match Ir_module.entry_point m with
  | Some f when not (Func.is_declaration f) ->
    let summaries = Qir_analysis.Summary.of_module m in
    plan ~summaries ?params (Classify.segments_of_func ~summaries f)
  | Some _ | None -> invalid_arg "Partition.plan_module: no entry point"

let pp_plan ppf p =
  Format.fprintf ppf "critical path %.0f ns, controller instrs %d@\n"
    p.critical_path_ns p.controller_instrs;
  List.iter
    (fun d ->
      Format.fprintf ppf "  %-9s %-10s %4d instrs %10.0f ns%s@\n"
        (match d.segment.Classify.seg_class with
        | `Quantum -> "quantum"
        | `Classical -> "classical")
        (Latency.placement_name d.placement)
        (List.length d.segment.Classify.instrs)
        d.cost_ns
        (if d.forced then " (forced)" else ""))
    p.decisions
