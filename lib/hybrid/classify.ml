(* Instruction classification for hybrid programs (Sec. IV-B): which
   parts of a QIR program are quantum instructions, which are classical,
   and which classical parts feed back into quantum control. *)

open Llvm_ir

type instr_class =
  | Quantum (* qis gate / measure / reset *)
  | Result_read (* read_result / result_equal: the feedback boundary *)
  | Runtime_bookkeeping (* rt allocation, refcounts, output recording *)
  | Classical (* arithmetic, comparisons, casts, selects *)
  | Memory (* alloca / load / store / gep *)
  | Call_classical (* call to a non-quantum function *)

(* With [summaries] (see {!Qir_analysis.Summary}), calls to defined
   functions classify by what the callee actually does instead of the
   blanket [Call_classical]: a callee with quantum effects is Quantum, a
   pure result-reading callee sits on the feedback boundary, and a
   side-effect-free classical callee is plain classical compute. *)
let classify_instr ?(summaries : Qir_analysis.Summary.table option)
    (i : Instr.t) : instr_class =
  match i.Instr.op with
  | Instr.Call (_, callee, _) ->
    if Names.is_qis callee then
      if String.equal callee Names.rt_read_result then Result_read
      else Quantum
    else if Names.is_rt callee then
      if String.equal callee Names.rt_result_equal then Result_read
      else Runtime_bookkeeping
    else begin
      match
        Option.bind summaries (fun t -> Qir_analysis.Summary.find t callee)
      with
      | Some s when not (Qir_analysis.Summary.quantum_free s) -> Quantum
      | Some s
        when s.Qir_analysis.Summary.reads_statics <> []
             || Array.exists
                  (fun fx -> fx.Qir_analysis.Summary.fx_reads)
                  s.Qir_analysis.Summary.arg_fx ->
        Result_read
      | Some s when s.Qir_analysis.Summary.side_effect_free -> Classical
      | Some _ | None -> Call_classical
    end
  | Instr.Alloca _ | Instr.Load _ | Instr.Store _ | Instr.Gep _ -> Memory
  | Instr.Binop _ | Instr.Fbinop _ | Instr.Icmp _ | Instr.Fcmp _
  | Instr.Select _ | Instr.Cast _ | Instr.Phi _ | Instr.Freeze _ ->
    Classical

let class_name = function
  | Quantum -> "quantum"
  | Result_read -> "result-read"
  | Runtime_bookkeeping -> "runtime"
  | Classical -> "classical"
  | Memory -> "memory"
  | Call_classical -> "classical-call"

type counts = {
  quantum : int;
  result_reads : int;
  runtime : int;
  classical : int;
  memory : int;
  classical_calls : int;
}

let count_function ?summaries (f : Func.t) : counts =
  Func.fold_instrs f
    { quantum = 0; result_reads = 0; runtime = 0; classical = 0; memory = 0;
      classical_calls = 0 }
    (fun acc i ->
      match classify_instr ?summaries i with
      | Quantum -> { acc with quantum = acc.quantum + 1 }
      | Result_read -> { acc with result_reads = acc.result_reads + 1 }
      | Runtime_bookkeeping -> { acc with runtime = acc.runtime + 1 }
      | Classical -> { acc with classical = acc.classical + 1 }
      | Memory -> { acc with memory = acc.memory + 1 }
      | Call_classical -> { acc with classical_calls = acc.classical_calls + 1 })

(* ------------------------------------------------------------------ *)
(* Segmentation: maximal runs of quantum vs. classical instructions     *)

type segment = {
  seg_class : [ `Quantum | `Classical ];
  instrs : Instr.t list;
  (* does a quantum instruction later depend on this classical segment's
     values? (set by Segmenting over the entry function) *)
  feeds_quantum : bool;
  reads_results : bool;
}

let coarse_class ?summaries i =
  match classify_instr ?summaries i with
  | Quantum -> `Quantum
  | Result_read | Runtime_bookkeeping | Classical | Memory | Call_classical ->
    `Classical

(* Splits the straight-lined entry function into alternating segments.
   Operates on the instruction stream in block order; terminators between
   blocks are classical control and glue segments together. *)
let segments_of_func ?summaries (f : Func.t) : segment list =
  let instrs =
    List.concat_map (fun (b : Block.t) -> b.Block.instrs) f.Func.blocks
  in
  (* values consumed by terminators steer control flow; when quantum code
     appears later, such values are feedback into quantum execution *)
  let terminator_uses =
    List.concat_map
      (fun (b : Block.t) ->
        List.filter_map
          (fun (o : Operand.typed) ->
            match o.Operand.v with
            | Operand.Local name -> Some name
            | Operand.Const _ -> None)
          (Instr.term_operands b.Block.term))
      f.Func.blocks
  in
  let defs_of seg =
    List.filter_map (fun (i : Instr.t) -> i.Instr.id) seg
  in
  let rec group acc current current_class = function
    | [] ->
      let acc =
        match current with
        | [] -> acc
        | _ -> (current_class, List.rev current) :: acc
      in
      List.rev acc
    | i :: rest ->
      let c = coarse_class ?summaries i in
      if c = current_class || current = [] then
        group acc (i :: current) c rest
      else group ((current_class, List.rev current) :: acc) [ i ] c rest
  in
  let raw = group [] [] `Classical instrs in
  (* which segment values are used by later quantum segments? *)
  let rec annotate = function
    | [] -> []
    | (cls, seg) :: rest ->
      let rest' = annotate rest in
      let quantum_later =
        List.exists (fun (s : segment) -> s.seg_class = `Quantum) rest'
      in
      let later_quantum_uses =
        List.exists
          (fun (s : segment) ->
            s.seg_class = `Quantum
            && List.exists
                 (fun (i : Instr.t) ->
                   List.exists
                     (fun (o : Operand.typed) ->
                       match o.Operand.v with
                       | Operand.Local name -> List.mem name (defs_of seg)
                       | Operand.Const _ -> false)
                     (Instr.operands i.Instr.op))
                 s.instrs)
          rest'
        || (quantum_later
           && List.exists
                (fun d -> List.mem d terminator_uses)
                (defs_of seg))
      in
      let reads_results =
        List.exists
          (fun i ->
            match classify_instr ?summaries i with
            | Result_read -> true
            | _ -> false)
          seg
      in
      {
        seg_class = cls;
        instrs = seg;
        feeds_quantum = later_quantum_uses;
        reads_results;
      }
      :: rest'
  in
  annotate raw
