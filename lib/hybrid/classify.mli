(** Instruction classification for hybrid programs (Sec. IV-B): which
    parts of a QIR program are quantum, which are classical, and which
    classical parts feed back into quantum control. *)

type instr_class =
  | Quantum  (** QIS gate / measure / reset *)
  | Result_read  (** read_result / result_equal: the feedback boundary *)
  | Runtime_bookkeeping  (** allocation, refcounts, output recording *)
  | Classical  (** arithmetic, comparisons, casts, selects, phis *)
  | Memory  (** alloca / load / store / gep *)
  | Call_classical  (** call to a non-quantum function *)

val classify_instr :
  ?summaries:Qir_analysis.Summary.table -> Llvm_ir.Instr.t -> instr_class
(** With [summaries], calls to defined functions classify by the
    callee's effects — quantum-effect callees are [Quantum], pure
    result-reading callees are [Result_read], side-effect-free classical
    callees are [Classical] — instead of the blanket [Call_classical]. *)

val class_name : instr_class -> string

type counts = {
  quantum : int;
  result_reads : int;
  runtime : int;
  classical : int;
  memory : int;
  classical_calls : int;
}

val count_function :
  ?summaries:Qir_analysis.Summary.table -> Llvm_ir.Func.t -> counts

type segment = {
  seg_class : [ `Classical | `Quantum ];
  instrs : Llvm_ir.Instr.t list;
  feeds_quantum : bool;
      (** the segment's values reach later quantum instructions, directly
          or through branch conditions guarding them *)
  reads_results : bool;
}

val segments_of_func :
  ?summaries:Qir_analysis.Summary.table -> Llvm_ir.Func.t -> segment list
(** Maximal alternating quantum/classical runs over the entry function's
    instruction stream (in block order). *)
