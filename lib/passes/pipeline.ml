(* Preset pass pipelines. *)

open Llvm_ir

let all_passes : Pass.func_pass list =
  [
    Mem2reg.pass;
    Const_fold.pass;
    Sccp.pass;
    Instcombine.pass;
    Cse.pass;
    Dce.pass;
    Simplify_cfg.pass;
    Unroll.pass;
    Inline.pass;
  ]

(* Passes contributed by higher layers (e.g. the analysis library's
   quantum-dce), registered at tool startup. *)
let extra_passes : Pass.func_pass list ref = ref []

let register_pass (p : Pass.func_pass) =
  if
    not
      (List.exists
         (fun (q : Pass.func_pass) -> String.equal q.Pass.name p.Pass.name)
         !extra_passes)
  then extra_passes := !extra_passes @ [ p ]

let registered () = all_passes @ !extra_passes

(* Whole-module passes contributed by higher layers (the analysis
   library's quantum-dce removes unreachable functions, which no
   func_pass can express). *)
let extra_module_passes : Pass.module_pass list ref = ref []

let register_module_pass (p : Pass.module_pass) =
  if
    not
      (List.exists
         (fun (q : Pass.module_pass) -> String.equal q.Pass.mname p.Pass.mname)
         !extra_module_passes)
  then extra_module_passes := !extra_module_passes @ [ p ]

let registered_module () = !extra_module_passes

let find_pass name =
  List.find_opt (fun (p : Pass.func_pass) -> String.equal p.Pass.name name)
    (registered ())

let find_module_pass name =
  List.find_opt
    (fun (p : Pass.module_pass) -> String.equal p.Pass.mname name)
    !extra_module_passes

(* Every runnable pass name: func passes first, then module passes. *)
let pass_names () =
  List.map (fun (p : Pass.func_pass) -> p.Pass.name) (registered ())
  @ List.map (fun (p : Pass.module_pass) -> p.Pass.mname) !extra_module_passes

(* The cleanup pipeline: SSA construction plus the classical scalar
   optimizations the paper names in Sec. II-B. *)
let standard : Pass.module_pass list =
  List.map Pass.of_func_pass
    [ Mem2reg.pass; Sccp.pass; Instcombine.pass; Cse.pass; Simplify_cfg.pass;
      Dce.pass ]

(* The lowering pipeline: flattens a hybrid (adaptive-profile) program
   towards the base profile — inline everything into the entry point,
   promote memory to SSA, propagate constants, fully unroll counted loops
   and clean up. Corresponds to the paper's Sec. III-B / Ex. 4. *)
let lowering : Pass.module_pass list =
  List.map Pass.of_func_pass
    [
      Inline.pass;
      Mem2reg.pass;
      Sccp.pass;
      Simplify_cfg.pass;
      Unroll.pass;
      Sccp.pass;
      Const_fold.pass;
      Instcombine.pass;
      Cse.pass;
      Simplify_cfg.pass;
      Dce.pass;
    ]

let optimize ?(max_rounds = 8) m =
  Pass.run_until_fixpoint ~max_rounds standard m

let lower ?(max_rounds = 8) m =
  Pass.run_until_fixpoint ~max_rounds lowering m

(* Runs a single named pass once; [Invalid_argument] on unknown names.
   Module passes are looked up after func passes. *)
let run_pass name (m : Ir_module.t) =
  match find_pass name with
  | Some p -> fst ((Pass.of_func_pass p).Pass.mrun m)
  | None -> (
    match find_module_pass name with
    | Some p -> fst (p.Pass.mrun m)
    | None ->
      invalid_arg
        (Printf.sprintf "Pipeline.run_pass: unknown pass %s (registered: %s)"
           name
           (String.concat ", " (pass_names ()))))
