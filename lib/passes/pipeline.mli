(** Preset pass pipelines. *)

open Llvm_ir

val all_passes : Pass.func_pass list
(** mem2reg, const-fold, sccp, instcombine, cse, dce, simplify-cfg,
    loop-unroll, inline. *)

val register_pass : Pass.func_pass -> unit
(** Adds a pass contributed by a higher layer (e.g. quantum-dce from the
    analysis library) to the name lookup; idempotent per name. *)

val registered : unit -> Pass.func_pass list
(** {!all_passes} plus everything {!register_pass}ed, in order. *)

val find_pass : string -> Pass.func_pass option

val register_module_pass : Pass.module_pass -> unit
(** Adds a whole-module pass contributed by a higher layer (e.g. the
    analysis library's quantum-dce, which removes unreachable
    functions); idempotent per name. *)

val registered_module : unit -> Pass.module_pass list
val find_module_pass : string -> Pass.module_pass option

val pass_names : unit -> string list
(** Every name {!run_pass} accepts: func passes, then module passes. *)

val standard : Pass.module_pass list
(** SSA construction plus the classical scalar optimizations the paper
    names in Sec. II-B (mem2reg, SCCP, CFG simplification, DCE). *)

val lowering : Pass.module_pass list
(** The adaptive-to-base flattening pipeline (Sec. III-B / Ex. 4):
    inline, mem2reg, SCCP, full unrolling, folding, DCE, CFG cleanup. *)

val optimize : ?max_rounds:int -> Ir_module.t -> Ir_module.t
val lower : ?max_rounds:int -> Ir_module.t -> Ir_module.t

val run_pass : string -> Ir_module.t -> Ir_module.t
(** Runs one named pass once; raises [Invalid_argument] on unknown
    names. *)
