(* Admission control: reject a job *before* it touches the simulator
   when its statevector memory footprint would breach the configured
   budget. At 30 qubits the sharded statevector is 16 GiB of amplitudes
   (2^30 x two float64 arrays); a service that discovers that mid-run
   has already lost — the whole point is to fail fast with a stable
   taxonomy code ([Overload], exit 8) while the queue is still healthy.

   Footprint sizing consults every proof available, strongest first:

   - the *resource certificate* ({!Qir_analysis.Resource}) carries
     static upper and lower register bounds. A finite upper bound
     replaces the declared footprint; a lower bound over budget rejects
     the job before anything is compiled — no execution can fit, so no
     cycle should be spent on it.
   - a cached gate-tape proof pins the exact register requirement;
   - the entry point's "required_num_qubits" attribute is the declared
     requirement — the tenant's claim, trusted only when nothing proves
     more. When a proof shows a *higher* peak than the declaration the
     proof wins and the discrepancy is surfaced as a QR003 note.

   Stabilizer-backed jobs use the tableau's quadratic footprint, which
   is negligible at any qubit count this toolchain accepts. Modules
   that declare nothing (registers grow on demand) are admitted at the
   minimum footprint — the budget protects against the proven and
   declared giants, and the dynamic growth path is still bounded by
   {!Qsim.Statevector.max_qubits}. *)

let bytes_per_amplitude = 16 (* re + im, float64 each *)

(* 2^q amplitudes without overflowing 63-bit ints for absurd declared
   qubit counts. *)
let statevector_bytes q =
  if q >= 58 then max_int else bytes_per_amplitude * (1 lsl max 0 q)

let stabilizer_bytes q =
  (* (2n+1) generator rows of 2n+1 bits, stored bytewise *)
  let n = max 1 q in
  ((2 * n) + 1) * (((2 * n) + 8) / 8)

let inner_backend (backend : Qruntime.Executor.backend_kind) =
  match backend with
  | (`Statevector | `Stabilizer) as b -> b
  | `Faulty spec -> (spec.Qsim.Faulty.inner :> [ `Statevector | `Stabilizer ])

let backend_bytes ~(backend : Qruntime.Executor.backend_kind) q =
  match inner_backend backend with
  | `Statevector -> statevector_bytes q
  | `Stabilizer -> stabilizer_bytes q

(* What the admission decision was sized from. *)
type verdict = {
  v_qubits : int;  (* register requirement charged *)
  v_bytes : int;  (* footprint charged (per the backend model) *)
  v_source : [ `Declared | `Tape | `Certificate ];
  v_qr003 : string option;  (* set when a proof beats the declaration *)
}

(* The register requirement the footprint is sized from: the declared
   attribute, upgraded by the exact tape proof and by a finite
   certified upper bound — the strongest proof wins, never the
   weakest claim. *)
let evaluate ?tape ?cert ~(backend : Qruntime.Executor.backend_kind)
    (m : Llvm_ir.Ir_module.t) : verdict =
  let declared = Qruntime.Executor.declared_qubits m in
  let tape_q = Option.map Qruntime.Gate_tape.qubits tape in
  let cert_q = Option.bind cert Qir_analysis.Resource.qubits_upper in
  (* an unbounded certificate still proves its lower bound *)
  let cert_floor =
    match (cert_q, cert) with
    | None, Some c -> Some (Qir_analysis.Resource.qubits_lower c)
    | _ -> None
  in
  let candidates =
    (declared, `Declared)
    :: List.filter_map
         (fun (q, src) -> Option.map (fun q -> (q, src)) q)
         [ (tape_q, `Tape); (cert_q, `Certificate); (cert_floor, `Certificate) ]
  in
  let v_qubits, v_source =
    List.fold_left
      (fun (bq, bs) (q, s) -> if q > bq then (q, s) else (bq, bs))
      (declared, `Declared) candidates
  in
  let v_qr003 =
    if declared > 0 && v_qubits > declared && v_source <> `Declared then
      Some
        (Printf.sprintf
           "QR003: declared qubit count %d is below the %s peak %d; charging \
            the proven bound"
           declared
           (match v_source with `Tape -> "tape-proven" | _ -> "certified")
           v_qubits)
    else None
  in
  { v_qubits; v_bytes = backend_bytes ~backend v_qubits; v_source; v_qr003 }

let required_qubits ?tape ?cert (m : Llvm_ir.Ir_module.t) =
  (evaluate ?tape ?cert ~backend:`Statevector m).v_qubits

let footprint_bytes ?tape ?cert ~(backend : Qruntime.Executor.backend_kind)
    (m : Llvm_ir.Ir_module.t) =
  (evaluate ?tape ?cert ~backend m).v_bytes

let pp_bytes ppf bytes =
  let b = float_of_int bytes in
  if b < 1024. then Format.fprintf ppf "%d B" bytes
  else if b < 1024. ** 2. then Format.fprintf ppf "%.1f KiB" (b /. 1024.)
  else if b < 1024. ** 3. then Format.fprintf ppf "%.1f MiB" (b /. (1024. ** 2.))
  else Format.fprintf ppf "%.1f GiB" (b /. (1024. ** 3.))

let bytes_to_string bytes = Format.asprintf "%a" pp_bytes bytes

let overload fmt =
  Format.kasprintf
    (fun message ->
      Error
        (Qruntime.Qir_error.make ~kind:Qruntime.Qir_error.Overload
           ~layer:Qruntime.Qir_error.L_service message))
    fmt

(* [check ~budget ~backend m] admits or rejects the job on memory
   grounds. [Error] carries an [Overload]-kind taxonomy error (stable
   exit code 8) so the rejection flows through the same reporting path
   as every other failure.

   With a certificate, the *proven lower bound* is tested first: when
   even the cheapest execution breaches the budget the job is rejected
   before any compilation — that rejection costs one static analysis,
   not a bytecode compile plus a doomed simulation. *)
let check ?tape ?cert ~budget ~(backend : Qruntime.Executor.backend_kind)
    (m : Llvm_ir.Ir_module.t) : (verdict, Qruntime.Qir_error.t) result =
  let lower_reject =
    match cert with
    | Some c ->
      let q_lo = Qir_analysis.Resource.qubits_lower c in
      let bytes_lo = backend_bytes ~backend q_lo in
      if bytes_lo > budget then Some (q_lo, bytes_lo) else None
    | None -> None
  in
  match lower_reject with
  | Some (q_lo, bytes_lo) ->
    overload
      "admission rejected before compile: proven %d-qubit lower bound needs \
       %s, over the %s memory budget"
      q_lo (bytes_to_string bytes_lo) (bytes_to_string budget)
  | None ->
    let v = evaluate ?tape ?cert ~backend m in
    if v.v_bytes > budget then
      overload
        "admission rejected: %d-qubit statevector footprint %s exceeds the \
         %s memory budget"
        v.v_qubits (bytes_to_string v.v_bytes) (bytes_to_string budget)
    else Ok v

(* Per-tenant memory accounting: the certified footprints of a tenant's
   in-flight jobs must fit the budget *together*, not just one at a
   time — a tenant cannot queue ten 15 GiB jobs under a 16 GiB budget
   and rely on serialization to hide the aggregate claim. *)
let check_tenant ~budget ~tenant ~inflight_bytes ~bytes :
    (unit, Qruntime.Qir_error.t) result =
  if inflight_bytes > 0 && inflight_bytes + bytes > budget then
    overload
      "admission rejected: tenant %s in-flight certified footprint %s + %s \
       exceeds the %s memory budget"
      tenant
      (bytes_to_string inflight_bytes)
      (bytes_to_string bytes) (bytes_to_string budget)
  else Ok ()
