(* Admission control: reject a job *before* it touches the simulator
   when its statevector memory footprint would breach the configured
   budget. At 30 qubits the sharded statevector is 16 GiB of amplitudes
   (2^30 x two float64 arrays); a service that discovers that mid-run
   has already lost — the whole point is to fail fast with a stable
   taxonomy code ([Overload], exit 8) while the queue is still healthy.

   Footprint sizing: the entry point's "required_num_qubits" attribute
   is the declared requirement; when the session already holds a
   proved-static gate tape for the module, the tape's exact register
   requirement wins (the proof beats the attribute). Stabilizer-backed
   jobs use the tableau's quadratic footprint, which is negligible at
   any qubit count this toolchain accepts. Modules that declare nothing
   (registers grow on demand) are admitted at the minimum footprint —
   the budget protects against the declared giants, and the dynamic
   growth path is still bounded by {!Qsim.Statevector.max_qubits}. *)

let bytes_per_amplitude = 16 (* re + im, float64 each *)

(* 2^q amplitudes without overflowing 63-bit ints for absurd declared
   qubit counts. *)
let statevector_bytes q =
  if q >= 58 then max_int else bytes_per_amplitude * (1 lsl max 0 q)

let stabilizer_bytes q =
  (* (2n+1) generator rows of 2n+1 bits, stored bytewise *)
  let n = max 1 q in
  ((2 * n) + 1) * (((2 * n) + 8) / 8)

let inner_backend (backend : Qruntime.Executor.backend_kind) =
  match backend with
  | (`Statevector | `Stabilizer) as b -> b
  | `Faulty spec -> (spec.Qsim.Faulty.inner :> [ `Statevector | `Stabilizer ])

(* The register requirement the footprint is sized from: the declared
   attribute, upgraded by the exact tape proof when one is cached. *)
let required_qubits ?tape (m : Llvm_ir.Ir_module.t) =
  let declared = Qruntime.Executor.declared_qubits m in
  match tape with
  | Some t -> max declared (Qruntime.Gate_tape.qubits t)
  | None -> declared

let footprint_bytes ?tape ~(backend : Qruntime.Executor.backend_kind)
    (m : Llvm_ir.Ir_module.t) =
  let q = required_qubits ?tape m in
  match inner_backend backend with
  | `Statevector -> statevector_bytes q
  | `Stabilizer -> stabilizer_bytes q

let pp_bytes ppf bytes =
  let b = float_of_int bytes in
  if b < 1024. then Format.fprintf ppf "%d B" bytes
  else if b < 1024. ** 2. then Format.fprintf ppf "%.1f KiB" (b /. 1024.)
  else if b < 1024. ** 3. then Format.fprintf ppf "%.1f MiB" (b /. (1024. ** 2.))
  else Format.fprintf ppf "%.1f GiB" (b /. (1024. ** 3.))

let bytes_to_string bytes = Format.asprintf "%a" pp_bytes bytes

(* [check ~budget ~backend m] admits or rejects the job on memory
   grounds. [Error] carries an [Overload]-kind taxonomy error (stable
   exit code 8) so the rejection flows through the same reporting path
   as every other failure. *)
let check ?tape ~budget ~(backend : Qruntime.Executor.backend_kind)
    (m : Llvm_ir.Ir_module.t) : (unit, Qruntime.Qir_error.t) result =
  let bytes = footprint_bytes ?tape ~backend m in
  if bytes > budget then
    Error
      (Qruntime.Qir_error.make ~kind:Qruntime.Qir_error.Overload
         ~layer:Qruntime.Qir_error.L_service
         (Printf.sprintf
            "admission rejected: %d-qubit statevector footprint %s exceeds \
             the %s memory budget"
            (required_qubits ?tape m)
            (bytes_to_string bytes) (bytes_to_string budget)))
  else Ok ()
