(* A small self-contained JSON layer for the service protocol: the
   toolchain ships no JSON dependency, and the newline-delimited
   protocol needs both directions (the existing renderers in
   lib/analysis only print). Values round-trip through [parse] and
   [to_string]; the printer emits compact one-line JSON, which is
   exactly what a newline-delimited protocol wants. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let number_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num v -> Buffer.add_string b (number_to_string v)
  | Str s -> escape_string b s
  | Arr items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string b ", ";
        write b item)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ", ";
        escape_string b k;
        Buffer.add_string b ": ";
        write b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 128 in
  write b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing: a plain recursive-descent parser over the string            *)

exception Bad of string

type cursor = { src : string; mutable pos : int }

let error cur msg = raise (Bad (Printf.sprintf "%s at offset %d" msg cur.pos))
let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let skip_ws cur =
  while
    cur.pos < String.length cur.src
    &&
    match cur.src.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    cur.pos <- cur.pos + 1
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> cur.pos <- cur.pos + 1
  | _ -> error cur (Printf.sprintf "expected '%c'" c)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.src
    && String.sub cur.src cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else error cur (Printf.sprintf "expected '%s'" word)

(* Encode one Unicode scalar value as UTF-8 (BMP is enough for the
   protocol; lone surrogates become U+FFFD). *)
let add_utf8 b cp =
  let cp = if cp >= 0xD800 && cp <= 0xDFFF then 0xFFFD else cp in
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string cur =
  expect cur '"';
  let b = Buffer.create 16 in
  let rec go () =
    if cur.pos >= String.length cur.src then error cur "unterminated string";
    let c = cur.src.[cur.pos] in
    cur.pos <- cur.pos + 1;
    match c with
    | '"' -> Buffer.contents b
    | '\\' ->
      (if cur.pos >= String.length cur.src then error cur "bad escape";
       let e = cur.src.[cur.pos] in
       cur.pos <- cur.pos + 1;
       match e with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | '/' -> Buffer.add_char b '/'
       | 'n' -> Buffer.add_char b '\n'
       | 't' -> Buffer.add_char b '\t'
       | 'r' -> Buffer.add_char b '\r'
       | 'b' -> Buffer.add_char b '\b'
       | 'f' -> Buffer.add_char b '\012'
       | 'u' ->
         if cur.pos + 4 > String.length cur.src then error cur "bad \\u escape";
         let hex = String.sub cur.src cur.pos 4 in
         cur.pos <- cur.pos + 4;
         let cp =
           match int_of_string_opt ("0x" ^ hex) with
           | Some cp -> cp
           | None -> error cur "bad \\u escape"
         in
         add_utf8 b cp
       | _ -> error cur "unknown escape");
      go ()
    | c when Char.code c < 0x20 -> error cur "control character in string"
    | c ->
      Buffer.add_char b c;
      go ()
  in
  go ()

let parse_number cur =
  let start = cur.pos in
  let num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    cur.pos < String.length cur.src && num_char cur.src.[cur.pos]
  do
    cur.pos <- cur.pos + 1
  done;
  let text = String.sub cur.src start (cur.pos - start) in
  match float_of_string_opt text with
  | Some v -> v
  | None -> error cur (Printf.sprintf "bad number %S" text)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> error cur "unexpected end of input"
  | Some '"' -> Str (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some '[' ->
    expect cur '[';
    skip_ws cur;
    if peek cur = Some ']' then begin
      cur.pos <- cur.pos + 1;
      Arr []
    end
    else begin
      let items = ref [ parse_value cur ] in
      skip_ws cur;
      while peek cur = Some ',' do
        cur.pos <- cur.pos + 1;
        items := parse_value cur :: !items;
        skip_ws cur
      done;
      expect cur ']';
      Arr (List.rev !items)
    end
  | Some '{' ->
    expect cur '{';
    skip_ws cur;
    if peek cur = Some '}' then begin
      cur.pos <- cur.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws cur;
      while peek cur = Some ',' do
        cur.pos <- cur.pos + 1;
        fields := field () :: !fields;
        skip_ws cur
      done;
      expect cur '}';
      Obj (List.rev !fields)
    end
  | Some c -> if c = '-' || (c >= '0' && c <= '9') then Num (parse_number cur)
    else error cur (Printf.sprintf "unexpected character '%c'" c)

let parse s =
  let cur = { src = s; pos = 0 } in
  match parse_value cur with
  | v ->
    skip_ws cur;
    if cur.pos < String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" cur.pos)
    else Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                            *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let str_opt = function Str s -> Some s | _ -> None
let num_opt = function Num v -> Some v | _ -> None
let bool_opt = function Bool v -> Some v | _ -> None

let int_opt = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let mem_str key v = Option.bind (member key v) str_opt
let mem_num key v = Option.bind (member key v) num_opt
let mem_int key v = Option.bind (member key v) int_opt
let mem_bool key v = Option.bind (member key v) bool_opt
