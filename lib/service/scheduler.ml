(* Weighted fair queuing across tenants, via stride scheduling.

   Each tenant owns a FIFO queue and a virtual-time "pass"; popping a
   job advances the tenant's pass by 1/weight, and the scheduler always
   serves the non-empty queue with the smallest pass. Over any window a
   backlogged tenant with weight w_i therefore receives w_i / sum(w)
   of the service — weight 2 gets twice the jobs of weight 1 — while an
   idle tenant accumulates no credit: when its queue refills, its pass
   is advanced to the current virtual time instead of letting it replay
   its idle period and starve everyone else.

   Every entry carries a monotonically increasing submission sequence
   number, which the load-shedding policy uses to evict the *newest*
   matching job across all tenants ({!drop_last}) — oldest jobs have
   waited longest and keep their place.

   Not thread-safe by itself; the service serializes access. *)

type 'a tenant_q = {
  name : string;
  weight : int;
  jobs : (int * 'a) Queue.t; (* (sequence, job) *)
  mutable pass : float; (* virtual time; serve the minimum *)
  mutable served : int;
}

type 'a t = {
  mutable tenants : 'a tenant_q list; (* small, stable order *)
  mutable vtime : float; (* pass of the most recently served tenant *)
  mutable seq : int;
  mutable queued : int;
}

let create () = { tenants = []; vtime = 0.0; seq = 0; queued = 0 }

let length t = t.queued
let tenants t = List.map (fun tq -> tq.name) t.tenants

let tenant_queue t ~tenant ~weight =
  match List.find_opt (fun tq -> tq.name = tenant) t.tenants with
  | Some tq -> tq
  | None ->
    let tq =
      {
        name = tenant;
        weight = max 1 weight;
        jobs = Queue.create ();
        pass = t.vtime;
        served = 0;
      }
    in
    (* append keeps registration order as the deterministic tie-break *)
    t.tenants <- t.tenants @ [ tq ];
    tq

let queued_of t tenant =
  match List.find_opt (fun tq -> tq.name = tenant) t.tenants with
  | Some tq -> Queue.length tq.jobs
  | None -> 0

let served_of t tenant =
  match List.find_opt (fun tq -> tq.name = tenant) t.tenants with
  | Some tq -> tq.served
  | None -> 0

(* [push] registers the tenant on first use; [weight] is fixed by that
   first registration. Returns the job's sequence number. *)
let push t ~tenant ~weight job =
  let tq = tenant_queue t ~tenant ~weight in
  if Queue.is_empty tq.jobs then
    (* returning from idle: join at the current virtual time, keeping
       any credit already earned but never claiming the idle period *)
    tq.pass <- Float.max tq.pass t.vtime;
  let seq = t.seq in
  t.seq <- seq + 1;
  Queue.add (seq, job) tq.jobs;
  t.queued <- t.queued + 1;
  seq

(* The non-empty queue with the smallest pass; first-registered wins
   ties. *)
let next_tenant t =
  List.fold_left
    (fun best tq ->
      if Queue.is_empty tq.jobs then best
      else
        match best with
        | Some b when b.pass <= tq.pass -> best
        | _ -> Some tq)
    None t.tenants

let pop t =
  match next_tenant t with
  | None -> None
  | Some tq ->
    let _, job = Queue.pop tq.jobs in
    t.queued <- t.queued - 1;
    t.vtime <- tq.pass;
    tq.pass <- tq.pass +. (1.0 /. float_of_int tq.weight);
    tq.served <- tq.served + 1;
    Some (tq.name, job)

let iter t f =
  List.iter (fun tq -> Queue.iter (fun (_, job) -> f tq.name job) tq.jobs)
    t.tenants

(* Remove and return the newest queued job satisfying [pred] (the
   highest sequence number across all tenants) — the shedding victim. *)
let drop_last t pred =
  let victim = ref None in
  List.iter
    (fun tq ->
      Queue.iter
        (fun (seq, job) ->
          if pred job then
            match !victim with
            | Some (best_seq, _, _) when best_seq >= seq -> ()
            | _ -> victim := Some (seq, tq, job))
        tq.jobs)
    t.tenants;
  match !victim with
  | None -> None
  | Some (seq, tq, job) ->
    let keep = Queue.create () in
    Queue.iter
      (fun (s, j) -> if s <> seq then Queue.add (s, j) keep)
      tq.jobs;
    Queue.clear tq.jobs;
    Queue.transfer keep tq.jobs;
    t.queued <- t.queued - 1;
    Some job
