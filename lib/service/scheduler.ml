(* Weighted fair queuing across tenants, via stride scheduling.

   Each tenant owns a FIFO queue and a virtual-time "pass"; popping a
   job advances the tenant's pass by cost/weight, and the scheduler
   always serves the non-empty queue with the smallest pass. Over any
   window a backlogged tenant with weight w_i therefore receives
   w_i / sum(w) of the *served cost* — not of the job count: a job's
   [cost] (by default 1.0, in practice the certified gate-bound ×
   shot-bound from {!Qir_analysis.Resource}) is the stride numerator,
   so WFQ is cost-fair rather than job-fair and a tenant of thousand-
   gate circuits cannot monopolize the executor against a tenant of
   three-gate ones by submitting equally often. An idle tenant
   accumulates no credit: when its queue refills, its pass is advanced
   to the current virtual time instead of letting it replay its idle
   period and starve everyone else.

   Every entry carries a monotonically increasing submission sequence
   number, which the load-shedding policy uses to evict the *newest*
   matching job across all tenants ({!drop_last}) — oldest jobs have
   waited longest and keep their place.

   Not thread-safe by itself; the service serializes access. *)

type 'a tenant_q = {
  name : string;
  weight : int;
  jobs : (int * float * 'a) Queue.t; (* (sequence, cost, job) *)
  mutable pass : float; (* virtual time; serve the minimum *)
  mutable served : int;
  mutable served_cost : float; (* total cost popped *)
}

type 'a t = {
  mutable tenants : 'a tenant_q list; (* small, stable order *)
  mutable vtime : float; (* pass of the most recently served tenant *)
  mutable seq : int;
  mutable queued : int;
}

let create () = { tenants = []; vtime = 0.0; seq = 0; queued = 0 }

let length t = t.queued
let tenants t = List.map (fun tq -> tq.name) t.tenants

let tenant_queue t ~tenant ~weight =
  match List.find_opt (fun tq -> tq.name = tenant) t.tenants with
  | Some tq -> tq
  | None ->
    let tq =
      {
        name = tenant;
        weight = max 1 weight;
        jobs = Queue.create ();
        pass = t.vtime;
        served = 0;
        served_cost = 0.0;
      }
    in
    (* append keeps registration order as the deterministic tie-break *)
    t.tenants <- t.tenants @ [ tq ];
    tq

let queued_of t tenant =
  match List.find_opt (fun tq -> tq.name = tenant) t.tenants with
  | Some tq -> Queue.length tq.jobs
  | None -> 0

let served_of t tenant =
  match List.find_opt (fun tq -> tq.name = tenant) t.tenants with
  | Some tq -> tq.served
  | None -> 0

let served_cost_of t tenant =
  match List.find_opt (fun tq -> tq.name = tenant) t.tenants with
  | Some tq -> tq.served_cost
  | None -> 0.0

(* [push] registers the tenant on first use; [weight] is fixed by that
   first registration. [cost] (default 1.0, clamped positive) is the
   certified cost charged against the tenant's stride when the job is
   later popped. Returns the job's sequence number. *)
let push ?(cost = 1.0) t ~tenant ~weight job =
  let cost = if Float.is_nan cost || cost <= 0.0 then 1.0 else cost in
  let tq = tenant_queue t ~tenant ~weight in
  if Queue.is_empty tq.jobs then
    (* returning from idle: join at the current virtual time, keeping
       any credit already earned but never claiming the idle period *)
    tq.pass <- Float.max tq.pass t.vtime;
  let seq = t.seq in
  t.seq <- seq + 1;
  Queue.add (seq, cost, job) tq.jobs;
  t.queued <- t.queued + 1;
  seq

(* The non-empty queue with the smallest pass; first-registered wins
   ties. *)
let next_tenant t =
  List.fold_left
    (fun best tq ->
      if Queue.is_empty tq.jobs then best
      else
        match best with
        | Some b when b.pass <= tq.pass -> best
        | _ -> Some tq)
    None t.tenants

let pop t =
  match next_tenant t with
  | None -> None
  | Some tq ->
    let _, cost, job = Queue.pop tq.jobs in
    t.queued <- t.queued - 1;
    t.vtime <- tq.pass;
    tq.pass <- tq.pass +. (cost /. float_of_int tq.weight);
    tq.served <- tq.served + 1;
    tq.served_cost <- tq.served_cost +. cost;
    Some (tq.name, job)

let iter t f =
  List.iter (fun tq -> Queue.iter (fun (_, _, job) -> f tq.name job) tq.jobs)
    t.tenants

(* Remove and return the newest queued job satisfying [pred] (the
   highest sequence number across all tenants) — the shedding victim. *)
let drop_last t pred =
  let victim = ref None in
  List.iter
    (fun tq ->
      Queue.iter
        (fun (seq, _, job) ->
          if pred job then
            match !victim with
            | Some (best_seq, _, _) when best_seq >= seq -> ()
            | _ -> victim := Some (seq, tq, job))
        tq.jobs)
    t.tenants;
  match !victim with
  | None -> None
  | Some (seq, tq, job) ->
    let keep = Queue.create () in
    Queue.iter
      (fun (s, c, j) -> if s <> seq then Queue.add (s, c, j) keep)
      tq.jobs;
    Queue.clear tq.jobs;
    Queue.transfer keep tq.jobs;
    t.queued <- t.queued - 1;
    Some job
