(* The newline-delimited JSON protocol qir-serve speaks: one request
   per input line, one event per output line. Both the Unix-socket
   daemon and the stdin batch mode reuse this module, so a protocol
   bug cannot diverge between transports.

   Requests:
     {"op":"submit","tenant":"alice","program":"<QIR text>", ...}
     {"op":"submit","tenant":"alice","file":"bell.ll", ...}
       optional: "id", "shots", "seed", "backend" ("statevector" |
       "stabilizer" | "faulty:<spec>"), "engine" ("auto"|"ast"|
       "bytecode"), "timeout" (seconds)
     {"op":"stats"}
     {"op":"quit"}

   Events (all carry "event"): accepted, rejected, progress, result,
   failed, stats, error — rejections and failures embed the error
   taxonomy (kind, layer, exit_code, message), so a protocol client
   sees exactly the codes the CLIs exit with. *)

open Qruntime

type request =
  | Submit of {
      id : string option;
      tenant : string;
      program : [ `Inline of string | `File of string ];
      shots : int;
      seed : int;
      backend : Executor.backend_kind;
      engine : Executor.engine;
      timeout : float option;
    }
  | Stats
  | Quit

let usage message =
  Qir_error.make ~kind:Qir_error.Usage ~layer:Qir_error.L_service message

let parse_backend = function
  | "statevector" -> Ok `Statevector
  | "stabilizer" -> Ok `Stabilizer
  | s when String.length s > 7 && String.sub s 0 7 = "faulty:" -> (
    match Qsim.Faulty.spec_of_string (String.sub s 7 (String.length s - 7)) with
    | Ok spec -> Ok (`Faulty spec)
    | Error msg -> Error (usage (Printf.sprintf "bad faulty backend spec: %s" msg)))
  | s -> Error (usage (Printf.sprintf "unknown backend %S" s))

let parse_engine = function
  | "auto" -> Ok `Auto
  | "ast" -> Ok `Ast
  | "bytecode" -> Ok `Bytecode
  | s -> Error (usage (Printf.sprintf "unknown engine %S" s))

(* [parse_request line] decodes one protocol line. Errors are
   [Usage]-kind taxonomy values: a malformed request is the client's
   bug, reported on the same stable codes as everything else. *)
let parse_request line : (request, Qir_error.t) result =
  match Jsonx.parse line with
  | Error msg -> Error (usage (Printf.sprintf "bad request JSON: %s" msg))
  | Ok v -> (
    match Jsonx.mem_str "op" v with
    | None -> Error (usage "request needs an \"op\" field")
    | Some "stats" -> Ok Stats
    | Some "quit" -> Ok Quit
    | Some "submit" -> (
      let ( let* ) = Result.bind in
      let* tenant =
        match Jsonx.mem_str "tenant" v with
        | Some t when t <> "" -> Ok t
        | _ -> Error (usage "submit needs a non-empty \"tenant\" field")
      in
      let* program =
        match (Jsonx.mem_str "program" v, Jsonx.mem_str "file" v) with
        | Some p, None -> Ok (`Inline p)
        | None, Some f -> Ok (`File f)
        | Some _, Some _ ->
          Error (usage "submit takes \"program\" or \"file\", not both")
        | None, None ->
          Error (usage "submit needs a \"program\" or \"file\" field")
      in
      let* backend =
        match Jsonx.mem_str "backend" v with
        | None -> Ok `Statevector
        | Some s -> parse_backend s
      in
      let* engine =
        match Jsonx.mem_str "engine" v with
        | None -> Ok `Auto
        | Some s -> parse_engine s
      in
      Ok
        (Submit
           {
             id = Jsonx.mem_str "id" v;
             tenant;
             program;
             shots = Option.value ~default:1 (Jsonx.mem_int "shots" v);
             seed = Option.value ~default:1 (Jsonx.mem_int "seed" v);
             backend;
             engine;
             timeout = Jsonx.mem_num "timeout" v;
           }))
    | Some op -> Error (usage (Printf.sprintf "unknown op %S" op)))

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

let error_fields (e : Qir_error.t) =
  [
    ("kind", Jsonx.Str (Qir_error.kind_name e.Qir_error.kind));
    ("layer", Jsonx.Str (Qir_error.layer_name e.Qir_error.layer));
    ("exit_code", Jsonx.Num (float_of_int (Qir_error.exit_code e)));
    ("message", Jsonx.Str e.Qir_error.message);
  ]

let histogram_json hist =
  Jsonx.Obj (List.map (fun (k, n) -> (k, Jsonx.Num (float_of_int n))) hist)

let event_json (ev : Service.event) =
  let base event id tenant rest =
    Jsonx.Obj
      (("event", Jsonx.Str event)
      :: ("id", Jsonx.Str id)
      :: ("tenant", Jsonx.Str tenant)
      :: rest)
  in
  match ev with
  | Service.Accepted { id; tenant; note } ->
    base "accepted" id tenant
      (match note with None -> [] | Some s -> [ ("note", Jsonx.Str s) ])
  | Service.Rejected { id; tenant; error; shed } ->
    base "rejected" id tenant (("shed", Jsonx.Bool shed) :: error_fields error)
  | Service.Progress { id; tenant; completed; requested } ->
    base "progress" id tenant
      [
        ("completed", Jsonx.Num (float_of_int completed));
        ("requested", Jsonx.Num (float_of_int requested));
      ]
  | Service.Result { id; tenant; result = r; tier; wait_s; run_s } ->
    base "result" id tenant
      [
        ("tier", Jsonx.Str (Executor.tier_name tier));
        ("completed", Jsonx.Num (float_of_int r.Executor.completed));
        ("requested", Jsonx.Num (float_of_int r.Executor.requested));
        ("degraded", Jsonx.Bool r.Executor.degraded);
        ("retries", Jsonx.Num (float_of_int r.Executor.retries));
        ("engine", Jsonx.Str r.Executor.engine);
        ("tape", Jsonx.Bool r.Executor.tape);
        ("batched", Jsonx.Bool r.Executor.batched);
        ("pool_fallbacks", Jsonx.Num (float_of_int r.Executor.pool_fallbacks));
        ("wait_s", Jsonx.Num wait_s);
        ("run_s", Jsonx.Num run_s);
        ("histogram", histogram_json r.Executor.histogram);
      ]
  | Service.Failed { id; tenant; error } ->
    base "failed" id tenant (error_fields error)

let stats_json (s : Service.stats) =
  let n name v = (name, Jsonx.Num (float_of_int v)) in
  Jsonx.Obj
    [
      ("event", Jsonx.Str "stats");
      n "submitted" s.Service.submitted;
      n "accepted" s.Service.accepted;
      n "rejected" s.Service.rejected;
      n "shed" s.Service.shed;
      n "completed" s.Service.completed;
      n "failed" s.Service.failed;
      n "degraded_results" s.Service.degraded_results;
      n "batched_runs" s.Service.batched_runs;
      n "tape_runs" s.Service.tape_runs;
      n "per_shot_runs" s.Service.per_shot_runs;
      n "throttled_runs" s.Service.throttled_runs;
      n "breaker_trips" s.Service.breaker_trips;
      n "queue_depth" s.Service.queue_depth;
      n "compile_cache_hits" s.Service.cache.Executor.Session.compile_hits;
      n "compile_cache_misses" s.Service.cache.Executor.Session.compile_misses;
      n "tape_cache_hits" s.Service.cache.Executor.Session.tape_hits;
      n "tape_cache_misses" s.Service.cache.Executor.Session.tape_misses;
      n "cert_cache_hits" s.Service.cache.Executor.Session.cert_hits;
      n "cert_cache_misses" s.Service.cache.Executor.Session.cert_misses;
    ]

(* A protocol-level error (unparsable line, missing field) as an event
   line of its own, tied to no job. *)
let error_json (e : Qir_error.t) =
  Jsonx.Obj (("event", Jsonx.Str "error") :: error_fields e)

let event_line ev = Jsonx.to_string (event_json ev)
let stats_line s = Jsonx.to_string (stats_json s)
let error_line e = Jsonx.to_string (error_json e)
