(* The multi-tenant QIR execution service: admission control, per-tenant
   quotas and circuit breakers, weighted fair scheduling, streaming
   chunked execution and graceful overload degradation, over the
   session-based {!Qruntime.Executor}.

   The paper's Ex. 5 argues QIR's value is a stable execution boundary
   many front-ends and backends share; this module is that boundary as
   a *service contract*. Robustness before raw speed:

   - {b admission control} rejects fast — with the stable [Overload]
     taxonomy code (exit 8) — when a job's statevector footprint or a
     queue-depth budget would be breached, instead of letting one
     30-qubit job OOM the whole process ({!Admission});
   - {b per-tenant quotas and deadlines}: shot ceilings, queue-depth
     caps and total wall-clock budgets that include queue wait, reusing
     {!Qruntime.Resilience.Deadline} (monotonic clock);
   - {b circuit breakers} per tenant trip on repeated backend/exec
     failures so a hostile or broken workload stops consuming simulator
     time ({!Breaker});
   - {b weighted fair scheduling} across tenants via stride scheduling
     ({!Scheduler});
   - {b graceful degradation}: under overload the service walks the
     executor's tier ladder downward — batched -> tape -> per-shot —
     with cache-hot jobs (whose compiled module / tape verdict are
     nearly free) kept on the tape tier, throttles the Domain pool to
     sequential sweeps, and sheds queued load cache-coldest-first;
   - {b streaming}: chunked jobs emit progress events between chunks,
     and a deadline that expires mid-job yields the completed shots as
     a degraded-but-correct partial result instead of losing them.

   Correctness contract: chunk c covering shots [lo, hi) runs with seed
   [seed + lo * 7919], the executor's own per-shot seeding formula, so
   the merged histogram of a chunked job is bit-identical to one direct
   [Executor.run_shots_resilient] call at the same tier cap — degraded
   jobs return fewer shots, never different ones.

   The core is deterministic and Domain-safe: every piece of mutable
   service state (scheduler, breakers, in-flight accounting, counters,
   event emission) is guarded by one internal mutex, while simulator
   execution runs outside it — so [drain_parallel ~executors:n] can run
   one drain loop per Domain against the shared reentrant
   {!Executor.Session}, and per-job results stay bit-identical to a
   single-threaded [drain] because seeding is per-job, not per-loop.
   Tests drive [submit]/[run_once] directly; the daemon in
   bin/qir_serve.ml owns the sockets and threads around it. *)

open Qruntime

type job = {
  id : string;
  tenant : string;
  m : Llvm_ir.Ir_module.t;
  shots : int;
  seed : int;
  backend : Executor.backend_kind;
  engine : Executor.engine;
  deadline : Resilience.Deadline.t; (* absolute; includes queue wait *)
  submitted_at : float; (* Deadline.now instant *)
  bytes : int; (* certified footprint charged against the tenant *)
}

type config = {
  mem_budget : int; (* bytes of statevector one job may require *)
  max_queue : int; (* global queued-job ceiling *)
  max_tenant_queue : int; (* per-tenant queued-job ceiling *)
  max_shots : int; (* per-job shot quota *)
  default_timeout : float option; (* per-job budget when none given *)
  retries : int; (* transient-fault retries per shot *)
  breaker_threshold : int; (* consecutive failures that trip *)
  breaker_cooldown : float; (* seconds open before a probe *)
  overload_depth : int; (* queue depth where degradation starts *)
  chunk : int; (* streamed shots per scheduling quantum *)
  tenant_weights : (string * int) list; (* default weight 1 *)
  module_cache_limit : int; (* interned program texts *)
  sleep : bool; (* wait out retry backoff? (off in tests) *)
  cost_fair : bool; (* stride by certified cost, not job count *)
}

let default_config =
  {
    mem_budget = 1 lsl 34 (* 16 GiB: everything the simulator can hold *);
    max_queue = 64;
    max_tenant_queue = 32;
    max_shots = 1_000_000;
    default_timeout = None;
    retries = 3;
    breaker_threshold = 5;
    breaker_cooldown = 1.0;
    overload_depth = 8;
    chunk = 64;
    tenant_weights = [];
    module_cache_limit = 32;
    sleep = true;
    cost_fair = true;
  }

type event =
  | Accepted of { id : string; tenant : string; note : string option }
  | Rejected of {
      id : string;
      tenant : string;
      error : Qir_error.t;
      shed : bool; (* true: evicted from the queue under overload *)
    }
  | Progress of {
      id : string;
      tenant : string;
      completed : int;
      requested : int;
    }
  | Result of {
      id : string;
      tenant : string;
      result : Executor.shots_result;
      tier : Executor.tier; (* the cap the job ran under *)
      wait_s : float; (* queue wait *)
      run_s : float; (* execution wall clock *)
    }
  | Failed of { id : string; tenant : string; error : Qir_error.t }

type stats = {
  submitted : int;
  accepted : int;
  rejected : int; (* admission/quota/breaker rejections, incl. shed *)
  shed : int; (* of [rejected]: evicted after acceptance *)
  completed : int;
  failed : int;
  degraded_results : int; (* partial histograms due to deadlines *)
  batched_runs : int;
  tape_runs : int;
  per_shot_runs : int;
  throttled_runs : int; (* ran with the Domain pool throttled *)
  breaker_trips : int;
  queue_depth : int;
  cache : Executor.Session.cache_stats;
}

type t = {
  config : config;
  lock : Mutex.t; (* guards every mutable field below and [emit] *)
  session : Executor.Session.t;
  sched : job Scheduler.t;
  breakers : (string, Breaker.t) Hashtbl.t;
  inflight : (string, int) Hashtbl.t; (* tenant -> certified bytes queued+running *)
  modules : (Digest.t, Llvm_ir.Ir_module.t) Hashtbl.t;
  mutable module_order : Digest.t list; (* newest first, for eviction *)
  emit : event -> unit;
  mutable submitted : int;
  mutable accepted : int;
  mutable rejected : int;
  mutable shed : int;
  mutable completed : int;
  mutable failed : int;
  mutable degraded_results : int;
  mutable batched_runs : int;
  mutable tape_runs : int;
  mutable per_shot_runs : int;
  mutable throttled_runs : int;
}

let create ?(config = default_config) ~emit () =
  {
    config;
    lock = Mutex.create ();
    session = Executor.Session.create ~cache_limit:config.module_cache_limit ();
    sched = Scheduler.create ();
    breakers = Hashtbl.create 8;
    inflight = Hashtbl.create 8;
    modules = Hashtbl.create 32;
    module_order = [];
    emit;
    submitted = 0;
    accepted = 0;
    rejected = 0;
    shed = 0;
    completed = 0;
    failed = 0;
    degraded_results = 0;
    batched_runs = 0;
    tape_runs = 0;
    per_shot_runs = 0;
    throttled_runs = 0;
  }

(* Domain-safety: one mutex serializes access to the scheduler, the
   breaker/in-flight tables, the stats counters and [emit]; simulator
   execution itself always runs with the lock released, so concurrent
   drain loops only contend on bookkeeping. *)
let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let session t = t.session
let queue_depth t = locked t (fun () -> Scheduler.length t.sched)
let served_of t tenant = Scheduler.served_of t.sched tenant
let served_cost_of t tenant = Scheduler.served_cost_of t.sched tenant

(* Per-tenant in-flight certified footprint: charged at acceptance,
   released when the job leaves the system (result, failure or shed).
   Admission sums this against the budget so a tenant cannot queue ten
   near-budget jobs and rely on serialization to hide the aggregate. *)
let inflight_bytes t tenant =
  Option.value ~default:0 (Hashtbl.find_opt t.inflight tenant)

let charge t tenant bytes =
  Hashtbl.replace t.inflight tenant (inflight_bytes t tenant + bytes)

let release t (job : job) =
  Hashtbl.replace t.inflight job.tenant
    (max 0 (inflight_bytes t job.tenant - job.bytes))

let breaker t tenant =
  match Hashtbl.find_opt t.breakers tenant with
  | Some b -> b
  | None ->
    let b =
      Breaker.create ~threshold:t.config.breaker_threshold
        ~cooldown:t.config.breaker_cooldown ()
    in
    Hashtbl.add t.breakers tenant b;
    b

let breaker_state t tenant = Breaker.state_name (breaker t tenant)

let stats t =
  locked t @@ fun () ->
  {
    submitted = t.submitted;
    accepted = t.accepted;
    rejected = t.rejected;
    shed = t.shed;
    completed = t.completed;
    failed = t.failed;
    degraded_results = t.degraded_results;
    batched_runs = t.batched_runs;
    tape_runs = t.tape_runs;
    per_shot_runs = t.per_shot_runs;
    throttled_runs = t.throttled_runs;
    breaker_trips =
      Hashtbl.fold (fun _ b acc -> acc + Breaker.trips b) t.breakers 0;
    queue_depth = Scheduler.length t.sched;
    cache = Executor.Session.cache_stats t.session;
  }

(* ------------------------------------------------------------------ *)
(* Program interning: identical program text resubmitted by any tenant
   maps to the *same* Ir_module.t value, so the session's
   identity-keyed compile/tape caches actually hit across jobs — the
   compile-once contract at service granularity. Bounded FIFO. *)

let intern t ~source : (Llvm_ir.Ir_module.t, Qir_error.t) result =
  locked t @@ fun () ->
  let key = Digest.string source in
  match Hashtbl.find_opt t.modules key with
  | Some m -> Ok m
  | None -> (
    match Llvm_ir.Parser.parse_module_result ~source_name:"<job>" source with
    | Error msg ->
      Error (Qir_error.make ~kind:Qir_error.Parse ~layer:Qir_error.L_parser msg)
    | Ok m ->
      if List.length t.module_order >= t.config.module_cache_limit then begin
        match List.rev t.module_order with
        | oldest :: _ ->
          Hashtbl.remove t.modules oldest;
          t.module_order <-
            List.filter (fun k -> k <> oldest) t.module_order
        | [] -> ()
      end;
      Hashtbl.add t.modules key m;
      t.module_order <- key :: t.module_order;
      Ok m)

(* ------------------------------------------------------------------ *)
(* Admission                                                            *)

let overload fmt =
  Format.kasprintf
    (fun message ->
      Qir_error.make ~kind:Qir_error.Overload ~layer:Qir_error.L_service
        message)
    fmt

let reject ?(shed = false) t ~id ~tenant error =
  t.rejected <- t.rejected + 1;
  if shed then t.shed <- t.shed + 1;
  t.emit (Rejected { id; tenant; error; shed })

let cache_cold t job = not (Executor.Session.is_cached t.session job.m)

let submit t ~tenant ?id ?(shots = 1) ?(seed = 1)
    ?(backend : Executor.backend_kind = `Statevector)
    ?(engine : Executor.engine = `Auto) ?timeout (m : Llvm_ir.Ir_module.t) :
    unit =
  locked t @@ fun () ->
  t.submitted <- t.submitted + 1;
  let id =
    match id with Some s -> s | None -> Printf.sprintf "job-%d" t.submitted
  in
  let fail e = reject t ~id ~tenant e in
  if shots < 1 then
    fail
      (Qir_error.make ~kind:Qir_error.Usage ~layer:Qir_error.L_service
         (Printf.sprintf "job %s: need at least one shot" id))
  else if shots > t.config.max_shots then
    fail
      (overload "tenant %s quota: %d shots exceeds the per-job quota of %d"
         tenant shots t.config.max_shots)
  else if not (Breaker.admit (breaker t tenant)) then
    fail
      (overload
         "circuit breaker open for tenant %s after repeated failures; \
          resubmit after the cooldown"
         tenant)
  else begin
    (* Certify once — the session cache makes resubmissions of the same
       interned module free — and let admission size the footprint from
       the strongest proof available (certificate, cached tape,
       declaration). A proven lower bound over budget rejects here,
       before any compilation. *)
    let cert, _, _ = Executor.Session.cert_of t.session m in
    match
      Admission.check
        ?tape:(Executor.Session.cached_tape t.session m)
        ~cert ~budget:t.config.mem_budget ~backend m
    with
    | Error e -> fail e
    | Ok v -> (
      match
        Admission.check_tenant ~budget:t.config.mem_budget ~tenant
          ~inflight_bytes:(inflight_bytes t tenant)
          ~bytes:v.Admission.v_bytes
      with
      | Error e -> fail e
      | Ok () ->
        if Scheduler.queued_of t.sched tenant >= t.config.max_tenant_queue
        then
          fail
            (overload "tenant %s quota: %d jobs already queued (limit %d)"
               tenant
               (Scheduler.queued_of t.sched tenant)
               t.config.max_tenant_queue)
        else begin
          let job =
            {
              id;
              tenant;
              m;
              shots;
              seed;
              backend;
              engine;
              deadline =
                Resilience.Deadline.after
                  (match timeout with
                  | Some _ -> timeout
                  | None -> t.config.default_timeout);
              submitted_at = Resilience.Deadline.now ();
              bytes = v.Admission.v_bytes;
            }
          in
          let admit () =
            let weight =
              Option.value ~default:1
                (List.assoc_opt tenant t.config.tenant_weights)
            in
            let cost =
              if t.config.cost_fair then
                Qir_analysis.Resource.cost_weight cert ~shots
              else 1.0
            in
            ignore (Scheduler.push ~cost t.sched ~tenant ~weight job);
            charge t tenant job.bytes;
            t.accepted <- t.accepted + 1;
            t.emit (Accepted { id; tenant; note = v.Admission.v_qr003 })
          in
          if Scheduler.length t.sched < t.config.max_queue then admit ()
          else if cache_cold t job then
            (* Queue full and the newcomer is cold: compiling it would
               cost the most for the least queue relief — reject it. *)
            fail
              (overload
                 "queue full (%d jobs) and job %s is cache-cold; resubmit \
                  later"
                 (Scheduler.length t.sched) id)
          else begin
            (* Queue full but the newcomer is cache-hot (nearly free):
               shed the newest cache-cold queued job to make room. *)
            match Scheduler.drop_last t.sched (cache_cold t) with
            | Some victim ->
              release t victim;
              reject ~shed:true t ~id:victim.id ~tenant:victim.tenant
                (overload
                   "shed under overload: queue full and job %s is \
                    cache-cold; displaced by a cache-hot job"
                   victim.id);
              admit ()
            | None ->
              fail
                (overload "queue full (%d jobs); resubmit later"
                   (Scheduler.length t.sched))
          end
        end)
  end

(* ------------------------------------------------------------------ *)
(* Execution                                                            *)

type load = Normal | Elevated | Critical

let load_level t =
  let depth = Scheduler.length t.sched in
  if depth >= 2 * t.config.overload_depth then Critical
  else if depth >= t.config.overload_depth then Elevated
  else Normal

let remaining_of (job : job) =
  Option.map
    (fun at -> Float.max 0. (at -. Resilience.Deadline.now ()))
    job.deadline

let policy_for t rem =
  {
    Resilience.default with
    Resilience.max_retries = t.config.retries;
    total_timeout = rem;
    sleep = t.config.sleep;
  }

let sorted_histogram tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge_histogram tbl hist =
  List.iter
    (fun (k, v) ->
      Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    hist

(* Run one popped job to completion (or degradation), streaming
   progress. Bookkeeping and event emission take the service lock;
   the executor calls themselves run with the lock released, so other
   drain loops keep claiming and running jobs concurrently. *)
let run_job t (job : job) =
  let start = Resilience.Deadline.now () in
  let wait_s = start -. job.submitted_at in
  let level = locked t (fun () -> load_level t) in
  let hot = Executor.Session.is_cached t.session job.m in
  (* The degradation ladder. Cache-hot jobs keep the batched tier at
     every load level: a warm compile+tape cache makes the fused
     batched run the cheapest possible way to clear a job, so slowing
     the hot path down would only deepen the queue (this is the same
     principle as shedding cache-coldest-first). Cold jobs walk the
     ladder: Elevated caps them at the tape tier — tape and per-shot
     chunk and stream cleanly, so no cold job monopolizes the
     scheduler for a whole batched run — and Critical drops them to
     per-shot interpretation while the Domain pool runs sequentially. *)
  let cap : Executor.tier =
    if hot then `Batched
    else
      match level with
      | Normal -> `Batched
      | Elevated -> `Tape
      | Critical -> `Per_shot
  in
  let throttle = level = Critical in
  Qsim.Dpool.set_throttle throttle;
  if throttle then locked t (fun () -> t.throttled_runs <- t.throttled_runs + 1);
  let chunk_size =
    match level with
    | Normal | Elevated -> t.config.chunk
    | Critical -> max 1 (t.config.chunk / 4)
  in
  let pool_fallbacks0 = Qsim.Dpool.sequential_fallbacks () in
  let finish result tier =
    let run_s = Resilience.Deadline.now () -. start in
    locked t @@ fun () ->
    release t job;
    (match tier with
    | `Batched -> t.batched_runs <- t.batched_runs + 1
    | `Tape -> t.tape_runs <- t.tape_runs + 1
    | `Per_shot -> t.per_shot_runs <- t.per_shot_runs + 1);
    if result.Executor.degraded then
      t.degraded_results <- t.degraded_results + 1;
    t.completed <- t.completed + 1;
    Breaker.record_success (breaker t job.tenant);
    t.emit
      (Result { id = job.id; tenant = job.tenant; result; tier; wait_s; run_s })
  in
  let batchable =
    job.shots > 1 && job.backend = `Statevector && cap = `Batched
    && Executor.batchable job.m
  in
  try
    if batchable then begin
      let r =
        Executor.run_shots_resilient ~session:t.session
          ~policy:(policy_for t (remaining_of job))
          ~seed:job.seed ~backend:job.backend ~engine:job.engine
          ~shots:job.shots job.m
      in
      finish r `Batched
    end
    else begin
      (* Chunked streaming execution. Chunk c covering [lo, hi) runs
         with seed + lo*7919 — the executor's own per-shot seeding —
         so the merged histogram is bit-identical to one direct call
         at the same tier cap. *)
      let cap = (if cap = `Batched then `Tape else cap : Executor.tier) in
      let tbl = Hashtbl.create 16 in
      let completed = ref 0 in
      let retries = ref 0 in
      let degraded = ref false in
      let tape_used = ref false in
      let engine_used = ref (Executor.engine_name (Executor.resolve_engine job.engine)) in
      let compile_s = ref 0. in
      let analysis_s = ref 0. in
      let lo = ref 0 in
      let stop = ref false in
      while (not !stop) && !lo < job.shots do
        match remaining_of job with
        | Some r when r <= 0. ->
          degraded := true;
          stop := true
        | rem ->
          let n = min chunk_size (job.shots - !lo) in
          let r =
            Executor.run_shots_resilient ~session:t.session
              ~policy:(policy_for t rem)
              ~seed:(job.seed + (!lo * 7919))
              ~backend:job.backend ~max_tier:cap ~engine:job.engine ~shots:n
              job.m
          in
          merge_histogram tbl r.Executor.histogram;
          completed := !completed + r.Executor.completed;
          retries := !retries + r.Executor.retries;
          tape_used := !tape_used || r.Executor.tape;
          engine_used := r.Executor.engine;
          compile_s := !compile_s +. r.Executor.compile_s;
          analysis_s := !analysis_s +. r.Executor.analysis_s;
          if r.Executor.degraded then begin
            degraded := true;
            stop := true
          end
          else begin
            lo := !lo + n;
            if !lo < job.shots then
              locked t (fun () ->
                  t.emit
                    (Progress
                       {
                         id = job.id;
                         tenant = job.tenant;
                         completed = !completed;
                         requested = job.shots;
                       }))
          end
      done;
      let result : Executor.shots_result =
        {
          histogram = sorted_histogram tbl;
          completed = !completed;
          requested = job.shots;
          degraded = !degraded;
          retries = !retries;
          batched = false;
          batch_fallback = false;
          pool_fallbacks =
            Qsim.Dpool.sequential_fallbacks () - pool_fallbacks0;
          engine = !engine_used;
          tape = !tape_used;
          compile_s = !compile_s;
          analysis_s = !analysis_s;
        }
      in
      finish result (if !tape_used then `Tape else `Per_shot)
    end
  with e ->
    let error = Qir_error.wrap_exn e in
    locked t (fun () ->
        release t job;
        t.failed <- t.failed + 1;
        (match error.Qir_error.kind with
        | Qir_error.Backend_failure | Qir_error.Exec ->
          Breaker.record_failure (breaker t job.tenant)
        | _ -> ());
        t.emit (Failed { id = job.id; tenant = job.tenant; error }))

(* One scheduling quantum: claim the fair-queue head under the lock,
   then run it with the lock released (or shed it if its deadline
   already expired while queued). [false] when the queue is empty. *)
let run_once t =
  let claimed =
    locked t (fun () ->
        match Scheduler.pop t.sched with
        | None ->
          Qsim.Dpool.set_throttle false;
          None
        | Some (_, job) -> Some job)
  in
  match claimed with
  | None -> false
  | Some job ->
    (match job.deadline with
    | Some at when Resilience.Deadline.now () >= at ->
      (* expired while queued: taxonomy-coded shed, no simulator time *)
      locked t (fun () ->
          release t job;
          reject ~shed:true t ~id:job.id ~tenant:job.tenant
            (overload
               "shed under overload: job %s's deadline expired after %.3f s \
                in the queue"
               job.id
               (Resilience.Deadline.now () -. job.submitted_at)))
    | _ -> run_job t job);
    true

let drain t =
  while run_once t do
    ()
  done;
  Qsim.Dpool.set_throttle false

(* One drain loop per Domain. Each loop claims jobs from the shared
   stride scheduler under the service lock and executes them against
   the shared reentrant session with the lock released. Per-job
   histograms are bit-identical to a single-threaded [drain] — seeding
   is per-job — but cross-job scheduling order (and therefore
   load-level transitions) depends on claim interleaving, exactly as
   it would with real concurrent tenants. *)
let drain_parallel ?(executors = 1) t =
  if executors < 1 then
    invalid_arg "Service.drain_parallel: need at least one executor";
  if executors = 1 then drain t
  else begin
    let loop () =
      while run_once t do
        ()
      done
    in
    let workers = Array.init (executors - 1) (fun _ -> Domain.spawn loop) in
    loop ();
    Array.iter Domain.join workers;
    Qsim.Dpool.set_throttle false
  end
