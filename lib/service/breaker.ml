(* A per-tenant circuit breaker over the executor's error taxonomy.

   The service counts consecutive backend/exec failures per tenant
   (retries inside a job do not count — only the job's final verdict).
   At [threshold] consecutive failures the breaker trips [Open]: the
   tenant's submissions are rejected fast with an [Overload] taxonomy
   error instead of burning simulator time on a workload that keeps
   failing. After [cooldown] seconds the breaker moves to [Half_open]
   and admits probe jobs; the first success closes it again, the first
   failure re-opens it for another cooldown.

   Instants live on {!Qruntime.Resilience.Deadline.now}'s monotonic
   clock, so NTP adjustments can neither pin a breaker open nor snap it
   shut early. *)

type state =
  | Closed
  | Open of float (* instant (Deadline.now clock) at which probing may start *)
  | Half_open

type t = {
  threshold : int; (* consecutive failures that trip the breaker *)
  cooldown : float; (* seconds Open before admitting a probe *)
  mutable state : state;
  mutable consecutive_failures : int;
  mutable trips : int; (* Closed/Half_open -> Open transitions *)
}

let create ?(threshold = 5) ?(cooldown = 1.0) () =
  if threshold < 1 then invalid_arg "Breaker.create: need threshold >= 1";
  if cooldown < 0.0 then invalid_arg "Breaker.create: need cooldown >= 0";
  { threshold; cooldown; state = Closed; consecutive_failures = 0; trips = 0 }

(* The observed state, advancing Open -> Half_open once the cooldown
   elapses. *)
let state t =
  (match t.state with
  | Open until when Qruntime.Resilience.Deadline.now () >= until ->
    t.state <- Half_open
  | _ -> ());
  t.state

let state_name t =
  match state t with
  | Closed -> "closed"
  | Open _ -> "open"
  | Half_open -> "half-open"

let admit t = match state t with Closed | Half_open -> true | Open _ -> false

let trips t = t.trips

let trip t =
  t.state <- Open (Qruntime.Resilience.Deadline.now () +. t.cooldown);
  t.trips <- t.trips + 1

let record_success t =
  t.consecutive_failures <- 0;
  t.state <- Closed

let record_failure t =
  match state t with
  | Half_open -> trip t (* a failed probe re-opens immediately *)
  | Closed ->
    t.consecutive_failures <- t.consecutive_failures + 1;
    if t.consecutive_failures >= t.threshold then trip t
  | Open _ -> () (* jobs should not have run while open; ignore *)
