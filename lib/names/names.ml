(* The QIR symbol vocabulary: quantum instruction set (QIS) functions and
   runtime (RT) functions, as named by the QIR specification. *)

open Qcircuit

let qis_prefix = "__quantum__qis__"
let rt_prefix = "__quantum__rt__"

let qis name = qis_prefix ^ name ^ "__body"
let qis_adj name = qis_prefix ^ name ^ "__adj"

(* Runtime functions used by this toolchain. *)
let rt_qubit_allocate = rt_prefix ^ "qubit_allocate"
let rt_qubit_allocate_array = rt_prefix ^ "qubit_allocate_array"
let rt_qubit_release = rt_prefix ^ "qubit_release"
let rt_qubit_release_array = rt_prefix ^ "qubit_release_array"
let rt_array_create_1d = rt_prefix ^ "array_create_1d"
let rt_array_get_element_ptr_1d = rt_prefix ^ "array_get_element_ptr_1d"
let rt_array_get_size_1d = rt_prefix ^ "array_get_size_1d"
let rt_array_update_reference_count = rt_prefix ^ "array_update_reference_count"
let rt_result_get_one = rt_prefix ^ "result_get_one"
let rt_result_get_zero = rt_prefix ^ "result_get_zero"
let rt_result_equal = rt_prefix ^ "result_equal"
let rt_result_update_reference_count = rt_prefix ^ "result_update_reference_count"
let rt_read_result = qis_prefix ^ "read_result__body"
(* the adaptive profile reads results through a qis function *)

let rt_result_record_output = rt_prefix ^ "result_record_output"
let rt_array_record_output = rt_prefix ^ "array_record_output"
let rt_initialize = rt_prefix ^ "initialize"
let rt_message = rt_prefix ^ "message"
let rt_fail = rt_prefix ^ "fail"

let qis_mz = qis "mz"
let qis_m = qis "m"
let qis_reset = qis "reset"

let is_qis name = String.length name > 16 && String.sub name 0 16 = qis_prefix
let is_rt name = String.length name > 15 && String.sub name 0 15 = rt_prefix
let is_quantum name = is_qis name || is_rt name

(* ------------------------------------------------------------------ *)
(* Gate <-> QIS name                                                    *)

(* The gates the QIR base gate set supports directly; everything else is
   legalized by {!Qir_gateset} first. [qis_of_gate] returns the symbol and
   the double parameters that precede the qubit arguments. *)
let qis_of_gate (g : Gate.t) : (string * float list) option =
  match g with
  | Gate.I -> None (* emitted as nothing *)
  | Gate.H -> Some (qis "h", [])
  | Gate.X -> Some (qis "x", [])
  | Gate.Y -> Some (qis "y", [])
  | Gate.Z -> Some (qis "z", [])
  | Gate.S -> Some (qis "s", [])
  | Gate.Sdg -> Some (qis_adj "s", [])
  | Gate.T -> Some (qis "t", [])
  | Gate.Tdg -> Some (qis_adj "t", [])
  | Gate.Rx t -> Some (qis "rx", [ t ])
  | Gate.Ry t -> Some (qis "ry", [ t ])
  | Gate.Rz t -> Some (qis "rz", [ t ])
  | Gate.Cx -> Some (qis "cnot", [])
  | Gate.Cz -> Some (qis "cz", [])
  | Gate.Swap -> Some (qis "swap", [])
  | Gate.Ccx -> Some (qis "ccx", [])
  | Gate.Sx | Gate.Sxdg | Gate.P _ | Gate.U _ | Gate.Cy | Gate.Ch | Gate.Crx _
  | Gate.Cry _ | Gate.Crz _ | Gate.Cp _ | Gate.Cu _ | Gate.Cswap ->
    None

(* Inverse mapping for the parser; accepts both our spellings and common
   alternates (cnot/cx, ccx/ccnot/toffoli). *)
let gate_of_qis name (params : float list) : Gate.t option =
  let base =
    if is_qis name then
      let rest = String.sub name 16 (String.length name - 16) in
      match String.rindex_opt rest '_' with
      | Some _ when Filename.check_suffix rest "__body" ->
        Some (String.sub rest 0 (String.length rest - 6), false)
      | Some _ when Filename.check_suffix rest "__adj" ->
        Some (String.sub rest 0 (String.length rest - 5), true)
      | _ -> None
    else None
  in
  match base with
  | None -> None
  | Some (op, adj) -> (
    let g =
      match op, params with
      | "h", [] -> Some Gate.H
      | "x", [] -> Some Gate.X
      | "y", [] -> Some Gate.Y
      | "z", [] -> Some Gate.Z
      | "s", [] -> Some Gate.S
      | "t", [] -> Some Gate.T
      | "sx", [] -> Some Gate.Sx
      | "rx", [ t ] -> Some (Gate.Rx t)
      | "ry", [ t ] -> Some (Gate.Ry t)
      | "rz", [ t ] -> Some (Gate.Rz t)
      | ("cnot" | "cx"), [] -> Some Gate.Cx
      | "cy", [] -> Some Gate.Cy
      | "cz", [] -> Some Gate.Cz
      | "swap", [] -> Some Gate.Swap
      | ("ccx" | "ccnot" | "toffoli"), [] -> Some Gate.Ccx
      | _ -> None
    in
    match g with
    | Some g when adj -> Some (Gate.inverse g)
    | g -> g)
