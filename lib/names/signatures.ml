(* Type signatures of the QIS/RT functions, used to emit declarations and
   to know which call operands are qubits, results or classical values. *)

open Llvm_ir

type arg_kind = Qubit | Result | Double_arg | Int_arg of Ty.t | Ptr_arg

type signature = { ret : Ty.t; args : arg_kind list }

let ty_of_kind = function
  | Qubit | Result | Ptr_arg -> Ty.Ptr
  | Double_arg -> Ty.Double
  | Int_arg ty -> ty

(* Gate functions: doubles first, then qubits. *)
let gate_sig ~doubles ~qubits =
  {
    ret = Ty.Void;
    args =
      List.init doubles (fun _ -> Double_arg)
      @ List.init qubits (fun _ -> Qubit);
  }

let find name : signature option =
  let open Names in
  if String.equal name (qis "h") || String.equal name (qis "x")
     || String.equal name (qis "y") || String.equal name (qis "z")
     || String.equal name (qis "s") || String.equal name (qis "t")
     || String.equal name (qis_adj "s") || String.equal name (qis_adj "t")
     || String.equal name (qis "sx") || String.equal name (qis "reset")
  then Some (gate_sig ~doubles:0 ~qubits:1)
  else if String.equal name (qis "rx") || String.equal name (qis "ry")
          || String.equal name (qis "rz")
  then Some (gate_sig ~doubles:1 ~qubits:1)
  else if String.equal name (qis "cnot") || String.equal name (qis "cz")
          || String.equal name (qis "cy") || String.equal name (qis "swap")
  then Some (gate_sig ~doubles:0 ~qubits:2)
  else if String.equal name (qis "ccx") then Some (gate_sig ~doubles:0 ~qubits:3)
  else if String.equal name qis_mz then
    Some { ret = Ty.Void; args = [ Qubit; Result ] }
  else if String.equal name qis_m then Some { ret = Ty.Ptr; args = [ Qubit ] }
  else if String.equal name rt_read_result then
    Some { ret = Ty.I1; args = [ Result ] }
  else if String.equal name rt_qubit_allocate then
    Some { ret = Ty.Ptr; args = [] }
  else if String.equal name rt_qubit_allocate_array then
    Some { ret = Ty.Ptr; args = [ Int_arg Ty.I64 ] }
  else if String.equal name rt_qubit_release then
    Some { ret = Ty.Void; args = [ Qubit ] }
  else if String.equal name rt_qubit_release_array then
    Some { ret = Ty.Void; args = [ Ptr_arg ] }
  else if String.equal name rt_array_create_1d then
    Some { ret = Ty.Ptr; args = [ Int_arg Ty.I32; Int_arg Ty.I64 ] }
  else if String.equal name rt_array_get_element_ptr_1d then
    Some { ret = Ty.Ptr; args = [ Ptr_arg; Int_arg Ty.I64 ] }
  else if String.equal name rt_array_get_size_1d then
    Some { ret = Ty.I64; args = [ Ptr_arg ] }
  else if String.equal name rt_array_update_reference_count
          || String.equal name rt_result_update_reference_count
  then Some { ret = Ty.Void; args = [ Ptr_arg; Int_arg Ty.I32 ] }
  else if String.equal name rt_result_get_one || String.equal name rt_result_get_zero
  then Some { ret = Ty.Ptr; args = [] }
  else if String.equal name rt_result_equal then
    Some { ret = Ty.I1; args = [ Result; Result ] }
  else if String.equal name rt_result_record_output then
    Some { ret = Ty.Void; args = [ Result; Ptr_arg ] }
  else if String.equal name rt_array_record_output then
    Some { ret = Ty.Void; args = [ Int_arg Ty.I64; Ptr_arg ] }
  else if String.equal name rt_initialize then
    Some { ret = Ty.Void; args = [ Ptr_arg ] }
  else if String.equal name rt_message then
    Some { ret = Ty.Void; args = [ Ptr_arg ] }
  else if String.equal name rt_fail then
    Some { ret = Ty.Void; args = [ Ptr_arg ] }
  else None

let declaration name =
  match find name with
  | Some s -> Func.declare name s.ret (List.map ty_of_kind s.args)
  | None -> invalid_arg ("Signatures.declaration: unknown QIR function " ^ name)

(* Declarations for every QIR function called in [m] but not yet present. *)
let add_missing_declarations (m : Ir_module.t) =
  let called = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) ->
      Func.iter_instrs f (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Call (_, callee, _) when Names.is_quantum callee ->
            Hashtbl.replace called callee ()
          | _ -> ()))
    m.Ir_module.funcs;
  Hashtbl.fold
    (fun name () m ->
      match Ir_module.find_func m name with
      | Some _ -> m
      | None -> (
        match find name with
        | Some _ ->
          { m with Ir_module.funcs = declaration name :: m.Ir_module.funcs }
        | None -> m))
    called m
