(** The QIR symbol vocabulary: quantum instruction set (QIS) and runtime
    (RT) function names, as defined by the QIR specification, plus the
    mapping between gates and QIS symbols. *)

val qis_prefix : string
(** ["__quantum__qis__"] *)

val rt_prefix : string
(** ["__quantum__rt__"] *)

val qis : string -> string
(** [qis "h"] is ["__quantum__qis__h__body"]. *)

val qis_adj : string -> string
(** [qis_adj "s"] is ["__quantum__qis__s__adj"]. *)

(** {1 Runtime function names} *)

val rt_qubit_allocate : string
val rt_qubit_allocate_array : string
val rt_qubit_release : string
val rt_qubit_release_array : string
val rt_array_create_1d : string
val rt_array_get_element_ptr_1d : string
val rt_array_get_size_1d : string
val rt_array_update_reference_count : string
val rt_result_get_one : string
val rt_result_get_zero : string
val rt_result_equal : string
val rt_result_update_reference_count : string

val rt_read_result : string
(** The adaptive profile's result read, spelled as a QIS function
    ([__quantum__qis__read_result__body]). *)

val rt_result_record_output : string
val rt_array_record_output : string
val rt_initialize : string
val rt_message : string
val rt_fail : string
val qis_mz : string
val qis_m : string
val qis_reset : string

(** {1 Classification} *)

val is_qis : string -> bool
val is_rt : string -> bool
val is_quantum : string -> bool

(** {1 Gate mapping} *)

val qis_of_gate : Qcircuit.Gate.t -> (string * float list) option
(** The QIS symbol and leading double parameters for a gate in the QIR
    base gate set; [None] for gates that {!Qir_gateset.legalize} must
    decompose first (and for [I], which emits nothing). *)

val gate_of_qis : string -> float list -> Qcircuit.Gate.t option
(** Inverse mapping for the parser; accepts common alternate spellings
    (cnot/cx, ccx/ccnot/toffoli) and [__adj] suffixes. *)
