(** Type signatures of the QIS/RT functions: used to emit declarations and
    to know which call operands are qubits, results or classical values. *)

type arg_kind =
  | Qubit  (** an opaque [%Qubit*] pointer *)
  | Result  (** an opaque [%Result*] pointer *)
  | Double_arg
  | Int_arg of Llvm_ir.Ty.t
  | Ptr_arg  (** any other pointer (arrays, labels) *)

type signature = { ret : Llvm_ir.Ty.t; args : arg_kind list }

val ty_of_kind : arg_kind -> Llvm_ir.Ty.t

val find : string -> signature option
(** The signature of a known QIS/RT function name. *)

val declaration : string -> Llvm_ir.Func.t
(** A declaration for a known function; raises [Invalid_argument] on
    unknown names. *)

val add_missing_declarations : Llvm_ir.Ir_module.t -> Llvm_ir.Ir_module.t
(** Adds declarations for every known QIS/RT function the module calls
    but does not declare. *)
