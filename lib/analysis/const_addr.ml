(* Constant-address analysis: conditional constant propagation on the
   {!Llvm_ir.Dataflow} engine, specialized to prove that syntactically
   dynamic qubit/result addresses (inttoptr of a phi-resolved integer,
   select chains, byte-GEP arithmetic) are in fact static.

   The value lattice per SSA name is Unknown < Cst c < Varying — Unknown
   is the engine's bottom (optimistic "no evidence yet"), so facts only
   harden as edges become feasible; the terminator transfer prunes
   branches whose condition folds, giving SCCP-style reachability. The
   proved facts feed three consumers: {!Qir.Profile_check} (a proved
   address is not a base-profile violation), {!Qir.Addressing} (detect
   upgrades, to_static conversion of programs the syntactic scan
   rejects), and the QA001 lint note. *)

open Llvm_ir
module SMap = Map.Make (String)

type clat = Unknown | Cst of Constant.t | Varying

let join_clat a b =
  match a, b with
  | Unknown, x | x, Unknown -> x
  | Varying, _ | _, Varying -> Varying
  | Cst c1, Cst c2 -> if Constant.equal c1 c2 then Cst c1 else Varying

let clat_equal a b =
  match a, b with
  | Unknown, Unknown | Varying, Varying -> true
  | Cst c1, Cst c2 -> Constant.equal c1 c2
  | (Unknown | Cst _ | Varying), _ -> false

module Fact = struct
  type t = clat SMap.t
  (* bindings are only ever Cst or Varying; absent = Unknown *)

  let bottom = SMap.empty
  let equal = SMap.equal clat_equal
  let join a b = SMap.union (fun _ x y -> Some (join_clat x y)) a b
end

module Engine = Dataflow.Forward (Fact)

let value fact id = Option.value ~default:Unknown (SMap.find_opt id fact)

let operand_lattice fact (o : Operand.t) =
  match o with
  | Operand.Const c -> Cst c
  | Operand.Local id -> value fact id

let set fact id lat =
  match id, lat with
  | None, _ | _, Unknown -> fact
  | Some id, lat -> SMap.add id lat fact

(* Evaluate one non-phi instruction over the fact. *)
let eval fact (op : Instr.op) : clat =
  match op with
  | Instr.Call _ | Instr.Load _ | Instr.Alloca _ | Instr.Store _ -> Varying
  | Instr.Phi _ -> assert false
  | Instr.Freeze v -> operand_lattice fact v.Operand.v
  | Instr.Select (c, a, b) -> (
    match operand_lattice fact c with
    | Cst cc -> (
      match Passes.Const_fold.int_of_const cc with
      | Some n ->
        operand_lattice fact
          (if Int64.equal n 0L then b.Operand.v else a.Operand.v)
      | None -> Varying)
    | Unknown -> Unknown
    | Varying ->
      join_clat
        (operand_lattice fact a.Operand.v)
        (operand_lattice fact b.Operand.v))
  | Instr.Gep (src_ty, base, idxs) -> (
    (* byte-addressed GEP chains over constant pointers fold; anything
       typed beyond i8 would need a data layout we don't model *)
    let base_lat = operand_lattice fact base in
    let idx_lats =
      List.map (fun (i : Operand.typed) -> operand_lattice fact i.Operand.v) idxs
    in
    if List.exists (fun l -> l = Unknown) (base_lat :: idx_lats) then Unknown
    else
      match base_lat, idx_lats with
      | Cst (Constant.Inttoptr b | Constant.Int b), [ Cst i ]
        when Ty.equal src_ty Ty.I8 -> (
        match Passes.Const_fold.int_of_const i with
        | Some i -> Cst (Constant.Inttoptr (Int64.add b i))
        | None -> Varying)
      | Cst Constant.Null, [ Cst i ] when Ty.equal src_ty Ty.I8 -> (
        match Passes.Const_fold.int_of_const i with
        | Some i -> Cst (Constant.Inttoptr i)
        | None -> Varying)
      | _ -> Varying)
  | _ ->
    let operands = Instr.operands op in
    let lats =
      List.map
        (fun (o : Operand.typed) -> operand_lattice fact o.Operand.v)
        operands
    in
    if List.exists (fun l -> l = Unknown) lats then Unknown
    else if List.exists (fun l -> l = Varying) lats then Varying
    else begin
      let subst (o : Operand.t) =
        match o with
        | Operand.Local id -> (
          match value fact id with
          | Cst c -> Operand.Const c
          | Unknown | Varying -> o)
        | Operand.Const _ -> o
      in
      match Passes.Const_fold.fold_instr (Instr.map_operands subst op) with
      | Some c -> Cst c
      | None -> Varying
    end

let transfer_instr _label (i : Instr.t) fact =
  match i.Instr.op with
  | Instr.Phi (_, incoming) ->
    let lat =
      List.fold_left
        (fun acc (v, _) -> join_clat acc (operand_lattice fact v))
        Unknown incoming
    in
    set fact i.Instr.id lat
  | op -> set fact i.Instr.id (eval fact op)

(* Prune edges whose branch condition folds to a constant. *)
let transfer_term _label (t : Instr.term) fact =
  match t with
  | Instr.Ret _ | Instr.Unreachable -> []
  | Instr.Br l -> [ (l, fact) ]
  | Instr.Cond_br (c, th, el) -> (
    match operand_lattice fact c with
    | Cst cc -> (
      match Passes.Const_fold.int_of_const cc with
      | Some n -> [ ((if Int64.equal n 0L then el else th), fact) ]
      | None -> [ (th, fact); (el, fact) ])
    | Unknown -> [] (* condition not yet resolved: wait *)
    | Varying -> [ (th, fact); (el, fact) ])
  | Instr.Switch (v, d, cases) -> (
    match operand_lattice fact v.Operand.v with
    | Cst cc -> (
      match Passes.Const_fold.int_of_const cc with
      | Some n ->
        let target =
          List.fold_left
            (fun acc (c, l) ->
              match Passes.Const_fold.int_of_const c with
              | Some m when Int64.equal m n -> Some l
              | _ -> acc)
            None cases
        in
        [ (Option.value ~default:d target, fact) ]
      | None -> (d, fact) :: List.map (fun (_, l) -> (l, fact)) cases)
    | Unknown -> []
    | Varying -> (d, fact) :: List.map (fun (_, l) -> (l, fact)) cases)

(* ------------------------------------------------------------------ *)

type facts = {
  consts : Constant.t SMap.t;  (* SSA id -> proved constant *)
  reached_blocks : Cfg.SSet.t;
  call_args : (string * clat list) list;
      (* per reached call to a non-quantum callee: its argument lattices,
         the raw material of interprocedural propagation *)
}

let no_facts =
  { consts = SMap.empty; reached_blocks = Cfg.SSet.empty; call_args = [] }

(* [params] seeds the lattice value of each parameter positionally; the
   default Varying is the sound intraprocedural assumption (any caller,
   any argument). {!analyze_module} narrows it to the join over the
   actually-reached call sites. *)
let analyze ?params (f : Func.t) : facts =
  if Func.is_declaration f then no_facts
  else begin
    let param_lats =
      match params with
      | Some ls -> ls
      | None -> Array.make (List.length f.Func.params) Varying
    in
    let init =
      List.fold_left
        (fun (i, fact) (p : Func.param) ->
          let fact =
            if i < Array.length param_lats then
              set fact (Some p.Func.pname) param_lats.(i)
            else set fact (Some p.Func.pname) Varying
          in
          (i + 1, fact))
        (0, Fact.bottom) f.Func.params
      |> snd
    in
    let cfg = Cfg.of_func f in
    let tf = { Engine.instr = transfer_instr; Engine.term = transfer_term } in
    let res = Engine.solve ~init cfg tf in
    (* harvest each definition's lattice value by replaying the blocks *)
    let consts = ref SMap.empty
    and reached = ref Cfg.SSet.empty
    and call_args = ref [] in
    List.iter
      (fun label ->
        if Engine.reached res label then begin
          reached := Cfg.SSet.add label !reached;
          let b = Cfg.block cfg label in
          ignore
            (List.fold_left
               (fun fact (i : Instr.t) ->
                 let fact = transfer_instr label i fact in
                 (match i.Instr.id with
                 | Some id -> (
                   match value fact id with
                   | Cst c -> consts := SMap.add id c !consts
                   | Unknown | Varying -> ())
                 | None -> ());
                 (match i.Instr.op with
                 | Instr.Call (_, callee, args)
                   when not (Names.is_quantum callee) ->
                   call_args :=
                     ( callee,
                       List.map
                         (fun (a : Operand.typed) ->
                           operand_lattice fact a.Operand.v)
                         args )
                     :: !call_args
                 | _ -> ());
                 fact)
               (Engine.block_in res label)
               b.Block.instrs)
        end)
      cfg.Cfg.rpo;
    { consts = !consts; reached_blocks = !reached; call_args = !call_args }
  end

let const_of (facts : facts) id = SMap.find_opt id facts.consts
let block_reached (facts : facts) label = Cfg.SSet.mem label facts.reached_blocks

(* ------------------------------------------------------------------ *)
(* Interprocedural propagation: seed every function's parameters with
   the join of the argument lattices at its reached call sites and
   iterate to a fixpoint. Parameters only harden (Unknown -> Cst ->
   Varying) and each round re-analyzes with harder seeds, so the loop
   terminates; the round bound guards pathological inputs. A function
   whose parameters are still Unknown at the fixpoint has no reached
   call site — it is re-analyzed with Varying parameters so its facts
   never rest on optimism nobody justified. *)

type module_facts = {
  per_func : (string, facts) Hashtbl.t;
  param_lats : (string, clat array) Hashtbl.t;
}

let func_facts (mf : module_facts) name =
  Option.value ~default:no_facts (Hashtbl.find_opt mf.per_func name)

let param_lattices (mf : module_facts) name = Hashtbl.find_opt mf.param_lats name

let analyze_module (m : Ir_module.t) : module_facts =
  let defined = Ir_module.defined_funcs m in
  let entry =
    match Ir_module.entry_point m with
    | Some f when not (Func.is_declaration f) -> Some f.Func.name
    | None | Some _ -> None
  in
  let is_root (f : Func.t) =
    match entry with
    | Some e -> String.equal f.Func.name e
    | None -> true (* no entry: every function is a potential root *)
  in
  let param_lats = Hashtbl.create 8 in
  List.iter
    (fun (f : Func.t) ->
      Hashtbl.replace param_lats f.Func.name
        (Array.make (List.length f.Func.params)
           (if is_root f then Varying else Unknown)))
    defined;
  let per_func = Hashtbl.create 8 in
  let reanalyze (f : Func.t) =
    let facts = analyze ~params:(Hashtbl.find param_lats f.Func.name) f in
    Hashtbl.replace per_func f.Func.name facts;
    facts
  in
  let changed = ref true and rounds = ref 0 in
  let bound = (3 * List.length defined) + 3 in
  while !changed && !rounds < bound do
    changed := false;
    incr rounds;
    List.iter
      (fun (f : Func.t) ->
        let facts = reanalyze f in
        List.iter
          (fun (callee, lats) ->
            match Hashtbl.find_opt param_lats callee with
            | Some target when Array.length target = List.length lats ->
              List.iteri
                (fun i lat ->
                  let joined = join_clat target.(i) lat in
                  if not (clat_equal joined target.(i)) then begin
                    target.(i) <- joined;
                    changed := true
                  end)
                lats
            | Some _ | None -> ())
          facts.call_args)
      defined
  done;
  List.iter
    (fun (f : Func.t) ->
      let ps = Hashtbl.find param_lats f.Func.name in
      if Array.exists (fun l -> l = Unknown) ps then begin
        Array.iteri (fun i l -> if l = Unknown then ps.(i) <- Varying) ps;
        ignore (reanalyze f)
      end)
    defined;
  { per_func; param_lats }

(* Is this operand, used at a qubit/result position, a proved-constant
   address that is *not* already spelled as one? *)
let proved_address (facts : facts) (o : Operand.t) : Constant.t option =
  match o with
  | Operand.Const _ -> None
  | Operand.Local id -> (
    match const_of facts id with
    | Some (Constant.Inttoptr n) ->
      Some (if Int64.equal n 0L then Constant.Null else Constant.Inttoptr n)
    | Some Constant.Null -> Some Constant.Null
    | Some _ | None -> None)

(* ------------------------------------------------------------------ *)
(* Module-level summary and rewriting.                                  *)

type summary = {
  total_args : int;  (* qubit/result operands of quantum calls *)
  syntactic_static : int;
  proved_static : int;  (* dynamically shaped but proved constant *)
  dynamic : int;
}

let fold_quantum_args ?module_facts (m : Ir_module.t) init k =
  let mf =
    match module_facts with Some mf -> mf | None -> analyze_module m
  in
  List.fold_left
    (fun acc (f : Func.t) ->
      if Func.is_declaration f then acc
      else begin
        let facts = func_facts mf f.Func.name in
        List.fold_left
          (fun acc (b : Block.t) ->
            if not (block_reached facts b.Block.label) then acc
            else
              List.fold_left
                (fun acc (i : Instr.t) ->
                  match i.Instr.op with
                  | Instr.Call (_, callee, args) when Names.is_quantum callee
                    -> (
                    match Signatures.find callee with
                    | Some s
                      when List.length s.Signatures.args = List.length args ->
                      List.fold_left2
                        (fun acc kind (a : Operand.typed) ->
                          match kind with
                          | Signatures.Qubit | Signatures.Result ->
                            k acc facts f b i a
                          | _ -> acc)
                        acc s.Signatures.args args
                    | _ -> acc)
                  | _ -> acc)
                acc b.Block.instrs)
          acc f.Func.blocks
      end)
    init m.Ir_module.funcs

let summarize ?module_facts (m : Ir_module.t) : summary =
  fold_quantum_args ?module_facts m
    { total_args = 0; syntactic_static = 0; proved_static = 0; dynamic = 0 }
    (fun acc facts _f _b _i (a : Operand.typed) ->
      let acc = { acc with total_args = acc.total_args + 1 } in
      match a.Operand.v with
      | Operand.Const (Constant.Null | Constant.Inttoptr _) ->
        { acc with syntactic_static = acc.syntactic_static + 1 }
      | o -> (
        match proved_address facts o with
        | Some _ -> { acc with proved_static = acc.proved_static + 1 }
        | None -> { acc with dynamic = acc.dynamic + 1 }))

(* Rewrites every proved-constant qubit/result operand into its constant
   spelling. Returns the module and the number of upgraded operands; the
   address computations left behind are dead and fall to plain DCE. *)
let rewrite (m : Ir_module.t) : Ir_module.t * int =
  let upgraded = ref 0 in
  let mf = analyze_module m in
  let m' =
    Ir_module.map_funcs m (fun f ->
        if Func.is_declaration f then f
        else begin
          let facts = func_facts mf f.Func.name in
          let blocks =
            List.map
              (fun (b : Block.t) ->
                if not (block_reached facts b.Block.label) then b
                else
                  let instrs =
                    List.map
                      (fun (i : Instr.t) ->
                        match i.Instr.op with
                        | Instr.Call (ret, callee, args)
                          when Names.is_quantum callee -> (
                          match Signatures.find callee with
                          | Some s
                            when List.length s.Signatures.args
                                 = List.length args ->
                            let args =
                              List.map2
                                (fun kind (a : Operand.typed) ->
                                  match kind with
                                  | Signatures.Qubit | Signatures.Result -> (
                                    match proved_address facts a.Operand.v with
                                    | Some c ->
                                      incr upgraded;
                                      { a with Operand.v = Operand.Const c }
                                    | None -> a)
                                  | _ -> a)
                                s.Signatures.args args
                            in
                            { i with Instr.op = Instr.Call (ret, callee, args) }
                          | _ -> i)
                        | _ -> i)
                      b.Block.instrs
                  in
                  { b with Block.instrs })
              f.Func.blocks
          in
          Func.replace_blocks f blocks
        end)
  in
  (m', !upgraded)

(* QA001 notes for the lint driver: addresses that look dynamic but are
   proved static. *)
let notes ?module_facts (m : Ir_module.t) : Diagnostic.t list =
  List.rev
    (fold_quantum_args ?module_facts m []
       (fun acc facts f b i (a : Operand.typed) ->
         match proved_address facts a.Operand.v with
         | Some c ->
           Diagnostic.make ~rule:"QA001" ~severity:Diagnostic.Note
             ~where:(Printf.sprintf "@%s %%%s" f.Func.name b.Block.label)
             "operand %s of %s is proved static (= %s)"
             (Operand.to_string a.Operand.v)
             (match i.Instr.op with
             | Instr.Call (_, callee, _) -> "@" ^ callee
             | _ -> "call")
             (Constant.to_string c)
           :: acc
         | None -> acc))
