(* The direct call graph of a module, the substrate of every
   interprocedural analysis in this library. Nodes are the module's
   defined functions; an edge f -> g records a direct [call] to a
   non-quantum callee (QIS/RT vocabulary calls are *effects*, not
   edges). Tarjan's algorithm condenses the graph into strongly
   connected components emitted callees-first, which is exactly the
   bottom-up order the {!Summary} engine wants; recursion (a self edge
   or a component of size > 1) and entry-point reachability fall out of
   the same pass and feed two whole-module lint rules:

     QP001 error    a recursive function is reachable from the entry
                    point — no QIR hardware profile supports recursion
     QC001 warning  a defined function is unreachable from the entry
                    point (dead code at the call-graph level)

   Calls to non-quantum functions that have no body in the module
   (external declarations) are recorded separately: they are opaque to
   the summary engine and make their caller's effects unknown. *)

open Llvm_ir
module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = {
  m : Ir_module.t;
  defined : string list;  (* in module order *)
  edges : string list SMap.t;  (* defined f -> defined callees, dedup *)
  externals : string list SMap.t;  (* defined f -> bodyless classical callees *)
  sccs : string list list;  (* bottom-up: callees before callers *)
  recursive : SSet.t;
  entry : string option;
  reachable : SSet.t;  (* defined functions reachable from the entry *)
}

let dedup names =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.replace seen n ();
        true
      end)
    names

(* Tarjan's SCC algorithm; pops a component once all its successors are
   complete, so components come out callees-first (bottom-up). *)
let tarjan nodes succs =
  let index = Hashtbl.create 16
  and lowlink = Hashtbl.create 16
  and on_stack = Hashtbl.create 16 in
  let stack = ref [] and counter = ref 0 and sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        match Hashtbl.find_opt index w with
        | None ->
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        | Some wi ->
          if Hashtbl.mem on_stack w then
            Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) wi))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  List.rev !sccs

let build (m : Ir_module.t) : t =
  let defined_set =
    List.fold_left
      (fun acc (f : Func.t) -> SSet.add f.Func.name acc)
      SSet.empty (Ir_module.defined_funcs m)
  in
  let defined =
    List.map (fun (f : Func.t) -> f.Func.name) (Ir_module.defined_funcs m)
  in
  let edges, externals =
    List.fold_left
      (fun (edges, externals) (f : Func.t) ->
        let callees =
          Func.fold_instrs f [] (fun acc (i : Instr.t) ->
              match i.Instr.op with
              | Instr.Call (_, c, _) when not (Names.is_quantum c) -> c :: acc
              | _ -> acc)
          |> List.rev |> dedup
        in
        let internal, external_ =
          List.partition (fun c -> SSet.mem c defined_set) callees
        in
        ( SMap.add f.Func.name internal edges,
          SMap.add f.Func.name external_ externals ))
      (SMap.empty, SMap.empty)
      (Ir_module.defined_funcs m)
  in
  let succs v = Option.value ~default:[] (SMap.find_opt v edges) in
  let sccs = tarjan defined succs in
  let recursive =
    List.fold_left
      (fun acc scc ->
        match scc with
        | [ v ] -> if List.mem v (succs v) then SSet.add v acc else acc
        | vs -> List.fold_left (fun acc v -> SSet.add v acc) acc vs)
      SSet.empty sccs
  in
  let entry =
    match Ir_module.entry_point m with
    | Some f when not (Func.is_declaration f) -> Some f.Func.name
    | _ -> None
  in
  let reachable =
    match entry with
    | None -> SSet.empty
    | Some e ->
      let seen = ref SSet.empty in
      let rec go v =
        if not (SSet.mem v !seen) then begin
          seen := SSet.add v !seen;
          List.iter go (succs v)
        end
      in
      go e;
      !seen
  in
  { m; defined; edges; externals; sccs; recursive; entry; reachable }

let callees t f = Option.value ~default:[] (SMap.find_opt f t.edges)
let external_callees t f = Option.value ~default:[] (SMap.find_opt f t.externals)
let sccs_bottom_up t = t.sccs
let is_recursive t f = SSet.mem f t.recursive
let entry_name t = t.entry
let is_reachable t f = SSet.mem f t.reachable
let reachable_defined t = List.filter (fun f -> is_reachable t f) t.defined

let unreachable_defined t =
  match t.entry with
  | None -> []
  | Some _ -> List.filter (fun f -> not (is_reachable t f)) t.defined

let recursive_reachable t =
  List.filter (fun f -> is_recursive t f) (reachable_defined t)

(* ------------------------------------------------------------------ *)
(* Lint findings. Both rules need an entry point to be meaningful.      *)

let scc_of t f =
  match List.find_opt (fun scc -> List.mem f scc) t.sccs with
  | Some scc -> scc
  | None -> [ f ]

let findings (t : t) : Diagnostic.t list =
  match t.entry with
  | None -> []
  | Some entry ->
    let qp001 =
      List.map
        (fun f ->
          let cycle =
            String.concat " -> " (List.map (fun g -> "@" ^ g) (scc_of t f))
          in
          Diagnostic.make ~rule:"QP001" ~severity:Diagnostic.Error
            ~where:("@" ^ f)
            "recursion (%s) is reachable from @%s; no QIR profile supports \
             recursive calls"
            cycle entry)
        (recursive_reachable t)
    in
    let qc001 =
      List.map
        (fun f ->
          Diagnostic.make ~rule:"QC001" ~severity:Diagnostic.Warning
            ~where:("@" ^ f) "function is never called from entry point @%s"
            entry)
        (unreachable_defined t)
    in
    qp001 @ qc001

(* ------------------------------------------------------------------ *)
(* Rendering, for qir-lint --call-graph.                                *)

let render_text ppf t =
  let entry =
    match t.entry with Some e -> Printf.sprintf " (entry: @%s)" e | None -> ""
  in
  Format.fprintf ppf "call graph of '%s'%s@\n" t.m.Ir_module.source_name entry;
  List.iter
    (fun f ->
      let cs =
        List.map (fun c -> "@" ^ c) (callees t f @ external_callees t f)
      in
      Format.fprintf ppf "  @%s -> %s@\n" f
        (match cs with [] -> "(no calls)" | cs -> String.concat ", " cs))
    t.defined;
  Format.fprintf ppf "  sccs (bottom-up): %s@\n"
    (String.concat " "
       (List.map
          (fun scc ->
            "{" ^ String.concat " " (List.map (fun f -> "@" ^ f) scc) ^ "}")
          t.sccs));
  let named set = match set with [] -> "none" | fs ->
    String.concat ", " (List.map (fun f -> "@" ^ f) fs)
  in
  Format.fprintf ppf "  recursive: %s@\n"
    (named (List.filter (fun f -> is_recursive t f) t.defined));
  Format.fprintf ppf "  unreachable: %s@." (named (unreachable_defined t))

let render_json ppf t =
  let str s = "\"" ^ Diagnostic.json_escape s ^ "\"" in
  let list items = "[" ^ String.concat "," items ^ "]" in
  let bool b = if b then "true" else "false" in
  let func f =
    Printf.sprintf
      "    {\"name\":%s,\"callees\":%s,\"external_callees\":%s,\"recursive\":%s,\"reachable\":%s}"
      (str f)
      (list (List.map str (callees t f)))
      (list (List.map str (external_callees t f)))
      (bool (is_recursive t f))
      (bool (t.entry = None || is_reachable t f))
  in
  Format.fprintf ppf "{@\n  \"schema_version\": %d,@\n" Diagnostic.schema_version;
  Format.fprintf ppf "  \"module\": %s,@\n" (str t.m.Ir_module.source_name);
  Format.fprintf ppf "  \"entry\": %s,@\n"
    (match t.entry with Some e -> str e | None -> "null");
  Format.fprintf ppf "  \"functions\": [@\n%s@\n  ],@\n"
    (String.concat ",\n" (List.map func t.defined));
  Format.fprintf ppf "  \"sccs\": %s@\n}@."
    (list (List.map (fun scc -> list (List.map str scc)) t.sccs))
